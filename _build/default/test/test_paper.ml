(* Reproduction of the paper's worked examples and figures:

   E1/E2 — Figure 1 and Figure 2 (Section 3.1): the Person/Employee
   hierarchy, Π_{ssn,date_of_birth,pay_rate} Employee, and the
   refactored hierarchy.

   E3 — Examples 1 and 2 (Section 4.2): the method classification for
   Π_{a2,e2,h2} A over the Figure 3 hierarchy, including the optimistic
   assumption and retraction of y1.

   E4 — Figure 4 (Section 5.2): the factored hierarchy, node by node.

   E5 — Example 3 (Section 6.2): the rewritten method signatures.

   E6 — Figure 5 / Example 4 (Section 6.5): Z = {D, G} and the
   augmented hierarchy. *)

open Tdp_core
open Helpers

(* ------------------------------------------------------------------ *)
(* E1/E2: Figures 1 and 2                                              *)
(* ------------------------------------------------------------------ *)

let test_fig1_applicability () =
  let o = Tdp_paper.Fig1.project () in
  check_applicability o.analysis
    ~applicable:
      [ ("age", "age");
        ("promote", "promote");
        ("get_ssn", "get_ssn");
        ("get_date_of_birth", "get_date_of_birth");
        ("get_pay_rate", "get_pay_rate");
        ("set_pay_rate", "set_pay_rate")
      ]
    ~not_applicable:
      [ ("income", "income");
        ("get_name", "get_name");
        ("get_hrs_worked", "get_hrs_worked")
      ]

let test_fig2_hierarchy () =
  let o = Tdp_paper.Fig1.project () in
  let h = Schema.hierarchy o.schema in
  (* Figure 2: Person is split into Person_hat {ssn, date_of_birth}
     and Person {name}; both Person and Employee_hat are subtypes of
     Person_hat; Employee_hat {pay_rate} is the derived type. *)
  check_type h "Person_hat" ~attrs:[ "ssn"; "date_of_birth" ] ~supers:[];
  check_type h "Person" ~attrs:[ "name" ] ~supers:[ ("Person_hat", 0) ];
  check_type h "Employee_hat" ~attrs:[ "pay_rate" ] ~supers:[ ("Person_hat", 1) ];
  check_type h "Employee" ~attrs:[ "hrs_worked" ]
    ~supers:[ ("Employee_hat", 0); ("Person", 1) ];
  Alcotest.(check string) "derived" "Employee_hat" (Type_name.to_string o.derived)

let test_fig2_methods () =
  let o = Tdp_paper.Fig1.project () in
  Alcotest.(check (list string)) "age relocated" [ "Person_hat" ]
    (method_param_types o.schema "age" "age");
  Alcotest.(check (list string)) "promote relocated" [ "Employee_hat" ]
    (method_param_types o.schema "promote" "promote");
  Alcotest.(check (list string)) "income unchanged" [ "Employee" ]
    (method_param_types o.schema "income" "income");
  Alcotest.(check (list string)) "get_name unchanged" [ "Person" ]
    (method_param_types o.schema "get_name" "get_name");
  Alcotest.(check (list string)) "get_ssn relocated" [ "Person_hat" ]
    (method_param_types o.schema "get_ssn" "get_ssn")

(* ------------------------------------------------------------------ *)
(* E3: Examples 1 and 2 — the classification of u, v, w, x, y          *)
(* ------------------------------------------------------------------ *)

let test_example2_classification () =
  let o = Tdp_paper.Fig3.project () in
  check_applicability o.analysis
    ~applicable:Tdp_paper.Fig3.expected_applicable
    ~not_applicable:Tdp_paper.Fig3.expected_not_applicable

let test_example2_cycle_trace () =
  (* The x1/y1 cycle: y1 must first be assumed applicable (it finds x1
     on the MethodStack), then retracted when v(B,A) has no applicable
     method, and finally concluded not applicable on re-analysis. *)
  let o = Tdp_paper.Fig3.project () in
  let trace = o.analysis.trace in
  let y1 = key "y" "y1" in
  let assumed =
    List.exists
      (function
        | Applicability.Assumed { meth; _ } -> Method_def.Key.equal meth (key "x" "x1")
        | _ -> false)
      trace
  in
  let retracted =
    List.exists
      (function
        | Applicability.Retracted k -> Method_def.Key.equal k y1
        | _ -> false)
      trace
  in
  Alcotest.(check bool) "x1 was optimistically assumed" true assumed;
  Alcotest.(check bool) "y1 was retracted" true retracted;
  Alcotest.(check bool) "needed more than one pass" true (o.analysis.passes > 1)

(* ------------------------------------------------------------------ *)
(* E4: Figure 4 — the factored hierarchy                               *)
(* ------------------------------------------------------------------ *)

let test_fig4_hierarchy () =
  let o = Tdp_paper.Fig3.project () in
  let h = Schema.hierarchy o.schema in
  (* Derived type and surrogates, exactly as traced in Section 5.2. *)
  check_type h "A_hat" ~attrs:[ "a2" ] ~supers:[ ("C_hat", 1); ("B_hat", 2) ];
  check_type h "A" ~attrs:[ "a1" ] ~supers:[ ("A_hat", 0); ("C", 1); ("B", 2) ];
  check_type h "C_hat" ~attrs:[] ~supers:[ ("F_hat", 1); ("E_hat", 2) ];
  check_type h "C" ~attrs:[ "c1" ] ~supers:[ ("C_hat", 0); ("F", 1); ("E", 2) ];
  check_type h "B_hat" ~attrs:[] ~supers:[ ("E_hat", 2) ];
  check_type h "B" ~attrs:[ "b1" ] ~supers:[ ("B_hat", 0); ("D", 1); ("E", 2) ];
  check_type h "E_hat" ~attrs:[ "e2" ] ~supers:[ ("H_hat", 2) ];
  check_type h "E" ~attrs:[ "e1" ] ~supers:[ ("E_hat", 0); ("G", 1); ("H", 2) ];
  check_type h "F_hat" ~attrs:[] ~supers:[ ("H_hat", 1) ];
  check_type h "F" ~attrs:[ "f1" ] ~supers:[ ("F_hat", 0); ("H", 1) ];
  check_type h "H_hat" ~attrs:[ "h2" ] ~supers:[];
  check_type h "H" ~attrs:[ "h1" ] ~supers:[ ("H_hat", 0) ];
  (* D and G are untouched by Π_{a2,e2,h2} A. *)
  check_type h "D" ~attrs:[ "d1" ] ~supers:[];
  check_type h "G" ~attrs:[ "g1" ] ~supers:[]

let test_fig4_surrogate_count () =
  let o = Tdp_paper.Fig3.project () in
  Alcotest.(check int) "six types factored" 6 (Type_name.Map.cardinal o.surrogates);
  Alcotest.check name_set "factored types"
    (Type_name.Set.of_list (List.map ty [ "A"; "B"; "C"; "E"; "F"; "H" ]))
    (Type_name.Map.fold (fun src _ acc -> Type_name.Set.add src acc) o.surrogates
       Type_name.Set.empty)

let test_fig4_derived_state () =
  let o = Tdp_paper.Fig3.project () in
  let h = Schema.hierarchy o.schema in
  Alcotest.check attr_names "cumulative state of A_hat is the projection list"
    (List.map at [ "a2"; "e2"; "h2" ])
    (List.sort Attr_name.compare (Hierarchy.all_attribute_names h (ty "A_hat")))

(* ------------------------------------------------------------------ *)
(* E5: Example 3 — rewritten method signatures                         *)
(* ------------------------------------------------------------------ *)

let test_example3_signatures () =
  let o = Tdp_paper.Fig3.project () in
  Alcotest.(check (list string)) "v1(A_hat, C_hat)" [ "A_hat"; "C_hat" ]
    (method_param_types o.schema "v" "v1");
  Alcotest.(check (list string)) "u3(B_hat)" [ "B_hat" ]
    (method_param_types o.schema "u" "u3");
  Alcotest.(check (list string)) "w2(C_hat)" [ "C_hat" ]
    (method_param_types o.schema "w" "w2");
  Alcotest.(check (list string)) "get_h2(B_hat)" [ "B_hat" ]
    (method_param_types o.schema "get_h2" "get_h2");
  (* Not-applicable methods keep their signatures. *)
  Alcotest.(check (list string)) "v2 unchanged" [ "B"; "C" ]
    (method_param_types o.schema "v" "v2");
  Alcotest.(check (list string)) "x1 unchanged" [ "A"; "B" ]
    (method_param_types o.schema "x" "x1")

(* ------------------------------------------------------------------ *)
(* E6: Figure 5 / Example 4 — augmentation with Z = {D, G}             *)
(* ------------------------------------------------------------------ *)

let test_example4_z () =
  let o = Tdp_paper.Fig3.project ~schema:Tdp_paper.Fig3.schema_with_z () in
  Alcotest.check name_set "Z = {D, G}"
    (Type_name.Set.of_list [ ty "D"; ty "G" ])
    o.z

let test_fig5_hierarchy () =
  let o = Tdp_paper.Fig3.project ~schema:Tdp_paper.Fig3.schema_with_z () in
  let h = Schema.hierarchy o.schema in
  (* The empty surrogates D_hat and G_hat of Figure 5, with the
     surrogate-side mirror edges B_hat -> D_hat and E_hat -> G_hat. *)
  check_type h "D_hat" ~attrs:[] ~supers:[];
  check_type h "G_hat" ~attrs:[] ~supers:[];
  check_type h "D" ~attrs:[ "d1" ] ~supers:[ ("D_hat", 0) ];
  check_type h "G" ~attrs:[ "g1" ] ~supers:[ ("G_hat", 0) ];
  check_type h "B_hat" ~attrs:[] ~supers:[ ("D_hat", 1); ("E_hat", 2) ];
  check_type h "E_hat" ~attrs:[ "e2" ] ~supers:[ ("G_hat", 1); ("H_hat", 2) ]

let test_fig5_body_retyping () =
  let o = Tdp_paper.Fig3.project ~schema:Tdp_paper.Fig3.schema_with_z () in
  (* z1(C) becomes z1(C_hat) with local g re-declared at G_hat and
     result type G_hat; the re-typed schema must still type-check
     (Section 6.3). *)
  Alcotest.(check (list string)) "z1(C_hat)" [ "C_hat" ]
    (method_param_types o.schema "ret_g" "z1");
  let z1 = Schema.find_method o.schema (key "ret_g" "z1") in
  (match Signature.result (Method_def.signature z1) with
  | Some (Value_type.Named n) ->
      Alcotest.(check string) "z1 result re-typed" "G_hat" (Type_name.to_string n)
  | _ -> Alcotest.fail "z1 has no named result type");
  (match Method_def.body z1 with
  | Some body ->
      let locals = Body.locals body in
      Alcotest.(check bool) "local g re-typed to G_hat" true
        (List.exists
           (fun (x, t) ->
             String.equal x "g"
             && Value_type.equal t (Value_type.named (ty "G_hat")))
           locals)
  | None -> Alcotest.fail "z1 has no body");
  Typing.check_all_methods o.schema

let suite =
  [ Alcotest.test_case "E1: fig1 applicability" `Quick test_fig1_applicability;
    Alcotest.test_case "E2: fig2 hierarchy" `Quick test_fig2_hierarchy;
    Alcotest.test_case "E2: fig2 methods" `Quick test_fig2_methods;
    Alcotest.test_case "E3: example 2 classification" `Quick
      test_example2_classification;
    Alcotest.test_case "E3: x1/y1 cycle trace" `Quick test_example2_cycle_trace;
    Alcotest.test_case "E4: fig4 hierarchy" `Quick test_fig4_hierarchy;
    Alcotest.test_case "E4: surrogate count" `Quick test_fig4_surrogate_count;
    Alcotest.test_case "E4: derived state" `Quick test_fig4_derived_state;
    Alcotest.test_case "E5: example 3 signatures" `Quick test_example3_signatures;
    Alcotest.test_case "E6: example 4 Z set" `Quick test_example4_z;
    Alcotest.test_case "E6: fig5 hierarchy" `Quick test_fig5_hierarchy;
    Alcotest.test_case "E6: fig5 body re-typing" `Quick test_fig5_body_retyping
  ]

let () = Alcotest.run "paper" [ ("figures", suite) ]
