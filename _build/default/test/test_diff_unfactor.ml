open Tdp_core
module Unfactor = Tdp_algebra.Unfactor
open Helpers

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

let test_diff_projection_fig1 () =
  let o = Tdp_paper.Fig1.project () in
  let changes = Diff.schema_changes o.before o.schema in
  let added =
    List.filter_map
      (function Diff.Type_added n -> Some (Type_name.to_string n) | _ -> None)
      changes
  in
  Alcotest.(check (list string)) "surrogates added"
    [ "Employee_hat"; "Person_hat" ]
    (List.sort String.compare added);
  let moved =
    List.filter_map
      (function
        | Diff.Attr_moved { attr; _ } -> Some (Attr_name.to_string attr)
        | _ -> None)
      changes
  in
  Alcotest.(check (list string)) "attrs moved"
    [ "date_of_birth"; "pay_rate"; "ssn" ]
    (List.sort String.compare moved);
  let sig_changed =
    List.filter_map
      (function
        | Diff.Signature_changed { key; _ } -> Some (Method_def.Key.id key)
        | _ -> None)
      changes
  in
  Alcotest.(check (list string)) "signatures changed"
    [ "age"; "get_date_of_birth"; "get_pay_rate"; "get_ssn"; "promote";
      "set_pay_rate"
    ]
    (List.sort String.compare sig_changed)

let test_diff_empty () =
  let s = Tdp_paper.Fig1.schema in
  Alcotest.(check int) "no changes against itself" 0
    (List.length (Diff.schema_changes s s))

let test_diff_edge_and_removal () =
  let s = Tdp_paper.Fig1.schema in
  let h = Schema.hierarchy s in
  let h' =
    Hierarchy.update h (ty "Employee") (fun d ->
        Type_def.with_supers d [])
  in
  let changes = Diff.hierarchy_changes h h' in
  Alcotest.(check bool) "edge removal reported" true
    (List.exists
       (function
         | Diff.Super_removed { sub; super } ->
             Type_name.equal sub (ty "Employee") && Type_name.equal super (ty "Person")
         | _ -> false)
       changes)

(* ------------------------------------------------------------------ *)
(* Unfactor (drop view)                                                *)
(* ------------------------------------------------------------------ *)

(* Semantic equivalence of two schemas over a set of type names:
   identical type-name sets, local and cumulative attribute sets,
   supertype lists, and method signatures.  Local attribute *order*
   may legitimately differ after a round-trip (moved attributes are
   appended on restore). *)
let check_equivalent before after =
  let hb = Schema.hierarchy before and ha = Schema.hierarchy after in
  Alcotest.(check (list string)) "same types"
    (List.map Type_name.to_string (Hierarchy.type_names hb))
    (List.map Type_name.to_string (Hierarchy.type_names ha));
  List.iter
    (fun def ->
      let n = Type_def.name def in
      let sort l = List.sort Attr_name.compare l in
      Alcotest.check attr_names
        (Type_name.to_string n ^ " local attrs")
        (sort (List.map Attribute.name (Type_def.attrs def)))
        (sort (List.map Attribute.name (Type_def.attrs (Hierarchy.find ha n))));
      Alcotest.check supers_t
        (Type_name.to_string n ^ " supers")
        (Type_def.supers def)
        (Type_def.supers (Hierarchy.find ha n)))
    (Hierarchy.types hb);
  List.iter
    (fun m ->
      let m' = Schema.find_method after (Method_def.key m) in
      Alcotest.(check bool)
        (Fmt.str "signature of %s" (Method_def.id m))
        true
        (Signature.equal (Method_def.signature m) (Method_def.signature m')))
    (Schema.all_methods before)

let test_drop_view_fig1 () =
  let o = Tdp_paper.Fig1.project () in
  let restored = Unfactor.drop_view_exn o.schema ~view:"employee_view" in
  check_equivalent o.before restored

let test_drop_view_fig3_with_z () =
  (* includes Augment surrogates and §6.3 re-typed locals/results *)
  let o = Tdp_paper.Fig3.project ~schema:Tdp_paper.Fig3.schema_with_z () in
  let restored = Unfactor.drop_view_exn o.schema ~view:"a_view" in
  check_equivalent o.before restored

let test_drop_unknown_view () =
  match Unfactor.drop_view Tdp_paper.Fig1.schema ~view:"nope" with
  | Error (Invariant_violation _) -> ()
  | Error e -> Alcotest.failf "unexpected error %a" Error.pp e
  | Ok _ -> Alcotest.fail "expected failure"

let test_drop_depended_upon_view () =
  (* A second view derived from the first one pins its surrogates. *)
  let o1 = Tdp_paper.Fig1.project () in
  let o2 =
    Projection.project_exn o1.schema ~view:"v2" ~derived_name:(ty "Tiny")
      ~source:(ty "Employee_hat") ~projection:[ at "ssn" ] ()
  in
  match Unfactor.drop_view o2.schema ~view:"employee_view" with
  | Error (Invariant_violation _) -> ()
  | Error e -> Alcotest.failf "unexpected error %a" Error.pp e
  | Ok _ -> Alcotest.fail "dropping a depended-upon view must fail"

let test_drop_views_in_reverse_order () =
  (* …but dropping outermost-first unwinds cleanly. *)
  let o1 = Tdp_paper.Fig1.project () in
  let o2 =
    Projection.project_exn o1.schema ~view:"v2" ~derived_name:(ty "Tiny")
      ~source:(ty "Employee_hat") ~projection:[ at "ssn" ] ()
  in
  let s1 = Unfactor.drop_view_exn o2.schema ~view:"v2" in
  check_equivalent o1.schema s1;
  let s0 = Unfactor.drop_view_exn s1 ~view:"employee_view" in
  check_equivalent o1.before s0

let suite_diff =
  [ Alcotest.test_case "projection diff (fig1)" `Quick test_diff_projection_fig1;
    Alcotest.test_case "empty diff" `Quick test_diff_empty;
    Alcotest.test_case "edge removal" `Quick test_diff_edge_and_removal
  ]

let suite_unfactor =
  [ Alcotest.test_case "drop view (fig1)" `Quick test_drop_view_fig1;
    Alcotest.test_case "drop view (fig3 + Z)" `Quick test_drop_view_fig3_with_z;
    Alcotest.test_case "unknown view" `Quick test_drop_unknown_view;
    Alcotest.test_case "depended-upon view" `Quick test_drop_depended_upon_view;
    Alcotest.test_case "reverse-order unwind" `Quick test_drop_views_in_reverse_order
  ]

let () =
  Alcotest.run "diff-unfactor"
    [ ("diff", suite_diff); ("unfactor", suite_unfactor) ]
