open Tdp_core
module Database = Tdp_store.Database
module Dump = Tdp_store.Dump
module Value = Tdp_store.Value
open Helpers

let schema_with_refs =
  let s = Tdp_paper.Fig1.schema in
  Schema.add_type s
    (Type_def.make
       ~attrs:[ Attribute.make (at "manager") (Value_type.named (ty "Employee")) ]
       (ty "Team"))

let sample_db () =
  let db = Database.create schema_with_refs in
  let alice =
    Database.new_object db (ty "Employee")
      ~init:
        [ (at "ssn", Value.Int 1);
          (at "name", Value.String "al \"ice\"");
          (at "date_of_birth", Value.Date 1990);
          (at "pay_rate", Value.Float 55.5);
          (at "hrs_worked", Value.Float 10.0)
        ]
  in
  let _team =
    Database.new_object db (ty "Team") ~init:[ (at "manager", Value.Ref alice) ]
  in
  let _bob = Database.new_object db (ty "Person") ~init:[ (at "ssn", Value.Int 2) ] in
  db

let test_roundtrip () =
  let db = sample_db () in
  let text = Dump.to_string db in
  let db2 = Database.create schema_with_refs in
  let oids = Dump.load_into db2 text in
  Alcotest.(check int) "three objects" 3 (List.length oids);
  Alcotest.(check string) "dump is a fixpoint" text (Dump.to_string db2);
  (* slots survive, including refs and escaped strings *)
  List.iter
    (fun (o : Database.obj) ->
      let o2 = Database.find db2 o.oid in
      Alcotest.(check bool)
        (Fmt.str "slots of %a" Tdp_store.Oid.pp o.oid)
        true
        (Attr_name.Map.equal Value.equal o.slots o2.slots))
    (Database.objects db)

let test_forward_references () =
  (* the team (#1) references the employee (#2) defined later *)
  let text =
    {|obj #1 Team manager=#2
obj #2 Employee ssn=9 pay_rate=1.0
|}
  in
  let db = Database.create schema_with_refs in
  ignore (Dump.load_into db text);
  Alcotest.(check bool) "forward ref resolved" true
    (Value.equal
       (Database.get_attr db (Tdp_store.Oid.of_int 1) (at "manager"))
       (Value.Ref (Tdp_store.Oid.of_int 2)))

let test_fresh_oids_after_load () =
  let db = Database.create schema_with_refs in
  ignore (Dump.load_into db "obj #7 Person ssn=1\n");
  let fresh = Database.new_object db (ty "Person") ~init:[] in
  Alcotest.(check bool) "fresh oid beyond restored ones" true
    (Tdp_store.Oid.to_int fresh > 7)

let check_error text expect_line =
  let db = Database.create schema_with_refs in
  match Dump.load_into db text with
  | exception Dump.Parse_error { line; _ } ->
      Alcotest.(check int) "line" expect_line line
  | _ -> Alcotest.fail "expected Parse_error"

let test_parse_errors () =
  check_error "obj Person ssn=1" 1;
  check_error "obj #1 Person ssn=notavalue" 1;
  check_error "obj #1 Person ssn 1" 1;
  check_error "-- ok\nblah #2" 2;
  check_error "obj #1 Person ssn=1\nobj #1 Person ssn=2" 2;
  check_error "obj #1 Nope x=1" 1;
  check_error {|obj #1 Person name="unterminated|} 1

let test_comments_and_blanks () =
  let db = Database.create schema_with_refs in
  let oids =
    Dump.load_into db "-- a comment\n\n  obj #1 Person ssn=3  \n\n-- end\n"
  in
  Alcotest.(check int) "one object" 1 (List.length oids)

let test_value_syntax () =
  List.iter
    (fun (s, v) ->
      Alcotest.(check bool) s true (Value.equal (Dump.value_of_string 1 s) v))
    [ ("42", Value.Int 42);
      ("-3", Value.Int (-3));
      ("42.5", Value.Float 42.5);
      ("true", Value.Bool true);
      ("false", Value.Bool false);
      ("null", Value.Null);
      ("year:1990", Value.Date 1990);
      ("#12", Value.Ref (Tdp_store.Oid.of_int 12));
      ({|"hi"|}, Value.String "hi")
    ];
  (* printing inverts parsing *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Dump.value_to_string v)
        true
        (Value.equal (Dump.value_of_string 1 (Dump.value_to_string v)) v))
    [ Value.Int 5; Value.Float 1.25; Value.String "a b\"c"; Value.Bool false;
      Value.Date 2001; Value.Ref (Tdp_store.Oid.of_int 3); Value.Null
    ]

let prop_dump_roundtrip =
  QCheck.Test.make ~name:"dump/load round-trips synth databases" ~count:50
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 5000))
    (fun seed ->
      let schema =
        Tdp_synth.Synth.generate { Tdp_synth.Synth.default with seed }
      in
      let db = Database.create schema in
      let _ = Tdp_synth.Synth.populate ~seed db 20 in
      let text = Dump.to_string db in
      let db2 = Database.create schema in
      let _ = Dump.load_into db2 text in
      String.equal text (Dump.to_string db2))

let suite =
  [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "forward references" `Quick test_forward_references;
    Alcotest.test_case "fresh oids after load" `Quick test_fresh_oids_after_load;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "value syntax" `Quick test_value_syntax;
    QCheck_alcotest.to_alcotest prop_dump_roundtrip
  ]

let () = Alcotest.run "dump" [ ("dump", suite) ]
