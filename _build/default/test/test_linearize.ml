open Tdp_core
open Helpers

let mk specs =
  List.fold_left
    (fun h (name, supers) ->
      Hierarchy.add h
        (Type_def.make ~supers:(List.mapi (fun i s -> (ty s, i + 1)) supers) (ty name)))
    Hierarchy.empty specs

let cpl_strings h n = List.map Type_name.to_string (Linearize.cpl h (ty n))

let test_chain () =
  let h = mk [ ("A", []); ("B", [ "A" ]); ("C", [ "B" ]) ] in
  Alcotest.(check (list string)) "chain" [ "C"; "B"; "A" ] (cpl_strings h "C")

let test_diamond () =
  let h = mk [ ("A", []); ("B", [ "A" ]); ("C", [ "A" ]); ("D", [ "B"; "C" ]) ] in
  Alcotest.(check (list string)) "diamond" [ "D"; "B"; "C"; "A" ] (cpl_strings h "D")

let test_diamond_swapped_precedence () =
  let h = mk [ ("A", []); ("B", [ "A" ]); ("C", [ "A" ]); ("D", [ "C"; "B" ]) ] in
  Alcotest.(check (list string)) "respects precedence" [ "D"; "C"; "B"; "A" ]
    (cpl_strings h "D")

let test_fig3 () =
  (* Worked out by hand from the paper's Figure 3 constraints. *)
  let h = Schema.hierarchy Tdp_paper.Fig3.schema in
  Alcotest.(check (list string))
    "CPL of A"
    [ "A"; "C"; "F"; "B"; "D"; "E"; "G"; "H" ]
    (cpl_strings h "A")

let test_fig3_after_factoring () =
  (* Transparency of the Q̂–Q split: the surrogate is the supertype of
     highest precedence, so in CPL(Q) it comes immediately after Q
     itself, for every factored type.  And the derived type's CPL must
     consist of surrogates only. *)
  let o = Tdp_paper.Fig3.project () in
  let h = Schema.hierarchy o.schema in
  List.iter
    (fun (src, hat) ->
      match Linearize.cpl h (ty src) with
      | s :: second :: _ ->
          Alcotest.(check string) (src ^ " heads its own CPL") src
            (Type_name.to_string s);
          Alcotest.(check string)
            (Fmt.str "%s immediately after %s" hat src)
            hat (Type_name.to_string second)
      | _ -> Alcotest.failf "CPL of %s too short" src)
    [ ("A", "A_hat"); ("B", "B_hat"); ("C", "C_hat"); ("E", "E_hat");
      ("F", "F_hat"); ("H", "H_hat")
    ];
  let cpl_hat = Linearize.cpl h (ty "A_hat") in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Fmt.str "%s is a surrogate" (Type_name.to_string n))
        true
        (Type_def.is_surrogate (Hierarchy.find h n)))
    cpl_hat

let test_inconsistent () =
  (* B orders X before Y; C orders Y before X; A inherits from both. *)
  let h =
    mk
      [ ("X", []);
        ("Y", []);
        ("B", [ "X"; "Y" ]);
        ("C", [ "Y"; "X" ]);
        ("A", [ "B"; "C" ])
      ]
  in
  match Linearize.cpl_result h (ty "A") with
  | Error (Linearization_failure n) ->
      Alcotest.(check string) "failing type" "A" (Type_name.to_string n)
  | Error e -> Alcotest.failf "unexpected error %a" Error.pp e
  | Ok l ->
      Alcotest.failf "expected failure, got [%s]"
        (String.concat "; " (List.map Type_name.to_string l))

let test_consistent_subparts () =
  (* The conflicting orders above are still linearizable separately. *)
  let h =
    mk
      [ ("X", []); ("Y", []); ("B", [ "X"; "Y" ]); ("C", [ "Y"; "X" ]) ]
  in
  Alcotest.(check (list string)) "B" [ "B"; "X"; "Y" ] (cpl_strings h "B");
  Alcotest.(check (list string)) "C" [ "C"; "Y"; "X" ] (cpl_strings h "C")

let test_index_of () =
  let h = mk [ ("A", []); ("B", [ "A" ]) ] in
  let idx = Linearize.index_of h (ty "B") in
  Alcotest.(check (option int)) "self" (Some 0) (idx (ty "B"));
  Alcotest.(check (option int)) "super" (Some 1) (idx (ty "A"));
  let h2 = Hierarchy.add h (Type_def.make (ty "Z")) in
  let idx2 = Linearize.index_of h2 (ty "B") in
  Alcotest.(check (option int)) "unrelated" None (idx2 (ty "Z"))

let test_singleton () =
  let h = mk [ ("A", []) ] in
  Alcotest.(check (list string)) "singleton" [ "A" ] (cpl_strings h "A")

let test_clos_family_grouping () =
  (* CLOS tie-break keeps a family together: with D ⪯ B ⪯ A and
     D ⪯ C (C unrelated to A), CPL(D) follows B's chain first. *)
  let h =
    mk [ ("A", []); ("B", [ "A" ]); ("C", []); ("D", [ "B"; "C" ]) ]
  in
  Alcotest.(check (list string)) "family first" [ "D"; "B"; "A"; "C" ]
    (cpl_strings h "D")

let suite =
  [ Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "diamond" `Quick test_diamond;
    Alcotest.test_case "diamond, swapped precedence" `Quick
      test_diamond_swapped_precedence;
    Alcotest.test_case "figure 3 CPL" `Quick test_fig3;
    Alcotest.test_case "figure 4 CPL properties" `Quick test_fig3_after_factoring;
    Alcotest.test_case "inconsistent orders fail" `Quick test_inconsistent;
    Alcotest.test_case "subparts remain consistent" `Quick test_consistent_subparts;
    Alcotest.test_case "index_of" `Quick test_index_of;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "CLOS family grouping" `Quick test_clos_family_grouping
  ]

let () = Alcotest.run "linearize" [ ("cpl", suite) ]
