(* Property-based tests: the paper's preservation claims must hold on
   arbitrary schemas, not just the figures.  Schemas are drawn from the
   Tdp_synth generator; each QCheck case is a generator seed, so shrink
   results are reproducible. *)

open Tdp_core

let config_of_seed seed =
  let open Tdp_synth.Synth in
  { default with
    n_types = 4 + (seed mod 12);
    max_supers = 1 + (seed mod 3);
    attrs_per_type = 1 + (seed mod 3);
    n_gfs = 2 + (seed mod 4);
    methods_per_gf = 1 + (seed mod 3);
    max_params = 1 + (seed mod 2);
    calls_per_body = 1 + (seed mod 3);
    writer_fraction = (if seed mod 2 = 0 then 0.3 else 0.0);
    recursion = seed mod 3 <> 0;
    seed
  }

let schema_of_seed seed = Tdp_synth.Synth.generate (config_of_seed seed)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10_000)

let prop_generated_schemas_valid =
  QCheck.Test.make ~name:"generated schemas validate and type-check" ~count:150
    seed_arb (fun seed ->
      let schema = schema_of_seed seed in
      Schema.validate_exn schema;
      Typing.check_all_methods schema;
      true)

let project seed =
  let schema = schema_of_seed seed in
  let source, projection = Tdp_synth.Synth.gen_projection ~seed schema in
  Projection.project_exn schema ~view:(Fmt.str "view%d" seed) ~source ~projection ()

let prop_projection_invariants =
  (* ~check:true makes project_exn run every Invariants check: state,
     behavior, subtyping preservation, derived state/behavior, plus
     re-type-checking all method bodies. *)
  QCheck.Test.make ~name:"projection preserves all invariants" ~count:150 seed_arb
    (fun seed ->
      ignore (project seed);
      true)

let prop_projection_deterministic =
  QCheck.Test.make ~name:"projection is deterministic" ~count:50 seed_arb
    (fun seed ->
      let o1 = project seed and o2 = project seed in
      Method_def.Key.Set.equal o1.analysis.applicable o2.analysis.applicable
      && Method_def.Key.Set.equal o1.analysis.not_applicable
           o2.analysis.not_applicable
      && Hierarchy.equal (Schema.hierarchy o1.schema) (Schema.hierarchy o2.schema))

let prop_chained_projections =
  QCheck.Test.make ~name:"views over views preserve invariants" ~count:75 seed_arb
    (fun seed ->
      let o1 = project seed in
      (* project the derived view type again *)
      let h = Schema.hierarchy o1.schema in
      let attrs = Hierarchy.all_attribute_names h o1.derived in
      QCheck.assume (attrs <> []);
      let projection2 =
        List.filteri (fun i _ -> i mod 2 = 0) attrs
      in
      let projection2 = if projection2 = [] then [ List.hd attrs ] else projection2 in
      let o2 =
        Projection.project_exn o1.schema
          ~view:(Fmt.str "vv%d" seed)
          ~source:o1.derived ~projection:projection2 ()
      in
      ignore o2;
      true)

let prop_derived_state_is_projection =
  QCheck.Test.make ~name:"derived type state = projection list" ~count:100 seed_arb
    (fun seed ->
      let o = project seed in
      let h = Schema.hierarchy o.schema in
      Attr_name.Set.equal
        (Attr_name.Set.of_list (Hierarchy.all_attribute_names h o.derived))
        (Attr_name.Set.of_list o.projection))

let prop_applicable_subset_of_candidates =
  QCheck.Test.make ~name:"applicable ∪ not-applicable covers candidates" ~count:100
    seed_arb (fun seed ->
      let o = project seed in
      let r = o.analysis in
      Method_def.Key.Set.subset r.candidates
        (Method_def.Key.Set.union r.applicable r.not_applicable)
      && Method_def.Key.Set.is_empty
           (Method_def.Key.Set.inter r.applicable r.not_applicable))

let prop_dispatch_preserved =
  QCheck.Test.make ~name:"dispatch outcomes preserved on original types" ~count:60
    seed_arb (fun seed ->
      let o = project seed in
      let originals =
        Hierarchy.type_names (Schema.hierarchy o.before)
      in
      match
        Tdp_dispatch.Static_check.dispatch_preserved ~before:o.before
          ~after:o.schema ~arg_space:originals ()
      with
      | [] -> true
      | (gf, args, _, _) :: _ ->
          QCheck.Test.fail_reportf "dispatch changed for %s(%s)" gf
            (String.concat ", " (List.map Type_name.to_string args))
      | exception Error.E (Linearization_failure _) ->
          (* random multiple inheritance can defeat the CPL; the paper's
             model assumes a usable precedence order, so skip *)
          QCheck.assume_fail ())

let prop_surrogates_transparent_to_extents =
  QCheck.Test.make ~name:"source extent = derived extent (instantiation)" ~count:40
    seed_arb (fun seed ->
      let o = project seed in
      let db = Tdp_store.Database.create o.before in
      let _oids = Tdp_synth.Synth.populate ~seed db 30 in
      let before_ext = Tdp_store.Database.extent db o.source in
      Tdp_store.Database.set_schema db o.schema;
      let after_src = Tdp_store.Database.extent db o.source in
      let after_view = Tdp_store.Database.extent db o.derived in
      (* every source instance is a view instance, and the source extent
         is unchanged by the refactoring *)
      before_ext = after_src
      && List.for_all (fun oid -> List.mem oid after_view) after_src)

let prop_unfactor_roundtrip =
  (* Dropping the view restores cumulative state, subtyping, local
     attribute sets, and method signatures of every original type. *)
  QCheck.Test.make ~name:"drop_view inverts projection" ~count:75 seed_arb
    (fun seed ->
      let o = project seed in
      let restored =
        Tdp_algebra.Unfactor.drop_view_exn o.schema ~view:(Fmt.str "view%d" seed)
      in
      let hb = Schema.hierarchy o.before and hr = Schema.hierarchy restored in
      List.for_all
        (fun def ->
          let n = Type_def.name def in
          let sorted l = List.sort Attr_name.compare l in
          Hierarchy.mem hr n
          && sorted (List.map Attribute.name (Type_def.attrs def))
             = sorted
                 (List.map Attribute.name (Type_def.attrs (Hierarchy.find hr n)))
          && Type_def.supers def = Type_def.supers (Hierarchy.find hr n))
        (Hierarchy.types hb)
      && List.for_all
           (fun m ->
             match Schema.find_method_opt restored (Method_def.key m) with
             | Some m' ->
                 Signature.equal (Method_def.signature m) (Method_def.signature m')
             | None -> false)
           (Schema.all_methods o.before)
      && Hierarchy.cardinal hb = Hierarchy.cardinal hr)

let prop_cpl_laws =
  (* Linearization laws on random hierarchies: the CPL of a type starts
     with the type, contains exactly its supertype closure, places
     every type before its proper supertypes, and preserves each
     member's local precedence order. *)
  QCheck.Test.make ~name:"class precedence list laws" ~count:100 seed_arb
    (fun seed ->
      let schema = schema_of_seed seed in
      let h = Schema.hierarchy schema in
      List.for_all
        (fun n ->
          match Linearize.cpl_result h n with
          | Error (Linearization_failure _) -> true (* inconsistent orders: allowed *)
          | Error _ -> false
          | Ok cpl ->
              let index x =
                let rec go i = function
                  | [] -> None
                  | y :: rest -> if Type_name.equal x y then Some i else go (i + 1) rest
                in
                go 0 cpl
              in
              (match cpl with x :: _ -> Type_name.equal x n | [] -> false)
              && Type_name.Set.equal
                   (Type_name.Set.of_list cpl)
                   (Hierarchy.ancestors_or_self h n)
              && List.for_all
                   (fun m ->
                     (* m precedes its proper supertypes *)
                     Type_name.Set.for_all
                       (fun s ->
                         match (index m, index s) with
                         | Some i, Some j -> i < j
                         | _ -> false)
                       (Hierarchy.ancestors h m)
                     (* and m's local precedence order is preserved *)
                     && (let rec ordered = function
                           | a :: b :: rest -> (
                               match (index a, index b) with
                               | Some i, Some j -> i < j && ordered (b :: rest)
                               | _ -> false)
                           | _ -> true
                         in
                         ordered (Hierarchy.direct_super_names h m)))
                   cpl)
        (Hierarchy.type_names h))

let prop_chain_specialization_agrees =
  (* The Section 7 single-inheritance specialization must produce a
     hierarchy identical (including surrogate names) to the general
     FactorState on every single-inheritance schema. *)
  QCheck.Test.make ~name:"chain specialization ≡ general FactorState" ~count:80
    seed_arb (fun seed ->
      let cfg = { (config_of_seed seed) with max_supers = 1 } in
      let schema = Tdp_synth.Synth.generate cfg in
      QCheck.assume
        (Specialize.is_single_inheritance (Schema.hierarchy schema));
      let source, projection = Tdp_synth.Synth.gen_projection ~seed schema in
      let general =
        Factor_state.run_exn (Schema.hierarchy schema) ~view:"v" ~source
          ~projection ()
      in
      let chain =
        Specialize.factor_chain_exn (Schema.hierarchy schema) ~view:"v" ~source
          ~projection ()
      in
      Hierarchy.equal general.hierarchy chain.hierarchy
      && Type_name.equal general.derived chain.derived
      && Type_name.Map.equal Type_name.equal general.surrogates chain.surrogates)

let prop_generalize_preserves_operands =
  (* Generalization (union view) must not change either operand's state
     and must give the union type exactly the shared attributes; its
     extent must contain both operands' instances. *)
  QCheck.Test.make ~name:"generalization preserves operands" ~count:60 seed_arb
    (fun seed ->
      let schema = schema_of_seed seed in
      let h = Schema.hierarchy schema in
      (* find two unrelated types with shared attributes *)
      let names = Hierarchy.type_names h in
      let pair =
        List.find_map
          (fun t1 ->
            List.find_map
              (fun t2 ->
                if
                  Type_name.compare t1 t2 < 0
                  && (not (Hierarchy.subtype h t1 t2))
                  && (not (Hierarchy.subtype h t2 t1))
                  && Tdp_algebra.Generalize.common_attributes h t1 t2 <> []
                then Some (t1, t2)
                else None)
              names)
          names
      in
      match pair with
      | None -> QCheck.assume_fail ()
      | Some (t1, t2) ->
          (* generalize_exn re-checks state preservation internally *)
          let o =
            Tdp_algebra.Generalize.generalize_exn schema ~view:"u"
              ~name:(Type_name.of_string "UnionT") t1 t2
          in
          let db = Tdp_store.Database.create o.schema in
          let _ = Tdp_synth.Synth.populate ~seed db 20 in
          let union_ext = Tdp_store.Database.extent db o.name in
          List.for_all
            (fun t ->
              List.for_all
                (fun oid -> List.mem oid union_ext)
                (Tdp_store.Database.extent db t))
            [ t1; t2 ])

let prop_matview_converges =
  (* After arbitrary base updates, one refresh makes the copies carry
     exactly the same attribute values as a from-scratch
     materialization. *)
  QCheck.Test.make ~name:"matview refresh converges to rematerialization" ~count:40
    seed_arb (fun seed ->
      let o = project seed in
      let db = Tdp_store.Database.create o.schema in
      let oids = Tdp_synth.Synth.populate ~seed db 15 in
      let expr = Tdp_algebra.View.Base o.source in
      let mv = Tdp_algebra.Matview.create db ~view_type:o.derived expr in
      (* random mutations over int slots *)
      let st = Random.State.make [| seed |] in
      let h = Schema.hierarchy o.schema in
      List.iter
        (fun oid ->
          if Random.State.bool st then
            let ty_ = Tdp_store.Database.type_of db oid in
            match Hierarchy.all_attributes h ty_ with
            | [] -> ()
            | attrs ->
                let a = List.nth attrs (Random.State.int st (List.length attrs)) in
                Tdp_store.Database.set_attr db oid (Attribute.name a)
                  (Tdp_store.Value.Int (Random.State.int st 50)))
        oids;
      let _ = Tdp_algebra.Matview.refresh db mv in
      let view_attrs = Hierarchy.all_attribute_names h o.derived in
      let slots oid =
        List.map (fun a -> Tdp_store.Database.get_attr db oid a) view_attrs
      in
      let copies = List.map slots (Tdp_algebra.Matview.copies mv) in
      let fresh =
        List.map slots (Tdp_algebra.View.materialize db ~view_type:o.derived expr)
      in
      List.sort compare copies = List.sort compare fresh)

let () =
  let to_alco = QCheck_alcotest.to_alcotest in
  Alcotest.run "invariants-prop"
    [ ( "properties",
        List.map to_alco
          [ prop_generated_schemas_valid;
            prop_projection_invariants;
            prop_projection_deterministic;
            prop_chained_projections;
            prop_derived_state_is_projection;
            prop_applicable_subset_of_candidates;
            prop_dispatch_preserved;
            prop_surrogates_transparent_to_extents;
            prop_unfactor_roundtrip;
            prop_cpl_laws;
            prop_chain_specialization_agrees;
            prop_generalize_preserves_operands;
            prop_matview_converges
          ] )
    ]
