open Tdp_core
module Synth = Tdp_synth.Synth
open Helpers

let test_determinism () =
  let s1 = Synth.generate Synth.default in
  let s2 = Synth.generate Synth.default in
  Alcotest.(check bool) "same seed, same hierarchy" true
    (Hierarchy.equal (Schema.hierarchy s1) (Schema.hierarchy s2));
  Alcotest.(check int) "same method count"
    (List.length (Schema.all_methods s1))
    (List.length (Schema.all_methods s2))

let test_different_seeds_differ () =
  let s1 = Synth.generate Synth.default in
  let s2 = Synth.generate { Synth.default with seed = Synth.default.seed + 1 } in
  Alcotest.(check bool) "different seeds, different schema" false
    (Hierarchy.equal (Schema.hierarchy s1) (Schema.hierarchy s2))

let test_validity_across_configs () =
  List.iter
    (fun cfg ->
      let s = Synth.generate cfg in
      Schema.validate_exn s;
      Typing.check_all_methods s)
    [ Synth.default;
      { Synth.default with n_types = 1; n_gfs = 1; methods_per_gf = 1 };
      { Synth.default with n_types = 40; max_supers = 3; seed = 9 };
      { Synth.default with writer_fraction = 1.0; seed = 3 };
      { Synth.default with recursion = false; seed = 5 }
    ]

let test_size_scales () =
  let small = Synth.generate { Synth.default with n_types = 5 } in
  let large = Synth.generate { Synth.default with n_types = 50 } in
  Alcotest.(check int) "small" 5 (Hierarchy.cardinal (Schema.hierarchy small));
  Alcotest.(check int) "large" 50 (Hierarchy.cardinal (Schema.hierarchy large))

let test_gen_projection_available () =
  for seed = 0 to 20 do
    let s = Synth.generate { Synth.default with seed } in
    let source, projection = Synth.gen_projection ~seed s in
    Alcotest.(check bool) "non-empty" true (projection <> []);
    List.iter
      (fun a ->
        Alcotest.(check bool) "available" true
          (Hierarchy.has_attribute (Schema.hierarchy s) source a))
      projection
  done

let test_populate () =
  let s = Synth.generate Synth.default in
  let db = Tdp_store.Database.create s in
  let oids = Synth.populate db 25 in
  Alcotest.(check int) "25 objects" 25 (List.length oids);
  Alcotest.(check int) "count agrees" 25 (Tdp_store.Database.count db);
  (* all slots are filled with ints *)
  List.iter
    (fun oid ->
      let ty_ = Tdp_store.Database.type_of db oid in
      List.iter
        (fun a ->
          match
            Tdp_store.Database.get_attr db oid (Attribute.name a)
          with
          | Tdp_store.Value.Int _ -> ()
          | v -> Alcotest.failf "unexpected value %a" Tdp_store.Value.pp v)
        (Hierarchy.all_attributes (Schema.hierarchy s) ty_))
    oids;
  ignore at;
  ignore ty

let suite =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
    Alcotest.test_case "validity across configs" `Quick test_validity_across_configs;
    Alcotest.test_case "size scales" `Quick test_size_scales;
    Alcotest.test_case "projections are available" `Quick test_gen_projection_available;
    Alcotest.test_case "populate" `Quick test_populate
  ]

let () = Alcotest.run "synth" [ ("synth", suite) ]
