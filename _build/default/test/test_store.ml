open Tdp_core
module Database = Tdp_store.Database
module Value = Tdp_store.Value
module Interp = Tdp_store.Interp
open Helpers

let v_int i = Value.Int i
let v_float f = Value.Float f
let v_date y = Value.Date y
let v_str s = Value.String s

let fig1_db () =
  let db = Database.create Tdp_paper.Fig1.schema in
  let alice =
    Database.new_object db (ty "Employee")
      ~init:
        [ (at "ssn", v_int 111);
          (at "name", v_str "alice");
          (at "date_of_birth", v_date 1990);
          (at "pay_rate", v_float 50.0);
          (at "hrs_worked", v_float 10.0)
        ]
  in
  let bob =
    Database.new_object db (ty "Person")
      ~init:
        [ (at "ssn", v_int 222); (at "name", v_str "bob"); (at "date_of_birth", v_date 2000) ]
  in
  (db, alice, bob)

let test_new_object_and_slots () =
  let db, alice, _ = fig1_db () in
  Alcotest.(check bool) "ssn stored" true
    (Value.equal (Database.get_attr db alice (at "ssn")) (v_int 111));
  Alcotest.(check string) "type" "Employee"
    (Type_name.to_string (Database.type_of db alice));
  Alcotest.(check int) "two objects" 2 (Database.count db)

let test_uninitialized_is_null () =
  let db = Database.create Tdp_paper.Fig1.schema in
  let p = Database.new_object db (ty "Person") ~init:[ (at "ssn", v_int 1) ] in
  Alcotest.(check bool) "name is null" true
    (Value.equal (Database.get_attr db p (at "name")) Value.Null)

let test_type_errors () =
  let db, alice, _ = fig1_db () in
  (match Database.set_attr db alice (at "ssn") (v_str "oops") with
  | exception Database.Store_error _ -> ()
  | () -> Alcotest.fail "string into int slot must fail");
  (match Database.new_object db (ty "Nope") ~init:[] with
  | exception Database.Store_error _ -> ()
  | _ -> Alcotest.fail "unknown type must fail");
  (match Database.new_object db (ty "Person") ~init:[ (at "pay_rate", v_float 1.) ] with
  | exception Database.Store_error _ -> ()
  | _ -> Alcotest.fail "attribute not in state must fail");
  match Database.get_attr db alice (at "nope") with
  | exception Database.Store_error _ -> ()
  | _ -> Alcotest.fail "unknown attribute must fail"

let test_deep_extent () =
  let db, alice, bob = fig1_db () in
  Alcotest.(check int) "Person extent has both" 2
    (List.length (Database.extent db (ty "Person")));
  Alcotest.(check (list int)) "Employee extent"
    [ Tdp_store.Oid.to_int alice ]
    (List.map Tdp_store.Oid.to_int (Database.extent db (ty "Employee")));
  ignore bob

let test_interp_reader_and_method () =
  let db, alice, bob = fig1_db () in
  let i = Interp.create ~now:2026 db in
  Alcotest.(check bool) "age alice = 36" true
    (Value.equal (Interp.call_on i "age" [ alice ]) (v_int 36));
  Alcotest.(check bool) "age bob = 26" true
    (Value.equal (Interp.call_on i "age" [ bob ]) (v_int 26));
  Alcotest.(check bool) "income = 500" true
    (Value.equal (Interp.call_on i "income" [ alice ]) (v_float 500.0));
  Alcotest.(check bool) "promote: old enough, cheap enough" true
    (Value.equal (Interp.call_on i "promote" [ alice ]) (Value.Bool true))

let test_interp_writer () =
  let db, alice, _ = fig1_db () in
  let i = Interp.create db in
  ignore (Interp.call i "set_pay_rate" [ Value.Ref alice; v_float 75.0 ]);
  Alcotest.(check bool) "written" true
    (Value.equal (Database.get_attr db alice (at "pay_rate")) (v_float 75.0))

let test_interp_no_applicable () =
  let db, _, bob = fig1_db () in
  let i = Interp.create db in
  match Interp.call_on i "income" [ bob ] with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "income(Person) must fail to dispatch"

(* The dynamic half of the paper's behavior-preservation claim: after
   the projection refactors the schema, every call on pre-existing
   objects returns the same value. *)
let test_behavior_preserved_dynamically () =
  let db, alice, bob = fig1_db () in
  let i = Interp.create ~now:2026 db in
  let before =
    [ Interp.call_on i "age" [ alice ];
      Interp.call_on i "age" [ bob ];
      Interp.call_on i "income" [ alice ];
      Interp.call_on i "promote" [ alice ];
      Interp.call_on i "get_name" [ bob ]
    ]
  in
  let o = Tdp_paper.Fig1.project () in
  Database.set_schema db o.schema;
  let i = Interp.refresh i in
  let after =
    [ Interp.call_on i "age" [ alice ];
      Interp.call_on i "age" [ bob ];
      Interp.call_on i "income" [ alice ];
      Interp.call_on i "promote" [ alice ];
      Interp.call_on i "get_name" [ bob ]
    ]
  in
  Alcotest.(check bool) "same results" true (List.for_all2 Value.equal before after)

let test_view_extent_and_native_instances () =
  let db, alice, bob = fig1_db () in
  let o = Tdp_paper.Fig1.project () in
  Database.set_schema db o.schema;
  (* every Employee is an Employee_hat instance, Persons are not *)
  let view_ext = Database.extent db (ty "Employee_hat") in
  Alcotest.(check bool) "alice in view" true (List.mem alice view_ext);
  Alcotest.(check bool) "bob not in view" false (List.mem bob view_ext);
  (* a native view instance carries only the projected state *)
  let carol =
    Database.new_object db (ty "Employee_hat")
      ~init:
        [ (at "ssn", v_int 333); (at "date_of_birth", v_date 1980);
          (at "pay_rate", v_float 60.0)
        ]
  in
  let i = Interp.create ~now:2026 db in
  Alcotest.(check bool) "age works on a native view instance" true
    (Value.equal (Interp.call_on i "age" [ carol ]) (v_int 46));
  (match Database.get_attr db carol (at "name") with
  | exception Database.Store_error _ -> ()
  | _ -> Alcotest.fail "view instance must not have name");
  (* income depends on hrs_worked, outside the view: no method *)
  match Interp.call_on i "income" [ carol ] with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "income must not apply to the view type"

let test_reference_attributes () =
  (* An object-typed attribute accepts subtype instances and rejects
     others. *)
  let s = Tdp_paper.Fig1.schema in
  let s =
    Schema.add_type s
      (Type_def.make
         ~attrs:[ Attribute.make (at "manager") (Value_type.named (ty "Employee")) ]
         (ty "Team"))
  in
  let db = Database.create s in
  let alice =
    Database.new_object db (ty "Employee")
      ~init:[ (at "ssn", v_int 1); (at "pay_rate", v_float 1.0) ]
  in
  let bob = Database.new_object db (ty "Person") ~init:[ (at "ssn", v_int 2) ] in
  let _team =
    Database.new_object db (ty "Team") ~init:[ (at "manager", Value.Ref alice) ]
  in
  match Database.new_object db (ty "Team") ~init:[ (at "manager", Value.Ref bob) ] with
  | exception Database.Store_error _ -> ()
  | _ -> Alcotest.fail "Person is not an Employee"

let test_builtin_arithmetic () =
  let db, alice, _ = fig1_db () in
  let i = Interp.create db in
  ignore i;
  ignore alice;
  (* exercise the builtin evaluator through a synthetic method *)
  let s =
    Schema.add_method (Database.schema db)
      (Method_def.make ~gf:"calc" ~id:"calc"
         ~signature:(Signature.make ~result:Value_type.int [ ("e", ty "Employee") ])
         (General
            [ Body.local "x" Value_type.int ~init:(Body.int 10);
              Body.while_
                (Body.builtin "<" [ Body.var "x"; Body.int 40 ])
                [ Body.assign "x" (Body.builtin "+" [ Body.var "x"; Body.int 10 ]) ];
              Body.if_
                (Body.builtin "=" [ Body.var "x"; Body.int 40 ])
                [ Body.return_ (Body.var "x") ]
                [ Body.return_ (Body.int (-1)) ]
            ]))
  in
  Database.set_schema db s;
  let i = Interp.create db in
  Alcotest.(check bool) "loop + if" true
    (Value.equal (Interp.call_on i "calc" [ alice ]) (v_int 40))

let test_delete_policies () =
  let s = Tdp_paper.Fig1.schema in
  let s =
    Schema.add_type s
      (Type_def.make
         ~attrs:[ Attribute.make (at "manager") (Value_type.named (ty "Employee")) ]
         (ty "Team"))
  in
  let db = Database.create s in
  let alice =
    Database.new_object db (ty "Employee")
      ~init:[ (at "ssn", v_int 1); (at "pay_rate", v_float 1.0) ]
  in
  let team =
    Database.new_object db (ty "Team") ~init:[ (at "manager", Value.Ref alice) ]
  in
  Alcotest.(check int) "one referrer" 1 (List.length (Database.referrers db alice));
  (* Restrict refuses *)
  (match Database.delete db alice with
  | exception Database.Store_error _ -> ()
  | () -> Alcotest.fail "restricted delete must fail");
  Alcotest.(check int) "still two objects" 2 (Database.count db);
  (* Nullify clears the slot *)
  Database.delete db ~policy:Database.Nullify alice;
  Alcotest.(check int) "one object" 1 (Database.count db);
  Alcotest.(check bool) "slot nulled" true
    (Value.equal (Database.get_attr db team (at "manager")) Value.Null);
  (* unreferenced delete is plain *)
  Database.delete db team;
  Alcotest.(check int) "empty" 0 (Database.count db)

let test_call_next_method () =
  (* promote2 on Employee shadows promote; it defers to the Person
     method via call_next_method and combines results. *)
  let s = Tdp_paper.Fig1.schema in
  let s =
    Schema.add_method s
      (Method_def.make ~gf:"describe" ~id:"describe_person"
         ~signature:(Signature.make ~result:Value_type.int [ ("p", ty "Person") ])
         (General [ Body.return_ (Body.int 1) ]))
  in
  let s =
    Schema.add_method s
      (Method_def.make ~gf:"describe" ~id:"describe_employee"
         ~signature:(Signature.make ~result:Value_type.int [ ("e", ty "Employee") ])
         (General
            [ Body.return_
                (Body.builtin "+"
                   [ Body.int 10; Body.builtin "call_next_method" [] ])
            ]))
  in
  let db = Database.create s in
  let alice =
    Database.new_object db (ty "Employee")
      ~init:[ (at "ssn", v_int 1); (at "pay_rate", v_float 1.0) ]
  in
  let bob = Database.new_object db (ty "Person") ~init:[ (at "ssn", v_int 2) ] in
  let i = Interp.create db in
  Alcotest.(check bool) "employee: own + next" true
    (Value.equal (Interp.call_on i "describe" [ alice ]) (v_int 11));
  Alcotest.(check bool) "person: base only" true
    (Value.equal (Interp.call_on i "describe" [ bob ]) (v_int 1))

let test_runaway_recursion_guard () =
  let s = Tdp_paper.Fig1.schema in
  let s =
    Schema.add_method s
      (Method_def.make ~gf:"loop_forever" ~id:"loop_forever"
         ~signature:(Signature.make [ ("p", ty "Person") ])
         (General [ Body.expr (Body.call "loop_forever" [ Body.var "p" ]) ]))
  in
  let db = Database.create s in
  let bob = Database.new_object db (ty "Person") ~init:[] in
  let i = Interp.create ~max_depth:64 db in
  (match Interp.call_on i "loop_forever" [ bob ] with
  | exception Interp.Runtime_error msg ->
      Alcotest.(check bool) "mentions depth" true
        (let n = "recursion depth" in
         let rec go k =
           k + String.length n <= String.length msg
           && (String.sub msg k (String.length n) = n || go (k + 1))
         in
         go 0)
  | _ -> Alcotest.fail "expected a depth error");
  (* the guard unwinds cleanly: the interpreter still works *)
  Alcotest.(check bool) "interpreter usable afterwards" true
    (Value.equal (Interp.call_on i "get_ssn" [ bob ]) Value.Null)

let test_call_next_method_exhausted () =
  let s = Tdp_paper.Fig1.schema in
  let s =
    Schema.add_method s
      (Method_def.make ~gf:"solo" ~id:"solo"
         ~signature:(Signature.make ~result:Value_type.int [ ("p", ty "Person") ])
         (General [ Body.return_ (Body.builtin "call_next_method" []) ]))
  in
  let db = Database.create s in
  let bob = Database.new_object db (ty "Person") ~init:[ (at "ssn", v_int 2) ] in
  let i = Interp.create db in
  match Interp.call_on i "solo" [ bob ] with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "exhausted next-method chain must fail"

(* End-to-end: schema written in the surface language, views applied,
   objects stored, methods run through the interpreter with
   multiple-inheritance dispatch (TA ⪯ Student, Instructor). *)
let test_dsl_end_to_end () =
  let src =
    {|
type Person { pid : int; byear : int; }
type Student : Person(1) { gpa : float; credits : int; }
type Instructor : Person(1) { salary : float; }
type TA : Student(1), Instructor(2) { stipend : float; }

reader get_pid(self : Person) -> pid;
reader get_gpa(self : Student) -> gpa;
reader get_credits(self : Student) -> credits;
reader get_salary(self : Instructor) -> salary;
reader get_stipend(self : TA) -> stipend;

method cost(i : Instructor) : float { return get_salary(i); }
method cost#cost_ta(t : TA) : float {
  return get_stipend(t) + call_next_method();
}
method honors(s : Student) : bool {
  return get_gpa(s) >= 3.7 and get_credits(s) >= 30;
}

view Transcript = project Student on [pid, gpa, credits];
|}
  in
  let r = Tdp_lang.Elaborate.load_exn src in
  let schema, _ = Tdp_lang.Elaborate.apply_views_exn r in
  let db = Database.create schema in
  let ta =
    Database.new_object db (ty "TA")
      ~init:
        [ (at "pid", v_int 1); (at "byear", v_int 2000);
          (at "gpa", Value.Float 3.9); (at "credits", v_int 40);
          (at "salary", Value.Float 100.0); (at "stipend", Value.Float 25.0)
        ]
  in
  let i = Interp.create db in
  (* TA-specific method defers to the Instructor one via call_next_method *)
  Alcotest.(check bool) "cost(ta) = stipend + salary" true
    (Value.equal (Interp.call_on i "cost" [ ta ]) (v_float 125.0));
  Alcotest.(check bool) "honors through Student branch" true
    (Value.equal (Interp.call_on i "honors" [ ta ]) (Value.Bool true));
  (* the TA is in the Transcript view's extent and answers honors there *)
  Alcotest.(check bool) "ta in Transcript extent" true
    (List.mem ta (Database.extent db (ty "Transcript")));
  (* a native Transcript instance cannot answer cost *)
  let native =
    Database.new_object db (ty "Transcript")
      ~init:[ (at "pid", v_int 2); (at "gpa", Value.Float 3.8); (at "credits", v_int 31) ]
  in
  Alcotest.(check bool) "native view instance honors" true
    (Value.equal (Interp.call_on i "honors" [ native ]) (Value.Bool true));
  match Interp.call_on i "cost" [ native ] with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "cost must not apply to the view type"

let suite =
  [ Alcotest.test_case "new object and slots" `Quick test_new_object_and_slots;
    Alcotest.test_case "DSL end-to-end (multi-inheritance)" `Quick
      test_dsl_end_to_end;
    Alcotest.test_case "delete policies" `Quick test_delete_policies;
    Alcotest.test_case "call_next_method" `Quick test_call_next_method;
    Alcotest.test_case "call_next_method exhausted" `Quick
      test_call_next_method_exhausted;
    Alcotest.test_case "runaway recursion guard" `Quick test_runaway_recursion_guard;
    Alcotest.test_case "uninitialized is null" `Quick test_uninitialized_is_null;
    Alcotest.test_case "type errors" `Quick test_type_errors;
    Alcotest.test_case "deep extent" `Quick test_deep_extent;
    Alcotest.test_case "reader + general methods" `Quick test_interp_reader_and_method;
    Alcotest.test_case "writer" `Quick test_interp_writer;
    Alcotest.test_case "no applicable method" `Quick test_interp_no_applicable;
    Alcotest.test_case "behavior preserved dynamically" `Quick
      test_behavior_preserved_dynamically;
    Alcotest.test_case "view extents + native instances" `Quick
      test_view_extent_and_native_instances;
    Alcotest.test_case "reference attributes" `Quick test_reference_attributes;
    Alcotest.test_case "builtin arithmetic" `Quick test_builtin_arithmetic
  ]

let () = Alcotest.run "store" [ ("store", suite) ]
