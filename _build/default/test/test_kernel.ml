(* Unit tests for the small kernel modules: names, attributes,
   signatures, method keys, generic functions, values — plus a parser
   robustness fuzz (any input either parses or raises Parse_error). *)

open Tdp_core
open Helpers

let test_names () =
  Alcotest.(check string) "roundtrip" "T" (Type_name.to_string (ty "T"));
  Alcotest.(check bool) "equal" true (Type_name.equal (ty "T") (ty "T"));
  Alcotest.(check bool) "ordered" true (Type_name.compare (ty "A") (ty "B") < 0);
  (match Type_name.of_string "" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty type name must be rejected");
  match Attr_name.of_string "" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty attr name must be rejected"

let test_attribute () =
  let a = Attribute.make (at "x") Value_type.int in
  Alcotest.(check string) "name" "x" (Attr_name.to_string (Attribute.name a));
  Alcotest.(check bool) "equal" true
    (Attribute.equal a (Attribute.make (at "x") Value_type.int));
  Alcotest.(check bool) "type matters" false
    (Attribute.equal a (Attribute.make (at "x") Value_type.float));
  Alcotest.(check string) "pp" "x : int" (Fmt.str "%a" Attribute.pp a)

let test_value_type () =
  Alcotest.(check bool) "prim equal" true (Value_type.equal Value_type.int Value_type.int);
  Alcotest.(check bool) "prim differ" false
    (Value_type.equal Value_type.int Value_type.float);
  Alcotest.(check bool) "named" true
    (Value_type.equal (Value_type.named (ty "A")) (Value_type.named (ty "A")));
  Alcotest.(check (option string)) "as_named" (Some "A")
    (Option.map Type_name.to_string (Value_type.as_named (Value_type.named (ty "A"))));
  Alcotest.(check (option string)) "as_named prim" None
    (Option.map Type_name.to_string (Value_type.as_named Value_type.int))

let test_signature () =
  let s =
    Signature.make ~result:Value_type.int [ ("a", ty "A"); ("b", ty "B") ]
  in
  Alcotest.(check int) "arity" 2 (Signature.arity s);
  Alcotest.(check string) "param_type 1" "B"
    (Type_name.to_string (Signature.param_type s 1));
  (match Signature.param_type s 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of bounds must fail");
  let s' = Signature.map_param_types (fun _ -> ty "Z") s in
  Alcotest.(check bool) "map" true
    (List.for_all (Type_name.equal (ty "Z")) (Signature.param_types s'));
  Alcotest.(check bool) "names kept" true
    (List.map fst (Signature.params s') = [ "a"; "b" ])

let test_method_key () =
  let k1 = key "u" "u1" and k2 = key "u" "u2" and k3 = key "v" "u1" in
  Alcotest.(check bool) "equal" true (Method_def.Key.equal k1 (key "u" "u1"));
  Alcotest.(check bool) "id differs" false (Method_def.Key.equal k1 k2);
  Alcotest.(check bool) "gf major" true (Method_def.Key.compare k1 k3 < 0);
  Alcotest.(check int) "set dedup" 2
    (Method_def.Key.Set.cardinal (keys [ ("u", "u1"); ("u", "u1"); ("u", "u2") ]))

let test_generic_function () =
  let g = Generic_function.declare ~arity:1 ~result:Value_type.int "g" in
  let m =
    Method_def.make ~gf:"g" ~id:"m1"
      ~signature:(Signature.make [ ("x", ty "A") ])
      (General [ Body.return_unit ])
  in
  let g = Generic_function.add_method g m in
  Alcotest.(check bool) "find" true (Generic_function.find_method g "m1" <> None);
  (match
     Generic_function.add_method g
       (Method_def.make ~gf:"other" ~id:"m2"
          ~signature:(Signature.make [ ("x", ty "A") ])
          (General []))
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign method must be rejected");
  let g = Generic_function.remove_method g "m1" in
  Alcotest.(check int) "removed" 0 (List.length (Generic_function.methods g))

let test_values () =
  let module Value = Tdp_store.Value in
  Alcotest.(check bool) "int conforms" true (Value.conforms_prim (Value.Int 1) Int);
  Alcotest.(check bool) "null conforms anywhere" true
    (Value.conforms_prim Value.Null String);
  Alcotest.(check bool) "cross kind" false
    (Value.conforms_prim (Value.String "s") Int);
  Alcotest.(check bool) "date" true (Value.conforms_prim (Value.Date 1990) Date);
  Alcotest.(check bool) "of_literal" true
    (Value.equal (Value.of_literal (Body.Int 3)) (Value.Int 3))

(* Robustness: the parser must never crash — any printable input either
   parses or raises a positioned Parse_error. *)
let prop_parser_total =
  QCheck.Test.make ~name:"parser totality on arbitrary input" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 200) Gen.printable)
    (fun src ->
      match Tdp_lang.Parser.parse_string src with
      | _ -> true
      | exception Error.E (Parse_error _) -> true
      | exception _ -> false)

(* Same for the dump loader. *)
let prop_dump_total =
  QCheck.Test.make ~name:"dump parser totality" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 200) Gen.printable)
    (fun src ->
      let db = Tdp_store.Database.create Tdp_paper.Fig1.schema in
      match Tdp_store.Dump.load_into db src with
      | _ -> true
      | exception Tdp_store.Dump.Parse_error _ -> true
      | exception _ -> false)

let suite =
  [ Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "attribute" `Quick test_attribute;
    Alcotest.test_case "value types" `Quick test_value_type;
    Alcotest.test_case "signature" `Quick test_signature;
    Alcotest.test_case "method keys" `Quick test_method_key;
    Alcotest.test_case "generic function" `Quick test_generic_function;
    Alcotest.test_case "runtime values" `Quick test_values;
    QCheck_alcotest.to_alcotest prop_parser_total;
    QCheck_alcotest.to_alcotest prop_dump_total
  ]

let () = Alcotest.run "kernel" [ ("kernel", suite) ]
