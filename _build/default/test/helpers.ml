open Tdp_core

let ty = Type_name.of_string
let at = Attr_name.of_string
let key gf id = Method_def.Key.make gf id
let keys l = Method_def.Key.Set.of_list (List.map (fun (g, i) -> key g i) l)

let key_set =
  Alcotest.testable
    (fun ppf s ->
      Fmt.pf ppf "{%a}"
        Fmt.(list ~sep:comma Method_def.Key.pp)
        (Method_def.Key.Set.elements s))
    Method_def.Key.Set.equal

let name_set =
  Alcotest.testable
    (fun ppf s ->
      Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma Type_name.pp) (Type_name.Set.elements s))
    Type_name.Set.equal

let attr_names =
  Alcotest.testable
    (fun ppf l -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:comma Attr_name.pp) l)
    (List.equal Attr_name.equal)

let supers_t =
  Alcotest.testable
    (fun ppf l ->
      Fmt.pf ppf "[%a]"
        Fmt.(list ~sep:comma (fun ppf (n, p) -> Fmt.pf ppf "%a@%d" Type_name.pp n p))
        l)
    (List.equal (fun (n, p) (m, q) -> Type_name.equal n m && p = q))

(* Assert a type's local attributes (names, in order) and supertype list. *)
let check_type h name ~attrs ~supers =
  let def = Hierarchy.find h (ty name) in
  Alcotest.check attr_names
    (name ^ " local attrs")
    (List.map at attrs)
    (List.map Attribute.name (Type_def.attrs def));
  Alcotest.check supers_t (name ^ " supers")
    (List.map (fun (s, p) -> (ty s, p)) supers)
    (Type_def.supers def)

let check_applicability (r : Applicability.result) ~applicable ~not_applicable =
  Alcotest.check key_set "applicable" (keys applicable) r.applicable;
  Alcotest.check key_set "not applicable" (keys not_applicable) r.not_applicable

let method_param_types schema gf id =
  let m = Schema.find_method schema (key gf id) in
  List.map Type_name.to_string (Signature.param_types (Method_def.signature m))

let run_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %a" Error.pp e
