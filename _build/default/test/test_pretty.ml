(* Rendering coverage: every error constructor, diff change, DOT
   export, and the summary printers produce sensible, non-empty text.
   These are cheap but catch format-string regressions and keep the
   printers exercised end to end. *)

open Tdp_core
open Helpers

let str_contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_error_pp_total () =
  let errors : (Error.t * string) list =
    [ (Unknown_type (ty "X"), "X");
      (Duplicate_type (ty "X"), "duplicate");
      (Unknown_attribute (at "a"), "a");
      (Duplicate_attribute { attr = at "a"; types = [ ty "X"; ty "Y" ] }, "several");
      (Attribute_not_available { ty = ty "X"; attr = at "a" }, "not available");
      (Cycle [ ty "X"; ty "Y"; ty "X" ], "cycle");
      (Duplicate_super { sub = ty "X"; super = ty "Y" }, "supertype");
      (Self_super (ty "X"), "own supertype");
      (Duplicate_precedence { sub = ty "X"; prec = 3 }, "precedence 3");
      (Unknown_generic_function "g", "g");
      (Duplicate_method { gf = "g"; id = "m" }, "g.m");
      (Arity_mismatch { gf = "g"; expected = 2; got = 3 }, "arity 2");
      (Accessor_attr_not_inherited { meth = "m"; attr = at "a" }, "accessor");
      (Non_object_argument { gf = "g"; position = 0 }, "not an object");
      (Unbound_variable { meth = "m"; var = "v" }, "unbound");
      (Empty_projection, "empty");
      (Linearization_failure (ty "X"), "linearization");
      (Parse_error { line = 3; col = 7; message = "boom" }, "3:7");
      (Invariant_violation "oops", "oops")
    ]
  in
  List.iter
    (fun (e, fragment) ->
      let s = Error.to_string e in
      Alcotest.(check bool)
        (Fmt.str "error mentions %S" fragment)
        true (str_contains s fragment))
    errors

let test_dot_output () =
  let o = Tdp_paper.Fig3.project () in
  let dot = Dot.of_hierarchy ~name:"g" (Schema.hierarchy o.schema) in
  Alcotest.(check bool) "digraph" true (str_contains dot "digraph \"g\"");
  Alcotest.(check bool) "surrogates dashed" true (str_contains dot "style=dashed");
  (* the Fig 4 edge A -> A_hat with precedence 0 *)
  Alcotest.(check bool) "edge with precedence" true
    (str_contains dot "\"A\" -> \"A_hat\" [label=\"0\"]");
  (* every type appears as a node *)
  List.iter
    (fun def ->
      Alcotest.(check bool)
        (Type_name.to_string (Type_def.name def))
        true
        (str_contains dot
           (Fmt.str "\"%s\"" (Type_name.to_string (Type_def.name def)))))
    (Hierarchy.types (Schema.hierarchy o.schema))

let test_projection_summary () =
  let o = Tdp_paper.Fig3.project () in
  let s = Fmt.str "%a" Projection.pp_summary o in
  Alcotest.(check bool) "names the view" true (str_contains s "a_view");
  Alcotest.(check bool) "counts surrogates" true (str_contains s "surrogates: 6");
  Alcotest.(check bool) "counts applicable" true (str_contains s "4 / 13")

let test_applicability_pp () =
  let o = Tdp_paper.Fig3.project () in
  let s = Fmt.str "%a" Applicability.pp_result o.analysis in
  Alcotest.(check bool) "lists u3" true (str_contains s "u3");
  List.iter
    (fun e -> Alcotest.(check bool) "event renders" true (Fmt.str "%a" Applicability.pp_event e <> ""))
    o.analysis.trace

let test_diff_pp () =
  let o = Tdp_paper.Fig1.project () in
  let changes = Diff.schema_changes o.before o.schema in
  let s = Fmt.str "%a" Diff.pp changes in
  Alcotest.(check bool) "attr move rendered" true
    (str_contains s "attr pay_rate moved Employee -> Employee_hat");
  Alcotest.(check bool) "type addition rendered" true
    (str_contains s "+ type Person_hat")

let test_schema_pp () =
  let s = Fmt.str "%a" Schema.pp Tdp_paper.Fig3.schema in
  List.iter
    (fun frag ->
      Alcotest.(check bool) frag true (str_contains s frag))
    [ "type A"; "generic u/1"; "method v1"; "reader get_h2" ]

let test_rewrite_pp () =
  let o = Tdp_paper.Fig3.project () in
  let rendered =
    String.concat "\n" (List.map (Fmt.str "%a" Factor_methods.pp_rewrite) o.rewrites)
  in
  Alcotest.(check bool) "v1 rewrite rendered" true
    (str_contains rendered "v1: (A, C) ->")

let suite =
  [ Alcotest.test_case "every error renders" `Quick test_error_pp_total;
    Alcotest.test_case "dot output" `Quick test_dot_output;
    Alcotest.test_case "projection summary" `Quick test_projection_summary;
    Alcotest.test_case "applicability printers" `Quick test_applicability_pp;
    Alcotest.test_case "diff printer" `Quick test_diff_pp;
    Alcotest.test_case "schema printer" `Quick test_schema_pp;
    Alcotest.test_case "rewrite printer" `Quick test_rewrite_pp
  ]

let () = Alcotest.run "pretty" [ ("pretty", suite) ]
