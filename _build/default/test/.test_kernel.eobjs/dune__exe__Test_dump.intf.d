test/test_dump.mli:
