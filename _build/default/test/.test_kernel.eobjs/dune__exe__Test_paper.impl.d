test/test_paper.ml: Alcotest Applicability Attr_name Body Helpers Hierarchy List Method_def Schema Signature String Tdp_core Tdp_paper Type_name Typing Value_type
