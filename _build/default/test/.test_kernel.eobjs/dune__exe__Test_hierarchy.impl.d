test/test_hierarchy.ml: Alcotest Attr_name Attribute Error Helpers Hierarchy List Option Subtype_cache Tdp_core Type_def Type_name Value_type
