test/test_applicability.ml: Alcotest Applicability Attr_name Attribute Body Error Helpers Hierarchy List Method_def Schema Signature String Tdp_core Tdp_paper Type_def Value_type
