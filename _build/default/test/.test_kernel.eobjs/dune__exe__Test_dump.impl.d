test/test_dump.ml: Alcotest Attr_name Attribute Fmt Helpers List QCheck QCheck_alcotest Schema String Tdp_core Tdp_paper Tdp_store Tdp_synth Type_def Value_type
