test/test_linearize.ml: Alcotest Error Fmt Helpers Hierarchy Linearize List Schema String Tdp_core Tdp_paper Type_def Type_name
