test/test_invariants_prop.mli:
