test/test_evolution.ml: Alcotest Attr_name Attribute Body Helpers Hierarchy List Method_def Option Schema Signature String Subtype_cache Tdp_algebra Tdp_core Tdp_paper Type_def Typing Value_type
