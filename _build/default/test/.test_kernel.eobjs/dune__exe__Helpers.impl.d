test/helpers.ml: Alcotest Applicability Attr_name Attribute Error Fmt Hierarchy List Method_def Schema Signature Tdp_core Type_def Type_name
