test/test_catalog.ml: Alcotest Body Error Helpers Hierarchy List Schema Tdp_algebra Tdp_core Tdp_paper Tdp_store Type_def Type_name Value_type
