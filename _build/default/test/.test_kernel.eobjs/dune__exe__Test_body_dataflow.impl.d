test/test_body_dataflow.ml: Alcotest Attribute Body Dataflow Error Helpers Hierarchy List Method_def Schema Signature String Subtype_cache Tdp_core Tdp_paper Type_def Type_name Typing Value_type
