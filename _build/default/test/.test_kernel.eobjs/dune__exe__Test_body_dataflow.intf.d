test/test_body_dataflow.mli:
