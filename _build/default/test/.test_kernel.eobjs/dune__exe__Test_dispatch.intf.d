test/test_dispatch.mli:
