test/test_diff_unfactor.ml: Alcotest Attr_name Attribute Diff Error Fmt Helpers Hierarchy List Method_def Projection Schema Signature String Tdp_algebra Tdp_core Tdp_paper Type_def Type_name
