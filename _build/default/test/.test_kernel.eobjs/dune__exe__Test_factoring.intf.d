test/test_factoring.mli:
