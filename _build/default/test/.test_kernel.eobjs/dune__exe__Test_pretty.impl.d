test/test_pretty.ml: Alcotest Applicability Diff Dot Error Factor_methods Fmt Helpers Hierarchy List Projection Schema String Tdp_core Tdp_paper Type_def Type_name
