test/test_synth.ml: Alcotest Attribute Helpers Hierarchy List Schema Tdp_core Tdp_store Tdp_synth Typing
