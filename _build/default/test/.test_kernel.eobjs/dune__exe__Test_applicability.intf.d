test/test_applicability.mli:
