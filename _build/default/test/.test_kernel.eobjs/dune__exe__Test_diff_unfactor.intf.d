test/test_diff_unfactor.mli:
