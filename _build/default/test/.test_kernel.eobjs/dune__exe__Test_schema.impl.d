test/test_schema.ml: Alcotest Body Error Generic_function Helpers List Method_def Schema Signature String Subtype_cache Tdp_core Tdp_paper Typing Value_type
