test/test_store.ml: Alcotest Attribute Body Helpers List Method_def Schema Signature String Tdp_core Tdp_lang Tdp_paper Tdp_store Type_def Type_name Value_type
