test/test_lang.ml: Alcotest Attr_name Body Error Generic_function Helpers Hierarchy List Method_def Schema String Tdp_algebra Tdp_core Tdp_lang Tdp_paper Type_name Typing
