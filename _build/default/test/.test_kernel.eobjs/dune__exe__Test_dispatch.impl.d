test/test_dispatch.ml: Alcotest Attribute Body Helpers Hierarchy List Method_def Projection Schema Signature Tdp_core Tdp_dispatch Tdp_paper Type_def Type_name Value_type
