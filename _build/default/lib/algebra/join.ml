open Tdp_core
module Database = Tdp_store.Database
module Oid = Tdp_store.Oid
module Value = Tdp_store.Value

(* Join views — the remaining algebraic operation of the paper's
   Section 7, in its object-oriented reading:

   The joined type J of T1 ⋈ T2 carries the cumulative state of both
   operands, so J is a common {e subtype}: every J instance is an
   instance of T1 and of T2.  Type derivation is therefore simple —
   add a fresh leaf J with direct supertypes T1 (precedence 1) and T2
   (precedence 2) — and provably non-invasive: a new leaf cannot change
   the state or behavior of any existing type.  (Contrast with
   projection, where the derived type is a supertype and the whole
   hierarchy must be refactored.)

   The interesting checks are on methods: every method of either
   operand applies to J by inheritance, and methods of the two operands
   can now become comparable on J — we surface any dispatch ambiguity a
   J instance would encounter instead of letting it bite at run time.

   Instantiation pairs up T1- and T2-extent objects on an equality
   condition over attributes and materializes a J object per match,
   combining the slots (which cannot clash: attribute names are
   globally unique). *)

type condition = (Attr_name.t * Attr_name.t) list
(* left attribute = right attribute, conjunctive *)

type outcome = {
  schema : Schema.t;
  name : Type_name.t;
  ambiguities : Tdp_dispatch.Static_check.issue list;
      (** calls a J instance could make that now dispatch ambiguously *)
}

let check_condition h t1 t2 cond =
  List.iter
    (fun (a1, a2) ->
      if not (Hierarchy.has_attribute h t1 a1) then
        Error.raise_ (Attribute_not_available { ty = t1; attr = a1 });
      if not (Hierarchy.has_attribute h t2 a2) then
        Error.raise_ (Attribute_not_available { ty = t2; attr = a2 }))
    cond

let derive_exn schema ~name t1 t2 =
  let h = Schema.hierarchy schema in
  ignore (Hierarchy.find h t1);
  ignore (Hierarchy.find h t2);
  if Hierarchy.mem h name then Error.raise_ (Duplicate_type name);
  if Hierarchy.subtype h t1 t2 || Hierarchy.subtype h t2 t1 then
    Error.raise_
      (Invariant_violation
         (Fmt.str "join operands %s and %s are already related"
            (Type_name.to_string t1) (Type_name.to_string t2)));
  let def = Type_def.make ~supers:[ (t1, 1); (t2, 2) ] name in
  let schema' = Schema.map_hierarchy schema (fun h -> Hierarchy.add h def) in
  (* Surface the dispatch ambiguities the join creates: for every
     generic function, probe the call space over the operands and J. *)
  let dispatcher = Tdp_dispatch.Dispatch.create schema' in
  let ambiguities =
    List.concat_map
      (fun g ->
        List.filter
          (function
            | Tdp_dispatch.Static_check.Ambiguous_call { arg_types; _ } ->
                List.exists (Type_name.equal name) arg_types
            | _ -> false)
          (Tdp_dispatch.Static_check.call_space_issues dispatcher
             ~gf:(Generic_function.name g) ~arg_space:[ name ]))
      (Schema.gfs schema')
  in
  { schema = schema'; name; ambiguities }

let derive schema ~name t1 t2 =
  Error.guard (fun () -> derive_exn schema ~name t1 t2)

(* Materialize J objects for every (o1, o2) in extent(t1) × extent(t2)
   satisfying the equality condition.  Slots are combined; shared
   inherited attributes (same name reachable from both sides) take the
   left value, checked equal to the right when both are set. *)
let materialize_exn db ~join_type ~on ~left ~right =
  let h = Database.hierarchy db in
  check_condition h left right on;
  let attrs_left = Hierarchy.all_attribute_names h left in
  let attrs_right = Hierarchy.all_attribute_names h right in
  let matches o1 o2 =
    List.for_all
      (fun (a1, a2) ->
        let v1 = Database.get_attr db o1 a1 and v2 = Database.get_attr db o2 a2 in
        (not (Value.equal v1 Value.Null)) && Value.equal v1 v2)
      on
  in
  let pairs =
    List.concat_map
      (fun o1 ->
        List.filter_map
          (fun o2 -> if matches o1 o2 then Some (o1, o2) else None)
          (Database.extent db right))
      (Database.extent db left)
  in
  List.map
    (fun (o1, o2) ->
      let init =
        List.map (fun a -> (a, Database.get_attr db o1 a)) attrs_left
        @ List.filter_map
            (fun a ->
              if List.exists (Attr_name.equal a) attrs_left then None
              else Some (a, Database.get_attr db o2 a))
            attrs_right
      in
      Database.new_object db join_type ~init)
    pairs

let materialize db ~join_type ~on ~left ~right =
  Error.guard (fun () -> materialize_exn db ~join_type ~on ~left ~right)
