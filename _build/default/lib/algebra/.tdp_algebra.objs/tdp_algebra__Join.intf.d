lib/algebra/join.mli: Attr_name Error Schema Tdp_core Tdp_dispatch Tdp_store Type_name
