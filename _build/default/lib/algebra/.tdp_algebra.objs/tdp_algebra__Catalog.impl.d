lib/algebra/catalog.ml: Error Fmt Generalize Hierarchy List Optimize Schema String Tdp_core Type_def Type_name Unfactor View
