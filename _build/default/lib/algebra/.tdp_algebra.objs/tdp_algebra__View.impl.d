lib/algebra/view.ml: Attr_name Error Fmt Generalize Hierarchy List Pred Projection Schema Tdp_core Tdp_store Type_def Type_name
