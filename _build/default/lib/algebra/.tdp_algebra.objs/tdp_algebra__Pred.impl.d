lib/algebra/pred.ml: Attr_name Attribute Body Error Fmt Hierarchy Tdp_core Tdp_store Value_type
