lib/algebra/optimize.mli: Error Schema Tdp_core Type_name
