lib/algebra/unfactor.mli: Error Schema Tdp_core Type_name
