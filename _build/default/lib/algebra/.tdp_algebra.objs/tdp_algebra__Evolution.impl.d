lib/algebra/evolution.ml: Attr_name Attribute Catalog Error Fmt Fun Hierarchy List Method_def Schema String Subtype_cache Tdp_core Type_def Type_name Typing View
