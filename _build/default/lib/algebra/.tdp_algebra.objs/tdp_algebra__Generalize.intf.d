lib/algebra/generalize.mli: Attr_name Error Hierarchy Projection Schema Tdp_core Type_name
