lib/algebra/pred.mli: Attr_name Body Fmt Hierarchy Tdp_core Tdp_store Type_name
