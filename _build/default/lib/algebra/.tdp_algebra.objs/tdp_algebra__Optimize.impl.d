lib/algebra/optimize.ml: Attr_name Body Error Fmt Hierarchy List Method_def Option Schema Signature Tdp_core Type_def Type_name Value_type
