lib/algebra/matview.mli: Fmt Tdp_core Tdp_store Type_name View
