lib/algebra/catalog.mli: Error Fmt Schema Tdp_core Type_name View
