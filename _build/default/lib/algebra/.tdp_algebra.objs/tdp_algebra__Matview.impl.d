lib/algebra/matview.ml: Fmt Hierarchy List Tdp_core Tdp_store Type_name View
