lib/algebra/generalize.ml: Attr_name Error Fmt Hierarchy List Projection Schema Tdp_core Type_def Type_name
