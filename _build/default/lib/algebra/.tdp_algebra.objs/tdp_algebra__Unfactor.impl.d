lib/algebra/unfactor.ml: Attribute Body Error Fmt Hierarchy List Method_def Option Schema Signature String Tdp_core Type_def Type_name Typing Value_type
