lib/algebra/evolution.mli: Attr_name Attribute Catalog Error Fmt Method_def Schema Tdp_core Type_def Type_name
