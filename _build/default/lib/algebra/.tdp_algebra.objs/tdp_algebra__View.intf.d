lib/algebra/view.mli: Attr_name Error Fmt Generalize Pred Projection Schema Stdlib Tdp_core Tdp_store Type_name
