lib/algebra/join.ml: Attr_name Error Fmt Generic_function Hierarchy List Schema Tdp_core Tdp_dispatch Tdp_store Type_def Type_name
