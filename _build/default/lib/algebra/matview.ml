open Tdp_core
module Database = Tdp_store.Database
module Oid = Tdp_store.Oid

(* Maintained materialized views.

   [View.materialize] takes a one-shot copy; this module keeps the copy
   population in sync with the base data on demand: [refresh] diffs the
   view's current instance set against the copies (tracked by a
   source-OID → copy-OID mapping) and adds, removes, or updates copies
   as needed — the classic deferred view-maintenance loop, built on the
   identity-based instance semantics of projection views. *)

type stats = { added : int; removed : int; updated : int }

let no_change = { added = 0; removed = 0; updated = 0 }

type t = {
  view_type : Type_name.t;
  expr : View.expr;
  mutable mapping : Oid.t Oid.Map.t;  (** source → copy *)
}

let view_type t = t.view_type
let mapping t = t.mapping

let copy_attrs db view_type =
  Hierarchy.all_attribute_names (Database.hierarchy db) view_type

let refresh db t =
  let attrs = copy_attrs db t.view_type in
  let current = View.instances db t.expr in
  let current_set = Oid.Set.of_list current in
  (* remove copies of vanished sources *)
  let removed = ref 0 in
  let mapping =
    Oid.Map.filter
      (fun src copy ->
        if Oid.Set.mem src current_set then true
        else begin
          Database.delete db ~policy:Database.Nullify copy;
          incr removed;
          false
        end)
      t.mapping
  in
  (* add copies for new sources, update stale ones *)
  let added = ref 0 and updated = ref 0 in
  let mapping =
    List.fold_left
      (fun mapping src ->
        match Oid.Map.find_opt src mapping with
        | None ->
            let init =
              List.map (fun a -> (a, Database.get_attr db src a)) attrs
            in
            let copy = Database.new_object db t.view_type ~init in
            incr added;
            Oid.Map.add src copy mapping
        | Some copy ->
            let changed = ref false in
            List.iter
              (fun a ->
                let v = Database.get_attr db src a in
                if not (Tdp_store.Value.equal v (Database.get_attr db copy a))
                then begin
                  Database.set_attr db copy a v;
                  changed := true
                end)
              attrs;
            if !changed then incr updated;
            mapping)
      mapping current
  in
  t.mapping <- mapping;
  { added = !added; removed = !removed; updated = !updated }

let create db ~view_type expr =
  let t = { view_type; expr; mapping = Oid.Map.empty } in
  let _ = refresh db t in
  t

let copies t = List.map snd (Oid.Map.bindings t.mapping)

let pp_stats ppf s =
  Fmt.pf ppf "+%d -%d ~%d" s.added s.removed s.updated
