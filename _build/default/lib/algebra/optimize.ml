open Tdp_core

(* Reduction of empty surrogate types — the open problem the paper
   raises in Section 7: "it needs to be investigated how the number of
   surrogate types with empty states can be reduced in the refactored
   type hierarchy, particularly when views are defined over views."

   A surrogate is collapsible when it carries no state, is not the
   derived type of a view anyone can name (the [protect] set), and no
   method signature, local declaration, or result type mentions it.
   Collapsing splices the surrogate's supertypes into each of its
   subtypes at the surrogate's precedence position, preserving both the
   subtype closure and every type's cumulative state. *)

let mentioned_types schema =
  List.fold_left
    (fun acc m ->
      let s = Method_def.signature m in
      let acc =
        List.fold_left
          (fun acc t -> Type_name.Set.add t acc)
          acc (Signature.param_types s)
      in
      let acc =
        match Option.bind (Signature.result s) Value_type.as_named with
        | Some t -> Type_name.Set.add t acc
        | None -> acc
      in
      match Method_def.body m with
      | None -> acc
      | Some b ->
          List.fold_left
            (fun acc (_, ty) ->
              match Value_type.as_named ty with
              | Some t -> Type_name.Set.add t acc
              | None -> acc)
            acc (Body.locals b))
    Type_name.Set.empty
    (Schema.all_methods schema)

let collapsible ~protect ~mentioned def =
  Type_def.is_surrogate def
  && Type_def.attrs def = []
  && (not (Type_name.Set.mem (Type_def.name def) protect))
  && not (Type_name.Set.mem (Type_def.name def) mentioned)

(* Splice [victim]'s supertypes into the super list of each of its
   subtypes, in place of the edge to [victim], then drop [victim].
   Precedences are renumbered 1..k for affected types; only the order
   matters for linearization and transparency. *)
let remove_surrogate h victim =
  let vsupers = List.map fst (Hierarchy.direct_supers h victim) in
  let rewire def =
    if not (Type_def.has_super def victim) then def
    else
      let spliced =
        List.concat_map
          (fun (s, _) ->
            if Type_name.equal s victim then
              List.filter (fun v -> not (Type_def.has_super def v)) vsupers
            else [ s ])
          (Type_def.supers def)
      in
      (* drop duplicates introduced by splicing several copies *)
      let _, spliced =
        List.fold_left
          (fun (seen, acc) s ->
            if Type_name.Set.mem s seen then (seen, acc)
            else (Type_name.Set.add s seen, s :: acc))
          (Type_name.Set.empty, []) spliced
      in
      let spliced = List.rev spliced in
      Type_def.with_supers def (List.mapi (fun i s -> (s, i + 1)) spliced)
  in
  let h =
    Hierarchy.fold
      (fun def h -> Hierarchy.update h (Type_def.name def) (fun _ -> rewire def))
      h h
  in
  Hierarchy.remove h victim

let collapse_exn ?(protect = Type_name.Set.empty) schema =
  let mentioned = mentioned_types schema in
  let rec go schema removed =
    let h = Schema.hierarchy schema in
    let victim =
      List.find_opt (collapsible ~protect ~mentioned) (Hierarchy.types h)
    in
    match victim with
    | None -> (schema, List.rev removed)
    | Some def ->
        let name = Type_def.name def in
        let h' = remove_surrogate h name in
        go (Schema.with_hierarchy schema h') (name :: removed)
  in
  let before = Schema.hierarchy schema in
  let after, removed = go schema [] in
  (* Safety: every surviving type keeps its cumulative state and its
     subtype relationships. *)
  let ha = Schema.hierarchy after in
  List.iter
    (fun def ->
      let n = Type_def.name def in
      if Hierarchy.mem ha n then begin
        let names h = List.sort Attr_name.compare (Hierarchy.all_attribute_names h n) in
        if names before <> names ha then
          Error.raise_
            (Invariant_violation
               (Fmt.str "collapse changed state of %s" (Type_name.to_string n)));
        Type_name.Set.iter
          (fun m ->
            if
              Hierarchy.mem ha m
              && Hierarchy.subtype before n m <> Hierarchy.subtype ha n m
            then
              Error.raise_
                (Invariant_violation
                   (Fmt.str "collapse changed subtyping %s ⪯ %s"
                      (Type_name.to_string n) (Type_name.to_string m))))
          (Type_name.Set.of_list (Hierarchy.type_names before))
      end)
    (Hierarchy.types before);
  (after, removed)

let collapse ?protect schema = Error.guard (fun () -> collapse_exn ?protect schema)

(* Count surrogates with empty local state — the quantity the paper
   wants reduced; reported by the S4 experiment. *)
let empty_surrogate_count schema =
  Hierarchy.fold
    (fun def n ->
      if Type_def.is_surrogate def && Type_def.attrs def = [] then n + 1 else n)
    (Schema.hierarchy schema) 0
