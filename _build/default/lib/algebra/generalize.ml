open Tdp_core

(* Generalization: derive a common supertype of two types over their
   shared attributes — the "upward inheritance" view operation of
   Schrefl & Neuhold (the paper's reference [17]), and the natural
   union view: every instance of either operand is an instance of the
   result.

   Construction (reusing the projection pipeline):

   + C := cumulative(t1) ∩ cumulative(t2) — because attribute names are
     globally unique, every a ∈ C has a single owner type, an ancestor
     of both operands;
   + run the full projection pipeline Π_C t1, producing the factored
     surrogate chain that carries exactly C and the relocated methods;
   + splice a fresh type W between the derived type and its supertypes:
     W inherits the whole chain (state = C, behavior = the relocated
     methods), the derived type becomes a subtype of W;
   + link both operands below W with lowest precedence.  t2 gains no
     state (everything in W's chain is above t2's own ancestors) and no
     behavior it did not already have (relocated methods were already
     applicable to t2 through the original owners).

   The result can fail with [Linearization_failure] downstream if the
   two operands order the shared ancestors inconsistently — inherent to
   multiple inheritance, and surfaced by the dispatcher, not here. *)

type outcome = {
  schema : Schema.t;
  name : Type_name.t;  (** the generalization type W *)
  operands : Type_name.t * Type_name.t;
  common : Attr_name.t list;  (** the shared attributes C *)
  projection : Projection.outcome;  (** the underlying Π_C t1 *)
}

let common_attributes h t1 t2 =
  let a2 = Attr_name.Set.of_list (Hierarchy.all_attribute_names h t2) in
  List.filter
    (fun a -> Attr_name.Set.mem a a2)
    (Hierarchy.all_attribute_names h t1)

let lowest_precedence def =
  match List.rev (Type_def.supers def) with
  | [] -> 1
  | (_, p) :: _ -> p + 1

let generalize_exn ?(check = true) schema ~view ~name t1 t2 =
  let h = Schema.hierarchy schema in
  ignore (Hierarchy.find h t1);
  ignore (Hierarchy.find h t2);
  if Hierarchy.mem h name then Error.raise_ (Duplicate_type name);
  let common = common_attributes h t1 t2 in
  if common = [] then
    Error.raise_
      (Invariant_violation
         (Fmt.str "types %s and %s share no attributes"
            (Type_name.to_string t1) (Type_name.to_string t2)));
  let o = Projection.project_exn ~check schema ~view ~source:t1 ~projection:common () in
  let h = Schema.hierarchy o.schema in
  (* Splice W above the derived type: W takes over the derived type's
     supertypes; the derived type keeps only W. *)
  let derived_def = Hierarchy.find h o.derived in
  let w =
    Type_def.make
      ~origin:(Surrogate { source = t1; view })
      ~supers:(Type_def.supers derived_def) name
  in
  let h = Hierarchy.add h w in
  let h =
    Hierarchy.update h o.derived (fun def -> Type_def.with_supers def [ (name, 1) ])
  in
  (* Both operands flow into W.  t1 already does (t1 ⪯ derived ⪯ W);
     t2 is linked directly, at lowest precedence so its own method
     lookup order is undisturbed. *)
  let h =
    Hierarchy.add_super h ~sub:t2 ~super:name
      ~prec:(lowest_precedence (Hierarchy.find h t2))
  in
  let schema' = Schema.with_hierarchy o.schema h in
  if check then begin
    Hierarchy.validate_exn h;
    (* t2 must keep exactly its cumulative state… *)
    let names hh t =
      List.sort Attr_name.compare (Hierarchy.all_attribute_names hh t)
    in
    if names (Schema.hierarchy schema) t2 <> names h t2 then
      Error.raise_
        (Invariant_violation
           (Fmt.str "generalization changed the state of %s" (Type_name.to_string t2)));
    (* …and W's state must be exactly C. *)
    if
      List.sort Attr_name.compare common <> names h name
    then
      Error.raise_
        (Invariant_violation
           (Fmt.str "generalization type %s does not carry exactly the common \
                     attributes"
              (Type_name.to_string name)))
  end;
  { schema = schema'; name; operands = (t1, t2); common; projection = o }

let generalize ?check schema ~view ~name t1 t2 =
  Error.guard (fun () -> generalize_exn ?check schema ~view ~name t1 t2)
