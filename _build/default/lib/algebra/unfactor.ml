open Tdp_core

(* Dropping a view: the inverse of the projection pipeline.

   All surrogates created for a view are identified by the view tag in
   their origin.  Dropping the view moves every surrogate's local
   attributes back to its source, removes the surrogate types and their
   edges, and rewrites method signatures, re-typed locals, and result
   types back from surrogate names to source names.

   Precondition: nothing outside the view depends on its surrogates —
   no foreign type inherits from them and no other view was derived
   through them.  Violations raise [Invariant_violation]. *)

let surrogates_of_view schema ~view =
  Hierarchy.fold
    (fun def acc ->
      match Type_def.origin def with
      | Surrogate { source; view = v } when String.equal v view ->
          (Type_def.name def, source) :: acc
      | Surrogate _ | Source -> acc)
    (Schema.hierarchy schema) []

let drop_view_exn schema ~view =
  let pairs = surrogates_of_view schema ~view in
  if pairs = [] then
    Error.raise_ (Invariant_violation (Fmt.str "no view named %S" view));
  let victim_set = Type_name.Set.of_list (List.map fst pairs) in
  let back name =
    match
      List.find_opt (fun (hat, _) -> Type_name.equal hat name) pairs
    with
    | Some (_, src) -> src
    | None -> name
  in
  let h = Schema.hierarchy schema in
  (* No later view may have been derived through a victim: a foreign
     surrogate whose source is a victim would be left dangling. *)
  Hierarchy.fold
    (fun def () ->
      let n = Type_def.name def in
      if not (Type_name.Set.mem n victim_set) then
        match Type_def.origin def with
        | Surrogate { source; view = other } when Type_name.Set.mem source victim_set
          ->
            Error.raise_
              (Invariant_violation
                 (Fmt.str "cannot drop view %S: view %S was derived through %s"
                    view other (Type_name.to_string source)))
        | Surrogate _ | Source -> ())
    h ();
  (* No foreign type may inherit from a victim. *)
  Hierarchy.fold
    (fun def () ->
      let n = Type_def.name def in
      if not (Type_name.Set.mem n victim_set) then
        List.iter
          (fun (s, _) ->
            if
              Type_name.Set.mem s victim_set
              && not (Type_name.equal (back s) n)
            then
              Error.raise_
                (Invariant_violation
                   (Fmt.str "cannot drop view %S: type %s inherits from %s" view
                      (Type_name.to_string n) (Type_name.to_string s))))
          (Type_def.supers def))
    h ();
  (* Move attributes home and drop the victims. *)
  let h =
    List.fold_left
      (fun h (hat, src) ->
        let attrs = Type_def.attrs (Hierarchy.find h hat) in
        let h =
          List.fold_left
            (fun h a ->
              Hierarchy.move_attr h ~attr:(Attribute.name a) ~from_:hat ~to_:src)
            h attrs
        in
        Hierarchy.update h src (fun def ->
            Type_def.with_supers def
              (List.filter
                 (fun (s, _) -> not (Type_name.equal s hat))
                 (Type_def.supers def))))
      h pairs
  in
  let h = List.fold_left (fun h (hat, _) -> Hierarchy.remove h hat) h pairs in
  (* Rewrite methods back. *)
  let schema = Schema.with_hierarchy schema h in
  let rewrite_vt vt =
    match Value_type.as_named vt with
    | Some n when Type_name.Set.mem n victim_set -> Value_type.named (back n)
    | Some _ | None -> vt
  in
  let schema =
    List.fold_left
      (fun schema m ->
        let s = Method_def.signature m in
        let s' = Signature.map_param_types back s in
        let s' = { s' with result = Option.map rewrite_vt s'.result } in
        let kind' =
          match Method_def.kind m with
          | (Reader _ | Writer _) as k -> k
          | General body -> General (Body.map_local_types (fun _ -> rewrite_vt) body)
        in
        if Signature.equal s s' && kind' = Method_def.kind m then schema
        else
          Schema.update_method schema (Method_def.key m) (fun m ->
              Method_def.with_kind (Method_def.with_signature m s') kind'))
      schema (Schema.all_methods schema)
  in
  Schema.validate_exn schema;
  Typing.check_all_methods schema;
  schema

let drop_view schema ~view = Error.guard (fun () -> drop_view_exn schema ~view)
