(** Schema evolution under derived views.

    Because every view in a {!Catalog} is derived by a reproducible
    pipeline, a base-schema change can be applied by unwinding all
    views (reverse definition order), changing the base, and
    re-deriving the views in order.  The report tells, per view, which
    methods its type gained or lost — or that the view is broken (it no
    longer derives, e.g. its projection list mentions a removed
    attribute); broken views are dropped from the resulting catalog. *)

open Tdp_core

type change =
  | Add_type of Type_def.t
  | Add_attribute of { ty : Type_name.t; attr : Attribute.t }
  | Remove_attribute of Attr_name.t
      (** the attribute's accessors are removed as well; general
          methods calling them will simply lose applicability *)
  | Add_method of Method_def.t
  | Remove_method of Method_def.Key.t
  | Rename_attribute of { from_ : Attr_name.t; to_ : Attr_name.t }
      (** the relational rename operator as evolution: the owning
          type's attribute, its accessors, and the catalog's stored
          view expressions are rewritten, so views survive renames *)

val pp_change : change Fmt.t

type view_impact = {
  view : string;
  status : [ `Ok | `Broken of Error.t ];
  gained : Method_def.Key.Set.t;
  lost : Method_def.Key.Set.t;
}

type report = { change : change; impacts : view_impact list }

val pp_impact : view_impact Fmt.t
val pp_report : report Fmt.t

(** Apply a change to a {e view-free} schema, with validation.
    @raise Error.E if the changed schema is invalid. *)
val apply_change_exn : Schema.t -> change -> Schema.t

(** Evolve the catalog's base schema; returns the re-derived catalog
    and the impact report.
    @raise Error.E if unwinding fails or the base change is invalid. *)
val evolve_exn : Catalog.t -> change -> Catalog.t * report

val evolve : Catalog.t -> change -> (Catalog.t * report, Error.t) result
