(** Generalization views ("upward inheritance", the paper's reference
    [17], and its §7 call to extend the methodology to the remaining
    algebraic operations).

    [generalize schema ~view ~name t1 t2] derives a common supertype
    [name] of [t1] and [t2] whose state is exactly their shared
    cumulative attributes and whose behavior is the methods the
    projection analysis (§4) finds applicable to that state.  Every
    instance of either operand is an instance of the result — a union
    view.  Both operands keep their state and behavior unchanged. *)

open Tdp_core

type outcome = {
  schema : Schema.t;
  name : Type_name.t;
  operands : Type_name.t * Type_name.t;
  common : Attr_name.t list;
  projection : Projection.outcome;
}

(** Shared cumulative attributes, in [t1]'s inheritance order. *)
val common_attributes :
  Hierarchy.t -> Type_name.t -> Type_name.t -> Attr_name.t list

(** @raise Error.E on unknown operands, a taken [name], no shared
    attributes, or a failed preservation check. *)
val generalize_exn :
  ?check:bool ->
  Schema.t ->
  view:string ->
  name:Type_name.t ->
  Type_name.t ->
  Type_name.t ->
  outcome

val generalize :
  ?check:bool ->
  Schema.t ->
  view:string ->
  name:Type_name.t ->
  Type_name.t ->
  Type_name.t ->
  (outcome, Error.t) result
