(** Join views (the last of the paper's "remaining algebraic
    operations", Section 7).

    The joined type of [T1 ⋈ T2] carries the cumulative state of both
    operands, so it is derived as a fresh common {e subtype} — the dual
    of projection, and non-invasive by construction: adding a leaf
    cannot change any existing type's state or behavior.  The methods
    of both operands apply to the join by inheritance; dispatch
    ambiguities this can create are detected and reported at derivation
    time.  Instantiation pairs operand extents on an attribute-equality
    condition and materializes combined objects. *)

open Tdp_core

type condition = (Attr_name.t * Attr_name.t) list
(** left attribute = right attribute, conjunctive *)

type outcome = {
  schema : Schema.t;
  name : Type_name.t;
  ambiguities : Tdp_dispatch.Static_check.issue list;
}

(** Derive the join type.
    @raise Error.E on unknown operands, a taken [name], or operands
    already related by [⪯] (the join would be one of them). *)
val derive_exn : Schema.t -> name:Type_name.t -> Type_name.t -> Type_name.t -> outcome

val derive :
  Schema.t ->
  name:Type_name.t ->
  Type_name.t ->
  Type_name.t ->
  (outcome, Error.t) result

(** Materialize one [join_type] object per matching pair, combining
    slots (left value wins for attributes shared through common
    ancestors); [Null] never matches.
    @raise Error.E / [Tdp_store.Database.Store_error]. *)
val materialize_exn :
  Tdp_store.Database.t ->
  join_type:Type_name.t ->
  on:condition ->
  left:Type_name.t ->
  right:Type_name.t ->
  Tdp_store.Oid.t list

val materialize :
  Tdp_store.Database.t ->
  join_type:Type_name.t ->
  on:condition ->
  left:Type_name.t ->
  right:Type_name.t ->
  (Tdp_store.Oid.t list, Error.t) result
