(** Reduction of empty surrogate types (the paper's Section 7 open
    problem).

    Chained views can litter the hierarchy with stateless surrogates;
    collapsing removes those that carry no attributes, are not the
    visible type of any view (pass them in [protect]), and are not
    mentioned by any method signature or body, splicing their
    supertypes into their subtypes.  The collapse provably preserves
    cumulative state and the subtype relation over surviving types and
    re-verifies both. *)

open Tdp_core

(** Types mentioned by any method signature, result, or local. *)
val mentioned_types : Schema.t -> Type_name.Set.t

(** @raise Error.E [Invariant_violation] if a safety re-check fails
    (indicates a bug, not bad input). *)
val collapse_exn :
  ?protect:Type_name.Set.t -> Schema.t -> Schema.t * Type_name.t list

val collapse :
  ?protect:Type_name.Set.t ->
  Schema.t ->
  (Schema.t * Type_name.t list, Error.t) result

(** Number of surrogates with empty local state. *)
val empty_surrogate_count : Schema.t -> int
