(** Dropping a view: the inverse of the projection pipeline.

    Restores the hierarchy and the method signatures to their
    pre-projection shape by merging every surrogate created for the
    view back into its source type.  Semantically inverse: cumulative
    state, subtyping over surviving types, and method applicability are
    restored (only cosmetic local-attribute order may differ — moved
    attributes are appended).  Fails if anything outside the view
    depends on its surrogates, e.g. a later view derived through
    them. *)

open Tdp_core

(** Surrogates tagged with the given view, paired with their sources. *)
val surrogates_of_view :
  Schema.t -> view:string -> (Type_name.t * Type_name.t) list

(** @raise Error.E [Invariant_violation] when the view is unknown or
    still depended upon. *)
val drop_view_exn : Schema.t -> view:string -> Schema.t

val drop_view : Schema.t -> view:string -> (Schema.t, Error.t) result
