lib/dispatch/dispatch.ml: Hashtbl Hierarchy Int Linearize List Method_def Schema Signature Subtype_cache Tdp_core Type_def Type_name
