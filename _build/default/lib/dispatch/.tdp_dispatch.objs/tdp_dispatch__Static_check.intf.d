lib/dispatch/static_check.mli: Dispatch Fmt Method_def Schema Tdp_core Type_name
