lib/dispatch/dispatch.mli: Method_def Schema Tdp_core Type_name
