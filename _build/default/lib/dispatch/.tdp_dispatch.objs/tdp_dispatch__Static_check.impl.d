lib/dispatch/static_check.ml: Dispatch Fmt Generic_function List Method_def Option Schema Signature Tdp_core Type_name
