(** Multi-method dispatch.

    Selects the most specific applicable method for a generic-function
    call from the dynamic types of all arguments — the dispatch model
    of CommonLoops/CLOS that the paper assumes (Section 2).  Methods
    are ranked by argument precedence order: formals are compared
    position by position through the class precedence list of the
    corresponding actual argument. *)

open Tdp_core

type t

(** A dispatcher memoizes subtype queries and class precedence lists;
    build a fresh one whenever the schema changes.

    [surrogate_transparent] (default [true]) makes a surrogate share
    the specificity rank of its source type, as the paper's Section 5
    transparency requirement demands; [false] gives the naive ranking
    (each CPL position its own rank), exposed only for the S7 ablation
    that quantifies how many dispatch outcomes the naive ranking flips
    after a projection. *)
val create : ?surrogate_transparent:bool -> Schema.t -> t

val schema : t -> Schema.t

(** Class precedence list of a type (memoized).
    @raise Error.E [Linearization_failure]. *)
val cpl : t -> Type_name.t -> Type_name.t list

exception Ambiguous of { gf : string; methods : Method_def.Key.t list }

(** [compare_specificity t ~arg_types m1 m2] is negative when [m1] is
    more specific than [m2] for a call with the given actual types. *)
val compare_specificity :
  t -> arg_types:Type_name.t list -> Method_def.t -> Method_def.t -> int

(** Applicable methods, most specific first. *)
val applicable : t -> gf:string -> arg_types:Type_name.t list -> Method_def.t list

(** The method that would be executed, or [None] if no method is
    applicable.
    @raise Ambiguous when two applicable methods tie. *)
val most_specific :
  t -> gf:string -> arg_types:Type_name.t list -> Method_def.t option

(** The next most specific method after [after] (call-next-method). *)
val next_method :
  t ->
  gf:string ->
  arg_types:Type_name.t list ->
  after:Method_def.Key.t ->
  Method_def.t option
