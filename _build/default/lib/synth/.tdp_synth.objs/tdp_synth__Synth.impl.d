lib/synth/synth.ml: Attr_name Attribute Body Fmt Generic_function Hierarchy Int List Method_def Random Schema Signature Tdp_core Tdp_store Type_def Type_name Value_type
