lib/synth/synth.mli: Attr_name Schema Tdp_core Tdp_store Type_name
