(** Deterministic random schema and workload generation.

    The paper evaluates its algorithms on worked examples only; the
    scaling experiments (EXPERIMENTS.md, S1–S4) and the property-based
    test suite need parameterized inputs.  Everything here is a pure
    function of the config — the same seed always yields the same
    schema, projection, or database. *)

open Tdp_core

type config = {
  n_types : int;
  max_supers : int;
  attrs_per_type : int;
  accessor_fraction : float;
  writer_fraction : float;
  n_gfs : int;
  methods_per_gf : int;
  max_params : int;
  calls_per_body : int;
  recursion : bool;
  seed : int;
}

val default : config

(** A valid schema (passes [Schema.validate_exn] and
    [Typing.check_all_methods]): a DAG of [n_types] types with
    multiple inheritance and precedences, accessors, and general
    multi-methods whose bodies call accessors and each other. *)
val generate : config -> Schema.t

(** A projection workload: a (deep) source type and a random non-empty
    subset of its cumulative attributes. *)
val gen_projection : ?seed:int -> Schema.t -> Type_name.t * Attr_name.t list

(** Create [n] objects of random non-surrogate types with integer
    slots; returns their OIDs. *)
val populate : ?seed:int -> Tdp_store.Database.t -> int -> Tdp_store.Oid.t list
