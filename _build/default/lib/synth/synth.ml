open Tdp_core

(* Deterministic random schema generation.  The paper has no benchmark
   datasets — its evaluation is worked examples — so scaling experiments
   and property-based tests run over schemas drawn from this generator.
   All randomness flows from the seed: the same config produces the same
   schema. *)

type config = {
  n_types : int;
  max_supers : int;  (** direct supertypes per type (≥ 1 ⇒ multiple inheritance) *)
  attrs_per_type : int;
  accessor_fraction : float;  (** fraction of attributes given a reader *)
  writer_fraction : float;  (** fraction of attributes given a writer *)
  n_gfs : int;  (** general generic functions *)
  methods_per_gf : int;
  max_params : int;
  calls_per_body : int;
  recursion : bool;  (** allow call cycles between general methods *)
  seed : int;
}

let default =
  { n_types = 12;
    max_supers = 2;
    attrs_per_type = 2;
    accessor_fraction = 1.0;
    writer_fraction = 0.0;
    n_gfs = 4;
    methods_per_gf = 3;
    max_params = 2;
    calls_per_body = 2;
    recursion = true;
    seed = 42
  }

let type_name i = Type_name.of_string (Fmt.str "T%d" i)
let attr_name i j = Attr_name.of_string (Fmt.str "t%d_a%d" i j)

let pick st l =
  match l with
  | [] -> invalid_arg "Synth.pick: empty list"
  | l -> List.nth l (Random.State.int st (List.length l))

(* Distinct random sample of size ≤ k. *)
let sample st k l =
  let rec go acc k l =
    if k = 0 || l = [] then acc
    else
      let x = pick st l in
      go (x :: acc) (k - 1) (List.filter (fun y -> y <> x) l)
  in
  go [] k l

let gen_hierarchy st cfg =
  let rec add schema i =
    if i >= cfg.n_types then schema
    else
      let supers =
        if i = 0 then []
        else
          let k = 1 + Random.State.int st cfg.max_supers in
          let candidates = List.init i (fun j -> j) in
          sample st (min k i) candidates
          |> List.sort Int.compare
          |> List.mapi (fun rank j -> (type_name j, rank + 1))
      in
      let attrs =
        List.init cfg.attrs_per_type (fun j ->
            Attribute.make (attr_name i j) Value_type.int)
      in
      add (Schema.add_type schema (Type_def.make ~attrs ~supers (type_name i))) (i + 1)
  in
  add Schema.empty 0

let gen_accessors st cfg schema =
  let h = Schema.hierarchy schema in
  List.fold_left
    (fun schema i ->
      List.fold_left
        (fun schema j ->
          let a = attr_name i j in
          (* Declare the accessor at the owner or at a random subtype
             that inherits the attribute (both occur in the paper's
             Figure 3: get_h2 is declared at B, not H). *)
          let owner = type_name i in
          let holders =
            owner
            :: Type_name.Set.elements (Hierarchy.descendants h owner)
          in
          let schema =
            if Random.State.float st 1.0 < cfg.accessor_fraction then
              Schema.add_method schema
                (Method_def.reader
                   ~gf:(Fmt.str "get_%s" (Attr_name.to_string a))
                   ~id:(Fmt.str "get_%s" (Attr_name.to_string a))
                   ~param:"self" ~param_type:(pick st holders) ~attr:a
                   ~result:Value_type.int)
            else schema
          in
          if Random.State.float st 1.0 < cfg.writer_fraction then
            Schema.add_method schema
              (Method_def.writer
                 ~gf:(Fmt.str "set_%s" (Attr_name.to_string a))
                 ~id:(Fmt.str "set_%s" (Attr_name.to_string a))
                 ~param:"self" ~param_type:(pick st holders) ~attr:a)
          else schema)
        schema
        (List.init cfg.attrs_per_type (fun j -> j)))
    schema
    (List.init cfg.n_types (fun i -> i))

(* General methods: each body is a sequence of calls, each either an
   accessor on a formal (reading an attribute available at the formal's
   type) or another general generic function applied to formals.  With
   [recursion] the callee may be any generic function, producing the
   call cycles that exercise the MethodStack machinery. *)
let gen_generals st cfg schema =
  let h = Schema.hierarchy schema in
  let gf_name g = Fmt.str "m%d" g in
  (* Fix each generic function's arity up front. *)
  let arities =
    List.init cfg.n_gfs (fun _ -> 1 + Random.State.int st cfg.max_params)
  in
  let accessor_gfs =
    List.filter_map
      (fun m ->
        match Method_def.kind m with
        | Reader a -> Some (Method_def.gf m, a, List.hd (Signature.param_types (Method_def.signature m)))
        | Writer _ | General _ -> None)
      (Schema.all_methods schema)
  in
  let types = List.init cfg.n_types type_name in
  let schema = ref schema in
  List.iteri
    (fun g arity ->
      for k = 0 to cfg.methods_per_gf - 1 do
        let params =
          List.init arity (fun p -> (Fmt.str "p%d" p, pick st types))
        in
        (* The paper's model assumes a unique precedence among the
           methods of a generic function; two methods with identical
           signatures would make every matching call ambiguous.  Skip
           duplicates. *)
        let duplicate =
          match Schema.find_gf_opt !schema (gf_name g) with
          | None -> false
          | Some gf ->
              List.exists
                (fun m ->
                  List.equal Type_name.equal
                    (Signature.param_types (Method_def.signature m))
                    (List.map snd params))
                (Generic_function.methods gf)
        in
        if not duplicate then begin
        let formal_of_subtype ty =
          List.filter
            (fun (_, pt) -> Hierarchy.subtype h pt ty)
            params
        in
        (* Locals that copy formals (possibly widened to a supertype):
           exercises the def-use analysis of Section 4.1/6.4 through
           random schemas. *)
        let locals =
          List.filteri (fun i _ -> i = 0 || Random.State.bool st) params
          |> List.mapi (fun i (x, pt) ->
                 let widened =
                   let ups = Type_name.Set.elements (Hierarchy.ancestors h pt) in
                   if ups <> [] && Random.State.bool st then pick st ups else pt
                 in
                 (Fmt.str "l%d" i, widened, x))
        in
        let var_of_subtype ty =
          let from_params =
            List.map (fun (x, pt) -> (x, pt)) (formal_of_subtype ty)
          in
          let from_locals =
            List.filter_map
              (fun (l, lt, _) ->
                if Hierarchy.subtype h lt ty then Some (l, lt) else None)
              locals
          in
          from_params @ from_locals
        in
        let gen_call () =
          if accessor_gfs <> [] && (Random.State.bool st || cfg.n_gfs = 0)
          then
            (* accessor call on a formal or local that can receive it *)
            let shuffled = sample st (List.length accessor_gfs) accessor_gfs in
            List.find_map
              (fun (gf, _a, on) ->
                match var_of_subtype on with
                | [] -> None
                | fs ->
                    let x, _ = pick st fs in
                    Some (Body.expr (Body.call gf [ Body.var x ])))
              shuffled
          else
            let callee =
              if cfg.recursion then Random.State.int st cfg.n_gfs
              else if g = 0 then g
              else Random.State.int st g
            in
            let callee_arity = List.nth arities callee in
            let args =
              List.init callee_arity (fun _ ->
                  let x, _ = pick st params in
                  Body.var x)
            in
            Some (Body.expr (Body.call (gf_name callee) args))
        in
        let calls =
          List.filter_map
            (fun _ -> gen_call ())
            (List.init cfg.calls_per_body (fun c -> c))
        in
        (* Wrap some calls in control flow so the analyses see branches
           and loops. *)
        let calls =
          List.map
            (fun stmt ->
              match Random.State.int st 4 with
              | 0 -> Body.if_ (Body.bool true) [ stmt ] []
              | 1 -> Body.while_ (Body.bool false) [ stmt ]
              | _ -> stmt)
            calls
        in
        let body =
          List.map
            (fun (l, lt, from) ->
              Body.local ~init:(Body.var from) l (Value_type.named lt))
            locals
          @ calls
        in
        let m =
          Method_def.make ~gf:(gf_name g) ~id:(Fmt.str "m%d_%d" g k)
            ~signature:(Signature.make params) (General body)
        in
        (* Declare callees lazily: add_method auto-declares the gf of
           [m]; forward-referenced callees are declared here so that
           validation sees them. *)
          schema := Schema.add_method !schema m
        end
      done)
    arities;
  (* Ensure every callee gf exists even if it ended up with no methods. *)
  List.iteri
    (fun g arity ->
      match Schema.find_gf_opt !schema (gf_name g) with
      | Some _ -> ()
      | None ->
          schema :=
            Schema.declare_gf !schema
              (Generic_function.declare ~arity (gf_name g)))
    arities;
  !schema

let generate cfg =
  let st = Random.State.make [| cfg.seed |] in
  let schema = gen_hierarchy st cfg in
  let schema = gen_accessors st cfg schema in
  let schema = gen_generals st cfg schema in
  schema

(* A random projection workload over a generated schema: a source type
   with a non-trivial cumulative state and a random non-empty subset of
   its attributes. *)
let gen_projection ?(seed = 0) schema =
  let st = Random.State.make [| seed |] in
  let h = Schema.hierarchy schema in
  let sources =
    List.filter
      (fun n -> List.length (Hierarchy.all_attribute_names h n) >= 2)
      (Hierarchy.type_names h)
  in
  let source =
    match sources with
    | [] -> pick st (Hierarchy.type_names h)
    | l ->
        (* favor deep types: more supertypes means more factoring *)
        let scored =
          List.map (fun n -> (Type_name.Set.cardinal (Hierarchy.ancestors h n), n)) l
        in
        let best = List.fold_left (fun acc (s, _) -> max acc s) 0 scored in
        pick st
          (List.filter_map
             (fun (s, n) -> if s >= best / 2 then Some n else None)
             scored)
  in
  let attrs = Hierarchy.all_attribute_names h source in
  let k = 1 + Random.State.int st (List.length attrs) in
  let projection = sample st k attrs in
  (source, List.sort Attr_name.compare projection)

(* Populate a database with [n] objects of random types, integer slots
   filled deterministically. *)
let populate ?(seed = 7) db n =
  let st = Random.State.make [| seed |] in
  let schema = Tdp_store.Database.schema db in
  let h = Schema.hierarchy schema in
  let types =
    List.filter
      (fun t -> not (Type_def.is_surrogate (Hierarchy.find h t)))
      (Hierarchy.type_names h)
  in
  List.init n (fun _ ->
      let ty = pick st types in
      let init =
        List.map
          (fun a ->
            (Attribute.name a, Tdp_store.Value.Int (Random.State.int st 1000)))
          (Hierarchy.all_attributes h ty)
      in
      Tdp_store.Database.new_object db ty ~init)
