open Tdp_core

let ty = Type_name.of_string
let at = Attr_name.of_string
let attr name vt = Attribute.make (at name) vt

let add_type schema ?origin ~attrs ~supers name =
  let def =
    Type_def.make ?origin
      ~attrs:(List.map (fun (n, t) -> attr n t) attrs)
      ~supers:(List.map (fun (s, p) -> (ty s, p)) supers)
      (ty name)
  in
  Schema.add_type schema def

let add_reader schema ~gf ~on ~attr:a ~result =
  Schema.add_method schema
    (Method_def.reader ~gf ~id:gf ~param:"self" ~param_type:(ty on) ~attr:(at a)
       ~result)

let add_writer schema ~gf ~on ~attr:a =
  Schema.add_method schema
    (Method_def.writer ~gf ~id:gf ~param:"self" ~param_type:(ty on) ~attr:(at a))

let add_general schema ~gf ~id ?result ~params body =
  let params = List.map (fun (x, t) -> (x, ty t)) params in
  Schema.add_method schema
    (Method_def.make ~gf ~id ~signature:(Signature.make ?result params)
       (General body))
