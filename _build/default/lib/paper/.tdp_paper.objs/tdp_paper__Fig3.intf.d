lib/paper/fig3.mli: Attr_name Method_def Projection Schema Tdp_core Type_name
