lib/paper/build.ml: Attr_name Attribute List Method_def Schema Signature Tdp_core Type_def Type_name
