lib/paper/build.mli: Attr_name Attribute Body Schema Tdp_core Type_def Type_name Value_type
