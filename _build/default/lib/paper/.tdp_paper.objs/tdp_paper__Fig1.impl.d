lib/paper/fig1.ml: Attr_name Body Build List Projection Schema Tdp_core Type_name Value_type
