lib/paper/fig3.ml: Attr_name Body Build List Method_def Projection Schema Tdp_core Type_name Value_type
