lib/paper/fig1.mli: Attr_name Projection Schema Tdp_core Type_name
