(* The simple type hierarchy of the paper's Figure 1 (Section 3.1):

     Person   { ssn, name, date_of_birth }
     Employee { pay_rate, hrs_worked }   Employee ⪯ Person

   with accessor methods for every attribute and the three general
   methods age, income, and promote. *)

open Tdp_core
open Build

let person = Type_name.of_string "Person"
let employee = Type_name.of_string "Employee"

let schema =
  let s = Schema.empty in
  let s =
    add_type s
      ~attrs:
        [ ("ssn", Value_type.int);
          ("name", Value_type.string);
          ("date_of_birth", Value_type.date)
        ]
      ~supers:[] "Person"
  in
  let s =
    add_type s
      ~attrs:[ ("pay_rate", Value_type.float); ("hrs_worked", Value_type.float) ]
      ~supers:[ ("Person", 1) ]
      "Employee"
  in
  let s = add_reader s ~gf:"get_ssn" ~on:"Person" ~attr:"ssn" ~result:Value_type.int in
  let s =
    add_reader s ~gf:"get_name" ~on:"Person" ~attr:"name" ~result:Value_type.string
  in
  let s =
    add_reader s ~gf:"get_date_of_birth" ~on:"Person" ~attr:"date_of_birth"
      ~result:Value_type.date
  in
  let s =
    add_reader s ~gf:"get_pay_rate" ~on:"Employee" ~attr:"pay_rate"
      ~result:Value_type.float
  in
  let s =
    add_reader s ~gf:"get_hrs_worked" ~on:"Employee" ~attr:"hrs_worked"
      ~result:Value_type.float
  in
  let s = add_writer s ~gf:"set_pay_rate" ~on:"Employee" ~attr:"pay_rate" in
  (* age(Person) = ( ...get_date_of_birth(Person)... ) *)
  let s =
    add_general s ~gf:"age" ~id:"age" ~result:Value_type.int
      ~params:[ ("p", "Person") ]
      [ Body.return_
          (Body.builtin "years_since" [ Body.call "get_date_of_birth" [ Body.var "p" ] ])
      ]
  in
  (* income(Employee) = ( ...get_pay_rate(Employee), get_hrs_worked(Employee)... ) *)
  let s =
    add_general s ~gf:"income" ~id:"income" ~result:Value_type.float
      ~params:[ ("e", "Employee") ]
      [ Body.return_
          (Body.builtin "*"
             [ Body.call "get_pay_rate" [ Body.var "e" ];
               Body.call "get_hrs_worked" [ Body.var "e" ]
             ])
      ]
  in
  (* promote(Employee) = ( ...get_date_of_birth(Employee), get_pay_rate(Employee)... ) *)
  let s =
    add_general s ~gf:"promote" ~id:"promote" ~result:Value_type.bool
      ~params:[ ("e", "Employee") ]
      [ Body.return_
          (Body.builtin "and"
             [ Body.builtin ">="
                 [ Body.builtin "years_since"
                     [ Body.call "get_date_of_birth" [ Body.var "e" ] ];
                   Body.int 5
                 ];
               Body.builtin "<" [ Body.call "get_pay_rate" [ Body.var "e" ]; Body.int 100 ]
             ])
      ]
  in
  s

(* The projection of Section 3.1: Π_{ssn, date_of_birth, pay_rate} Employee. *)
let projection = List.map Attr_name.of_string [ "ssn"; "date_of_birth"; "pay_rate" ]

let project ?(derived_name = "Employee_hat") () =
  Projection.project_exn schema ~view:"employee_view"
    ~derived_name:(Type_name.of_string derived_name) ~source:employee ~projection
    ()
