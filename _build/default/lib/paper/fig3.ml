(* The type hierarchy and methods of the paper's Figure 3 and
   Examples 1–4 (Sections 4.2, 5.2, 6.2, 6.5).

   Hierarchy (arrows point to supertypes; integers are precedences):

     A -> C(1), B(2)      B -> D(1), E(2)      C -> F(1), E(2)
     E -> G(1), H(2)      F -> H(1)            D, G, H roots

   Local attributes: A{a1,a2} B{b1} C{c1} D{d1} E{e1,e2} F{f1} G{g1}
   H{h1,h2}.

   Methods (the paper's Example 1):
     u1(A) = {get_a1(A)}          u2(C) = {get_g1(C)}    u3(B) = {get_h2(B)}
     v1(A,C) = {u(A); w(C)}       v2(B,C) = {get_b1(B); u(C)}
     w1(A) = {get_a1(A)}          w2(C) = {u(C)}
     x1(A,B) = {y(A,B); v(B,A)}   y1(A,B) = {x(A,B)}

   The projection studied throughout the paper is Π_{a2,e2,h2} A. *)

open Tdp_core
open Build

let a = Type_name.of_string "A"
let int = Value_type.int

let hierarchy_schema =
  let s = Schema.empty in
  let s = add_type s ~attrs:[ ("d1", int) ] ~supers:[] "D" in
  let s = add_type s ~attrs:[ ("g1", int) ] ~supers:[] "G" in
  let s = add_type s ~attrs:[ ("h1", int); ("h2", int) ] ~supers:[] "H" in
  let s = add_type s ~attrs:[ ("f1", int) ] ~supers:[ ("H", 1) ] "F" in
  let s =
    add_type s ~attrs:[ ("e1", int); ("e2", int) ] ~supers:[ ("G", 1); ("H", 2) ] "E"
  in
  let s = add_type s ~attrs:[ ("c1", int) ] ~supers:[ ("F", 1); ("E", 2) ] "C" in
  let s = add_type s ~attrs:[ ("b1", int) ] ~supers:[ ("D", 1); ("E", 2) ] "B" in
  let s =
    add_type s ~attrs:[ ("a1", int); ("a2", int) ] ~supers:[ ("C", 1); ("B", 2) ] "A"
  in
  s

let schema =
  let s = hierarchy_schema in
  let s = add_reader s ~gf:"get_a1" ~on:"A" ~attr:"a1" ~result:int in
  let s = add_reader s ~gf:"get_b1" ~on:"B" ~attr:"b1" ~result:int in
  let s = add_reader s ~gf:"get_h2" ~on:"B" ~attr:"h2" ~result:int in
  let s = add_reader s ~gf:"get_g1" ~on:"C" ~attr:"g1" ~result:int in
  let s =
    add_general s ~gf:"u" ~id:"u1" ~params:[ ("a", "A") ]
      [ Body.expr (Body.call "get_a1" [ Body.var "a" ]) ]
  in
  let s =
    add_general s ~gf:"u" ~id:"u2" ~params:[ ("c", "C") ]
      [ Body.expr (Body.call "get_g1" [ Body.var "c" ]) ]
  in
  let s =
    add_general s ~gf:"u" ~id:"u3" ~params:[ ("b", "B") ]
      [ Body.expr (Body.call "get_h2" [ Body.var "b" ]) ]
  in
  let s =
    add_general s ~gf:"v" ~id:"v1"
      ~params:[ ("a", "A"); ("c", "C") ]
      [ Body.expr (Body.call "u" [ Body.var "a" ]);
        Body.expr (Body.call "w" [ Body.var "c" ])
      ]
  in
  let s =
    add_general s ~gf:"v" ~id:"v2"
      ~params:[ ("b", "B"); ("c", "C") ]
      [ Body.expr (Body.call "get_b1" [ Body.var "b" ]);
        Body.expr (Body.call "u" [ Body.var "c" ])
      ]
  in
  let s =
    add_general s ~gf:"w" ~id:"w1" ~params:[ ("a", "A") ]
      [ Body.expr (Body.call "get_a1" [ Body.var "a" ]) ]
  in
  let s =
    add_general s ~gf:"w" ~id:"w2" ~params:[ ("c", "C") ]
      [ Body.expr (Body.call "u" [ Body.var "c" ]) ]
  in
  let s =
    add_general s ~gf:"x" ~id:"x1"
      ~params:[ ("a", "A"); ("b", "B") ]
      [ Body.expr (Body.call "y" [ Body.var "a"; Body.var "b" ]);
        Body.expr (Body.call "v" [ Body.var "b"; Body.var "a" ])
      ]
  in
  let s =
    add_general s ~gf:"y" ~id:"y1"
      ~params:[ ("a", "A"); ("b", "B") ]
      [ Body.expr (Body.call "x" [ Body.var "a"; Body.var "b" ]) ]
  in
  s

(* Extension used to reproduce Example 4 / Figure 5 from first
   principles: two applicable methods whose bodies assign a rebound
   parameter into locals of declared types D and G, so that the def-use
   analysis of Section 6.4 computes Y ⊇ {D, G} and hence Z = {D, G}. *)
let schema_with_z =
  let s = schema in
  let s =
    add_general s ~gf:"ret_g" ~id:"z1" ~result:(Value_type.named (Type_name.of_string "G"))
      ~params:[ ("c", "C") ]
      [ Body.local "g" (Value_type.named (Type_name.of_string "G"));
        Body.assign "g" (Body.var "c");
        Body.expr (Body.call "u" [ Body.var "c" ]);
        Body.return_ (Body.var "g")
      ]
  in
  let s =
    add_general s ~gf:"ret_d" ~id:"z2" ~result:(Value_type.named (Type_name.of_string "D"))
      ~params:[ ("b", "B") ]
      [ Body.local "d" (Value_type.named (Type_name.of_string "D"));
        Body.assign "d" (Body.var "b");
        Body.expr (Body.call "get_h2" [ Body.var "b" ]);
        Body.return_ (Body.var "d")
      ]
  in
  s

(* Π_{a2,e2,h2} A, the projection of Example 1. *)
let projection = List.map Attr_name.of_string [ "a2"; "e2"; "h2" ]

let project ?(schema = schema) ?(derived_name = "A_hat") () =
  Projection.project_exn schema ~view:"a_view"
    ~derived_name:(Type_name.of_string derived_name) ~source:a ~projection ()

let method_key gf id = Method_def.Key.make gf id

(* The classification the paper derives in Example 2. *)
let expected_applicable =
  [ ("get_h2", "get_h2"); ("u", "u3"); ("v", "v1"); ("w", "w2") ]

let expected_not_applicable =
  [ ("get_a1", "get_a1");
    ("get_b1", "get_b1");
    ("get_g1", "get_g1");
    ("u", "u1");
    ("u", "u2");
    ("v", "v2");
    ("w", "w1");
    ("x", "x1");
    ("y", "y1")
  ]
