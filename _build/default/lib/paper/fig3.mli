(** The paper's Figure 3 hierarchy and the methods of Examples 1–4
    (Sections 4.2, 5.2, 6.2, 6.5). *)

open Tdp_core

val a : Type_name.t

(** The eight types A–H with attributes and precedences, no methods. *)
val hierarchy_schema : Schema.t

(** Figure 3 plus the accessors and methods u1–u3, v1–v2, w1–w2, x1, y1
    of Example 1. *)
val schema : Schema.t

(** [schema] extended with two applicable methods that assign a rebound
    parameter into locals of declared types D and G, so the Section 6.4
    analysis computes Z = \{D, G\} — reproducing Example 4 / Figure 5
    from first principles. *)
val schema_with_z : Schema.t

(** [a2; e2; h2] — Π_{a2,e2,h2} A, the projection of Example 1. *)
val projection : Attr_name.t list

(** Run the projection through the full pipeline; [derived_name]
    defaults to ["A_hat"] so the result matches Figure 4 verbatim. *)
val project : ?schema:Schema.t -> ?derived_name:string -> unit -> Projection.outcome

val method_key : string -> string -> Method_def.Key.t

(** The classification the paper derives in Example 2, as
    [(generic function, method id)] pairs. *)
val expected_applicable : (string * string) list

val expected_not_applicable : (string * string) list
