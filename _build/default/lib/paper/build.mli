(** Small helpers for declaring the paper's schemas concisely. *)

open Tdp_core

val ty : string -> Type_name.t
val at : string -> Attr_name.t
val attr : string -> Value_type.t -> Attribute.t

(** Add a type from string names: [(attr, type)] pairs and
    [(super, precedence)] pairs. *)
val add_type :
  Schema.t ->
  ?origin:Type_def.origin ->
  attrs:(string * Value_type.t) list ->
  supers:(string * int) list ->
  string ->
  Schema.t

(** Add a unary reader whose method id equals the gf name. *)
val add_reader :
  Schema.t -> gf:string -> on:string -> attr:string -> result:Value_type.t -> Schema.t

val add_writer : Schema.t -> gf:string -> on:string -> attr:string -> Schema.t

val add_general :
  Schema.t ->
  gf:string ->
  id:string ->
  ?result:Value_type.t ->
  params:(string * string) list ->
  Body.t ->
  Schema.t
