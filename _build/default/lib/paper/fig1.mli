(** The paper's Figure 1 (Section 3.1): the Person/Employee hierarchy
    with accessors and the methods [age], [income], and [promote]. *)

open Tdp_core

val person : Type_name.t
val employee : Type_name.t
val schema : Schema.t

(** [ssn; date_of_birth; pay_rate] — the projection of Section 3.1. *)
val projection : Attr_name.t list

(** Run Π_{ssn,date_of_birth,pay_rate} Employee through the full
    pipeline; [derived_name] defaults to ["Employee_hat"] so the result
    matches Figure 2 verbatim. *)
val project : ?derived_name:string -> unit -> Projection.outcome
