type t = int

let compare = Int.compare
let equal = Int.equal
let pp ppf t = Fmt.pf ppf "#%d" t
let to_int t = t
let of_int i = i

module Map = Map.Make (Int)
module Set = Set.Make (Int)
