open Tdp_core

type t =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Date of int  (** a year; enough structure for the paper's examples *)
  | Ref of Oid.t
  | Null

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Date x, Date y -> x = y
  | Ref x, Ref y -> Oid.equal x y
  | Null, Null -> true
  | (Int _ | Float _ | String _ | Bool _ | Date _ | Ref _ | Null), _ -> false

let pp ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | String s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Date y -> Fmt.pf ppf "year(%d)" y
  | Ref o -> Oid.pp ppf o
  | Null -> Fmt.string ppf "null"

let of_literal (l : Body.literal) =
  match l with
  | Int i -> Int i
  | Float f -> Float f
  | String s -> String s
  | Bool b -> Bool b
  | Null -> Null

(* Shallow conformance of a runtime value to a declared type; reference
   conformance is checked by the database, which knows object types. *)
let conforms_prim v (p : Value_type.prim) =
  match (v, p) with
  | Int _, Int | Float _, Float | String _, String | Bool _, Bool | Date _, Date ->
      true
  | Null, _ -> true
  | (Int _ | Float _ | String _ | Bool _ | Date _ | Ref _), _ -> false
