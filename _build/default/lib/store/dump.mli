(** Textual dump / load of object stores.

    One line per object:

    {v obj #<oid> <Type> <attr>=<value> … v}

    Values: [42], [42.5], ["…"], [true]/[false], [year:1990],
    [#3] (reference), [null].  [--] starts a comment line.  Loading is
    two-pass so forward references work; OIDs are preserved, which
    keeps references and view identities stable across dump/load. *)

exception Parse_error of { line : int; message : string }

val value_to_string : Value.t -> string

(** @raise Parse_error *)
val value_of_string : int -> string -> Value.t

(** Serialize every object, in OID order. *)
val to_string : Database.t -> string

(** Load a dump into the database; returns the restored OIDs in file
    order.
    @raise Parse_error on malformed input.
    @raise Database.Store_error via [Parse_error] wrapping on schema
    violations. *)
val load_into : Database.t -> string -> Oid.t list
