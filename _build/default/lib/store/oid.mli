(** Object identifiers.

    Every stored object has an identity independent of its state, as in
    any OODB; projection views share the identities of their source
    instances. *)

type t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_int : t -> int
val of_int : int -> t

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
