lib/store/interp.ml: Body Database Fmt Fun List Map Method_def Schema Signature String Tdp_core Tdp_dispatch Type_name Value
