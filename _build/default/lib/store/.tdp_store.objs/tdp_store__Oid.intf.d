lib/store/oid.mli: Fmt Map Set
