lib/store/value.mli: Body Fmt Oid Tdp_core Value_type
