lib/store/oid.ml: Fmt Int Map Set
