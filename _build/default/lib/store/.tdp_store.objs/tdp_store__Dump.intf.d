lib/store/dump.mli: Database Oid Value
