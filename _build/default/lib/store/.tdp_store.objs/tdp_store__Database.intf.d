lib/store/database.mli: Attr_name Hierarchy Oid Schema Tdp_core Type_name Value
