lib/store/database.ml: Attr_name Attribute Fmt Hashtbl Hierarchy List Oid Schema Subtype_cache Tdp_core Type_name Value Value_type
