lib/store/value.ml: Body Float Fmt Oid String Tdp_core Value_type
