lib/store/dump.ml: Attr_name Buffer Database Fmt Fun List Oid Scanf String Tdp_core Type_name Value
