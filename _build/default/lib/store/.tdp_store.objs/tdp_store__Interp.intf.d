lib/store/interp.mli: Database Oid Value
