(** Runtime values stored in object slots and passed to methods. *)

open Tdp_core

type t =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Date of int  (** a year; enough structure for the paper's examples *)
  | Ref of Oid.t
  | Null

val equal : t -> t -> bool
val pp : t Fmt.t

(** Literal of a method body as a runtime value. *)
val of_literal : Body.literal -> t

(** Shallow conformance to a primitive type; [Null] conforms to
    everything, references are checked by the database. *)
val conforms_prim : t -> Value_type.prim -> bool
