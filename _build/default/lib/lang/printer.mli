(** Pretty-printer from schemas back to the surface syntax.

    Round-trip guarantee (tested): for any schema [s],
    [Elaborate.load_exn (print s)] has a structurally equal hierarchy
    and identical methods, and printing is a fixpoint.  Surrogate
    origins are not part of the surface syntax and are not preserved. *)

open Tdp_core

val pp_type : Type_def.t Fmt.t
val pp_method : Method_def.t Fmt.t
val pp_view_expr : Tdp_algebra.View.expr Fmt.t

(** Print a whole program: types in topological (supertypes-first)
    order, then methods, then the given views. *)
val print : ?views:(string * Tdp_algebra.View.expr) list -> Schema.t -> string
