(** Recursive-descent parser for the schema language.

    Produces the surface syntax of {!Ast}; name resolution and
    type-checking happen in {!Elaborate}.  See README.md for the
    grammar. *)

(** @raise Error.E [Parse_error] with position information. *)
val parse_string : string -> Ast.program

val parse : string -> (Ast.program, Tdp_core.Error.t) result
