lib/lang/parser.ml: Ast Error Fmt Lexer List Tdp_core
