lib/lang/printer.mli: Fmt Method_def Schema Tdp_algebra Tdp_core Type_def
