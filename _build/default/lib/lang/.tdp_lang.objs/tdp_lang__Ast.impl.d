lib/lang/ast.ml:
