lib/lang/lexer.mli:
