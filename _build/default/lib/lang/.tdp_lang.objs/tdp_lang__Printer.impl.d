lib/lang/printer.ml: Attr_name Attribute Body Buffer Fmt Hierarchy List Method_def Schema Signature String Tdp_algebra Tdp_core Type_def Type_name Value_type
