lib/lang/parser.mli: Ast Tdp_core
