lib/lang/elaborate.mli: Ast Error Schema Tdp_algebra Tdp_core Type_name
