lib/lang/elaborate.ml: Ast Attr_name Attribute Body Error Hierarchy List Method_def Option Parser Schema Set Signature String Tdp_algebra Tdp_core Type_def Type_name Typing Value_type
