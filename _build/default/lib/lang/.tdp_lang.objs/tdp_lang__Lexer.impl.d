lib/lang/lexer.ml: Buffer Error Fmt List String Tdp_core
