(** Tokenizer for the schema language.

    Hand-written, with line/column tracking for error reporting.
    [//] starts a line comment. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COLON
  | SEMI
  | COMMA
  | HASH
  | ARROW  (** [->] *)
  | ASSIGN  (** [:=] *)
  | EQUALS  (** [=] *)
  | EQEQ
  | NE
  | LE
  | GE
  | LT
  | GT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

type spanned = { token : token; line : int; col : int }

(** Reserved words of the language. *)
val keywords : string list

val token_to_string : token -> string

(** Tokenize a complete source string; the result always ends in [EOF].
    @raise Error.E [Parse_error] on an unexpected character or an
    unterminated string. *)
val tokenize : string -> spanned list
