(** The definition of a single object type.

    A type has a name, an ordered list of {e local} attributes, and a
    list of direct supertypes each tagged with an integer precedence
    (lower integer = higher precedence, as in the paper's figures).
    Types created by the factoring algorithms carry a [Surrogate] origin
    recording the source type they were spun off from and the view that
    caused the split. *)

type origin =
  | Source
  | Surrogate of { source : Type_name.t; view : string }

type t = {
  name : Type_name.t;
  origin : origin;
  attrs : Attribute.t list;
  supers : (Type_name.t * int) list;  (** sorted by ascending precedence *)
}

(** [make name] builds a definition.  [supers] is re-sorted by
    precedence; relative order of equal precedences is preserved. *)
val make :
  ?origin:origin ->
  ?attrs:Attribute.t list ->
  ?supers:(Type_name.t * int) list ->
  Type_name.t ->
  t

val name : t -> Type_name.t
val origin : t -> origin
val attrs : t -> Attribute.t list

(** Direct supertypes in ascending precedence order. *)
val supers : t -> (Type_name.t * int) list

val super_names : t -> Type_name.t list
val is_surrogate : t -> bool
val surrogate_source : t -> Type_name.t option
val has_local_attr : t -> Attr_name.t -> bool
val find_local_attr : t -> Attr_name.t -> Attribute.t option
val with_attrs : t -> Attribute.t list -> t
val remove_attr : t -> Attr_name.t -> t
val add_attr : t -> Attribute.t -> t
val has_super : t -> Type_name.t -> bool
val super_precedence : t -> Type_name.t -> int option

(** Replace the whole supertype list (re-sorted by precedence). *)
val with_supers : t -> (Type_name.t * int) list -> t

(** [add_super t s prec] adds a direct supertype.

    @raise Error.E if [s] is already a supertype of [t] or equals [t]. *)
val add_super : t -> Type_name.t -> int -> t

(** Precedence of the highest-precedence (lowest integer) supertype. *)
val min_super_precedence : t -> int option

val pp : t Fmt.t
