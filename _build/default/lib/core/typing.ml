module SMap = Map.Make (String)

type env = Value_type.t SMap.t

let env_of_method m =
  let s = Method_def.signature m in
  let env =
    List.fold_left
      (fun env (x, ty) -> SMap.add x (Value_type.Named ty) env)
      SMap.empty (Signature.params s)
  in
  match Method_def.body m with
  | None -> env
  | Some b ->
      List.fold_left (fun env (x, ty) -> SMap.add x ty env) env (Body.locals b)

let lookup_var env x = Option.value ~default:Value_type.Unknown (SMap.find_opt x env)

let type_of_expr schema env (e : Body.expr) =
  match e with
  | Var x -> lookup_var env x
  | Lit (Int _) -> Value_type.int
  | Lit (Float _) -> Value_type.float
  | Lit (String _) -> Value_type.string
  | Lit (Bool _) -> Value_type.bool
  | Lit Null -> Value_type.Unknown
  | Call { gf; _ } -> (
      match Schema.find_gf_opt schema gf with
      | Some g -> Option.value ~default:Value_type.Unknown (Generic_function.result g)
      | None -> Value_type.Unknown)
  | Builtin { op; args } -> (
      ignore args;
      match op with
      | "=" | "<" | ">" | "<=" | ">=" | "!=" | "and" | "or" | "not" -> Value_type.bool
      | _ -> Value_type.Unknown)

(* [arg_type_names schema env meth_id gf args] is the list of object
   types of a generic-function call's arguments.  The paper's model only
   passes objects to generic functions, so a primitive- or
   unknown-typed argument is a model violation. *)
let arg_type_names schema env ~gf args =
  List.mapi
    (fun i a ->
      match Value_type.as_named (type_of_expr schema env a) with
      | Some n -> n
      | None -> Error.raise_ (Non_object_argument { gf; position = i }))
    args

let compatible h ~from_ ~to_ =
  match (from_, to_) with
  | Value_type.Unknown, _ | _, Value_type.Unknown -> true
  | Value_type.Named a, Value_type.Named b -> Hierarchy.subtype h a b
  | Value_type.Prim p, Value_type.Prim q -> p = q
  | Value_type.Prim _, Value_type.Named _ | Value_type.Named _, Value_type.Prim _ ->
      false

let check_method schema m =
  match Method_def.body m with
  | None -> ()
  | Some body ->
      let env = env_of_method m in
      let meth = Method_def.id m in
      let h = Schema.hierarchy schema in
      let check_expr () e =
        match (e : Body.expr) with
        | Var x ->
            if not (SMap.mem x env) then
              Error.raise_ (Unbound_variable { meth; var = x })
        | Lit _ | Builtin _ -> ()
        | Call { gf; args } -> (
            match Schema.find_gf_opt schema gf with
            | None -> Error.raise_ (Unknown_generic_function gf)
            | Some g ->
                (* Writer generic functions take one extra syntactic
                   argument: the new attribute value. *)
                let expected =
                  Generic_function.arity g
                  + if Schema.is_writer_gf schema gf then 1 else 0
                in
                if List.length args <> expected then
                  Error.raise_
                    (Arity_mismatch { gf; expected; got = List.length args });
                let dispatched =
                  if Schema.is_writer_gf schema gf then
                    List.filteri (fun i _ -> i < Generic_function.arity g) args
                  else args
                in
                ignore (arg_type_names schema env ~gf dispatched))
      in
      Body.fold_stmts check_expr () body;
      (* Assignment compatibility: [x := e] needs type(e) ⪯ type(x).
         This is the property that Section 6.3's re-typing of method
         bodies must preserve. *)
      let rec check_stmts stmts = List.iter check_stmt stmts
      and check_stmt (s : Body.stmt) =
        match s with
        | Assign (x, e) | Local { var = x; init = Some e; _ } ->
            if not (SMap.mem x env) then
              Error.raise_ (Unbound_variable { meth; var = x });
            let tx = lookup_var env x and te = type_of_expr schema env e in
            if not (compatible h ~from_:te ~to_:tx) then
              Error.raise_
                (Invariant_violation
                   (Fmt.str "ill-typed assignment to %s in method %s" x meth))
        | Local { init = None; _ } | Expr _ | Return None -> ()
        | Return (Some e) -> (
            match Signature.result (Method_def.signature m) with
            | None -> ()
            | Some rt ->
                let te = type_of_expr schema env e in
                if not (compatible h ~from_:te ~to_:rt) then
                  Error.raise_
                    (Invariant_violation
                       (Fmt.str "ill-typed return in method %s" meth)))
        | If (_, t, e) ->
            check_stmts t;
            check_stmts e
        | While (_, b) -> check_stmts b
      in
      check_stmts body

let check_all_methods schema =
  List.iter (check_method schema) (Schema.all_methods schema)

let check_all schema =
  Error.guard (fun () ->
      Schema.validate_exn schema;
      check_all_methods schema)
