(** Method factorization (Sections 6.1–6.3).

    Because a surrogate [T̂ᵢ] is the direct supertype of highest
    precedence of its source [Tᵢ], any method applicable to the derived
    type can be relocated from [(T¹..Tⁿ)] to [(T̂¹..T̂ⁿ)]: original
    instances are still instances of every [T̂ᵢ], so their behavior is
    unchanged, while the derived type now inherits the method.

    In addition to the signature rewrite, the declarations of local
    variables (and the result type) reached by a rebound formal are
    re-typed in terms of surrogate types, so the body stays well-typed
    — the concern of Section 6.3, for which {!Augment} creates any
    missing surrogates beforehand. *)

type rewrite = {
  key : Method_def.Key.t;
  old_signature : Signature.t;
  new_signature : Signature.t;
  retyped_locals : (string * Type_name.t * Type_name.t) list;
      (** (variable, old declared type, surrogate) *)
  retyped_result : (Type_name.t * Type_name.t) option;
}

(** [run_exn schema ~surrogates ~applicable] relocates every applicable
    method whose signature mentions a factored type; returns the updated
    schema and the rewrites performed, in key order. *)
val run_exn :
  Schema.t ->
  surrogates:Type_name.t Type_name.Map.t ->
  applicable:Method_def.Key.Set.t ->
  Schema.t * rewrite list

val run :
  Schema.t ->
  surrogates:Type_name.t Type_name.Map.t ->
  applicable:Method_def.Key.Set.t ->
  (Schema.t * rewrite list, Error.t) result

val pp_rewrite : rewrite Fmt.t
