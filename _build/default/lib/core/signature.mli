(** Method signatures.

    A method of an [n]-ary generic function is defined for [n] formal
    arguments of particular object types — the notation
    [mk(T¹k, T²k, …, Tⁿk)] of the paper — plus an optional result type. *)

type t = {
  params : (string * Type_name.t) list;
  result : Value_type.t option;
}

val make : ?result:Value_type.t -> (string * Type_name.t) list -> t
val params : t -> (string * Type_name.t) list
val param_types : t -> Type_name.t list
val result : t -> Value_type.t option
val arity : t -> int

(** @raise Invalid_argument if out of bounds. *)
val param_type : t -> int -> Type_name.t

val equal : t -> t -> bool

(** Rewrite every formal argument type (used by FactorMethods). *)
val map_param_types : (Type_name.t -> Type_name.t) -> t -> t

val pp : t Fmt.t
val pp_types : t Fmt.t
