type t = { name : Attr_name.t; ty : Value_type.t }

let make name ty = { name; ty }
let name t = t.name
let ty t = t.ty
let equal a b = Attr_name.equal a.name b.name && Value_type.equal a.ty b.ty
let compare a b = Attr_name.compare a.name b.name
let pp ppf t = Fmt.pf ppf "%a : %a" Attr_name.pp t.name Value_type.pp t.ty
