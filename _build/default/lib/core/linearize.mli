(** Class precedence lists (CPL).

    The paper assumes "a precedence relationship among the direct
    supertypes of a type" used for method selection (Section 2,
    referencing the authors' OOPSLA'91 work on multi-method checking).
    This module linearizes a type's supertype closure into a total
    order, CLOS-style, so that {!Tdp_dispatch} can rank applicable
    methods per argument position. *)

(** [cpl h c] is the class precedence list of [c]: [c] first, followed
    by all its ancestors, consistent with every local precedence order.

    @raise Error.E [Linearization_failure] if the local orders are
    contradictory. *)
val cpl : Hierarchy.t -> Type_name.t -> Type_name.t list

val cpl_result : Hierarchy.t -> Type_name.t -> (Type_name.t list, Error.t) result

(** [index_of h c] is a function giving each ancestor's position in
    [cpl h c] ([Some 0] for [c] itself, [None] for non-ancestors). *)
val index_of : Hierarchy.t -> Type_name.t -> Type_name.t -> int option
