(** Graphviz (DOT) rendering of type hierarchies.

    Follows the paper's figures: arrows point from subtype to supertype
    and are labelled with the precedence of the supertype; surrogate
    types are drawn dashed. *)

(** [of_hierarchy ?name h] is a complete [digraph] document. *)
val of_hierarchy : ?name:string -> Hierarchy.t -> string
