(* Specializations for restricted type systems — the paper's Section 7:
   "It will be interesting to specialize the solutions presented in
   this paper for specific cases of object-oriented type systems that
   do not require this generality."

   Under single inheritance the supertype closure of the source is a
   chain, and state factorization loses all of its subtlety: no
   memoization (no type is reached twice), no precedence juggling (the
   surrogate chain simply parallels the source chain), and a single
   upward walk that stops at the highest owner of a projected
   attribute.  [factor_chain_exn] implements that walk directly; the
   differential property test checks it produces a hierarchy identical
   to the general {!Factor_state} on every single-inheritance schema. *)

let is_single_inheritance h =
  Hierarchy.fold (fun def ok -> ok && List.length (Type_def.supers def) <= 1) h true

(* Single dispatch in the paper's sense: every generic function selects
   on one argument. *)
let is_single_dispatch schema =
  List.for_all
    (fun g -> Generic_function.arity g = 1)
    (Schema.gfs schema)

let factor_chain_exn hierarchy ~view ?derived_name ~source ~projection () =
  if not (is_single_inheritance hierarchy) then
    Error.raise_
      (Invariant_violation "factor_chain requires a single-inheritance hierarchy");
  if projection = [] then Error.raise_ Empty_projection;
  List.iter
    (fun a ->
      if not (Hierarchy.has_attribute hierarchy source a) then
        Error.raise_ (Attribute_not_available { ty = source; attr = a }))
    projection;
  (match derived_name with
  | Some n when Hierarchy.mem hierarchy n -> Error.raise_ (Duplicate_type n)
  | Some _ | None -> ());
  (* Walk the chain from the source upward, creating one surrogate per
     node while any projected attribute remains at or above it. *)
  let rec walk h surrogates t parent remaining first =
    if remaining = [] then (h, surrogates)
    else begin
      let def = Hierarchy.find h t in
      let t_hat =
        match (first, derived_name) with
        | true, Some n -> n
        | _ -> Hierarchy.fresh_name h t
      in
      let h =
        Hierarchy.add h
          (Type_def.make ~origin:(Surrogate { source = t; view }) t_hat)
      in
      let h =
        Hierarchy.add_super h ~sub:t ~super:t_hat
          ~prec:(Factor_state.surrogate_precedence_of_def def)
      in
      let h =
        match parent with
        | Some (p, prec) -> Hierarchy.add_super h ~sub:p ~super:t_hat ~prec
        | None -> h
      in
      let local, above =
        List.partition (fun a -> Type_def.has_local_attr def a) remaining
      in
      let h =
        List.fold_left
          (fun h a -> Hierarchy.move_attr h ~attr:a ~from_:t ~to_:t_hat)
          h local
      in
      let surrogates = Type_name.Map.add t t_hat surrogates in
      match Type_def.supers def with
      | [] ->
          if above <> [] then
            Error.raise_
              (Invariant_violation "projected attribute not found on the chain");
          (h, surrogates)
      | (s, p) :: _ ->
          if Type_name.Map.mem s surrogates then (h, surrogates)
          else walk h surrogates s (Some (t_hat, p)) above false
    end
  in
  let h, surrogates =
    walk hierarchy Type_name.Map.empty source None projection true
  in
  { Factor_state.hierarchy = h;
    derived = Type_name.Map.find source surrogates;
    surrogates
  }

let factor_chain hierarchy ~view ?derived_name ~source ~projection () =
  Error.guard (fun () ->
      factor_chain_exn hierarchy ~view ?derived_name ~source ~projection ())
