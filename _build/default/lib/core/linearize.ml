(* Class precedence lists in the style of CLOS.

   The CPL of a type [c] is a total order on [ancestors_or_self c]
   consistent with two kinds of local constraints:

   - [c] precedes its direct supertypes, and each direct supertype
     precedes the next one in (ascending integer) precedence order;
   - the same holds recursively for every ancestor.

   Following CLOS, when several candidates are available we pick the one
   that is a direct supertype of the rightmost (most recently placed)
   element of the list built so far; this keeps families of related
   types together.  An inconsistent set of constraints (possible with
   multiple inheritance) raises [Linearization_failure]. *)

let constraints h c =
  let cs = ref [] in
  Type_name.Set.iter
    (fun n ->
      let supers = List.map fst (Hierarchy.direct_supers h n) in
      let rec chain prev = function
        | [] -> ()
        | s :: rest ->
            cs := (prev, s) :: !cs;
            chain s rest
      in
      chain n supers)
    (Hierarchy.ancestors_or_self h c);
  !cs

let cpl h c =
  let nodes = Hierarchy.ancestors_or_self h c in
  let cs = constraints h c in
  let preds n =
    List.filter_map
      (fun (a, b) -> if Type_name.equal b n then Some a else None)
      cs
  in
  let placed = ref Type_name.Set.empty in
  let order = ref [] (* reverse order: most recently placed first *) in
  let candidates () =
    Type_name.Set.elements
      (Type_name.Set.filter
         (fun n ->
           (not (Type_name.Set.mem n !placed))
           && List.for_all (fun p -> Type_name.Set.mem p !placed) (preds n))
         nodes)
  in
  let choose = function
    | [] -> None
    | [ n ] -> Some n
    | many ->
        (* CLOS tie-break: the candidate with a direct subtype most
           recently placed. *)
        let rec scan = function
          | [] -> Some (List.hd many)
          | placed_n :: rest -> (
              let supers = Hierarchy.direct_super_names h placed_n in
              match
                List.find_opt
                  (fun cand -> List.exists (Type_name.equal cand) supers)
                  many
              with
              | Some c -> Some c
              | None -> scan rest)
        in
        scan !order
  in
  let n_total = Type_name.Set.cardinal nodes in
  let rec go k =
    if k = n_total then List.rev !order
    else
      match choose (candidates ()) with
      | None -> Error.raise_ (Linearization_failure c)
      | Some n ->
          placed := Type_name.Set.add n !placed;
          order := n :: !order;
          go (k + 1)
  in
  go 0

let cpl_result h c = Error.guard (fun () -> cpl h c)

let index_of h c =
  let l = cpl h c in
  fun n ->
    let rec go i = function
      | [] -> None
      | x :: rest -> if Type_name.equal x n then Some i else go (i + 1) rest
    in
    go 0 l
