(** Methods of generic functions.

    A method can be an {e accessor} — a reader that returns the value of
    a particular attribute, or a writer (the paper's "mutator") that
    alters it — or a {e general} method with a body that may invoke
    other generic functions, including accessors.  The only access to
    the attributes of a type is through accessor methods (Section 2). *)

type kind =
  | Reader of Attr_name.t
  | Writer of Attr_name.t
  | General of Body.t

type t

(** Stable identity of a method: generic-function name plus a method id
    unique within that generic function (the paper's subscripts, e.g.
    [u1], [v2]). *)
module Key : sig
  type t

  val make : string -> string -> t
  val gf : t -> string
  val id : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : t Fmt.t

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
end

val make : gf:string -> id:string -> signature:Signature.t -> kind -> t
val gf : t -> string
val id : t -> string
val key : t -> Key.t
val signature : t -> Signature.t
val kind : t -> kind
val arity : t -> int
val is_accessor : t -> bool

(** The attribute an accessor reads or writes. *)
val accessed_attr : t -> Attr_name.t option

val body : t -> Body.t option
val with_signature : t -> Signature.t -> t
val with_kind : t -> kind -> t

(** Convenience constructor for a unary reader accessor. *)
val reader :
  gf:string ->
  id:string ->
  param:string ->
  param_type:Type_name.t ->
  attr:Attr_name.t ->
  result:Value_type.t ->
  t

(** Convenience constructor for a unary writer accessor. *)
val writer :
  gf:string -> id:string -> param:string -> param_type:Type_name.t -> attr:Attr_name.t -> t

val pp : t Fmt.t
