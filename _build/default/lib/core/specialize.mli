(** Specializations for restricted type systems (paper, Section 7).

    The general algorithms handle multiple inheritance and
    multi-methods.  Under {e single inheritance} the supertype closure
    of a projection source is a chain, and state factorization becomes
    a single upward walk with no memoization and no precedence
    bookkeeping.  {!factor_chain_exn} implements that walk; a
    differential property test verifies it agrees with
    {!Factor_state.run_exn} on every single-inheritance schema. *)

(** No type has more than one direct supertype. *)
val is_single_inheritance : Hierarchy.t -> bool

(** Every generic function selects on a single argument. *)
val is_single_dispatch : Schema.t -> bool

(** Chain factorization: equivalent to {!Factor_state.run_exn}
    (including surrogate naming) on single-inheritance hierarchies.

    @raise Error.E [Invariant_violation] on a multiple-inheritance
    hierarchy, plus the usual projection errors. *)
val factor_chain_exn :
  Hierarchy.t ->
  view:string ->
  ?derived_name:Type_name.t ->
  source:Type_name.t ->
  projection:Attr_name.t list ->
  unit ->
  Factor_state.outcome

val factor_chain :
  Hierarchy.t ->
  view:string ->
  ?derived_name:Type_name.t ->
  source:Type_name.t ->
  projection:Attr_name.t list ->
  unit ->
  (Factor_state.outcome, Error.t) result
