(** Generic functions.

    A generic function corresponds to a set of methods; the methods
    define its type-specific behavior (Section 2).  All methods of one
    generic function share its arity, and — a simplification over the
    paper, which ignores return values except in Section 6.3 — its
    declared result type. *)

type t

val declare : ?result:Value_type.t -> arity:int -> string -> t
val name : t -> string
val arity : t -> int
val result : t -> Value_type.t option

(** Methods in definition order. *)
val methods : t -> Method_def.t list

val find_method : t -> string -> Method_def.t option

(** @raise Error.E on arity mismatch or duplicate method id.
    @raise Invalid_argument if the method names a different gf. *)
val add_method : t -> Method_def.t -> t

(** @raise Error.E if no method has this id. *)
val update_method : t -> string -> (Method_def.t -> Method_def.t) -> t

val remove_method : t -> string -> t
val pp : t Fmt.t
