type rewrite = {
  key : Method_def.Key.t;
  old_signature : Signature.t;
  new_signature : Signature.t;
  retyped_locals : (string * Type_name.t * Type_name.t) list;
  retyped_result : (Type_name.t * Type_name.t) option;
}

let surrogate_of surrogates ty =
  Type_name.Map.find_opt ty surrogates

(* FactorMethods (Section 6.1) plus the method-body processing of
   Section 6.3: every applicable method has each formal type Tᵢ replaced
   by its surrogate T̂ᵢ when one was created, local variables reached by
   a rebound formal are re-declared at the corresponding surrogate type,
   and the result type is rewritten when a returned value originates in
   a rebound formal. *)
let rewrite_method schema surrogates m =
  ignore schema;
  let signature = Method_def.signature m in
  let rebound =
    List.filter_map
      (fun (x, ty) ->
        if Type_name.Map.mem ty surrogates then Some x else None)
      (Signature.params signature)
    |> Dataflow.SS.of_list
  in
  if Dataflow.SS.is_empty rebound then None
  else
    let new_signature =
      Signature.map_param_types
        (fun ty ->
          match surrogate_of surrogates ty with Some s -> s | None -> ty)
        signature
    in
    let types_with_surrogates =
      Type_name.Map.fold
        (fun src _ acc -> Type_name.Set.add src acc)
        surrogates Type_name.Set.empty
    in
    let retypable =
      Dataflow.retypable_locals m ~rebound ~types:types_with_surrogates
    in
    let retyped_locals =
      List.filter_map
        (fun (x, n) ->
          match surrogate_of surrogates n with
          | Some s -> Some (x, n, s)
          | None -> None)
        retypable
    in
    let retyped_result =
      match Option.bind (Signature.result signature) Value_type.as_named with
      | Some rt when Dataflow.returns_rebound m ~rebound -> (
          match surrogate_of surrogates rt with
          | Some s -> Some (rt, s)
          | None -> None)
      | Some _ | None -> None
    in
    let new_signature =
      match retyped_result with
      | Some (_, s) -> { new_signature with result = Some (Value_type.Named s) }
      | None -> new_signature
    in
    let new_kind =
      match Method_def.kind m with
      | (Reader _ | Writer _) as k -> k
      | General body ->
          let lookup x =
            List.find_map
              (fun (y, _, s) -> if String.equal x y then Some s else None)
              retyped_locals
          in
          General
            (Body.map_local_types
               (fun x ty ->
                 match lookup x with
                 | Some s -> Value_type.Named s
                 | None -> ty)
               body)
    in
    let m' = Method_def.with_signature m new_signature in
    let m' = Method_def.with_kind m' new_kind in
    Some
      ( m',
        { key = Method_def.key m;
          old_signature = signature;
          new_signature;
          retyped_locals;
          retyped_result
        } )

let run_exn schema ~surrogates ~applicable =
  Method_def.Key.Set.fold
    (fun key (schema, rewrites) ->
      match Schema.find_method_opt schema key with
      | None -> (schema, rewrites)
      | Some m -> (
          match rewrite_method schema surrogates m with
          | None -> (schema, rewrites)
          | Some (m', rw) ->
              (Schema.update_method schema key (fun _ -> m'), rw :: rewrites)))
    applicable (schema, [])
  |> fun (schema, rewrites) -> (schema, List.rev rewrites)

let run schema ~surrogates ~applicable =
  Error.guard (fun () -> run_exn schema ~surrogates ~applicable)

let pp_rewrite ppf rw =
  Fmt.pf ppf "%a: %a -> %a" Method_def.Key.pp rw.key Signature.pp_types
    rw.old_signature Signature.pp_types rw.new_signature
