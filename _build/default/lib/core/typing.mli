(** Static typing of method bodies.

    Supplies the expression types the applicability analysis needs at
    each generic-function call site, and the well-typedness checks that
    Section 6.3 requires the body re-typing to preserve. *)

module SMap : Map.S with type key = string

type env = Value_type.t SMap.t

(** Environment of a method: its formals (as object types) plus its
    declared locals. *)
val env_of_method : Method_def.t -> env

val lookup_var : env -> string -> Value_type.t
val type_of_expr : Schema.t -> env -> Body.expr -> Value_type.t

(** Object types of a call's arguments.
    @raise Error.E [Non_object_argument] for a primitive or untypeable
    argument. *)
val arg_type_names :
  Schema.t -> env -> gf:string -> Body.expr list -> Type_name.t list

(** [compatible h ~from_ ~to_]: can a value of type [from_] be assigned
    to a slot of type [to_]?  Object types use [⪯]; primitives must be
    equal; [Unknown] is permissive. *)
val compatible : Hierarchy.t -> from_:Value_type.t -> to_:Value_type.t -> bool

(** Full body check for one method: variables bound, generic functions
    exist with matching arity, call arguments are objects, assignments
    and returns well-typed.  @raise Error.E on the first violation. *)
val check_method : Schema.t -> Method_def.t -> unit

val check_all_methods : Schema.t -> unit

(** Structural schema validation plus all method-body checks. *)
val check_all : Schema.t -> (unit, Error.t) result
