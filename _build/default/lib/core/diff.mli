(** Structured differences between two schemas.

    Used to inspect what a projection did to a hierarchy: which
    surrogates appeared, which attributes moved, which edges and method
    signatures changed.  Powers the CLI's reporting and several
    tests. *)

type change =
  | Type_added of Type_name.t
  | Type_removed of Type_name.t
  | Attr_moved of { attr : Attr_name.t; from_ : Type_name.t; to_ : Type_name.t }
  | Attr_added of { ty : Type_name.t; attr : Attr_name.t }
  | Attr_removed of { ty : Type_name.t; attr : Attr_name.t }
  | Super_added of { sub : Type_name.t; super : Type_name.t; prec : int }
  | Super_removed of { sub : Type_name.t; super : Type_name.t }
  | Signature_changed of {
      key : Method_def.Key.t;
      before : Signature.t;
      after : Signature.t;
    }

val pp_change : change Fmt.t

(** Changes between two hierarchies: type additions/removals first,
    then attribute moves, then edge changes of common types. *)
val hierarchy_changes : Hierarchy.t -> Hierarchy.t -> change list

(** [hierarchy_changes] plus signature changes of common methods. *)
val schema_changes : Schema.t -> Schema.t -> change list

val pp : change list Fmt.t
