(** Hierarchy augmentation for method-body re-typing (Section 6.4).

    Rewriting method signatures in terms of surrogate types can make a
    method body ill-typed: an assignment [g := c] where [c]'s type was
    converted to [Ĉ] requires the declared type [G] of [g] to gain a
    surrogate [Ĝ] with [Ĉ ⪯ Ĝ].  This module computes the paper's sets

    - Y: types transitively assigned a value of a surrogate-converted
      type, by def-use analysis over the applicable methods;
    - Z = Y − X, where X is the set of types already factored;

    and runs Augment to create empty surrogates for the types in Z,
    mirroring the original subtype paths on the surrogate side. *)

val compute_y :
  Schema.t ->
  applicable:Method_def.Key.Set.t ->
  factored:Type_name.t Type_name.Map.t ->
  Type_name.Set.t

val compute_z :
  Schema.t ->
  applicable:Method_def.Key.Set.t ->
  factored:Type_name.t Type_name.Map.t ->
  Type_name.Set.t

type outcome = {
  hierarchy : Hierarchy.t;
  surrogates : Type_name.t Type_name.Map.t;
      (** input surrogates extended with those created for Z *)
  z : Type_name.Set.t;  (** the computed set Z, for reporting *)
}

(** [run_exn h ~view ~source ~surrogates ~z] runs Augment from the
    source type for the given set.  [surrogates] is the surrogate map
    built so far; {!Projection} iterates this to a fixpoint over
    Y ∪ missing-formal-types (see DESIGN.md) while reporting the
    paper's Z = Y − X. *)
val run_exn :
  Hierarchy.t ->
  view:string ->
  source:Type_name.t ->
  surrogates:Type_name.t Type_name.Map.t ->
  z:Type_name.Set.t ->
  outcome

val run :
  Hierarchy.t ->
  view:string ->
  source:Type_name.t ->
  surrogates:Type_name.t Type_name.Map.t ->
  z:Type_name.Set.t ->
  (outcome, Error.t) result
