type t = { h : Hierarchy.t; ancestors : (Type_name.t, Type_name.Set.t) Hashtbl.t }

let create h = { h; ancestors = Hashtbl.create 64 }

let ancestors_or_self t n =
  match Hashtbl.find_opt t.ancestors n with
  | Some s -> s
  | None ->
      let s = Hierarchy.ancestors_or_self t.h n in
      Hashtbl.replace t.ancestors n s;
      s

let subtype t a b = Type_name.Set.mem b (ancestors_or_self t a)
let hierarchy t = t.h
