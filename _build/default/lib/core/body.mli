(** Abstract syntax of method bodies.

    The paper treats method bodies abstractly: what matters is the set
    of generic-function calls they contain, which accessor methods they
    bottom out on, and (for Sections 6.3–6.4) the assignments and
    variable bindings through which parameter values flow.  This small
    statement language captures exactly that: variables, literals,
    generic-function calls, builtin (always-applicable) operations such
    as arithmetic, assignment, conditionals, loops and returns. *)

type literal =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Null

type expr =
  | Var of string
  | Lit of literal
  | Call of { gf : string; args : expr list }
      (** a generic-function call, subject to applicability analysis *)
  | Builtin of { op : string; args : expr list }
      (** primitive operation; never affects applicability *)

type stmt =
  | Local of { var : string; ty : Value_type.t; init : expr option }
  | Assign of string * expr
  | Expr of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option

type t = stmt list

(** {1 Constructors} *)

val var : string -> expr
val int : int -> expr
val str : string -> expr
val bool : bool -> expr
val null : expr
val call : string -> expr list -> expr
val builtin : string -> expr list -> expr
val local : ?init:expr -> string -> Value_type.t -> stmt
val assign : string -> expr -> stmt
val expr : expr -> stmt
val return_ : expr -> stmt
val return_unit : stmt
val if_ : expr -> stmt list -> stmt list -> stmt
val while_ : expr -> stmt list -> stmt

(** {1 Traversals} *)

val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a
val fold_stmts : ('a -> expr -> 'a) -> 'a -> t -> 'a

(** All generic-function call sites, with argument expressions, in
    syntactic order. *)
val call_sites : t -> (string * expr list) list

(** Rewrite the declared types of local variables, given the variable
    name (used when method bodies are re-typed in terms of surrogate
    types, Section 6.3). *)
val map_local_types : (string -> Value_type.t -> Value_type.t) -> t -> t

(** Declared locals with types, in declaration order. *)
val locals : t -> (string * Value_type.t) list

val pp_literal : literal Fmt.t
val pp_expr : expr Fmt.t
val pp_stmt : stmt Fmt.t
val pp : t Fmt.t
