type kind =
  | Reader of Attr_name.t
  | Writer of Attr_name.t
  | General of Body.t

type t = { gf : string; id : string; signature : Signature.t; kind : kind }

module Key = struct
  type t = { gf : string; id : string }

  let make gf id = { gf; id }
  let gf k = k.gf
  let id k = k.id
  let equal a b = String.equal a.gf b.gf && String.equal a.id b.id

  let compare a b =
    match String.compare a.gf b.gf with 0 -> String.compare a.id b.id | c -> c

  let pp ppf k = Fmt.pf ppf "%s" k.id

  module Set = Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)

  module Map = Map.Make (struct
    type nonrec t = t

    let compare = compare
  end)
end

let make ~gf ~id ~signature kind = { gf; id; signature; kind }
let gf t = t.gf
let id t = t.id
let key t = Key.make t.gf t.id
let signature t = t.signature
let kind t = t.kind
let arity t = Signature.arity t.signature

let is_accessor t =
  match t.kind with Reader _ | Writer _ -> true | General _ -> false

let accessed_attr t =
  match t.kind with Reader a | Writer a -> Some a | General _ -> None

let body t = match t.kind with General b -> Some b | Reader _ | Writer _ -> None
let with_signature t signature = { t with signature }
let with_kind t kind = { t with kind }

let reader ~gf ~id ~param ~param_type ~attr ~result =
  make ~gf ~id
    ~signature:(Signature.make ~result [ (param, param_type) ])
    (Reader attr)

let writer ~gf ~id ~param ~param_type ~attr =
  make ~gf ~id ~signature:(Signature.make [ (param, param_type) ]) (Writer attr)

let pp ppf t =
  match t.kind with
  | Reader a ->
      Fmt.pf ppf "reader %s%a -> %a" t.id Signature.pp_types t.signature
        Attr_name.pp a
  | Writer a ->
      Fmt.pf ppf "writer %s%a <- %a" t.id Signature.pp_types t.signature
        Attr_name.pp a
  | General b ->
      Fmt.pf ppf "@[<v 2>method %s%a {@ %a@]@ }" t.id Signature.pp t.signature
        Body.pp b
