type t = {
  name : string;
  arity : int;
  result : Value_type.t option;
  methods : Method_def.t list;
}

let declare ?result ~arity name = { name; arity; result; methods = [] }
let name t = t.name
let arity t = t.arity
let result t = t.result
let methods t = t.methods

let find_method t id =
  List.find_opt (fun m -> String.equal (Method_def.id m) id) t.methods

let add_method t m =
  if not (String.equal (Method_def.gf m) t.name) then
    invalid_arg "Generic_function.add_method: method belongs to another gf";
  if Method_def.arity m <> t.arity then
    Error.raise_
      (Arity_mismatch { gf = t.name; expected = t.arity; got = Method_def.arity m });
  if find_method t (Method_def.id m) <> None then
    Error.raise_ (Duplicate_method { gf = t.name; id = Method_def.id m });
  { t with methods = t.methods @ [ m ] }

let update_method t id f =
  match find_method t id with
  | None -> Error.raise_ (Duplicate_method { gf = t.name; id })
  | Some _ ->
      { t with
        methods =
          List.map
            (fun m -> if String.equal (Method_def.id m) id then f m else m)
            t.methods
      }

let remove_method t id =
  { t with
    methods = List.filter (fun m -> not (String.equal (Method_def.id m) id)) t.methods
  }

let pp ppf t =
  Fmt.pf ppf "@[<v 2>generic %s/%d%a:@ %a@]" t.name t.arity
    Fmt.(option (fun ppf -> Fmt.pf ppf " : %a" Value_type.pp))
    t.result
    Fmt.(list ~sep:(any "@ ") Method_def.pp)
    t.methods
