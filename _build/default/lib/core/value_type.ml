type prim = Int | Float | String | Bool | Date

type t =
  | Prim of prim
  | Named of Type_name.t
  | Unknown

let int = Prim Int
let float = Prim Float
let string = Prim String
let bool = Prim Bool
let date = Prim Date
let named n = Named n

let equal a b =
  match (a, b) with
  | Prim p, Prim q -> p = q
  | Named m, Named n -> Type_name.equal m n
  | Unknown, Unknown -> true
  | (Prim _ | Named _ | Unknown), _ -> false

let prim_to_string = function
  | Int -> "int"
  | Float -> "float"
  | String -> "string"
  | Bool -> "bool"
  | Date -> "date"

let pp ppf = function
  | Prim p -> Fmt.string ppf (prim_to_string p)
  | Named n -> Type_name.pp ppf n
  | Unknown -> Fmt.string ppf "?"

let as_named = function Named n -> Some n | Prim _ | Unknown -> None
