(** A named, typed attribute.

    The state of a type consists of a set of named attributes, each
    associated with a type (paper, Section 2). *)

type t = { name : Attr_name.t; ty : Value_type.t }

val make : Attr_name.t -> Value_type.t -> t
val name : t -> Attr_name.t
val ty : t -> Value_type.t
val equal : t -> t -> bool

(** [compare] orders attributes by name only; names are globally unique
    in a validated schema. *)
val compare : t -> t -> int

val pp : t Fmt.t
