(* Graphviz export of type hierarchies, in the paper's drawing
   convention: arrows point from subtype to supertype, edges are
   labelled with precedence, surrogates are drawn dashed. *)

let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_line h def =
  let n = Type_def.name def in
  let attrs = Type_def.attrs def in
  let label =
    if attrs = [] then Type_name.to_string n
    else
      Fmt.str "%s|%s" (Type_name.to_string n)
        (String.concat "\\n"
           (List.map (fun a -> Attr_name.to_string (Attribute.name a)) attrs))
  in
  let style =
    if Type_def.is_surrogate def then ", style=dashed, color=blue" else ""
  in
  ignore h;
  Fmt.str "  \"%s\" [shape=record, label=\"{%s}\"%s];"
    (escape (Type_name.to_string n))
    (escape label) style

let edge_lines def =
  List.map
    (fun (s, p) ->
      Fmt.str "  \"%s\" -> \"%s\" [label=\"%d\"];"
        (escape (Type_name.to_string (Type_def.name def)))
        (escape (Type_name.to_string s))
        p)
    (Type_def.supers def)

let of_hierarchy ?(name = "hierarchy") h =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Fmt.str "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=BT;\n";
  List.iter
    (fun def ->
      Buffer.add_string buf (node_line h def);
      Buffer.add_char buf '\n')
    (Hierarchy.types h);
  List.iter
    (fun def ->
      List.iter
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        (edge_lines def))
    (Hierarchy.types h);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
