type t = string

let of_string s =
  if String.length s = 0 then invalid_arg "Type_name.of_string: empty name";
  s

let to_string t = t
let equal = String.equal
let compare = String.compare
let pp = Fmt.string

module Set = Set.Make (String)
module Map = Map.Make (String)
