type literal =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Null

type expr =
  | Var of string
  | Lit of literal
  | Call of { gf : string; args : expr list }
  | Builtin of { op : string; args : expr list }

type stmt =
  | Local of { var : string; ty : Value_type.t; init : expr option }
  | Assign of string * expr
  | Expr of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option

type t = stmt list

let var v = Var v
let int i = Lit (Int i)
let str s = Lit (String s)
let bool b = Lit (Bool b)
let null = Lit Null
let call gf args = Call { gf; args }
let builtin op args = Builtin { op; args }
let local ?init var ty = Local { var; ty; init }
let assign v e = Assign (v, e)
let expr e = Expr e
let return_ e = Return (Some e)
let return_unit = Return None
let if_ c t e = If (c, t, e)
let while_ c b = While (c, b)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Var _ | Lit _ -> acc
  | Call { args; _ } | Builtin { args; _ } -> List.fold_left (fold_expr f) acc args

let rec fold_stmts f_expr acc stmts =
  List.fold_left (fold_stmt f_expr) acc stmts

and fold_stmt f_expr acc = function
  | Local { init = Some e; _ } | Assign (_, e) | Expr e | Return (Some e) ->
      fold_expr f_expr acc e
  | Local { init = None; _ } | Return None -> acc
  | If (c, t, e) ->
      let acc = fold_expr f_expr acc c in
      let acc = fold_stmts f_expr acc t in
      fold_stmts f_expr acc e
  | While (c, b) ->
      let acc = fold_expr f_expr acc c in
      fold_stmts f_expr acc b

(* All generic-function call sites in a body, outermost first. *)
let call_sites body =
  fold_stmts
    (fun acc e -> match e with Call { gf; args } -> (gf, args) :: acc | _ -> acc)
    [] body
  |> List.rev

let rec map_stmt f_ty s =
  match s with
  | Local { var; ty; init } -> Local { var; ty = f_ty var ty; init }
  | Assign _ | Expr _ | Return _ -> s
  | If (c, t, e) -> If (c, List.map (map_stmt f_ty) t, List.map (map_stmt f_ty) e)
  | While (c, b) -> While (c, List.map (map_stmt f_ty) b)

let map_local_types f_ty body = List.map (map_stmt f_ty) body

let rec locals_of_stmts acc = function
  | [] -> acc
  | Local { var; ty; _ } :: rest -> locals_of_stmts ((var, ty) :: acc) rest
  | (Assign _ | Expr _ | Return _) :: rest -> locals_of_stmts acc rest
  | If (_, t, e) :: rest ->
      let acc = locals_of_stmts acc t in
      let acc = locals_of_stmts acc e in
      locals_of_stmts acc rest
  | While (_, b) :: rest -> locals_of_stmts (locals_of_stmts acc b) rest

(* Declared local variables with their types, in declaration order. *)
let locals body = List.rev (locals_of_stmts [] body)

let pp_literal ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | String s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Null -> Fmt.string ppf "null"

let rec pp_expr ppf = function
  | Var v -> Fmt.string ppf v
  | Lit l -> pp_literal ppf l
  | Call { gf; args } ->
      Fmt.pf ppf "%s(%a)" gf Fmt.(list ~sep:comma pp_expr) args
  | Builtin { op; args } -> (
      match args with
      | [ a; b ] -> Fmt.pf ppf "(%a %s %a)" pp_expr a op pp_expr b
      | _ -> Fmt.pf ppf "%s(%a)" op Fmt.(list ~sep:comma pp_expr) args)

let rec pp_stmt ppf = function
  | Local { var; ty; init = None } ->
      Fmt.pf ppf "var %s : %a;" var Value_type.pp ty
  | Local { var; ty; init = Some e } ->
      Fmt.pf ppf "var %s : %a := %a;" var Value_type.pp ty pp_expr e
  | Assign (v, e) -> Fmt.pf ppf "%s := %a;" v pp_expr e
  | Expr e -> Fmt.pf ppf "%a;" pp_expr e
  | Return None -> Fmt.string ppf "return;"
  | Return (Some e) -> Fmt.pf ppf "return %a;" pp_expr e
  | If (c, t, []) ->
      Fmt.pf ppf "@[<v 2>if %a {@ %a@]@ }" pp_expr c pp ( t)
  | If (c, t, e) ->
      Fmt.pf ppf "@[<v 2>if %a {@ %a@]@ @[<v 2>} else {@ %a@]@ }" pp_expr c pp t pp e
  | While (c, b) -> Fmt.pf ppf "@[<v 2>while %a {@ %a@]@ }" pp_expr c pp b

and pp ppf stmts = Fmt.(list ~sep:(any "@ ") pp_stmt) ppf stmts
