(** Types of attributes, method parameters, results, and local variables.

    A value type is either a primitive (paper examples use integers,
    strings and dates for attributes such as [SSN] or [date_of_birth]) or
    a reference to an object type of the hierarchy.  [Unknown] is used by
    the data-flow analysis for expressions whose static type cannot be
    determined; it never appears in a validated schema. *)

type prim = Int | Float | String | Bool | Date

type t =
  | Prim of prim
  | Named of Type_name.t
  | Unknown

val int : t
val float : t
val string : t
val bool : t
val date : t
val named : Type_name.t -> t

val equal : t -> t -> bool
val prim_to_string : prim -> string
val pp : t Fmt.t

(** [as_named t] is the object type named by [t], if any. *)
val as_named : t -> Type_name.t option
