(** Names of object types.

    Type names identify nodes of the type hierarchy. They are totally
    ordered so that they can be used as keys of sets and maps, and all
    algorithm outputs that iterate over name collections are
    deterministic. *)

type t

(** [of_string s] makes a type name from [s].

    @raise Invalid_argument if [s] is empty. *)
val of_string : string -> t

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
