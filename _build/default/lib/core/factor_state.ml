type outcome = {
  hierarchy : Hierarchy.t;
  derived : Type_name.t;
  surrogates : Type_name.t Type_name.Map.t;
}

type st = {
  mutable h : Hierarchy.t;
  mutable surrogates : Type_name.t Type_name.Map.t;
  view : string;
  available : (Type_name.t, Attr_name.Set.t) Hashtbl.t;
      (* cumulative state per type, precomputed on the original
         hierarchy: moving attributes into surrogates never changes any
         type's cumulative state (the transparency invariant), so the
         availability test stays valid throughout the recursion and
         need not be recomputed against the mutating hierarchy. *)
}

let available_at st t attrs =
  let set =
    match Hashtbl.find_opt st.available t with
    | Some s -> s
    | None ->
        let s = Attr_name.Set.of_list (Hierarchy.all_attribute_names st.h t) in
        Hashtbl.replace st.available t s;
        s
  in
  List.filter (fun a -> Attr_name.Set.mem a set) attrs

(* The surrogate must become the supertype of highest precedence of its
   source (Section 5): one less than the current minimum, which is 0
   for schemas using the paper's 1-based precedences. *)
let surrogate_precedence_of_def def =
  match Type_def.min_super_precedence def with
  | None -> 0
  | Some p -> Stdlib.min 0 (p - 1)

let create_surrogate st ?name t =
  let def = Hierarchy.find st.h t in
  let t_hat =
    match name with Some n -> n | None -> Hierarchy.fresh_name st.h t
  in
  let surrogate =
    Type_def.make ~origin:(Surrogate { source = t; view = st.view }) t_hat
  in
  st.h <- Hierarchy.add st.h surrogate;
  st.h <-
    Hierarchy.add_super st.h ~sub:t ~super:t_hat
      ~prec:(surrogate_precedence_of_def def);
  st.surrogates <- Type_name.Map.add t t_hat st.surrogates;
  t_hat

(* FactorState(A, T, ĥ, P) of Section 5.1.  [attrs] is that part of the
   projection list that is available at [t]; [parent] is the surrogate
   of the subtype we came from, to be linked under the surrogate of [t]
   with precedence [prec]. *)
let rec factor st ?name attrs t parent prec =
  match Type_name.Map.find_opt t st.surrogates with
  | Some t_hat -> (
      match parent with
      | Some p -> st.h <- Hierarchy.add_super st.h ~sub:p ~super:t_hat ~prec
      | None -> ())
  | None ->
      let supers = Hierarchy.direct_supers st.h t in
      let t_hat = create_surrogate st ?name t in
      (match parent with
      | Some p -> st.h <- Hierarchy.add_super st.h ~sub:p ~super:t_hat ~prec
      | None -> ());
      List.iter
        (fun a ->
          if Type_def.has_local_attr (Hierarchy.find st.h t) a then
            st.h <- Hierarchy.move_attr st.h ~attr:a ~from_:t ~to_:t_hat)
        attrs;
      List.iter
        (fun (s, p) ->
          let available = available_at st s attrs in
          if available <> [] then factor st available s (Some t_hat) p)
        supers

let run_exn hierarchy ~view ?derived_name ~source ~projection () =
  if projection = [] then Error.raise_ Empty_projection;
  List.iter
    (fun a ->
      if not (Hierarchy.has_attribute hierarchy source a) then
        Error.raise_ (Attribute_not_available { ty = source; attr = a }))
    projection;
  (match derived_name with
  | Some n when Hierarchy.mem hierarchy n -> Error.raise_ (Duplicate_type n)
  | Some _ | None -> ());
  let st =
    { h = hierarchy;
      surrogates = Type_name.Map.empty;
      view;
      available = Hashtbl.create 32
    }
  in
  factor st ?name:derived_name projection source None 0;
  let derived = Type_name.Map.find source st.surrogates in
  { hierarchy = st.h; derived; surrogates = st.surrogates }

let run hierarchy ~view ?derived_name ~source ~projection () =
  Error.guard (fun () ->
      run_exn hierarchy ~view ?derived_name ~source ~projection ())
