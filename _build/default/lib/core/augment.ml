type st = {
  mutable h : Hierarchy.t;
  mutable surrogates : Type_name.t Type_name.Map.t;
  view : string;
}

(* Set Y of Section 6.4: the object types transitively assigned a value
   whose declared type was converted to a surrogate type, collected over
   all applicable methods by def-use analysis. *)
let compute_y schema ~applicable ~factored =
  List.fold_left
    (fun acc key ->
      match Schema.find_method_opt schema key with
      | None -> acc
      | Some m ->
          let rebound =
            List.filter_map
              (fun (x, ty) ->
                if Type_name.Map.mem ty factored then Some x else None)
              (Signature.params (Method_def.signature m))
            |> Dataflow.SS.of_list
          in
          if Dataflow.SS.is_empty rebound then acc
          else Type_name.Set.union acc (Dataflow.assigned_types m ~rebound))
    Type_name.Set.empty
    (Method_def.Key.Set.elements applicable)

let compute_z schema ~applicable ~factored =
  let x =
    Type_name.Map.fold
      (fun src _ acc -> Type_name.Set.add src acc)
      factored Type_name.Set.empty
  in
  Type_name.Set.diff (compute_y schema ~applicable ~factored) x

let ensure_surrogate st s =
  match Type_name.Map.find_opt s st.surrogates with
  | Some s_hat -> s_hat
  | None ->
      let def = Hierarchy.find st.h s in
      let s_hat = Hierarchy.fresh_name st.h s in
      let surrogate =
        Type_def.make ~origin:(Surrogate { source = s; view = st.view }) s_hat
      in
      st.h <- Hierarchy.add st.h surrogate;
      st.h <-
        Hierarchy.add_super st.h ~sub:s ~super:s_hat
          ~prec:(Factor_state.surrogate_precedence_of_def def);
      st.surrogates <- Type_name.Map.add s s_hat st.surrogates;
      s_hat

(* Augment(T, Z) of Section 6.4.  [t] always has a surrogate when the
   gate below is true: the initial call starts at the source type
   (whose surrogate is the derived type) and every recursive call is
   preceded by [ensure_surrogate]. *)
let rec augment st t z =
  let gate =
    Type_name.Set.exists
      (fun s -> Type_name.Set.exists (Hierarchy.subtype st.h s) z)
      (Hierarchy.ancestors_or_self st.h t)
  in
  if gate then
    let t_hat = Type_name.Map.find_opt t st.surrogates in
    let supers =
      List.filter
        (fun (s, _) ->
          match t_hat with
          | Some th -> not (Type_name.equal s th)
          | None -> true)
        (Hierarchy.direct_supers st.h t)
    in
    List.iter
      (fun (s, p) ->
        let s_hat = ensure_surrogate st s in
        (match t_hat with
        | Some th ->
            if not (Type_def.has_super (Hierarchy.find st.h th) s_hat) then
              st.h <- Hierarchy.add_super st.h ~sub:th ~super:s_hat ~prec:p
        | None -> ());
        augment st s z)
      supers

type outcome = {
  hierarchy : Hierarchy.t;
  surrogates : Type_name.t Type_name.Map.t;
  z : Type_name.Set.t;
}

let run_exn hierarchy ~view ~source ~surrogates ~z =
  let st = { h = hierarchy; surrogates; view } in
  if not (Type_name.Set.is_empty z) then augment st source z;
  { hierarchy = st.h; surrogates = st.surrogates; z }

let run hierarchy ~view ~source ~surrogates ~z =
  Error.guard (fun () -> run_exn hierarchy ~view ~source ~surrogates ~z)
