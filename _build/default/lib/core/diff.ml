type change =
  | Type_added of Type_name.t
  | Type_removed of Type_name.t
  | Attr_moved of { attr : Attr_name.t; from_ : Type_name.t; to_ : Type_name.t }
  | Attr_added of { ty : Type_name.t; attr : Attr_name.t }
  | Attr_removed of { ty : Type_name.t; attr : Attr_name.t }
  | Super_added of { sub : Type_name.t; super : Type_name.t; prec : int }
  | Super_removed of { sub : Type_name.t; super : Type_name.t }
  | Signature_changed of {
      key : Method_def.Key.t;
      before : Signature.t;
      after : Signature.t;
    }

let pp_change ppf = function
  | Type_added n -> Fmt.pf ppf "+ type %a" Type_name.pp n
  | Type_removed n -> Fmt.pf ppf "- type %a" Type_name.pp n
  | Attr_moved { attr; from_; to_ } ->
      Fmt.pf ppf "~ attr %a moved %a -> %a" Attr_name.pp attr Type_name.pp from_
        Type_name.pp to_
  | Attr_added { ty; attr } ->
      Fmt.pf ppf "+ attr %a at %a" Attr_name.pp attr Type_name.pp ty
  | Attr_removed { ty; attr } ->
      Fmt.pf ppf "- attr %a at %a" Attr_name.pp attr Type_name.pp ty
  | Super_added { sub; super; prec } ->
      Fmt.pf ppf "+ edge %a -> %a@@%d" Type_name.pp sub Type_name.pp super prec
  | Super_removed { sub; super } ->
      Fmt.pf ppf "- edge %a -> %a" Type_name.pp sub Type_name.pp super
  | Signature_changed { key; before; after } ->
      Fmt.pf ppf "~ method %a: %a -> %a" Method_def.Key.pp key Signature.pp_types
        before Signature.pp_types after

(* attribute -> owning type, over local attribute lists *)
let owners h =
  Hierarchy.fold
    (fun def acc ->
      List.fold_left
        (fun acc a -> Attr_name.Map.add (Attribute.name a) (Type_def.name def) acc)
        acc (Type_def.attrs def))
    h Attr_name.Map.empty

let hierarchy_changes before after =
  let changes = ref [] in
  let push c = changes := c :: !changes in
  let names h = Type_name.Set.of_list (Hierarchy.type_names h) in
  let nb = names before and na = names after in
  Type_name.Set.iter
    (fun n -> push (Type_added n))
    (Type_name.Set.diff na nb);
  Type_name.Set.iter
    (fun n -> push (Type_removed n))
    (Type_name.Set.diff nb na);
  (* attribute moves / additions / removals *)
  let ob = owners before and oa = owners after in
  Attr_name.Map.iter
    (fun attr from_ ->
      match Attr_name.Map.find_opt attr oa with
      | Some to_ when not (Type_name.equal from_ to_) ->
          push (Attr_moved { attr; from_; to_ })
      | Some _ -> ()
      | None -> push (Attr_removed { ty = from_; attr }))
    ob;
  Attr_name.Map.iter
    (fun attr to_ ->
      if not (Attr_name.Map.mem attr ob) then push (Attr_added { ty = to_; attr }))
    oa;
  (* supertype edges of common types *)
  Type_name.Set.iter
    (fun n ->
      let sb = Hierarchy.direct_supers before n in
      let sa = Hierarchy.direct_supers after n in
      List.iter
        (fun (s, _) ->
          if not (List.exists (fun (s', _) -> Type_name.equal s s') sa) then
            push (Super_removed { sub = n; super = s }))
        sb;
      List.iter
        (fun (s, prec) ->
          if not (List.exists (fun (s', _) -> Type_name.equal s s') sb) then
            push (Super_added { sub = n; super = s; prec }))
        sa)
    (Type_name.Set.inter nb na);
  List.rev !changes

let schema_changes before after =
  let changes =
    hierarchy_changes (Schema.hierarchy before) (Schema.hierarchy after)
  in
  let sig_changes =
    List.filter_map
      (fun m ->
        let key = Method_def.key m in
        match Schema.find_method_opt after key with
        | Some m' when not (Signature.equal (Method_def.signature m) (Method_def.signature m')) ->
            Some
              (Signature_changed
                 { key;
                   before = Method_def.signature m;
                   after = Method_def.signature m'
                 })
        | Some _ | None -> None)
      (Schema.all_methods before)
  in
  changes @ sig_changes

let pp ppf changes =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@ ") pp_change) changes
