type t = {
  params : (string * Type_name.t) list;
  result : Value_type.t option;
}

let make ?result params = { params; result }
let params t = t.params
let param_types t = List.map snd t.params
let result t = t.result
let arity t = List.length t.params

let param_type t i =
  match List.nth_opt t.params i with
  | Some (_, ty) -> ty
  | None -> invalid_arg "Signature.param_type: index out of bounds"

let equal a b =
  List.equal
    (fun (x, tx) (y, ty) -> String.equal x y && Type_name.equal tx ty)
    a.params b.params
  && Option.equal Value_type.equal a.result b.result

let map_param_types f t =
  { t with params = List.map (fun (x, ty) -> (x, f ty)) t.params }

let pp ppf t =
  let pp_param ppf (x, ty) = Fmt.pf ppf "%s : %a" x Type_name.pp ty in
  Fmt.pf ppf "(%a)%a"
    Fmt.(list ~sep:comma pp_param)
    t.params
    Fmt.(option (fun ppf -> Fmt.pf ppf " : %a" Value_type.pp))
    t.result

let pp_types ppf t =
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma Type_name.pp) (param_types t)
