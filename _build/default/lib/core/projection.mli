(** The end-to-end projection operation [Π_p T] over types.

    This is the paper's full pipeline, in order:

    + {!Applicability.analyze_exn} — infer the methods applicable to
      the derived type (Section 4);
    + {!Factor_state.run_exn} — refactor the hierarchy with surrogate
      types and place the derived type (Section 5);
    + {!Augment.run_exn} — create empty surrogates for the types that
      method-body re-typing requires (Section 6.4), including formal
      types of applicable methods not reached by state factoring;
    + {!Factor_methods.run_exn} — relocate applicable methods onto
      surrogate signatures and re-type their bodies (Sections 6.1–6.3);
    + {!Invariants.check_exn} — verify the paper's preservation claims
      (disable with [~check:false], e.g. inside benchmarks). *)

type outcome = {
  before : Schema.t;  (** the schema as given *)
  schema : Schema.t;  (** the refactored schema including the view type *)
  view : string;
  derived : Type_name.t;
  source : Type_name.t;
  projection : Attr_name.t list;
  analysis : Applicability.result;
  surrogates : Type_name.t Type_name.Map.t;
  z : Type_name.Set.t;  (** the augment set Z that was applied *)
  rewrites : Factor_methods.rewrite list;
}

(** @raise Error.E on invalid schema, unknown source type, empty or
    unavailable projection, name clash, or failed invariant. *)
val project_exn :
  ?check:bool ->
  Schema.t ->
  view:string ->
  ?derived_name:Type_name.t ->
  source:Type_name.t ->
  projection:Attr_name.t list ->
  unit ->
  outcome

val project :
  ?check:bool ->
  Schema.t ->
  view:string ->
  ?derived_name:Type_name.t ->
  source:Type_name.t ->
  projection:Attr_name.t list ->
  unit ->
  (outcome, Error.t) result

val pp_summary : outcome Fmt.t
