(** The paper's correctness conditions, as executable checks.

    Section 1 promises that after a projection "existing types are not
    affected: they must have both the same state and the same behavior
    as before the creation of the derived type", and Section 3 that the
    derived type "has the correct state and behavior".  Each condition
    is a check that raises [Error.E (Invariant_violation _)] with a
    description of the violation.  The property-based test suite runs
    {!check_exn} over randomly generated schemas and projections. *)

(** Every pre-existing type keeps its cumulative attribute set. *)
val check_state_preserved : before:Hierarchy.t -> after:Hierarchy.t -> unit

(** Every pre-existing type keeps its set of applicable methods. *)
val check_behavior_preserved : before:Schema.t -> after:Schema.t -> unit

(** The [⪯] relation restricted to pre-existing types is unchanged. *)
val check_subtyping_preserved : before:Hierarchy.t -> after:Hierarchy.t -> unit

(** The derived type's cumulative state is exactly the projection list. *)
val check_derived_state :
  after:Hierarchy.t -> derived:Type_name.t -> projection:Attr_name.t list -> unit

(** The source type is a subtype of the derived type. *)
val check_derived_above_source :
  after:Hierarchy.t -> derived:Type_name.t -> source:Type_name.t -> unit

(** The derived type inherits exactly the methods the applicability
    analysis found applicable (relative to the analysis candidates). *)
val check_derived_behavior :
  after:Schema.t -> derived:Type_name.t -> analysis:Applicability.result -> unit

(** All of the above plus well-formedness of the refactored hierarchy. *)
val check_exn :
  before:Schema.t ->
  after:Schema.t ->
  derived:Type_name.t ->
  source:Type_name.t ->
  projection:Attr_name.t list ->
  analysis:Applicability.result ->
  unit

val check :
  before:Schema.t ->
  after:Schema.t ->
  derived:Type_name.t ->
  source:Type_name.t ->
  projection:Attr_name.t list ->
  analysis:Applicability.result ->
  (unit, Error.t) result
