lib/core/attr_name.mli: Fmt Map Set
