lib/core/linearize.ml: Error Hierarchy List Type_name
