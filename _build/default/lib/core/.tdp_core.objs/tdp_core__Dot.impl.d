lib/core/dot.ml: Attr_name Attribute Buffer Fmt Hierarchy List String Type_def Type_name
