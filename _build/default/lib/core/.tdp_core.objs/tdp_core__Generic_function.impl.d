lib/core/generic_function.ml: Error Fmt List Method_def String Value_type
