lib/core/linearize.mli: Error Hierarchy Type_name
