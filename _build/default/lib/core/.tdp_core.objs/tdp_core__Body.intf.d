lib/core/body.mli: Fmt Value_type
