lib/core/diff.mli: Attr_name Fmt Hierarchy Method_def Schema Signature Type_name
