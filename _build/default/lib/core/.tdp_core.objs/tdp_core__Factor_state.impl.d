lib/core/factor_state.ml: Attr_name Error Hashtbl Hierarchy List Stdlib Type_def Type_name
