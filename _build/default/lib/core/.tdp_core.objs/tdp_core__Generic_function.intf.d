lib/core/generic_function.mli: Fmt Method_def Value_type
