lib/core/attribute.ml: Attr_name Fmt Value_type
