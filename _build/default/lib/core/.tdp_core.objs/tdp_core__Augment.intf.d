lib/core/augment.mli: Error Hierarchy Method_def Schema Type_name
