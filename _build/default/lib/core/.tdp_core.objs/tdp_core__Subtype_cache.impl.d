lib/core/subtype_cache.ml: Hashtbl Hierarchy Type_name
