lib/core/attribute.mli: Attr_name Fmt Value_type
