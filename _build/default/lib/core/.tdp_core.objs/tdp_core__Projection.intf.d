lib/core/projection.mli: Applicability Attr_name Error Factor_methods Fmt Schema Type_name
