lib/core/projection.ml: Applicability Attr_name Augment Error Factor_methods Factor_state Fmt Invariants List Method_def Schema Signature Subtype_cache Type_name Typing
