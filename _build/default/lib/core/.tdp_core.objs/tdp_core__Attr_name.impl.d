lib/core/attr_name.ml: Fmt Map Set String
