lib/core/type_def.ml: Attr_name Attribute Error Fmt Int List Type_name
