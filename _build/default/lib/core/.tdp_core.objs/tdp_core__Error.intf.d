lib/core/error.mli: Attr_name Fmt Type_name
