lib/core/typing.ml: Body Error Fmt Generic_function Hierarchy List Map Method_def Option Schema Signature String Value_type
