lib/core/specialize.mli: Attr_name Error Factor_state Hierarchy Schema Type_name
