lib/core/invariants.mli: Applicability Attr_name Error Hierarchy Schema Type_name
