lib/core/signature.mli: Fmt Type_name Value_type
