lib/core/value_type.ml: Fmt Type_name
