lib/core/hierarchy.ml: Attr_name Attribute Error Fmt Hashtbl List Option Type_def Type_name
