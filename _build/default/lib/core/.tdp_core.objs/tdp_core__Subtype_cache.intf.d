lib/core/subtype_cache.mli: Hierarchy Type_name
