lib/core/schema.mli: Attr_name Error Fmt Generic_function Hierarchy Method_def Subtype_cache Type_def Type_name
