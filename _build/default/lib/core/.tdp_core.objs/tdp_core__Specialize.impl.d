lib/core/specialize.ml: Error Factor_state Generic_function Hierarchy List Schema Type_def Type_name
