lib/core/typing.mli: Body Error Hierarchy Map Method_def Schema Type_name Value_type
