lib/core/factor_methods.ml: Body Dataflow Error Fmt List Method_def Option Schema Signature String Type_name Value_type
