lib/core/factor_state.mli: Attr_name Error Hierarchy Type_def Type_name
