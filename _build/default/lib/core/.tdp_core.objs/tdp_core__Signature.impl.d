lib/core/signature.ml: Fmt List Option String Type_name Value_type
