lib/core/diff.ml: Attr_name Attribute Fmt Hierarchy List Method_def Schema Signature Type_def Type_name
