lib/core/body.ml: Fmt List Value_type
