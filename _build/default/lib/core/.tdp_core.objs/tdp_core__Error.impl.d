lib/core/error.ml: Attr_name Fmt Type_name
