lib/core/augment.ml: Dataflow Error Factor_state Hierarchy List Method_def Schema Signature Type_def Type_name
