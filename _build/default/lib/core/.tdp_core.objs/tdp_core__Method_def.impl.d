lib/core/method_def.ml: Attr_name Body Fmt Map Set Signature String
