lib/core/applicability.ml: Attr_name Dataflow Error Fmt Hashtbl Hierarchy List Method_def Schema String Subtype_cache Type_name
