lib/core/value_type.mli: Fmt Type_name
