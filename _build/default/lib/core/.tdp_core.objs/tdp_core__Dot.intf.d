lib/core/dot.mli: Hierarchy
