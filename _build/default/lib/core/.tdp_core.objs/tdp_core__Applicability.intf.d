lib/core/applicability.mli: Attr_name Error Fmt Method_def Schema Stdlib Type_name
