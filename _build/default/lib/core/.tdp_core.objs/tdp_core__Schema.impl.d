lib/core/schema.ml: Attr_name Error Fmt Generic_function Hierarchy List Map Method_def Option Signature String Subtype_cache
