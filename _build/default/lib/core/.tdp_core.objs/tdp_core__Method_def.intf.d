lib/core/method_def.mli: Attr_name Body Fmt Map Set Signature Type_name Value_type
