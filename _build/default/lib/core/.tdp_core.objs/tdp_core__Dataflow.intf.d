lib/core/dataflow.mli: Body Map Method_def Schema Set Subtype_cache Type_name
