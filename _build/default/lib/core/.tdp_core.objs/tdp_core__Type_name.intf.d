lib/core/type_name.mli: Fmt Map Set
