lib/core/hierarchy.mli: Attr_name Attribute Error Fmt Type_def Type_name
