lib/core/dataflow.ml: Body List Map Method_def Option Schema Set Signature String Subtype_cache Type_name Typing Value_type
