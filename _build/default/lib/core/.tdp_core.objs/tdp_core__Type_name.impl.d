lib/core/type_name.ml: Fmt Map Set String
