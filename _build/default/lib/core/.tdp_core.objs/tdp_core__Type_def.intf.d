lib/core/type_def.mli: Attr_name Attribute Fmt Type_name
