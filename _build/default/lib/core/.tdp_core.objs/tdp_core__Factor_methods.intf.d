lib/core/factor_methods.mli: Error Fmt Method_def Schema Signature Type_name
