lib/core/invariants.ml: Applicability Attr_name Attribute Error Fmt Hierarchy List Method_def Schema String Subtype_cache Type_def Type_name
