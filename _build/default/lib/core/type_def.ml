type origin =
  | Source
  | Surrogate of { source : Type_name.t; view : string }

type t = {
  name : Type_name.t;
  origin : origin;
  attrs : Attribute.t list;
  supers : (Type_name.t * int) list;
}

let sort_supers supers =
  List.stable_sort (fun (_, p) (_, q) -> Int.compare p q) supers

let make ?(origin = Source) ?(attrs = []) ?(supers = []) name =
  { name; origin; attrs; supers = sort_supers supers }

let name t = t.name
let origin t = t.origin
let attrs t = t.attrs
let supers t = t.supers
let super_names t = List.map fst t.supers

let is_surrogate t =
  match t.origin with Surrogate _ -> true | Source -> false

let surrogate_source t =
  match t.origin with Surrogate { source; _ } -> Some source | Source -> None

let has_local_attr t a =
  List.exists (fun at -> Attr_name.equal (Attribute.name at) a) t.attrs

let find_local_attr t a =
  List.find_opt (fun at -> Attr_name.equal (Attribute.name at) a) t.attrs

let with_attrs t attrs = { t with attrs }

let remove_attr t a =
  { t with
    attrs = List.filter (fun at -> not (Attr_name.equal (Attribute.name at) a)) t.attrs
  }

let add_attr t at = { t with attrs = t.attrs @ [ at ] }

let has_super t s = List.exists (fun (n, _) -> Type_name.equal n s) t.supers

let super_precedence t s =
  List.find_map
    (fun (n, p) -> if Type_name.equal n s then Some p else None)
    t.supers

let with_supers t supers = { t with supers = sort_supers supers }

let add_super t s prec =
  if has_super t s then Error.raise_ (Duplicate_super { sub = t.name; super = s });
  if Type_name.equal t.name s then Error.raise_ (Self_super s);
  { t with supers = sort_supers ((s, prec) :: t.supers) }

let min_super_precedence t =
  match t.supers with [] -> None | (_, p) :: _ -> Some p

let pp ppf t =
  let pp_super ppf (s, p) = Fmt.pf ppf "%a@%d" Type_name.pp s p in
  Fmt.pf ppf "@[<v 2>type %a%s%a {@ %a@]@ }" Type_name.pp t.name
    (match t.origin with
    | Source -> ""
    | Surrogate { source; view } ->
        Fmt.str " (surrogate of %s for view %s)" (Type_name.to_string source) view)
    (fun ppf -> function
      | [] -> ()
      | supers -> Fmt.pf ppf " : %a" Fmt.(list ~sep:comma pp_super) supers)
    t.supers
    Fmt.(list ~sep:(any ";@ ") Attribute.pp)
    t.attrs
