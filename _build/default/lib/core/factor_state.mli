(** State factorization (paper, Section 5).

    The projection [Π_p T] induces a refactorization of the hierarchy:
    every type [Q] through which the derived type would inherit
    projected attributes is split into a {e surrogate} [Q̂] — carrying
    exactly the local attributes of [Q] that are in the projection
    list — and the modified [Q], which becomes a direct subtype of [Q̂]
    with highest precedence so that the [Q̂]–[Q] split is transparent.
    The derived type [T̂] is the surrogate of the source type itself. *)

type outcome = {
  hierarchy : Hierarchy.t;  (** the refactored hierarchy *)
  derived : Type_name.t;  (** the surrogate of the source: the view type *)
  surrogates : Type_name.t Type_name.Map.t;
      (** source type → its surrogate, for every type factored *)
}

(** Precedence for a new surrogate supertype of the given type: one
    less than the current minimum, i.e. highest precedence. *)
val surrogate_precedence_of_def : Type_def.t -> int

(** [run_exn h ~view ~source ~projection ()] applies FactorState.
    [derived_name] names the view type (default: a fresh ["_hat"] name).

    @raise Error.E on empty projection, attribute not available at
    [source], or a taken [derived_name]. *)
val run_exn :
  Hierarchy.t ->
  view:string ->
  ?derived_name:Type_name.t ->
  source:Type_name.t ->
  projection:Attr_name.t list ->
  unit ->
  outcome

val run :
  Hierarchy.t ->
  view:string ->
  ?derived_name:Type_name.t ->
  source:Type_name.t ->
  projection:Attr_name.t list ->
  unit ->
  (outcome, Error.t) result
