(** Memoized subtype tests over a fixed hierarchy.

    [Applicability] and [Dispatch] issue many [⪯] queries against the
    same hierarchy; this cache computes each type's ancestor set once.
    The cache must be discarded when the hierarchy changes. *)

type t

val create : Hierarchy.t -> t
val ancestors_or_self : t -> Type_name.t -> Type_name.Set.t

(** [subtype t a b] is [a ⪯ b]. *)
val subtype : t -> Type_name.t -> Type_name.t -> bool

val hierarchy : t -> Hierarchy.t
