(** Names of attributes.

    Following the paper's model (Section 2), attribute names are assumed
    to be globally unique across the schema; [Schema.validate] enforces
    this.  Uniqueness lets a projection list be a plain set of attribute
    names with no qualification by owning type. *)

type t

(** [of_string s] makes an attribute name from [s].

    @raise Invalid_argument if [s] is empty. *)
val of_string : string -> t

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
