(* Quickstart: build a small schema with the OCaml API, project a view
   type, and inspect the result.

   Run with:  dune exec examples/quickstart.exe *)

open Tdp_core

let ty = Type_name.of_string
let at = Attr_name.of_string

let () =
  (* 1. Define types: Employee ⪯ Person. *)
  let schema =
    Schema.empty
    |> fun s ->
    Schema.add_type s
      (Type_def.make
         ~attrs:
           [ Attribute.make (at "ssn") Value_type.int;
             Attribute.make (at "name") Value_type.string;
             Attribute.make (at "date_of_birth") Value_type.date
           ]
         (ty "Person"))
    |> fun s ->
    Schema.add_type s
      (Type_def.make
         ~attrs:
           [ Attribute.make (at "pay_rate") Value_type.float;
             Attribute.make (at "hrs_worked") Value_type.float
           ]
         ~supers:[ (ty "Person", 1) ]
         (ty "Employee"))
  in
  (* 2. Accessors and two methods. *)
  let schema =
    schema
    |> fun s ->
    Schema.add_method s
      (Method_def.reader ~gf:"get_date_of_birth" ~id:"get_date_of_birth"
         ~param:"self" ~param_type:(ty "Person") ~attr:(at "date_of_birth")
         ~result:Value_type.date)
    |> fun s ->
    Schema.add_method s
      (Method_def.reader ~gf:"get_pay_rate" ~id:"get_pay_rate" ~param:"self"
         ~param_type:(ty "Employee") ~attr:(at "pay_rate") ~result:Value_type.float)
    |> fun s ->
    Schema.add_method s
      (Method_def.reader ~gf:"get_hrs_worked" ~id:"get_hrs_worked" ~param:"self"
         ~param_type:(ty "Employee") ~attr:(at "hrs_worked")
         ~result:Value_type.float)
    |> fun s ->
    Schema.add_method s
      (Method_def.make ~gf:"age" ~id:"age"
         ~signature:(Signature.make ~result:Value_type.int [ ("p", ty "Person") ])
         (General
            [ Body.return_
                (Body.builtin "years_since"
                   [ Body.call "get_date_of_birth" [ Body.var "p" ] ])
            ]))
    |> fun s ->
    Schema.add_method s
      (Method_def.make ~gf:"income" ~id:"income"
         ~signature:(Signature.make ~result:Value_type.float [ ("e", ty "Employee") ])
         (General
            [ Body.return_
                (Body.builtin "*"
                   [ Body.call "get_pay_rate" [ Body.var "e" ];
                     Body.call "get_hrs_worked" [ Body.var "e" ]
                   ])
            ]))
  in
  (* 3. Derive a view type: Π_{ssn, date_of_birth, pay_rate} Employee. *)
  let o =
    Projection.project_exn schema ~view:"employee_card"
      ~derived_name:(ty "EmployeeCard") ~source:(ty "Employee")
      ~projection:[ at "ssn"; at "date_of_birth"; at "pay_rate" ]
      ()
  in
  Fmt.pr "== projection summary ==@.%a@.@." Projection.pp_summary o;
  (* 4. Which methods survive?  age reads only date_of_birth: yes.
        income needs hrs_worked: no. *)
  Fmt.pr "== applicability ==@.%a@.@." Applicability.pp_result o.analysis;
  (* 5. The refactored hierarchy, and proof that existing types kept
        their state. *)
  Fmt.pr "== refactored hierarchy ==@.%a@.@." Hierarchy.pp (Schema.hierarchy o.schema);
  Invariants.check_exn ~before:schema ~after:o.schema ~derived:o.derived
    ~source:(ty "Employee")
    ~projection:[ at "ssn"; at "date_of_birth"; at "pay_rate" ]
    ~analysis:o.analysis;
  Fmt.pr "all invariants hold: existing types unchanged, view has exactly the \
          projected state.@.@.";
  (* 6. Graphviz output for the curious. *)
  Fmt.pr "== DOT (pipe to `dot -Tpng`) ==@.%s@."
    (Dot.of_hierarchy ~name:"quickstart" (Schema.hierarchy o.schema))
