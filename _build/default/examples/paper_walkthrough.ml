(* Paper walkthrough: replays Sections 4-6 of Agrawal & DeMichiel on
   the Figure 3 schema, narrating each phase of the pipeline — the
   executable companion to reading the paper.

   Run with:  dune exec examples/paper_walkthrough.exe *)

open Tdp_core
module Fig3 = Tdp_paper.Fig3

let () =
  Fmt.pr "The schema of Figure 3 / Example 1:@.@.%a@.@." Schema.pp Fig3.schema;
  Fmt.pr "Projection: A_hat = Π_{a2,e2,h2} A@.@.";

  (* Section 4: method applicability, with the full trace including the
     optimistic treatment of the x1/y1 cycle. *)
  let analysis =
    Applicability.analyze_exn Fig3.schema ~source:Fig3.a ~projection:Fig3.projection
  in
  Fmt.pr "== Section 4: IsApplicable ==@.";
  List.iter (fun e -> Fmt.pr "  %a@." Applicability.pp_event e) analysis.trace;
  Fmt.pr "@.%a@.@." Applicability.pp_result analysis;

  (* Section 5: state factorization. *)
  let fs =
    Factor_state.run_exn (Schema.hierarchy Fig3.schema) ~view:"a_view"
      ~derived_name:(Type_name.of_string "A_hat") ~source:Fig3.a
      ~projection:Fig3.projection ()
  in
  Fmt.pr "== Section 5: FactorState (Figure 4) ==@.%a@.@." Hierarchy.pp fs.hierarchy;

  (* Section 6: method factorization on the full pipeline, using the
     schema extended with z1/z2 so that Z = {D, G} as in Example 4. *)
  let o = Fig3.project ~schema:Fig3.schema_with_z () in
  Fmt.pr "== Section 6.4: Augment with Z = {%s} (Figure 5) ==@."
    (String.concat ", " (List.map Type_name.to_string (Type_name.Set.elements o.z)));
  Fmt.pr "== Section 6.1-6.3: FactorMethods (Example 3) ==@.";
  List.iter (fun rw -> Fmt.pr "  %a@." Factor_methods.pp_rewrite rw) o.rewrites;
  Fmt.pr "@.Final refactored schema:@.@.%a@.@." Schema.pp o.schema;
  Fmt.pr "Every invariant of Sections 1 and 5 was checked by the pipeline.@.done.@."
