(* Payroll: a store-backed scenario.

   A payroll database holds Person and Employee objects.  The HR
   department is given a view that exposes only ssn, date_of_birth and
   pay_rate — no hours, no income.  The example shows:

   - populating the object store and running methods with multi-method
     dispatch;
   - deriving the view type and installing the refactored schema;
   - that every pre-existing call still returns the same value
     (behavior preservation, dynamically);
   - that the view's extent is exactly the employees, with object
     identity preserved;
   - that a native view instance can be created and answers exactly the
     view's methods.

   Run with:  dune exec examples/payroll.exe *)

open Tdp_core
module Database = Tdp_store.Database
module Value = Tdp_store.Value
module Interp = Tdp_store.Interp

let ty = Type_name.of_string
let at = Attr_name.of_string

let () =
  let db = Database.create Tdp_paper.Fig1.schema in
  let employee ssn name dob rate hrs =
    Database.new_object db (ty "Employee")
      ~init:
        [ (at "ssn", Value.Int ssn);
          (at "name", Value.String name);
          (at "date_of_birth", Value.Date dob);
          (at "pay_rate", Value.Float rate);
          (at "hrs_worked", Value.Float hrs)
        ]
  in
  let alice = employee 101 "alice" 1985 55.0 38.0 in
  let bob = employee 102 "bob" 1998 40.0 20.0 in
  let carol =
    Database.new_object db (ty "Person")
      ~init:
        [ (at "ssn", Value.Int 103);
          (at "name", Value.String "carol");
          (at "date_of_birth", Value.Date 1970)
        ]
  in
  let interp = Interp.create ~now:2026 db in
  let show oid =
    Fmt.pr "  %a %-6s age=%a income=%a@." Tdp_store.Oid.pp oid
      (Type_name.to_string (Database.type_of db oid))
      Value.pp
      (Interp.call_on interp "age" [ oid ])
      (fun ppf oid ->
        match Interp.call_on interp "income" [ oid ] with
        | v -> Value.pp ppf v
        | exception Interp.Runtime_error _ -> Fmt.string ppf "n/a")
      oid
  in
  Fmt.pr "== before the view ==@.";
  List.iter show [ alice; bob; carol ];
  let income_before = Interp.call_on interp "income" [ alice ] in

  (* Derive the HR view and install the refactored schema.  Objects
     stay untouched: the projection never changes the cumulative state
     of pre-existing types. *)
  let o =
    Projection.project_exn (Database.schema db) ~view:"hr_view"
      ~derived_name:(ty "HrView") ~source:(ty "Employee")
      ~projection:[ at "ssn"; at "date_of_birth"; at "pay_rate" ]
      ()
  in
  Database.set_schema db o.schema;
  let interp = Interp.refresh interp in

  Fmt.pr "@.== after installing Π_{ssn,date_of_birth,pay_rate} Employee as HrView ==@.";
  List.iter show [ alice; bob; carol ];
  let income_after = Interp.call_on interp "income" [ alice ] in
  assert (Value.equal income_before income_after);
  Fmt.pr "  income(alice) unchanged by the refactoring: %a@." Value.pp income_after;

  (* The view's extent: every employee, same OIDs, no copies. *)
  Fmt.pr "@.== extent of HrView (identity semantics) ==@.";
  List.iter
    (fun oid ->
      Fmt.pr "  %a ssn=%a pay_rate=%a@." Tdp_store.Oid.pp oid Value.pp
        (Interp.call_on interp "get_ssn" [ oid ])
        Value.pp
        (Interp.call_on interp "get_pay_rate" [ oid ]))
    (Database.extent db (ty "HrView"));

  (* HR can create its own records: native instances of the view type
     carry only the projected state. *)
  let dave =
    Database.new_object db (ty "HrView")
      ~init:
        [ (at "ssn", Value.Int 104);
          (at "date_of_birth", Value.Date 1979);
          (at "pay_rate", Value.Float 61.0)
        ]
  in
  Fmt.pr "@.== a native HrView instance ==@.";
  Fmt.pr "  age(dave) = %a@." Value.pp (Interp.call_on interp "age" [ dave ]);
  (match Interp.call_on interp "income" [ dave ] with
  | v -> Fmt.pr "  income(dave) = %a (unexpected!)@." Value.pp v
  | exception Interp.Runtime_error msg ->
      Fmt.pr "  income(dave) correctly rejected: %s@." msg);
  (* Mutators relocated with the view still work through it. *)
  ignore (Interp.call interp "set_pay_rate" [ Value.Ref dave; Value.Float 63.0 ]);
  Fmt.pr "  after raise: pay_rate(dave) = %a@." Value.pp
    (Interp.call_on interp "get_pay_rate" [ dave ]);
  Fmt.pr "@.done.@."
