examples/payroll.mli:
