examples/paper_walkthrough.ml: Applicability Factor_methods Factor_state Fmt Hierarchy List Schema String Tdp_core Tdp_paper Type_name
