examples/catalog_session.mli:
