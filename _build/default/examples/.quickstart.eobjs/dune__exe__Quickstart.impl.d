examples/quickstart.ml: Applicability Attr_name Attribute Body Dot Fmt Hierarchy Invariants Method_def Projection Schema Signature Tdp_core Type_def Type_name Value_type
