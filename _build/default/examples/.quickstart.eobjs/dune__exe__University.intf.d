examples/university.mli:
