examples/catalog_session.ml: Attr_name Body Diff Error Fmt Hierarchy List Method_def Option Schema Signature String Subtype_cache Tdp_algebra Tdp_core Tdp_lang Tdp_store Type_name Value_type
