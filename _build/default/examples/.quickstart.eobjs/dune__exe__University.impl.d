examples/university.ml: Attr_name Fmt Hierarchy List Method_def Schema String Subtype_cache Tdp_algebra Tdp_core Tdp_lang Tdp_store Type_name
