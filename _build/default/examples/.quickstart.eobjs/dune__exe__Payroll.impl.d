examples/payroll.ml: Attr_name Fmt List Projection Tdp_core Tdp_paper Tdp_store Type_name
