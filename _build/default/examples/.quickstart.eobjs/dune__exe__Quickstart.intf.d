examples/quickstart.mli:
