(* University: a multiple-inheritance schema written in the schema
   language, with views over views and the empty-surrogate optimizer.

   TA inherits from both Student and Instructor (Student has higher
   precedence), the situation the paper's model is built for.

   Run with:  dune exec examples/university.exe *)

open Tdp_core
module Elaborate = Tdp_lang.Elaborate
module Printer = Tdp_lang.Printer
module View = Tdp_algebra.View
module Optimize = Tdp_algebra.Optimize
module Database = Tdp_store.Database
module Value = Tdp_store.Value

let source =
  {|
type Person {
  id : int;
  name : string;
  birth_year : int;
}

type Student : Person(1) {
  gpa : float;
  credits : int;
}

type Instructor : Person(1) {
  salary : float;
  dept : string;
}

type TA : Student(1), Instructor(2) {
  stipend : float;
}

reader get_id(self : Person) -> id;
reader get_name(self : Person) -> name;
reader get_birth_year(self : Person) -> birth_year;
reader get_gpa(self : Student) -> gpa;
reader get_credits(self : Student) -> credits;
reader get_salary(self : Instructor) -> salary;
reader get_dept(self : Instructor) -> dept;
reader get_stipend(self : TA) -> stipend;

method standing(s : Student) : int {
  if get_credits(s) >= 90 { return 4; } else {
    if get_credits(s) >= 60 { return 3; } else { return 2; }
  }
}

method honors(s : Student) : bool {
  return get_gpa(s) >= 3.7 and get_credits(s) >= 30;
}

method cost(i : Instructor) : float {
  return get_salary(i);
}

method ta_cost(t : TA) : float {
  return get_salary(t) + get_stipend(t);
}

// Academic-records view: no salary data.
view Transcript = project Student on [id, name, gpa, credits];

// Directory: flat contact info over everyone.
view Directory = project Person on [id, name];

// Honor roll: a selection over the transcript view.
view HonorRoll = select Transcript where gpa >= 3.7;
|}

let () =
  let r = Elaborate.load_exn source in
  Fmt.pr "== parsed %d types, %d methods, %d views ==@."
    (Hierarchy.cardinal (Schema.hierarchy r.schema))
    (List.length (Schema.all_methods r.schema))
    (List.length r.views);
  let schema, derived = Elaborate.apply_views_exn r in
  List.iter
    (fun (name, dty) ->
      Fmt.pr "view %-10s -> type %s with state {%s}@." name
        (Type_name.to_string dty)
        (String.concat ", "
           (List.map Attr_name.to_string
              (Hierarchy.all_attribute_names (Schema.hierarchy schema) dty))))
    derived;

  (* Which Student methods survived onto Transcript?  standing and
     honors read only gpa/credits: both survive. *)
  let cache = Schema_index.of_hierarchy (Schema.hierarchy schema) in
  let transcript = Type_name.of_string "Transcript" in
  Fmt.pr "@.methods applicable to Transcript: %s@."
    (String.concat ", "
       (List.map Method_def.id
          (List.filter
             (fun m -> not (Method_def.is_accessor m))
             (Schema.methods_applicable_to_type schema cache transcript))));

  (* TA instances appear in every view extent they should. *)
  let db = Database.create schema in
  let at = Attr_name.of_string and ty = Type_name.of_string in
  let _s1 =
    Database.new_object db (ty "Student")
      ~init:
        [ (at "id", Value.Int 1); (at "name", Value.String "ada");
          (at "birth_year", Value.Int 2004); (at "gpa", Value.Float 3.9);
          (at "credits", Value.Int 45)
        ]
  in
  let _t1 =
    Database.new_object db (ty "TA")
      ~init:
        [ (at "id", Value.Int 2); (at "name", Value.String "grace");
          (at "birth_year", Value.Int 2000); (at "gpa", Value.Float 3.5);
          (at "credits", Value.Int 95); (at "salary", Value.Float 1000.0);
          (at "dept", Value.String "db"); (at "stipend", Value.Float 200.0)
        ]
  in
  let _i1 =
    Database.new_object db (ty "Instructor")
      ~init:
        [ (at "id", Value.Int 3); (at "name", Value.String "edgar");
          (at "birth_year", Value.Int 1970); (at "salary", Value.Float 9000.0);
          (at "dept", Value.String "db")
        ]
  in
  List.iter
    (fun v ->
      Fmt.pr "extent(%-10s) = [%s]@." v
        (String.concat "; "
           (List.map
              (fun oid -> Fmt.str "%a" Tdp_store.Oid.pp oid)
              (Database.extent db (ty v)))))
    [ "Transcript"; "Directory"; "HonorRoll" ];
  (* HonorRoll is a selection: its *typed* extent is everything under
     the selection type; the predicate applies at query time. *)
  let honor_expr = List.assoc "HonorRoll" r.views in
  Fmt.pr "HonorRoll query   = [%s]@."
    (String.concat "; "
       (List.map
          (fun oid -> Fmt.str "%a" Tdp_store.Oid.pp oid)
          (View.instances db honor_expr)));

  (* Three chained views created surrogates; collapse the empty ones
     that nothing references (the paper's Section 7 open problem). *)
  let protect =
    Type_name.Set.of_list (List.map snd derived)
  in
  let before = Optimize.empty_surrogate_count schema in
  let collapsed, removed = Optimize.collapse_exn ~protect schema in
  Fmt.pr "@.empty surrogates: %d before, %d after collapse (removed: %s)@." before
    (Optimize.empty_surrogate_count collapsed)
    (String.concat ", " (List.map Type_name.to_string removed));

  (* Round-trip: the refactored schema still prints and re-parses.
     (The surface syntax does not record surrogate origins, so we check
     that printing is a fixpoint rather than full structural equality.) *)
  let printed = Printer.print collapsed in
  let reparsed = Elaborate.load_exn printed in
  assert (String.equal printed (Printer.print reparsed.schema));
  Fmt.pr "refactored schema round-trips through the surface syntax.@.@.done.@."
