(* Catalog session: a schema-administration walkthrough.

   Models a small publishing house and drives the view catalog like a
   DBA would: define views (projection, selection, generalization),
   inspect the structural diff, run the empty-surrogate optimizer, and
   drop views again — showing that dropping restores the schema and
   that drop order is enforced.

   Run with:  dune exec examples/catalog_session.exe *)

open Tdp_core
module Catalog = Tdp_algebra.Catalog
module View = Tdp_algebra.View
module Pred = Tdp_algebra.Pred
module Elaborate = Tdp_lang.Elaborate
module Database = Tdp_store.Database
module Value = Tdp_store.Value

let ty = Type_name.of_string
let at = Attr_name.of_string

let source =
  {|
type Work {
  work_id : int;
  title : string;
  year : int;
}

type Book : Work(1) {
  isbn : string;
  pages : int;
}

type Article : Work(1) {
  journal : string;
  doi : string;
}

reader get_work_id(self : Work) -> work_id;
reader get_title(self : Work) -> title;
reader get_year(self : Work) -> year;
reader get_pages(self : Book) -> pages;
reader get_journal(self : Article) -> journal;

method is_recent(w : Work) : bool {
  return get_year(w) >= 2020;
}

method is_long(b : Book) : bool {
  return get_pages(b) > 500;
}
|}

let () =
  let r = Elaborate.load_exn source in
  let base = r.schema in
  let c = Catalog.create base in

  (* 1. A citation view: titles and years only. *)
  let c, _ =
    Catalog.define_exn c ~name:"Citation"
      (View.Project (View.Base (ty "Work"), [ at "title"; at "year" ]))
  in
  (* 2. Recent citations: a selection over the view. *)
  let c, _ =
    Catalog.define_exn c ~name:"RecentCitation"
      (View.Select
         (View.Base (ty "Citation"), Pred.cmp (at "year") Pred.Ge (Body.Int 2020)))
  in
  (* 3. A union of books and articles over their shared Work state. *)
  let c, _ =
    Catalog.define_exn c ~name:"Publication"
      (View.Generalize (View.Base (ty "Book"), View.Base (ty "Article")))
  in
  Fmt.pr "== catalog ==@.%a@.@." Catalog.pp c;

  (* What did all that do to the hierarchy? *)
  Fmt.pr "== structural diff vs. base schema ==@.%a@.@." Diff.pp
    (Diff.schema_changes base (Catalog.schema c));

  (* Query through the store. *)
  let db = Database.create (Catalog.schema c) in
  let _b1 =
    Database.new_object db (ty "Book")
      ~init:
        [ (at "work_id", Value.Int 1); (at "title", Value.String "OODB Views");
          (at "year", Value.Int 2024); (at "isbn", Value.String "x");
          (at "pages", Value.Int 620)
        ]
  in
  let _a1 =
    Database.new_object db (ty "Article")
      ~init:
        [ (at "work_id", Value.Int 2);
          (at "title", Value.String "Type Derivation Using the Projection Operation");
          (at "year", Value.Int 1994); (at "journal", Value.String "Inf. Syst.");
          (at "doi", Value.String "-")
        ]
  in
  List.iter
    (fun name ->
      let entry = Option.get (Catalog.find_opt c name) in
      Fmt.pr "instances(%-16s) = %d@." name
        (List.length (View.instances db entry.expr)))
    [ "Citation"; "RecentCitation"; "Publication" ];

  (* is_recent survives onto Citation (it reads only year); is_long
     does not reach Publication (pages is not shared). *)
  let cache = Schema_index.of_hierarchy (Schema.hierarchy (Catalog.schema c)) in
  List.iter
    (fun v ->
      Fmt.pr "general methods on %-12s: %s@." v
        (String.concat ", "
           (List.filter_map
              (fun m ->
                if Method_def.is_accessor m then None else Some (Method_def.id m))
              (Schema.methods_applicable_to_type (Catalog.schema c) cache (ty v)))))
    [ "Citation"; "Publication" ];

  (* Optimizer: collapse surrogates nobody can see.  The catalog
     protects everything its undo metadata references, so views remain
     droppable. *)
  let c, removed = Catalog.optimize_exn c in
  Fmt.pr "@.optimizer removed: [%s] (undo metadata pins the rest)@."
    (String.concat "; " (List.map Type_name.to_string removed));

  (* Schema evolution under the views: adding a method that reads only
     shared state makes it applicable to Citation and Publication after
     automatic re-derivation; the impact report says so. *)
  let c, report =
    Tdp_algebra.Evolution.evolve_exn c
      (Add_method
         (Method_def.make ~gf:"age_of_work" ~id:"age_of_work"
            ~signature:
              (Signature.make ~result:Value_type.int [ ("w", ty "Work") ])
            (General
               [ Body.return_
                   (Body.builtin "-"
                      [ Body.int 2026; Body.call "get_year" [ Body.var "w" ] ])
               ])))
  in
  Fmt.pr "@.== evolution: add method age_of_work(Work) ==@.%a@.@."
    Tdp_algebra.Evolution.pp_report report;

  (* Drop order is enforced… *)
  (match Catalog.drop c ~name:"Citation" with
  | Error e -> Fmt.pr "dropping Citation first correctly fails: %a@." Error.pp e
  | Ok _ -> assert false);
  (* …and reverse order unwinds to the base schema. *)
  let c = Catalog.drop_exn c ~name:"Publication" in
  let c = Catalog.drop_exn c ~name:"RecentCitation" in
  let c = Catalog.drop_exn c ~name:"Citation" in
  Fmt.pr "after dropping all views: %d types (base had %d)@."
    (Hierarchy.cardinal (Schema.hierarchy (Catalog.schema c)))
    (Hierarchy.cardinal (Schema.hierarchy base));
  assert (
    List.sort compare (Hierarchy.type_names (Schema.hierarchy (Catalog.schema c)))
    = List.sort compare (Hierarchy.type_names (Schema.hierarchy base)));
  Fmt.pr "@.done.@."
