#!/bin/sh
# Golden transcripts for the interactive data language (docs/language.md).
#
# Replays every script under test/golden/repl/ through
# `odb repl --script` over the paper's employee schema and diffs the
# transcript against its pinned .expected — the statement language and
# its canonical rendering are a compatibility surface shared by the
# repl, the Session API and the server's `eval` verb, so any drift
# must be a conscious choice (regenerate with the command below).
#
# Usage: scripts/check_repl.sh   (run from the repository root)
set -eu

ODB=_build/default/bin/odb.exe
SCHEMA=examples/schemas/employee.odb
[ -x "$ODB" ] || dune build bin/odb.exe

status=0
for script in test/golden/repl/*.repl; do
  name=$(basename "$script" .repl)
  want=${script%.repl}.expected
  if [ ! -f "$want" ]; then
    echo "check_repl: $name has no .expected (generate: $ODB repl $SCHEMA --script $script > $want)" >&2
    status=1
    continue
  fi
  got=$("$ODB" repl "$SCHEMA" --script "$script")
  if [ "$got" = "$(cat "$want")" ]; then
    echo "check_repl: $name OK"
  else
    echo "check_repl: $name FAILED" >&2
    printf '%s\n' "$got" | diff -u "$want" - >&2 || true
    status=1
  fi
done

[ "$status" -eq 0 ] && echo "check_repl: all transcripts match"
exit "$status"
