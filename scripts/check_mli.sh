#!/bin/sh
# Every library module must have an explicit interface: the .mli files
# are the API surface the facade (lib/tdp.mli) and docs promise, and a
# missing one silently exports every helper in the module.
#
# Usage: scripts/check_mli.sh   (run from the repository root)
set -eu

status=0
for ml in $(find lib -name '*.ml' ! -name '*.mli' | sort); do
  if [ ! -f "${ml}i" ]; then
    echo "missing interface: ${ml}i" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_mli: every lib module has an .mli"
fi
exit "$status"
