#!/bin/sh
# Golden transcripts for the `odb serve` line protocol (docs/server.md).
#
# Starts a server on a throwaway store, drives it through `odb connect`,
# and diffs the responses against pinned transcripts — the wire protocol
# is a compatibility surface, so any drift must be a conscious choice.
# A final two-client race checks the conflict path (prefix-matched: the
# loser's message embeds version numbers).
#
# Usage: scripts/check_protocol.sh   (run from the repository root)
set -eu

ODB=_build/default/bin/odb.exe
[ -x "$ODB" ] || dune build bin/odb.exe

tmp=$(mktemp -d)
server_pid=
a_pid=
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  [ -n "$a_pid" ] && kill "$a_pid" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$ODB" store init "$tmp/db" --schema examples/schemas/employee.odb >/dev/null

"$ODB" serve "$tmp/db" --socket "$tmp/odb.sock" --no-sync >/dev/null &
server_pid=$!
i=0
until [ -S "$tmp/odb.sock" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "check_protocol: server never came up" >&2; exit 1; }
  sleep 0.1
done

status=0
transcript() {
  name=$1
  got=$("$ODB" connect "$tmp/odb.sock" <"$tmp/in.txt")
  if [ "$got" = "$(cat "$tmp/want.txt")" ]; then
    echo "check_protocol: $name OK"
  else
    echo "check_protocol: $name FAILED" >&2
    diff -u "$tmp/want.txt" - <<EOF >&2 || true
$got
EOF
    status=1
  fi
}

# -- 1: session basics — begin/stage/read-your-writes/commit ----------
cat >"$tmp/in.txt" <<'EOF'
hello
ping
begin
new Employee ssn=1 name="alice" pay_rate=12.5
get #1 name
commit
typeof #1
count
version
branches
quit
EOF
cat >"$tmp/want.txt" <<'EOF'
ok odb 1 branch main
ok pong
ok txn 1 base 0
ok #1
ok "alice"
ok committed 1
ok Employee
ok 1
ok 1
ok main:1
ok bye
EOF
transcript "session basics"

# -- 2: errors leave the session usable; abort discards staging -------
cat >"$tmp/in.txt" <<'EOF'
set #1 ssn=9
begin
set #1 ssn=9
abort
get #1 ssn
quit
EOF
cat >"$tmp/want.txt" <<'EOF'
err "no open transaction (begin first)"
ok txn 2 base 1
ok
ok aborted
ok 1
ok bye
EOF
transcript "errors and abort"

# -- 3: branches are independent lines of versions --------------------
cat >"$tmp/in.txt" <<'EOF'
fork dev
branch dev
begin
set #1 pay_rate=99.0
commit
get #1 pay_rate
branch main
get #1 pay_rate
quit
EOF
cat >"$tmp/want.txt" <<'EOF'
ok forked dev at 1
ok branch dev
ok txn 3 base 1
ok
ok committed 2
ok 99.0
ok branch main
ok 12.5
ok bye
EOF
transcript "branch fork and isolation"

# -- 4: two clients race one slot — exactly one wins ------------------
mkfifo "$tmp/a.in"
"$ODB" connect "$tmp/odb.sock" <"$tmp/a.in" >"$tmp/a.out" &
a_pid=$!
exec 3>"$tmp/a.in"
printf 'begin\nset #1 ssn=100\n' >&3
sleep 0.3
b_out=$("$ODB" connect "$tmp/odb.sock" <<'EOF'
begin
set #1 ssn=200
commit
quit
EOF
)
printf 'commit\nquit\n' >&3
exec 3>&-
wait "$a_pid" || true
a_pid=
a_commit=$(sed -n '3p' "$tmp/a.out")
b_commit=$(printf '%s\n' "$b_out" | sed -n '3p')
case "$b_commit" in
  "ok committed"*) : ;;
  *) echo "check_protocol: race winner FAILED: $b_commit" >&2; status=1 ;;
esac
case "$a_commit" in
  conflict*) echo "check_protocol: conflict race OK ($a_commit)" ;;
  *) echo "check_protocol: race loser FAILED: $a_commit" >&2; status=1 ;;
esac

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=

[ "$status" -eq 0 ] && echo "check_protocol: all transcripts match"
exit "$status"
