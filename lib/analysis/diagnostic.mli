(** Structured diagnostics with stable codes.

    Every finding of the {!Lint} passes is a value of this type: a
    stable code ([TDP001]…), a severity, an optional source file and
    position, and a human-readable message.  Diagnostics render either
    as a classic one-line compiler message ([file:line:col: severity
    [code]: message]) or as one JSON object per line for machine
    consumption (CI gates, editors). *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable identifier, e.g. ["TDP001"] *)
  severity : severity;
  file : string option;
  position : (int * int) option;  (** 1-based line, column *)
  message : string;
}

val make :
  ?file:string -> ?position:int * int -> code:string -> severity:severity -> string -> t

val is_error : t -> bool
val severity_to_string : severity -> string

(** Orders by code, then position, then message — a stable order for
    reports and golden tests. *)
val compare : t -> t -> int

(** [errors, warnings, infos] counts. *)
val count : t list -> int * int * int

(** [file:line:col: severity[code]: message]; the location prefix
    shrinks to what is known. *)
val pp : t Fmt.t

(** One-line JSON object with fields [code], [severity], [file], [line],
    [col] (location fields only when known) and [message]. *)
val to_json : t -> string
