type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  file : string option;
  position : (int * int) option;
  message : string;
}

let make ?file ?position ~code ~severity message =
  { code; severity; file; position; message }

let is_error d = d.severity = Error

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let compare a b =
  let c = String.compare a.code b.code in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.position b.position in
    if c <> 0 then c else String.compare a.message b.message

let count ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let pp ppf d =
  (match (d.file, d.position) with
  | Some f, Some (l, c) -> Fmt.pf ppf "%s:%d:%d: " f l c
  | Some f, None -> Fmt.pf ppf "%s: " f
  | None, Some (l, c) -> Fmt.pf ppf "%d:%d: " l c
  | None, None -> ());
  Fmt.pf ppf "%s[%s]: %s" (severity_to_string d.severity) d.code d.message

(* Minimal JSON string escaping: quote, backslash, and control
   characters.  The fields we emit never contain anything fancier. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json d =
  let fields =
    [ Some ("code", json_string d.code);
      Some ("severity", json_string (severity_to_string d.severity));
      Option.map (fun f -> ("file", json_string f)) d.file;
      Option.map (fun (l, _) -> ("line", string_of_int l)) d.position;
      Option.map (fun (_, c) -> ("col", string_of_int c)) d.position;
      Some ("message", json_string d.message)
    ]
    |> List.filter_map Fun.id
  in
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"
