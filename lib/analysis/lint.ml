open Tdp_core
module Static_check = Tdp_dispatch.Static_check
module Dispatch = Tdp_dispatch.Dispatch
module View = Tdp_algebra.View
module SS = Dataflow.SS

(* ------------------------------------------------------------------ *)
(* Diagnostic table                                                    *)
(* ------------------------------------------------------------------ *)

let codes : (string * Diagnostic.severity * string) list =
  [ ("TDP000", Error, "schema failed to parse or elaborate");
    ("TDP001", Error, "use of an undefined variable");
    ("TDP002", Error, "ill-typed assignment or initialization");
    ("TDP003", Error, "non-boolean if condition");
    ("TDP004", Error, "non-boolean while condition");
    ("TDP005", Error, "return disagrees with the declared result type");
    ("TDP006", Warning, "local variable may be read before initialization");
    ("TDP007", Warning, "call matches no method at its static argument types");
    ("TDP008", Error, "call to an undeclared generic function");
    ("TDP009", Error, "call arity disagrees with the generic function");
    ("TDP010", Error, "generic-function argument is not an object");
    ("TDP011", Warning, "local variable is never used");
    ("TDP012", Warning, "local variable is written but never read");
    ("TDP013", Warning, "unreachable statement after return");
    ("TDP014", Error, "declaration references an unknown type");
    ("TDP020", Error, "two methods of one generic function share a signature");
    ("TDP021", Warning, "a call in the generic function's space is ambiguous");
    ("TDP022", Warning, "a call in the generic function's space has no method");
    ("TDP023", Info, "attribute reaches a type through multiple supertypes");
    ("TDP024", Info, "non-surrogate type declares no attributes");
    ("TDP025", Error, "accessor references an attribute its type lacks");
    ("TDP026", Info, "generic function declares no methods");
    ("TDP027", Warning, "type has no consistent precedence linearization");
    ("TDP028", Error, "hierarchy is structurally malformed");
    ("TDP030", Warning, "projection strips a method of the source type");
    ("TDP031", Error, "projected attribute not available at the source type");
    ("TDP032", Error, "view references an unknown base");
    ("TDP033", Error, "view name collides with an existing type");
    ("TDP040", Error, "view pipeline is ill-typed or does not instantiate");
    ("TDP041", Error, "pipeline requires an attribute its row can never carry");
    ("TDP042", Error, "join operands are related in every instantiation");
    ("TDP043", Error, "predicate comparisons over an attribute are unsatisfiable");
    ("TDP044", Error, "views constrain a shared attribute incompatibly");
    ("TDP050", Error, "statement failed to parse");
    ("TDP051", Error, "statement references an unknown relvar or type");
    ("TDP052", Error, "view or binding name is already defined");
    ("TDP053", Error, "statement is ill-typed");
    ("TDP054", Error, "join views have no identity extent");
    ("TDP055", Error, "statement failed at the store");
    ("TDP056", Error, "declaration not executable in an interactive session")
  ]

let severity_of code =
  match List.find_opt (fun (c, _, _) -> c = code) codes with
  | Some (_, s, _) -> s
  | None -> Diagnostic.Error

let d ?file ?position code fmt =
  Fmt.kstr
    (fun message ->
      Diagnostic.make ?file ?position ~code ~severity:(severity_of code) message)
    fmt

let of_error ?file e =
  Diagnostic.make ?file ?position:(Error.position e) ~code:"TDP000"
    ~severity:Diagnostic.Error (Error.message e)

let mname m = Fmt.str "%s.%s" (Method_def.gf m) (Method_def.id m)
let types_str l = String.concat ", " (List.map Type_name.to_string l)

(* ------------------------------------------------------------------ *)
(* Declaration sanity: every type referenced by a signature, local or   *)
(* attribute must exist.  The deeper passes assume this (their subtype  *)
(* queries raise on unknown names), so methods that fail it are         *)
(* excluded from body analysis.                                         *)
(* ------------------------------------------------------------------ *)

let unknown_named h ty =
  match Value_type.as_named ty with
  | Some n when not (Hierarchy.mem h n) -> Some n
  | _ -> None

let check_attr_types ?file h =
  List.concat_map
    (fun def ->
      List.filter_map
        (fun a ->
          unknown_named h (Attribute.ty a)
          |> Option.map (fun n ->
                 d ?file "TDP014" "attribute %a of type %a has unknown type %a"
                   Attr_name.pp (Attribute.name a) Type_name.pp (Type_def.name def)
                   Type_name.pp n))
        (Type_def.attrs def))
    (Hierarchy.types h)

let check_method_decl ?file h m =
  let s = Method_def.signature m in
  let params =
    List.filter_map
      (fun (x, ty) ->
        if Hierarchy.mem h ty then None
        else
          Some
            (d ?file "TDP014" "parameter %s of method %s has unknown type %a" x
               (mname m) Type_name.pp ty))
      (Signature.params s)
  in
  let result =
    match Option.bind (Signature.result s) (fun ty -> unknown_named h ty) with
    | Some n ->
        [ d ?file "TDP014" "result of method %s has unknown type %a" (mname m)
            Type_name.pp n
        ]
    | None -> []
  in
  let locals =
    match Method_def.body m with
    | None -> []
    | Some body ->
        List.filter_map
          (fun (x, ty) ->
            unknown_named h ty
            |> Option.map (fun n ->
                   d ?file "TDP014" "local %s of method %s has unknown type %a" x
                     (mname m) Type_name.pp n))
          (Body.locals body)
  in
  params @ result @ locals

(* ------------------------------------------------------------------ *)
(* Pass 1: method-body type checker                                     *)
(* ------------------------------------------------------------------ *)

let boolish = function
  | Value_type.Prim Value_type.Bool | Value_type.Unknown -> true
  | _ -> false

let check_call ?file schema cache env ~meth gf args =
  match Schema.find_gf_opt schema gf with
  | None -> [ d ?file "TDP008" "method %s calls undeclared generic function %s" meth gf ]
  | Some g ->
      let arity = Generic_function.arity g in
      let expected = arity + if Schema.is_writer_gf schema gf then 1 else 0 in
      if List.length args <> expected then
        [ d ?file "TDP009" "method %s calls %s with %d argument(s); it takes %d"
            meth gf (List.length args) expected
        ]
      else
        let dispatched = List.filteri (fun i _ -> i < arity) args in
        let typed =
          List.mapi
            (fun i a -> (i, Value_type.as_named (Typing.type_of_expr schema env a)))
            dispatched
        in
        let non_object =
          List.filter_map
            (fun (i, t) ->
              if t = None then
                Some
                  (d ?file "TDP010"
                     "argument %d of call %s in method %s is not an object" i gf
                     meth)
              else None)
            typed
        in
        if non_object <> [] then non_object
        else
          let arg_types = List.filter_map snd typed in
          if Schema.methods_applicable_to_call schema cache ~gf ~arg_types = []
          then
            [ d ?file "TDP007"
                "call %s(%s) in method %s matches no method at its static types"
                gf (types_str arg_types) meth
            ]
          else []

let check_body ?file schema cache h m =
  match Method_def.body m with
  | None -> []
  | Some body ->
      let meth = mname m in
      let env = Typing.env_of_method m in
      let expr_diags =
        Body.fold_stmts
          (fun acc (e : Body.expr) ->
            match e with
            | Var x when not (Typing.SMap.mem x env) ->
                d ?file "TDP001" "method %s uses undefined variable %s" meth x
                :: acc
            | Var _ | Lit _ | Builtin _ -> acc
            | Call { gf; args } ->
                List.rev_append (check_call ?file schema cache env ~meth gf args) acc)
          [] body
        |> List.rev
      in
      let result = Signature.result (Method_def.signature m) in
      let rec walk stmts = List.concat_map walk_stmt stmts
      and walk_stmt (s : Body.stmt) =
        match s with
        | Assign (x, e) | Local { var = x; init = Some e; _ } ->
            let tx = Typing.lookup_var env x
            and te = Typing.type_of_expr schema env e in
            if Typing.SMap.mem x env && not (Typing.compatible h ~from_:te ~to_:tx)
            then
              [ d ?file "TDP002" "method %s assigns a %a value to %s : %a" meth
                  Value_type.pp te x Value_type.pp tx
              ]
            else []
        | Local { init = None; _ } | Expr _ -> []
        | Return None -> (
            match result with
            | Some rt ->
                [ d ?file "TDP005"
                    "method %s returns nothing but declares result %a" meth
                    Value_type.pp rt
                ]
            | None -> [])
        | Return (Some e) -> (
            let te = Typing.type_of_expr schema env e in
            match result with
            | Some rt when not (Typing.compatible h ~from_:te ~to_:rt) ->
                [ d ?file "TDP005"
                    "method %s returns a %a value but declares result %a" meth
                    Value_type.pp te Value_type.pp rt
                ]
            | Some _ -> []
            | None ->
                if te = Value_type.Unknown then []
                else
                  [ d ?file "TDP005"
                      "method %s returns a value but declares no result" meth
                  ])
        | If (c, t, e) ->
            (if boolish (Typing.type_of_expr schema env c) then []
             else
               [ d ?file "TDP003" "if condition in method %s is %a, not bool" meth
                   Value_type.pp
                   (Typing.type_of_expr schema env c)
               ])
            @ walk t @ walk e
        | While (c, b) ->
            (if boolish (Typing.type_of_expr schema env c) then []
             else
               [ d ?file "TDP004" "while condition in method %s is %a, not bool"
                   meth Value_type.pp
                   (Typing.type_of_expr schema env c)
               ])
            @ walk b
      in
      let uninit =
        List.map
          (fun x ->
            d ?file "TDP006" "method %s may read %s before initialization" meth x)
          (Dataflow.use_before_init m)
      in
      expr_diags @ walk body @ uninit

(* ------------------------------------------------------------------ *)
(* Pass 2: flow lints                                                   *)
(* ------------------------------------------------------------------ *)

let rec stmt_terminates (s : Body.stmt) =
  match s with
  | Return _ -> true
  | If (_, t, e) -> t <> [] && e <> [] && block_terminates t && block_terminates e
  | Local _ | Assign _ | Expr _ | While _ -> false

and block_terminates stmts = List.exists stmt_terminates stmts

let check_flow ?file m =
  match Method_def.body m with
  | None -> []
  | Some body ->
      let meth = mname m in
      let reads = Dataflow.read_vars body in
      let writes = Dataflow.written_vars body in
      let locals =
        List.concat_map
          (fun (x, _) ->
            if SS.mem x reads then []
            else if SS.mem x writes then
              [ d ?file "TDP012" "local %s of method %s is written but never read"
                  x meth
              ]
            else [ d ?file "TDP011" "local %s of method %s is never used" x meth ])
          (Body.locals body)
      in
      let unreachable = ref [] in
      let rec scan stmts =
        (let rec go = function
           | s :: (_ :: _ as rest) ->
               if stmt_terminates s then
                 unreachable :=
                   d ?file "TDP013" "unreachable statement after return in method %s"
                     meth
                   :: !unreachable
               else go rest
           | _ -> ()
         in
         go stmts);
        List.iter
          (fun (s : Body.stmt) ->
            match s with
            | If (_, t, e) ->
                scan t;
                scan e
            | While (_, b) -> scan b
            | Local _ | Assign _ | Expr _ | Return _ -> ())
          stmts
      in
      scan body;
      locals @ List.rev !unreachable

(* ------------------------------------------------------------------ *)
(* Pass 3: schema lints                                                 *)
(* ------------------------------------------------------------------ *)

let of_static_issue ?file (i : Static_check.issue) =
  match i with
  | Duplicate_signature { gf; m1; m2 } ->
      d ?file "TDP020" "generic %s: methods %a and %a have identical signatures"
        gf Method_def.Key.pp m1 Method_def.Key.pp m2
  | Ambiguous_call { gf; arg_types; methods } ->
      d ?file "TDP021" "call %s(%s) is ambiguous between %s" gf
        (types_str arg_types)
        (String.concat ", " (List.map (Fmt.str "%a" Method_def.Key.pp) methods))
  | Uncovered_call { gf; arg_types } ->
      d ?file "TDP022" "call %s(%s) has no applicable method" gf
        (types_str arg_types)

let check_diamonds ?file h =
  List.concat_map
    (fun def ->
      let supers = Type_def.super_names def in
      if List.length supers < 2 then []
      else
        let per_super =
          List.map (fun s -> (s, Hierarchy.all_attribute_names h s)) supers
        in
        let attrs =
          List.sort_uniq Attr_name.compare (List.concat_map snd per_super)
        in
        List.filter_map
          (fun a ->
            let via =
              List.filter_map
                (fun (s, attrs) ->
                  if List.exists (Attr_name.equal a) attrs then Some s else None)
                per_super
            in
            if List.length via < 2 then None
            else
              Some
                (d ?file "TDP023"
                   "attribute %a reaches %a through supertypes %s (inherited once)"
                   Attr_name.pp a Type_name.pp (Type_def.name def) (types_str via)))
          attrs)
    (Hierarchy.types h)

let check_schema_structure ?file schema =
  let h = Schema.hierarchy schema in
  let empties =
    List.filter_map
      (fun def ->
        if Type_def.attrs def = [] && not (Type_def.is_surrogate def) then
          Some
            (d ?file "TDP024" "type %a declares no attributes" Type_name.pp
               (Type_def.name def))
        else None)
      (Hierarchy.types h)
  in
  let empty_gfs =
    List.filter_map
      (fun g ->
        if Generic_function.methods g = [] then
          Some
            (d ?file "TDP026" "generic function %s declares no methods"
               (Generic_function.name g))
        else None)
      (Schema.gfs schema)
  in
  let accessors =
    List.concat_map
      (fun m ->
        match (Method_def.accessed_attr m, Signature.params (Method_def.signature m)) with
        | Some attr, (_, on) :: _ ->
            if Hierarchy.mem h on && not (Hierarchy.has_attribute h on attr) then
              [ d ?file "TDP025"
                  "accessor %s references attribute %a that type %a does not have"
                  (mname m) Attr_name.pp attr Type_name.pp on
              ]
            else []
        | _ -> [])
      (Schema.all_methods schema)
  in
  let linearization =
    List.filter_map
      (fun n ->
        match Linearize.cpl_result h n with
        | Error (Linearization_failure _) ->
            Some
              (d ?file "TDP027" "type %a has no consistent precedence linearization"
                 Type_name.pp n)
        | Error _ | Ok _ -> None)
      (Hierarchy.type_names h)
  in
  empties @ empty_gfs @ accessors @ linearization @ check_diamonds ?file h

let check_call_spaces ?file schema =
  let dispatcher = Dispatch.create schema in
  List.concat_map
    (fun g ->
      let gf = Generic_function.name g in
      match Static_check.method_space_issues dispatcher ~gf with
      | issues -> List.map (of_static_issue ?file) issues
      | exception Error.E _ -> [] (* linearization failures are TDP027 *))
    (Schema.gfs schema)

(* ------------------------------------------------------------------ *)
(* Pass 4: projection-safety pre-check                                  *)
(* ------------------------------------------------------------------ *)

let check_projection ?file batch ~view ~source ~projection =
  let schema = Applicability.batch_schema batch in
  match Applicability.analyze_batch batch ~source ~projection with
  | Error _ -> [] (* ill-formed inputs are reported by the other passes *)
  | Ok r ->
      List.map
        (fun k ->
          d ?file "TDP030" "view %s strips %a from %a: %s" view
            Method_def.Key.pp k Type_name.pp source
            (Applicability.explain schema r ~source ~projection k))
        (Method_def.Key.Set.elements r.not_applicable)

(* ------------------------------------------------------------------ *)
(* Pass 5: pipeline inference                                          *)
(* ------------------------------------------------------------------ *)

(* Whole-pipeline diagnostics via {!Tdp_infer}: each declared view is
   lowered to the inference IR and solved as one program (later views
   may reference earlier ones), then every principal schema is checked
   against the concrete schema.  Solve-time errors are flaws of the
   pipeline itself — no instantiation can derive it — and map to the
   specific TDP041..TDP044 codes; a pipeline whose principal this
   schema fails to instantiate is TDP040. *)

module Infer = Tdp_infer.Infer

let code_of_infer_error (e : Infer.error) =
  match e with
  | Infer.Ill_typed _ -> "TDP040"
  | Infer.Attr_absent _ -> "TDP041"
  | Infer.Join_related _ -> "TDP042"
  | Infer.Pred_conflict _ -> "TDP043"
  | Infer.Reuse_conflict _ -> "TDP044"

let lint_inference ?file ~positions schema views =
  let prog, _ =
    List.fold_left
      (fun (acc, seen) (name, expr) ->
        let is_ref n = List.mem (Type_name.to_string n) seen in
        ((name, View.to_pipeline ~is_ref expr) :: acc, name :: seen))
      ([], []) views
  in
  let position view = List.assoc_opt view positions in
  List.filter_map
    (fun (name, res) ->
      match res with
      | Error e ->
          Some
            (d ?file ?position:(position (Infer.error_view e))
               (code_of_infer_error e) "%s" (Infer.error_message e))
      | Ok principal -> (
          match Infer.admits schema principal with
          | Ok () -> None
          | Error e ->
              Some
                (d ?file ?position:(position name) "TDP040"
                   "view %s does not instantiate over this schema: %s" name
                   (Infer.error_message e))))
    (Infer.infer_program (List.rev prog))

let lint_views ?file ?(positions = []) schema views =
  let h = Schema.hierarchy schema in
  (* one shared batch: every per-view safety pre-check below reuses the
     same ancestor sets, relevant-call and candidate-method memos *)
  let batch = Applicability.batch schema in
  let rec walk ~view ~seen (e : View.expr) =
    match e with
    | Base n ->
        if Hierarchy.mem h n || List.mem (Type_name.to_string n) seen then []
        else
          [ d ?file "TDP032" "view %s references unknown base %a" view
              Type_name.pp n
          ]
    | Project (sub, projection) ->
        let deeper = walk ~view ~seen sub in
        let here =
          match sub with
          | Base n when Hierarchy.mem h n ->
              let available = Hierarchy.all_attribute_names h n in
              let missing =
                List.filter
                  (fun a -> not (List.exists (Attr_name.equal a) available))
                  projection
              in
              if missing <> [] then
                List.map
                  (fun a ->
                    d ?file "TDP031"
                      "view %s projects attribute %a that %a does not have" view
                      Attr_name.pp a Type_name.pp n)
                  missing
              else check_projection ?file batch ~view ~source:n ~projection
          | _ -> []
        in
        deeper @ here
    | Select (sub, _) -> walk ~view ~seen sub
    | Generalize (a, b) -> walk ~view ~seen a @ walk ~view ~seen b
    | Join (a, b) -> walk ~view ~seen a @ walk ~view ~seen b
  in
  let diags, _ =
    List.fold_left
      (fun (acc, seen) (name, expr) ->
        let clash =
          if Hierarchy.mem h (Type_name.of_string name) then
            [ d ?file "TDP033" "view %s collides with an existing type" name ]
          else []
        in
        (acc @ clash @ walk ~view:name ~seen expr, name :: seen))
      ([], []) views
  in
  let diags = diags @ lint_inference ?file ~positions schema views in
  List.stable_sort Diagnostic.compare diags

(* ------------------------------------------------------------------ *)
(* Drivers                                                              *)
(* ------------------------------------------------------------------ *)

let lint_schema ?file schema =
  let h = Schema.hierarchy schema in
  match Hierarchy.validate h with
  | Error e ->
      [ d ?file "TDP028" "%s" (Error.message e) ]
  | Ok () ->
      let decls =
        check_attr_types ?file h
        @ List.concat_map (check_method_decl ?file h) (Schema.all_methods schema)
      in
      let structure =
        check_schema_structure ?file schema
        @ List.map (of_static_issue ?file) (Static_check.duplicate_signatures schema)
      in
      let flow = List.concat_map (check_flow ?file) (Schema.all_methods schema) in
      let deep =
        (* the typed passes issue subtype queries that assume every
           declared type exists; skip them when TDP014 fired *)
        if decls <> [] then []
        else
          let cache = Schema_index.of_hierarchy h in
          List.concat_map (check_body ?file schema cache h) (Schema.all_methods schema)
          @ check_call_spaces ?file schema
      in
      List.stable_sort Diagnostic.compare (decls @ structure @ flow @ deep)

let lint_program ?file ?positions schema ~views =
  let s = lint_schema ?file schema in
  let v =
    if List.exists Diagnostic.is_error s then []
    else lint_views ?file ?positions schema views
  in
  List.stable_sort Diagnostic.compare (s @ v)
