(** Static analysis of schemas and method bodies.

    Four pass families over an elaborated (possibly unchecked) schema,
    all reporting through {!Diagnostic}:

    - {b body}: a method-body type checker — undefined variables,
      assignment/return compatibility, non-boolean conditions,
      use-before-initialization, and generic-function calls that are
      malformed or match no method statically;
    - {b flow}: def/use lints built on {!Tdp_core.Dataflow} — unused and
      write-only locals, unreachable statements after [return];
    - {b schema}: duplicate signatures and call-space coverage/ambiguity
      (subsuming {!Tdp_dispatch.Static_check}), diamond attribute
      inheritance, empty types, accessors over missing attributes,
      linearization failures;
    - {b projection}: a pre-check that warns, for each declared view,
      about the methods the projection will strip because their bodies
      transitively depend on dropped attributes (Section 4 of the
      paper, run before the expensive refactoring);
    - {b inference}: whole-pipeline typing via {!Tdp_infer} — each
      view is lowered to the inference IR, the program's principal
      schemas are solved, and structurally untypeable pipelines
      (TDP041–TDP044) or pipelines this schema does not instantiate
      (TDP040) are reported, with the view declaration's source
      position when available.

    The passes never raise: schemas that are too broken for the deeper
    analyses short-circuit into structural diagnostics. *)

open Tdp_core

(** Render a load/elaboration failure as a [TDP000] error diagnostic,
    preserving any source position the error carries. *)
val of_error : ?file:string -> Error.t -> Diagnostic.t

(** All schema-level passes (body, flow, schema families), sorted with
    {!Diagnostic.compare}.  [file] is attached to every diagnostic. *)
val lint_schema : ?file:string -> Schema.t -> Diagnostic.t list

(** The projection-safety pre-check and the pipeline-inference pass
    over declared views (in declaration order; later views may
    reference earlier ones by name).  Assumes a schema free of
    error-severity issues.  [positions] maps view names to the
    (line, col) of their declaration; the inference diagnostics carry
    them ({!Tdp_lang.Elaborate} provides [view_positions]). *)
val lint_views :
  ?file:string ->
  ?positions:(string * (int * int)) list ->
  Schema.t ->
  (string * Tdp_algebra.View.expr) list ->
  Diagnostic.t list

(** {!lint_schema}, then — when it produced no error-severity
    diagnostic — {!lint_views}; the combined list is sorted. *)
val lint_program :
  ?file:string ->
  ?positions:(string * (int * int)) list ->
  Schema.t ->
  views:(string * Tdp_algebra.View.expr) list ->
  Diagnostic.t list

(** The full diagnostic table: code, default severity, description. *)
val codes : (string * Diagnostic.severity * string) list
