open Tdp_core
module Database = Tdp_store.Database
module Oid = Tdp_store.Oid

(* Maintained materialized views.

   [View.materialize] takes a one-shot copy; this module keeps the copy
   population in sync with the base data on demand: [refresh] diffs the
   view's current instance set against the copies (tracked by a
   source-OID → copy-OID mapping) and adds, removes, or updates copies
   as needed — the classic deferred view-maintenance loop, built on the
   identity-based instance semantics of projection views.

   Refresh is incremental over the store's logical clock: the view
   remembers the tick of its last refresh, and a tracked (source, copy)
   pair whose row stamps are both at or below it cannot have diverged —
   the attribute diff is skipped entirely.  The membership pass still
   runs (instance sets can change through other rows), but the per-row
   work drops from every-attribute-twice to two stamp reads on clean
   rows. *)

module Obs = Tdp_obs
let m_refresh_ns = Obs.Metrics.histogram "matview.refresh_ns"
let c_rows_skipped = Obs.Metrics.counter "matview.rows_skipped"
let c_rows_checked = Obs.Metrics.counter "matview.rows_checked"

type stats = { added : int; removed : int; updated : int }

let no_change = { added = 0; removed = 0; updated = 0 }

type t = {
  view_type : Type_name.t;
  expr : View.expr;
  mutable mapping : Oid.t Oid.Map.t;  (** source → copy *)
  mutable last_tick : int;  (** store tick of the last refresh *)
}

let view_type t = t.view_type
let mapping t = t.mapping

let copy_attrs db view_type =
  Hierarchy.all_attribute_names (Database.hierarchy db) view_type

let refresh ?(force = false) db t =
  Obs.Metrics.time m_refresh_ns (fun () ->
      let attrs = copy_attrs db t.view_type in
      let current = View.instances db t.expr in
      let current_set = Oid.Set.of_list current in
      (* remove copies of vanished sources *)
      let removed = ref 0 in
      let mapping =
        Oid.Map.filter
          (fun src copy ->
            if Oid.Set.mem src current_set then true
            else begin
              Database.delete db ~policy:Database.Nullify copy;
              incr removed;
              false
            end)
          t.mapping
      in
      (* add copies for new sources, update stale ones *)
      let added = ref 0 and updated = ref 0 in
      let mapping =
        List.fold_left
          (fun mapping src ->
            match Oid.Map.find_opt src mapping with
            | None ->
                let init =
                  List.combine attrs (Database.get_attrs db src attrs)
                in
                let copy = Database.new_object db t.view_type ~init in
                incr added;
                Oid.Map.add src copy mapping
            | Some copy ->
                if
                  (not force)
                  && Database.row_stamp db src <= t.last_tick
                  && Database.row_stamp db copy <= t.last_tick
                then Obs.Metrics.incr c_rows_skipped
                else begin
                  Obs.Metrics.incr c_rows_checked;
                  (* one batch read per side, then diff — not a
                     get_attr pair per attribute *)
                  let src_vals = Database.get_attrs db src attrs in
                  let copy_vals = Database.get_attrs db copy attrs in
                  let changed = ref false in
                  let rec diff al sl cl =
                    match (al, sl, cl) with
                    | [], [], [] -> ()
                    | a :: al, s :: sl, c :: cl ->
                        if not (Tdp_store.Value.equal s c) then begin
                          Database.set_attr db copy a s;
                          changed := true
                        end;
                        diff al sl cl
                    | _ ->
                        (* get_attrs returns one value per requested
                           attr; a length mismatch means the store
                           broke that contract *)
                        raise
                          (Database.Store_error
                             (Fmt.str
                                "matview refresh: %d attributes but %d source \
                                 / %d copy values for #%d -> #%d"
                                (List.length attrs) (List.length src_vals)
                                (List.length copy_vals)
                                (Tdp_store.Oid.to_int src)
                                (Tdp_store.Oid.to_int copy)))
                  in
                  diff attrs src_vals copy_vals;
                  if !changed then incr updated
                end;
                mapping)
          mapping current
      in
      t.mapping <- mapping;
      (* every copy now agrees with its source as of this instant *)
      t.last_tick <- Database.tick db;
      { added = !added; removed = !removed; updated = !updated })

let create db ~view_type expr =
  let t = { view_type; expr; mapping = Oid.Map.empty; last_tick = 0 } in
  let _ = refresh db t in
  t

let copies t = List.map snd (Oid.Map.bindings t.mapping)

let pp_stats ppf s =
  Fmt.pf ppf "+%d -%d ~%d" s.added s.removed s.updated
