open Tdp_core

(* Schema evolution with view impact analysis.

   Changing a base schema under a set of derived views is the everyday
   problem the paper's machinery makes tractable: because every view is
   derived by a reproducible pipeline, evolution can unwind all views
   (reverse definition order), apply the base change, and re-derive the
   views in order — then report, per view, which methods the view's
   type gained or lost, or whether the view no longer derives at all
   (e.g. its projection list mentions a dropped attribute). *)

(* Observability: evolutions are rare but expensive (unwind + re-derive
   every view), so each one is counted, timed, and traced, along with
   how many views broke.  Gated inside Tdp_obs. *)
module Obs = Tdp_obs
let m_evolve_ns = Obs.Metrics.histogram "evolution.evolve_ns"
let m_evolutions = Obs.Metrics.counter "evolution.changes"
let m_broken = Obs.Metrics.counter "evolution.views_broken"

type change =
  | Add_type of Type_def.t
  | Add_attribute of { ty : Type_name.t; attr : Attribute.t }
  | Remove_attribute of Attr_name.t
      (** accessors for the attribute are cascaded away *)
  | Add_method of Method_def.t
  | Remove_method of Method_def.Key.t
  | Rename_attribute of { from_ : Attr_name.t; to_ : Attr_name.t }
      (** the relational rename operator, as schema evolution: the
          owner's attribute, its accessors, and the catalog's view
          expressions are all rewritten *)

let pp_change ppf = function
  | Add_type d -> Fmt.pf ppf "add type %a" Type_name.pp (Type_def.name d)
  | Add_attribute { ty; attr } ->
      Fmt.pf ppf "add attribute %a to %a" Attribute.pp attr Type_name.pp ty
  | Remove_attribute a -> Fmt.pf ppf "remove attribute %a" Attr_name.pp a
  | Add_method m -> Fmt.pf ppf "add method %s.%s" (Method_def.gf m) (Method_def.id m)
  | Remove_method k ->
      Fmt.pf ppf "remove method %s.%s" (Method_def.Key.gf k) (Method_def.Key.id k)
  | Rename_attribute { from_; to_ } ->
      Fmt.pf ppf "rename attribute %a to %a" Attr_name.pp from_ Attr_name.pp to_

type view_impact = {
  view : string;
  status : [ `Ok | `Broken of Error.t ];
  gained : Method_def.Key.Set.t;  (** methods newly applicable to the view type *)
  lost : Method_def.Key.Set.t;
}

type report = { change : change; impacts : view_impact list }

let pp_impact ppf i =
  let names s =
    String.concat ", "
      (List.map (Fmt.str "%a" Method_def.Key.pp) (Method_def.Key.Set.elements s))
  in
  match i.status with
  | `Broken e -> Fmt.pf ppf "view %s: BROKEN (%a)" i.view Error.pp e
  | `Ok ->
      if Method_def.Key.Set.is_empty i.gained && Method_def.Key.Set.is_empty i.lost
      then Fmt.pf ppf "view %s: unchanged" i.view
      else Fmt.pf ppf "view %s: +{%s} -{%s}" i.view (names i.gained) (names i.lost)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%a@ %a@]" pp_change r.change
    Fmt.(list ~sep:(any "@ ") pp_impact)
    r.impacts

let applicable_keys schema ty_ =
  let index = Schema_index.of_hierarchy (Schema.hierarchy schema) in
  Method_def.Key.Set.of_list
    (List.map Method_def.key (Schema.methods_applicable_to_type schema index ty_))

(* Apply a change to a base (view-free) schema; validates the result. *)
let apply_change_exn schema change =
  let schema =
    match change with
    | Add_type d -> Schema.add_type schema d
    | Add_attribute { ty; attr } ->
        Schema.map_hierarchy schema (fun h ->
            Hierarchy.update h ty (fun d -> Type_def.add_attr d attr))
    | Remove_attribute a -> (
        match Hierarchy.attr_owner (Schema.hierarchy schema) a with
        | None -> Error.raise_ (Unknown_attribute a)
        | Some owner ->
            let schema =
              Schema.map_hierarchy schema (fun h ->
                  Hierarchy.update h owner (fun d -> Type_def.remove_attr d a))
            in
            (* cascade: drop the accessors of the removed attribute *)
            List.fold_left
              (fun schema m ->
                match Method_def.accessed_attr m with
                | Some a' when Attr_name.equal a a' ->
                    Schema.remove_method schema (Method_def.key m)
                | Some _ | None -> schema)
              schema (Schema.all_methods schema))
    | Add_method m -> Schema.add_method schema m
    | Remove_method k ->
        ignore (Schema.find_method schema k);
        Schema.remove_method schema k
    | Rename_attribute { from_; to_ } -> (
        let h = Schema.hierarchy schema in
        Hierarchy.fold
          (fun d () ->
            if Type_def.has_local_attr d to_ then
              Error.raise_
                (Duplicate_attribute { attr = to_; types = [ Type_def.name d ] }))
          h ();
        match Hierarchy.attr_owner h from_ with
        | None -> Error.raise_ (Unknown_attribute from_)
        | Some owner ->
            let schema =
              Schema.map_hierarchy schema (fun h ->
                  Hierarchy.update h owner (fun d ->
                      Type_def.with_attrs d
                        (List.map
                           (fun a ->
                             if Attr_name.equal (Attribute.name a) from_ then
                               Attribute.make to_ (Attribute.ty a)
                             else a)
                           (Type_def.attrs d))))
            in
            (* rewrite the accessors of the renamed attribute *)
            List.fold_left
              (fun schema m ->
                match Method_def.accessed_attr m with
                | Some a when Attr_name.equal a from_ ->
                    Schema.update_method schema (Method_def.key m) (fun m ->
                        Method_def.with_kind m
                          (match Method_def.kind m with
                          | Reader _ -> Reader to_
                          | Writer _ -> Writer to_
                          | General b -> General b))
                | Some _ | None -> schema)
              schema (Schema.all_methods schema))
  in
  Schema.validate_exn schema;
  Typing.check_all_methods schema;
  schema

(* Evolve the base schema under the catalog's views: unwind, change,
   re-derive, and report per-view impact.  Views that no longer derive
   are dropped from the resulting catalog and reported as broken. *)
let evolve_exn_uninstrumented catalog change =
  let before_entries = Catalog.entries catalog in
  let before_schema = Catalog.schema catalog in
  (* unwind in reverse definition order *)
  let unwound =
    List.fold_left
      (fun c (e : Catalog.entry) -> Catalog.drop_exn c ~name:e.name)
      catalog (List.rev before_entries)
  in
  let base = apply_change_exn (Catalog.schema unwound) change in
  (* renames propagate into the stored view expressions *)
  let rewrite_expr =
    match change with
    | Rename_attribute { from_; to_ } ->
        View.map_attrs (fun a -> if Attr_name.equal a from_ then to_ else a)
    | Add_type _ | Add_attribute _ | Remove_attribute _ | Add_method _
    | Remove_method _ ->
        Fun.id
  in
  let rederived, impacts =
    List.fold_left
      (fun (c, impacts) (e : Catalog.entry) ->
        let before_keys = applicable_keys before_schema e.view_type in
        match Catalog.define c ~name:e.name (rewrite_expr e.expr) with
        | Ok (c, entry) ->
            let after_keys = applicable_keys (Catalog.schema c) entry.view_type in
            ( c,
              { view = e.name;
                status = `Ok;
                gained = Method_def.Key.Set.diff after_keys before_keys;
                lost = Method_def.Key.Set.diff before_keys after_keys
              }
              :: impacts )
        | Error err ->
            ( c,
              { view = e.name;
                status = `Broken err;
                gained = Method_def.Key.Set.empty;
                lost = before_keys
              }
              :: impacts ))
      (Catalog.create base, [])
      before_entries
  in
  (rederived, { change; impacts = List.rev impacts })

let evolve_exn catalog change =
  Obs.Metrics.time m_evolve_ns (fun () ->
      let attrs =
        if Obs.Trace.enabled () then
          [ ("change", Fmt.str "%a" pp_change change) ]
        else []
      in
      Obs.Trace.with_span ~attrs "evolution.evolve" (fun () ->
          let catalog', report = evolve_exn_uninstrumented catalog change in
          Obs.Metrics.incr m_evolutions;
          Obs.Metrics.add m_broken
            (List.length
               (List.filter
                  (fun i -> match i.status with `Broken _ -> true | `Ok -> false)
                  report.impacts));
          (catalog', report)))

let evolve catalog change = Error.guard (fun () -> evolve_exn catalog change)
