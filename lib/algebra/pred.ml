open Tdp_core

type op = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Cmp of { attr : Attr_name.t; op : op; value : Body.literal }
  | And of t * t
  | Or of t * t
  | Not of t
  | True

let cmp attr op value = Cmp { attr; op; value }

let rec attrs = function
  | Cmp { attr; _ } -> Attr_name.Set.singleton attr
  | And (a, b) | Or (a, b) -> Attr_name.Set.union (attrs a) (attrs b)
  | Not a -> attrs a
  | True -> Attr_name.Set.empty

(* A literal is comparable to an attribute type when the kinds agree;
   ordering comparisons require numeric kinds (int, float, or the
   year-valued date).  Object-typed attributes cannot be compared to
   literals at all. *)
let literal_compatible (lit : Body.literal) (vt : Value_type.t) op =
  let equality = match op with Eq | Ne -> true | Lt | Le | Gt | Ge -> false in
  match (vt, lit) with
  | Value_type.Prim (Int | Date), (Int _ | Float _) -> true
  | Value_type.Prim Float, (Int _ | Float _) -> true
  | Value_type.Prim String, String _ -> equality
  | Value_type.Prim Bool, Bool _ -> equality
  | _, Null -> equality
  | (Value_type.Prim _ | Value_type.Named _ | Value_type.Unknown), _ -> false

(* Every attribute the predicate mentions must be in the cumulative
   state of [ty], and every comparison must be well-typed. *)
let rec check_exn h ty_ p =
  match p with
  | True -> ()
  | Not a -> check_exn h ty_ a
  | And (a, b) | Or (a, b) ->
      check_exn h ty_ a;
      check_exn h ty_ b
  | Cmp { attr; op; value } -> (
      match Hierarchy.find_attribute h ty_ attr with
      | None -> Error.raise_ (Attribute_not_available { ty = ty_; attr })
      | Some a ->
          if not (literal_compatible value (Attribute.ty a) op) then
            Error.raise_
              (Invariant_violation
                 (Fmt.str "predicate compares attribute %s (: %s) with %s"
                    (Attr_name.to_string attr)
                    (Fmt.str "%a" Value_type.pp (Attribute.ty a))
                    (Fmt.str "%a" Body.pp_literal value))))

let rec map_attrs f = function
  | Cmp { attr; op; value } -> Cmp { attr = f attr; op; value }
  | And (a, b) -> And (map_attrs f a, map_attrs f b)
  | Or (a, b) -> Or (map_attrs f a, map_attrs f b)
  | Not a -> Not (map_attrs f a)
  | True -> True

let op_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp ppf = function
  | Cmp { attr; op; value } ->
      Fmt.pf ppf "%a %s %a" Attr_name.pp attr (op_to_string op) Body.pp_literal value
  | And (a, b) -> Fmt.pf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a or %a)" pp a pp b
  | Not a -> Fmt.pf ppf "(not %a)" pp a
  | True -> Fmt.string ppf "true"

(* Whether [op] holds of a three-way comparison outcome; total over
   every operator, so equality over the numeric interpretation (where
   Int 1 == Float 1.0) is also expressible. *)
let op_holds op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let compare_values op (a : Tdp_store.Value.t) (b : Tdp_store.Value.t) =
  let num v =
    match (v : Tdp_store.Value.t) with
    | Int i -> Some (float_of_int i)
    | Float f -> Some f
    | Date y -> Some (float_of_int y)
    | String _ | Bool _ | Ref _ | Null -> None
  in
  match op with
  (* structural (in)equality works for every value kind *)
  | Eq -> Tdp_store.Value.equal a b
  | Ne -> not (Tdp_store.Value.equal a b)
  | Lt | Le | Gt | Ge -> (
      match (num a, num b) with
      | Some x, Some y -> op_holds op (Float.compare x y)
      | _ -> false)

(* Evaluate a predicate against a stored object. *)
let rec eval db oid = function
  | True -> true
  | Not p -> not (eval db oid p)
  | And (a, b) -> eval db oid a && eval db oid b
  | Or (a, b) -> eval db oid a || eval db oid b
  | Cmp { attr; op; value } ->
      let v = Tdp_store.Database.get_attr db oid attr in
      compare_values op v (Tdp_store.Value.of_literal value)

(* ---- vectorized scans ----------------------------------------------- *)

(* Scanning a predicate over an extent per-object costs an OID hash
   lookup plus a map lookup per atom per object.  The columnar layer
   exposes the raw per-attribute arrays, so instead each atom compiles,
   once per block, to an [int -> bool] over row ids that reads the
   unboxed column directly; the combinators compose closures.  Every
   fast path below reproduces [compare_values] exactly — structural
   (in)equality (so [Int 1 <> Float 1.0], and null only equals the null
   literal), numeric ordering through float conversion, non-numeric
   ordering false. *)

module Database = Tdp_store.Database
module Columns = Tdp_store.Columns
module Value = Tdp_store.Value

module Obs = Tdp_obs
let m_scan_ns = Obs.Metrics.histogram "pred.scan_ns"

let compile_cmp db block attr op (lit : Body.literal) =
  match Columns.pos block attr with
  | None ->
      (* raise lazily, per row, exactly like the per-object path — an
         atom short-circuited away by And/Or must not raise.  get_attr
         is expected to raise (the block has no such column); if it
         somehow answers, the block/schema layouts disagree and that is
         a structured invariant failure, never a bare assert *)
      fun r ->
        let oid = Columns.oid_at block r in
        ignore (Database.get_attr db oid attr);
        raise
          (Database.Store_error
             (Fmt.str
                "pred scan: attribute %s missing from the block layout but \
                 present on object #%d — block/schema layouts disagree"
                (Tdp_core.Attr_name.to_string attr)
                (Tdp_store.Oid.to_int oid)))
  | Some ci -> (
      let col = block.Columns.b_cols.(ci) in
      let nulls = col.Columns.c_nulls in
      let is_null r = Bytes.get nulls r <> '\000' in
      let lit_v = Value.of_literal lit in
      let fallback r = compare_values op (Columns.read block ~row:r ~col:ci) lit_v in
      match op with
      | Lt | Le | Gt | Ge -> (
          let num_lit =
            match lit with
            | Body.Int i -> Some (float_of_int i)
            | Body.Float f -> Some f
            | Body.String _ | Body.Bool _ | Body.Null -> None
          in
          match (num_lit, col.Columns.c_data) with
          | None, _ -> fun _ -> false
          | Some y, (Columns.Ints a | Columns.Dates a) ->
              fun r ->
                (not (is_null r)) && op_holds op (Float.compare (float_of_int a.(r)) y)
          | Some y, Columns.Floats a ->
              fun r -> (not (is_null r)) && op_holds op (Float.compare a.(r) y)
          | Some _, (Columns.Strings _ | Columns.Bools _ | Columns.Refs _) ->
              fun _ -> false
          | Some _, Columns.Boxed _ -> fallback)
      | Eq | Ne -> (
          (* [Some f]: f r = Value.equal (row value) lit_v *)
          let equal_row : (int -> bool) option =
            match (col.Columns.c_data, lit) with
            | _, Body.Null -> Some is_null
            | Columns.Ints a, Body.Int i ->
                Some (fun r -> (not (is_null r)) && a.(r) = i)
            | Columns.Floats a, Body.Float f ->
                Some (fun r -> (not (is_null r)) && Float.equal a.(r) f)
            | Columns.Strings a, Body.String s -> (
                match Columns.Pool.find block.Columns.b_pool s with
                | Some sid -> Some (fun r -> (not (is_null r)) && a.(r) = sid)
                | None -> Some (fun _ -> false))
            | Columns.Bools bs, Body.Bool bv ->
                let byte = if bv then '\001' else '\000' in
                Some (fun r -> (not (is_null r)) && Bytes.get bs r = byte)
            | Columns.Boxed _, _ -> None
            | ( (Columns.Ints _ | Columns.Floats _ | Columns.Strings _
                | Columns.Bools _ | Columns.Dates _ | Columns.Refs _),
                (Body.Int _ | Body.Float _ | Body.String _ | Body.Bool _) ) ->
                (* kind mismatch: structurally unequal for every row,
                   null or not (Date vs Int included — [Value.equal]
                   never crosses constructors) *)
                Some (fun _ -> false)
          in
          match equal_row with
          | None -> fallback
          | Some f -> if op = Eq then f else fun r -> not (f r)))

let compile db block p =
  let rec go = function
    | True -> fun _ -> true
    | Not a ->
        let f = go a in
        fun r -> not (f r)
    | And (a, b) ->
        let fa = go a and fb = go b in
        fun r -> fa r && fb r
    | Or (a, b) ->
        let fa = go a and fb = go b in
        fun r -> fa r || fb r
    | Cmp { attr; op; value } -> compile_cmp db block attr op value
  in
  go p

let scan db ty p =
  Obs.Metrics.time m_scan_ns (fun () ->
      let per_block b =
        let f = compile db b p in
        let out = ref [] in
        Columns.iter_live b (fun r -> if f r then out := Columns.oid_at b r :: !out);
        let l = List.rev !out in
        if Columns.is_sorted b then l else List.sort Tdp_store.Oid.compare l
      in
      List.fold_left
        (fun acc b -> List.merge Tdp_store.Oid.compare acc (per_block b))
        [] (Database.scan_blocks db ty))
