open Tdp_core

type op = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Cmp of { attr : Attr_name.t; op : op; value : Body.literal }
  | And of t * t
  | Or of t * t
  | Not of t
  | True

let cmp attr op value = Cmp { attr; op; value }

let rec attrs = function
  | Cmp { attr; _ } -> Attr_name.Set.singleton attr
  | And (a, b) | Or (a, b) -> Attr_name.Set.union (attrs a) (attrs b)
  | Not a -> attrs a
  | True -> Attr_name.Set.empty

(* A literal is comparable to an attribute type when the kinds agree;
   ordering comparisons require numeric kinds (int, float, or the
   year-valued date).  Object-typed attributes cannot be compared to
   literals at all. *)
let literal_compatible (lit : Body.literal) (vt : Value_type.t) op =
  let equality = match op with Eq | Ne -> true | Lt | Le | Gt | Ge -> false in
  match (vt, lit) with
  | Value_type.Prim (Int | Date), (Int _ | Float _) -> true
  | Value_type.Prim Float, (Int _ | Float _) -> true
  | Value_type.Prim String, String _ -> equality
  | Value_type.Prim Bool, Bool _ -> equality
  | _, Null -> equality
  | (Value_type.Prim _ | Value_type.Named _ | Value_type.Unknown), _ -> false

(* Every attribute the predicate mentions must be in the cumulative
   state of [ty], and every comparison must be well-typed. *)
let rec check_exn h ty_ p =
  match p with
  | True -> ()
  | Not a -> check_exn h ty_ a
  | And (a, b) | Or (a, b) ->
      check_exn h ty_ a;
      check_exn h ty_ b
  | Cmp { attr; op; value } -> (
      match Hierarchy.find_attribute h ty_ attr with
      | None -> Error.raise_ (Attribute_not_available { ty = ty_; attr })
      | Some a ->
          if not (literal_compatible value (Attribute.ty a) op) then
            Error.raise_
              (Invariant_violation
                 (Fmt.str "predicate compares attribute %s (: %s) with %s"
                    (Attr_name.to_string attr)
                    (Fmt.str "%a" Value_type.pp (Attribute.ty a))
                    (Fmt.str "%a" Body.pp_literal value))))

let rec map_attrs f = function
  | Cmp { attr; op; value } -> Cmp { attr = f attr; op; value }
  | And (a, b) -> And (map_attrs f a, map_attrs f b)
  | Or (a, b) -> Or (map_attrs f a, map_attrs f b)
  | Not a -> Not (map_attrs f a)
  | True -> True

let op_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp ppf = function
  | Cmp { attr; op; value } ->
      Fmt.pf ppf "%a %s %a" Attr_name.pp attr (op_to_string op) Body.pp_literal value
  | And (a, b) -> Fmt.pf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a or %a)" pp a pp b
  | Not a -> Fmt.pf ppf "(not %a)" pp a
  | True -> Fmt.string ppf "true"

(* Whether [op] holds of a three-way comparison outcome; total over
   every operator, so equality over the numeric interpretation (where
   Int 1 == Float 1.0) is also expressible. *)
let op_holds op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let compare_values op (a : Tdp_store.Value.t) (b : Tdp_store.Value.t) =
  let num v =
    match (v : Tdp_store.Value.t) with
    | Int i -> Some (float_of_int i)
    | Float f -> Some f
    | Date y -> Some (float_of_int y)
    | String _ | Bool _ | Ref _ | Null -> None
  in
  match op with
  (* structural (in)equality works for every value kind *)
  | Eq -> Tdp_store.Value.equal a b
  | Ne -> not (Tdp_store.Value.equal a b)
  | Lt | Le | Gt | Ge -> (
      match (num a, num b) with
      | Some x, Some y -> op_holds op (Float.compare x y)
      | _ -> false)

(* Evaluate a predicate against a stored object. *)
let rec eval db oid = function
  | True -> true
  | Not p -> not (eval db oid p)
  | And (a, b) -> eval db oid a && eval db oid b
  | Or (a, b) -> eval db oid a || eval db oid b
  | Cmp { attr; op; value } ->
      let v = Tdp_store.Database.get_attr db oid attr in
      compare_values op v (Tdp_store.Value.of_literal value)
