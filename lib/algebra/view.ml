open Tdp_core

type expr =
  | Base of Type_name.t
  | Project of expr * Attr_name.t list
  | Select of expr * Pred.t
  | Generalize of expr * expr
  | Join of expr * expr

type step =
  | Projected of Projection.outcome
  | Selected of { name : Type_name.t; source : Type_name.t; pred : Pred.t }
  | Generalized of Generalize.outcome
  | Joined of { name : Type_name.t; left : Type_name.t; right : Type_name.t }

type outcome = {
  schema : Schema.t;
  name : Type_name.t;
  steps : step list;  (** innermost first *)
}

(* Rename the attributes a view expression mentions (projection lists
   and selection predicates); used by schema evolution. *)
let rec map_attrs f = function
  | Base n -> Base n
  | Project (e, attrs) -> Project (map_attrs f e, List.map f attrs)
  | Select (e, p) -> Select (map_attrs f e, Pred.map_attrs f p)
  | Generalize (a, b) -> Generalize (map_attrs f a, map_attrs f b)
  | Join (a, b) -> Join (map_attrs f a, map_attrs f b)

let rec pp_expr ppf = function
  | Base n -> Type_name.pp ppf n
  | Project (e, attrs) ->
      Fmt.pf ppf "project %a on [%a]" pp_expr e
        Fmt.(list ~sep:comma Attr_name.pp)
        attrs
  | Select (e, p) -> Fmt.pf ppf "select %a where %a" pp_expr e Pred.pp p
  | Generalize (a, b) -> Fmt.pf ppf "generalize %a with %a" pp_expr a pp_expr b
  | Join (a, b) -> Fmt.pf ppf "join %a with %a" pp_expr a pp_expr b

(* Derive the type of a view expression, threading the schema through
   each algebraic step.  Projection uses the paper's full pipeline;
   selection derives a {e subtype} of its source carrying no new state
   — every instance of the selection is an instance of the source, and
   all the source's methods remain applicable by plain inheritance.

   Each step is tagged with a distinct "view#i" so that {!Catalog} can
   undo the steps individually (surrogates record the tag in their
   origin). *)
let rec derive_step ?check counter schema ~view ?name expr =
  let fresh_tag () =
    incr counter;
    Fmt.str "%s#%d" view !counter
  in
  match expr with
  | Base n ->
      ignore (Hierarchy.find (Schema.hierarchy schema) n);
      { schema; name = n; steps = [] }
  | Project (sub, projection) ->
      let inner = derive_step ?check counter schema ~view sub in
      let o =
        Projection.project_exn ?check inner.schema ~view:(fresh_tag ())
          ?derived_name:name ~source:inner.name ~projection ()
      in
      { schema = o.schema; name = o.derived; steps = inner.steps @ [ Projected o ] }
  | Select (sub, pred) ->
      let inner = derive_step ?check counter schema ~view sub in
      let h = Schema.hierarchy inner.schema in
      Pred.check_exn h inner.name pred;
      let sel_name =
        match name with
        | Some n ->
            if Hierarchy.mem h n then Error.raise_ (Duplicate_type n);
            n
        | None ->
            Hierarchy.fresh_name h
              (Type_name.of_string (Type_name.to_string inner.name ^ "_sel"))
      in
      let def =
        Type_def.make
          ~origin:(Surrogate { source = inner.name; view = fresh_tag () })
          ~supers:[ (inner.name, 1) ]
          sel_name
      in
      let schema = Schema.map_hierarchy inner.schema (fun h -> Hierarchy.add h def) in
      { schema;
        name = sel_name;
        steps = inner.steps @ [ Selected { name = sel_name; source = inner.name; pred } ]
      }
  | Generalize (a, b) ->
      let ia = derive_step ?check counter schema ~view a in
      let ib = derive_step ?check counter ia.schema ~view b in
      let h = Schema.hierarchy ib.schema in
      let gen_name =
        match name with
        | Some n ->
            if Hierarchy.mem h n then Error.raise_ (Duplicate_type n);
            n
        | None ->
            Hierarchy.fresh_name h
              (Type_name.of_string (Type_name.to_string ia.name ^ "_gen"))
      in
      let o =
        Generalize.generalize_exn ?check ib.schema ~view:(fresh_tag ())
          ~name:gen_name ia.name ib.name
      in
      { schema = o.schema;
        name = o.name;
        steps = ia.steps @ ib.steps @ [ Generalized o ]
      }
  | Join (a, b) ->
      let ia = derive_step ?check counter schema ~view a in
      let ib = derive_step ?check counter ia.schema ~view b in
      let h = Schema.hierarchy ib.schema in
      let join_name =
        match name with
        | Some n ->
            if Hierarchy.mem h n then Error.raise_ (Duplicate_type n);
            n
        | None ->
            Hierarchy.fresh_name h
              (Type_name.of_string (Type_name.to_string ia.name ^ "_join"))
      in
      let o = Join.derive_exn ib.schema ~name:join_name ia.name ib.name in
      { schema = o.schema;
        name = o.name;
        steps =
          ia.steps @ ib.steps
          @ [ Joined { name = o.name; left = ia.name; right = ib.name } ]
      }

let derive_exn ?check schema ~view ?name expr =
  derive_step ?check (ref 0) schema ~view ?name expr

let derive ?check schema ~view ?name expr =
  Error.guard (fun () -> derive_exn ?check schema ~view ?name expr)

(* Instantiation of a view over a database, with view-type identity
   semantics: a projection view's instances are the source instances
   themselves; a selection filters them.  Since the projection pipeline
   makes the derived type a supertype of its source, the Base case's
   deep extent already contains everything.

   A Project/Select chain over a Base flattens to (base type, combined
   predicate) — projection contributes nothing at instance level — and
   runs through the vectorized [Pred.scan] instead of per-object
   filtering.  The conjunction keeps inner-predicate-first order, so
   per-row evaluation (and short-circuiting) matches the nested
   filters it replaces. *)
let rec flatten = function
  | Base n -> Some (n, None)
  | Project (e, _) -> flatten e
  | Select (e, p) -> (
      match flatten e with
      | Some (n, None) -> Some (n, Some p)
      | Some (n, Some q) -> Some (n, Some (Pred.And (q, p)))
      | None -> None)
  | Generalize _ | Join _ -> None

let rec has_join = function
  | Base _ -> false
  | Project (e, _) | Select (e, _) -> has_join e
  | Generalize (a, b) -> has_join a || has_join b
  | Join _ -> true

let rec instances db expr =
  match flatten expr with
  | Some (n, None) -> Tdp_store.Database.extent db n
  | Some (n, Some p) -> Pred.scan db n p
  | None -> (
      match expr with
      | Base _ -> assert false (* a Base always flattens *)
      | Project (e, _) -> instances db e
      | Select (e, pred) ->
          List.filter (fun oid -> Pred.eval db oid pred) (instances db e)
      | Generalize (a, b) ->
          List.sort_uniq Tdp_store.Oid.compare (instances db a @ instances db b)
      | Join _ ->
          (* a join instance is a pair of operand instances, not an
             existing object; only Join.materialize over named operand
             types gives joins a data plane *)
          Error.raise_
            (Invariant_violation
               "join views have no identity instances; use Join.materialize"))

(* Materialization: copy each view instance into a fresh object of the
   derived view type, carrying exactly the view's attributes. *)
let materialize db ~view_type expr =
  let h = Tdp_store.Database.hierarchy db in
  let attrs = Hierarchy.all_attribute_names h view_type in
  List.map
    (fun src ->
      let init =
        List.map (fun a -> (a, Tdp_store.Database.get_attr db src a)) attrs
      in
      Tdp_store.Database.new_object db view_type ~init)
    (instances db expr)

(* Lower a view expression to the inference IR.  [is_ref] decides
   whether a base name refers to an earlier view of the same program
   (a row shared with that view's result) or to a source type (a row
   parameter).  Predicates flatten to their comparison atoms: like
   [Pred.check_exn], every atom must type-check regardless of the
   and/or/not structure around it. *)
let rec pred_atoms (p : Pred.t) =
  match p with
  | True -> []
  | Not a -> pred_atoms a
  | And (a, b) | Or (a, b) -> pred_atoms a @ pred_atoms b
  | Cmp { attr; op; value } ->
      let ordered =
        match op with Eq | Ne -> false | Lt | Le | Gt | Ge -> true
      in
      [ Tdp_infer.Pipeline.atom ~ordered attr value ]

let rec to_pipeline ~is_ref (e : expr) : Tdp_infer.Pipeline.node =
  match e with
  | Base n ->
      if is_ref n then Ref (Type_name.to_string n) else Source n
  | Project (e, attrs) -> Project (to_pipeline ~is_ref e, attrs)
  | Select (e, p) -> Select (to_pipeline ~is_ref e, pred_atoms p)
  | Generalize (a, b) -> Generalize (to_pipeline ~is_ref a, to_pipeline ~is_ref b)
  | Join (a, b) -> Join (to_pipeline ~is_ref a, to_pipeline ~is_ref b)
