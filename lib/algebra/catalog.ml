open Tdp_core

(* A catalog of named views over a schema: the bookkeeping a database
   system would keep around the paper's algorithms.  Views are defined
   by algebraic expressions, derive their types through {!View}, and
   can be dropped again — the catalog undoes each derivation step in
   reverse, using {!Unfactor} for projections, un-splicing for
   generalizations, and plain removal for selection types. *)

type entry = {
  name : string;
  expr : View.expr;
  view_type : Type_name.t;
  steps : View.step list;
}

type t = { schema : Schema.t; entries : entry list (* oldest first *) }

let create schema = { schema; entries = [] }
let schema t = t.schema
let entries t = t.entries

let find_opt t name =
  List.find_opt (fun e -> String.equal e.name name) t.entries

let view_types t = List.map (fun e -> e.view_type) t.entries

(* Lower the catalog's entries plus a candidate expression to a
   pipeline program, in definition order: each entry may reference the
   entries defined before it. *)
let program_of t ~name expr =
  let prog, seen =
    List.fold_left
      (fun (acc, seen) e ->
        let is_ref n = List.mem (Type_name.to_string n) seen in
        ((e.name, View.to_pipeline ~is_ref e.expr) :: acc, e.name :: seen))
      ([], []) t.entries
  in
  let is_ref n = List.mem (Type_name.to_string n) seen in
  List.rev ((name, View.to_pipeline ~is_ref expr) :: prog)

(* Typecheck a candidate view once, before any derivation: infer its
   principal schema in the context of the already-defined entries and
   check this catalog's schema instantiates it. *)
let typecheck t ~name expr =
  let prog = program_of t ~name expr in
  match List.assoc_opt name (Tdp_infer.Infer.infer_program prog) with
  | Some (Ok principal) -> (
      match Tdp_infer.Infer.admits t.schema principal with
      | Ok () -> Ok principal
      | Error e -> Error e)
  | Some (Error e) -> Error e
  | None -> Error (Tdp_infer.Infer.Ill_typed { view = name; reason = "not solved" })

let define_exn t ~name expr =
  if find_opt t name <> None then
    Error.raise_ (Invariant_violation (Fmt.str "view %S already defined" name));
  let o =
    View.derive_exn t.schema ~view:name ~name:(Type_name.of_string name) expr
  in
  let entry = { name; expr; view_type = o.name; steps = o.steps } in
  ({ schema = o.schema; entries = t.entries @ [ entry ] }, entry)

let define t ~name expr = Error.guard (fun () -> define_exn t ~name expr)

(* Remove a selection type: it carries no state and no methods mention
   it, but another type may have been derived below it. *)
let remove_selection schema name =
  let h = Schema.hierarchy schema in
  (match Hierarchy.direct_subs h name with
  | [] -> ()
  | sub :: _ ->
      Error.raise_
        (Invariant_violation
           (Fmt.str "cannot drop selection %s: %s depends on it"
              (Type_name.to_string name) (Type_name.to_string sub))));
  if
    Type_name.Set.mem name (Optimize.mentioned_types schema)
  then
    Error.raise_
      (Invariant_violation
         (Fmt.str "cannot drop selection %s: methods mention it"
            (Type_name.to_string name)));
  Schema.with_hierarchy schema (Hierarchy.remove h name)

(* Un-splice a generalization type W: restore the derived projection
   type's supertypes and unlink the second operand. *)
let remove_generalization schema (o : Generalize.outcome) =
  let h = Schema.hierarchy schema in
  let w = o.name in
  let derived = o.projection.derived in
  let _, t2 = o.operands in
  (match
     List.filter
       (fun sub ->
         not
           (Type_name.equal sub derived || Type_name.equal sub t2))
       (Hierarchy.direct_subs h w)
   with
  | [] -> ()
  | sub :: _ ->
      Error.raise_
        (Invariant_violation
           (Fmt.str "cannot drop generalization %s: %s depends on it"
              (Type_name.to_string w) (Type_name.to_string sub))));
  let w_supers = Type_def.supers (Hierarchy.find h w) in
  let h =
    Hierarchy.update h derived (fun def ->
        if
          List.exists (fun (s, _) -> Type_name.equal s w) (Type_def.supers def)
        then Type_def.with_supers def w_supers
        else def)
  in
  let h =
    Hierarchy.update h t2 (fun def ->
        Type_def.with_supers def
          (List.filter (fun (s, _) -> not (Type_name.equal s w)) (Type_def.supers def)))
  in
  Schema.with_hierarchy schema (Hierarchy.remove h w)

(* A join type is a fresh leaf exactly like a selection type: no
   state of its own, removable when nothing depends on it. *)
let remove_join schema name =
  let h = Schema.hierarchy schema in
  (match Hierarchy.direct_subs h name with
  | [] -> ()
  | sub :: _ ->
      Error.raise_
        (Invariant_violation
           (Fmt.str "cannot drop join %s: %s depends on it"
              (Type_name.to_string name) (Type_name.to_string sub))));
  if Type_name.Set.mem name (Optimize.mentioned_types schema) then
    Error.raise_
      (Invariant_violation
         (Fmt.str "cannot drop join %s: methods mention it"
            (Type_name.to_string name)));
  Schema.with_hierarchy schema (Hierarchy.remove h name)

let undo_step schema (step : View.step) =
  match step with
  | Projected o -> Unfactor.drop_view_exn schema ~view:o.view
  | Selected { name; _ } -> remove_selection schema name
  | Generalized o ->
      let schema = remove_generalization schema o in
      Unfactor.drop_view_exn schema ~view:o.projection.view
  | Joined { name; _ } -> remove_join schema name

let drop_exn t ~name =
  match find_opt t name with
  | None -> Error.raise_ (Invariant_violation (Fmt.str "no view named %S" name))
  | Some entry ->
      let schema =
        List.fold_left undo_step t.schema (List.rev entry.steps)
      in
      Schema.validate_exn schema;
      { schema;
        entries = List.filter (fun e -> not (String.equal e.name name)) t.entries
      }

let drop t ~name = Error.guard (fun () -> drop_exn t ~name)

(* Types a recorded derivation step depends on for its undo: the
   optimizer must not collapse them, or dropping the view would break. *)
let protected_of_step (step : View.step) =
  let of_surrogates map acc =
    Type_name.Map.fold (fun _ hat acc -> hat :: acc) map acc
  in
  match step with
  | Projected o -> o.derived :: of_surrogates o.surrogates []
  | Selected { name; _ } -> [ name ]
  | Generalized o ->
      o.name :: o.projection.derived :: of_surrogates o.projection.surrogates []
  | Joined { name; _ } -> [ name ]

(* Collapse empty surrogates, protecting every cataloged view type and
   every type the recorded undo steps reference. *)
let optimize_exn t =
  let protect =
    List.fold_left
      (fun acc e ->
        List.fold_left
          (fun acc step ->
            List.fold_left (fun acc n -> Type_name.Set.add n acc) acc
              (protected_of_step step))
          (Type_name.Set.add e.view_type acc)
          e.steps)
      Type_name.Set.empty t.entries
  in
  let schema, removed = Optimize.collapse_exn ~protect t.schema in
  ({ t with schema }, removed)

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:(any "@ ") (fun ppf e ->
          Fmt.pf ppf "view %s : %a = %a" e.name Type_name.pp e.view_type
            View.pp_expr e.expr))
    t.entries
