(** Maintained materialized views.

    Keeps a population of copy objects (of the view's derived type) in
    sync with the view's instance set.  Maintenance is deferred: call
    {!refresh} after base updates; it diffs the current instances
    against the tracked copies and adds, removes, and updates copies as
    needed.  Copy identity is stable across refreshes, so downstream
    references to copies survive updates to their sources. *)

open Tdp_core
module Oid = Tdp_store.Oid

type stats = { added : int; removed : int; updated : int }

val no_change : stats

type t

(** Materialize the view now; the initial population counts as adds. *)
val create : Tdp_store.Database.t -> view_type:Type_name.t -> View.expr -> t

val view_type : t -> Type_name.t

(** Source OID → copy OID. *)
val mapping : t -> Oid.t Oid.Map.t

(** Synchronize the copies with the view's current instances.

    Incremental: tracked pairs whose rows are unchanged since the last
    refresh (by the store's logical tick, {!Tdp_store.Database.tick})
    skip the attribute diff entirely; rows that did change are read
    once per side and diffed.  [~force:true] disables stamp skipping
    and re-diffs every pair — the result is always identical, [force]
    only removes the shortcut (benchmarks use it as the non-tracked
    baseline). *)
val refresh : ?force:bool -> Tdp_store.Database.t -> t -> stats

(** Copy OIDs, in source-OID order. *)
val copies : t -> Oid.t list

val pp_stats : stats Fmt.t
