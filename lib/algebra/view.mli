(** Composable algebraic views over object types.

    The paper treats projection in depth and leaves "the remaining
    algebraic operations" as future work (Section 7).  This module
    composes the projection pipeline with the easy case — selection,
    whose derived type is a plain subtype — into nestable view
    expressions (views over views), and provides both identity-based
    instantiation and copy-based materialization over a store. *)

open Tdp_core

type expr =
  | Base of Type_name.t
  | Project of expr * Attr_name.t list
  | Select of expr * Pred.t
  | Generalize of expr * expr
      (** union view over the operands' shared attributes, see
          {!Generalize} *)
  | Join of expr * expr
      (** common subtype carrying both operands' cumulative state, see
          {!Join}; fails when the operands are already ⪯-related *)

type step =
  | Projected of Projection.outcome
  | Selected of { name : Type_name.t; source : Type_name.t; pred : Pred.t }
  | Generalized of Generalize.outcome
  | Joined of { name : Type_name.t; left : Type_name.t; right : Type_name.t }

type outcome = {
  schema : Schema.t;  (** schema after all steps *)
  name : Type_name.t;  (** the view's derived type *)
  steps : step list;  (** innermost first *)
}

(** Rename the attributes mentioned in projection lists and selection
    predicates. *)
val map_attrs : (Attr_name.t -> Attr_name.t) -> expr -> expr

val pp_expr : expr Fmt.t

(** Derive the view's type, refactoring the hierarchy step by step.
    [name] names the outermost derived type.
    @raise Error.E on any failing step. *)
val derive_exn :
  ?check:bool -> Schema.t -> view:string -> ?name:Type_name.t -> expr -> outcome

val derive :
  ?check:bool ->
  Schema.t ->
  view:string ->
  ?name:Type_name.t ->
  expr ->
  (outcome, Error.t) Stdlib.result

(** Does the expression contain a [Join] anywhere?  Such views have no
    identity extent ({!instances} raises on them); callers that want a
    structured error instead of an exception pre-check with this. *)
val has_join : expr -> bool

(** View instances with identity semantics (projection keeps OIDs,
    selection filters).
    @raise Error.E on a [Join] view: a join instance is a {e pair} of
    operand instances, so joins have no identity semantics — use
    {!Join.materialize} over the operand types instead. *)
val instances : Tdp_store.Database.t -> expr -> Tdp_store.Oid.t list

(** Copy view instances into fresh objects of [view_type].
    @raise Error.E on a [Join] view, as {!instances}. *)
val materialize :
  Tdp_store.Database.t -> view_type:Type_name.t -> expr -> Tdp_store.Oid.t list

(** Lower a view expression to the inference IR ({!Tdp_infer.Pipeline}).
    [is_ref] decides whether a base name references an earlier view of
    the same program or names a source type; selection predicates
    flatten to their comparison atoms. *)
val to_pipeline : is_ref:(Type_name.t -> bool) -> expr -> Tdp_infer.Pipeline.node
