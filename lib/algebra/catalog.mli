(** A catalog of named views over a schema.

    Wraps the derivation machinery in the bookkeeping a database system
    keeps: views are defined by algebraic expressions and named types,
    and can be {e dropped} again — each derivation step is undone in
    reverse ({!Unfactor} for projections, un-splicing for
    generalizations, removal for selection types).  Dropping a view
    other views were derived through fails with a descriptive error;
    dropping in reverse definition order always succeeds. *)

open Tdp_core

type entry = {
  name : string;
  expr : View.expr;
  view_type : Type_name.t;  (** the derived type, named after the view *)
  steps : View.step list;
}

type t

val create : Schema.t -> t
val schema : t -> Schema.t

(** Entries in definition order. *)
val entries : t -> entry list

val find_opt : t -> string -> entry option
val view_types : t -> Type_name.t list

(** Typecheck a candidate view {e before} any derivation: infer its
    principal schema ({!Tdp_infer.Infer}) in the context of the
    already-defined entries, and check that this catalog's schema
    instantiates it.  A parameterized view can be checked once this way
    and bound many times. *)
val typecheck :
  t ->
  name:string ->
  View.expr ->
  (Tdp_infer.Infer.principal, Tdp_infer.Infer.error) result

(** @raise Error.E on duplicate name or any failing derivation step. *)
val define_exn : t -> name:string -> View.expr -> t * entry

val define : t -> name:string -> View.expr -> (t * entry, Error.t) result

(** @raise Error.E when the view is unknown or depended upon. *)
val drop_exn : t -> name:string -> t

val drop : t -> name:string -> (t, Error.t) result

(** {!Optimize.collapse_exn} protecting all cataloged view types {e and}
    every surrogate the recorded undo steps reference, so that views
    remain droppable afterwards; returns the removed surrogates. *)
val optimize_exn : t -> t * Type_name.t list

val pp : t Fmt.t
