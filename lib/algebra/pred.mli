(** Selection predicates over a type's attributes.

    Used by the selection operator (σ): the derived type of a selection
    has the same state as its source, so type derivation for σ is
    simple subtyping; the predicate only matters at instantiation
    time. *)

open Tdp_core

type op = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Cmp of { attr : Attr_name.t; op : op; value : Body.literal }
  | And of t * t
  | Or of t * t
  | Not of t
  | True

val cmp : Attr_name.t -> op -> Body.literal -> t

(** Attributes mentioned by the predicate. *)
val attrs : t -> Attr_name.Set.t

(** @raise Error.E [Attribute_not_available] if the predicate mentions
    an attribute outside the cumulative state of the type, or
    [Invariant_violation] on an ill-typed comparison (e.g. ordering a
    string attribute, or comparing an object-typed attribute to a
    literal). *)
val check_exn : Hierarchy.t -> Type_name.t -> t -> unit

(** Rename the attributes the predicate mentions. *)
val map_attrs : (Attr_name.t -> Attr_name.t) -> t -> t

val op_to_string : op -> string

(** [op_holds op c] applies [op] to a three-way comparison outcome [c]
    (total over all six operators). *)
val op_holds : op -> int -> bool

(** [compare_values op a b]: equality operators compare structurally;
    ordering operators compare numerically (int, float, date) and are
    [false] when either side is not numeric. *)
val compare_values : op -> Tdp_store.Value.t -> Tdp_store.Value.t -> bool

val pp : t Fmt.t

(** Evaluate against a stored object.
    @raise Tdp_store.Database.Store_error on a missing attribute. *)
val eval : Tdp_store.Database.t -> Tdp_store.Oid.t -> t -> bool

(** [scan db ty p] — the deep extent of [ty] filtered by [p], in OID
    order; equivalent to
    [List.filter (fun o -> eval db o p) (Database.extent db ty)] but
    vectorized: each comparison atom compiles, per columnar block, to a
    tight loop over the unboxed attribute column (interned-string id
    equality, raw numeric compares) instead of a per-object [get_attr].
    @raise Tdp_store.Database.Store_error on a missing attribute,
    [Error.E Unknown_type] as {!Tdp_store.Database.extent}. *)
val scan : Tdp_store.Database.t -> Type_name.t -> t -> Tdp_store.Oid.t list
