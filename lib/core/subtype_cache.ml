type t = Schema_index.t

let create h = Schema_index.of_hierarchy h
let index t = t
let ancestors_or_self = Schema_index.ancestor_set
let subtype = Schema_index.subtype
let hierarchy = Schema_index.hierarchy
