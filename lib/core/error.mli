(** Errors raised or returned by the library.

    Internal code raises [E]; public entry points catch it with {!guard}
    and expose [('a, t) result]. *)

type t =
  | Unknown_type of Type_name.t
  | Duplicate_type of Type_name.t
  | Unknown_attribute of Attr_name.t
  | Duplicate_attribute of { attr : Attr_name.t; types : Type_name.t list }
  | Attribute_not_available of { ty : Type_name.t; attr : Attr_name.t }
  | Cycle of Type_name.t list
  | Duplicate_super of { sub : Type_name.t; super : Type_name.t }
  | Self_super of Type_name.t
  | Duplicate_precedence of { sub : Type_name.t; prec : int }
  | Unknown_generic_function of string
  | Duplicate_method of { gf : string; id : string }
  | Arity_mismatch of { gf : string; expected : int; got : int }
  | Accessor_attr_not_inherited of { meth : string; attr : Attr_name.t }
  | Non_object_argument of { gf : string; position : int }
  | Unbound_variable of { meth : string; var : string }
  | Empty_projection
  | Linearization_failure of Type_name.t
  | Parse_error of { line : int; col : int; message : string }
  | Invariant_violation of string
  | At of { line : int; col : int; error : t }
      (** an error attributed to a source position (1-based), e.g. the
          declaration that an elaboration failure originates from *)

exception E of t

(** [raise_ e] raises [E e]. *)
val raise_ : t -> 'a

(** [with_position ~line ~col f] runs [f ()], wrapping any raised error
    in [At] — unless it already carries a position. *)
val with_position : line:int -> col:int -> (unit -> 'a) -> 'a

(** Source position of the error, if it carries one. *)
val position : t -> (int * int) option

(** The innermost error, with any [At] wrappers removed. *)
val strip : t -> t

(** Human-readable message of {!strip}, without position information. *)
val message : t -> string

val pp : t Fmt.t
val to_string : t -> string

(** [guard f] runs [f ()] and converts a raised [E e] into [Error e]. *)
val guard : (unit -> 'a) -> ('a, t) result
