(** The type hierarchy: a directed acyclic graph of type definitions.

    The hierarchy realizes the paper's model (Section 2): multiple
    inheritance, a precedence relationship among the direct supertypes
    of a type, inherit-once attribute semantics, and globally unique
    attribute names.  The subtype relation [⪯] is reachability along
    supertype edges; it is reflexive.

    Values of this type are immutable; the factoring algorithms build
    new hierarchies by functional update. *)

type t

val empty : t

(** The generation stamp of this hierarchy value: a monotonically
    increasing integer assigned at construction.  Every functional
    update ([add], [update], [remove], …) returns a value with a
    strictly larger stamp, so caches compiled from one hierarchy
    (e.g. {!Schema_index}) can detect with a single integer comparison
    that they are being queried against a different hierarchy value. *)
val generation : t -> int

val mem : t -> Type_name.t -> bool
val find_opt : t -> Type_name.t -> Type_def.t option

(** @raise Error.E [Unknown_type] if absent. *)
val find : t -> Type_name.t -> Type_def.t

(** @raise Error.E [Duplicate_type] if already present. *)
val add : t -> Type_def.t -> t

(** [update h n f] replaces the definition of [n] by [f def].
    @raise Error.E [Unknown_type] if absent. *)
val update : t -> Type_name.t -> (Type_def.t -> Type_def.t) -> t

(** All definitions, in name order. *)
val types : t -> Type_def.t list

val type_names : t -> Type_name.t list
val cardinal : t -> int
val fold : (Type_def.t -> 'a -> 'a) -> t -> 'a -> 'a

(** Direct supertypes with precedences, ascending precedence order. *)
val direct_supers : t -> Type_name.t -> (Type_name.t * int) list

val direct_super_names : t -> Type_name.t -> Type_name.t list
val direct_subs : t -> Type_name.t -> Type_name.t list

(** Proper ancestors (transitive supertypes, excluding the type itself). *)
val ancestors : t -> Type_name.t -> Type_name.Set.t

val ancestors_or_self : t -> Type_name.t -> Type_name.Set.t
val descendants : t -> Type_name.t -> Type_name.Set.t

(** [subtype h a b] is [a ⪯ b]: reflexive reachability along supertype
    edges. *)
val subtype : t -> Type_name.t -> Type_name.t -> bool

val proper_subtype : t -> Type_name.t -> Type_name.t -> bool
val supertype : t -> Type_name.t -> Type_name.t -> bool

(** The supertype closure of a type in precedence-first, visit-once
    depth-first order, starting with the type itself. *)
val precedence_order : t -> Type_name.t -> Type_name.t list

(** Cumulative state: all attributes, local and inherited (inherited
    once), in {!precedence_order}. *)
val all_attributes : t -> Type_name.t -> Attribute.t list

val all_attribute_names : t -> Type_name.t -> Attr_name.t list
val has_attribute : t -> Type_name.t -> Attr_name.t -> bool
val find_attribute : t -> Type_name.t -> Attr_name.t -> Attribute.t option

(** The type at which [attr] is locally defined, if any.
    @raise Error.E [Duplicate_attribute] if defined at several types. *)
val attr_owner : t -> Attr_name.t -> Type_name.t option

(** [available_at h n attrs] keeps the attributes of [attrs] that are in
    the cumulative state of [n], preserving the order of [attrs]. *)
val available_at : t -> Type_name.t -> Attr_name.t list -> Attr_name.t list

val roots : t -> Type_name.t list
val leaves : t -> Type_name.t list

(** [add_super h ~sub ~super ~prec] adds a supertype edge.
    @raise Error.E on unknown types or duplicate edge. *)
val add_super : t -> sub:Type_name.t -> super:Type_name.t -> prec:int -> t

(** [move_attr h ~attr ~from_ ~to_] relocates a local attribute, as the
    factoring algorithm does when spinning off a surrogate.
    @raise Error.E if [attr] is not local to [from_]. *)
val move_attr : t -> attr:Attr_name.t -> from_:Type_name.t -> to_:Type_name.t -> t

(** Remove a type definition.  The caller is responsible for rewiring
    dangling supertype edges (see [Tdp_algebra.Optimize]).
    @raise Error.E [Unknown_type]. *)
val remove : t -> Type_name.t -> t

(** A type name based on [base ^ "_hat"] not yet present in [t]. *)
val fresh_name : t -> Type_name.t -> Type_name.t

(** Checks: all supertypes exist, the graph is acyclic, attribute names
    are globally unique, and each type's supertype precedences are
    pairwise distinct.  @raise Error.E on the first violation. *)
val validate_exn : t -> unit

val validate : t -> (unit, Error.t) result

(** Structural equality: same types with same origins, attributes
    (in order) and supertype lists (with precedences). *)
val equal : t -> t -> bool

val pp : t Fmt.t
