type t = {
  defs : Type_def.t Type_name.Map.t;
  generation : int;
  (* Name-ordered views of [defs], forced at most once per hierarchy
     value.  Hierarchies are immutable, so the lists can never go
     stale; the lazies make functional updates O(log n) instead of
     paying the O(n) bindings walk eagerly on every [add]. *)
  types_memo : Type_def.t list Lazy.t;
  names_memo : Type_name.t list Lazy.t;
}

(* Every constructed hierarchy value gets a fresh stamp: two values
   with the same generation are the same value (modulo the shared
   [empty]), so derived structures such as [Schema_index] can detect
   staleness with one integer comparison. *)
let gen_counter = ref 0

let make defs =
  incr gen_counter;
  { defs;
    generation = !gen_counter;
    types_memo = lazy (List.map snd (Type_name.Map.bindings defs));
    names_memo = lazy (List.map fst (Type_name.Map.bindings defs))
  }

let empty = make Type_name.Map.empty
let generation h = h.generation
let mem h n = Type_name.Map.mem n h.defs
let find_opt h n = Type_name.Map.find_opt n h.defs

let find h n =
  match find_opt h n with
  | Some d -> d
  | None -> Error.raise_ (Unknown_type n)

let add h def =
  let n = Type_def.name def in
  if mem h n then Error.raise_ (Duplicate_type n);
  make (Type_name.Map.add n def h.defs)

let update h n f =
  let def = find h n in
  make (Type_name.Map.add n (f def) h.defs)

let types h = Lazy.force h.types_memo
let type_names h = Lazy.force h.names_memo
let cardinal h = Type_name.Map.cardinal h.defs
let fold f h init = Type_name.Map.fold (fun _ d acc -> f d acc) h.defs init

let direct_supers h n = Type_def.supers (find h n)
let direct_super_names h n = Type_def.super_names (find h n)

let direct_subs h n =
  fold
    (fun d acc -> if Type_def.has_super d n then Type_def.name d :: acc else acc)
    h []
  |> List.rev

(* Ancestors of [n], excluding [n] itself.  The visited set makes the
   walk terminate even on (invalid) cyclic input. *)
let ancestors h n =
  let rec go acc n =
    List.fold_left
      (fun acc s ->
        if Type_name.Set.mem s acc then acc else go (Type_name.Set.add s acc) s)
      acc (direct_super_names h n)
  in
  go Type_name.Set.empty n

let ancestors_or_self h n = Type_name.Set.add n (ancestors h n)

let descendants h n =
  fold
    (fun d acc ->
      let m = Type_def.name d in
      if (not (Type_name.equal m n)) && Type_name.Set.mem n (ancestors h m) then
        Type_name.Set.add m acc
      else acc)
    h Type_name.Set.empty

let subtype h a b = Type_name.equal a b || Type_name.Set.mem b (ancestors h a)
let proper_subtype h a b = (not (Type_name.equal a b)) && subtype h a b
let supertype h a b = subtype h b a

(* Supertype-closure walk in precedence-first, visit-once order: the
   type itself, then recursively each direct supertype in ascending
   precedence.  Because attribute names are unique, this order is only
   cosmetic for attribute collection, but it makes output deterministic
   and mirrors the paper's reading of the figures. *)
let precedence_order h n =
  let visited = ref Type_name.Set.empty in
  let out = ref [] in
  let rec go n =
    if not (Type_name.Set.mem n !visited) then begin
      visited := Type_name.Set.add n !visited;
      out := n :: !out;
      List.iter go (direct_super_names h n)
    end
  in
  go n;
  List.rev !out

let all_attributes h n =
  List.concat_map (fun m -> Type_def.attrs (find h m)) (precedence_order h n)

let all_attribute_names h n =
  List.map Attribute.name (all_attributes h n)

let has_attribute h n a =
  List.exists (Attr_name.equal a) (all_attribute_names h n)

let find_attribute h n a =
  List.find_opt
    (fun at -> Attr_name.equal (Attribute.name at) a)
    (all_attributes h n)

let attr_owner h a =
  let owners =
    fold
      (fun d acc -> if Type_def.has_local_attr d a then Type_def.name d :: acc else acc)
      h []
  in
  match owners with
  | [ o ] -> Some o
  | [] -> None
  | types -> Error.raise_ (Duplicate_attribute { attr = a; types })

(* Attributes of the list [attrs] that are available at [n], in the
   order they appear in [attrs] (the paper's "list of attributes in A
   that are available at s"). *)
let available_at h n attrs =
  List.filter (has_attribute h n) attrs

let roots h =
  fold (fun d acc -> if Type_def.supers d = [] then Type_def.name d :: acc else acc) h []
  |> List.rev

let leaves h =
  let with_subs =
    fold
      (fun d acc ->
        List.fold_left
          (fun acc s -> Type_name.Set.add s acc)
          acc (Type_def.super_names d))
      h Type_name.Set.empty
  in
  fold
    (fun d acc ->
      let n = Type_def.name d in
      if Type_name.Set.mem n with_subs then acc else n :: acc)
    h []
  |> List.rev

(* Structure mutations used by the factoring algorithms. *)

let add_super h ~sub ~super ~prec =
  let _ = find h super in
  update h sub (fun d -> Type_def.add_super d super prec)

let move_attr h ~attr ~from_ ~to_ =
  let src = find h from_ in
  match Type_def.find_local_attr src attr with
  | None -> Error.raise_ (Attribute_not_available { ty = from_; attr })
  | Some at ->
      let h = update h from_ (fun d -> Type_def.remove_attr d attr) in
      update h to_ (fun d -> Type_def.add_attr d at)

let remove h n =
  let _ = find h n in
  make (Type_name.Map.remove n h.defs)

let fresh_name h base =
  let base = Type_name.to_string base in
  let candidate = Type_name.of_string (base ^ "_hat") in
  if not (mem h candidate) then candidate
  else
    let rec go i =
      let c = Type_name.of_string (Fmt.str "%s_hat%d" base i) in
      if mem h c then go (i + 1) else c
    in
    go 2

(* Validation *)

let check_acyclic h =
  (* DFS 3-coloring; reports one cycle path on failure. *)
  let white = 0 and grey = 1 and black = 2 in
  let color = Hashtbl.create 64 in
  let col n = Option.value ~default:white (Hashtbl.find_opt color n) in
  let exception Found of Type_name.t list in
  let rec visit path n =
    if col n = grey then raise (Found (List.rev (n :: path)))
    else if col n = white then begin
      Hashtbl.replace color n grey;
      List.iter
        (fun s -> if mem h s then visit (n :: path) s)
        (direct_super_names h n);
      Hashtbl.replace color n black
    end
  in
  match List.iter (visit []) (type_names h) with
  | () -> ()
  | exception Found cycle -> Error.raise_ (Cycle cycle)

let check_supers_exist h =
  fold
    (fun d () ->
      List.iter
        (fun s -> if not (mem h s) then Error.raise_ (Unknown_type s))
        (Type_def.super_names d))
    h ()

let check_unique_attrs h =
  let seen = Hashtbl.create 64 in
  fold
    (fun d () ->
      List.iter
        (fun at ->
          let a = Attribute.name at in
          match Hashtbl.find_opt seen a with
          | Some first ->
              Error.raise_
                (Duplicate_attribute { attr = a; types = [ first; Type_def.name d ] })
          | None -> Hashtbl.replace seen a (Type_def.name d))
        (Type_def.attrs d))
    h ()

let check_precedences h =
  fold
    (fun d () ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (_, p) ->
          if Hashtbl.mem seen p then
            Error.raise_ (Duplicate_precedence { sub = Type_def.name d; prec = p })
          else Hashtbl.replace seen p ())
        (Type_def.supers d))
    h ()

let validate_exn h =
  check_supers_exist h;
  check_acyclic h;
  check_unique_attrs h;
  check_precedences h

let validate h = Error.guard (fun () -> validate_exn h)

let equal a b =
  Type_name.Map.equal
    (fun (x : Type_def.t) (y : Type_def.t) ->
      Type_def.origin x = Type_def.origin y
      && List.equal Attribute.equal (Type_def.attrs x) (Type_def.attrs y)
      && List.equal
           (fun (n, p) (m, q) -> Type_name.equal n m && p = q)
           (Type_def.supers x) (Type_def.supers y))
    a.defs b.defs

let pp ppf h =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@ ") Type_def.pp) (types h)
