let fail fmt = Fmt.kstr (fun s -> Error.raise_ (Invariant_violation s)) fmt

let attr_name_set attrs =
  Attr_name.Set.of_list (List.map Attribute.name attrs)

(* "They must have the same state ... as before the creation of the
   derived type": every pre-existing type keeps exactly its cumulative
   attribute set. *)
let check_state_preserved ~before ~after =
  List.iter
    (fun def ->
      let n = Type_def.name def in
      if not (Hierarchy.mem after n) then
        fail "type %a disappeared" Type_name.pp n;
      let old_attrs = attr_name_set (Hierarchy.all_attributes before n) in
      let new_attrs = attr_name_set (Hierarchy.all_attributes after n) in
      if not (Attr_name.Set.equal old_attrs new_attrs) then
        fail "cumulative state of %a changed: {%s} vs {%s}" Type_name.pp n
          (String.concat ", "
             (List.map Attr_name.to_string (Attr_name.Set.elements old_attrs)))
          (String.concat ", "
             (List.map Attr_name.to_string (Attr_name.Set.elements new_attrs))))
    (Hierarchy.types before)

(* "and the same behavior": every pre-existing type sees exactly the
   same set of applicable methods, before and after relocation. *)
let check_behavior_preserved ~before ~after =
  let index_b = Schema_index.of_hierarchy (Schema.hierarchy before) in
  let index_a = Schema_index.of_hierarchy (Schema.hierarchy after) in
  List.iter
    (fun def ->
      let n = Type_def.name def in
      let keys schema index =
        Method_def.Key.Set.of_list
          (List.map Method_def.key (Schema.methods_applicable_to_type schema index n))
      in
      let kb = keys before index_b and ka = keys after index_a in
      if not (Method_def.Key.Set.equal kb ka) then
        fail "applicable methods of %a changed" Type_name.pp n)
    (Hierarchy.types (Schema.hierarchy before))

(* Subtype relationships among pre-existing types are preserved: the
   factorization only inserts supertypes, it never severs or adds
   relations between original types. *)
let check_subtyping_preserved ~before ~after =
  let olds = Hierarchy.type_names before in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let was = Hierarchy.subtype before a b
          and is_ = Hierarchy.subtype after a b in
          if was <> is_ then
            fail "subtype %a ⪯ %a changed from %b to %b" Type_name.pp a
              Type_name.pp b was is_)
        olds)
    olds

(* The derived type's cumulative state is exactly the projection list. *)
let check_derived_state ~after ~derived ~projection =
  let got = attr_name_set (Hierarchy.all_attributes after derived) in
  let want = Attr_name.Set.of_list projection in
  if not (Attr_name.Set.equal got want) then
    fail "derived type %a has state {%s}, expected {%s}" Type_name.pp derived
      (String.concat ", " (List.map Attr_name.to_string (Attr_name.Set.elements got)))
      (String.concat ", " (List.map Attr_name.to_string (Attr_name.Set.elements want)))

(* The derived type is a supertype of the source (every source instance
   is an instance of the view). *)
let check_derived_above_source ~after ~derived ~source =
  if not (Hierarchy.subtype after source derived) then
    fail "source %a is not a subtype of derived %a" Type_name.pp source
      Type_name.pp derived

(* The derived type inherits all methods found applicable and, among
   the analysis candidates, no others. *)
let check_derived_behavior ~after ~derived ~(analysis : Applicability.result) =
  let index = Schema_index.of_hierarchy (Schema.hierarchy after) in
  let inherited =
    Method_def.Key.Set.of_list
      (List.map Method_def.key (Schema.methods_applicable_to_type after index derived))
  in
  Method_def.Key.Set.iter
    (fun k ->
      if not (Method_def.Key.Set.mem k inherited) then
        fail "derived type lost applicable method %a" Method_def.Key.pp k)
    analysis.applicable;
  Method_def.Key.Set.iter
    (fun k ->
      if Method_def.Key.Set.mem k inherited then
        fail "derived type inherits non-applicable method %a" Method_def.Key.pp k)
    analysis.not_applicable

let check_exn ~before ~after ~derived ~source ~projection ~analysis =
  Hierarchy.validate_exn (Schema.hierarchy after);
  check_state_preserved
    ~before:(Schema.hierarchy before)
    ~after:(Schema.hierarchy after);
  check_subtyping_preserved
    ~before:(Schema.hierarchy before)
    ~after:(Schema.hierarchy after);
  check_behavior_preserved ~before ~after;
  check_derived_state ~after:(Schema.hierarchy after) ~derived ~projection;
  check_derived_above_source ~after:(Schema.hierarchy after) ~derived ~source;
  check_derived_behavior ~after ~derived ~analysis

let check ~before ~after ~derived ~source ~projection ~analysis =
  Error.guard (fun () ->
      check_exn ~before ~after ~derived ~source ~projection ~analysis)
