(* A compiled, immutable snapshot of a hierarchy.

   The paper's algorithms (IsApplicable, factoring, dispatch) are
   dominated by [a ⪯ b] queries and re-linearizations over one fixed
   hierarchy.  This module compiles that hierarchy once:

   - type names are interned to dense integer ids (name order);
   - the reflexive-transitive ancestor relation is a Bytes-backed bit
     matrix, so [subtype] is two intern lookups and one bit test;
   - class precedence lists are memoized per type, and the direct-subs
     index is built in the same compilation pass;
   - the snapshot carries the generation stamp of the hierarchy it was
     compiled from, so holders can detect that they are about to answer
     for a hierarchy value that has since evolved.

   All mutable state below is memoization only: an index is
   observationally immutable. *)

type t = {
  h : Hierarchy.t;
  generation : int;
  names : Type_name.t array;  (* id -> name, in name order *)
  ids : (Type_name.t, int) Hashtbl.t;  (* name -> id *)
  row_words : int;  (* width of a closure row, in 64-bit words *)
  closure : Bytes.t;  (* n rows; bit (i, j) set iff i ⪯ j *)
  direct_subs : Type_name.t list array;
  cpls : (Type_name.t list, Error.t) result option array;  (* lazy memo *)
  ancestor_sets : Type_name.Set.t option array;  (* lazy memo *)
  layouts : Attribute.t array option array;  (* lazy memo *)
  layout_positions : int Attr_name.Map.t option array;  (* lazy memo *)
}

let hierarchy t = t.h
let generation t = t.generation
let cardinal t = Array.length t.names
let same_hierarchy t h = t.generation = Hierarchy.generation h

(* Observability: compilation cost and intern-table behaviour are the
   two things a production deployment needs to see (a hot set_schema
   loop shows up as misses + evictions here long before it shows up as
   latency).  All recording is gated inside Tdp_obs. *)
module Obs = Tdp_obs
let m_build_ns = Obs.Metrics.histogram "schema_index.build_ns"
let m_intern_hit = Obs.Metrics.counter "schema_index.intern.hit"
let m_intern_miss = Obs.Metrics.counter "schema_index.intern.miss"
let m_intern_evict = Obs.Metrics.counter "schema_index.intern.evict"

(* ---- bit-matrix primitives ---------------------------------------- *)

let row_base t i = i * t.row_words * 8

let test_bit t i j =
  let word = Bytes.get_int64_le t.closure (row_base t i + (j lsr 6 lsl 3)) in
  Int64.logand word (Int64.shift_left 1L (j land 63)) <> 0L

let set_bit closure ~row_words i j =
  let off = (i * row_words + (j lsr 6)) * 8 in
  let word = Bytes.get_int64_le closure off in
  Bytes.set_int64_le closure off
    (Int64.logor word (Int64.shift_left 1L (j land 63)))

let or_row closure ~row_words ~into ~from =
  let bi = into * row_words * 8 and bf = from * row_words * 8 in
  for w = 0 to row_words - 1 do
    let o = w * 8 in
    Bytes.set_int64_le closure (bi + o)
      (Int64.logor
         (Bytes.get_int64_le closure (bi + o))
         (Bytes.get_int64_le closure (bf + o)))
  done

let iter_row t i f =
  let base = row_base t i in
  for w = 0 to t.row_words - 1 do
    let word = Bytes.get_int64_le t.closure (base + (w * 8)) in
    if word <> 0L then
      for b = 0 to 63 do
        if Int64.logand word (Int64.shift_left 1L b) <> 0L then f ((w * 64) + b)
      done
  done

(* ---- compilation --------------------------------------------------- *)

let compile_uninstrumented h =
  let names = Array.of_list (Hierarchy.type_names h) in
  let n = Array.length names in
  let ids = Hashtbl.create ((2 * n) + 1) in
  Array.iteri (fun i nm -> Hashtbl.replace ids nm i) names;
  let row_words = (n + 63) / 64 in
  let closure = Bytes.make (n * row_words * 8) '\000' in
  let direct_subs = Array.make n [] in
  (* One pass in supers-before-subs (DFS post) order: a type's closure
     row is its own bit OR-ed with the finished rows of its direct
     supertypes, and the same walk records the direct-subs index.
     Colors make the pass terminate on (invalid) cyclic input — a
     supertype still on the stack contributes nothing, mirroring the
     visited-set cutoff of [Hierarchy.ancestors]; supertype names
     absent from the hierarchy are skipped (validation, not
     compilation, reports them). *)
  let state = Array.make n 0 (* 0 white, 1 grey, 2 black *) in
  let rec fill i =
    if state.(i) = 0 then begin
      state.(i) <- 1;
      set_bit closure ~row_words i i;
      List.iter
        (fun s ->
          match Hashtbl.find_opt ids s with
          | None -> ()
          | Some j ->
              direct_subs.(j) <- names.(i) :: direct_subs.(j);
              if state.(j) <> 1 then begin
                fill j;
                or_row closure ~row_words ~into:i ~from:j
              end)
        (Type_def.super_names (Hierarchy.find h names.(i)));
      state.(i) <- 2
    end
  in
  for i = 0 to n - 1 do
    fill i
  done;
  (* ids were visited in DFS order; restore name order per subs list *)
  Array.iteri
    (fun j subs ->
      direct_subs.(j) <- List.sort_uniq Type_name.compare subs)
    direct_subs;
  { h;
    generation = Hierarchy.generation h;
    names;
    ids;
    row_words;
    closure;
    direct_subs;
    cpls = Array.make n None;
    ancestor_sets = Array.make n None;
    layouts = Array.make n None;
    layout_positions = Array.make n None
  }

let compile h =
  Obs.Metrics.time m_build_ns (fun () ->
      Obs.Trace.with_span "schema_index.compile" (fun () ->
          compile_uninstrumented h))

(* [of_hierarchy] interns compiled indexes by generation stamp: the
   stamp uniquely identifies a hierarchy value, so every holder of the
   same hierarchy shares one index (dispatchers, applicability batches,
   lint, the store) instead of recompiling the closure.

   The table is a small LRU, most-recent first: repeated
   [Database.set_schema] / evolution cycles in a long-running process
   churn through generations, and each compiled index pins its source
   hierarchy plus an O(V²/8) closure — an unbounded intern table is a
   leak in exactly the regime the store's journaling mode targets.  A
   hit refreshes recency, so the handful of live schemas stay resident
   while evolved-away generations age out. *)
let intern_capacity = 16
let intern : (int * t) list ref = ref []
let intern_occupancy () = List.length !intern

let of_hierarchy h =
  let g = Hierarchy.generation h in
  match List.assoc_opt g !intern with
  | Some t ->
      Obs.Metrics.incr m_intern_hit;
      intern := (g, t) :: List.remove_assoc g !intern;
      t
  | None ->
      Obs.Metrics.incr m_intern_miss;
      let t = compile h in
      let kept = List.filteri (fun i _ -> i < intern_capacity - 1) !intern in
      Obs.Metrics.add m_intern_evict (List.length !intern - List.length kept);
      intern := (g, t) :: kept;
      t

(* ---- interning ----------------------------------------------------- *)

let id t nm = Hashtbl.find_opt t.ids nm

let id_exn t nm =
  match Hashtbl.find_opt t.ids nm with
  | Some i -> i
  | None -> Error.raise_ (Unknown_type nm)

let name t i = t.names.(i)
let mem t nm = Hashtbl.mem t.ids nm

(* ---- subtype queries ----------------------------------------------- *)

let subtype_ids t i j = test_bit t i j

let subtype t a b =
  Type_name.equal a b
  ||
  let i = id_exn t a in
  match id t b with None -> false | Some j -> test_bit t i j

let proper_subtype t a b = (not (Type_name.equal a b)) && subtype t a b

let ancestors_or_self t nm =
  let i = id_exn t nm in
  let out = ref [] in
  iter_row t i (fun j -> out := t.names.(j) :: !out);
  List.rev !out

let ancestor_set t nm =
  let i = id_exn t nm in
  match t.ancestor_sets.(i) with
  | Some s -> s
  | None ->
      let s = ref Type_name.Set.empty in
      iter_row t i (fun j -> s := Type_name.Set.add t.names.(j) !s);
      t.ancestor_sets.(i) <- Some !s;
      !s

let descendants t nm =
  let j = id_exn t nm in
  let out = ref [] in
  for i = Array.length t.names - 1 downto 0 do
    if i <> j && test_bit t i j then out := t.names.(i) :: !out
  done;
  !out

let descendants_or_self t nm =
  let j = id_exn t nm in
  let out = ref [] in
  for i = Array.length t.names - 1 downto 0 do
    if test_bit t i j then out := t.names.(i) :: !out
  done;
  !out

let direct_subs t nm = t.direct_subs.(id_exn t nm)

(* ---- memoized linearizations --------------------------------------- *)

let cpl_result t nm =
  let i = id_exn t nm in
  match t.cpls.(i) with
  | Some r -> r
  | None ->
      let r = Linearize.cpl_result t.h nm in
      t.cpls.(i) <- Some r;
      r

let cpl t nm =
  match cpl_result t nm with Ok l -> l | Error e -> Error.raise_ e

(* ---- memoized extent layouts ---------------------------------------- *)

(* The columnar store ([Tdp_store.Columns]) lays every instance of a
   type out as one struct-of-arrays block whose column order is the
   type's attribute list.  That order must be a pure function of the
   (immutable) hierarchy, so the layout is compiled here, once per
   interned type, rather than recomputed per object. *)

let layout t nm =
  let i = id_exn t nm in
  match t.layouts.(i) with
  | Some a -> a
  | None ->
      let a = Array.of_list (Hierarchy.all_attributes t.h nm) in
      t.layouts.(i) <- Some a;
      a

let layout_positions t nm =
  let i = id_exn t nm in
  match t.layout_positions.(i) with
  | Some m -> m
  | None ->
      let a = layout t nm in
      let m = ref Attr_name.Map.empty in
      Array.iteri
        (fun k at ->
          let n = Attribute.name at in
          if not (Attr_name.Map.mem n !m) then m := Attr_name.Map.add n k !m)
        a;
      t.layout_positions.(i) <- Some !m;
      !m
