(** A schema: the type hierarchy plus all generic functions.

    This is the unit over which the paper's algorithms operate.  Both
    the applicability notions of Section 4 live here:

    - applicability of a method {e to a type} (used to seed the
      IsApplicable driver), and
    - applicability of a method {e to a generic-function call} (used at
      each call site of a method body, and by the dispatcher). *)

type t

val empty : t

(** Generation stamp of this schema value: monotonically increasing,
    bumped by every update ({!add_type}, {!add_method}, hierarchy
    replacement, …).  Like {!Hierarchy.generation} but covering methods
    and generic functions too — the stamp dispatch tables check to
    detect that they were built for an evolved-away schema. *)
val generation : t -> int

val hierarchy : t -> Hierarchy.t
val with_hierarchy : t -> Hierarchy.t -> t
val map_hierarchy : t -> (Hierarchy.t -> Hierarchy.t) -> t

(** @raise Error.E [Duplicate_type]. *)
val add_type : t -> Type_def.t -> t

(** Generic functions in name order. *)
val gfs : t -> Generic_function.t list

val find_gf_opt : t -> string -> Generic_function.t option

(** @raise Error.E [Unknown_generic_function]. *)
val find_gf : t -> string -> Generic_function.t

(** Declare an (initially empty) generic function.
    @raise Error.E if a generic function of that name exists. *)
val declare_gf : t -> Generic_function.t -> t

(** Add a method, declaring its generic function on first use (arity
    and result type taken from the method's signature).
    @raise Error.E on arity mismatch or duplicate id. *)
val add_method : t -> Method_def.t -> t

(** @raise Error.E if the method does not exist. *)
val update_method : t -> Method_def.Key.t -> (Method_def.t -> Method_def.t) -> t

(** Remove a method; the generic function stays declared so calls to it
    remain well-formed.
    @raise Error.E [Unknown_generic_function]. *)
val remove_method : t -> Method_def.Key.t -> t

(** Every method of every generic function, grouped by gf name order. *)
val all_methods : t -> Method_def.t list

val find_method_opt : t -> Method_def.Key.t -> Method_def.t option

(** @raise Error.E if the method does not exist. *)
val find_method : t -> Method_def.Key.t -> Method_def.t

(** [method_applicable_to_type index m ty]: ∃i. ty ⪯ Tⁱ.  The index
    must be compiled from this schema's hierarchy. *)
val method_applicable_to_type : Schema_index.t -> Method_def.t -> Type_name.t -> bool

val methods_applicable_to_type :
  t -> Schema_index.t -> Type_name.t -> Method_def.t list

(** [method_applicable_to_call index m args]: ∀i. Vⁱ ⪯ Uⁱ. *)
val method_applicable_to_call : Schema_index.t -> Method_def.t -> Type_name.t list -> bool

(** Methods of [gf] applicable to a call with the given argument types,
    in definition order.
    @raise Error.E [Unknown_generic_function]. *)
val methods_applicable_to_call :
  t -> Schema_index.t -> gf:string -> arg_types:Type_name.t list -> Method_def.t list

(** Whether every method of [gf] is a writer accessor.  Body calls to
    such a generic function carry one extra syntactic argument (the new
    attribute value) that takes no part in dispatch. *)
val is_writer_gf : t -> string -> bool

(** All accessor methods reading or writing [attr]. *)
val accessors_of_attr : t -> Attr_name.t -> Method_def.t list

(** Structural validation: hierarchy well-formedness, signature types
    exist, accessor attributes are available at their argument type,
    method arities agree with their generic function.
    Method-body checks live in {!Typing.check_method}. *)
val validate_exn : t -> unit

val validate : t -> (unit, Error.t) result
val pp : t Fmt.t
