module Key = Method_def.Key

(* Observability: the paper's own §4.1 cost discussion is about exactly
   these quantities — how long an analysis takes, how deep the
   MethodStack grows, and how often cycle optimism (assume + retract)
   fires.  Recording is gated inside Tdp_obs; the analysis itself pays
   one int increment per stack push when disabled. *)
module Obs = Tdp_obs
let m_analyze_ns = Obs.Metrics.histogram "applicability.analyze_ns"
let m_stack_depth = Obs.Metrics.gauge "applicability.stack_depth.max"
let m_optimism = Obs.Metrics.counter "applicability.cycle_optimism"
let m_retractions = Obs.Metrics.counter "applicability.retractions"

type event =
  | Tested of Key.t
  | Concluded of { meth : Key.t; applicable : bool }
  | Assumed of { meth : Key.t; dependents : Key.t list }
  | Retracted of Key.t
  | No_candidate of { meth : Key.t; gf : string }

type result = {
  applicable : Key.Set.t;
  not_applicable : Key.Set.t;
  candidates : Key.Set.t;
  passes : int;
  trace : event list;
}

type frame = { meth : Key.t; mutable deps : Key.Set.t }

(* State shared across the analyses of many views of ONE schema value.
   Everything cached here depends only on the schema (plus, where
   noted, the source type) — never on the projection list — so a batch
   can serve any number of [analyze] calls.  Schemas are immutable
   values, so a batch never goes stale; derive a new batch for a new
   schema value. *)
type batch = {
  schema : Schema.t;
  index : Schema_index.t;
  relevant : (Key.t * Type_name.t, Dataflow.relevant_call list) Hashtbl.t;
      (* relevant calls of a method body w.r.t. a source type *)
  calls : (string * Type_name.t list, Method_def.t list) Hashtbl.t;
      (* methods of gf applicable to a call with these argument types *)
  by_type : (Type_name.t, Method_def.t list) Hashtbl.t;
      (* methods applicable to a type (the analysis domain seed) *)
}

let batch schema =
  { schema;
    index = Schema_index.of_hierarchy (Schema.hierarchy schema);
    relevant = Hashtbl.create 64;
    calls = Hashtbl.create 64;
    by_type = Hashtbl.create 16
  }

let batch_schema b = b.schema

let candidates_for_call b ~gf ~arg_types =
  let k = (gf, arg_types) in
  match Hashtbl.find_opt b.calls k with
  | Some ms -> ms
  | None ->
      let ms = Schema.methods_applicable_to_call b.schema b.index ~gf ~arg_types in
      Hashtbl.replace b.calls k ms;
      ms

let candidates_for_type b source =
  match Hashtbl.find_opt b.by_type source with
  | Some ms -> ms
  | None ->
      let ms = Schema.methods_applicable_to_type b.schema b.index source in
      Hashtbl.replace b.by_type source ms;
      ms

type ctx = {
  b : batch;
  source : Type_name.t;
  proj : Attr_name.Set.t;
  mutable stack : frame list; (* head = top of MethodStack *)
  mutable depth : int; (* length of [stack], maintained at push/pop *)
  mutable max_depth : int;
  mutable applicable : Key.Set.t;
  mutable not_applicable : Key.Set.t;
  mutable retractions : int;
  mutable trace : event list; (* reversed *)
}

let emit ctx e = ctx.trace <- e :: ctx.trace

let relevant_calls ctx m =
  let k = (Method_def.key m, ctx.source) in
  match Hashtbl.find_opt ctx.b.relevant k with
  | Some rcs -> rcs
  | None ->
      let rcs =
        Dataflow.relevant_calls ctx.b.schema ctx.b.index m ~source:ctx.source
      in
      Hashtbl.replace ctx.b.relevant k rcs;
      rcs

(* The set of methods of the called generic function from which an
   applicable method must be found (Section 4, cases 1 and 2): with a
   single relevant argument position, the source type is substituted at
   that position; with several, the call is taken as written, which by
   contravariance subsumes every combination of non-null substitutions. *)
let candidate_arg_types ctx (rc : Dataflow.relevant_call) =
  match rc.relevant_positions with
  | [ j ] ->
      List.mapi
        (fun i ty -> if i = j then ctx.source else ty)
        rc.site.arg_types
  | _ -> rc.site.arg_types

let rec is_applicable ctx m =
  let k = Method_def.key m in
  if Key.Set.mem k ctx.applicable then true
  else if Key.Set.mem k ctx.not_applicable then false
  else
    match Method_def.kind m with
    | Reader attr | Writer attr ->
        let ok = Attr_name.Set.mem attr ctx.proj in
        emit ctx (Concluded { meth = k; applicable = ok });
        if ok then ctx.applicable <- Key.Set.add k ctx.applicable
        else ctx.not_applicable <- Key.Set.add k ctx.not_applicable;
        ok
    | General _ ->
        if List.exists (fun f -> Key.equal f.meth k) ctx.stack then begin
          (* m is being determined further down the stack: optimistically
             assume it applicable, and record every method above it so
             that they can be retracted if the assumption fails. *)
          (* the List.exists guard above established that k is on the
             stack, so the walk must find its frame; a miss means the
             stack was corrupted and optimism is no longer sound *)
          let rec split above = function
            | [] ->
                Error.raise_
                  (Invariant_violation
                     (Fmt.str
                        "IsApplicable: method %a assumed on the MethodStack \
                         but has no frame"
                        Key.pp k))
            | f :: rest ->
                if Key.equal f.meth k then (List.rev above, f)
                else split (f :: above) rest
          in
          let above, frame = split [] ctx.stack in
          let dependents = List.map (fun f -> f.meth) above in
          frame.deps <-
            List.fold_left (fun s d -> Key.Set.add d s) frame.deps dependents;
          Obs.Metrics.incr m_optimism;
          emit ctx (Assumed { meth = k; dependents });
          true
        end
        else begin
          emit ctx (Tested k);
          let frame = { meth = k; deps = Key.Set.empty } in
          ctx.stack <- frame :: ctx.stack;
          ctx.depth <- ctx.depth + 1;
          if ctx.depth > ctx.max_depth then ctx.max_depth <- ctx.depth;
          let check_call (rc : Dataflow.relevant_call) =
            let arg_types = candidate_arg_types ctx rc in
            let candidates =
              candidates_for_call ctx.b ~gf:rc.site.gf ~arg_types
            in
            let ok = List.exists (is_applicable ctx) candidates in
            if not ok then emit ctx (No_candidate { meth = k; gf = rc.site.gf });
            ok
          in
          let ok = List.for_all check_call (relevant_calls ctx m) in
          if ok then ctx.applicable <- Key.Set.add k ctx.applicable
          else begin
            Key.Set.iter
              (fun d ->
                if Key.Set.mem d ctx.applicable then begin
                  ctx.applicable <- Key.Set.remove d ctx.applicable;
                  ctx.retractions <- ctx.retractions + 1;
                  Obs.Metrics.incr m_retractions;
                  emit ctx (Retracted d)
                end)
              frame.deps;
            ctx.not_applicable <- Key.Set.add k ctx.not_applicable
          end;
          emit ctx (Concluded { meth = k; applicable = ok });
          ctx.stack <- List.tl ctx.stack;
          ctx.depth <- ctx.depth - 1;
          ok
        end

let analyze_batch_exn_uninstrumented b ~source ~projection =
  if projection = [] then Error.raise_ Empty_projection;
  let schema = b.schema in
  let h = Schema.hierarchy schema in
  List.iter
    (fun a ->
      if not (Hierarchy.has_attribute h source a) then
        Error.raise_ (Attribute_not_available { ty = source; attr = a }))
    projection;
  let ctx =
    { b;
      source;
      proj = Attr_name.Set.of_list projection;
      stack = [];
      depth = 0;
      max_depth = 0;
      applicable = Key.Set.empty;
      not_applicable = Key.Set.empty;
      retractions = 0;
      trace = []
    }
  in
  let candidates = candidates_for_type b source in
  (* Driver: retraction leaves a method with unknown status, so it must
     be checked again (end of Section 4.2).  A conclusion reached before
     a retraction may itself have relied on the retracted method, so the
     driver clears the provisional general-method conclusions and
     re-runs; termination holds because every retraction accompanies a
     monotone NotApplicable insertion. *)
  let rec run passes =
    ctx.retractions <- 0;
    List.iter (fun m -> ignore (is_applicable ctx m)) candidates;
    assert (ctx.stack = []);
    if ctx.retractions > 0 then begin
      ctx.applicable <-
        Key.Set.filter
          (fun k ->
            match Schema.find_method_opt schema k with
            | Some m -> Method_def.is_accessor m
            | None -> false)
          ctx.applicable;
      run (passes + 1)
    end
    else passes
  in
  let passes = run 1 in
  Obs.Metrics.max_gauge m_stack_depth (float_of_int ctx.max_depth);
  { applicable = ctx.applicable;
    not_applicable = ctx.not_applicable;
    candidates = Key.Set.of_list (List.map Method_def.key candidates);
    passes;
    trace = List.rev ctx.trace
  }

let analyze_batch_exn b ~source ~projection =
  Obs.Metrics.time m_analyze_ns (fun () ->
      let attrs =
        if Obs.Trace.enabled () then
          [ ("source", Type_name.to_string source);
            ("projection", string_of_int (List.length projection)) ]
        else []
      in
      Obs.Trace.with_span ~attrs "applicability.analyze" (fun () ->
          analyze_batch_exn_uninstrumented b ~source ~projection))

let analyze_batch b ~source ~projection =
  Error.guard (fun () -> analyze_batch_exn b ~source ~projection)

let analyze_exn schema ~source ~projection =
  analyze_batch_exn (batch schema) ~source ~projection

let analyze schema ~source ~projection =
  Error.guard (fun () -> analyze_exn schema ~source ~projection)

let analyze_all_exn schema ~views =
  let b = batch schema in
  List.map
    (fun (source, projection) -> analyze_batch_exn b ~source ~projection)
    views

let analyze_all schema ~views =
  let b = batch schema in
  List.map
    (fun (source, projection) -> analyze_batch b ~source ~projection)
    views

let status (r : result) k =
  if Key.Set.mem k r.applicable then `Applicable
  else if Key.Set.mem k r.not_applicable then `Not_applicable
  else `Unknown

(* Human-readable reason for a method's verdict, reconstructed from the
   final fixpoint: an accessor points at its attribute; a general
   method's failure points at the first relevant call whose candidate
   set contains no applicable method. *)
let explain schema (r : result) ~source ~projection key =
  let proj = Attr_name.Set.of_list projection in
  match Schema.find_method_opt schema key with
  | None -> Fmt.str "%a: unknown method" Key.pp key
  | Some m -> (
      let verdict = status r key in
      match (Method_def.kind m, verdict) with
      | _, `Unknown -> Fmt.str "%a: not applicable to the source type" Key.pp key
      | (Reader a | Writer a), `Applicable ->
          Fmt.str "%a: accessor on %a, which is in the projection list" Key.pp
            key Attr_name.pp a
      | (Reader a | Writer a), `Not_applicable ->
          Fmt.str "%a: accessor on %a, which is NOT in the projection list"
            Key.pp key Attr_name.pp a
      | General _, `Applicable ->
          Fmt.str
            "%a: every relevant generic-function call has an applicable method"
            Key.pp key
      | General _, `Not_applicable -> (
          ignore proj;
          let index = Schema_index.of_hierarchy (Schema.hierarchy schema) in
          let rcs = Dataflow.relevant_calls schema index m ~source in
          let failing =
            List.find_opt
              (fun (rc : Dataflow.relevant_call) ->
                let arg_types =
                  match rc.relevant_positions with
                  | [ j ] ->
                      List.mapi
                        (fun i ty -> if i = j then source else ty)
                        rc.site.arg_types
                  | _ -> rc.site.arg_types
                in
                let candidates =
                  Schema.methods_applicable_to_call schema index ~gf:rc.site.gf
                    ~arg_types
                in
                not
                  (List.exists
                     (fun c -> Key.Set.mem (Method_def.key c) r.applicable)
                     candidates))
              rcs
          in
          match failing with
          | Some rc ->
              Fmt.str "%a: the call to %s has no applicable method" Key.pp key
                rc.site.gf
          | None ->
              Fmt.str
                "%a: retracted after a failed optimistic assumption in a call \
                 cycle"
                Key.pp key))

let pp_event ppf = function
  | Tested k -> Fmt.pf ppf "test %a" Key.pp k
  | Concluded { meth; applicable } ->
      Fmt.pf ppf "%a %s" Key.pp meth
        (if applicable then "applicable" else "not-applicable")
  | Assumed { meth; dependents } ->
      Fmt.pf ppf "assume %a (dependents: %a)" Key.pp meth
        Fmt.(list ~sep:comma Key.pp)
        dependents
  | Retracted k -> Fmt.pf ppf "retract %a" Key.pp k
  | No_candidate { meth; gf } ->
      Fmt.pf ppf "%a: no applicable method for call to %s" Key.pp meth gf

let pp_result ppf (r : result) =
  let names s =
    Key.Set.elements s |> List.map (Fmt.str "%a" Key.pp) |> String.concat ", "
  in
  Fmt.pf ppf "@[<v>applicable: %s@ not applicable: %s@ passes: %d@]"
    (names r.applicable) (names r.not_applicable) r.passes
