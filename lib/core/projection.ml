(* Observability: a projection is the paper's headline operation, so its
   latency and the number of surrogate types it inserts (the cost the
   Augment fixpoint adds on top of FactorState) are first-class metrics.
   Recording is gated inside Tdp_obs. *)
module Obs = Tdp_obs
let m_project_ns = Obs.Metrics.histogram "projection.project_ns"
let m_surrogates = Obs.Metrics.counter "projection.surrogates"

type outcome = {
  before : Schema.t;
  schema : Schema.t;
  view : string;
  derived : Type_name.t;
  source : Type_name.t;
  projection : Attr_name.t list;
  analysis : Applicability.result;
  surrogates : Type_name.t Type_name.Map.t;
  z : Type_name.Set.t;
  rewrites : Factor_methods.rewrite list;
}

(* Formal argument types of applicable methods that are supertypes of
   the source but were not reached by FactorState (because no projected
   attribute is available there).  Without a surrogate at such a type
   the relocated method would not be inherited by the derived type, so
   they are folded into Z and handled by Augment.  This closes a gap in
   the paper's Section 6.1, which implicitly assumes every relevant
   formal type is factored. *)
let missing_formal_types schema index ~source ~surrogates ~applicable =
  Method_def.Key.Set.fold
    (fun key acc ->
      match Schema.find_method_opt schema key with
      | None -> acc
      | Some m ->
          List.fold_left
            (fun acc ty ->
              if
                Schema_index.subtype index source ty
                && not (Type_name.Map.mem ty surrogates)
              then Type_name.Set.add ty acc
              else acc)
            acc
            (Signature.param_types (Method_def.signature m)))
    applicable Type_name.Set.empty

let project_exn_uninstrumented ?(check = true) schema ~view ?derived_name
    ~source ~projection () =
  Schema.validate_exn schema;
  Typing.check_all_methods schema;
  let analysis = Applicability.analyze_exn schema ~source ~projection in
  let fs =
    Factor_state.run_exn (Schema.hierarchy schema) ~view ?derived_name ~source
      ~projection ()
  in
  let index = Schema_index.of_hierarchy (Schema.hierarchy schema) in
  (* Augment phase, run to a fixpoint.  Two refinements over the
     paper's single pass (see DESIGN.md):

     - the set handed to the walk is Y ∪ missing-formal-types WITHOUT
       subtracting the already-factored set X: when an assigned type
       was factored through a different branch, its surrogate exists
       but the mirror path from the rebound formal's surrogate may not
       — the walk creates exactly those missing edges;
     - creating surrogates for missing formal types rebinds more
       formals, whose assigned locals (Y, recomputed) may need further
       surrogates and paths, so the phase iterates until the surrogate
       map and the set stabilize.  Each iteration only adds surrogates,
       so it terminates.

     The reported Z keeps the paper's Y − X definition. *)
  let rec augment_fixpoint hierarchy surrogates prev_z =
    let schema_cur = Schema.with_hierarchy schema hierarchy in
    let z_aug =
      Type_name.Set.union
        (Augment.compute_y schema_cur ~applicable:analysis.applicable
           ~factored:surrogates)
        (missing_formal_types schema index ~source ~surrogates
           ~applicable:analysis.applicable)
    in
    let aug = Augment.run_exn hierarchy ~view ~source ~surrogates ~z:z_aug in
    if
      Type_name.Map.cardinal aug.surrogates > Type_name.Map.cardinal surrogates
      || not (Type_name.Set.equal z_aug prev_z)
    then augment_fixpoint aug.hierarchy aug.surrogates z_aug
    else (aug, z_aug)
  in
  let aug, z_aug =
    augment_fixpoint fs.hierarchy fs.surrogates Type_name.Set.empty
  in
  let z =
    Type_name.Set.filter (fun n -> not (Type_name.Map.mem n fs.surrogates)) z_aug
  in
  let schema_aug = Schema.with_hierarchy schema aug.hierarchy in
  let after, rewrites =
    Factor_methods.run_exn schema_aug ~surrogates:aug.surrogates
      ~applicable:analysis.applicable
  in
  let outcome =
    { before = schema;
      schema = after;
      view;
      derived = fs.derived;
      source;
      projection;
      analysis;
      surrogates = aug.surrogates;
      z;
      rewrites
    }
  in
  if check then begin
    Invariants.check_exn ~before:schema ~after ~derived:fs.derived ~source
      ~projection ~analysis;
    Typing.check_all_methods after
  end;
  outcome

let project_exn ?check schema ~view ?derived_name ~source ~projection () =
  Obs.Metrics.time m_project_ns (fun () ->
      let attrs =
        if Obs.Trace.enabled () then
          [ ("view", view); ("source", Type_name.to_string source) ]
        else []
      in
      Obs.Trace.with_span ~attrs "projection.project" (fun () ->
          let o =
            project_exn_uninstrumented ?check schema ~view ?derived_name
              ~source ~projection ()
          in
          Obs.Metrics.add m_surrogates (Type_name.Map.cardinal o.surrogates);
          o))

let project ?check schema ~view ?derived_name ~source ~projection () =
  Error.guard (fun () ->
      project_exn ?check schema ~view ?derived_name ~source ~projection ())

let pp_summary ppf o =
  let surrogate_count = Type_name.Map.cardinal o.surrogates in
  Fmt.pf ppf
    "@[<v>view %s = Π_{%a} %a@ derived type: %a@ surrogates: %d@ applicable \
     methods: %d / %d candidates@ augment set Z: {%a}@ rewritten signatures: \
     %d@]"
    o.view
    Fmt.(list ~sep:comma Attr_name.pp)
    o.projection Type_name.pp o.source Type_name.pp o.derived surrogate_count
    (Method_def.Key.Set.cardinal o.analysis.applicable)
    (Method_def.Key.Set.cardinal o.analysis.candidates)
    Fmt.(list ~sep:comma Type_name.pp)
    (Type_name.Set.elements o.z)
    (List.length o.rewrites)
