(** A compiled, immutable snapshot of a {!Hierarchy.t}.

    The paper's algorithms (IsApplicable §4.1, factoring §5–6, CLOS
    dispatch) issue many [a ⪯ b] subtype queries and linearizations
    against one fixed hierarchy.  Compiling the hierarchy once makes
    those queries cheap:

    - {b Interning}: type names are mapped to dense integer ids
      (name order), so the rest of the structure is array-indexed.
    - {b Bitset closure}: the reflexive-transitive ancestor relation is
      precomputed as a [Bytes]-backed bit matrix — {!subtype} is an
      O(1) bit test and {!ancestors_or_self} iterates a bitset instead
      of building a [Type_name.Set] per query.
    - {b Memoized linearizations} and the direct-subs index, shared by
      every consumer of the snapshot.
    - {b Generation stamp}: the snapshot records
      [Hierarchy.generation] of its source, so downstream caches
      (dispatch tables, applicability batches, the object store) can
      detect that a hierarchy has evolved instead of silently serving
      answers for an old schema.

    Compilation is O(V·E/word) for the closure plus O(V+E) for the
    rest; queries are O(1) (subtype) or output-sensitive (ancestor /
    descendant iteration).  Indexes are observationally immutable —
    the only internal mutation is memoization. *)

type t

(** Compile a fresh snapshot of [h]. *)
val compile : Hierarchy.t -> t

(** Like {!compile}, but interned: repeated calls on the same hierarchy
    {e value} (same generation stamp) return the same snapshot, so all
    consumers of one schema share one compiled index.  The intern table
    is a bounded LRU of {!intern_capacity} entries — hits refresh
    recency, so long-running schema-evolution churn cannot grow it. *)
val of_hierarchy : Hierarchy.t -> t

(** Capacity bound of the {!of_hierarchy} intern table. *)
val intern_capacity : int

(** Current number of interned indexes — always [<= intern_capacity];
    exposed so tests can pin the bound. *)
val intern_occupancy : unit -> int

val hierarchy : t -> Hierarchy.t

(** The {!Hierarchy.generation} of the hierarchy this index was
    compiled from. *)
val generation : t -> int

(** [same_hierarchy t h] — does this index describe the value [h]?
    One integer comparison; the staleness test downstream caches use. *)
val same_hierarchy : t -> Hierarchy.t -> bool

val cardinal : t -> int
val mem : t -> Type_name.t -> bool

(** Dense id of an interned type name. *)
val id : t -> Type_name.t -> int option

(** @raise Error.E [Unknown_type]. *)
val id_exn : t -> Type_name.t -> int

(** Inverse of {!id}; ids are assigned in name order. *)
val name : t -> int -> Type_name.t

(** [subtype t a b] is [a ⪯ b] — an O(1) bit test after interning.
    @raise Error.E [Unknown_type] when [a] is not in the hierarchy
    (and [a ≠ b]), mirroring [Hierarchy.subtype]. *)
val subtype : t -> Type_name.t -> Type_name.t -> bool

(** {!subtype} on pre-interned ids: one bit test, no hashing. *)
val subtype_ids : t -> int -> int -> bool

val proper_subtype : t -> Type_name.t -> Type_name.t -> bool

(** Reflexive ancestors, in name order — a bitset iteration, no set
    construction.  @raise Error.E [Unknown_type]. *)
val ancestors_or_self : t -> Type_name.t -> Type_name.t list

(** {!ancestors_or_self} as a [Type_name.Set.t], built at most once per
    type (compatibility for callers that need set operations). *)
val ancestor_set : t -> Type_name.t -> Type_name.Set.t

(** Proper descendants / reflexive descendants, in name order — a
    column scan of the closure.  @raise Error.E [Unknown_type]. *)
val descendants : t -> Type_name.t -> Type_name.t list

val descendants_or_self : t -> Type_name.t -> Type_name.t list

(** Direct subtypes, in name order (precomputed during compilation). *)
val direct_subs : t -> Type_name.t -> Type_name.t list

(** Class precedence list of a type, memoized in the snapshot; equal to
    a fresh [Linearize.cpl].  @raise Error.E [Linearization_failure]. *)
val cpl : t -> Type_name.t -> Type_name.t list

val cpl_result : t -> Type_name.t -> (Type_name.t list, Error.t) result

(** Compiled extent layout of a type: its cumulative attribute list
    ([Hierarchy.all_attributes], in inheritance order) as an array,
    memoized per interned type.  The columnar store lays each block of
    instances out with one column per entry, in this order.  Callers
    must not mutate the returned array.
    @raise Error.E [Unknown_type]. *)
val layout : t -> Type_name.t -> Attribute.t array

(** Attribute name → column position within {!layout} (first occurrence
    wins), memoized per interned type.
    @raise Error.E [Unknown_type]. *)
val layout_positions : t -> Type_name.t -> int Attr_name.Map.t
