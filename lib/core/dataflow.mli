(** Def-use data-flow analysis over method bodies.

    The paper relies on "standard definition-use flow analysis" at two
    points: to determine which generic-function calls in a method body
    are relevant to the method's arguments (Section 4.1), and to compute
    the set Y of types transitively assigned a value of a
    surrogate-converted type (Section 6.4).  This module provides both,
    via a simple union fixpoint over variable copies: the source set of
    a variable is the set of formals whose value may reach it.  Call
    results are treated as fresh values (see DESIGN.md). *)

module SS : Set.S with type elt = string
module SMap : Map.S with type key = string

(** For each variable, the set of formals that may flow into it. *)
type flow = SS.t SMap.t

val compute_flow : Method_def.t -> flow
val expr_sources : flow -> Body.expr -> SS.t

type call_site = {
  gf : string;
  arg_types : Type_name.t list;  (** static object types of the arguments *)
  arg_sources : SS.t list;  (** formal sources of each argument *)
}

(** All call sites of a method with types and sources.
    @raise Error.E [Non_object_argument] on an ill-typed call. *)
val call_sites : Schema.t -> Method_def.t -> call_site list

type relevant_call = {
  site : call_site;
  relevant_positions : int list;
}

(** Formals of [m] whose declared type is a supertype of [source]. *)
val formals_above : Schema_index.t -> Method_def.t -> source:Type_name.t -> SS.t

(** The calls in [m]'s body that are relevant to the applicability
    analysis for a projection over [source], with the argument positions
    fed by formals of type ⪰ [source]. *)
val relevant_calls :
  Schema.t -> Schema_index.t -> Method_def.t -> source:Type_name.t -> relevant_call list

(** Object types of locals (and the result type) of [m] transitively
    assigned a value originating in one of the [rebound] formals —
    the per-method contribution to the paper's set Y. *)
val assigned_types : Method_def.t -> rebound:SS.t -> Type_name.Set.t

(** Whether a returned expression may carry the value of a rebound
    formal (drives result-type rewriting, end of Section 6.3). *)
val returns_rebound : Method_def.t -> rebound:SS.t -> bool

(** Locals of [m] whose declared type is in [types] and which are
    reached by a rebound formal; their declarations are re-typed to
    surrogate types by {!Factor_methods}. *)
val retypable_locals :
  Method_def.t -> rebound:SS.t -> types:Type_name.Set.t -> (string * Type_name.t) list

(** {1 Simple def/use facts}

    Syntactic read/write sets and a definite-assignment walk, used by
    the flow lints of [Tdp_analysis]. *)

(** Variables read anywhere in the body (any [Var] occurrence in an
    expression, including conditions). *)
val read_vars : Body.t -> SS.t

(** Variables written anywhere in the body: assignment targets plus
    initialized declarations. *)
val written_vars : Body.t -> SS.t

(** Declared locals that may be read before any initialization or
    assignment reaches them, in first-read order.  Formals are always
    initialized; an [If] only defines what both branches define; a
    [While] body may not run at all.  A read before the variable's
    declaration statement also counts. *)
val use_before_init : Method_def.t -> string list
