module SMap = Map.Make (String)

type t = {
  hierarchy : Hierarchy.t;
  gfs : Generic_function.t SMap.t;
  generation : int;
}

(* Like [Hierarchy.generation], but covering the whole schema: method
   and generic-function updates change dispatch outcomes without
   touching the hierarchy, so dispatchers stamp against this counter
   rather than the hierarchy's. *)
let gen_counter = ref 0

let make hierarchy gfs =
  incr gen_counter;
  { hierarchy; gfs; generation = !gen_counter }

let empty = make Hierarchy.empty SMap.empty
let generation t = t.generation
let hierarchy t = t.hierarchy
let with_hierarchy t hierarchy = make hierarchy t.gfs
let map_hierarchy t f = make (f t.hierarchy) t.gfs
let add_type t def = make (Hierarchy.add t.hierarchy def) t.gfs
let gfs t = List.map snd (SMap.bindings t.gfs)
let find_gf_opt t name = SMap.find_opt name t.gfs

let find_gf t name =
  match find_gf_opt t name with
  | Some g -> g
  | None -> Error.raise_ (Unknown_generic_function name)

let declare_gf t gf =
  let name = Generic_function.name gf in
  if SMap.mem name t.gfs then Error.raise_ (Unknown_generic_function name)
  else make t.hierarchy (SMap.add name gf t.gfs)

let add_method t m =
  let gf_name = Method_def.gf m in
  let gf =
    match find_gf_opt t gf_name with
    | Some g -> g
    | None ->
        Generic_function.declare
          ?result:(Signature.result (Method_def.signature m))
          ~arity:(Method_def.arity m) gf_name
  in
  make t.hierarchy (SMap.add gf_name (Generic_function.add_method gf m) t.gfs)

let update_method t key f =
  let gf = find_gf t (Method_def.Key.gf key) in
  make t.hierarchy
    (SMap.add (Generic_function.name gf)
       (Generic_function.update_method gf (Method_def.Key.id key) f)
       t.gfs)

(* Remove a method; its generic function stays declared so that bodies
   calling it remain well-formed (the call may simply have no
   applicable method). *)
let remove_method t key =
  let gf = find_gf t (Method_def.Key.gf key) in
  make t.hierarchy
    (SMap.add (Generic_function.name gf)
       (Generic_function.remove_method gf (Method_def.Key.id key))
       t.gfs)

let all_methods t =
  List.concat_map (fun g -> Generic_function.methods g) (gfs t)

let find_method_opt t key =
  Option.bind (find_gf_opt t (Method_def.Key.gf key)) (fun g ->
      Generic_function.find_method g (Method_def.Key.id key))

let find_method t key =
  match find_method_opt t key with
  | Some m -> m
  | None ->
      Error.raise_
        (Duplicate_method
           { gf = Method_def.Key.gf key; id = Method_def.Key.id key })

(* A method mk(T¹..Tⁿ) is applicable to a type T if there is some i with
   T ⪯ Tⁱ (Section 4). *)
let method_applicable_to_type index m ty =
  List.exists
    (Schema_index.subtype index ty)
    (Signature.param_types (Method_def.signature m))

let methods_applicable_to_type t index ty =
  List.filter (fun m -> method_applicable_to_type index m ty) (all_methods t)

(* A method mk(U¹..Uᵐ) is applicable to a call n(V¹..Vᵐ) if ∀i, Vⁱ ⪯ Uⁱ. *)
let method_applicable_to_call index m arg_types =
  let params = Signature.param_types (Method_def.signature m) in
  List.length params = List.length arg_types
  && List.for_all2 (Schema_index.subtype index) arg_types params

let methods_applicable_to_call t index ~gf ~arg_types =
  match find_gf_opt t gf with
  | None -> Error.raise_ (Unknown_generic_function gf)
  | Some g ->
      List.filter
        (fun m -> method_applicable_to_call index m arg_types)
        (Generic_function.methods g)

(* A "writer generic function" contains only writer methods.  Calls to
   such a generic function carry one extra syntactic argument — the new
   attribute value — that takes no part in dispatch or applicability. *)
let is_writer_gf t gf =
  match find_gf_opt t gf with
  | None -> false
  | Some g -> (
      match Generic_function.methods g with
      | [] -> false
      | ms ->
          List.for_all
            (fun m -> match Method_def.kind m with Writer _ -> true | Reader _ | General _ -> false)
            ms)

let accessors_of_attr t attr =
  List.filter
    (fun m ->
      match Method_def.accessed_attr m with
      | Some a -> Attr_name.equal a attr
      | None -> false)
    (all_methods t)

let validate_exn t =
  Hierarchy.validate_exn t.hierarchy;
  List.iter
    (fun g ->
      List.iter
        (fun m ->
          let s = Method_def.signature m in
          List.iter
            (fun (_, ty) -> ignore (Hierarchy.find t.hierarchy ty))
            (Signature.params s);
          (match Method_def.accessed_attr m with
          | None -> ()
          | Some attr -> (
              match Signature.param_types s with
              | [ obj_ty ] ->
                  if not (Hierarchy.has_attribute t.hierarchy obj_ty attr) then
                    Error.raise_
                      (Accessor_attr_not_inherited
                         { meth = Method_def.id m; attr })
              | _ ->
                  Error.raise_
                    (Arity_mismatch
                       { gf = Method_def.gf m; expected = 1; got = Signature.arity s })));
          if Method_def.arity m <> Generic_function.arity g then
            Error.raise_
              (Arity_mismatch
                 { gf = Generic_function.name g;
                   expected = Generic_function.arity g;
                   got = Method_def.arity m
                 }))
        (Generic_function.methods g))
    (gfs t)

let validate t = Error.guard (fun () -> validate_exn t)

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@ %a@]" Hierarchy.pp t.hierarchy
    Fmt.(list ~sep:(any "@ ") Generic_function.pp)
    (gfs t)
