(** The IsApplicable algorithm (paper, Section 4).

    Given a projection [Π_p T], decides for every method applicable to
    the source type [T] whether it remains applicable to the derived
    type [T̂]: an accessor is applicable exactly when its attribute is in
    the projection list; a general method is applicable when every
    generic-function call in its body that is relevant to the projected
    argument still has at least one applicable method.

    Cycles in the method call graph are handled optimistically with the
    paper's MethodStack/dependencyList mechanism: a method found on the
    stack is assumed applicable; if the assumption later fails, the
    methods that relied on it are retracted to {e unknown} status and
    re-analyzed by the driver. *)

module Key = Method_def.Key

type event =
  | Tested of Key.t
  | Concluded of { meth : Key.t; applicable : bool }
  | Assumed of { meth : Key.t; dependents : Key.t list }
      (** optimistic assumption for a method found on the MethodStack *)
  | Retracted of Key.t
      (** removed from Applicable after a failed assumption *)
  | No_candidate of { meth : Key.t; gf : string }

type result = {
  applicable : Key.Set.t;
  not_applicable : Key.Set.t;
  candidates : Key.Set.t;
      (** the methods applicable to the source type, i.e. the analysis
          domain; [applicable ∪ not_applicable ⊇ candidates] *)
  passes : int;  (** driver passes until fixpoint (1 when no cycles fail) *)
  trace : event list;
}

(** Shared analysis state for running the algorithm over {e many} views
    of one schema.

    A batch memoizes everything that depends only on the schema (and,
    where applicable, the source type) — the compiled schema index,
    each method's relevant calls per source, and the candidate-method
    sets per call and per type — so analyzing [k] projections costs one
    traversal of that state instead of [k].

    {b Invalidation:} a batch is tied to the [Schema.t] {e value} passed
    to {!batch}.  Schemas are immutable (every update returns a new
    value), so a batch can never observe a stale schema; when the schema
    evolves, build a new batch from the new value and drop the old one. *)
type batch

val batch : Schema.t -> batch
val batch_schema : batch -> Schema.t

(** [analyze_batch_exn b ~source ~projection] runs the analysis reusing
    the batch's caches.  Equivalent to (and tested against)
    {!analyze_exn} on [batch_schema b]. *)
val analyze_batch_exn :
  batch -> source:Type_name.t -> projection:Attr_name.t list -> result

val analyze_batch :
  batch ->
  source:Type_name.t ->
  projection:Attr_name.t list ->
  (result, Error.t) Stdlib.result

(** [analyze_exn schema ~source ~projection] runs the analysis.

    @raise Error.E [Empty_projection] on an empty list, or
    [Attribute_not_available] when a projected attribute is not in the
    cumulative state of [source]. *)
val analyze_exn :
  Schema.t -> source:Type_name.t -> projection:Attr_name.t list -> result

val analyze :
  Schema.t ->
  source:Type_name.t ->
  projection:Attr_name.t list ->
  (result, Error.t) Stdlib.result

(** [analyze_all_exn schema ~views] analyzes every [(source, projection)]
    view through one shared {!batch}; the results are pointwise equal to
    per-view {!analyze_exn}.  Raises on the first ill-formed view. *)
val analyze_all_exn :
  Schema.t -> views:(Type_name.t * Attr_name.t list) list -> result list

(** Like {!analyze_all_exn} but each view's failure is reported in its
    own slot instead of aborting the whole batch. *)
val analyze_all :
  Schema.t ->
  views:(Type_name.t * Attr_name.t list) list ->
  (result, Error.t) Stdlib.result list

val status : result -> Key.t -> [ `Applicable | `Not_applicable | `Unknown ]

(** One-line, human-readable justification of a method's verdict,
    reconstructed against the analysis fixpoint — e.g. which accessor
    attribute is missing from the projection list, or which call in the
    body lost all its candidate methods. *)
val explain :
  Schema.t ->
  result ->
  source:Type_name.t ->
  projection:Attr_name.t list ->
  Key.t ->
  string
val pp_event : event Fmt.t
val pp_result : result Fmt.t
