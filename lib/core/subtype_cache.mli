(** Memoized subtype tests over a fixed hierarchy — compatibility shim.

    Historically this module cached one [Type_name.Set.t] of ancestors
    per queried type.  It is now a thin veneer over {!Schema_index}:
    [create] compiles (or reuses, via the generation-stamp intern) the
    hierarchy's index, and [subtype] is an O(1) bit test against the
    precomputed transitive closure.  New code should use
    {!Schema_index} directly; the alias below makes the two
    interchangeable at call sites. *)

type t = Schema_index.t

(** Compile or reuse the hierarchy's {!Schema_index}. *)
val create : Hierarchy.t -> t

(** The underlying compiled index (the identity — [t] is an alias). *)
val index : t -> Schema_index.t

(** Ancestor set of a type, built at most once per type from the
    index's closure bitset. *)
val ancestors_or_self : t -> Type_name.t -> Type_name.Set.t

(** [subtype t a b] is [a ⪯ b]: one bit test. *)
val subtype : t -> Type_name.t -> Type_name.t -> bool

val hierarchy : t -> Hierarchy.t
