module SS = Set.Make (String)
module SMap = Map.Make (String)

type flow = SS.t SMap.t

(* Source-set of an expression: the formals whose value may be the value
   of this expression.  Results of generic-function calls and builtins
   are treated as fresh values — the conservative choice documented in
   DESIGN.md: the paper's examples only ever pass parameters onward, and
   tracking call results would require inter-procedural alias analysis. *)
let expr_sources flow (e : Body.expr) =
  match e with
  | Var x -> Option.value ~default:SS.empty (SMap.find_opt x flow)
  | Lit _ | Call _ | Builtin _ -> SS.empty

let compute_flow m =
  let init =
    List.fold_left
      (fun acc (x, _) -> SMap.add x (SS.singleton x) acc)
      SMap.empty
      (Signature.params (Method_def.signature m))
  in
  match Method_def.body m with
  | None -> init
  | Some body ->
      (* Fixpoint: assignments inside loops can flow around a cycle. *)
      let changed = ref true in
      let flow = ref init in
      let assign x e =
        let srcs = expr_sources !flow e in
        let cur = Option.value ~default:SS.empty (SMap.find_opt x !flow) in
        let next = SS.union cur srcs in
        if not (SS.equal cur next) then begin
          flow := SMap.add x next !flow;
          changed := true
        end
      in
      let rec walk stmts = List.iter walk_stmt stmts
      and walk_stmt (s : Body.stmt) =
        match s with
        | Local { var; init = Some e; _ } | Assign (var, e) -> assign var e
        | Local { init = None; _ } | Expr _ | Return _ -> ()
        | If (_, t, e) ->
            walk t;
            walk e
        | While (_, b) -> walk b
      in
      while !changed do
        changed := false;
        walk body
      done;
      !flow

type call_site = {
  gf : string;
  arg_types : Type_name.t list;
  arg_sources : SS.t list;
}

let call_sites schema m =
  match Method_def.body m with
  | None -> []
  | Some body ->
      let env = Typing.env_of_method m in
      let flow = compute_flow m in
      List.map
        (fun (gf, args) ->
          (* Drop a writer call's extra value argument: it takes no
             part in dispatch or applicability. *)
          let args =
            if Schema.is_writer_gf schema gf then
              match args with obj :: _ -> [ obj ] | [] -> []
            else args
          in
          { gf;
            arg_types = Typing.arg_type_names schema env ~gf args;
            arg_sources = List.map (expr_sources flow) args
          })
        (Body.call_sites body)

type relevant_call = {
  site : call_site;
  relevant_positions : int list;
      (* positions fed by a formal of m whose type is ⪰ the source type *)
}

(* The formals of [m] that are "supertypes of the source type T":
   formals xᵢ with T ⪯ Tᵢ.  For methods applicable to T this set is
   non-empty by definition. *)
let formals_above index m ~source =
  List.filter_map
    (fun (x, ty) -> if Schema_index.subtype index source ty then Some x else None)
    (Signature.params (Method_def.signature m))
  |> SS.of_list

let relevant_calls schema index m ~source =
  let above = formals_above index m ~source in
  List.filter_map
    (fun site ->
      let relevant_positions =
        List.mapi (fun i s -> (i, s)) site.arg_sources
        |> List.filter (fun (_, srcs) -> not (SS.is_empty (SS.inter srcs above)))
        |> List.map fst
      in
      if relevant_positions = [] then None else Some { site; relevant_positions })
    (call_sites schema m)

(* Section 6.4: the types transitively assigned a value of a rebound
   parameter.  [rebound] are the formals of [m] whose declared type is
   being converted to a surrogate type.  Returns the declared (object)
   types of every local variable reached by such a value, plus the
   method's declared result type when a returned expression is reached. *)
let assigned_types m ~rebound =
  match Method_def.body m with
  | None -> Type_name.Set.empty
  | Some body ->
      let flow = compute_flow m in
      let touches srcs = not (SS.is_empty (SS.inter srcs rebound)) in
      let acc =
        List.fold_left
          (fun acc (x, ty) ->
            match Value_type.as_named ty with
            | Some n
              when touches (Option.value ~default:SS.empty (SMap.find_opt x flow)) ->
                Type_name.Set.add n acc
            | Some _ | None -> acc)
          Type_name.Set.empty (Body.locals body)
      in
      (* returned expressions *)
      let returns = ref [] in
      let rec walk stmts = List.iter walk_stmt stmts
      and walk_stmt (s : Body.stmt) =
        match s with
        | Return (Some e) -> returns := e :: !returns
        | Return None | Local _ | Assign _ | Expr _ -> ()
        | If (_, t, e) ->
            walk t;
            walk e
        | While (_, b) -> walk b
      in
      walk body;
      List.fold_left
        (fun acc e ->
          if touches (expr_sources flow e) then
            match
              Option.bind (Signature.result (Method_def.signature m)) Value_type.as_named
            with
            | Some n -> Type_name.Set.add n acc
            | None -> acc
          else acc)
        acc !returns

(* Does some returned expression of [m] carry a value of a rebound
   formal?  When true and the result type has a surrogate, the result
   type of the method must be rewritten too (end of Section 6.3). *)
let returns_rebound m ~rebound =
  match Method_def.body m with
  | None -> false
  | Some body ->
      let flow = compute_flow m in
      let found = ref false in
      let rec walk stmts = List.iter walk_stmt stmts
      and walk_stmt (s : Body.stmt) =
        match s with
        | Return (Some e) ->
            if not (SS.is_empty (SS.inter (expr_sources flow e) rebound)) then
              found := true
        | Return None | Local _ | Assign _ | Expr _ -> ()
        | If (_, t, e) ->
            walk t;
            walk e
        | While (_, b) -> walk b
      in
      walk body;
      !found

(* --- simple def/use facts (consumed by the Tdp_analysis lints) ------ *)

let read_vars body =
  Body.fold_stmts
    (fun acc (e : Body.expr) ->
      match e with Var x -> SS.add x acc | Lit _ | Call _ | Builtin _ -> acc)
    SS.empty body

let written_vars body =
  let rec walk acc stmts = List.fold_left walk_stmt acc stmts
  and walk_stmt acc (s : Body.stmt) =
    match s with
    | Local { var; init = Some _; _ } | Assign (var, _) -> SS.add var acc
    | Local { init = None; _ } | Expr _ | Return _ -> acc
    | If (_, t, e) -> walk (walk acc t) e
    | While (_, b) -> walk acc b
  in
  walk SS.empty body

(* Definite-assignment walk: [defined] is the set of variables certainly
   carrying a value at the current program point.  Formals are defined on
   entry; a local joins the set at its declaration when initialized, or at
   its first assignment.  Reads of declared-but-undefined locals are
   reported once per variable, in first-read order. *)
let use_before_init m =
  match Method_def.body m with
  | None -> []
  | Some body ->
      let locals = SS.of_list (List.map fst (Body.locals body)) in
      let formals =
        SS.of_list (List.map fst (Signature.params (Method_def.signature m)))
      in
      let reported = ref SS.empty in
      let order = ref [] in
      let report x =
        if not (SS.mem x !reported) then begin
          reported := SS.add x !reported;
          order := x :: !order
        end
      in
      let check_expr defined e =
        ignore
          (Body.fold_expr
             (fun () (e : Body.expr) ->
               match e with
               | Var x when SS.mem x locals && not (SS.mem x defined) -> report x
               | Var _ | Lit _ | Call _ | Builtin _ -> ())
             () e)
      in
      let rec walk defined stmts = List.fold_left walk_stmt defined stmts
      and walk_stmt defined (s : Body.stmt) =
        match s with
        | Local { var; init; _ } ->
            Option.iter (check_expr defined) init;
            if Option.is_some init then SS.add var defined else defined
        | Assign (x, e) ->
            check_expr defined e;
            SS.add x defined
        | Expr e | Return (Some e) ->
            check_expr defined e;
            defined
        | Return None -> defined
        | If (c, t, e) ->
            check_expr defined c;
            let dt = walk defined t and de = walk defined e in
            SS.inter dt de
        | While (c, b) ->
            check_expr defined c;
            ignore (walk defined b);
            defined
      in
      ignore (walk formals body);
      List.rev !order

(* Variables of [m] whose declared object type is in [zs] and that are
   reached by a rebound formal: these declarations must be re-typed to
   surrogate types (Section 6.3). *)
let retypable_locals m ~rebound ~types =
  match Method_def.body m with
  | None -> []
  | Some body ->
      let flow = compute_flow m in
      List.filter_map
        (fun (x, ty) ->
          match Value_type.as_named ty with
          | Some n
            when Type_name.Set.mem n types
                 && not
                      (SS.is_empty
                         (SS.inter
                            (Option.value ~default:SS.empty (SMap.find_opt x flow))
                            rebound)) ->
              Some (x, n)
          | Some _ | None -> None)
        (Body.locals body)
