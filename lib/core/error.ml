type t =
  | Unknown_type of Type_name.t
  | Duplicate_type of Type_name.t
  | Unknown_attribute of Attr_name.t
  | Duplicate_attribute of { attr : Attr_name.t; types : Type_name.t list }
  | Attribute_not_available of { ty : Type_name.t; attr : Attr_name.t }
  | Cycle of Type_name.t list
  | Duplicate_super of { sub : Type_name.t; super : Type_name.t }
  | Self_super of Type_name.t
  | Duplicate_precedence of { sub : Type_name.t; prec : int }
  | Unknown_generic_function of string
  | Duplicate_method of { gf : string; id : string }
  | Arity_mismatch of { gf : string; expected : int; got : int }
  | Accessor_attr_not_inherited of { meth : string; attr : Attr_name.t }
  | Non_object_argument of { gf : string; position : int }
  | Unbound_variable of { meth : string; var : string }
  | Empty_projection
  | Linearization_failure of Type_name.t
  | Parse_error of { line : int; col : int; message : string }
  | Invariant_violation of string
  | At of { line : int; col : int; error : t }

exception E of t

let raise_ e = raise (E e)

let position = function
  | Parse_error { line; col; _ } | At { line; col; _ } -> Some (line, col)
  | _ -> None

let with_position ~line ~col f =
  try f () with
  | E (Parse_error _ as e) | E (At _ as e) -> raise (E e)
  | E error -> raise (E (At { line; col; error }))

let rec strip = function At { error; _ } -> strip error | e -> e

let rec pp ppf = function
  | Unknown_type n -> Fmt.pf ppf "unknown type %a" Type_name.pp n
  | Duplicate_type n -> Fmt.pf ppf "duplicate type %a" Type_name.pp n
  | Unknown_attribute a -> Fmt.pf ppf "unknown attribute %a" Attr_name.pp a
  | Duplicate_attribute { attr; types } ->
      Fmt.pf ppf "attribute %a defined in several types: %a" Attr_name.pp attr
        Fmt.(list ~sep:comma Type_name.pp)
        types
  | Attribute_not_available { ty; attr } ->
      Fmt.pf ppf "attribute %a is not available at type %a" Attr_name.pp attr
        Type_name.pp ty
  | Cycle path ->
      Fmt.pf ppf "subtype cycle: %a"
        Fmt.(list ~sep:(any " -> ") Type_name.pp)
        path
  | Duplicate_super { sub; super } ->
      Fmt.pf ppf "type %a already has supertype %a" Type_name.pp sub
        Type_name.pp super
  | Self_super n -> Fmt.pf ppf "type %a cannot be its own supertype" Type_name.pp n
  | Duplicate_precedence { sub; prec } ->
      Fmt.pf ppf "type %a has two supertypes with precedence %d" Type_name.pp
        sub prec
  | Unknown_generic_function g -> Fmt.pf ppf "unknown generic function %s" g
  | Duplicate_method { gf; id } -> Fmt.pf ppf "duplicate method %s.%s" gf id
  | Arity_mismatch { gf; expected; got } ->
      Fmt.pf ppf "generic function %s has arity %d but was used with %d arguments"
        gf expected got
  | Accessor_attr_not_inherited { meth; attr } ->
      Fmt.pf ppf
        "accessor %s names attribute %a that its argument type does not have"
        meth Attr_name.pp attr
  | Non_object_argument { gf; position } ->
      Fmt.pf ppf "argument %d of generic-function call %s is not an object"
        position gf
  | Unbound_variable { meth; var } ->
      Fmt.pf ppf "unbound variable %s in method %s" var meth
  | Empty_projection -> Fmt.string ppf "empty projection list"
  | Linearization_failure n ->
      Fmt.pf ppf "no consistent precedence linearization for type %a"
        Type_name.pp n
  | Parse_error { line; col; message } ->
      Fmt.pf ppf "parse error at %d:%d: %s" line col message
  | Invariant_violation msg -> Fmt.pf ppf "invariant violation: %s" msg
  | At { line; col; error } -> Fmt.pf ppf "%d:%d: %a" line col pp error

let to_string = Fmt.str "%a" pp

let message e =
  match strip e with
  | Parse_error { message; _ } -> message
  | e -> to_string e

let guard f = match f () with v -> Ok v | exception E e -> Error e
