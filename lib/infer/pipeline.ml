open Tdp_core

type atom = { attr : Attr_name.t; kind : Kind.t }

type node =
  | Source of Type_name.t
  | Ref of string
  | Project of node * Attr_name.t list
  | Select of node * atom list
  | Generalize of node * node
  | Join of node * node
  | Call of { gf : string; node : node }

let atom ~ordered attr lit = { attr; kind = Kind.of_comparison ~ordered lit }

let pp_atom ppf a =
  if Kind.is_any a.kind then Attr_name.pp ppf a.attr
  else Fmt.pf ppf "%a : %a" Attr_name.pp a.attr Kind.pp a.kind

let rec pp ppf = function
  | Source n -> Type_name.pp ppf n
  | Ref v -> Fmt.pf ppf "&%s" v
  | Project (e, attrs) ->
      Fmt.pf ppf "project %a on [%a]" pp e
        Fmt.(list ~sep:comma Attr_name.pp)
        attrs
  | Select (e, atoms) ->
      Fmt.pf ppf "select %a where [%a]" pp e Fmt.(list ~sep:comma pp_atom) atoms
  | Generalize (a, b) -> Fmt.pf ppf "generalize %a with %a" pp a pp b
  | Join (a, b) -> Fmt.pf ppf "join %a with %a" pp a pp b
  | Call { gf; node } -> Fmt.pf ppf "call %s over %a" gf pp node

(* Substitute references by their definitions, producing a closed
   pipeline that can be evaluated without an environment. *)
let rec inline env = function
  | Source n -> Source n
  | Ref v -> (
      match List.assoc_opt v env with Some e -> e | None -> Ref v)
  | Project (e, attrs) -> Project (inline env e, attrs)
  | Select (e, atoms) -> Select (inline env e, atoms)
  | Generalize (a, b) -> Generalize (inline env a, inline env b)
  | Join (a, b) -> Join (inline env a, inline env b)
  | Call { gf; node } -> Call { gf; node = inline env node }
