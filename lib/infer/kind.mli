(** Attribute-kind constraints: which value types an attribute may
    still have, given the comparisons a pipeline performs on it.

    A kind is a set of {!Tdp_core.Value_type.t} shapes represented as a
    bitset.  {!of_comparison} abstracts [Pred.literal_compatible]
    exactly — a kind [admits] a concrete attribute type if and only if
    the comparison it came from would type-check against that
    attribute — so the meet of the kinds of all comparisons over one
    attribute is empty exactly when no declared type could satisfy the
    predicate. *)

open Tdp_core

type t

(** No constraint: every attribute type is admitted. *)
val any : t

(** The unsatisfiable kind. *)
val none : t

(** Greatest lower bound (set intersection). *)
val inter : t -> t -> t

val is_any : t -> bool
val is_empty : t -> bool

(** The set of attribute types a comparison against [lit] admits;
    [ordered] is true for [<], [<=], [>], [>=] and false for the
    equality operators. *)
val of_comparison : ordered:bool -> Body.literal -> t

(** Whether a concrete attribute type satisfies the constraint. *)
val admits : t -> Value_type.t -> bool

val pp : t Fmt.t
val to_string : t -> string
