open Tdp_core
module Metrics = Tdp_obs.Metrics

(* Principal-type inference for algebra pipelines, after Van den
   Bussche & Waller's polymorphic typing of the relational algebra.

   Every pipeline node gets a row variable describing the cumulative
   attribute set of its derived type.  Rows are either [Closed]
   (exactly known — a projection result carries exactly its projection
   list) or [Open] (a lower bound — a source type has at least the
   attributes the pipeline reads from it).  Requirements flow top-down
   through a union-find forest: projecting or selecting on an
   attribute requires it of the operand row; generalization
   ([Inter] rows) pushes requirements into both operands, while join
   ([Union] rows) cannot attribute a requirement to one side and
   defers it as a residual constraint checked at instantiation.

   Independently of rows, every node gets a type variable and the
   derivation-order facts the algebra guarantees: a selection is a
   subtype of its operand, a projection a supertype of its source, a
   generalization a supertype of both operands, a join a subtype of
   both.  Two join operands connected by a monotone chain of these
   edges are provably ⪯-related in every instantiation, which is
   exactly the condition under which {!Tdp_algebra.Join} refuses to
   derive.

   Kinds abstract predicate typing: the comparisons a program performs
   against one (globally unique) attribute are met together; an empty
   meet means no declared attribute type can satisfy them all. *)

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

type error =
  | Ill_typed of { view : string; reason : string }
  | Attr_absent of { view : string; attr : Attr_name.t; row : Attr_name.t list }
  | Join_related of { view : string; left : string; right : string }
  | Pred_conflict of { view : string; attr : Attr_name.t }
  | Reuse_conflict of { view : string; prior : string; attr : Attr_name.t }

exception Type_error of error

let error_view = function
  | Ill_typed { view; _ }
  | Attr_absent { view; _ }
  | Join_related { view; _ }
  | Pred_conflict { view; _ }
  | Reuse_conflict { view; _ } -> view

let attr_list l = String.concat ", " (List.map Attr_name.to_string l)

let error_message = function
  | Ill_typed { view; reason } -> Fmt.str "view %s is ill-typed: %s" view reason
  | Attr_absent { view; attr; row } ->
      Fmt.str "view %s requires attribute %s, but the row it reads has exactly {%s}"
        view (Attr_name.to_string attr) (attr_list row)
  | Join_related { view; left; right } ->
      Fmt.str "view %s joins operands that are related in every instantiation: %s and %s"
        view left right
  | Pred_conflict { view; attr } ->
      Fmt.str "view %s compares attribute %s in ways no attribute type satisfies"
        view (Attr_name.to_string attr)
  | Reuse_conflict { view; prior; attr } ->
      Fmt.str "view %s constrains attribute %s incompatibly with its use in view %s"
        view (Attr_name.to_string attr) prior

let pp_error ppf e = Fmt.string ppf (error_message e)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let m_constraints = Metrics.counter "infer.constraints"
let m_errors = Metrics.counter "infer.solve.errors"
let m_solve = Metrics.histogram "infer.solve_ns"
let m_admit = Metrics.histogram "infer.admit_ns"

(* ------------------------------------------------------------------ *)
(* Solver state                                                        *)
(* ------------------------------------------------------------------ *)

type shape = Open of Attr_name.Set.t | Closed of Attr_name.Set.t

(* How a row was derived, for requirement propagation. *)
type rel = Plain | Inter of int * int | Union of int * int

type cell = {
  mutable parent : int;
  mutable rank : int;
  mutable shape : shape;
  mutable rel : rel;
}

type state = {
  cells : (int, cell) Hashtbl.t;
  mutable n_cells : int;
  mutable n_tvars : int;
  mutable edges : (int * int) list;  (** (sub, super) over type variables *)
  srcs : (Type_name.t, int * int) Hashtbl.t;  (** name -> row var, type var *)
  env : (string, int * int) Hashtbl.t;  (** solved view -> row var, type var *)
  kinds : (Attr_name.t, kind_entry) Hashtbl.t;
  mutable residuals : (string * Attr_name.t) list;
}

and kind_entry = { mutable kind : Kind.t; mutable owner : string }

let create () =
  { cells = Hashtbl.create 32;
    n_cells = 0;
    n_tvars = 0;
    edges = [];
    srcs = Hashtbl.create 8;
    env = Hashtbl.create 8;
    kinds = Hashtbl.create 8;
    residuals = []
  }

let cell st i = Hashtbl.find st.cells i

let new_cell st shape rel =
  let i = st.n_cells in
  st.n_cells <- i + 1;
  Hashtbl.replace st.cells i { parent = i; rank = 0; shape; rel };
  i

let new_tvar st =
  let t = st.n_tvars in
  st.n_tvars <- t + 1;
  t

let rec find st i =
  let c = cell st i in
  if c.parent = i then i
  else begin
    let root = find st c.parent in
    c.parent <- root;
    root
  end

let shape_of st i = (cell st (find st i)).shape
let set_of = function Open s | Closed s -> s

let tick st = Metrics.incr m_constraints; ignore st

let merge_shapes ~view a b =
  match (a, b) with
  | Open la, Open lb -> Open (Attr_name.Set.union la lb)
  | Open l, Closed s | Closed s, Open l -> (
      match Attr_name.Set.choose_opt (Attr_name.Set.diff l s) with
      | Some attr ->
          raise
            (Type_error (Attr_absent { view; attr; row = Attr_name.Set.elements s }))
      | None -> Closed s)
  | Closed sa, Closed sb ->
      if Attr_name.Set.equal sa sb then Closed sa
      else
        raise
          (Type_error
             (Ill_typed
                { view;
                  reason = "rows with different exact attribute sets cannot be unified"
                }))

let union st ~view i j =
  tick st;
  let ri = find st i and rj = find st j in
  if ri <> rj then begin
    let ci = cell st ri and cj = cell st rj in
    let shape = merge_shapes ~view ci.shape cj.shape in
    let root, child = if ci.rank >= cj.rank then (ri, rj) else (rj, ri) in
    let croot = cell st root and cchild = cell st child in
    cchild.parent <- root;
    if ci.rank = cj.rank then croot.rank <- croot.rank + 1;
    croot.shape <- shape;
    if croot.rel = Plain then croot.rel <- cchild.rel
  end

let mem_row st i attr = Attr_name.Set.mem attr (set_of (shape_of st i))

(* Require [attr] of row [i]: exact rows must already carry it; open
   rows grow their lower bound and propagate per their derivation. *)
let rec require st ~view i attr =
  tick st;
  let c = cell st (find st i) in
  match c.shape with
  | Closed s ->
      if not (Attr_name.Set.mem attr s) then
        raise
          (Type_error (Attr_absent { view; attr; row = Attr_name.Set.elements s }))
  | Open lower ->
      if not (Attr_name.Set.mem attr lower) then begin
        c.shape <- Open (Attr_name.Set.add attr lower);
        match c.rel with
        | Plain -> ()
        | Inter (a, b) ->
            require st ~view a attr;
            require st ~view b attr
        | Union (a, b) ->
            (* the attribute may come from either side; decidable only
               against a concrete hierarchy *)
            if not (mem_row st a attr || mem_row st b attr) then
              st.residuals <- (view, attr) :: st.residuals
      end

let constrain_kind st ~view attr kind =
  tick st;
  if not (Kind.is_any kind) then
    if Kind.is_empty kind then
      raise (Type_error (Pred_conflict { view; attr }))
    else
      match Hashtbl.find_opt st.kinds attr with
      | None -> Hashtbl.replace st.kinds attr { kind; owner = view }
      | Some e ->
          let m = Kind.inter e.kind kind in
          if Kind.is_empty m then
            if String.equal e.owner view then
              raise (Type_error (Pred_conflict { view; attr }))
            else raise (Type_error (Reuse_conflict { view; prior = e.owner; attr }))
          else e.kind <- m

(* Provable ⪯-relatedness over the lineage graph: [a] reaches [b]
   following sub-to-super edges, or vice versa, or they are one
   variable.  Every edge is a true subtyping fact of every successful
   derivation, so relatedness here implies the join must fail. *)
let reaches st x y =
  let rec go visited = function
    | [] -> false
    | n :: rest ->
        if n = y then true
        else if List.mem n visited then go visited rest
        else
          let ups = List.filter_map (fun (s, u) -> if s = n then Some u else None) st.edges in
          go (n :: visited) (ups @ rest)
  in
  go [] [ x ]

let related st a b = a = b || reaches st a b || reaches st b a

(* ------------------------------------------------------------------ *)
(* Constraint generation                                               *)
(* ------------------------------------------------------------------ *)

let rec walk st ~view (node : Pipeline.node) =
  match node with
  | Source n -> (
      match Hashtbl.find_opt st.srcs n with
      | Some rt -> rt
      | None ->
          let r = new_cell st (Open Attr_name.Set.empty) Plain in
          let t = new_tvar st in
          Hashtbl.replace st.srcs n (r, t);
          (r, t))
  | Ref v -> (
      match Hashtbl.find_opt st.env v with
      | Some rt -> rt
      | None ->
          raise
            (Type_error
               (Ill_typed { view; reason = Fmt.str "references unknown view %s" v })))
  | Project (sub, attrs) ->
      let r_sub, t_sub = walk st ~view sub in
      if attrs = [] then
        raise (Type_error (Ill_typed { view; reason = "empty projection" }));
      List.iter (fun a -> require st ~view r_sub a) attrs;
      let r = new_cell st (Closed (Attr_name.Set.of_list attrs)) Plain in
      let t = new_tvar st in
      (* the source becomes a subtype of the derived view type *)
      st.edges <- (t_sub, t) :: st.edges;
      (r, t)
  | Select (sub, atoms) ->
      let r_sub, t_sub = walk st ~view sub in
      List.iter
        (fun (a : Pipeline.atom) ->
          require st ~view r_sub a.attr;
          constrain_kind st ~view a.attr a.kind)
        atoms;
      (* same cumulative state as the operand: alias the row *)
      let r = new_cell st (Open Attr_name.Set.empty) Plain in
      union st ~view r r_sub;
      let t = new_tvar st in
      st.edges <- (t, t_sub) :: st.edges;
      (r, t)
  | Generalize (a, b) ->
      let ra, ta = walk st ~view a in
      let rb, tb = walk st ~view b in
      let shape =
        match (shape_of st ra, shape_of st rb) with
        | Closed sa, Closed sb ->
            let i = Attr_name.Set.inter sa sb in
            if Attr_name.Set.is_empty i then
              raise
                (Type_error
                   (Ill_typed
                      { view;
                        reason = "generalize operands can share no attributes in any \
                                  instantiation"
                      }));
            Closed i
        | sa, sb -> Open (Attr_name.Set.inter (set_of sa) (set_of sb))
      in
      let r = new_cell st shape (Inter (ra, rb)) in
      let t = new_tvar st in
      st.edges <- (ta, t) :: (tb, t) :: st.edges;
      (r, t)
  | Join (a, b) ->
      let ra, ta = walk st ~view a in
      let rb, tb = walk st ~view b in
      if related st ta tb then
        raise
          (Type_error
             (Join_related
                { view;
                  left = Fmt.str "%a" Pipeline.pp a;
                  right = Fmt.str "%a" Pipeline.pp b
                }));
      let shape =
        match (shape_of st ra, shape_of st rb) with
        | Closed sa, Closed sb -> Closed (Attr_name.Set.union sa sb)
        | sa, sb -> Open (Attr_name.Set.union (set_of sa) (set_of sb))
      in
      let r = new_cell st shape (Union (ra, rb)) in
      let t = new_tvar st in
      st.edges <- (t, ta) :: (t, tb) :: st.edges;
      (r, t)
  | Call { gf = _; node } ->
      (* applying a generic function constrains methods, not rows; the
         instantiation check validates the function against the schema *)
      walk st ~view node

(* ------------------------------------------------------------------ *)
(* Principal schemas                                                   *)
(* ------------------------------------------------------------------ *)

type row = Exactly of Attr_name.Set.t | At_least of Attr_name.Set.t

type principal = {
  name : string;
  pipeline : Pipeline.node;  (** reference-free: refs inlined *)
  sources : (Type_name.t * Attr_name.Set.t) list;
  result : row;
  kinds : (Attr_name.t * Kind.t) list;
  gfs : string list;
  residuals : Attr_name.t list;
}

let rec fold_pipeline f acc (n : Pipeline.node) =
  let acc = f acc n in
  match n with
  | Source _ | Ref _ -> acc
  | Project (e, _) | Select (e, _) | Call { node = e; _ } -> fold_pipeline f acc e
  | Generalize (a, b) | Join (a, b) -> fold_pipeline f (fold_pipeline f acc a) b

let sources_mentioned n =
  fold_pipeline
    (fun acc -> function Pipeline.Source s -> s :: acc | _ -> acc)
    [] n
  |> List.sort_uniq Type_name.compare

let gfs_mentioned n =
  fold_pipeline
    (fun acc -> function Pipeline.Call { gf; _ } -> gf :: acc | _ -> acc)
    [] n
  |> List.sort_uniq String.compare

let attrs_mentioned n =
  fold_pipeline
    (fun acc -> function
      | Pipeline.Project (_, attrs) -> List.fold_left (fun s a -> Attr_name.Set.add a s) acc attrs
      | Pipeline.Select (_, atoms) ->
          List.fold_left (fun s (a : Pipeline.atom) -> Attr_name.Set.add a.attr s) acc atoms
      | _ -> acc)
    Attr_name.Set.empty n

let principal_of st ~name ~pipeline rvar =
  let sources =
    List.map
      (fun s ->
        match Hashtbl.find_opt st.srcs s with
        | Some (r, _) -> (s, set_of (shape_of st r))
        | None -> (s, Attr_name.Set.empty))
      (sources_mentioned pipeline)
  in
  let result =
    match shape_of st rvar with
    | Closed s -> Exactly s
    | Open s -> At_least s
  in
  let relevant =
    List.fold_left
      (fun acc (_, s) -> Attr_name.Set.union acc s)
      (Attr_name.Set.union (attrs_mentioned pipeline) (set_of (shape_of st rvar)))
      sources
  in
  let kinds =
    Attr_name.Set.fold
      (fun a acc ->
        match Hashtbl.find_opt st.kinds a with
        | Some e when not (Kind.is_any e.kind) -> (a, e.kind) :: acc
        | _ -> acc)
      relevant []
    |> List.sort (fun (a, _) (b, _) -> Attr_name.compare a b)
  in
  let residuals =
    List.filter_map (fun (v, a) -> if String.equal v name then Some a else None)
      st.residuals
    |> List.sort_uniq Attr_name.compare
  in
  { name; pipeline; sources; result; kinds; gfs = gfs_mentioned pipeline; residuals }

let pp_set ppf s =
  Fmt.pf ppf "{%s}" (attr_list (Attr_name.Set.elements s))

let pp_row ppf = function
  | Exactly s -> Fmt.pf ppf "exactly %a" pp_set s
  | At_least s -> Fmt.pf ppf "at least %a" pp_set s

let pp_principal ppf p =
  Fmt.pf ppf "@[<v>view %s : %a" p.name pp_row p.result;
  List.iter
    (fun (s, req) ->
      Fmt.pf ppf "@  source %a requires %a" Type_name.pp s pp_set req)
    p.sources;
  List.iter
    (fun (a, k) -> Fmt.pf ppf "@  kind %a : %a" Attr_name.pp a Kind.pp k)
    p.kinds;
  List.iter (fun gf -> Fmt.pf ppf "@  applies %s" gf) p.gfs;
  List.iter
    (fun a -> Fmt.pf ppf "@  residual: some join operand supplies %a" Attr_name.pp a)
    p.residuals;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

(* Solve a whole program in declaration order.  A view that fails is
   reported and bound to a fresh unconstrained row, so later views can
   still be solved (their own errors are not masked by a cascade). *)
let infer_program prog =
  Metrics.time m_solve @@ fun () ->
  let st = create () in
  let _, results =
    List.fold_left
      (fun (inlined, acc) (name, node) ->
        let pipeline = Pipeline.inline inlined node in
        let res =
          match walk st ~view:name node with
          | r, t ->
              Hashtbl.replace st.env name (r, t);
              Ok (r, t)
          | exception Type_error e ->
              Metrics.incr m_errors;
              let r = new_cell st (Open Attr_name.Set.empty) Plain in
              let t = new_tvar st in
              Hashtbl.replace st.env name (r, t);
              Error e
        in
        ((name, pipeline) :: inlined, (name, pipeline, res) :: acc))
      ([], []) prog
  in
  List.rev_map
    (fun (name, pipeline, res) ->
      match res with
      | Ok (r, _) -> (name, Ok (principal_of st ~name ~pipeline r))
      | Error e -> (name, Error e))
    results

let infer ?(name = "pipeline") node =
  match infer_program [ (name, node) ] with
  | [ (_, res) ] -> res
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Instantiation                                                       *)
(* ------------------------------------------------------------------ *)

(* Evaluate the (reference-free) pipeline bottom-up against a concrete
   schema, mirroring what derivation checks: source existence,
   attribute availability, predicate typing, non-empty common
   attributes, and generic-function applicability.  The attribute set
   computed for each node is exactly the cumulative state its derived
   type would have. *)
let admits schema (p : principal) =
  Metrics.time m_admit @@ fun () ->
  let h = Schema.hierarchy schema in
  let view = p.name in
  let absent attr s =
    raise (Type_error (Attr_absent { view; attr; row = Attr_name.Set.elements s }))
  in
  let rec eval (n : Pipeline.node) =
    match n with
    | Source ty ->
        if not (Hierarchy.mem h ty) then
          raise
            (Type_error
               (Ill_typed { view; reason = Fmt.str "unknown type %a" Type_name.pp ty }));
        Attr_name.Set.of_list (Hierarchy.all_attribute_names h ty)
    | Ref v ->
        raise
          (Type_error
             (Ill_typed { view; reason = Fmt.str "unresolved reference to view %s" v }))
    | Project (e, attrs) ->
        let s = eval e in
        if attrs = [] then
          raise (Type_error (Ill_typed { view; reason = "empty projection" }));
        (match List.find_opt (fun a -> not (Attr_name.Set.mem a s)) attrs with
        | Some a -> absent a s
        | None -> ());
        Attr_name.Set.of_list attrs
    | Select (e, atoms) ->
        let s = eval e in
        List.iter
          (fun (at : Pipeline.atom) ->
            if not (Attr_name.Set.mem at.attr s) then absent at.attr s;
            match
              Option.bind (Hierarchy.attr_owner h at.attr) (fun o ->
                  Hierarchy.find_attribute h o at.attr)
            with
            | Some a when not (Kind.admits at.kind (Attribute.ty a)) ->
                raise (Type_error (Pred_conflict { view; attr = at.attr }))
            | _ -> ())
          atoms;
        s
    | Generalize (a, b) ->
        let i = Attr_name.Set.inter (eval a) (eval b) in
        if Attr_name.Set.is_empty i then
          raise
            (Type_error
               (Ill_typed { view; reason = "generalize operands share no attributes" }));
        i
    | Join (a, b) -> Attr_name.Set.union (eval a) (eval b)
    | Call { gf; node } ->
        let s = eval node in
        (match Schema.find_gf_opt schema gf with
        | None ->
            raise
              (Type_error
                 (Ill_typed
                    { view; reason = Fmt.str "calls undeclared generic function %s" gf }))
        | Some g ->
            if Generic_function.arity g <> 1 then
              raise
                (Type_error
                   (Ill_typed
                      { view;
                        reason =
                          Fmt.str "generic function %s takes %d dispatched arguments, \
                                   not 1"
                            gf (Generic_function.arity g)
                      })));
        s
  in
  match eval p.pipeline with
  | (_ : Attr_name.Set.t) -> Ok ()
  | exception Type_error e -> Error e
