(** The typed intermediate representation of algebra pipelines.

    A [node] describes a view expression abstractly: sources are row
    parameters (the pipeline does not know their attributes), [Ref]
    names an earlier pipeline of the same program, and the operators
    mirror the algebra — projection, selection (reduced to the
    attribute/kind atoms its predicate compares), generalization, join
    and generic-function application.  {!Infer} assigns each node a row
    variable and solves the resulting constraints. *)

open Tdp_core

(** One predicate comparison: the attribute it reads and the
    {!Kind.t} of attribute types the comparison admits. *)
type atom = { attr : Attr_name.t; kind : Kind.t }

type node =
  | Source of Type_name.t  (** a row parameter, named after a base type *)
  | Ref of string  (** an earlier pipeline of the same program *)
  | Project of node * Attr_name.t list
  | Select of node * atom list
  | Generalize of node * node
  | Join of node * node
  | Call of { gf : string; node : node }
      (** apply generic function [gf] to each instance *)

(** Build an atom from a comparison; [ordered] as in
    {!Kind.of_comparison}. *)
val atom : ordered:bool -> Attr_name.t -> Body.literal -> atom

val pp_atom : atom Fmt.t
val pp : node Fmt.t

(** [inline env node] substitutes every [Ref v] with its definition in
    [env] (unknown references are left in place). *)
val inline : (string * node) list -> node -> node
