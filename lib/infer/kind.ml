open Tdp_core

(* A kind is the set of attribute value types a constraint still
   admits, as a bitset.  The bits mirror [Value_type.t] exactly: one
   per primitive, one for object (named) types, one for [Unknown].
   [of_comparison] is the abstract transfer function of
   [Pred.literal_compatible]: for every literal/operator pair it
   returns precisely the set of attribute types that comparison
   accepts, so meets over kinds track conjunctions of predicate
   atoms without loss. *)

type t = int

let b_int = 1
let b_float = 2
let b_string = 4
let b_bool = 8
let b_date = 16
let b_object = 32
let b_unknown = 64

let any = 127
let none = 0
let numeric = b_int lor b_float lor b_date

let inter = ( land )
let is_any k = k = any
let is_empty k = k = none

(* Pred.literal_compatible, abstracted over the attribute type:
   numeric literals compare (with any operator) against int, float and
   the year-valued date; string and bool literals support equality
   against their own primitive only; null supports equality against
   everything.  Ordering a string, bool or null literal admits no
   attribute type at all. *)
let of_comparison ~ordered (lit : Body.literal) =
  match lit with
  | Int _ | Float _ -> numeric
  | String _ -> if ordered then none else b_string
  | Bool _ -> if ordered then none else b_bool
  | Null -> if ordered then none else any

let bit_of_type (vt : Value_type.t) =
  match vt with
  | Prim Int -> b_int
  | Prim Float -> b_float
  | Prim String -> b_string
  | Prim Bool -> b_bool
  | Prim Date -> b_date
  | Named _ -> b_object
  | Unknown -> b_unknown

let admits k vt = k land bit_of_type vt <> 0

let pp ppf k =
  if is_any k then Fmt.string ppf "any"
  else if is_empty k then Fmt.string ppf "none"
  else
    let names =
      List.filter_map
        (fun (b, n) -> if k land b <> 0 then Some n else None)
        [ (b_int, "int"); (b_float, "float"); (b_string, "string");
          (b_bool, "bool"); (b_date, "date"); (b_object, "object");
          (b_unknown, "unknown")
        ]
    in
    Fmt.pf ppf "{%s}" (String.concat "|" names)

let to_string k = Fmt.str "%a" pp k
