(** Principal-type inference for algebra pipelines.

    Solves the attribute-set and kind constraints of a {!Pipeline}
    program with a union-find row solver, yielding for each pipeline a
    {!principal} schema — the weakest requirements on its source types
    under which every derivation step succeeds — or a structured
    {!error}.  {!admits} then checks a principal against a concrete
    schema by evaluating the pipeline's rows bottom-up, mirroring what
    {!Tdp_algebra.View.derive_exn} would verify.

    The contract with derivation (tested differentially): whenever
    [View.derive] succeeds on a concrete schema, inference succeeds
    and the schema is admitted; every solve-time error marks a
    pipeline no instantiation can derive. *)

open Tdp_core

type error =
  | Ill_typed of { view : string; reason : string }
      (** structurally untypeable: empty projection, generalize over
          provably disjoint rows, unknown reference *)
  | Attr_absent of { view : string; attr : Attr_name.t; row : Attr_name.t list }
      (** a required attribute is missing from an exactly-known row,
          so no instantiation can supply it *)
  | Join_related of { view : string; left : string; right : string }
      (** join operands provably ⪯-related in every instantiation *)
  | Pred_conflict of { view : string; attr : Attr_name.t }
      (** the comparisons one view performs on an attribute admit no
          attribute type *)
  | Reuse_conflict of { view : string; prior : string; attr : Attr_name.t }
      (** two views constrain one attribute with incompatible kinds *)

(** The view a solve error belongs to. *)
val error_view : error -> string

val error_message : error -> string
val pp_error : error Fmt.t

(** The row of a pipeline's result: exactly known (projection-topped)
    or a lower bound. *)
type row = Exactly of Attr_name.Set.t | At_least of Attr_name.Set.t

(** A pipeline's principal schema: the weakest concrete-schema
    requirements under which its derivation succeeds. *)
type principal = {
  name : string;
  pipeline : Pipeline.node;  (** reference-free: refs inlined *)
  sources : (Type_name.t * Attr_name.Set.t) list;
      (** per source type, the attributes it must carry *)
  result : row;
  kinds : (Attr_name.t * Kind.t) list;  (** non-trivial kind constraints *)
  gfs : string list;  (** generic functions the pipeline applies *)
  residuals : Attr_name.t list;
      (** attributes some join operand must supply; decidable only at
          instantiation *)
}

val pp_row : row Fmt.t
val pp_principal : principal Fmt.t

(** Solve a program in declaration order (later pipelines may
    reference earlier ones by name).  Each pipeline yields its
    principal or its first error; a failed pipeline binds an
    unconstrained row so later solves are not cascaded. *)
val infer_program :
  (string * Pipeline.node) list -> (string * (principal, error) result) list

(** {!infer_program} over a single pipeline. *)
val infer : ?name:string -> Pipeline.node -> (principal, error) result

(** Does a concrete schema instantiate the principal?  Evaluates the
    pipeline's attribute rows bottom-up: source existence, attribute
    availability, predicate kind agreement, non-empty generalization,
    and generic-function applicability. *)
val admits : Schema.t -> principal -> (unit, error) result
