(** Multi-method dispatch.

    Selects the most specific applicable method for a generic-function
    call from the dynamic types of all arguments — the dispatch model
    of CommonLoops/CLOS that the paper assumes (Section 2).  Methods
    are ranked by argument precedence order: formals are compared
    position by position through the class precedence list of the
    corresponding actual argument. *)

open Tdp_core

type t

(** A dispatcher memoizes subtype queries, class precedence lists, and
    a dispatch table of fully resolved call outcomes keyed by
    [(gf, arg_types)]; build a fresh one whenever the schema changes.

    {b Invalidation:} every cache is derived from the (immutable)
    [Schema.t] value captured here, so entries never go stale within
    one dispatcher.  A schema change produces a new schema value and
    therefore requires a new dispatcher; there is deliberately no
    [clear] — holders of a stale dispatcher would still answer from the
    old schema.

    [surrogate_transparent] (default [true]) makes a surrogate share
    the specificity rank of its source type, as the paper's Section 5
    transparency requirement demands; [false] gives the naive ranking
    (each CPL position its own rank), exposed only for the S7 ablation
    that quantifies how many dispatch outcomes the naive ranking flips
    after a projection. *)
val create : ?surrogate_transparent:bool -> Schema.t -> t

val schema : t -> Schema.t

(** The compiled {!Schema_index} this dispatcher ranks against: O(1)
    subtype bit tests and memoized linearizations, shared with every
    other consumer of the same hierarchy value. *)
val index : t -> Schema_index.t

(** The {!Schema.generation} stamp of the schema this dispatcher was
    built for.  Holders of a long-lived dispatcher compare it against
    the generation of the schema they are about to dispatch over to
    detect staleness in O(1). *)
val generation : t -> int

(** [ensure_fresh t schema] asserts that [schema] is the value this
    dispatcher was built for.
    @raise Error.E [Invariant_violation] on a generation mismatch —
    the dispatcher would answer from an evolved-away schema. *)
val ensure_fresh : t -> Schema.t -> unit

(** Class precedence list of a type (memoized in the schema index).
    @raise Error.E [Linearization_failure]. *)
val cpl : t -> Type_name.t -> Type_name.t list

exception Ambiguous of { gf : string; methods : Method_def.Key.t list }

(** [compare_specificity t ~arg_types m1 m2] is negative when [m1] is
    more specific than [m2] for a call with the given actual types. *)
val compare_specificity :
  t -> arg_types:Type_name.t list -> Method_def.t -> Method_def.t -> int

(** Applicable methods, most specific first.  The result is memoized in
    the dispatch table: repeated calls with the same [(gf, arg_types)]
    return the cached ranking. *)
val applicable : t -> gf:string -> arg_types:Type_name.t list -> Method_def.t list

(** Like {!applicable} but bypassing (and not populating) the dispatch
    table — the reference implementation the cached path is tested
    against, and the baseline for the cached-vs-uncached benchmarks. *)
val applicable_uncached :
  t -> gf:string -> arg_types:Type_name.t list -> Method_def.t list

(** The method that would be executed, or [None] if no method is
    applicable.  The resolved outcome is memoized; a call once found
    ambiguous keeps raising on every later dispatch.
    @raise Ambiguous when two applicable methods tie. *)
val most_specific :
  t -> gf:string -> arg_types:Type_name.t list -> Method_def.t option

(** Dispatch-table occupancy and aggregate hit/miss counters across the
    ranking and resolution tables (informational, e.g. for the bench
    JSON report). *)
type stats = { entries : int; hits : int; misses : int }

(** A {b pure} read of the current statistics: calling it repeatedly,
    with no dispatches in between, returns equal values.  Use {!reset}
    to zero the counters. *)
val stats : t -> stats

(** Zero the hit/miss counters (table occupancy is untouched — cached
    entries remain valid).  The only way counters go backwards. *)
val reset : t -> unit

(** The next most specific method after [after] (call-next-method). *)
val next_method :
  t ->
  gf:string ->
  arg_types:Type_name.t list ->
  after:Method_def.Key.t ->
  Method_def.t option
