open Tdp_core

(* Static consistency checks for generic functions, in the spirit of
   the paper's reference [2] (Agrawal, DeMichiel & Lindsay, "Static
   Type Checking of Multi-Methods", OOPSLA'91).  The checks are used by
   the test suite to show that the refactored schema produced by a
   projection dispatches exactly as the original did. *)

type issue =
  | Duplicate_signature of { gf : string; m1 : Method_def.Key.t; m2 : Method_def.Key.t }
  | Uncovered_call of { gf : string; arg_types : Type_name.t list }
  | Ambiguous_call of {
      gf : string;
      arg_types : Type_name.t list;
      methods : Method_def.Key.t list;
    }

let pp_issue ppf = function
  | Duplicate_signature { gf; m1; m2 } ->
      Fmt.pf ppf "generic %s: methods %a and %a have identical signatures" gf
        Method_def.Key.pp m1 Method_def.Key.pp m2
  | Uncovered_call { gf; arg_types } ->
      Fmt.pf ppf "generic %s: call (%a) has no applicable method" gf
        Fmt.(list ~sep:comma Type_name.pp)
        arg_types
  | Ambiguous_call { gf; arg_types; methods } ->
      Fmt.pf ppf "generic %s: call (%a) is ambiguous between %a" gf
        Fmt.(list ~sep:comma Type_name.pp)
        arg_types
        Fmt.(list ~sep:comma Method_def.Key.pp)
        methods

(* Two methods of one generic function must not share a signature. *)
let duplicate_signatures schema =
  List.concat_map
    (fun g ->
      let rec pairs = function
        | [] -> []
        | m :: rest ->
            List.filter_map
              (fun m' ->
                if
                  List.equal Type_name.equal
                    (Signature.param_types (Method_def.signature m))
                    (Signature.param_types (Method_def.signature m'))
                then
                  Some
                    (Duplicate_signature
                       { gf = Generic_function.name g;
                         m1 = Method_def.key m;
                         m2 = Method_def.key m'
                       })
                else None)
              rest
            @ pairs rest
      in
      pairs (Generic_function.methods g))
    (Schema.gfs schema)

(* Cartesian product of candidate argument types, capped to keep the
   check tractable on synthetic schemas. *)
let rec product = function
  | [] -> [ [] ]
  | xs :: rest ->
      let tails = product rest in
      List.concat_map (fun x -> List.map (fun t -> x :: t) tails) xs

(* For every combination of [arg_space] types at each position that has
   at least one applicable method in the original schema, dispatch must
   select a unique method. *)
let call_space_issues dispatcher ~gf ~arg_space =
  let g = Schema.find_gf (Dispatch.schema dispatcher) gf in
  let arity = Generic_function.arity g in
  let spaces = List.init arity (fun _ -> arg_space) in
  List.filter_map
    (fun arg_types ->
      match Dispatch.most_specific dispatcher ~gf ~arg_types with
      | Some _ -> None
      | None -> Some (Uncovered_call { gf; arg_types })
      | exception Dispatch.Ambiguous { methods; _ } ->
          Some (Ambiguous_call { gf; arg_types; methods }))
    (product spaces)

(* The interesting call space of one generic function: at each argument
   position, the types that are a subtype of some method's formal at
   that position.  Calls outside this space can never dispatch anyway;
   inside it, every coverage gap and ambiguity is a genuine hazard. *)
let method_space_issues ?(max_combinations = 4096) dispatcher ~gf =
  let schema = Dispatch.schema dispatcher in
  let index = Dispatch.index dispatcher in
  let g = Schema.find_gf schema gf in
  let methods = Generic_function.methods g in
  if methods = [] then []
  else
    let arity = Generic_function.arity g in
    let spaces =
      List.init arity (fun i ->
          List.fold_left
            (fun acc m ->
              let formal = Signature.param_type (Method_def.signature m) i in
              List.fold_left
                (fun acc d -> Type_name.Set.add d acc)
                acc
                (Schema_index.descendants_or_self index formal))
            Type_name.Set.empty methods
          |> Type_name.Set.elements)
    in
    let total =
      List.fold_left (fun n s -> n * List.length s) 1 spaces
    in
    if total > max_combinations then []
    else
      List.filter_map
        (fun arg_types ->
          match Dispatch.most_specific dispatcher ~gf ~arg_types with
          | Some _ -> None
          | None -> Some (Uncovered_call { gf; arg_types })
          | exception Dispatch.Ambiguous { methods; _ } ->
              Some (Ambiguous_call { gf; arg_types; methods }))
        (product spaces)

(* Dispatch outcomes of [before] and [after] agree on every call over
   types present in both schemas: the dynamic-behavior preservation
   property of the refactoring. *)
let dispatch_preserved ?surrogate_transparent ~before ~after ~arg_space () =
  let db = Dispatch.create before
  and da = Dispatch.create ?surrogate_transparent after in
  List.concat_map
    (fun g ->
      let gf = Generic_function.name g in
      let arity = Generic_function.arity g in
      let spaces = List.init arity (fun _ -> arg_space) in
      List.filter_map
        (fun arg_types ->
          let pick d = try Option.map Method_def.key (Dispatch.most_specific d ~gf ~arg_types) with Dispatch.Ambiguous _ -> None in
          let kb = pick db and ka = pick da in
          if Option.equal Method_def.Key.equal kb ka then None
          else Some (gf, arg_types, kb, ka))
        (product spaces))
    (Schema.gfs before)
