open Tdp_core

(* Observability: cache effectiveness (hit/miss), the cost of a cold
   ranking, and ambiguity occurrences.  These global counters aggregate
   over every dispatcher in the process; the per-dispatcher [stats]
   record below stays the precise per-instance view.  Recording is
   gated inside Tdp_obs. *)
module Obs = Tdp_obs
let m_hit = Obs.Metrics.counter "dispatch.cache.hit"
let m_miss = Obs.Metrics.counter "dispatch.cache.miss"
let m_ambiguous = Obs.Metrics.counter "dispatch.ambiguous"
let m_rank_ns = Obs.Metrics.histogram "dispatch.rank_ns"

(* Fully resolved outcome of a call, cached so that repeated dispatch
   of the same (gf, argument-type tuple) never re-ranks candidates.
   Ties are cached too: a call found ambiguous once must keep raising
   [Ambiguous] on every later dispatch. *)
type resolution =
  | No_method
  | Selected of Method_def.t
  | Tie of Method_def.Key.t * Method_def.Key.t

type stats = { entries : int; hits : int; misses : int }

type t = {
  schema : Schema.t;
  schema_generation : int;
  index : Schema_index.t;
  ranks : (Type_name.t, (Type_name.t, int) Hashtbl.t) Hashtbl.t;
  surrogate_transparent : bool;
  (* The dispatch tables, keyed by (gf, arg_types).  Both depend only
     on the (immutable) schema captured at [create] time, so no entry
     can go stale; "invalidation" is building a new dispatcher for the
     new schema value. *)
  table : (string * Type_name.t list, Method_def.t list) Hashtbl.t;
  resolutions : (string * Type_name.t list, resolution) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(surrogate_transparent = true) schema =
  { schema;
    schema_generation = Schema.generation schema;
    index = Schema_index.of_hierarchy (Schema.hierarchy schema);
    ranks = Hashtbl.create 32;
    surrogate_transparent;
    table = Hashtbl.create 64;
    resolutions = Hashtbl.create 64;
    hits = 0;
    misses = 0
  }

let schema t = t.schema
let index t = t.index
let generation t = t.schema_generation

(* The dispatcher answers for exactly one schema value; [ensure_fresh]
   lets holders of a long-lived dispatcher assert, before a query, that
   the schema they are about to dispatch against is still that value.
   Generation stamps make this one integer comparison. *)
let ensure_fresh t schema' =
  let got = Schema.generation schema' in
  if got <> t.schema_generation then
    Error.raise_
      (Invariant_violation
         (Fmt.str
            "stale dispatcher: built for schema generation %d but queried \
             against generation %d; rebuild with Dispatch.create"
            t.schema_generation got))

(* [stats] is a pure read: calling it any number of times returns the
   same value.  Zeroing the counters is a separate, explicit act. *)
let stats t =
  { entries = Hashtbl.length t.table + Hashtbl.length t.resolutions;
    hits = t.hits;
    misses = t.misses
  }

let reset t =
  t.hits <- 0;
  t.misses <- 0

let cpl t n = Schema_index.cpl t.index n

(* Specificity rank of each supertype in the class precedence list of
   [actual] — with surrogate transparency: a surrogate shares the rank
   of its source type whenever the source is in the same CPL.  The
   paper requires the Q̂–Q factorization to be "transparent from the
   standpoint of the state and behavior of the combined Q̂–Q types"
   (Section 5); without rank sharing, relocating an applicable method
   from (…,T,…) to (…,T̂,…) would make it rank strictly after a
   not-relocated sibling method on T at a position where the two
   previously tied, flipping dispatch for original instances.  (A
   source always precedes its surrogate in the CPL, so the shared rank
   is already assigned when the surrogate is reached.) *)
let rank_table t actual =
  match Hashtbl.find_opt t.ranks actual with
  | Some tbl -> tbl
  | None ->
      let h = Schema.hierarchy t.schema in
      let tbl = Hashtbl.create 16 in
      List.iteri
        (fun i n ->
          let rank =
            if not t.surrogate_transparent then i
            else
              match Type_def.origin (Hierarchy.find h n) with
              | Surrogate { source; _ } -> (
                  match Hashtbl.find_opt tbl source with
                  | Some r -> r
                  | None -> i)
              | Source -> i
          in
          Hashtbl.replace tbl n rank)
        (cpl t actual);
      Hashtbl.replace t.ranks actual tbl;
      tbl

let cpl_index t ~actual ~formal = Hashtbl.find_opt (rank_table t actual) formal

exception Ambiguous of { gf : string; methods : Method_def.Key.t list }

(* Argument precedence order, CLOS style: compare two applicable
   methods position by position, ranking each formal by its index in
   the corresponding actual argument's class precedence list. *)
let compare_specificity t ~arg_types m1 m2 =
  let p1 = Signature.param_types (Method_def.signature m1) in
  let p2 = Signature.param_types (Method_def.signature m2) in
  let rec go args f1s f2s =
    match (args, f1s, f2s) with
    | [], [], [] -> 0
    | actual :: args, f1 :: f1s, f2 :: f2s -> (
        if Type_name.equal f1 f2 then go args f1s f2s
        else
          match (cpl_index t ~actual ~formal:f1, cpl_index t ~actual ~formal:f2) with
          | Some i, Some j -> (
              (* equal ranks (e.g. a source and its surrogate) tie at
                 this position; the next position decides *)
              match Int.compare i j with 0 -> go args f1s f2s | c -> c)
          | Some _, None -> -1
          | None, Some _ -> 1
          | None, None -> go args f1s f2s)
    | _ -> invalid_arg "compare_specificity: arity mismatch"
  in
  go arg_types p1 p2

let applicable_uncached t ~gf ~arg_types =
  Obs.Metrics.time m_rank_ns (fun () ->
      let ms =
        Schema.methods_applicable_to_call t.schema t.index ~gf ~arg_types
      in
      List.stable_sort (compare_specificity t ~arg_types) ms)

let applicable t ~gf ~arg_types =
  let key = (gf, arg_types) in
  match Hashtbl.find_opt t.table key with
  | Some ms ->
      t.hits <- t.hits + 1;
      Obs.Metrics.incr m_hit;
      ms
  | None ->
      t.misses <- t.misses + 1;
      Obs.Metrics.incr m_miss;
      let ms = applicable_uncached t ~gf ~arg_types in
      Hashtbl.replace t.table key ms;
      ms

let resolve_uninstrumented t ~gf ~arg_types =
  let key = (gf, arg_types) in
  match Hashtbl.find_opt t.resolutions key with
  | Some r ->
      t.hits <- t.hits + 1;
      Obs.Metrics.incr m_hit;
      r
  | None ->
      let r =
        match applicable t ~gf ~arg_types with
        | [] -> No_method
        | [ m ] -> Selected m
        | m1 :: m2 :: _ ->
            if compare_specificity t ~arg_types m1 m2 = 0 then
              Tie (Method_def.key m1, Method_def.key m2)
            else Selected m1
      in
      Hashtbl.replace t.resolutions key r;
      r

(* One span per dispatch when tracing is on; the [enabled] guard keeps
   the disabled path free of attribute-list allocation. *)
let resolve t ~gf ~arg_types =
  if not (Obs.Trace.enabled ()) then resolve_uninstrumented t ~gf ~arg_types
  else
    Obs.Trace.with_span
      ~attrs:
        [ ("gf", gf); ("arity", string_of_int (List.length arg_types)) ]
      "dispatch.resolve"
      (fun () -> resolve_uninstrumented t ~gf ~arg_types)

let most_specific t ~gf ~arg_types =
  match resolve t ~gf ~arg_types with
  | No_method -> None
  | Selected m -> Some m
  | Tie (k1, k2) ->
      Obs.Metrics.incr m_ambiguous;
      raise (Ambiguous { gf; methods = [ k1; k2 ] })

(* Next most specific method after [after] for the same call — the
   CLOS call-next-method chain. *)
let next_method t ~gf ~arg_types ~after =
  let rec drop = function
    | [] -> None
    | m :: rest ->
        if Method_def.Key.equal (Method_def.key m) after then
          match rest with [] -> None | m' :: _ -> Some m'
        else drop rest
  in
  drop (applicable t ~gf ~arg_types)
