(** Static checking of generic functions over a schema.

    A simplified form of the analysis in the paper's reference [2]
    (OOPSLA'91): duplicate-signature detection, call-space coverage,
    and ambiguity detection; plus a differential check that dispatch
    outcomes are preserved by a refactoring. *)

open Tdp_core

type issue =
  | Duplicate_signature of { gf : string; m1 : Method_def.Key.t; m2 : Method_def.Key.t }
  | Uncovered_call of { gf : string; arg_types : Type_name.t list }
  | Ambiguous_call of {
      gf : string;
      arg_types : Type_name.t list;
      methods : Method_def.Key.t list;
    }

val pp_issue : issue Fmt.t

(** Methods of one generic function with identical parameter types. *)
val duplicate_signatures : Schema.t -> issue list

(** Coverage/ambiguity over the cartesian product of [arg_space] at
    every argument position of [gf]. *)
val call_space_issues :
  Dispatch.t -> gf:string -> arg_space:Type_name.t list -> issue list

(** Coverage/ambiguity of [gf] over its own interesting call space: at
    each position, the subtypes of the methods' formals there.  Calls
    outside this space can never dispatch; inside it, every uncovered or
    ambiguous combination is a genuine hazard.  Skips generic functions
    whose space exceeds [max_combinations] (default 4096). *)
val method_space_issues :
  ?max_combinations:int -> Dispatch.t -> gf:string -> issue list

(** Calls over types common to both schemas whose dispatch outcome
    differs; empty when the refactoring preserved behavior.
    [surrogate_transparent] configures the after-schema dispatcher
    (see {!Dispatch.create}). *)
val dispatch_preserved :
  ?surrogate_transparent:bool ->
  before:Schema.t ->
  after:Schema.t ->
  arg_space:Type_name.t list ->
  unit ->
  (string * Type_name.t list * Method_def.Key.t option * Method_def.Key.t option) list
