open Tdp_core
module Dispatch = Tdp_dispatch.Dispatch

(* Observability: dispatcher rebuilds are the interpreter's hidden cost
   after schema churn — each one recompiles the memo tables — and every
   top-level generic-function call gets a span.  Gated inside Tdp_obs. *)
module Obs = Tdp_obs
let m_rebuild = Obs.Metrics.counter "interp.dispatcher_rebuild"

(* A dispatch frame: enough context for call_next_method to resume the
   applicable-method chain of the innermost generic-function call. *)
type frame = {
  frame_gf : string;
  frame_args : Value.t list;  (** dispatched args ++ writer extras *)
  frame_types : Type_name.t list;  (** dynamic types of dispatched args *)
  frame_meth : Method_def.Key.t;
}

type t = {
  db : Database.t;
  mutable dispatch : Dispatch.t;
  now : int;
  max_depth : int;
  mutable frames : frame list;
  mutable depth : int;
}

exception Runtime_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

let create ?(now = 2026) ?(max_depth = 10_000) db =
  { db;
    dispatch = Dispatch.create (Database.schema db);
    now;
    max_depth;
    frames = [];
    depth = 0
  }

let db t = t.db

(* Rebuild the dispatcher after a schema change on the database. *)
let refresh t =
  { t with
    dispatch = Dispatch.create (Database.schema t.db);
    frames = [];
    depth = 0
  }

(* The database's schema can be swapped under a live interpreter
   ([Database.set_schema] after an evolution or factoring step).  A
   dispatcher memoizes outcomes for exactly one schema value, so
   answering from [t.dispatch] after a swap would silently dispatch
   against the evolved-away schema.  Generation stamps make staleness
   one integer comparison, checked at every top-level call; mid-call
   ([call_next_method]) frames keep the dispatcher they started with,
   as the schema cannot change within a call. *)
let dispatcher t =
  let schema = Database.schema t.db in
  if Dispatch.generation t.dispatch <> Schema.generation schema then begin
    Obs.Metrics.incr m_rebuild;
    t.dispatch <- Dispatch.create schema
  end;
  t.dispatch

exception Returned of Value.t

module Env = Map.Make (String)

let truthy = function
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> fail "expected a boolean, got %a" Value.pp v

let num_op fi ff a b =
  match (a, b) with
  | Value.Int x, Value.Int y -> Value.Int (fi x y)
  | Value.Float x, Value.Float y -> Value.Float (ff x y)
  | Value.Int x, Value.Float y -> Value.Float (ff (float_of_int x) y)
  | Value.Float x, Value.Int y -> Value.Float (ff x (float_of_int y))
  | a, b -> fail "arithmetic on %a and %a" Value.pp a Value.pp b

let as_float = function
  | Value.Int x -> float_of_int x
  | Value.Float x -> x
  | Value.Date y -> float_of_int y
  | v -> fail "expected a number, got %a" Value.pp v

let rec eval_builtin t op args =
  match (op, args) with
  | "call_next_method", [] -> (
      match t.frames with
      | [] -> fail "call_next_method outside of a method body"
      | frame :: _ -> (
          match
            Dispatch.next_method t.dispatch ~gf:frame.frame_gf
              ~arg_types:frame.frame_types ~after:frame.frame_meth
          with
          | None ->
              fail "no next method for %s after %s" frame.frame_gf
                (Method_def.Key.id frame.frame_meth)
          | Some m ->
              run_framed t
                { frame with frame_meth = Method_def.key m }
                m frame.frame_args))
  | "+", [ a; b ] -> num_op ( + ) ( +. ) a b
  | "-", [ a; b ] -> num_op ( - ) ( -. ) a b
  | "*", [ a; b ] -> num_op ( * ) ( *. ) a b
  | "/", [ a; b ] -> num_op ( / ) ( /. ) a b
  | "=", [ a; b ] -> Value.Bool (Value.equal a b)
  | "!=", [ a; b ] -> Value.Bool (not (Value.equal a b))
  | "<", [ a; b ] -> Value.Bool (as_float a < as_float b)
  | ">", [ a; b ] -> Value.Bool (as_float a > as_float b)
  | "<=", [ a; b ] -> Value.Bool (as_float a <= as_float b)
  | ">=", [ a; b ] -> Value.Bool (as_float a >= as_float b)
  | "and", [ a; b ] -> Value.Bool (truthy a && truthy b)
  | "or", [ a; b ] -> Value.Bool (truthy a || truthy b)
  | "not", [ a ] -> Value.Bool (not (truthy a))
  | "years_since", [ Value.Date y ] -> Value.Int (t.now - y)
  | "years_since", [ v ] -> fail "years_since on %a" Value.pp v
  | op, args -> fail "unknown builtin %s/%d" op (List.length args)

and eval_expr t env (e : Body.expr) =
  match e with
  | Var x -> (
      match Env.find_opt x env with
      | Some v -> v
      | None -> fail "unbound variable %s" x)
  | Lit l -> Value.of_literal l
  | Call { gf; args } -> call t gf (List.map (eval_expr t env) args)
  | Builtin { op; args } -> eval_builtin t op (List.map (eval_expr t env) args)

and exec_stmts t env stmts =
  List.fold_left (fun env s -> exec_stmt t env s) env stmts

and exec_stmt t env (s : Body.stmt) =
  match s with
  | Local { var; init; _ } ->
      let v = match init with Some e -> eval_expr t env e | None -> Value.Null in
      Env.add var v env
  | Assign (x, e) ->
      if not (Env.mem x env) then fail "assignment to unbound variable %s" x;
      Env.add x (eval_expr t env e) env
  | Expr e ->
      ignore (eval_expr t env e);
      env
  | Return None -> raise (Returned Value.Null)
  | Return (Some e) -> raise (Returned (eval_expr t env e))
  | If (c, th, el) ->
      if truthy (eval_expr t env c) then exec_stmts t env th
      else exec_stmts t env el
  | While (c, b) ->
      let rec loop env =
        if truthy (eval_expr t env c) then loop (exec_stmts t env b) else env
      in
      loop env

(* Generic-function call: dispatch on the dynamic types of all object
   arguments (a writer's trailing value argument is not dispatched). *)
and call t gf args =
  if not (Obs.Trace.enabled ()) then call_uninstrumented t gf args
  else
    Obs.Trace.with_span ~attrs:[ ("gf", gf) ] "interp.call" (fun () ->
        call_uninstrumented t gf args)

and call_uninstrumented t gf args =
  let schema = Database.schema t.db in
  let is_writer = Schema.is_writer_gf schema gf in
  let dispatched, extra =
    if is_writer then
      match args with
      | obj :: rest -> ([ obj ], rest)
      | [] -> fail "writer %s called with no arguments" gf
    else (args, [])
  in
  let arg_types =
    List.map
      (fun v ->
        match (v : Value.t) with
        | Ref o -> Database.type_of t.db o
        | v -> fail "generic function %s applied to non-object %a" gf Value.pp v)
      dispatched
  in
  match Dispatch.most_specific (dispatcher t) ~gf ~arg_types with
  | None ->
      fail "no applicable method for %s(%s)" gf
        (String.concat ", " (List.map Type_name.to_string arg_types))
  | Some m ->
      run_framed t
        { frame_gf = gf;
          frame_args = dispatched @ extra;
          frame_types = arg_types;
          frame_meth = Method_def.key m
        }
        m (dispatched @ extra)

(* Execute [m] with [frame] visible to call_next_method.  The frame
   stack doubles as a recursion-depth guard: generic functions can be
   (mutually) recursive, and a runaway recursion should be a runtime
   error, not a crash. *)
and run_framed t frame m args =
  if t.depth >= t.max_depth then
    fail "recursion depth exceeded (%d frames) calling %s" t.max_depth
      frame.frame_gf;
  t.frames <- frame :: t.frames;
  t.depth <- t.depth + 1;
  Fun.protect
    ~finally:(fun () ->
      t.frames <- List.tl t.frames;
      t.depth <- t.depth - 1)
    (fun () -> run_method t m args)

and run_method t m args =
  match (Method_def.kind m, args) with
  | Reader a, [ Value.Ref o ] -> Database.get_attr t.db o a
  | Writer a, [ Value.Ref o; v ] ->
      Database.set_attr t.db o a v;
      Value.Null
  | Writer a, [ Value.Ref o ] ->
      (* writer invoked without a value: clear the slot *)
      Database.set_attr t.db o a Value.Null;
      Value.Null
  | (Reader _ | Writer _), _ ->
      fail "accessor %s applied to unexpected arguments" (Method_def.id m)
  | General body, args ->
      let params = Signature.params (Method_def.signature m) in
      if List.length params <> List.length args then
        fail "method %s expects %d arguments, got %d" (Method_def.id m)
          (List.length params) (List.length args);
      let env =
        List.fold_left2
          (fun env (x, _) v -> Env.add x v env)
          Env.empty params args
      in
      (try
         ignore (exec_stmts t env body);
         Value.Null
       with Returned v -> v)

let call_on t gf oids = call t gf (List.map (fun o -> Value.Ref o) oids)
