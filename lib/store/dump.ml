open Tdp_core

(* A line-oriented dump format for object stores:

     obj #<oid> <Type> <attr>=<value> <attr>=<value> …

   Values: integers [42], floats [42.5] (always with a point or
   exponent; [nan]/[inf]/[-inf] for non-finite), quoted strings
   (backslash escapes), booleans [true]/[false], dates [year:1990],
   references [#3], and [null].  Lines starting with [--] are
   comments.  Loading is two-pass so forward references work. *)

exception Parse_error of { line : int; message : string }

(* Observability: snapshot save/load dominate checkpoint cost; both are
   timed and traced (gated inside Tdp_obs). *)
module Obs = Tdp_obs
let m_save_ns = Obs.Metrics.histogram "dump.save_ns"
let m_load_ns = Obs.Metrics.histogram "dump.load_ns"

let fail line fmt = Fmt.kstr (fun message -> raise (Parse_error { line; message })) fmt

(* Shortest decimal that reads back to exactly [f]: [%.12g] is compact
   and almost always exact; when it is lossy (e.g. 0.1 +. 0.2) fall
   back to the 17 significant digits that round-trip every double. *)
let float_to_string f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else
    let s = Fmt.str "%.12g" f in
    let s = if float_of_string s = f then s else Fmt.str "%.17g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let value_to_string (v : Value.t) =
  match v with
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | String s -> Fmt.str "%S" s
  | Bool b -> string_of_bool b
  | Date y -> Fmt.str "year:%d" y
  | Ref o -> Fmt.str "#%d" (Oid.to_int o)
  | Null -> "null"

let value_of_string line s : Value.t =
  let len = String.length s in
  if len = 0 then fail line "empty value"
  else if s = "null" then Null
  else if s = "true" then Bool true
  else if s = "false" then Bool false
  else if s = "nan" then Float Float.nan
  else if s = "inf" || s = "+inf" then Float Float.infinity
  else if s = "-inf" then Float Float.neg_infinity
  else if s.[0] = '"' then
    if len >= 2 && s.[len - 1] = '"' then String (Scanf.sscanf s "%S" Fun.id)
    else fail line "unterminated string %s" s
  else if s.[0] = '#' then
    match int_of_string_opt (String.sub s 1 (len - 1)) with
    | Some i when i >= 1 -> Ref (Oid.of_int i)
    | Some _ -> fail line "non-positive oid in reference %s" s
    | None -> fail line "bad reference %s" s
  else if len > 5 && String.sub s 0 5 = "year:" then
    match int_of_string_opt (String.sub s 5 (len - 5)) with
    | Some y -> Date y
    | None -> fail line "bad date %s" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail line "unreadable value %s" s)

let to_string db =
  let buf = Buffer.create 1024 in
  (* [fold_rows] yields bindings in attribute-name order, matching the
     slot-map iteration this format was defined by, without
     materializing a map per object *)
  Database.fold_rows db ~init:() (fun () oid ty bindings ->
      Buffer.add_string buf
        (Fmt.str "obj #%d %s" (Oid.to_int oid) (Type_name.to_string ty));
      List.iter
        (fun (a, v) ->
          Buffer.add_string buf
            (Fmt.str " %s=%s" (Attr_name.to_string a) (value_to_string v)))
        bindings;
      Buffer.add_char buf '\n');
  Buffer.contents buf

(* Split a dump line into whitespace-separated tokens, keeping quoted
   strings intact. *)
let tokens line_no line =
  let out = ref [] and buf = Buffer.create 16 in
  let in_string = ref false and escaped = ref false in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      if !in_string then begin
        Buffer.add_char buf c;
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_string := false
      end
      else
        match c with
        | ' ' | '\t' -> flush ()
        | '"' ->
            Buffer.add_char buf c;
            in_string := true
        | c -> Buffer.add_char buf c)
    line;
  if !in_string then fail line_no "unterminated string";
  flush ();
  List.rev !out

type parsed_obj = {
  p_oid : int;
  p_ty : Type_name.t;
  p_slots : (Attr_name.t * Value.t) list;
  p_line : int;
}

let parse_line line_no line =
  match tokens line_no line with
  | [] -> None
  | t :: _ when String.length t >= 2 && String.sub t 0 2 = "--" -> None
  | "obj" :: oid :: ty :: slots ->
      let p_oid =
        if String.length oid > 1 && oid.[0] = '#' then
          match int_of_string_opt (String.sub oid 1 (String.length oid - 1)) with
          | Some i when i >= 1 -> i
          | Some _ ->
              (* OIDs are allocated from 1; accepting #0 or a negative
                 OID here would let a restored object sit outside the
                 allocator's range and silently coexist with fresh
                 allocations. *)
              fail line_no "non-positive oid %s" oid
          | None -> fail line_no "bad oid %s" oid
        else fail line_no "expected #<oid>, got %s" oid
      in
      let p_slots =
        List.map
          (fun tok ->
            match String.index_opt tok '=' with
            | Some i ->
                ( Attr_name.of_string (String.sub tok 0 i),
                  value_of_string line_no
                    (String.sub tok (i + 1) (String.length tok - i - 1)) )
            | None -> fail line_no "expected attr=value, got %s" tok)
          slots
      in
      Some { p_oid; p_ty = Type_name.of_string ty; p_slots; p_line = line_no }
  | t :: _ -> fail line_no "expected 'obj', got %s" t

let parse src =
  String.split_on_char '\n' src
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter_map (fun (i, l) -> if l = "" then None else parse_line i l)

(* Two passes: objects are created with their non-reference slots, then
   references are patched once every target exists. *)
let load_into_uninstrumented db src =
  let objs = parse src in
  (* pre-size the OID table: growing a 64-bucket table through a
     million inserts rehashes every element ~14 times *)
  Database.reserve db (List.length objs);
  let oids =
    List.map
      (fun p ->
        let plain =
          List.filter
            (fun (_, v) -> match (v : Value.t) with Ref _ -> false | _ -> true)
            p.p_slots
        in
        let oid =
          try Database.restore_object db ~oid:(Oid.of_int p.p_oid) ~ty:p.p_ty ~init:plain
          with Database.Store_error m -> fail p.p_line "%s" m
        in
        oid)
      objs
  in
  List.iter
    (fun p ->
      List.iter
        (fun (a, v) ->
          match (v : Value.t) with
          | Ref _ -> (
              try Database.set_attr db (Oid.of_int p.p_oid) a v
              with Database.Store_error m -> fail p.p_line "%s" m)
          | _ -> ())
        p.p_slots)
    objs;
  oids

let load_into db src =
  Obs.Metrics.time m_load_ns (fun () ->
      Obs.Trace.with_span "dump.load" (fun () ->
          load_into_uninstrumented db src))

(* ---- snapshot files ------------------------------------------------ *)

(* Fsync a directory so a just-completed [Sys.rename] inside it is
   itself durable: POSIX only guarantees the rename survives a crash
   once the parent directory's metadata hits disk.  Best-effort — some
   filesystems refuse fsync on a directory fd (EINVAL), which means the
   platform already orders the metadata for us. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* A crash between writing [path ^ ".tmp"] and renaming it over [path]
   strands the temporary sibling forever; nothing must ever read it as
   a snapshot.  [clean_tmp] removes it (store init/recover call this). *)
let clean_tmp ~path =
  let tmp = path ^ ".tmp" in
  if Sys.file_exists tmp then begin
    Sys.remove tmp;
    true
  end
  else false

let wal_seq_header = "-- wal-seq: "
let txn_seq_header = "-- txn-seq: "

(* Scan the leading comment lines for a numeric header.  Headers only
   ever appear at the top, before the first object line. *)
let header_value header src =
  let hl = String.length header in
  let rec go pos =
    if pos >= String.length src then 0
    else
      let nl =
        match String.index_from_opt src pos '\n' with
        | Some i -> i
        | None -> String.length src
      in
      let line = String.sub src pos (nl - pos) in
      if String.length line >= 2 && String.sub line 0 2 = "--" then
        if String.length line > hl && String.sub line 0 hl = header then
          match int_of_string_opt (String.sub line hl (String.length line - hl)) with
          | Some n -> n
          | None -> 0
        else go (nl + 1)
      else 0
  in
  go 0

let wal_seq src = header_value wal_seq_header src
let txn_seq src = header_value txn_seq_header src

(* Atomic snapshot: write to a temporary sibling, fsync, rename over
   the target, then fsync the parent directory — without the last step
   a crash after checkpoint-then-truncate can lose the rename itself
   and with it the snapshot.  The [wal_seq]/[txn_seq] headers record
   the last WAL / transaction-log sequence numbers folded into the
   snapshot; recovery skips records at or below them, which makes the
   checkpoint-then-truncate sequence crash-safe at every point. *)
let save ?(wal_seq = 0) ?(txn_seq = 0) ~path db =
  Obs.Metrics.time m_save_ns (fun () ->
      Obs.Trace.with_span "dump.save" (fun () ->
          let tmp = path ^ ".tmp" in
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              if wal_seq > 0 then
                output_string oc (Fmt.str "%s%d\n" wal_seq_header wal_seq);
              if txn_seq > 0 then
                output_string oc (Fmt.str "%s%d\n" txn_seq_header txn_seq);
              output_string oc (to_string db);
              flush oc;
              Unix.fsync (Unix.descr_of_out_channel oc));
          Sys.rename tmp path;
          fsync_dir (Filename.dirname path)))
