open Tdp_core

type obj = {
  oid : Oid.t;
  ty : Type_name.t;
  mutable slots : Value.t Attr_name.Map.t;
}

type delete_policy = Restrict | Nullify

(* The mutation vocabulary of a database, as seen by a journal.  Every
   state change is reported as exactly one [op] {e after} validation
   and {e before} the in-memory structures are touched, so a journal
   that appends each op durably realizes write-ahead logging: replaying
   a prefix of the journal reproduces a prefix of the run. *)
type op =
  | Op_new of { oid : Oid.t; ty : Type_name.t; init : (Attr_name.t * Value.t) list }
  | Op_set of { oid : Oid.t; attr : Attr_name.t; value : Value.t }
  | Op_delete of { oid : Oid.t; policy : delete_policy }
  | Op_set_schema of { source : string }

type t = {
  mutable schema : Schema.t;
  mutable index : Schema_index.t;
  mutable next : int;
  objects : (Oid.t, obj) Hashtbl.t;
  mutable journal : (op -> unit) option;
}

exception Store_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Store_error s)) fmt

let create schema =
  { schema;
    index = Schema_index.of_hierarchy (Schema.hierarchy schema);
    next = 1;
    objects = Hashtbl.create 64;
    journal = None
  }

let schema t = t.schema
let set_journal t j = t.journal <- j
let journaling t = t.journal <> None
let record t op = match t.journal with Some f -> f op | None -> ()

(* Swap in a refactored schema.  Projection never changes the
   cumulative state of pre-existing types (the paper's invariant), so
   stored objects — whose slots are keyed by attribute name — remain
   valid verbatim.  In journaling mode the swap must be replayable,
   which requires the schema's surface source. *)
let set_schema ?source t schema =
  (match (t.journal, source) with
  | None, _ -> ()
  | Some _, Some src -> record t (Op_set_schema { source = src })
  | Some _, None ->
      fail "set_schema on a journaled database requires the schema source");
  t.schema <- schema;
  t.index <- Schema_index.of_hierarchy (Schema.hierarchy schema)

let hierarchy t = Schema.hierarchy t.schema

let attr_def t ty attr =
  match Hierarchy.find_attribute (hierarchy t) ty attr with
  | Some a -> a
  | None ->
      fail "type %s has no attribute %s" (Type_name.to_string ty)
        (Attr_name.to_string attr)

let check_value t attr_ty v =
  match (attr_ty, (v : Value.t)) with
  | _, Value.Null -> ()
  | Value_type.Prim p, v ->
      if not (Value.conforms_prim v p) then
        fail "value %a does not conform to %s" Value.pp v
          (Value_type.prim_to_string p)
  | Value_type.Named n, Value.Ref o -> (
      match Hashtbl.find_opt t.objects o with
      | None -> fail "dangling reference %a" Oid.pp o
      | Some target ->
          if not (Schema_index.subtype t.index target.ty n) then
            fail "object %a of type %s is not a %s" Oid.pp o
              (Type_name.to_string target.ty)
              (Type_name.to_string n))
  | Value_type.Named _, v -> fail "value %a is not an object reference" Value.pp v
  | Value_type.Unknown, _ -> ()

let build_slots t ty ~init =
  if not (Hierarchy.mem (hierarchy t) ty) then
    fail "unknown type %s" (Type_name.to_string ty);
  let attrs = Hierarchy.all_attributes (hierarchy t) ty in
  let slots =
    List.fold_left
      (fun slots a ->
        let name = Attribute.name a in
        let v =
          match List.find_opt (fun (n, _) -> Attr_name.equal n name) init with
          | Some (_, v) ->
              check_value t (Attribute.ty a) v;
              v
          | None -> Value.Null
        in
        Attr_name.Map.add name v slots)
      Attr_name.Map.empty attrs
  in
  List.iter
    (fun (n, _) ->
      if not (List.exists (fun a -> Attr_name.equal (Attribute.name a) n) attrs)
      then
        fail "type %s has no attribute %s" (Type_name.to_string ty)
          (Attr_name.to_string n))
    init;
  slots

let new_object t ty ~init =
  let slots = build_slots t ty ~init in
  let oid = Oid.of_int t.next in
  record t (Op_new { oid; ty; init });
  t.next <- t.next + 1;
  Hashtbl.replace t.objects oid { oid; ty; slots };
  oid

(* Re-create an object under a fixed OID (used when loading a dump). *)
let restore_object t ~oid ~ty ~init =
  if Hashtbl.mem t.objects oid then fail "oid %a already in use" Oid.pp oid;
  let slots = build_slots t ty ~init in
  record t (Op_new { oid; ty; init });
  t.next <- max t.next (Oid.to_int oid + 1);
  Hashtbl.replace t.objects oid { oid; ty; slots };
  oid

let find t oid =
  match Hashtbl.find_opt t.objects oid with
  | Some o -> o
  | None -> fail "no object %a" Oid.pp oid

let type_of t oid = (find t oid).ty

let get_attr t oid attr =
  let o = find t oid in
  match Attr_name.Map.find_opt attr o.slots with
  | Some v -> v
  | None ->
      fail "object %a of type %s has no attribute %s" Oid.pp oid
        (Type_name.to_string o.ty) (Attr_name.to_string attr)

let set_attr t oid attr v =
  let o = find t oid in
  if not (Attr_name.Map.mem attr o.slots) then
    fail "object %a of type %s has no attribute %s" Oid.pp oid
      (Type_name.to_string o.ty) (Attr_name.to_string attr);
  let def = attr_def t o.ty attr in
  check_value t (Attribute.ty def) v;
  record t (Op_set { oid; attr; value = v });
  o.slots <- Attr_name.Map.add attr v o.slots

(* The (deep) extent of a type: every object whose type is a subtype.
   Instances of a source type are therefore instances of every view
   derived from it by projection — the instantiation semantics that
   placing the derived type as a supertype buys. *)
let extent t ty =
  Hashtbl.fold
    (fun oid o acc -> if Schema_index.subtype t.index o.ty ty then oid :: acc else acc)
    t.objects []
  |> List.sort Oid.compare

(* Objects holding a reference to [oid], with the referring slot. *)
let referrers t oid =
  Hashtbl.fold
    (fun other o acc ->
      if Oid.equal other oid then acc
      else
        Attr_name.Map.fold
          (fun attr v acc ->
            match v with
            | Value.Ref r when Oid.equal r oid -> (other, attr) :: acc
            | _ -> acc)
          o.slots acc)
    t.objects []
  |> List.sort (fun (a, x) (b, y) ->
         match Oid.compare a b with 0 -> Attr_name.compare x y | c -> c)

let delete t ?(policy = Restrict) oid =
  let _ = find t oid in
  let refs = referrers t oid in
  (match (policy, refs) with
  | Restrict, (other, attr) :: _ ->
      fail "cannot delete %a: referenced by %a.%s" Oid.pp oid Oid.pp other
        (Attr_name.to_string attr)
  | _ -> ());
  record t (Op_delete { oid; policy });
  (match policy with
  | Restrict -> ()
  | Nullify ->
      List.iter
        (fun (other, attr) ->
          let o = find t other in
          o.slots <- Attr_name.Map.add attr Value.Null o.slots)
        refs);
  Hashtbl.remove t.objects oid

let count t = Hashtbl.length t.objects
let next_oid t = t.next

let objects t =
  Hashtbl.fold (fun _ o acc -> o :: acc) t.objects []
  |> List.sort (fun a b -> Oid.compare a.oid b.oid)

let slots t oid = (find t oid).slots
