open Tdp_core

type obj = {
  oid : Oid.t;
  ty : Type_name.t;
  mutable slots : Value.t Attr_name.Map.t;
}

type delete_policy = Restrict | Nullify

(* The mutation vocabulary of a database, as seen by a journal.  Every
   state change is reported as exactly one [op] {e after} validation
   and {e before} the in-memory structures are touched, so a journal
   that appends each op durably realizes write-ahead logging: replaying
   a prefix of the journal reproduces a prefix of the run. *)
type op =
  | Op_new of { oid : Oid.t; ty : Type_name.t; init : (Attr_name.t * Value.t) list }
  | Op_set of { oid : Oid.t; attr : Attr_name.t; value : Value.t }
  | Op_delete of { oid : Oid.t; policy : delete_policy }
  | Op_set_schema of { source : string }

(* Storage is columnar ({!Columns}): objects of one type created under
   one compiled layout share a struct-of-arrays block, and an object is
   addressed by (block, row).  Blocks are keyed by type name, newest
   layout first — after [set_schema] changes a type's cumulative state,
   new instances go to a fresh block while existing instances keep the
   layout they were created with (exactly the old per-object-map
   semantics, where a slot set was fixed at creation time).

   [backrefs] is the maintained reverse-reference index: for every
   referenced OID, the set of (referrer, attribute) slots currently
   holding a [Ref] to it.  [referrers] and [delete] read it instead of
   scanning the whole store.

   [tick] is a logical clock bumped once per mutation; every mutation
   stamps the rows it touches, and materialized-view refresh uses the
   stamps to skip rows unchanged since its last run. *)

type loc = { l_block : Columns.t; l_row : int }

type t = {
  mutable schema : Schema.t;
  mutable index : Schema_index.t;
  mutable next : int;
  mutable tick : int;
  pool : Columns.Pool.t;
  mutable locs : (Oid.t, loc) Hashtbl.t;
  blocks : (Type_name.t, Columns.t list ref) Hashtbl.t;
  backrefs : (Oid.t, (Oid.t * Attr_name.t, unit) Hashtbl.t) Hashtbl.t;
  mutable journal : (op -> unit) option;
}

exception Store_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Store_error s)) fmt

module Obs = Tdp_obs
let m_extent_ns = Obs.Metrics.histogram "store.extent_ns"

let create schema =
  { schema;
    index = Schema_index.of_hierarchy (Schema.hierarchy schema);
    next = 1;
    tick = 0;
    pool = Columns.Pool.create ();
    locs = Hashtbl.create 64;
    blocks = Hashtbl.create 16;
    backrefs = Hashtbl.create 64;
    journal = None
  }

let schema t = t.schema
let set_journal t j = t.journal <- j
let journaling t = t.journal <> None
let record t op = match t.journal with Some f -> f op | None -> ()

(* Swap in a refactored schema.  Projection never changes the
   cumulative state of pre-existing types (the paper's invariant), so
   stored objects — whose rows keep their creation-time layout — remain
   valid verbatim.  In journaling mode the swap must be replayable,
   which requires the schema's surface source. *)
let set_schema ?source t schema =
  (match (t.journal, source) with
  | None, _ -> ()
  | Some _, Some src -> record t (Op_set_schema { source = src })
  | Some _, None ->
      fail "set_schema on a journaled database requires the schema source");
  t.schema <- schema;
  t.index <- Schema_index.of_hierarchy (Schema.hierarchy schema)

let hierarchy t = Schema.hierarchy t.schema
let tick t = t.tick

let attr_def t ty attr =
  match Hierarchy.find_attribute (hierarchy t) ty attr with
  | Some a -> a
  | None ->
      fail "type %s has no attribute %s" (Type_name.to_string ty)
        (Attr_name.to_string attr)

let find_loc t oid =
  match Hashtbl.find_opt t.locs oid with
  | Some l -> l
  | None -> fail "no object %a" Oid.pp oid

let check_value t attr_ty v =
  match (attr_ty, (v : Value.t)) with
  | _, Value.Null -> ()
  | Value_type.Prim p, v ->
      if not (Value.conforms_prim v p) then
        fail "value %a does not conform to %s" Value.pp v
          (Value_type.prim_to_string p)
  | Value_type.Named n, Value.Ref o -> (
      match Hashtbl.find_opt t.locs o with
      | None -> fail "dangling reference %a" Oid.pp o
      | Some l ->
          let target_ty = l.l_block.Columns.b_ty in
          if not (Schema_index.subtype t.index target_ty n) then
            fail "object %a of type %s is not a %s" Oid.pp o
              (Type_name.to_string target_ty)
              (Type_name.to_string n))
  | Value_type.Named _, v -> fail "value %a is not an object reference" Value.pp v
  | Value_type.Unknown, _ -> ()

(* ---- reverse-reference index ---------------------------------------- *)

let add_backref t ~target ~src ~attr =
  let tbl =
    match Hashtbl.find_opt t.backrefs target with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 4 in
        Hashtbl.replace t.backrefs target tbl;
        tbl
  in
  Hashtbl.replace tbl (src, attr) ()

let remove_backref t ~target ~src ~attr =
  match Hashtbl.find_opt t.backrefs target with
  | None -> ()
  | Some tbl ->
      Hashtbl.remove tbl (src, attr);
      if Hashtbl.length tbl = 0 then Hashtbl.remove t.backrefs target

(* ---- block routing -------------------------------------------------- *)

let layout_matches (a : Attribute.t array) (b : Attribute.t array) =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i at -> if not (Attribute.equal at b.(i)) then ok := false) a;
  !ok

(* The block new instances of [ty] go to: the newest block if its
   layout still matches the current hierarchy's cumulative state for
   [ty], a fresh block otherwise.  The generation stamp makes the match
   O(1) on the no-evolution fast path. *)
let head_block t ty =
  let gen = Schema_index.generation t.index in
  let cell =
    match Hashtbl.find_opt t.blocks ty with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.replace t.blocks ty c;
        c
  in
  match !cell with
  | b :: _ when b.Columns.b_gen = gen -> b
  | bs -> (
      let layout = Schema_index.layout t.index ty in
      match bs with
      | b :: _ when layout_matches b.Columns.b_layout layout ->
          b.Columns.b_gen <- gen;
          b
      | _ ->
          let b = Columns.make ~pool:t.pool ~gen ty layout in
          cell := b :: bs;
          b)

(* ---- object creation ------------------------------------------------ *)

(* Validate an init list against the layout of [ty] and return the full
   row, one value per column.  The init list is folded into a map once
   (first occurrence of a name wins, as [List.find_opt] did); values
   are checked in layout order, then every unknown init attribute is
   reported at once. *)
let build_row t ty ~init =
  if not (Hierarchy.mem (hierarchy t) ty) then
    fail "unknown type %s" (Type_name.to_string ty);
  let layout = Schema_index.layout t.index ty in
  let init_map =
    List.fold_left
      (fun m (n, v) ->
        if Attr_name.Map.mem n m then m else Attr_name.Map.add n v m)
      Attr_name.Map.empty init
  in
  let vals =
    Array.map
      (fun a ->
        match Attr_name.Map.find_opt (Attribute.name a) init_map with
        | Some v ->
            check_value t (Attribute.ty a) v;
            v
        | None -> Value.Null)
      layout
  in
  let known = Schema_index.layout_positions t.index ty in
  let unknown =
    List.fold_left
      (fun acc (n, _) ->
        if Attr_name.Map.mem n known || List.exists (Attr_name.equal n) acc then
          acc
        else n :: acc)
      [] init
    |> List.rev
  in
  (match unknown with
  | [] -> ()
  | [ n ] ->
      fail "type %s has no attribute %s" (Type_name.to_string ty)
        (Attr_name.to_string n)
  | ns ->
      fail "type %s has no attributes %s" (Type_name.to_string ty)
        (String.concat ", " (List.map Attr_name.to_string ns)));
  vals

let insert_row t ty oid vals =
  let b = head_block t ty in
  let row = Columns.alloc b oid in
  t.tick <- t.tick + 1;
  Columns.set_stamp b row t.tick;
  Array.iteri
    (fun col v ->
      Columns.write b ~row ~col v;
      match (v : Value.t) with
      | Value.Ref r ->
          add_backref t ~target:r ~src:oid
            ~attr:(Attribute.name b.Columns.b_layout.(col))
      | _ -> ())
    vals;
  Hashtbl.replace t.locs oid { l_block = b; l_row = row }

let new_object t ty ~init =
  let vals = build_row t ty ~init in
  let oid = Oid.of_int t.next in
  record t (Op_new { oid; ty; init });
  t.next <- t.next + 1;
  insert_row t ty oid vals;
  oid

(* Re-create an object under a fixed OID (used when loading a dump). *)
let restore_object t ~oid ~ty ~init =
  if Hashtbl.mem t.locs oid then fail "oid %a already in use" Oid.pp oid;
  let vals = build_row t ty ~init in
  record t (Op_new { oid; ty; init });
  t.next <- max t.next (Oid.to_int oid + 1);
  insert_row t ty oid vals;
  oid

(* ---- access --------------------------------------------------------- *)

let slots_of_loc (l : loc) =
  List.fold_left
    (fun m (a, v) -> Attr_name.Map.add a v m)
    Attr_name.Map.empty
    (Columns.row_bindings l.l_block l.l_row)

let find t oid =
  let l = find_loc t oid in
  { oid; ty = l.l_block.Columns.b_ty; slots = slots_of_loc l }

let type_of t oid = (find_loc t oid).l_block.Columns.b_ty

let no_attr oid ty attr =
  fail "object %a of type %s has no attribute %s" Oid.pp oid
    (Type_name.to_string ty) (Attr_name.to_string attr)

let get_attr t oid attr =
  let l = find_loc t oid in
  let b = l.l_block in
  match Columns.pos b attr with
  | Some col -> Columns.read b ~row:l.l_row ~col
  | None -> no_attr oid b.Columns.b_ty attr

(* Batch read with one location resolution — the materialized-view
   refresh loop reads every view attribute of a row at once. *)
let get_attrs t oid attrs =
  let l = find_loc t oid in
  let b = l.l_block in
  List.map
    (fun attr ->
      match Columns.pos b attr with
      | Some col -> Columns.read b ~row:l.l_row ~col
      | None -> no_attr oid b.Columns.b_ty attr)
    attrs

let row_stamp t oid =
  let l = find_loc t oid in
  Columns.stamp l.l_block l.l_row

let set_attr t oid attr v =
  let l = find_loc t oid in
  let b = l.l_block in
  let col =
    match Columns.pos b attr with
    | Some col -> col
    | None -> no_attr oid b.Columns.b_ty attr
  in
  let def = attr_def t b.Columns.b_ty attr in
  check_value t (Attribute.ty def) v;
  record t (Op_set { oid; attr; value = v });
  (match Columns.read b ~row:l.l_row ~col with
  | Value.Ref old -> remove_backref t ~target:old ~src:oid ~attr
  | _ -> ());
  (match (v : Value.t) with
  | Value.Ref r -> add_backref t ~target:r ~src:oid ~attr
  | _ -> ());
  Columns.write b ~row:l.l_row ~col v;
  t.tick <- t.tick + 1;
  Columns.set_stamp b l.l_row t.tick

(* ---- extents -------------------------------------------------------- *)

(* The live blocks whose rows belong to the (deep) extent of [ty],
   mirroring the pre-columnar per-object subtype fold — including its
   behaviour on types evolved away: an object whose type is no longer
   in the hierarchy made the fold raise [Unknown_type] (unless its type
   name was [ty] itself, which matched by name). *)
let extent_blocks t ty =
  Hashtbl.iter
    (fun n cell ->
      if
        (not (Type_name.equal n ty))
        && (not (Schema_index.mem t.index n))
        && List.exists (fun b -> Columns.live b > 0) !cell
      then Error.raise_ (Unknown_type n))
    t.blocks;
  let live_of n =
    match Hashtbl.find_opt t.blocks n with
    | Some cell -> List.filter (fun b -> Columns.live b > 0) !cell
    | None -> []
  in
  if Schema_index.mem t.index ty then
    List.concat_map live_of (Schema_index.descendants_or_self t.index ty)
  else live_of ty

(* Deep extent in OID order: concatenation of the subtype blocks' live
   rows — no full-store fold.  Blocks hold disjoint OID sets, and each
   yields its rows pre-sorted (or sorts on demand after free-list
   reuse), so the merge is linear. *)
let extent t ty =
  Obs.Metrics.time m_extent_ns (fun () ->
      List.fold_left
        (fun acc b -> List.merge Oid.compare acc (Columns.live_oids b))
        [] (extent_blocks t ty))

(* Objects holding a reference to [oid], with the referring slot — read
   from the reverse-reference index, not a store scan. *)
let referrers t oid =
  match Hashtbl.find_opt t.backrefs oid with
  | None -> []
  | Some tbl ->
      Hashtbl.fold
        (fun (src, attr) () acc ->
          if Oid.equal src oid then acc else (src, attr) :: acc)
        tbl []
      |> List.sort (fun (a, x) (b, y) ->
             match Oid.compare a b with 0 -> Attr_name.compare x y | c -> c)

let delete t ?(policy = Restrict) oid =
  let l = find_loc t oid in
  let refs = referrers t oid in
  (match (policy, refs) with
  | Restrict, (other, attr) :: _ ->
      fail "cannot delete %a: referenced by %a.%s" Oid.pp oid Oid.pp other
        (Attr_name.to_string attr)
  | _ -> ());
  record t (Op_delete { oid; policy });
  t.tick <- t.tick + 1;
  (match policy with
  | Restrict -> ()
  | Nullify ->
      (* null out referring slots directly — this mirrors the journal
         contract of the map-backed store: replaying [Op_delete]
         re-derives the nullifications, so they are not journaled *)
      List.iter
        (fun (other, attr) ->
          let ol = find_loc t other in
          (match Columns.pos ol.l_block attr with
          | Some col ->
              Columns.write ol.l_block ~row:ol.l_row ~col Value.Null;
              Columns.set_stamp ol.l_block ol.l_row t.tick
          | None -> ());
          remove_backref t ~target:oid ~src:other ~attr)
        refs);
  (* drop the deleted row's outgoing references from the index *)
  let b = l.l_block in
  Array.iteri
    (fun col a ->
      match Columns.read b ~row:l.l_row ~col with
      | Value.Ref r ->
          remove_backref t ~target:r ~src:oid ~attr:(Attribute.name a)
      | _ -> ())
    b.Columns.b_layout;
  Hashtbl.remove t.backrefs oid;
  Columns.release b l.l_row;
  Hashtbl.remove t.locs oid

let count t = Hashtbl.length t.locs
let next_oid t = t.next

(* Pre-size the OID table for a bulk load of [n] objects, so recovery
   does not grow a 64-bucket table through a million inserts. *)
let reserve t n =
  if n > Hashtbl.length t.locs then begin
    let h = Hashtbl.create (max 64 n) in
    Hashtbl.iter (fun k v -> Hashtbl.replace h k v) t.locs;
    t.locs <- h
  end

let objects t =
  Hashtbl.fold (fun oid l acc -> (oid, l) :: acc) t.locs []
  |> List.sort (fun (a, _) (b, _) -> Oid.compare a b)
  |> List.map (fun (oid, l) ->
         { oid; ty = l.l_block.Columns.b_ty; slots = slots_of_loc l })

let slots t oid = slots_of_loc (find_loc t oid)

let fold_rows t ~init f =
  Hashtbl.fold (fun oid l acc -> (oid, l) :: acc) t.locs []
  |> List.sort (fun (a, _) (b, _) -> Oid.compare a b)
  |> List.fold_left
       (fun acc (oid, l) ->
         f acc oid l.l_block.Columns.b_ty
           (Columns.row_bindings l.l_block l.l_row))
       init

(* ---- columnar internals (scan path, stats) -------------------------- *)

let scan_blocks = extent_blocks
let string_pool t = t.pool

type block_stat = {
  st_ty : Type_name.t;
  st_live : int;
  st_rows : int;
  st_capacity : int;
  st_free : int;
  st_columns : int;
}

let stats t =
  Hashtbl.fold
    (fun ty cell acc ->
      List.fold_left
        (fun acc b ->
          { st_ty = ty;
            st_live = Columns.live b;
            st_rows = Columns.length b;
            st_capacity = Columns.capacity b;
            st_free = Columns.free_rows b;
            st_columns = Array.length b.Columns.b_cols
          }
          :: acc)
        acc !cell)
    t.blocks []
  |> List.sort (fun a b ->
         match Type_name.compare a.st_ty b.st_ty with
         | 0 -> compare b.st_rows a.st_rows
         | c -> c)
