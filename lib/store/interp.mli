(** An interpreter for generic-function calls over stored objects.

    Executes method bodies with full multi-method dispatch on the
    dynamic types of all arguments.  Used by the test suite to verify
    the paper's behavior-preservation claim {e dynamically}: the same
    call on the same objects returns the same value before and after a
    projection refactors the schema. *)

type t

exception Runtime_error of string

(** [create ?now ?max_depth db] makes an interpreter; [now] (default
    2026) anchors the [years_since] builtin, [max_depth] (default
    10000) bounds the call-frame stack so runaway recursion raises
    [Runtime_error] instead of crashing. *)
val create : ?now:int -> ?max_depth:int -> Database.t -> t

val db : t -> Database.t

(** Rebuild dispatch tables after [Database.set_schema].  Kept for
    explicit control; since generation-stamped invalidation, {!call}
    also detects a swapped schema on its own and rebuilds, so a stale
    interpreter can no longer answer from evolved-away dispatch
    tables. *)
val refresh : t -> t

(** [call t gf args] dispatches and runs a generic function.  A writer
    generic function takes the target object followed by the new value.
    Checks the schema's generation stamp first and transparently
    rebuilds the dispatcher if [Database.set_schema] has run since.
    @raise Runtime_error on dispatch failure or an ill-typed call. *)
val call : t -> string -> Value.t list -> Value.t

(** [call_on t gf oids] is [call] with object references. *)
val call_on : t -> string -> Oid.t list -> Value.t
