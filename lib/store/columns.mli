(** Struct-of-arrays extent blocks.

    The physical layer of the columnar store: each block holds the live
    instances of one type that were created under one compiled layout
    ({!Tdp_core.Schema_index.layout}), decomposed attribute-wise into
    typed, unboxed columns — [int array] for integers and dates,
    [float array] for floats, interned-string-id arrays for strings,
    OID arrays for references, a byte-per-row null bitmap per column.
    Extent scans and predicate evaluation then run over contiguous
    arrays instead of chasing per-object maps; this is the projection
    operation Π(T, attrs) made physical (column selection).

    Row ids are stable for an object's lifetime: rows are appended or
    reused from a free-list, never moved.  Blocks created by the
    allocator fill in increasing-OID order and advertise that via
    {!is_sorted}, so extents concatenate pre-sorted runs.  Each row
    carries the database's logical tick of its last mutation
    ({!stamp}), which materialized-view refresh uses to skip clean
    rows.

    The representation is exposed (read-only) so the vectorized scan
    path in [Tdp_algebra.Pred] can compile predicate atoms to tight
    loops over the raw arrays.  All mutation must go through
    [Database]. *)

open Tdp_core

(** Per-database string intern pool: string columns store dense pool
    ids, so equality scans compare ints.  Ids are never recycled. *)
module Pool : sig
  type t

  val create : unit -> t

  (** Intern a string (allocating a fresh id on first sight). *)
  val id : t -> string -> int

  (** Lookup without interning — [None] means no stored string equals
      [s], so an equality scan can skip the block entirely. *)
  val find : t -> string -> int option

  val get : t -> int -> string
  val size : t -> int
end

type data =
  | Ints of int array
  | Floats of float array
  | Strings of int array  (** pool ids *)
  | Bools of Bytes.t
  | Dates of int array
  | Refs of int array  (** OIDs as ints *)
  | Boxed of Value.t array  (** [Value_type.Unknown] attributes *)

type column = {
  c_attr : Attr_name.t;
  c_ty : Value_type.t;
  mutable c_data : data;
  mutable c_nulls : Bytes.t;  (** byte per row; nonzero = null *)
}

type t = {
  b_ty : Type_name.t;
  b_pool : Pool.t;
  b_layout : Attribute.t array;
  b_pos : int Attr_name.Map.t;
  b_name_order : int array;  (** column indexes in attr-name order *)
  b_cols : column array;
  mutable b_gen : int;
  mutable b_cap : int;
  mutable b_len : int;
  mutable b_live : int;
  mutable b_oids : int array;
  mutable b_stamps : int array;
  mutable b_alive : Bytes.t;
  mutable b_free : int list;
  mutable b_sorted : bool;
  mutable b_max_oid : int;
}

val make : pool:Pool.t -> gen:int -> Type_name.t -> Attribute.t array -> t

(** Column index of an attribute, if in the layout. *)
val pos : t -> Attr_name.t -> int option

val live : t -> int
val capacity : t -> int

(** Rows ever allocated (append high-water mark); live rows are a
    subset. *)
val length : t -> int

val free_rows : t -> int

(** Do live rows appear in ascending OID order? *)
val is_sorted : t -> bool

(** Allocate a row for [oid] (reusing a freed slot when available) and
    mark it live.  The caller must then {!write} every column and
    {!set_stamp} the row. *)
val alloc : t -> Oid.t -> int

(** Mark a row dead and push it on the free-list; resets the block to
    an empty, sorted state when the last live row is released. *)
val release : t -> int -> unit

val is_live : t -> int -> bool
val oid_at : t -> int -> Oid.t

(** Logical tick of the row's last mutation. *)
val stamp : t -> int -> int

val set_stamp : t -> int -> int -> unit
val read : t -> row:int -> col:int -> Value.t

(** Store a value (must conform to the column's declared type — the
    database validates before writing). *)
val write : t -> row:int -> col:int -> Value.t -> unit

(** Live rows, ascending row order. *)
val iter_live : t -> (int -> unit) -> unit

(** OID of some live row ([None] on an empty block). *)
val first_live : t -> Oid.t option

(** Live OIDs in ascending OID order. *)
val live_oids : t -> Oid.t list

(** One row's slot bindings in attribute-name order — the iteration
    order of the pre-columnar per-object maps, on which the dump format
    depends. *)
val row_bindings : t -> int -> (Attr_name.t * Value.t) list
