(** An in-memory object store over a schema.

    Objects have an identity (OID), a most-specific type, and one slot
    per attribute of the type's cumulative state.  Extents are deep:
    the extent of [T] contains every object whose type is a subtype of
    [T].  This realizes the paper's companion "type instantiation"
    semantics for projection views: because the derived type [T̂] is
    placed {e above} the source type, every source instance is already
    an instance of the view, with no copying.

    Physically the store is columnar: instances of one type created
    under one compiled layout share a struct-of-arrays {!Columns.t}
    block, extents concatenate per-block sorted OID runs via the
    {!Tdp_core.Schema_index} bitset closure, and a maintained
    reverse-reference index backs {!referrers} and {!delete}.  None of
    that changes the observable API; {!obj} is materialized on demand
    for compatibility. *)

open Tdp_core

type obj = {
  oid : Oid.t;
  ty : Type_name.t;
  mutable slots : Value.t Attr_name.Map.t;
}

type t

exception Store_error of string

type delete_policy =
  | Restrict  (** refuse to delete a referenced object *)
  | Nullify  (** null out every referring slot *)

(** One validated mutation, as reported to a journal (see
    {!set_journal}).  Ops are emitted {e after} validation and
    {e before} the in-memory structures change, so an attached journal
    that persists each op implements write-ahead logging: replaying a
    journal prefix reproduces the database state after that prefix of
    the run ({!Wal}). *)
type op =
  | Op_new of { oid : Oid.t; ty : Type_name.t; init : (Attr_name.t * Value.t) list }
  | Op_set of { oid : Oid.t; attr : Attr_name.t; value : Value.t }
  | Op_delete of { oid : Oid.t; policy : delete_policy }
  | Op_set_schema of { source : string }

val create : Schema.t -> t
val schema : t -> Schema.t

(** Attach (or detach, with [None]) a journal callback.  While
    attached, every mutation — object creation (including
    {!restore_object}), slot writes, deletions, schema swaps — calls it
    with the corresponding {!op} before taking effect. *)
val set_journal : t -> (op -> unit) option -> unit

(** Is a journal currently attached? *)
val journaling : t -> bool

(** Install a refactored schema.  Valid because projection preserves
    the cumulative state of every pre-existing type.  [source] is the
    schema's surface syntax; it is required (and journaled) when a
    journal is attached, so the swap can be replayed on recovery.
    @raise Store_error when journaling and [source] is absent. *)
val set_schema : ?source:string -> t -> Schema.t -> unit

val hierarchy : t -> Hierarchy.t

(** Create an object of [ty]; uninitialized attributes are [Null].
    @raise Store_error on unknown type, unknown attribute, or a value
    that does not conform to the attribute's declared type. *)
val new_object : t -> Type_name.t -> init:(Attr_name.t * Value.t) list -> Oid.t

(** Re-create an object under a fixed OID (used by {!Dump}).
    @raise Store_error if the OID is in use or the init is invalid. *)
val restore_object :
  t -> oid:Oid.t -> ty:Type_name.t -> init:(Attr_name.t * Value.t) list -> Oid.t

(** @raise Store_error on a dangling OID. *)
val find : t -> Oid.t -> obj

val type_of : t -> Oid.t -> Type_name.t

(** @raise Store_error if the attribute is not in the object's state. *)
val get_attr : t -> Oid.t -> Attr_name.t -> Value.t

val set_attr : t -> Oid.t -> Attr_name.t -> Value.t -> unit

(** Objects referencing [oid] through an object-typed slot, with the
    referring attribute, in (OID, attribute) order. *)
val referrers : t -> Oid.t -> (Oid.t * Attr_name.t) list

(** Delete an object (default policy [Restrict]).
    @raise Store_error on a dangling OID or a restricted deletion. *)
val delete : t -> ?policy:delete_policy -> Oid.t -> unit

(** Deep extent, in OID order. *)
val extent : t -> Type_name.t -> Oid.t list

val count : t -> int

(** The next OID the allocator would hand out.  Strictly above every
    OID ever used, including deleted ones — identities are never
    reused, which {!Tdp_txn.Mvcc} preserves across recovery. *)
val next_oid : t -> int

val objects : t -> obj list
val slots : t -> Oid.t -> Value.t Attr_name.Map.t

(** Batch {!get_attr} with a single OID resolution.
    @raise Store_error on a dangling OID or a missing attribute. *)
val get_attrs : t -> Oid.t -> Attr_name.t list -> Value.t list

(** Fold over all objects in OID order without materializing slot maps;
    bindings arrive in attribute-name order (the {!slots} iteration
    order).  Used by {!Dump}. *)
val fold_rows :
  t ->
  init:'a ->
  ('a -> Oid.t -> Type_name.t -> (Attr_name.t * Value.t) list -> 'a) ->
  'a

(** {2 Change tracking}

    The database keeps a logical clock, bumped once per mutation; every
    mutation stamps the rows it touches.  [Tdp_algebra.Matview] uses
    the stamps to skip rows unchanged since its last refresh. *)

(** Current logical tick (0 on a fresh database). *)
val tick : t -> int

(** Tick of the object's last mutation.
    @raise Store_error on a dangling OID. *)
val row_stamp : t -> Oid.t -> int

(** {2 Bulk-load and columnar access} *)

(** Pre-size the OID table for a bulk load of [n] objects (snapshot
    recovery); a no-op when already that large. *)
val reserve : t -> int -> unit

(** The live columnar blocks making up the deep extent of a type — the
    vectorized scan path in [Tdp_algebra.Pred] compiles predicates
    against these.  Blocks must not be mutated by callers.
    @raise Error.E [Unknown_type] under the same conditions as
    {!extent}. *)
val scan_blocks : t -> Type_name.t -> Columns.t list

(** The database's string intern pool (shared by every block). *)
val string_pool : t -> Columns.Pool.t

type block_stat = {
  st_ty : Type_name.t;
  st_live : int;  (** live rows *)
  st_rows : int;  (** allocated rows (live + free-listed) *)
  st_capacity : int;
  st_free : int;  (** free-listed rows *)
  st_columns : int;
}

(** Per-block storage statistics, ordered by type name (largest block
    first within a type); surfaced by [odb store stats]. *)
val stats : t -> block_stat list
