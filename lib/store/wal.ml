open Tdp_core

(* Write-ahead log over the Dump value grammar.  See wal.mli for the
   record format and the recovery contract.  The design constraints:

   - append must be cheap and sequential (one line, one fsync);
   - decoding must be total: any byte prefix of a valid log, and any
     single-byte corruption of one, decodes to a clean prefix of the
     committed operations — the fault-injection suite checks literally
     every offset;
   - the snapshot's wal-seq header makes checkpointing idempotent: a
     crash between snapshot rename and log truncation only means some
     already-snapshotted records get skipped, not re-applied. *)

exception Wal_error of string

(* Observability: append latency splits into encode+write and fsync —
   the fsync share is what journaling mode actually costs — and
   recovery reports how many ops it replayed and how long the replay
   took.  Recording is gated inside Tdp_obs. *)
module Obs = Tdp_obs
let m_append = Obs.Metrics.counter "wal.append"
let m_append_ns = Obs.Metrics.histogram "wal.append_ns"
let m_fsync_ns = Obs.Metrics.histogram "wal.fsync_ns"
let m_replay_ops = Obs.Metrics.counter "wal.replay.ops"
let m_replay_ns = Obs.Metrics.histogram "wal.replay_ns"

let fail fmt = Fmt.kstr (fun s -> raise (Wal_error s)) fmt

(* ---- CRC-32 (IEEE 802.3, reflected) -------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ---- payload grammar ----------------------------------------------- *)

let policy_to_string : Database.delete_policy -> string = function
  | Restrict -> "restrict"
  | Nullify -> "nullify"

let payload_to_string (op : Database.op) =
  match op with
  | Op_new { oid; ty; init } ->
      let slots =
        List.map
          (fun (a, v) ->
            Fmt.str " %s=%s" (Attr_name.to_string a) (Dump.value_to_string v))
          init
      in
      Fmt.str "new #%d %s%s" (Oid.to_int oid) (Type_name.to_string ty)
        (String.concat "" slots)
  | Op_set { oid; attr; value } ->
      Fmt.str "set #%d %s=%s" (Oid.to_int oid) (Attr_name.to_string attr)
        (Dump.value_to_string value)
  | Op_delete { oid; policy } ->
      Fmt.str "del #%d %s" (Oid.to_int oid) (policy_to_string policy)
  | Op_set_schema { source } -> Fmt.str "schema %S" source

let parse_fail line fmt =
  Fmt.kstr (fun message -> raise (Dump.Parse_error { line; message })) fmt

let oid_of_token line tok =
  if String.length tok > 1 && tok.[0] = '#' then
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some i when i >= 1 -> Oid.of_int i
    | Some _ -> parse_fail line "non-positive oid %s" tok
    | None -> parse_fail line "bad oid %s" tok
  else parse_fail line "expected #<oid>, got %s" tok

let slot_of_token line tok =
  match String.index_opt tok '=' with
  | Some i ->
      ( Attr_name.of_string (String.sub tok 0 i),
        Dump.value_of_string line (String.sub tok (i + 1) (String.length tok - i - 1))
      )
  | None -> parse_fail line "expected attr=value, got %s" tok

let payload_of_string ~line s : Database.op =
  match Dump.tokens line s with
  | "new" :: oid :: ty :: slots ->
      Op_new
        { oid = oid_of_token line oid;
          ty = Type_name.of_string ty;
          init = List.map (slot_of_token line) slots
        }
  | [ "set"; oid; slot ] ->
      let attr, value = slot_of_token line slot in
      Op_set { oid = oid_of_token line oid; attr; value }
  | [ "del"; oid; policy ] ->
      let policy =
        match policy with
        | "restrict" -> Database.Restrict
        | "nullify" -> Database.Nullify
        | p -> parse_fail line "unknown delete policy %s" p
      in
      Op_delete { oid = oid_of_token line oid; policy }
  | [ "schema"; quoted ] -> (
      match Dump.value_of_string line quoted with
      | String source -> Op_set_schema { source }
      | _ -> parse_fail line "schema record expects a quoted source")
  | verb :: _ -> parse_fail line "unknown wal record %s" verb
  | [] -> parse_fail line "empty wal record"

(* ---- record framing ------------------------------------------------ *)

(* The framing is generic over the record magic and payload grammar so
   other prefix-commit logs (the Tdp_txn transaction log) can layer on
   the same CRC'd, seq-numbered, torn-tail-tolerant line format. *)

let encode_line ~magic ~seq payload =
  Fmt.str "%c %d %08x %s\n" magic seq (crc32 (Fmt.str "%d %s" seq payload)) payload

let encode ~seq op = encode_line ~magic:'w' ~seq (payload_to_string op)

type corruption = { at_seq : int; offset : int; reason : string }
type entry = { seq : int; op : Database.op; ends_at : int }

type decoded = {
  entries : entry list;
  next_seq : int;
  valid_bytes : int;
  corruption : corruption option;
}

type 'a framed = { fseq : int; fvalue : 'a; fends_at : int }

type 'a framed_decoded = {
  fentries : 'a framed list;
  fnext_seq : int;
  fvalid_bytes : int;
  fcorruption : corruption option;
}

(* One line, newline stripped.  [Error reason] never raises so that
   decode stays total on arbitrary bytes. *)
let parse_record ~magic ~parse line =
  let open struct
    exception Bad of string
  end in
  try
    if String.length line < 2 || line.[0] <> magic || line.[1] <> ' ' then
      raise (Bad "bad record magic");
    let sp1 =
      match String.index_from_opt line 2 ' ' with
      | Some i -> i
      | None -> raise (Bad "missing checksum field")
    in
    let sp2 =
      match String.index_from_opt line (sp1 + 1) ' ' with
      | Some i -> i
      | None -> raise (Bad "missing payload")
    in
    let seq_s = String.sub line 2 (sp1 - 2) in
    let crc_s = String.sub line (sp1 + 1) (sp2 - sp1 - 1) in
    let payload = String.sub line (sp2 + 1) (String.length line - sp2 - 1) in
    match (int_of_string_opt seq_s, int_of_string_opt ("0x" ^ crc_s)) with
    | Some seq, Some crc when seq >= 1 ->
        if crc <> crc32 (seq_s ^ " " ^ payload) then Error "checksum mismatch"
        else Result.map (fun v -> (seq, v)) (parse payload)
    | _ -> Error "bad record header"
  with Bad reason -> Error reason

(* ---- incremental decode -------------------------------------------- *)

(* A pull-based record reader.  It frames records one at a time out of
   a bounded buffer refilled from [read], so memory is O(longest
   record) rather than O(log) — a replica can tail a multi-GB log.
   [decode_framed], file recovery, and the replica tailer all sit on
   this one cursor, which is what keeps their torn-tail semantics
   byte-for-byte identical. *)

type 'a cursor = {
  cmagic : char;
  cparse : string -> ('a, string) result;
  cread : bytes -> int -> int -> int;
  mutable cbuf : Bytes.t;  (* window of not-yet-framed bytes *)
  mutable clo : int;  (* start of live data in cbuf *)
  mutable chi : int;  (* end of live data in cbuf *)
  mutable cscan : int;  (* newline scan resumes at clo + cscan *)
  mutable cbase : int;  (* stream offset of cbuf.[clo]: the valid prefix end *)
  mutable cexpected : int option;  (* next seq; None before the first record *)
  mutable cstopped : corruption option;  (* sticky once set *)
}

type 'a step = Record of 'a framed | End_of_input | Corrupt of corruption

let cursor_buf_size = 64 * 1024

let cursor ~magic ~parse ?(base = 0) ?next_seq read =
  { cmagic = magic;
    cparse = parse;
    cread = read;
    cbuf = Bytes.create cursor_buf_size;
    clo = 0;
    chi = 0;
    cscan = 0;
    cbase = base;
    cexpected = next_seq;
    cstopped = None
  }

let cursor_pos c = c.cbase
let cursor_pending c = c.chi > c.clo
let cursor_expected c = c.cexpected
let cursor_next_seq c = Option.value c.cexpected ~default:1
let cursor_corruption c = c.cstopped

(* Make room to refill: slide live bytes to the front, doubling the
   buffer only when a single record outgrows it. *)
let cursor_make_room c =
  if c.clo > 0 then begin
    Bytes.blit c.cbuf c.clo c.cbuf 0 (c.chi - c.clo);
    c.chi <- c.chi - c.clo;
    c.clo <- 0
  end;
  if c.chi = Bytes.length c.cbuf then begin
    let bigger = Bytes.create (2 * Bytes.length c.cbuf) in
    Bytes.blit c.cbuf 0 bigger 0 c.chi;
    c.cbuf <- bigger
  end

let rec cursor_next c =
  match c.cstopped with
  | Some corr -> Corrupt corr
  | None -> (
      match Bytes.index_from_opt c.cbuf (c.clo + c.cscan) '\n' with
      | Some nl when nl < c.chi ->
          let line = Bytes.sub_string c.cbuf c.clo (nl - c.clo) in
          let stop at_seq reason =
            let corr = { at_seq; offset = c.cbase; reason } in
            c.cstopped <- Some corr;
            Corrupt corr
          in
          let expected_or d = Option.value c.cexpected ~default:d in
          (match parse_record ~magic:c.cmagic ~parse:c.cparse line with
          | Error reason -> stop (expected_or 0) reason
          | Ok (seq, v) ->
              (* the first valid record sets the base (a truncated log
                 restarts above the snapshot's seq); after that the
                 numbering must be strictly consecutive *)
              if seq <> expected_or seq then
                stop (expected_or seq) (Fmt.str "sequence break: got %d" seq)
              else begin
                c.cbase <- c.cbase + (nl + 1 - c.clo);
                c.clo <- nl + 1;
                c.cscan <- 0;
                c.cexpected <- Some (seq + 1);
                Record { fseq = seq; fvalue = v; fends_at = c.cbase }
              end)
      | Some _ | None ->
          (* no complete line buffered: remember how far we scanned,
             refill, retry; 0 bytes read means end of current input *)
          c.cscan <- c.chi - c.clo;
          cursor_make_room c;
          let n = c.cread c.cbuf c.chi (Bytes.length c.cbuf - c.chi) in
          if n = 0 then End_of_input
          else begin
            c.chi <- c.chi + n;
            cursor_next c
          end)

let cursor_of_string ~magic ~parse src =
  let pos = ref 0 in
  let read buf off len =
    let n = min len (String.length src - !pos) in
    Bytes.blit_string src !pos buf off n;
    pos := !pos + n;
    n
  in
  cursor ~magic ~parse read

(* The torn-tail corruption record decode reports when input ends mid
   record; [End_of_input] with pending bytes means exactly that. *)
let torn_corruption c =
  { at_seq = Option.value c.cexpected ~default:0;
    offset = c.cbase;
    reason = "torn record (no trailing newline)"
  }

let decode_framed ~magic ~parse src =
  let c = cursor_of_string ~magic ~parse src in
  let rec go acc =
    match cursor_next c with
    | Record e -> go (e :: acc)
    | End_of_input ->
        let corr = if cursor_pending c then Some (torn_corruption c) else None in
        (List.rev acc, cursor_pos c, corr)
    | Corrupt corr -> (List.rev acc, cursor_pos c, Some corr)
  in
  let fentries, fvalid_bytes, fcorruption = go [] in
  let fnext_seq =
    match c.cexpected with Some s -> s | None -> 1
  in
  { fentries; fnext_seq; fvalid_bytes; fcorruption }

let parse_op payload =
  match payload_of_string ~line:0 payload with
  | op -> Ok op
  | exception Dump.Parse_error { message; _ } -> Error message

let decode src =
  let d = decode_framed ~magic:'w' ~parse:parse_op src in
  { entries =
      List.map (fun e -> { seq = e.fseq; op = e.fvalue; ends_at = e.fends_at }) d.fentries;
    next_seq = d.fnext_seq;
    valid_bytes = d.fvalid_bytes;
    corruption = d.fcorruption
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Truncate in place rather than read-rewrite: repair never needs the
   log contents, only the valid-prefix length. *)
let repair ~path valid_bytes =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      if (Unix.fstat fd).st_size > valid_bytes then begin
        Unix.ftruncate fd valid_bytes;
        Unix.fsync fd
      end)

(* ---- file tailing --------------------------------------------------- *)

(* A cursor over a growing log file.  [tail_poll] returns records as
   they become durable, [Wait] when it has caught up with the current
   end of file (a partial trailing record simply stays buffered until
   the writer finishes it), and [Truncated] when the file shrank below
   the consumed offset — the primary checkpointed — at which point the
   caller reopens from offset 0 (the fresh log resumes one past the
   checkpoint seq, so the cursor's consecutive-seq check still
   bridges).  Corruption is sticky, exactly as in {!decode}. *)

type 'a tail = {
  tfd : Unix.file_descr;
  tcur : 'a cursor;
  tread : int ref;  (* bytes consumed from the fd *)
}

type 'a tail_step = Shipped of 'a framed | Wait | Truncated | Halted of corruption

let tail_open ~magic ~parse ?(offset = 0) ?next_seq path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  ignore (Unix.lseek fd offset Unix.SEEK_SET);
  let tread = ref offset in
  let read buf pos len =
    match Unix.read fd buf pos len with
    | n ->
        tread := !tread + n;
        n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
  in
  { tfd = fd; tcur = cursor ~magic ~parse ~base:offset ?next_seq read; tread }

let tail_poll t =
  match cursor_next t.tcur with
  | Record e -> Shipped e
  | Corrupt c -> Halted c
  | End_of_input -> (
      match (Unix.fstat t.tfd).st_size < !(t.tread) with
      | true -> Truncated
      | false -> Wait
      | exception Unix.Unix_error _ -> Wait)

let tail_offset t = cursor_pos t.tcur
let tail_pending t = cursor_pending t.tcur
let tail_next_seq t = cursor_next_seq t.tcur
let tail_expected t = cursor_expected t.tcur
let tail_close t = try Unix.close t.tfd with Unix.Unix_error _ -> ()

(* ---- appending ----------------------------------------------------- *)

(* [committed] is the byte length of the durable record prefix: every
   append that returned normally ends exactly there.  A failed append
   (disk full, closed fd, failed fsync) may leave torn bytes beyond it
   and may leave unflushable bytes in the channel buffer, so the writer
   rolls the file back to [committed] (best-effort) and poisons itself:
   the sequence counter is only ever bumped on success, so a poisoned
   writer can never produce the gapped or shadowed seqs that [recover]
   then refuses.  Re-open after {!repair} to resume. *)
type writer = {
  oc : out_channel;
  magic : char;
  mutable next : int;
  sync : bool;
  mutable committed : int;
  mutable poisoned : bool;
}

let writer_make flags ?(sync = true) ?(magic = 'w') ~path ~next_seq () =
  let oc = open_out_gen flags 0o644 path in
  (* the open may have created the file: fsync the directory so the
     name itself survives a crash, not just later record fsyncs *)
  Dump.fsync_dir (Filename.dirname path);
  let committed =
    try (Unix.fstat (Unix.descr_of_out_channel oc)).st_size with Unix.Unix_error _ -> 0
  in
  { oc; magic; next = next_seq; sync; committed; poisoned = false }

let writer_create ?sync ?magic ~path ~next_seq () =
  writer_make [ Open_wronly; Open_creat; Open_trunc; Open_binary ] ?sync ?magic
    ~path ~next_seq ()

let writer_open ?sync ?magic ~path ~next_seq () =
  writer_make [ Open_wronly; Open_creat; Open_append; Open_binary ] ?sync ?magic
    ~path ~next_seq ()

let append_payload w payload =
  if w.poisoned then
    fail "wal writer is poisoned by an earlier failed append; repair and reopen";
  Obs.Metrics.time m_append_ns (fun () ->
      let seq = w.next in
      let record = encode_line ~magic:w.magic ~seq payload in
      match
        output_string w.oc record;
        flush w.oc;
        if w.sync then
          Obs.Metrics.time m_fsync_ns (fun () ->
              Unix.fsync (Unix.descr_of_out_channel w.oc))
      with
      | () ->
          w.next <- seq + 1;
          w.committed <- w.committed + String.length record;
          Obs.Metrics.incr m_append;
          seq
      | exception exn ->
          (* roll the file back to the last record boundary; whether or
             not that works, the writer is done — the channel buffer may
             still hold bytes we cannot retract *)
          (try
             Unix.ftruncate (Unix.descr_of_out_channel w.oc) w.committed
           with _ -> ());
          w.poisoned <- true;
          raise exn)

let append w op = append_payload w (payload_to_string op)
let writer_seq w = w.next
let writer_poisoned w = w.poisoned
let writer_fd w = Unix.descr_of_out_channel w.oc

let attach w db = Database.set_journal db (Some (fun op -> ignore (append w op)))
let close w = close_out_noerr w.oc

(* ---- replay and recovery ------------------------------------------- *)

let apply ?load_schema db (op : Database.op) =
  match op with
  | Op_new { oid; ty; init } -> ignore (Database.restore_object db ~oid ~ty ~init)
  | Op_set { oid; attr; value } -> Database.set_attr db oid attr value
  | Op_delete { oid; policy } -> Database.delete db ~policy oid
  | Op_set_schema { source } -> (
      match load_schema with
      | Some f -> Database.set_schema ~source db (f source)
      | None -> fail "schema record in the log but no schema loader given")

type recovery = {
  db : Database.t;
  snapshot_seq : int;
  replayed : int;
  last_seq : int;
  wal_valid_bytes : int;
  corruption : corruption option;
}

(* Any exception from replaying an op ends the usable prefix with a
   structured corruption record — including exceptions outside the
   expected store/parse family, which previously escaped as-is and
   could kill a replica apply loop with a bare [Assert_failure]. *)
let replay_failure_reason = function
  | Database.Store_error m -> m
  | Dump.Parse_error { message; _ } -> message
  | Wal_error m -> m
  | Error.E err -> Error.message err
  | exn -> Fmt.str "unexpected exception during replay: %s" (Printexc.to_string exn)

(* The replay loop, driven record-at-a-time off a cursor so that file
   recovery never materializes the log: skip records the snapshot
   already contains, refuse gaps between snapshot and log, and treat
   an op that fails to apply as the end of the usable prefix —
   recovery reports, it does not raise. *)
let recover_cursor ?load_schema ~schema ?snapshot cur =
  let db = Database.create schema in
  let snapshot_seq =
    match snapshot with
    | None -> 0
    | Some text ->
        ignore (Dump.load_into db text);
        Dump.wal_seq text
  in
  let rec run ~replayed ~last_seq ~valid =
    match cursor_next cur with
    | End_of_input ->
        let corruption =
          if cursor_pending cur then Some (torn_corruption cur) else None
        in
        (replayed, last_seq, valid, corruption)
    | Corrupt corruption -> (replayed, last_seq, valid, Some corruption)
    | Record e when e.fseq <= snapshot_seq ->
        run ~replayed ~last_seq ~valid:e.fends_at
    | Record e ->
        if e.fseq <> last_seq + 1 then
          ( replayed,
            last_seq,
            valid,
            Some
              { at_seq = last_seq + 1;
                offset = valid;
                reason =
                  Fmt.str "sequence gap: recovered to %d, log resumes at %d"
                    last_seq e.fseq
              } )
        else (
          match apply ?load_schema db e.fvalue with
          | () -> run ~replayed:(replayed + 1) ~last_seq:e.fseq ~valid:e.fends_at
          | exception exn ->
              ( replayed,
                last_seq,
                valid,
                Some
                  { at_seq = e.fseq;
                    offset = valid;
                    reason = replay_failure_reason exn
                  } ))
  in
  let replayed, last_seq, wal_valid_bytes, corruption =
    run ~replayed:0 ~last_seq:snapshot_seq ~valid:0
  in
  { db; snapshot_seq; replayed; last_seq; wal_valid_bytes; corruption }

let recover_text_uninstrumented ?load_schema ~schema ?snapshot ?wal () =
  let cur =
    cursor_of_string ~magic:'w' ~parse:parse_op (Option.value wal ~default:"")
  in
  recover_cursor ?load_schema ~schema ?snapshot cur

let recover_text ?load_schema ~schema ?snapshot ?wal () =
  Obs.Metrics.time m_replay_ns (fun () ->
      Obs.Trace.with_span "wal.recover" (fun () ->
          let r =
            recover_text_uninstrumented ?load_schema ~schema ?snapshot ?wal ()
          in
          Obs.Metrics.add m_replay_ops r.replayed;
          r))

(* File recovery streams the WAL through a bounded cursor buffer (the
   snapshot is still loaded whole: it is a dump, not a log). *)
let recover ?load_schema ~schema ~snapshot_path ~wal_path () =
  Obs.Metrics.time m_replay_ns (fun () ->
      Obs.Trace.with_span "wal.recover" (fun () ->
          let snapshot =
            if Sys.file_exists snapshot_path then Some (read_file snapshot_path)
            else None
          in
          let with_wal_cursor k =
            if not (Sys.file_exists wal_path) then
              k (cursor_of_string ~magic:'w' ~parse:parse_op "")
            else begin
              let ic = open_in_bin wal_path in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () ->
                  k (cursor ~magic:'w' ~parse:parse_op (input ic)))
            end
          in
          let r =
            with_wal_cursor (fun cur ->
                recover_cursor ?load_schema ~schema ?snapshot cur)
          in
          Obs.Metrics.add m_replay_ops r.replayed;
          r))
