open Tdp_core

(* Struct-of-arrays extent blocks.

   A block holds every live instance of one type that was created under
   one attribute layout: one typed, unboxed column per attribute of the
   type's cumulative state, a null bitmap per column, a row → OID map,
   per-row modification stamps (the database's logical tick, used by
   materialized-view refresh to skip clean rows), a liveness bitmap and
   a free-list of released rows.

   Row ids are stable for the lifetime of an object: [alloc] either
   appends or reuses a freed slot, and nothing ever moves a live row.
   Appending in increasing-OID order (the allocator's behaviour) keeps
   [b_sorted] true, so extents concatenate pre-sorted runs; free-list
   reuse or out-of-order restore clears the flag and scans fall back to
   an explicit sort.  A block whose last live row is released resets to
   empty and becomes sorted again. *)

module Obs = Tdp_obs
let m_build_ns = Obs.Metrics.histogram "columns.build_ns"
let c_blocks = Obs.Metrics.counter "columns.blocks_built"
let c_grows = Obs.Metrics.counter "columns.grows"

(* ---- string interning ---------------------------------------------- *)

(* One pool per database: string-typed columns store dense pool ids, so
   equality scans compare ints and repeated values share one heap
   string.  Ids are never recycled — the pool only grows. *)
module Pool = struct
  type t = {
    mutable strings : string array;
    mutable n : int;
    ids : (string, int) Hashtbl.t;
  }

  let create () = { strings = Array.make 16 ""; n = 0; ids = Hashtbl.create 64 }

  let id t s =
    match Hashtbl.find_opt t.ids s with
    | Some i -> i
    | None ->
        if t.n = Array.length t.strings then begin
          let a = Array.make (2 * t.n) "" in
          Array.blit t.strings 0 a 0 t.n;
          t.strings <- a
        end;
        let i = t.n in
        t.strings.(i) <- s;
        t.n <- t.n + 1;
        Hashtbl.replace t.ids s i;
        i

  let find t s = Hashtbl.find_opt t.ids s
  let get t i = t.strings.(i)
  let size t = t.n
end

(* ---- columns -------------------------------------------------------- *)

type data =
  | Ints of int array
  | Floats of float array
  | Strings of int array  (* pool ids *)
  | Bools of Bytes.t
  | Dates of int array
  | Refs of int array  (* OIDs as ints *)
  | Boxed of Value.t array  (* Value_type.Unknown attributes *)

type column = {
  c_attr : Attr_name.t;
  c_ty : Value_type.t;
  mutable c_data : data;
  mutable c_nulls : Bytes.t;  (* byte per row; '\001' = null *)
}

type t = {
  b_ty : Type_name.t;
  b_pool : Pool.t;
  b_layout : Attribute.t array;
  b_pos : int Attr_name.Map.t;  (* attr name -> column index *)
  b_name_order : int array;  (* column indexes, sorted by attr name *)
  b_cols : column array;
  mutable b_gen : int;  (* index generation whose layout this matches *)
  mutable b_cap : int;
  mutable b_len : int;  (* rows ever allocated (high-water mark) *)
  mutable b_live : int;
  mutable b_oids : int array;
  mutable b_stamps : int array;
  mutable b_alive : Bytes.t;
  mutable b_free : int list;
  mutable b_sorted : bool;
  mutable b_max_oid : int;
}

let data_for (vt : Value_type.t) cap : data =
  match vt with
  | Prim Int -> Ints (Array.make cap 0)
  | Prim Float -> Floats (Array.make cap 0.)
  | Prim String -> Strings (Array.make cap 0)
  | Prim Bool -> Bools (Bytes.make cap '\000')
  | Prim Date -> Dates (Array.make cap 0)
  | Named _ -> Refs (Array.make cap 0)
  | Unknown -> Boxed (Array.make cap Value.Null)

let make ~pool ~gen ty layout =
  Obs.Metrics.time m_build_ns (fun () ->
      Obs.Metrics.incr c_blocks;
      let pos = ref Attr_name.Map.empty in
      Array.iteri
        (fun i a ->
          let n = Attribute.name a in
          if not (Attr_name.Map.mem n !pos) then pos := Attr_name.Map.add n i !pos)
        layout;
      (* [Map.bindings] is name-sorted and one entry per name, matching
         the iteration order of the old per-object slot maps *)
      let name_order =
        Array.of_list (List.map snd (Attr_name.Map.bindings !pos))
      in
      { b_ty = ty;
        b_pool = pool;
        b_layout = layout;
        b_pos = !pos;
        b_name_order = name_order;
        b_cols =
          Array.map
            (fun a ->
              { c_attr = Attribute.name a;
                c_ty = Attribute.ty a;
                c_data = data_for (Attribute.ty a) 0;
                c_nulls = Bytes.create 0
              })
            layout;
        b_gen = gen;
        b_cap = 0;
        b_len = 0;
        b_live = 0;
        b_oids = [||];
        b_stamps = [||];
        b_alive = Bytes.create 0;
        b_free = [];
        b_sorted = true;
        b_max_oid = 0
      })

let pos b attr = Attr_name.Map.find_opt attr b.b_pos
let live b = b.b_live
let capacity b = b.b_cap
let length b = b.b_len
let free_rows b = List.length b.b_free
let is_sorted b = b.b_sorted
let oid_at b row = Oid.of_int b.b_oids.(row)
let is_live b row = row < b.b_len && Bytes.get b.b_alive row = '\001'
let stamp b row = b.b_stamps.(row)
let set_stamp b row s = b.b_stamps.(row) <- s

let grow b cap' =
  Obs.Metrics.incr c_grows;
  let blit_i (a : int array) fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 b.b_cap;
    a'
  in
  let blit_b (bs : Bytes.t) =
    let bs' = Bytes.make cap' '\000' in
    Bytes.blit bs 0 bs' 0 b.b_cap;
    bs'
  in
  Array.iter
    (fun c ->
      (c.c_data <-
         (match c.c_data with
         | Ints a -> Ints (blit_i a 0)
         | Floats a ->
             let a' = Array.make cap' 0. in
             Array.blit a 0 a' 0 b.b_cap;
             Floats a'
         | Strings a -> Strings (blit_i a 0)
         | Bools bs -> Bools (blit_b bs)
         | Dates a -> Dates (blit_i a 0)
         | Refs a -> Refs (blit_i a 0)
         | Boxed a ->
             let a' = Array.make cap' Value.Null in
             Array.blit a 0 a' 0 b.b_cap;
             Boxed a'));
      c.c_nulls <-
        (let n = Bytes.make cap' '\001' in
         Bytes.blit c.c_nulls 0 n 0 b.b_cap;
         n))
    b.b_cols;
  b.b_oids <- blit_i b.b_oids 0;
  b.b_stamps <- blit_i b.b_stamps 0;
  b.b_alive <- blit_b b.b_alive;
  b.b_cap <- cap'

let alloc b oid =
  let o = Oid.to_int oid in
  let row =
    match b.b_free with
    | r :: rest ->
        b.b_free <- rest;
        (* a reused slot sits below the append frontier: row order no
           longer follows OID order *)
        b.b_sorted <- false;
        r
    | [] ->
        if b.b_len = b.b_cap then grow b (max 8 (2 * b.b_cap));
        let r = b.b_len in
        b.b_len <- b.b_len + 1;
        if o < b.b_max_oid then b.b_sorted <- false;
        r
  in
  b.b_max_oid <- max b.b_max_oid o;
  b.b_oids.(row) <- o;
  Bytes.set b.b_alive row '\001';
  b.b_live <- b.b_live + 1;
  row

let release b row =
  Bytes.set b.b_alive row '\000';
  b.b_live <- b.b_live - 1;
  if b.b_live = 0 then begin
    (* empty block: reset to a fresh append frontier so future inserts
       are sorted again and the free-list does not pin stale rows *)
    b.b_len <- 0;
    b.b_free <- [];
    b.b_sorted <- true;
    b.b_max_oid <- 0
  end
  else b.b_free <- row :: b.b_free

let read b ~row ~col : Value.t =
  let c = b.b_cols.(col) in
  if Bytes.get c.c_nulls row <> '\000' then Value.Null
  else
    match c.c_data with
    | Ints a -> Value.Int a.(row)
    | Floats a -> Value.Float a.(row)
    | Strings a -> Value.String (Pool.get b.b_pool a.(row))
    | Bools bs -> Value.Bool (Bytes.get bs row <> '\000')
    | Dates a -> Value.Date a.(row)
    | Refs a -> Value.Ref (Oid.of_int a.(row))
    | Boxed a -> a.(row)

let write b ~row ~col (v : Value.t) =
  let c = b.b_cols.(col) in
  match v with
  | Value.Null -> Bytes.set c.c_nulls row '\001'
  | v -> (
      Bytes.set c.c_nulls row '\000';
      match (c.c_data, v) with
      | Ints a, Value.Int i -> a.(row) <- i
      | Floats a, Value.Float f -> a.(row) <- f
      | Strings a, Value.String s -> a.(row) <- Pool.id b.b_pool s
      | Bools bs, Value.Bool x -> Bytes.set bs row (if x then '\001' else '\000')
      | Dates a, Value.Date y -> a.(row) <- y
      | Refs a, Value.Ref o -> a.(row) <- Oid.to_int o
      | Boxed a, v -> a.(row) <- v
      | _ ->
          (* unreachable behind Database.check_value: a typed column only
             ever receives its own value kind *)
          invalid_arg "Columns.write: value kind does not match column")

let iter_live b f =
  for row = 0 to b.b_len - 1 do
    if Bytes.get b.b_alive row = '\001' then f row
  done

let first_live b =
  let out = ref None in
  (try
     iter_live b (fun row ->
         out := Some (oid_at b row);
         raise Exit)
   with Exit -> ());
  !out

(* Live OIDs in ascending order — a plain copy when the block is still
   append-ordered, an explicit sort otherwise. *)
let live_oids b =
  let out = ref [] in
  for row = b.b_len - 1 downto 0 do
    if Bytes.get b.b_alive row = '\001' then out := Oid.of_int b.b_oids.(row) :: !out
  done;
  if b.b_sorted then !out else List.sort Oid.compare !out

(* Slot bindings of one row, in attribute-name order (the order the
   pre-columnar map-backed store iterated in — dump formats and object
   materialization depend on it). *)
let row_bindings b row =
  Array.fold_left
    (fun acc col ->
      (b.b_cols.(col).c_attr, read b ~row ~col) :: acc)
    [] b.b_name_order
  |> List.rev
