(** Textual dump / load of object stores.

    One line per object:

    {v obj #<oid> <Type> <attr>=<value> … v}

    Values: [42], [42.5], ["…"], [true]/[false], [year:1990],
    [#3] (reference), [null].  [--] starts a comment line.  Loading is
    two-pass so forward references work; OIDs are preserved, which
    keeps references and view identities stable across dump/load. *)

exception Parse_error of { line : int; message : string }

(** Floats print as the shortest decimal that reads back bit-exactly
    ([%.12g], falling back to [%.17g]); non-finite floats print as
    [nan], [inf] and [-inf]. *)
val value_to_string : Value.t -> string

(** @raise Parse_error — also on non-positive OIDs in references. *)
val value_of_string : int -> string -> Value.t

(** Split a dump-grammar line into whitespace-separated tokens, keeping
    quoted strings (with escapes) intact.  Shared with the {!Wal}
    record grammar.  @raise Parse_error on an unterminated string. *)
val tokens : int -> string -> string list

(** Serialize every object, in OID order. *)
val to_string : Database.t -> string

(** Load a dump into the database; returns the restored OIDs in file
    order.
    @raise Parse_error on malformed input (including OIDs < 1).
    @raise Database.Store_error via [Parse_error] wrapping on schema
    violations. *)
val load_into : Database.t -> string -> Oid.t list

(** Atomically snapshot [db] to [path]: write-temp, fsync, rename,
    fsync the parent directory (without which the rename itself may not
    survive a crash).  [wal_seq] (default 0) is recorded in a header
    comment and names the last WAL record already folded into this
    snapshot; {!Wal.recover} skips records at or below it.  [txn_seq]
    (default 0) is the same cursor for a {!Tdp_txn} transaction log. *)
val save : ?wal_seq:int -> ?txn_seq:int -> path:string -> Database.t -> unit

(** The [wal_seq] header of a snapshot's text, or 0 if absent. *)
val wal_seq : string -> int

(** The [txn_seq] header of a snapshot's text, or 0 if absent. *)
val txn_seq : string -> int

(** Fsync a directory file descriptor (best-effort; errors are
    swallowed).  Needed to make a completed [Sys.rename] or file
    creation durable on POSIX filesystems. *)
val fsync_dir : string -> unit

(** Remove an orphaned [path ^ ".tmp"] left by a crash between the
    temp-write and the rename of {!save}; returns whether one was
    removed.  Orphaned temporaries are never read as snapshots. *)
val clean_tmp : path:string -> bool
