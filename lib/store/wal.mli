(** Write-ahead log and crash recovery for {!Database}.

    The WAL is an append-only text file, one record per line:

    {v w <seq> <crc32> <payload> v}

    where [seq] is a 1-based, strictly consecutive sequence number,
    [crc32] is the CRC-32 (IEEE, hex) of ["<seq> <payload>"], and the
    payload uses the {!Dump} value grammar:

    {v
    new #<oid> <Type> <attr>=<value> …
    set #<oid> <attr>=<value>
    del #<oid> restrict|nullify
    schema "<escaped surface source>"
    v}

    A {!Database} with an attached {!writer} appends each validated
    mutation {e before} applying it, so the log is always at least as
    new as memory.  Recovery loads the latest snapshot ({!Dump.save}),
    then replays the WAL, stopping cleanly at the first torn or corrupt
    record: a log truncated or bit-flipped at {e any} byte offset
    recovers to the state after some prefix of the committed
    operations, never raising.  Mid-log holes are not tolerated — a
    record that fails its checksum or breaks the sequence ends the
    replayable prefix even if later bytes happen to parse. *)

open Tdp_core

exception Wal_error of string

(** CRC-32 (IEEE 802.3, reflected) of a string; the per-record
    checksum.  Detects all single-byte and burst errors up to 32 bits,
    which is what the fault-injection suite leans on. *)
val crc32 : string -> int

(** [payload_to_string op] / [payload_of_string ~line s] — the record
    payload grammar (without sequencing or checksum).  The same grammar
    serves as the [odb store append] mutation-script syntax.
    @raise Dump.Parse_error on malformed payloads. *)
val payload_to_string : Database.op -> string

val payload_of_string : line:int -> string -> Database.op

(** One full record line, trailing newline included. *)
val encode : seq:int -> Database.op -> string

(** {1 Generic framing}

    The [w <seq> <crc32> <payload>] line format, generalized over the
    record magic and payload grammar, so other prefix-commit logs (the
    {!Tdp_txn} transaction log, magic [t]) reuse the same CRC'd,
    torn-tail-tolerant framing and recovery discipline. *)

(** One framed record line ([magic] must not be whitespace). *)
val encode_line : magic:char -> seq:int -> string -> string

type corruption = {
  at_seq : int;  (** sequence number the bad record was expected to carry *)
  offset : int;  (** byte offset where the valid prefix ends *)
  reason : string;
}

type entry = { seq : int; op : Database.op; ends_at : int (** byte offset just past this record *) }

type decoded = {
  entries : entry list;  (** the valid prefix, in log order *)
  next_seq : int;  (** sequence number the next appended record should carry *)
  valid_bytes : int;  (** length of the valid prefix, in bytes *)
  corruption : corruption option;  (** why decoding stopped, if early *)
}

(** Decode a WAL image down to its valid prefix.  Never raises: torn
    tails, checksum failures, unparsable lines and sequence breaks all
    just end the prefix and are reported as [corruption]. *)
val decode : string -> decoded

type 'a framed = { fseq : int; fvalue : 'a; fends_at : int }

type 'a framed_decoded = {
  fentries : 'a framed list;
  fnext_seq : int;
  fvalid_bytes : int;
  fcorruption : corruption option;
}

(** {!decode}, generalized: decode any framed log down to its valid
    prefix, parsing payloads with [parse] (whose [Error] ends the
    prefix like a checksum failure).  Total on arbitrary bytes. *)
val decode_framed :
  magic:char -> parse:(string -> ('a, string) result) -> string -> 'a framed_decoded

(** {1 Incremental decode}

    The framing above, record-at-a-time: a cursor frames records out
    of a bounded buffer refilled on demand, so decoding a log costs
    O(longest record) memory, never O(file).  {!decode_framed},
    {!recover}, and the replica {!tail} below all run on this one
    cursor — their torn-tail semantics are identical by
    construction. *)

type 'a cursor

type 'a step =
  | Record of 'a framed
  | End_of_input
      (** the refill function returned 0 bytes; any buffered partial
          record stays pending — call {!cursor_next} again once more
          input exists, or treat the pending bytes as a torn tail *)
  | Corrupt of corruption  (** sticky: every later call returns it again *)

(** [cursor ~magic ~parse read] decodes the byte stream produced by
    [read] (same contract as {!Stdlib.input}: [read buf pos len]
    returns the number of bytes written, 0 at end of input).  [base]
    is the stream offset of the first byte (resume mid-file);
    [next_seq] pins the expected first sequence number (otherwise the
    first valid record sets the base). *)
val cursor :
  magic:char ->
  parse:(string -> ('a, string) result) ->
  ?base:int ->
  ?next_seq:int ->
  (bytes -> int -> int -> int) ->
  'a cursor

val cursor_of_string :
  magic:char -> parse:(string -> ('a, string) result) -> string -> 'a cursor

val cursor_next : 'a cursor -> 'a step

(** Stream offset where the valid prefix ends: just past the last
    framed record, at the start of any pending or corrupt bytes. *)
val cursor_pos : _ cursor -> int

(** Are undecoded bytes buffered past {!cursor_pos} (a partial line)? *)
val cursor_pending : _ cursor -> bool

(** The sequence number the next record must carry; [None] before the
    first record when [next_seq] was not pinned. *)
val cursor_expected : _ cursor -> int option

(** {!cursor_expected}, defaulted to 1 — the [next_seq] a fresh writer
    should use. *)
val cursor_next_seq : _ cursor -> int

val cursor_corruption : _ cursor -> corruption option

(** {1 File tailing}

    A cursor over a growing log file — the replication shipping
    primitive.  The tailer remembers its byte offset and expected
    sequence, so polling costs only the new bytes. *)

type 'a tail

type 'a tail_step =
  | Shipped of 'a framed  (** one more durable record *)
  | Wait  (** caught up with the end of file (partial tails stay buffered) *)
  | Truncated
      (** the file shrank below the consumed offset — the primary
          checkpointed; reopen from offset 0 with the same expected
          seq (the fresh log resumes one past the checkpoint) *)
  | Halted of corruption  (** sticky, exactly as in {!decode} *)

(** Open [path] for tailing from [offset] (default 0); [next_seq] pins
    the first expected sequence number when resuming.
    @raise Unix.Unix_error if the file cannot be opened. *)
val tail_open :
  magic:char ->
  parse:(string -> ('a, string) result) ->
  ?offset:int ->
  ?next_seq:int ->
  string ->
  'a tail

val tail_poll : 'a tail -> 'a tail_step

(** Byte offset of the shipped prefix (resume point for {!tail_open}). *)
val tail_offset : _ tail -> int

val tail_pending : _ tail -> bool
val tail_next_seq : _ tail -> int
val tail_expected : _ tail -> int option
val tail_close : _ tail -> unit

(** Truncate the file at [path] to its first [valid_bytes] bytes —
    repair after a torn append, before appending again. *)
val repair : path:string -> int -> unit

(** {1 Appending} *)

type writer

(** Create (truncate) a WAL at [path].  [sync] (default [true]) fsyncs
    after every appended record; [magic] (default ['w']) is the record
    magic for layered log formats.  The parent directory is fsync'd so
    the file's creation is itself durable. *)
val writer_create :
  ?sync:bool -> ?magic:char -> path:string -> next_seq:int -> unit -> writer

(** Open an existing WAL for appending.  The caller supplies
    [next_seq], normally [last_seq + 1] from a preceding {!recover};
    appending after an unrepaired corrupt tail produces an unreadable
    log, so {!repair} first. *)
val writer_open :
  ?sync:bool -> ?magic:char -> path:string -> next_seq:int -> unit -> writer

(** Append one record; returns its sequence number.

    Failure atomicity: the sequence counter advances only when the
    record (and its fsync, in sync mode) fully succeeded.  A failed
    append rolls the file back to the last record boundary
    (best-effort) and {e poisons} the writer — every later append
    raises {!Wal_error} instead of writing records that a torn tail
    would make unreachable or that would gap the sequence.  Recover the
    path with {!repair} and a fresh writer. *)
val append : writer -> Database.op -> int

(** {!append} for layered formats: frame and append a raw payload. *)
val append_payload : writer -> string -> int

val writer_seq : writer -> int

(** Has this writer been poisoned by a failed append? *)
val writer_poisoned : writer -> bool

(** The writer's underlying descriptor — exposed so fault-injection
    tests can sabotage the fd and exercise the poisoning path. *)
val writer_fd : writer -> Unix.file_descr

(** Journal every subsequent mutation of [db] through [w] — the
    journaling mode: append durably first, mutate second.  Detach with
    [Database.set_journal db None]. *)
val attach : writer -> Database.t -> unit

val close : writer -> unit

(** {1 Replay and recovery} *)

(** Apply one logged op to a database.  [load_schema] elaborates the
    surface source of a [schema] record; without it, such a record
    raises {!Wal_error}.
    @raise Database.Store_error when the op does not validate. *)
val apply : ?load_schema:(string -> Schema.t) -> Database.t -> Database.op -> unit

type recovery = {
  db : Database.t;
  snapshot_seq : int;  (** wal-seq header of the snapshot, 0 if none *)
  replayed : int;  (** WAL records applied on top of the snapshot *)
  last_seq : int;  (** last applied sequence number (snapshot included) *)
  wal_valid_bytes : int;  (** prefix length to keep when repairing *)
  corruption : corruption option;
}

(** Recover a database from snapshot and WAL {e contents}.  Loads the
    snapshot into a fresh database over [schema], then replays every
    WAL record with [snapshot_seq < seq], in order, stopping at the
    first corrupt record or failing op.  Total for arbitrary [wal]
    bytes — decoding and replay failures end the prefix instead of
    raising (snapshot parse errors still raise: snapshots are written
    atomically and a bad one is real damage, not a torn tail). *)
val recover_text :
  ?load_schema:(string -> Schema.t) ->
  schema:Schema.t ->
  ?snapshot:string ->
  ?wal:string ->
  unit ->
  recovery

(** {!recover_text} over files; either file may be absent. *)
val recover :
  ?load_schema:(string -> Schema.t) ->
  schema:Schema.t ->
  snapshot_path:string ->
  wal_path:string ->
  unit ->
  recovery
