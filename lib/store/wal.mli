(** Write-ahead log and crash recovery for {!Database}.

    The WAL is an append-only text file, one record per line:

    {v w <seq> <crc32> <payload> v}

    where [seq] is a 1-based, strictly consecutive sequence number,
    [crc32] is the CRC-32 (IEEE, hex) of ["<seq> <payload>"], and the
    payload uses the {!Dump} value grammar:

    {v
    new #<oid> <Type> <attr>=<value> …
    set #<oid> <attr>=<value>
    del #<oid> restrict|nullify
    schema "<escaped surface source>"
    v}

    A {!Database} with an attached {!writer} appends each validated
    mutation {e before} applying it, so the log is always at least as
    new as memory.  Recovery loads the latest snapshot ({!Dump.save}),
    then replays the WAL, stopping cleanly at the first torn or corrupt
    record: a log truncated or bit-flipped at {e any} byte offset
    recovers to the state after some prefix of the committed
    operations, never raising.  Mid-log holes are not tolerated — a
    record that fails its checksum or breaks the sequence ends the
    replayable prefix even if later bytes happen to parse. *)

open Tdp_core

exception Wal_error of string

(** CRC-32 (IEEE 802.3, reflected) of a string; the per-record
    checksum.  Detects all single-byte and burst errors up to 32 bits,
    which is what the fault-injection suite leans on. *)
val crc32 : string -> int

(** [payload_to_string op] / [payload_of_string ~line s] — the record
    payload grammar (without sequencing or checksum).  The same grammar
    serves as the [odb store append] mutation-script syntax.
    @raise Dump.Parse_error on malformed payloads. *)
val payload_to_string : Database.op -> string

val payload_of_string : line:int -> string -> Database.op

(** One full record line, trailing newline included. *)
val encode : seq:int -> Database.op -> string

(** {1 Generic framing}

    The [w <seq> <crc32> <payload>] line format, generalized over the
    record magic and payload grammar, so other prefix-commit logs (the
    {!Tdp_txn} transaction log, magic [t]) reuse the same CRC'd,
    torn-tail-tolerant framing and recovery discipline. *)

(** One framed record line ([magic] must not be whitespace). *)
val encode_line : magic:char -> seq:int -> string -> string

type corruption = {
  at_seq : int;  (** sequence number the bad record was expected to carry *)
  offset : int;  (** byte offset where the valid prefix ends *)
  reason : string;
}

type entry = { seq : int; op : Database.op; ends_at : int (** byte offset just past this record *) }

type decoded = {
  entries : entry list;  (** the valid prefix, in log order *)
  next_seq : int;  (** sequence number the next appended record should carry *)
  valid_bytes : int;  (** length of the valid prefix, in bytes *)
  corruption : corruption option;  (** why decoding stopped, if early *)
}

(** Decode a WAL image down to its valid prefix.  Never raises: torn
    tails, checksum failures, unparsable lines and sequence breaks all
    just end the prefix and are reported as [corruption]. *)
val decode : string -> decoded

type 'a framed = { fseq : int; fvalue : 'a; fends_at : int }

type 'a framed_decoded = {
  fentries : 'a framed list;
  fnext_seq : int;
  fvalid_bytes : int;
  fcorruption : corruption option;
}

(** {!decode}, generalized: decode any framed log down to its valid
    prefix, parsing payloads with [parse] (whose [Error] ends the
    prefix like a checksum failure).  Total on arbitrary bytes. *)
val decode_framed :
  magic:char -> parse:(string -> ('a, string) result) -> string -> 'a framed_decoded

(** Truncate the file at [path] to its first [valid_bytes] bytes —
    repair after a torn append, before appending again. *)
val repair : path:string -> int -> unit

(** {1 Appending} *)

type writer

(** Create (truncate) a WAL at [path].  [sync] (default [true]) fsyncs
    after every appended record; [magic] (default ['w']) is the record
    magic for layered log formats.  The parent directory is fsync'd so
    the file's creation is itself durable. *)
val writer_create :
  ?sync:bool -> ?magic:char -> path:string -> next_seq:int -> unit -> writer

(** Open an existing WAL for appending.  The caller supplies
    [next_seq], normally [last_seq + 1] from a preceding {!recover};
    appending after an unrepaired corrupt tail produces an unreadable
    log, so {!repair} first. *)
val writer_open :
  ?sync:bool -> ?magic:char -> path:string -> next_seq:int -> unit -> writer

(** Append one record; returns its sequence number.

    Failure atomicity: the sequence counter advances only when the
    record (and its fsync, in sync mode) fully succeeded.  A failed
    append rolls the file back to the last record boundary
    (best-effort) and {e poisons} the writer — every later append
    raises {!Wal_error} instead of writing records that a torn tail
    would make unreachable or that would gap the sequence.  Recover the
    path with {!repair} and a fresh writer. *)
val append : writer -> Database.op -> int

(** {!append} for layered formats: frame and append a raw payload. *)
val append_payload : writer -> string -> int

val writer_seq : writer -> int

(** Has this writer been poisoned by a failed append? *)
val writer_poisoned : writer -> bool

(** The writer's underlying descriptor — exposed so fault-injection
    tests can sabotage the fd and exercise the poisoning path. *)
val writer_fd : writer -> Unix.file_descr

(** Journal every subsequent mutation of [db] through [w] — the
    journaling mode: append durably first, mutate second.  Detach with
    [Database.set_journal db None]. *)
val attach : writer -> Database.t -> unit

val close : writer -> unit

(** {1 Replay and recovery} *)

(** Apply one logged op to a database.  [load_schema] elaborates the
    surface source of a [schema] record; without it, such a record
    raises {!Wal_error}.
    @raise Database.Store_error when the op does not validate. *)
val apply : ?load_schema:(string -> Schema.t) -> Database.t -> Database.op -> unit

type recovery = {
  db : Database.t;
  snapshot_seq : int;  (** wal-seq header of the snapshot, 0 if none *)
  replayed : int;  (** WAL records applied on top of the snapshot *)
  last_seq : int;  (** last applied sequence number (snapshot included) *)
  wal_valid_bytes : int;  (** prefix length to keep when repairing *)
  corruption : corruption option;
}

(** Recover a database from snapshot and WAL {e contents}.  Loads the
    snapshot into a fresh database over [schema], then replays every
    WAL record with [snapshot_seq < seq], in order, stopping at the
    first corrupt record or failing op.  Total for arbitrary [wal]
    bytes — decoding and replay failures end the prefix instead of
    raising (snapshot parse errors still raise: snapshots are written
    atomically and a bad one is real damage, not a torn tail). *)
val recover_text :
  ?load_schema:(string -> Schema.t) ->
  schema:Schema.t ->
  ?snapshot:string ->
  ?wal:string ->
  unit ->
  recovery

(** {!recover_text} over files; either file may be absent. *)
val recover :
  ?load_schema:(string -> Schema.t) ->
  schema:Schema.t ->
  snapshot_path:string ->
  wal_path:string ->
  unit ->
  recovery
