module Error = Tdp_core.Error
module Type_name = Tdp_core.Type_name
module Attr_name = Tdp_core.Attr_name
module Hierarchy = Tdp_core.Hierarchy
module Schema = Tdp_core.Schema
module Schema_index = Tdp_core.Schema_index
module Projection = Tdp_core.Projection
module Applicability = Tdp_core.Applicability
module Dispatch = Tdp_dispatch.Dispatch
module Database = Tdp_store.Database
module Wal = Tdp_store.Wal
module Dump = Tdp_store.Dump
module Interp = Tdp_store.Interp
module Txn_log = Tdp_txn.Txn_log
module Mvcc = Tdp_txn.Mvcc
module Server = Tdp_txn.Server
module Replica = Tdp_replica.Replica
module Router = Tdp_replica.Router
module Catalog = Tdp_algebra.Catalog
module Evolution = Tdp_algebra.Evolution
module Stmt = Tdp_lang.Stmt
module Session = Tdp_lang.Session
module Repl = Tdp_lang.Repl
module Lint = Tdp_analysis.Lint
module Infer = Tdp_infer.Infer
module Pipeline = Tdp_infer.Pipeline
module Obs = Tdp_obs

let load_schema source =
  Result.map
    (fun (r : Tdp_lang.Elaborate.result_) -> r.schema)
    (Tdp_lang.Elaborate.load source)

let load_schema_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | source -> load_schema source
  | exception Sys_error m ->
      Error (Tdp_core.Error.Parse_error { line = 0; col = 0; message = Printf.sprintf "cannot read %s: %s" path m })
