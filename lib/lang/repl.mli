(** The read-eval-print loop over a {!Session}.

    Reads statements from a channel, accumulating lines until they
    parse completely (multi-line continuation), evaluates them, and
    prints {!Session.render} of each outcome — one canonical text form,
    shared with the server's [eval] verb.  Parse failures render as
    TDP050 diagnostics and the loop recovers.  Returns on [:quit] or
    end of input.

    Flags: [interactive] writes a prompt ([odb> ] / [...> ] while
    continuing) before each read; [echo] instead prints prompt and
    input line to the output — how [--script] replays produce
    deterministic transcripts (the golden corpus under
    test/golden/repl/). *)

val run :
  ?echo:bool -> ?interactive:bool -> Session.t -> in_channel -> out_channel -> unit
