open Tdp_core
open Ast
module View = Tdp_algebra.View
module Pred = Tdp_algebra.Pred

type result_ = {
  schema : Schema.t;
  views : (string * View.expr) list;  (** in declaration order *)
  view_positions : (string * (int * int)) list;
      (** view name -> (line, col) of its declaration *)
}

let prim_of_string = function
  | "int" -> Some Value_type.int
  | "float" -> Some Value_type.float
  | "string" -> Some Value_type.string
  | "bool" -> Some Value_type.bool
  | "date" -> Some Value_type.date
  | _ -> None

let value_type s =
  match prim_of_string s with
  | Some p -> p
  | None -> Value_type.named (Type_name.of_string s)

module SSet = Set.Make (String)

(* Generic-function names declared anywhere in the program; calls to
   anything else elaborate to builtin operations. *)
let declared_gfs items =
  List.fold_left
    (fun acc item ->
      match item.desc with
      | IAccessor { gf; _ } | IMethod { gf; _ } -> SSet.add gf acc
      | IType _ | IView _ -> acc)
    SSet.empty items

let at (pos : Ast.pos) f = Error.with_position ~line:pos.line ~col:pos.col f

let rec elab_expr gfs (e : sexpr) : Body.expr =
  match e with
  | EInt i -> Body.int i
  | EFloat f -> Body.Lit (Float f)
  | EString s -> Body.str s
  | EBool b -> Body.bool b
  | ENull -> Body.null
  | EVar x -> Body.var x
  | EApp (name, args) ->
      let args = List.map (elab_expr gfs) args in
      if SSet.mem name gfs then Body.call name args else Body.builtin name args
  | EBin (op, a, b) -> Body.builtin op [ elab_expr gfs a; elab_expr gfs b ]
  | ENot a -> Body.builtin "not" [ elab_expr gfs a ]

let rec elab_stmt gfs (s : sstmt) : Body.stmt =
  match s with
  | SLocal { var; ty; init } ->
      Body.local ?init:(Option.map (elab_expr gfs) init) var (value_type ty)
  | SAssign (x, e) -> Body.assign x (elab_expr gfs e)
  | SExpr e -> Body.expr (elab_expr gfs e)
  | SReturn None -> Body.return_unit
  | SReturn (Some e) -> Body.return_ (elab_expr gfs e)
  | SIf (c, t, e) ->
      Body.if_ (elab_expr gfs c) (List.map (elab_stmt gfs) t)
        (List.map (elab_stmt gfs) e)
  | SWhile (c, b) -> Body.while_ (elab_expr gfs c) (List.map (elab_stmt gfs) b)

let elab_lit = function
  | LInt i -> Body.Int i
  | LFloat f -> Body.Float f
  | LString s -> Body.String s
  | LBool b -> Body.Bool b

let pred_op = function
  | "==" -> Pred.Eq
  | "!=" -> Pred.Ne
  | "<" -> Pred.Lt
  | "<=" -> Pred.Le
  | ">" -> Pred.Gt
  | ">=" -> Pred.Ge
  | op -> Error.raise_ (Invariant_violation ("unknown predicate operator " ^ op))

let rec elab_pred = function
  | PCmp (attr, op, lit) ->
      Pred.cmp (Attr_name.of_string attr) (pred_op op) (elab_lit lit)
  | PAnd (a, b) -> Pred.And (elab_pred a, elab_pred b)
  | POr (a, b) -> Pred.Or (elab_pred a, elab_pred b)
  | PNot a -> Pred.Not (elab_pred a)

let rec elab_view = function
  | VBase n -> View.Base (Type_name.of_string n)
  | VProject (e, attrs) ->
      View.Project (elab_view e, List.map Attr_name.of_string attrs)
  | VSelect (e, p) -> View.Select (elab_view e, elab_pred p)
  | VGeneralize (a, b) -> View.Generalize (elab_view a, elab_view b)
  | VJoin (a, b) -> View.Join (elab_view a, elab_view b)

(* [check] controls whether the elaborated schema is validated and its
   method bodies type-checked.  [odb lint] elaborates unchecked so the
   linter can report every violation as a diagnostic instead of dying on
   the first raised error. *)
let elaborate_gen ~check items =
  let gfs = declared_gfs items in
  (* Pass 1: types. *)
  let schema =
    List.fold_left
      (fun schema item ->
        match item.desc with
        | IType { name; supers; attrs } ->
            at item.pos (fun () ->
                Schema.add_type schema
                  (Type_def.make
                     ~attrs:
                       (List.map
                          (fun (a, ty) ->
                            Attribute.make (Attr_name.of_string a) (value_type ty))
                          attrs)
                     ~supers:
                       (List.map (fun (s, p) -> (Type_name.of_string s, p)) supers)
                     (Type_name.of_string name)))
        | IAccessor _ | IMethod _ | IView _ -> schema)
      Schema.empty items
  in
  (* Pass 2: methods.  Remember each method's declaration position so the
     body checks below can attribute their failures. *)
  let positions = ref [] in
  let schema =
    List.fold_left
      (fun schema item ->
        match item.desc with
        | IType _ | IView _ -> schema
        | IAccessor { kind; gf; id; param; on; attr } ->
            at item.pos (fun () ->
                let on = Type_name.of_string on in
                let attr = Attr_name.of_string attr in
                let m =
                  match kind with
                  | `Reader ->
                      let result =
                        match
                          Hierarchy.find_attribute (Schema.hierarchy schema) on attr
                        with
                        | Some a -> Attribute.ty a
                        | None ->
                            Error.raise_
                              (Accessor_attr_not_inherited { meth = id; attr })
                      in
                      Method_def.reader ~gf ~id ~param ~param_type:on ~attr ~result
                  | `Writer -> Method_def.writer ~gf ~id ~param ~param_type:on ~attr
                in
                positions := (Method_def.key m, item.pos) :: !positions;
                Schema.add_method schema m)
        | IMethod { gf; id; params; result; body } ->
            at item.pos (fun () ->
                let signature =
                  Signature.make
                    ?result:(Option.map value_type result)
                    (List.map (fun (x, t) -> (x, Type_name.of_string t)) params)
                in
                let m =
                  Method_def.make ~gf ~id ~signature
                    (General (List.map (elab_stmt gfs) body))
                in
                positions := (Method_def.key m, item.pos) :: !positions;
                Schema.add_method schema m))
      schema items
  in
  if check then begin
    Schema.validate_exn schema;
    List.iter
      (fun m ->
        let pos =
          List.assoc_opt (Method_def.key m) !positions
          |> Option.value ~default:{ Ast.line = 0; col = 0 }
        in
        if pos.line = 0 then Typing.check_method schema m
        else at pos (fun () -> Typing.check_method schema m))
      (Schema.all_methods schema)
  end;
  let views =
    List.filter_map
      (fun item ->
        match item.desc with
        | IView { name; expr } -> Some (name, elab_view expr)
        | IType _ | IAccessor _ | IMethod _ -> None)
      items
  in
  let view_positions =
    List.filter_map
      (fun item ->
        match item.desc with
        | IView { name; _ } -> Some (name, (item.pos.line, item.pos.col))
        | IType _ | IAccessor _ | IMethod _ -> None)
      items
  in
  { schema; views; view_positions }

let elaborate_exn items = elaborate_gen ~check:true items
let elaborate items = Error.guard (fun () -> elaborate_exn items)
let program = elaborate

(* A schema file is the statement sequence where every statement is a
   declaration; anything else is rejected with its position. *)
let items_of_stmts stmts =
  List.map
    (fun (s : Ast.stmt) ->
      match s.sdesc with
      | SDecl desc -> { pos = s.spos; desc }
      | _ ->
          Error.raise_
            (Parse_error
               { line = s.spos.line;
                 col = s.spos.col;
                 message = "only declarations are allowed in a schema file"
               }))
    stmts

let load_exn src = elaborate_exn (items_of_stmts (Parser.parse_stmts_string src))
let load src = Error.guard (fun () -> load_exn src)

let load_unchecked src =
  Error.guard (fun () ->
      elaborate_gen ~check:false (items_of_stmts (Parser.parse_stmts_string src)))

let view_expr = elab_view
let pred = elab_pred
let literal = elab_lit

(* Apply every declared view in order; returns the final schema and the
   derived type of each view. *)
let apply_views_exn ?check r =
  List.fold_left
    (fun (schema, derived) (name, expr) ->
      let o =
        View.derive_exn ?check schema ~view:name
          ~name:(Type_name.of_string name) expr
      in
      (o.schema, (name, o.name) :: derived))
    (r.schema, []) r.views
  |> fun (schema, derived) -> (schema, List.rev derived)

let apply_views ?check r = Error.guard (fun () -> apply_views_exn ?check r)
