(** Recursive-descent parser for the schema language.

    Produces the surface syntax of {!Ast}; name resolution and
    type-checking happen in {!Elaborate}.  See README.md for the
    grammar. *)

(** @raise Error.E [Parse_error] with position information. *)
val parse_string : string -> Ast.program

val parse : string -> (Ast.program, Tdp_core.Error.t) result

(** {1 Interactive statements}

    The statement grammar (see docs/language.md) is a superset of the
    schema grammar: every declaration is a statement, and the
    interactive forms ([let], [define view], [call … on], [new]/[set]/
    [del], bare view expressions and [:]-commands) ride on top.  The
    statement keywords are contextual identifiers, so existing schemas
    that use them as names keep parsing. *)

(** @raise Error.E [Parse_error] with position information. *)
val parse_stmts_string : string -> Ast.stmt list

val parse_stmts : string -> (Ast.stmt list, Tdp_core.Error.t) result

val parse_stmts_partial :
  string -> [ `Stmts of Ast.stmt list | `Incomplete | `Fail of Tdp_core.Error.t ]
(** Like {!parse_stmts}, but a parse error positioned at end-of-input is
    reported as [`Incomplete] — more input may complete the statement —
    which is what drives the repl's multi-line continuation. *)
