open Tdp_core
open Ast

(* Recursive-descent parser over the lexer's token stream. *)

type state = { mutable toks : Lexer.spanned list; mutable last : Lexer.spanned }

(* [Lexer.tokenize] always ends the stream in EOF, and [advance] keeps
   that final EOF token in place, so a well-formed stream never runs
   dry: a parser stuck at the end keeps peeking EOF (with its position)
   until some [expect]/[error] raises.  An empty stream can still be
   handed in directly; report it as a positioned parse error at the
   last consumed token rather than crashing. *)
let eof_error (t : Lexer.spanned) =
  Error.raise_
    (Parse_error
       { line = t.line; col = t.col; message = "unexpected end of input" })

let peek st = match st.toks with [] -> eof_error st.last | t :: _ -> t

let advance st =
  match st.toks with
  | [] -> eof_error st.last
  | [ { token = Lexer.EOF; _ } ] -> () (* EOF is sticky *)
  | t :: rest ->
      st.last <- t;
      st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let error (t : Lexer.spanned) fmt =
  Fmt.kstr
    (fun message ->
      Error.raise_ (Parse_error { line = t.line; col = t.col; message }))
    fmt

let expect st tok =
  let t = next st in
  if t.token <> tok then
    error t "expected %s, found %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string t.token)

let ident st =
  let t = next st in
  match t.token with
  | IDENT s -> s
  | tok -> error t "expected an identifier, found %s" (Lexer.token_to_string tok)

let kw st k = expect st (KW k)
let accept st tok = if (peek st).token = tok then (advance st; true) else false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec expr st = or_expr st

and or_expr st =
  let lhs = and_expr st in
  if accept st (KW "or") then EBin ("or", lhs, or_expr st) else lhs

and and_expr st =
  let lhs = cmp_expr st in
  if accept st (KW "and") then EBin ("and", lhs, and_expr st) else lhs

and cmp_expr st =
  let lhs = add_expr st in
  let op =
    match (peek st).token with
    | EQEQ -> Some "="
    | NE -> Some "!="
    | LT -> Some "<"
    | GT -> Some ">"
    | LE -> Some "<="
    | GE -> Some ">="
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      EBin (op, lhs, add_expr st)

and add_expr st =
  let rec go lhs =
    match (peek st).token with
    | PLUS ->
        advance st;
        go (EBin ("+", lhs, mul_expr st))
    | MINUS ->
        advance st;
        go (EBin ("-", lhs, mul_expr st))
    | _ -> lhs
  in
  go (mul_expr st)

and mul_expr st =
  let rec go lhs =
    match (peek st).token with
    | STAR ->
        advance st;
        go (EBin ("*", lhs, unary st))
    | SLASH ->
        advance st;
        go (EBin ("/", lhs, unary st))
    | _ -> lhs
  in
  go (unary st)

and unary st =
  if accept st (KW "not") then ENot (unary st) else primary st

and primary st =
  let t = next st in
  match t.token with
  | INT i -> EInt i
  | FLOAT f -> EFloat f
  | STRING s -> EString s
  | KW "true" -> EBool true
  | KW "false" -> EBool false
  | KW "null" -> ENull
  | LPAREN ->
      let e = expr st in
      expect st RPAREN;
      e
  | IDENT name ->
      if accept st LPAREN then begin
        let args = ref [] in
        if (peek st).token <> RPAREN then begin
          args := [ expr st ];
          while accept st COMMA do
            args := expr st :: !args
          done
        end;
        expect st RPAREN;
        EApp (name, List.rev !args)
      end
      else EVar name
  | tok -> error t "expected an expression, found %s" (Lexer.token_to_string tok)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let type_name st =
  let t = next st in
  match t.token with
  | IDENT s -> s
  | tok -> error t "expected a type, found %s" (Lexer.token_to_string tok)

let rec stmt st =
  let t = peek st in
  match t.token with
  | KW "var" ->
      advance st;
      let var = ident st in
      expect st COLON;
      let ty = type_name st in
      let init = if accept st ASSIGN then Some (expr st) else None in
      expect st SEMI;
      SLocal { var; ty; init }
  | KW "return" ->
      advance st;
      if accept st SEMI then SReturn None
      else
        let e = expr st in
        expect st SEMI;
        SReturn (Some e)
  | KW "if" ->
      advance st;
      let c = expr st in
      let th = block st in
      let el = if accept st (KW "else") then block st else [] in
      SIf (c, th, el)
  | KW "while" ->
      advance st;
      let c = expr st in
      SWhile (c, block st)
  | IDENT x when (match st.toks with _ :: { token = Lexer.ASSIGN; _ } :: _ -> true | _ -> false) ->
      advance st;
      expect st ASSIGN;
      let e = expr st in
      expect st SEMI;
      SAssign (x, e)
  | _ ->
      let e = expr st in
      expect st SEMI;
      SExpr e

and block st =
  expect st LBRACE;
  let stmts = ref [] in
  while (peek st).token <> Lexer.RBRACE do
    stmts := stmt st :: !stmts
  done;
  expect st RBRACE;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Predicates and view expressions                                     *)
(* ------------------------------------------------------------------ *)

let literal st =
  let t = next st in
  match t.token with
  | INT i -> LInt i
  | FLOAT f -> LFloat f
  | STRING s -> LString s
  | KW "true" -> LBool true
  | KW "false" -> LBool false
  | MINUS -> (
      let t2 = next st in
      match t2.token with
      | INT i -> LInt (-i)
      | FLOAT f -> LFloat (-.f)
      | tok -> error t2 "expected a number, found %s" (Lexer.token_to_string tok))
  | tok -> error t "expected a literal, found %s" (Lexer.token_to_string tok)

let rec pred st = pred_or st

and pred_or st =
  let lhs = pred_and st in
  if accept st (KW "or") then POr (lhs, pred_or st) else lhs

and pred_and st =
  let lhs = pred_atom st in
  if accept st (KW "and") then PAnd (lhs, pred_and st) else lhs

and pred_atom st =
  if accept st (KW "not") then PNot (pred_atom st)
  else if accept st LPAREN then begin
    let p = pred st in
    expect st RPAREN;
    p
  end
  else
    let attr = ident st in
    let t = next st in
    let op =
      match t.token with
      | EQEQ -> "=="
      | NE -> "!="
      | LT -> "<"
      | GT -> ">"
      | LE -> "<="
      | GE -> ">="
      | tok -> error t "expected a comparison, found %s" (Lexer.token_to_string tok)
    in
    PCmp (attr, op, literal st)

let rec view_expr st =
  let t = peek st in
  match t.token with
  | KW "project" ->
      advance st;
      let sub = view_expr st in
      kw st "on";
      expect st LBRACKET;
      let attrs = ref [ ident st ] in
      while accept st COMMA do
        attrs := ident st :: !attrs
      done;
      expect st RBRACKET;
      VProject (sub, List.rev !attrs)
  | KW "select" ->
      advance st;
      let sub = view_expr st in
      kw st "where";
      VSelect (sub, pred st)
  | KW "generalize" ->
      advance st;
      let a = view_expr st in
      kw st "with";
      let b = view_expr st in
      VGeneralize (a, b)
  | KW "join" ->
      advance st;
      let a = view_expr st in
      kw st "with";
      let b = view_expr st in
      VJoin (a, b)
  | LPAREN ->
      advance st;
      let v = view_expr st in
      expect st RPAREN;
      v
  | IDENT n ->
      advance st;
      VBase n
  | tok -> error t "expected a view expression, found %s" (Lexer.token_to_string tok)

(* ------------------------------------------------------------------ *)
(* Top-level items                                                     *)
(* ------------------------------------------------------------------ *)

let gf_and_id st =
  let gf = ident st in
  let id = if accept st HASH then ident st else gf in
  (gf, id)

let item_desc st =
  let t = peek st in
  match t.token with
  | KW "type" ->
      advance st;
      let name = ident st in
      let supers =
        if accept st COLON then begin
          let one () =
            let s = ident st in
            expect st LPAREN;
            let t = next st in
            let p =
              match t.token with
              | INT p -> p
              | MINUS -> (
                  let t2 = next st in
                  match t2.token with
                  | INT p -> -p
                  | tok ->
                      error t2 "expected an integer, found %s"
                        (Lexer.token_to_string tok))
              | tok ->
                  error t "expected a precedence, found %s"
                    (Lexer.token_to_string tok)
            in
            expect st RPAREN;
            (s, p)
          in
          let supers = ref [ one () ] in
          while accept st COMMA do
            supers := one () :: !supers
          done;
          List.rev !supers
        end
        else []
      in
      expect st LBRACE;
      let attrs = ref [] in
      while (peek st).token <> Lexer.RBRACE do
        let a = ident st in
        expect st COLON;
        let ty = type_name st in
        expect st SEMI;
        attrs := (a, ty) :: !attrs
      done;
      expect st RBRACE;
      IType { name; supers; attrs = List.rev !attrs }
  | KW "reader" | KW "writer" ->
      let kind = if t.token = KW "reader" then `Reader else `Writer in
      advance st;
      let gf, id = gf_and_id st in
      expect st LPAREN;
      let param = ident st in
      expect st COLON;
      let on = ident st in
      expect st RPAREN;
      expect st ARROW;
      let attr = ident st in
      expect st SEMI;
      IAccessor { kind; gf; id; param; on; attr }
  | KW "method" ->
      advance st;
      let gf, id = gf_and_id st in
      expect st LPAREN;
      let params = ref [] in
      if (peek st).token <> Lexer.RPAREN then begin
        let one () =
          let x = ident st in
          expect st COLON;
          let ty = ident st in
          (x, ty)
        in
        params := [ one () ];
        while accept st COMMA do
          params := one () :: !params
        done
      end;
      expect st RPAREN;
      let result = if accept st COLON then Some (type_name st) else None in
      let body = block st in
      IMethod { gf; id; params = List.rev !params; result; body }
  | KW "view" ->
      advance st;
      let name = ident st in
      expect st EQUALS;
      let e = view_expr st in
      expect st SEMI;
      IView { name; expr = e }
  | tok -> error t "expected a declaration, found %s" (Lexer.token_to_string tok)

let item st =
  let t = peek st in
  let pos = { Ast.line = t.line; col = t.col } in
  { Ast.pos; desc = item_desc st }

let program st =
  let items = ref [] in
  while (peek st).token <> Lexer.EOF do
    items := item st :: !items
  done;
  List.rev !items

let parse_string src =
  let st =
    { toks = Lexer.tokenize src;
      last = { Lexer.token = Lexer.EOF; line = 1; col = 1 }
    }
  in
  program st

let parse src = Error.guard (fun () -> parse_string src)

(* ------------------------------------------------------------------ *)
(* Interactive statements                                               *)
(* ------------------------------------------------------------------ *)

(* The statement keywords (let/define/drop/call/new/set/del) are
   contextual: they stay plain identifiers in the lexer so existing
   schemas that use them as attribute or type names keep parsing.  A
   two-token lookahead disambiguates them from a bare view expression
   starting with the same identifier. *)

let looking_at2 st p =
  match st.toks with _ :: (t2 : Lexer.spanned) :: _ -> p t2.token | _ -> false

let svalue st =
  let t = peek st in
  match t.token with
  | KW "null" ->
      advance st;
      SVNull
  | HASH -> (
      advance st;
      let t2 = next st in
      match t2.token with
      | INT i -> SVRef i
      | tok ->
          error t2 "expected an object id after '#', found %s"
            (Lexer.token_to_string tok))
  | IDENT "year" when looking_at2 st (fun t -> t = Lexer.LPAREN) -> (
      advance st;
      expect st LPAREN;
      let t2 = next st in
      match t2.token with
      | INT y ->
          expect st RPAREN;
          SVDate y
      | tok ->
          error t2 "expected a year inside year(...), found %s"
            (Lexer.token_to_string tok))
  | _ -> SVLit (literal st)

(* [{ attr = value; ... }] — shared by [new] and [set].  A trailing ';'
   after the closing brace is accepted but not required, mirroring how
   declarations with bodies terminate. *)
let field_list st =
  expect st LBRACE;
  let fields = ref [] in
  while (peek st).token <> Lexer.RBRACE do
    let a = ident st in
    expect st EQUALS;
    let v = svalue st in
    (* fields separate with ';'; the one before '}' may omit it *)
    if (peek st).token <> Lexer.RBRACE then expect st SEMI;
    fields := (a, v) :: !fields
  done;
  expect st RBRACE;
  ignore (accept st SEMI);
  List.rev !fields

let oid_ref st =
  expect st HASH;
  let t = next st in
  match t.token with
  | INT i -> i
  | tok ->
      error t "expected an object id after '#', found %s"
        (Lexer.token_to_string tok)

let colon_command st =
  advance st;
  (* COLON *)
  let t = next st in
  match t.token with
  | IDENT "show" -> SShow (view_expr st)
  | KW "type" -> SType (view_expr st)
  | IDENT "extent" -> SExtent (view_expr st)
  | IDENT "views" -> SViews
  | IDENT "schema" -> SSchema
  | IDENT "quit" -> SQuit
  | tok ->
      error t
        "unknown command %s (expected :show, :type, :extent, :views, :schema \
         or :quit)"
        (Lexer.token_to_string tok)

let stmt_desc_top st =
  let t = peek st in
  match t.token with
  | KW "type" | KW "reader" | KW "writer" | KW "method" | KW "view" ->
      SDecl (item_desc st)
  | COLON -> colon_command st
  | IDENT "let"
    when looking_at2 st (function Lexer.IDENT _ -> true | _ -> false) ->
      advance st;
      let var = ident st in
      expect st EQUALS;
      let e = view_expr st in
      expect st SEMI;
      SLet { var; expr = e }
  | IDENT "define" when looking_at2 st (fun tok -> tok = Lexer.KW "view") ->
      advance st;
      kw st "view";
      let name = ident st in
      expect st EQUALS;
      let e = view_expr st in
      expect st SEMI;
      SDefine { name; expr = e }
  | IDENT "drop" when looking_at2 st (fun tok -> tok = Lexer.KW "view") ->
      advance st;
      kw st "view";
      let name = ident st in
      expect st SEMI;
      SDrop name
  | IDENT "call"
    when looking_at2 st (function Lexer.IDENT _ -> true | _ -> false) ->
      advance st;
      let gf = ident st in
      kw st "on";
      let e = view_expr st in
      expect st SEMI;
      SCallOn { gf; expr = e }
  | IDENT "new"
    when looking_at2 st (function Lexer.IDENT _ -> true | _ -> false) ->
      advance st;
      let ty = ident st in
      let inits = field_list st in
      SNew { ty; inits }
  | IDENT "set" when looking_at2 st (fun tok -> tok = Lexer.HASH) ->
      advance st;
      let oid = oid_ref st in
      let updates = field_list st in
      SSet { oid; updates }
  | IDENT "del" when looking_at2 st (fun tok -> tok = Lexer.HASH) ->
      advance st;
      let oid = oid_ref st in
      let policy =
        match (peek st).token with
        | IDENT "nullify" ->
            advance st;
            `Nullify
        | IDENT "restrict" ->
            advance st;
            `Restrict
        | _ -> `Restrict
      in
      expect st SEMI;
      SDelete { oid; policy }
  | _ ->
      let e = view_expr st in
      expect st SEMI;
      SExtent e

let stmt_top st =
  let t = peek st in
  let spos = { Ast.line = t.line; col = t.col } in
  { Ast.spos; sdesc = stmt_desc_top st }

let stmts st =
  let out = ref [] in
  while (peek st).token <> Lexer.EOF do
    if accept st SEMI then () (* tolerate stray semicolons *)
    else out := stmt_top st :: !out
  done;
  List.rev !out

let parse_stmts_string src =
  let st =
    { toks = Lexer.tokenize src;
      last = { Lexer.token = Lexer.EOF; line = 1; col = 1 }
    }
  in
  stmts st

let parse_stmts src = Error.guard (fun () -> parse_stmts_string src)

(* A parse error positioned exactly at the EOF token means more input
   could still complete the statement — the repl keeps buffering.  Any
   error strictly before EOF (or a lexer error) is a hard failure. *)
let parse_stmts_partial src =
  match Error.guard (fun () -> Lexer.tokenize src) with
  | Error e -> `Fail e
  | Ok toks -> (
      let eof_pos =
        List.fold_left
          (fun acc (t : Lexer.spanned) ->
            match t.token with Lexer.EOF -> Some (t.line, t.col) | _ -> acc)
          None toks
      in
      let st = { toks; last = { Lexer.token = Lexer.EOF; line = 1; col = 1 } } in
      match Error.guard (fun () -> stmts st) with
      | Ok ss -> `Stmts ss
      | Error (Error.Parse_error { line; col; _ } as e) ->
          if eof_pos = Some (line, col) then `Incomplete else `Fail e
      | Error e -> `Fail e)
