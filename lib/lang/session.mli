(** Stateful evaluation of {!Stmt} statements over a store.

    One session binds a {!Tdp_algebra.Catalog} of defined views, a set
    of [let] bindings, and a store backend ({!store_ops}); every
    statement is resolved against those bindings, typechecked with
    {!Tdp_infer.Infer} (principal inference + instantiation against the
    live schema), and only then touches the store.  Evaluation returns
    a structured {!outcome} — never prints — so the three frontends
    (direct API use, [odb repl], the server's [eval] verb) share one
    rendering ({!render} / {!to_json}) and one error shape
    ({!Tdp_analysis.Diagnostic} with stable TDP05x codes):

    - [TDP050] statement failed to parse
    - [TDP051] unknown relvar or type
    - [TDP052] view or binding name already defined
    - [TDP053] ill-typed statement (via {!Tdp_infer.Infer})
    - [TDP054] join views have no identity extent
    - [TDP055] statement failed at the store
    - [TDP056] declaration not executable interactively *)

open Tdp_core
module View = Tdp_algebra.View
module Database = Tdp_store.Database
module Oid = Tdp_store.Oid
module Value = Tdp_store.Value
module Infer = Tdp_infer.Infer
module Diagnostic = Tdp_analysis.Diagnostic

(** What a session needs from a store.  [s_instances], when given, is a
    fast path for identity extents (e.g. {!View.instances} over a
    {!Database}); without it the session evaluates view expressions
    per-object through [s_extent]/[s_get] — how the server runs over
    MVCC snapshots. *)
type store_ops = {
  s_schema : unit -> Schema.t;
  s_extent : Type_name.t -> Oid.t list;
  s_type_of : Oid.t -> Type_name.t;
  s_get : Oid.t -> Attr_name.t -> Value.t;
  s_count : unit -> int;
  s_new : Type_name.t -> (Attr_name.t * Value.t) list -> Oid.t;
  s_set : Oid.t -> Attr_name.t -> Value.t -> unit;
  s_del : Oid.t -> Database.delete_policy -> unit;
  s_call : string -> Value.t list -> Value.t;
  s_instances : (View.expr -> Oid.t list) option;
}

type t

(** [create ?file ops] — [file] labels diagnostics. *)
val create : ?file:string -> store_ops -> t

(** A session over a mutable {!Database}, with an {!Tdp_store.Interp}
    for [call] statements ([now] as {!Tdp_store.Interp.create}). *)
val of_database : ?now:int -> ?file:string -> Database.t -> t

(** {!store_ops} over a database, reusable by custom frontends. *)
val database_ops : ?now:int -> Database.t -> store_ops

val schema : t -> Schema.t

(** Pre-define views (e.g. the ones a schema file declares) so they are
    queryable by name.  @raise Error.E on a failing derivation. *)
val install_views : t -> (string * View.expr) list -> unit

(** {1 Outcomes} *)

type view_inference =
  | Admitted of Infer.principal
  | Not_instantiated of Infer.principal * Infer.error
  | Ill_typed_view of string * Infer.error

type resolution =
  | Selected of Method_def.Key.t * (Method_def.Key.t * Type_name.t list) list
  | Ambiguous of Method_def.Key.t list
  | No_method

type outcome =
  | Bound of { var : string; expr : View.expr }
  | Defined of { name : string; expr : View.expr; attrs : Attr_name.t list }
  | Dropped of string
  | Shown of View.expr
  | Typed of Infer.principal
  | Extent of {
      expr : View.expr;
      attrs : Attr_name.t list;
      rows : (Oid.t * Value.t list) list;
    }
  | Called of { gf : string; results : (Oid.t * Value.t) list }
  | Created of { oid : Oid.t; ty : Type_name.t }
  | Updated of { oid : Oid.t; attrs : Attr_name.t list }
  | Deleted of Oid.t
  | Views of {
      defined : (string * View.expr) list;
      bound : (string * View.expr) list;
    }
  | Schema_info of {
      types : int;
      surrogates : int;
      gfs : int;
      methods : int;
      type_names : Type_name.t list;
    }
  | Checked of {
      file : string option;
      schema : Schema.t;
      views : (string * View.expr) list;
      issues : string list;
    }
  | Inferred of { file : string option; views : (string * view_inference) list }
  | Resolved of {
      file : string option;
      call : string;
      resolution : resolution;
      chain : bool;
    }
  | Diag of Diagnostic.t
  | Bye

(** Does the outcome represent a failure (an error-severity diagnostic,
    unresolved dispatch, check issues, a failed inference)? *)
val failed : outcome -> bool

(** {1 Evaluation} *)

(** Evaluate one statement.  Never raises: statement-level failures of
    any kind come back as [Diag].  A schema swapped under the session
    (generation change) resets catalog and bindings first. *)
val eval : t -> Stmt.t -> outcome

(** Parse and evaluate a source string; a parse error yields a single
    [Diag] ([TDP050]), and evaluation stops after [:quit] ([Bye]). *)
val eval_string : t -> string -> outcome list

(** The [TDP050] diagnostic for a parse error. *)
val parse_error : ?file:string -> Error.t -> Diagnostic.t

(** {1 One-shot helpers for the CLI frontends} *)

(** [odb check]: elaborate a schema source and report summary, views
    and residual well-formedness issues. *)
val check_source : ?file:string -> string -> outcome

(** [odb infer]: principal schemas for every declared view. *)
val infer_source : ?file:string -> string -> outcome

(** [odb dispatch]: resolve a call against a schema; [chain] also
    collects the full applicability chain. *)
val resolve_call :
  ?file:string ->
  Schema.t ->
  gf:string ->
  arg_types:Type_name.t list ->
  chain:bool ->
  outcome

(** {1 Rendering} *)

(** The canonical text form (no trailing newline; multi-line outcomes
    join with ['\n']).  All frontends print exactly this. *)
val render : outcome -> string

(** The canonical JSON payload (the CLI wraps it in its envelope). *)
val to_json : outcome -> Tdp_obs.Json.t

(** A flat, non-wrapping rendering of a view expression (used by
    {!render}; exposed for reuse in CLI output). *)
val view_str : View.expr -> string
