open Tdp_core
module View = Tdp_algebra.View
module Pred = Tdp_algebra.Pred
module Catalog = Tdp_algebra.Catalog
module Infer = Tdp_infer.Infer
module Diagnostic = Tdp_analysis.Diagnostic
module Lint = Tdp_analysis.Lint
module Static_check = Tdp_dispatch.Static_check
module Dispatch = Tdp_dispatch.Dispatch
module Database = Tdp_store.Database
module Interp = Tdp_store.Interp
module Oid = Tdp_store.Oid
module Value = Tdp_store.Value
module J = Tdp_obs.Json

(* ------------------------------------------------------------------ *)
(* Store abstraction                                                   *)
(* ------------------------------------------------------------------ *)

type store_ops = {
  s_schema : unit -> Schema.t;
  s_extent : Type_name.t -> Oid.t list;
  s_type_of : Oid.t -> Type_name.t;
  s_get : Oid.t -> Attr_name.t -> Value.t;
  s_count : unit -> int;
  s_new : Type_name.t -> (Attr_name.t * Value.t) list -> Oid.t;
  s_set : Oid.t -> Attr_name.t -> Value.t -> unit;
  s_del : Oid.t -> Database.delete_policy -> unit;
  s_call : string -> Value.t list -> Value.t;
  s_instances : (View.expr -> Oid.t list) option;
}

type t = {
  ops : store_ops;
  file : string option;
  mutable generation : int;  (** store-schema generation the state is bound to *)
  mutable catalog : Catalog.t;
  mutable lets : (string * View.expr) list;  (** newest first *)
}

let database_ops ?now db =
  let interp = Interp.create ?now db in
  { s_schema = (fun () -> Database.schema db);
    s_extent = Database.extent db;
    s_type_of = Database.type_of db;
    s_get = Database.get_attr db;
    s_count = (fun () -> Database.count db);
    s_new = (fun ty init -> Database.new_object db ty ~init);
    s_set = Database.set_attr db;
    s_del = (fun oid policy -> Database.delete db ~policy oid);
    s_call = (fun gf vs -> Interp.call interp gf vs);
    s_instances = Some (fun expr -> View.instances db expr);
  }

let create ?file ops =
  let schema = ops.s_schema () in
  { ops;
    file;
    generation = Schema.generation schema;
    catalog = Catalog.create schema;
    lets = [];
  }

let of_database ?now ?file db = create ?file (database_ops ?now db)

(* A schema swap under the session (e.g. the server's [schema] verb, or
   a replayed [Op_set_schema]) invalidates every binding: view
   expressions were resolved and typechecked against the old types. *)
let refresh t =
  let schema = t.ops.s_schema () in
  let gen = Schema.generation schema in
  if gen <> t.generation then begin
    t.generation <- gen;
    t.catalog <- Catalog.create schema;
    t.lets <- []
  end

let schema t = t.ops.s_schema ()

(* ------------------------------------------------------------------ *)
(* Outcomes                                                            *)
(* ------------------------------------------------------------------ *)

type view_inference =
  | Admitted of Infer.principal
  | Not_instantiated of Infer.principal * Infer.error
  | Ill_typed_view of string * Infer.error

type resolution =
  | Selected of Method_def.Key.t * (Method_def.Key.t * Type_name.t list) list
  | Ambiguous of Method_def.Key.t list
  | No_method

type outcome =
  | Bound of { var : string; expr : View.expr }
  | Defined of { name : string; expr : View.expr; attrs : Attr_name.t list }
  | Dropped of string
  | Shown of View.expr
  | Typed of Infer.principal
  | Extent of {
      expr : View.expr;
      attrs : Attr_name.t list;
      rows : (Oid.t * Value.t list) list;
    }
  | Called of { gf : string; results : (Oid.t * Value.t) list }
  | Created of { oid : Oid.t; ty : Type_name.t }
  | Updated of { oid : Oid.t; attrs : Attr_name.t list }
  | Deleted of Oid.t
  | Views of {
      defined : (string * View.expr) list;
      bound : (string * View.expr) list;
    }
  | Schema_info of {
      types : int;
      surrogates : int;
      gfs : int;
      methods : int;
      type_names : Type_name.t list;
    }
  | Checked of {
      file : string option;
      schema : Schema.t;
      views : (string * View.expr) list;
      issues : string list;
    }
  | Inferred of { file : string option; views : (string * view_inference) list }
  | Resolved of {
      file : string option;
      call : string;
      resolution : resolution;
      chain : bool;
    }
  | Diag of Diagnostic.t
  | Bye

let failed = function
  | Diag d -> Diagnostic.is_error d
  | Checked { issues = _ :: _; _ } -> true
  | Inferred { views; _ } ->
      List.exists (fun (_, r) -> match r with Admitted _ -> false | _ -> true) views
  | Resolved { resolution = Ambiguous _ | No_method; _ } -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Diagnostics (TDP05x)                                                *)
(* ------------------------------------------------------------------ *)

exception Fail of Diagnostic.t

let severity_of code =
  match List.find_opt (fun (c, _, _) -> c = code) Lint.codes with
  | Some (_, s, _) -> s
  | None -> Diagnostic.Error

let diag ?file ?position code fmt =
  Fmt.kstr
    (fun message ->
      Diagnostic.make ?file ?position ~code ~severity:(severity_of code) message)
    fmt

let fail ?file ?position code fmt =
  Fmt.kstr
    (fun message ->
      raise
        (Fail
           (Diagnostic.make ?file ?position ~code ~severity:(severity_of code)
              message)))
    fmt

(* A statement that failed to parse: TDP050 with the parser's position. *)
let parse_error ?file e =
  Diagnostic.make ?file ?position:(Error.position e) ~code:"TDP050"
    ~severity:Diagnostic.Error (Error.message e)

(* ------------------------------------------------------------------ *)
(* Flat (non-wrapping) rendering of algebra values                     *)
(* ------------------------------------------------------------------ *)

let pp_lit ppf (l : Body.literal) =
  match l with
  | Int i -> Fmt.int ppf i
  | Float f ->
      let s = Fmt.str "%.12g" f in
      if String.contains s '.' || String.contains s 'e' then Fmt.string ppf s
      else Fmt.pf ppf "%s.0" s
  | String s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Null -> Fmt.string ppf "null"

let rec pred_str (p : Pred.t) =
  match p with
  | Cmp { attr; op; value } ->
      Fmt.str "%a %s %a" Attr_name.pp attr (Pred.op_to_string op) pp_lit value
  | And (a, b) -> Fmt.str "(%s and %s)" (pred_str a) (pred_str b)
  | Or (a, b) -> Fmt.str "(%s or %s)" (pred_str a) (pred_str b)
  | Not a -> Fmt.str "(not %s)" (pred_str a)
  | True -> "0 == 0"

let rec view_str (v : View.expr) =
  match v with
  | Base n -> Type_name.to_string n
  | Project (e, attrs) ->
      Fmt.str "project %s on [%s]" (view_str e)
        (String.concat ", " (List.map Attr_name.to_string attrs))
  | Select (e, p) -> Fmt.str "select %s where %s" (view_str e) (pred_str p)
  | Generalize (a, b) ->
      Fmt.str "generalize %s with %s" (view_str a) (view_str b)
  | Join (a, b) -> Fmt.str "join %s with %s" (view_str a) (view_str b)

let value_str v = Fmt.str "%a" Value.pp v
let oid_str oid = Fmt.str "%a" Oid.pp oid
let key_str k = Fmt.str "%a" Method_def.Key.pp k

(* ------------------------------------------------------------------ *)
(* Name resolution and typechecking                                    *)
(* ------------------------------------------------------------------ *)

(* Resolve a surface view expression: base names mean, in order, a
   [let] binding, a cataloged view (its definition inlines — entries
   are stored fully resolved), or a schema type.  Unknown names are
   TDP051. *)
let resolve t ?position (sv : Ast.sview) : View.expr =
  let h = Schema.hierarchy (schema t) in
  let rec go (v : Ast.sview) : View.expr =
    match v with
    | VBase n -> (
        match List.assoc_opt n t.lets with
        | Some e -> e
        | None -> (
            match Catalog.find_opt t.catalog n with
            | Some (entry : Catalog.entry) -> entry.expr
            | None ->
                let tn = Type_name.of_string n in
                if Hierarchy.mem h tn then View.Base tn
                else
                  fail ?file:t.file ?position "TDP051"
                    "unknown relvar or type %s" n))
    | VProject (e, attrs) ->
        Project (go e, List.map Attr_name.of_string attrs)
    | VSelect (e, p) -> Select (go e, Elaborate.pred p)
    | VGeneralize (a, b) -> Generalize (go a, go b)
    | VJoin (a, b) -> Join (go a, go b)
  in
  go sv

(* Principal inference over the resolved (reference-free) expression,
   then instantiation against the live schema.  Failures are TDP053:
   the statement never reaches the store. *)
let typecheck t ?position ~name expr =
  let pipeline = View.to_pipeline ~is_ref:(fun _ -> false) expr in
  match Infer.infer ~name pipeline with
  | Error e ->
      fail ?file:t.file ?position "TDP053" "%s" (Infer.error_message e)
  | Ok p -> (
      match Infer.admits (schema t) p with
      | Ok () -> p
      | Error e ->
          fail ?file:t.file ?position "TDP053" "%s" (Infer.error_message e))

(* The attribute row a view displays, computed syntactically (the
   typecheck above already proved availability). *)
let rec row_attrs h (e : View.expr) : Attr_name.t list =
  match e with
  | Base n -> Hierarchy.all_attribute_names h n
  | Project (_, attrs) -> attrs
  | Select (e, _) -> row_attrs h e
  | Generalize (a, b) ->
      let rb = row_attrs h b in
      List.filter (fun a_ -> List.mem a_ rb) (row_attrs h a)
  | Join (a, b) ->
      let ra = row_attrs h a in
      ra @ List.filter (fun a_ -> not (List.mem a_ ra)) (row_attrs h b)

(* Identity instances.  Join views have none (TDP054, the structured
   form of [View.instances]'s raise); everything else either takes the
   backend's fast path ([View.instances] over a [Database]) or the
   generic per-object evaluator below (the server's MVCC snapshots). *)
let instances t ?position expr =
  if View.has_join expr then
    fail ?file:t.file ?position "TDP054"
      "join views have no identity extent; materialize the join instead"
  else
    match t.ops.s_instances with
    | Some f -> f expr
    | None ->
        let rec eval_pred oid (p : Pred.t) =
          match p with
          | Cmp { attr; op; value } ->
              Pred.compare_values op (t.ops.s_get oid attr)
                (Value.of_literal value)
          | And (a, b) -> eval_pred oid a && eval_pred oid b
          | Or (a, b) -> eval_pred oid a || eval_pred oid b
          | Not a -> not (eval_pred oid a)
          | True -> true
        in
        let rec go (e : View.expr) =
          match e with
          | Base n -> t.ops.s_extent n
          | Project (e, _) -> go e
          | Select (e, p) -> List.filter (fun oid -> eval_pred oid p) (go e)
          | Generalize (a, b) -> List.sort_uniq Oid.compare (go a @ go b)
          | Join _ -> assert false (* checked above *)
        in
        go expr

let svalue_to_value (v : Ast.svalue) : Value.t =
  match v with
  | SVLit l -> Value.of_literal (Elaborate.literal l)
  | SVNull -> Value.Null
  | SVRef n -> Value.Ref (Oid.of_int n)
  | SVDate y -> Value.Date y

(* ------------------------------------------------------------------ *)
(* Statement evaluation                                                *)
(* ------------------------------------------------------------------ *)

let check_bindable t ?position name =
  if List.mem_assoc name t.lets || Catalog.find_opt t.catalog name <> None then
    fail ?file:t.file ?position "TDP052" "view or binding %s is already defined"
      name

let define t ?position ~name sv =
  check_bindable t ?position name;
  let expr = resolve t ?position sv in
  ignore (typecheck t ?position ~name expr);
  match Catalog.define t.catalog ~name expr with
  | Ok (catalog, _entry) ->
      t.catalog <- catalog;
      let attrs = row_attrs (Schema.hierarchy (schema t)) expr in
      Defined { name; expr; attrs }
  | Error e ->
      (* inference admitted the pipeline, so what remains is a naming
         conflict with the concrete schema (e.g. a type of that name) *)
      fail ?file:t.file ?position "TDP052" "cannot define %s: %s" name
        (Error.message e)

let eval_desc t ?position (d : Ast.stmt_desc) : outcome =
  match d with
  | SDecl (IView { name; expr }) -> define t ?position ~name expr
  | SDecl _ ->
      fail ?file:t.file ?position "TDP056"
        "declarations are not executable in an interactive session; load \
         them with the schema"
  | SLet { var; expr } ->
      let e = resolve t ?position expr in
      ignore (typecheck t ?position ~name:var e);
      t.lets <- (var, e) :: List.remove_assoc var t.lets;
      Bound { var; expr = e }
  | SDefine { name; expr } -> define t ?position ~name expr
  | SDrop name -> (
      match Catalog.find_opt t.catalog name with
      | None ->
          fail ?file:t.file ?position "TDP051" "unknown relvar or type %s" name
      | Some _ -> (
          match Catalog.drop t.catalog ~name with
          | Ok catalog ->
              t.catalog <- catalog;
              Dropped name
          | Error e ->
              fail ?file:t.file ?position "TDP055" "cannot drop %s: %s" name
                (Error.message e)))
  | SCallOn { gf; expr } ->
      let e = resolve t ?position expr in
      ignore (typecheck t ?position ~name:"it" e);
      let oids = instances t ?position e in
      let results =
        List.map (fun oid -> (oid, t.ops.s_call gf [ Value.Ref oid ])) oids
      in
      Called { gf; results }
  | SNew { ty; inits } ->
      let tn = Type_name.of_string ty in
      if not (Hierarchy.mem (Schema.hierarchy (schema t)) tn) then
        fail ?file:t.file ?position "TDP051" "unknown relvar or type %s" ty;
      let init =
        List.map
          (fun (a, v) -> (Attr_name.of_string a, svalue_to_value v))
          inits
      in
      let oid = t.ops.s_new tn init in
      Created { oid; ty = tn }
  | SSet { oid; updates } ->
      let oid = Oid.of_int oid in
      let attrs =
        List.map
          (fun (a, v) ->
            let a = Attr_name.of_string a in
            t.ops.s_set oid a (svalue_to_value v);
            a)
          updates
      in
      Updated { oid; attrs }
  | SDelete { oid; policy } ->
      let oid = Oid.of_int oid in
      let policy =
        match policy with
        | `Restrict -> Database.Restrict
        | `Nullify -> Database.Nullify
      in
      t.ops.s_del oid policy;
      Deleted oid
  | SShow v -> Shown (resolve t ?position v)
  | SType v ->
      let e = resolve t ?position v in
      let pipeline = View.to_pipeline ~is_ref:(fun _ -> false) e in
      (match Infer.infer ~name:"it" pipeline with
      | Error err ->
          fail ?file:t.file ?position "TDP053" "%s" (Infer.error_message err)
      | Ok p -> Typed p)
  | SExtent v ->
      let e = resolve t ?position v in
      ignore (typecheck t ?position ~name:"it" e);
      let oids = instances t ?position e in
      let attrs = row_attrs (Schema.hierarchy (schema t)) e in
      let rows =
        List.map (fun oid -> (oid, List.map (t.ops.s_get oid) attrs)) oids
      in
      Extent { expr = e; attrs; rows }
  | SViews ->
      Views
        { defined =
            List.map
              (fun (e : Catalog.entry) -> (e.name, e.expr))
              (Catalog.entries t.catalog);
          bound = List.rev t.lets;
        }
  | SSchema ->
      let s = schema t in
      let h = Schema.hierarchy s in
      let surrogates =
        Hierarchy.fold
          (fun d n -> if Type_def.is_surrogate d then n + 1 else n)
          h 0
      in
      Schema_info
        { types = Hierarchy.cardinal h;
          surrogates;
          gfs = List.length (Schema.gfs s);
          methods = List.length (Schema.all_methods s);
          type_names =
            List.sort Type_name.compare (Hierarchy.type_names h);
        }
  | SQuit -> Bye

let eval t (s : Stmt.t) : outcome =
  refresh t;
  let position = (s.spos.line, s.spos.col) in
  match eval_desc t ~position s.sdesc with
  | outcome -> outcome
  | exception Fail d -> Diag d
  | exception Error.E e ->
      Diag
        (diag ?file:t.file ~position "TDP055" "%s" (Error.message e))
  | exception Database.Store_error m ->
      Diag (diag ?file:t.file ~position "TDP055" "%s" m)
  | exception Interp.Runtime_error m ->
      Diag (diag ?file:t.file ~position "TDP055" "%s" m)

(* Evaluate a whole source string; stops after [:quit]. *)
let eval_string t src : outcome list =
  match Stmt.parse src with
  | Error e -> [ Diag (parse_error ?file:t.file e) ]
  | Ok stmts ->
      let rec go = function
        | [] -> []
        | s :: rest -> (
            match eval t s with Bye -> [ Bye ] | o -> o :: go rest)
      in
      go stmts

(* Pre-define the views a schema file declares, in order — how the repl
   starts over a [.odb] file whose views should be queryable by name.
   @raise Error.E on a failing derivation. *)
(* A schema file's view list arrives with earlier views referenced by
   name ([Base EmpView]); catalog entries are stored fully resolved, so
   inline those references.  One level suffices: entries already in the
   catalog are themselves resolved. *)
let rec expand t (e : View.expr) : View.expr =
  match e with
  | Base n -> (
      match Catalog.find_opt t.catalog (Type_name.to_string n) with
      | Some (entry : Catalog.entry) -> entry.expr
      | None -> e)
  | Project (e, attrs) -> Project (expand t e, attrs)
  | Select (e, p) -> Select (expand t e, p)
  | Generalize (a, b) -> Generalize (expand t a, expand t b)
  | Join (a, b) -> Join (expand t a, expand t b)

let install_views t views =
  List.iter
    (fun (name, expr) ->
      let catalog, _ = Catalog.define_exn t.catalog ~name (expand t expr) in
      t.catalog <- catalog)
    views

(* ------------------------------------------------------------------ *)
(* One-shot helpers for the CLI frontends                              *)
(* ------------------------------------------------------------------ *)

let check_source ?file src : outcome =
  match Elaborate.load src with
  | Error e -> Diag (parse_error ?file e)
  | Ok r ->
      let issues =
        (match Hierarchy.validate (Schema.hierarchy r.schema) with
        | Ok () -> []
        | Error e -> [ Error.message e ])
        @ List.map
            (fun i -> Fmt.str "%a" Static_check.pp_issue i)
            (Static_check.duplicate_signatures r.schema)
      in
      Checked { file; schema = r.schema; views = r.views; issues }

let infer_source ?file src : outcome =
  match Elaborate.load src with
  | Error e -> Diag (parse_error ?file e)
  | Ok r ->
      let program =
        let seen = Hashtbl.create 16 in
        List.map
          (fun (name, expr) ->
            let is_ref n = Hashtbl.mem seen (Type_name.to_string n) in
            let node = View.to_pipeline ~is_ref expr in
            Hashtbl.replace seen name ();
            (name, node))
          r.views
      in
      let views =
        List.map
          (fun (name, res) ->
            match res with
            | Error e -> (name, Ill_typed_view (name, e))
            | Ok p -> (
                match Infer.admits r.schema p with
                | Ok () -> (name, Admitted p)
                | Error e -> (name, Not_instantiated (p, e))))
          (Infer.infer_program program)
      in
      Inferred { file; views }

let resolve_call ?file schema ~gf ~arg_types ~chain : outcome =
  try
  let h = Schema.hierarchy schema in
  List.iter
    (fun ty ->
      if not (Hierarchy.mem h ty) then
        fail ?file "TDP051" "unknown relvar or type %a" Type_name.pp ty)
    arg_types;
  let d = Dispatch.create schema in
  let call =
    Fmt.str "%s(%s)" gf
      (String.concat "," (List.map Type_name.to_string arg_types))
  in
  let resolution =
    match Dispatch.most_specific d ~gf ~arg_types with
    | exception Dispatch.Ambiguous { methods; _ } ->
        Ambiguous methods
    | None -> No_method
    | Some m ->
        Selected
          ( Method_def.key m,
            if chain then
              List.map
                (fun m ->
                  ( Method_def.key m,
                    Signature.param_types (Method_def.signature m) ))
                (Dispatch.applicable d ~gf ~arg_types)
            else [] )
  in
  Resolved { file; call; resolution; chain }
  with Fail d -> Diag d

(* ------------------------------------------------------------------ *)
(* Rendering: one canonical text form per outcome                      *)
(* ------------------------------------------------------------------ *)

let summary_line schema =
  let h = Schema.hierarchy schema in
  let surrogates =
    Hierarchy.fold (fun d n -> if Type_def.is_surrogate d then n + 1 else n) h 0
  in
  Fmt.str "types: %d (%d surrogates)  generic functions: %d  methods: %d"
    (Hierarchy.cardinal h) surrogates
    (List.length (Schema.gfs schema))
    (List.length (Schema.all_methods schema))

let render (o : outcome) : string =
  match o with
  | Bound { var; expr } -> Fmt.str "let %s = %s" var (view_str expr)
  | Defined { name; expr; _ } -> Fmt.str "view %s = %s" name (view_str expr)
  | Dropped name -> Fmt.str "dropped view %s" name
  | Shown expr -> view_str expr
  | Typed p -> Fmt.str "%a" Infer.pp_principal p
  | Extent { attrs; rows; _ } ->
      let row (oid, values) =
        Fmt.str "%s {%s}" (oid_str oid)
          (String.concat "; "
             (List.map2
                (fun a v -> Fmt.str "%a = %s" Attr_name.pp a (value_str v))
                attrs values))
      in
      String.concat "\n"
        (Fmt.str "extent: %d" (List.length rows) :: List.map row rows)
  | Called { gf; results } ->
      if results = [] then "no instances"
      else
        String.concat "\n"
          (List.map
             (fun (oid, v) ->
               Fmt.str "%s(%s) = %s" gf (oid_str oid) (value_str v))
             results)
  | Created { oid; ty } ->
      Fmt.str "created %s : %a" (oid_str oid) Type_name.pp ty
  | Updated { oid; attrs } ->
      Fmt.str "updated %s (%s)" (oid_str oid)
        (String.concat ", " (List.map Attr_name.to_string attrs))
  | Deleted oid -> Fmt.str "deleted %s" (oid_str oid)
  | Views { defined; bound } ->
      if defined = [] && bound = [] then "no views"
      else
        String.concat "\n"
          (List.map
             (fun (n, e) -> Fmt.str "view %s = %s" n (view_str e))
             defined
          @ List.map
              (fun (n, e) -> Fmt.str "let %s = %s" n (view_str e))
              bound)
  | Schema_info { types; surrogates; gfs; methods; type_names } ->
      Fmt.str
        "types: %d (%d surrogates)  generic functions: %d  methods: %d\n%s"
        types surrogates gfs methods
        (String.concat ", " (List.map Type_name.to_string type_names))
  | Checked { schema; views; issues; file } -> (
      match issues with
      | [] ->
          String.concat "\n"
            (summary_line schema
             :: List.map
                  (fun (name, expr) ->
                    Fmt.str "view %s = %s" name (view_str expr))
                  views
            @ [ "ok." ])
      | issues ->
          String.concat "\n"
            (List.map
               (fun i ->
                 Fmt.str "error: %s%s" i
                   (match file with None -> "" | Some f -> Fmt.str " (%s)" f))
               issues))
  | Inferred { views; _ } ->
      if views = [] then "no views declared."
      else
        String.concat "\n"
          (List.map
             (fun (_name, res) ->
               match res with
               | Admitted p ->
                   Fmt.str "%a\n  instantiated by this schema"
                     Infer.pp_principal p
               | Not_instantiated (p, e) ->
                   Fmt.str "%a\n  not instantiated: %s" Infer.pp_principal p
                     (Infer.error_message e)
               | Ill_typed_view (n, e) ->
                   Fmt.str "view %s : ill-typed\n  %s" n
                     (Infer.error_message e))
             views)
  | Resolved { call; resolution; _ } -> (
      match resolution with
      | Selected (k, chain) ->
          String.concat "\n"
            (Fmt.str "%s -> %s" call (key_str k)
            :: List.mapi
                 (fun i (k, params) ->
                   Fmt.str "  %d. %s(%s)" (i + 1) (key_str k)
                     (String.concat ","
                        (List.map Type_name.to_string params)))
                 chain)
      | Ambiguous keys ->
          Fmt.str "error: call to %s is ambiguous between %s" call
            (String.concat " and " (List.map key_str keys))
      | No_method -> Fmt.str "error: no applicable method for %s" call)
  | Diag d -> Fmt.str "%a" Diagnostic.pp d
  | Bye -> "bye"

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let set_json s =
  J.List
    (List.map (fun a -> J.String (Attr_name.to_string a)) (Attr_name.Set.elements s))

let principal_json (p : Infer.principal) =
  let mode, s =
    match p.result with
    | Infer.Exactly s -> ("exactly", s)
    | Infer.At_least s -> ("at_least", s)
  in
  [ ("result", J.Obj [ ("mode", J.String mode); ("attrs", set_json s) ]);
    ("sources",
     J.Obj
       (List.map (fun (t, req) -> (Type_name.to_string t, set_json req)) p.sources));
    ("kinds",
     J.Obj
       (List.map
          (fun (a, k) ->
            (Attr_name.to_string a, J.String (Tdp_infer.Kind.to_string k)))
          p.kinds));
    ("applies", J.List (List.map (fun g -> J.String g) p.gfs));
    ("residuals",
     J.List (List.map (fun a -> J.String (Attr_name.to_string a)) p.residuals))
  ]

let diag_json d =
  match J.parse (Diagnostic.to_json d) with
  | Ok j -> j
  | Error _ -> J.String (Diagnostic.to_json d)

let attrs_json attrs =
  J.List (List.map (fun a -> J.String (Attr_name.to_string a)) attrs)

let file_field = function
  | None -> []
  | Some f -> [ ("file", J.String f) ]

let to_json (o : outcome) : J.t =
  match o with
  | Bound { var; expr } ->
      J.Obj [ ("let", J.String var); ("expr", J.String (view_str expr)) ]
  | Defined { name; expr; attrs } ->
      J.Obj
        [ ("view", J.String name);
          ("expr", J.String (view_str expr));
          ("attrs", attrs_json attrs)
        ]
  | Dropped name -> J.Obj [ ("dropped", J.String name) ]
  | Shown expr -> J.Obj [ ("expr", J.String (view_str expr)) ]
  | Typed p -> J.Obj (("principal", J.String (Fmt.str "%a" Infer.pp_principal p)) :: principal_json p)
  | Extent { attrs; rows; _ } ->
      J.Obj
        [ ("count", J.Int (List.length rows));
          ("attrs", attrs_json attrs);
          ("rows",
           J.List
             (List.map
                (fun (oid, values) ->
                  J.Obj
                    (("oid", J.Int (Oid.to_int oid))
                    :: List.map2
                         (fun a v ->
                           (Attr_name.to_string a, J.String (value_str v)))
                         attrs values))
                rows))
        ]
  | Called { gf; results } ->
      J.Obj
        [ ("call", J.String gf);
          ("results",
           J.List
             (List.map
                (fun (oid, v) ->
                  J.Obj
                    [ ("oid", J.Int (Oid.to_int oid));
                      ("value", J.String (value_str v))
                    ])
                results))
        ]
  | Created { oid; ty } ->
      J.Obj
        [ ("created", J.Int (Oid.to_int oid));
          ("type", J.String (Type_name.to_string ty))
        ]
  | Updated { oid; attrs } ->
      J.Obj [ ("updated", J.Int (Oid.to_int oid)); ("attrs", attrs_json attrs) ]
  | Deleted oid -> J.Obj [ ("deleted", J.Int (Oid.to_int oid)) ]
  | Views { defined; bound } ->
      let entry (n, e) =
        J.Obj [ ("name", J.String n); ("expr", J.String (view_str e)) ]
      in
      J.Obj
        [ ("views", J.List (List.map entry defined));
          ("lets", J.List (List.map entry bound))
        ]
  | Schema_info { types; surrogates; gfs; methods; type_names } ->
      J.Obj
        [ ("types", J.Int types);
          ("surrogates", J.Int surrogates);
          ("generic_functions", J.Int gfs);
          ("methods", J.Int methods);
          ("type_names",
           J.List
             (List.map (fun n -> J.String (Type_name.to_string n)) type_names))
        ]
  | Checked { file; schema; views; issues } ->
      let h = Schema.hierarchy schema in
      let surrogates =
        Hierarchy.fold
          (fun d n -> if Type_def.is_surrogate d then n + 1 else n)
          h 0
      in
      J.Obj
        (file_field file
        @ [ ("types", J.Int (Hierarchy.cardinal h));
            ("surrogates", J.Int surrogates);
            ("generic_functions", J.Int (List.length (Schema.gfs schema)));
            ("methods", J.Int (List.length (Schema.all_methods schema)));
            ("views",
             J.List
               (List.map
                  (fun (name, expr) ->
                    J.Obj
                      [ ("name", J.String name);
                        ("expr", J.String (view_str expr))
                      ])
                  views));
            ("issues", J.List (List.map (fun i -> J.String i) issues))
          ])
  | Inferred { file; views } ->
      let view_json (name, res) =
        J.Obj
          (("name", J.String name)
          ::
          (match res with
          | Admitted p -> ("status", J.String "ok") :: principal_json p
          | Not_instantiated (p, e) ->
              ("status", J.String "not_instantiated")
              :: ("error", J.String (Infer.error_message e))
              :: principal_json p
          | Ill_typed_view (_, e) ->
              [ ("status", J.String "ill_typed");
                ("error", J.String (Infer.error_message e))
              ]))
      in
      J.Obj
        (file_field file @ [ ("views", J.List (List.map view_json views)) ])
  | Resolved { file; call; resolution; chain } ->
      J.Obj
        (file_field file
        @ [ ("call", J.String call) ]
        @ (match resolution with
          | Selected (k, chain_methods) ->
              ("selected", J.String (key_str k))
              ::
              (if chain then
                 [ ("chain",
                    J.List
                      (List.map
                         (fun (k, params) ->
                           J.Obj
                             [ ("method", J.String (key_str k));
                               ("params",
                                J.List
                                  (List.map
                                     (fun t ->
                                       J.String (Type_name.to_string t))
                                     params))
                             ])
                         chain_methods))
                 ]
               else [])
          | Ambiguous keys ->
              [ ("ambiguous",
                 J.List (List.map (fun k -> J.String (key_str k)) keys))
              ]
          | No_method -> [ ("selected", J.Null) ]))
  | Diag d -> J.Obj [ ("diagnostic", diag_json d) ]
  | Bye -> J.Obj [ ("bye", J.Bool true) ]
