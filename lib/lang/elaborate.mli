(** Elaboration of surface programs into schemas and view expressions.

    Two passes — types first, then methods — so declaration order never
    matters.  Calls to names that are not declared generic functions
    elaborate to builtin operations.  The result is validated
    ({!Tdp_core.Schema.validate_exn}) and fully type-checked
    ({!Tdp_core.Typing.check_all_methods}). *)

open Tdp_core

type result_ = {
  schema : Schema.t;
  views : (string * Tdp_algebra.View.expr) list;  (** declaration order *)
  view_positions : (string * (int * int)) list;
      (** view name -> (line, col) of its declaration, for diagnostics *)
}

(** @raise Error.E on any validation failure. *)
val elaborate_exn : Ast.program -> result_

val elaborate : Ast.program -> (result_, Error.t) result

val program : Ast.program -> (result_, Error.t) result
  [@@ocaml.deprecated "use Elaborate.elaborate"]
(** Deprecated alias of {!elaborate}, kept for callers that predate the
    statement grammar. *)

(** Parse and elaborate a source string.  Since the statement grammar
    subsumes the schema grammar, this parses the source as a statement
    sequence and requires every statement to be a declaration;
    elaboration failures carry the source position of the offending
    declaration ({!Error.At}). *)
val load_exn : string -> result_

val load : string -> (result_, Error.t) result

(** Like {!load}, but skips schema validation and method-body type
    checking: the result may be structurally or type-wise ill-formed.
    Used by the [Tdp_analysis] linter, which reports those violations as
    diagnostics instead of stopping at the first raised error. *)
val load_unchecked : string -> (result_, Error.t) result

(** Derive every declared view in order; each view's derived type is
    named after the view.  Returns the final schema and the view-name /
    type-name pairs. *)
val apply_views_exn : ?check:bool -> result_ -> Schema.t * (string * Type_name.t) list

val apply_views :
  ?check:bool -> result_ -> (Schema.t * (string * Type_name.t) list, Error.t) result

(** Elaborate a single surface view expression (resolution of names
    against a catalog or hierarchy is the caller's business — see
    {!Session}). *)
val view_expr : Ast.sview -> Tdp_algebra.View.expr

val pred : Ast.spred -> Tdp_algebra.Pred.t
val literal : Ast.slit -> Tdp_core.Body.literal
