(** Elaboration of surface programs into schemas and view expressions.

    Two passes — types first, then methods — so declaration order never
    matters.  Calls to names that are not declared generic functions
    elaborate to builtin operations.  The result is validated
    ({!Tdp_core.Schema.validate_exn}) and fully type-checked
    ({!Tdp_core.Typing.check_all_methods}). *)

open Tdp_core

type result_ = {
  schema : Schema.t;
  views : (string * Tdp_algebra.View.expr) list;  (** declaration order *)
  view_positions : (string * (int * int)) list;
      (** view name -> (line, col) of its declaration, for diagnostics *)
}

(** @raise Error.E on any validation failure. *)
val elaborate_exn : Ast.program -> result_

val elaborate : Ast.program -> (result_, Error.t) result

(** Parse and elaborate a source string.  Elaboration failures carry the
    source position of the offending declaration ({!Error.At}). *)
val load_exn : string -> result_

val load : string -> (result_, Error.t) result

(** Like {!load}, but skips schema validation and method-body type
    checking: the result may be structurally or type-wise ill-formed.
    Used by the [Tdp_analysis] linter, which reports those violations as
    diagnostics instead of stopping at the first raised error. *)
val load_unchecked : string -> (result_, Error.t) result

(** Derive every declared view in order; each view's derived type is
    named after the view.  Returns the final schema and the view-name /
    type-name pairs. *)
val apply_views_exn : ?check:bool -> result_ -> Schema.t * (string * Type_name.t) list

val apply_views :
  ?check:bool -> result_ -> (Schema.t * (string * Type_name.t) list, Error.t) result
