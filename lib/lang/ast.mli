(** Surface syntax, before name resolution.

    Everything here is produced by {!Parser} and consumed by
    {!Elaborate}; names are plain strings until elaboration resolves
    them against the declared types and generic functions. *)

type sexpr =
  | EInt of int
  | EFloat of float
  | EString of string
  | EBool of bool
  | ENull
  | EVar of string
  | EApp of string * sexpr list
  | EBin of string * sexpr * sexpr
  | ENot of sexpr

type sstmt =
  | SLocal of { var : string; ty : string; init : sexpr option }
  | SAssign of string * sexpr
  | SExpr of sexpr
  | SReturn of sexpr option
  | SIf of sexpr * sstmt list * sstmt list
  | SWhile of sexpr * sstmt list

type slit = LInt of int | LFloat of float | LString of string | LBool of bool

type spred =
  | PCmp of string * string * slit  (** attr, op, literal *)
  | PAnd of spred * spred
  | POr of spred * spred
  | PNot of spred

type sview =
  | VBase of string
  | VProject of sview * string list
  | VSelect of sview * spred
  | VGeneralize of sview * sview
  | VJoin of sview * sview

(** Position (1-based line/column) of a declaration's first token;
    threaded from the lexer so elaboration failures can be attributed
    to their declaration ({!Tdp_core.Error.At}). *)
type pos = { line : int; col : int }

type item_desc =
  | IType of {
      name : string;
      supers : (string * int) list;
      attrs : (string * string) list;
    }
  | IAccessor of {
      kind : [ `Reader | `Writer ];
      gf : string;
      id : string;
      param : string;
      on : string;
      attr : string;
    }
  | IMethod of {
      gf : string;
      id : string;
      params : (string * string) list;
      result : string option;
      body : sstmt list;
    }
  | IView of { name : string; expr : sview }

type item = { pos : pos; desc : item_desc }
type program = item list

(** Interactive statements (the [odb repl] / {!Session} surface).  A
    schema file is the special case where every statement is an
    {!SDecl}. *)

(** An attribute value in [new]/[set] field lists: a literal, [null],
    an object reference [#N], or a date literal [year(N)] (the same
    form extents print). *)
type svalue = SVLit of slit | SVNull | SVRef of int | SVDate of int

type stmt_desc =
  | SDecl of item_desc  (** a schema declaration used as a statement *)
  | SLet of { var : string; expr : sview }
      (** [let v = <view-expr>;] — session-local binding *)
  | SDefine of { name : string; expr : sview }
      (** [define view N = <view-expr>;] — catalog definition *)
  | SDrop of string  (** [drop view N;] *)
  | SCallOn of { gf : string; expr : sview }
      (** [call gf on <view-expr>;] — apply a generic function to every
          instance of the view *)
  | SNew of { ty : string; inits : (string * svalue) list }
      (** [new T { attr = value; ... }] *)
  | SSet of { oid : int; updates : (string * svalue) list }
      (** [set #n { attr = value; ... }] *)
  | SDelete of { oid : int; policy : [ `Restrict | `Nullify ] }
      (** [del #n;] / [del #n nullify;] *)
  | SShow of sview  (** [:show <view-expr>] — print the resolved algebra *)
  | SType of sview  (** [:type <view-expr>] — print the principal schema *)
  | SExtent of sview
      (** [:extent <view-expr>], also a bare [<view-expr>;] statement *)
  | SViews  (** [:views] *)
  | SSchema  (** [:schema] *)
  | SQuit  (** [:quit] *)

type stmt = { spos : pos; sdesc : stmt_desc }
