(* The line-oriented driver shared by [odb repl] (interactive and
   --script) and the in-process differential tests.  Lines accumulate
   until they parse as complete statements ([Stmt.parse_partial]); a
   hard parse error renders as a TDP050 diagnostic and clears the
   buffer — the repl recovers and keeps reading. *)

let prompt_main = "odb> "
let prompt_cont = "...> "

let run ?(echo = false) ?(interactive = false) session ic oc =
  let buf = Buffer.create 256 in
  let out s =
    output_string oc s;
    output_string oc "\n"
  in
  let quit = ref false in
  let emit o =
    if not !quit then begin
      out (Session.render o);
      match o with Session.Bye -> quit := true | _ -> ()
    end
  in
  (try
     while not !quit do
       let p = if Buffer.length buf = 0 then prompt_main else prompt_cont in
       if interactive && not echo then begin
         output_string oc p;
         flush oc
       end;
       let line = input_line ic in
       if echo then out (p ^ line);
       Buffer.add_string buf line;
       Buffer.add_char buf '\n';
       match Stmt.parse_partial (Buffer.contents buf) with
       | `Incomplete -> () (* keep buffering; the prompt shows it *)
       | `Fail e ->
           Buffer.clear buf;
           out (Session.render (Session.Diag (Session.parse_error e)))
       | `Stmts stmts ->
           Buffer.clear buf;
           List.iter (fun s -> if not !quit then emit (Session.eval session s)) stmts;
           if interactive then flush oc
     done
   with End_of_file ->
     (* input ended mid-statement: report what the buffer holds *)
     if Buffer.length buf > 0 then begin
       match Stmt.parse (Buffer.contents buf) with
       | Ok stmts ->
           List.iter (fun s -> if not !quit then emit (Session.eval session s)) stmts
       | Error e -> out (Session.render (Session.Diag (Session.parse_error e)))
     end);
  flush oc
