open Tdp_core

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COLON
  | SEMI
  | COMMA
  | HASH
  | ARROW  (** [->] *)
  | ASSIGN  (** [:=] *)
  | EQUALS  (** [=] *)
  | EQEQ
  | NE
  | LE
  | GE
  | LT
  | GT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

type spanned = { token : token; line : int; col : int }

let keywords =
  [ "type"; "method"; "reader"; "writer"; "view"; "project"; "select"; "on";
    "where"; "generalize"; "join"; "with"; "var"; "return"; "if"; "else"; "while";
    "and"; "or"; "not"; "true"; "false"; "null"
  ]

let token_to_string = function
  | IDENT s -> Fmt.str "identifier %S" s
  | INT i -> Fmt.str "integer %d" i
  | FLOAT f -> Fmt.str "float %g" f
  | STRING s -> Fmt.str "string %S" s
  | KW k -> Fmt.str "keyword %S" k
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COLON -> "':'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | HASH -> "'#'"
  | ARROW -> "'->'"
  | ASSIGN -> "':='"
  | EQUALS -> "'='"
  | EQEQ -> "'=='"
  | NE -> "'!='"
  | LE -> "'<='"
  | GE -> "'>='"
  | LT -> "'<'"
  | GT -> "'>'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | EOF -> "end of input"

let error line col fmt =
  Fmt.kstr (fun message -> Error.raise_ (Parse_error { line; col; message })) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Tokenize a full input string.  Comments run from "//" to newline. *)
let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let emit token l c = tokens := { token; line = l; col = c } :: !tokens in
  let advance () =
    (if !i < n then
       match src.[!i] with
       | '\n' ->
           incr line;
           col := 1
       | _ -> incr col);
    incr i
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    let l = !line and cl = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        advance ()
      done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then emit (KW word) l cl else emit (IDENT word) l cl
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      if !i < n && src.[!i] = '.' && (match peek 1 with Some d -> is_digit d | None -> false)
      then begin
        advance ();
        while !i < n && is_digit src.[!i] do
          advance ()
        done;
        let text = String.sub src start (!i - start) in
        match float_of_string_opt text with
        | Some f -> emit (FLOAT f) l cl
        | None -> error l cl "unreadable float literal %s" text
      end
      else
        let text = String.sub src start (!i - start) in
        match int_of_string_opt text with
        | Some v -> emit (INT v) l cl
        | None -> error l cl "integer literal out of range: %s" text
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        (match src.[!i] with
        | '"' -> closed := true
        | '\\' when peek 1 = Some '"' ->
            Buffer.add_char buf '"';
            advance ()
        | ch -> Buffer.add_char buf ch);
        advance ()
      done;
      if not !closed then error l cl "unterminated string";
      emit (STRING (Buffer.contents buf)) l cl
    end
    else begin
      let two t =
        advance ();
        advance ();
        emit t l cl
      in
      let one t =
        advance ();
        emit t l cl
      in
      match (c, peek 1) with
      | '-', Some '>' -> two ARROW
      | ':', Some '=' -> two ASSIGN
      | '=', Some '=' -> two EQEQ
      | '!', Some '=' -> two NE
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ':', _ -> one COLON
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | '#', _ -> one HASH
      | '=', _ -> one EQUALS
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | c, _ -> error l cl "unexpected character %C" c
    end
  done;
  emit EOF !line !col;
  List.rev !tokens
