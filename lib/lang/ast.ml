(* Surface syntax, before name resolution. *)

type sexpr =
  | EInt of int
  | EFloat of float
  | EString of string
  | EBool of bool
  | ENull
  | EVar of string
  | EApp of string * sexpr list
  | EBin of string * sexpr * sexpr
  | ENot of sexpr

type sstmt =
  | SLocal of { var : string; ty : string; init : sexpr option }
  | SAssign of string * sexpr
  | SExpr of sexpr
  | SReturn of sexpr option
  | SIf of sexpr * sstmt list * sstmt list
  | SWhile of sexpr * sstmt list

type slit = LInt of int | LFloat of float | LString of string | LBool of bool

type spred =
  | PCmp of string * string * slit  (* attr, op, literal *)
  | PAnd of spred * spred
  | POr of spred * spred
  | PNot of spred

type sview =
  | VBase of string
  | VProject of sview * string list
  | VSelect of sview * spred
  | VGeneralize of sview * sview
  | VJoin of sview * sview

(* Position (1-based line/column) of a declaration's first token; threaded
   from the lexer so elaboration failures can be attributed to their
   declaration (Tdp_core.Error.At). *)
type pos = { line : int; col : int }

type item_desc =
  | IType of {
      name : string;
      supers : (string * int) list;
      attrs : (string * string) list;
    }
  | IAccessor of {
      kind : [ `Reader | `Writer ];
      gf : string;
      id : string;
      param : string;
      on : string;
      attr : string;
    }
  | IMethod of {
      gf : string;
      id : string;
      params : (string * string) list;
      result : string option;
      body : sstmt list;
    }
  | IView of { name : string; expr : sview }

type item = { pos : pos; desc : item_desc }
type program = item list

(* Interactive statements (the `odb repl` / Session surface).  A schema
   file is the special case where every statement is an SDecl. *)

type svalue = SVLit of slit | SVNull | SVRef of int | SVDate of int

type stmt_desc =
  | SDecl of item_desc
  | SLet of { var : string; expr : sview }
  | SDefine of { name : string; expr : sview }
  | SDrop of string
  | SCallOn of { gf : string; expr : sview }
  | SNew of { ty : string; inits : (string * svalue) list }
  | SSet of { oid : int; updates : (string * svalue) list }
  | SDelete of { oid : int; policy : [ `Restrict | `Nullify ] }
  | SShow of sview
  | SType of sview
  | SExtent of sview
  | SViews
  | SSchema
  | SQuit

type stmt = { spos : pos; sdesc : stmt_desc }
