open Tdp_core
module View = Tdp_algebra.View
module Pred = Tdp_algebra.Pred

(* Pretty-print a schema back to the surface syntax, such that
   [Elaborate.load_exn (print schema views)] reproduces it (tested as a
   round-trip property). *)

let pp_float ppf f =
  let s = Fmt.str "%.12g" f in
  if String.contains s '.' || String.contains s 'e' then Fmt.string ppf s
  else Fmt.pf ppf "%s.0" s

let pp_literal ppf (l : Body.literal) =
  match l with
  | Int i -> Fmt.int ppf i
  | Float f -> pp_float ppf f
  | String s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Null -> Fmt.string ppf "null"

let surface_op = function "=" -> "==" | op -> op

let binary_ops =
  [ "+"; "-"; "*"; "/"; "<"; ">"; "<="; ">="; "="; "!="; "and"; "or" ]

let rec pp_expr ppf (e : Body.expr) =
  match e with
  | Var x -> Fmt.string ppf x
  | Lit l -> pp_literal ppf l
  | Call { gf; args } -> Fmt.pf ppf "%s(%a)" gf Fmt.(list ~sep:comma pp_expr) args
  | Builtin { op = "not"; args = [ a ] } -> Fmt.pf ppf "(not %a)" pp_expr a
  | Builtin { op; args = [ a; b ] } when List.mem op binary_ops ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (surface_op op) pp_expr b
  | Builtin { op; args } ->
      Fmt.pf ppf "%s(%a)" op Fmt.(list ~sep:comma pp_expr) args

let rec pp_stmt ppf (s : Body.stmt) =
  match s with
  | Local { var; ty; init = None } -> Fmt.pf ppf "var %s : %a;" var Value_type.pp ty
  | Local { var; ty; init = Some e } ->
      Fmt.pf ppf "var %s : %a := %a;" var Value_type.pp ty pp_expr e
  | Assign (x, e) -> Fmt.pf ppf "%s := %a;" x pp_expr e
  | Expr e -> Fmt.pf ppf "%a;" pp_expr e
  | Return None -> Fmt.string ppf "return;"
  | Return (Some e) -> Fmt.pf ppf "return %a;" pp_expr e
  | If (c, t, []) -> Fmt.pf ppf "@[<v 2>if %a {@ %a@]@ }" pp_expr c pp_stmts t
  | If (c, t, e) ->
      Fmt.pf ppf "@[<v 2>if %a {@ %a@]@ @[<v 2>} else {@ %a@]@ }" pp_expr c
        pp_stmts t pp_stmts e
  | While (c, b) -> Fmt.pf ppf "@[<v 2>while %a {@ %a@]@ }" pp_expr c pp_stmts b

and pp_stmts ppf stmts = Fmt.(list ~sep:(any "@ ") pp_stmt) ppf stmts

let pp_type ppf def =
  let pp_super ppf (s, p) = Fmt.pf ppf "%a(%d)" Type_name.pp s p in
  let pp_attr ppf a =
    Fmt.pf ppf "%a : %a;" Attr_name.pp (Attribute.name a) Value_type.pp
      (Attribute.ty a)
  in
  match (Type_def.supers def, Type_def.attrs def) with
  | [], [] -> Fmt.pf ppf "type %a {}" Type_name.pp (Type_def.name def)
  | supers, attrs ->
      Fmt.pf ppf "@[<v 2>type %a%a {@ %a@]@ }" Type_name.pp (Type_def.name def)
        (fun ppf -> function
          | [] -> ()
          | ss -> Fmt.pf ppf " : %a" Fmt.(list ~sep:comma pp_super) ss)
        supers
        Fmt.(list ~sep:(any "@ ") pp_attr)
        attrs

let pp_method ppf m =
  let gf = Method_def.gf m and id = Method_def.id m in
  let tag = if String.equal gf id then gf else Fmt.str "%s#%s" gf id in
  let s = Method_def.signature m in
  match Method_def.kind m with
  | Reader attr ->
      let param, on = List.hd (Signature.params s) in
      Fmt.pf ppf "reader %s(%s : %a) -> %a;" tag param Type_name.pp on Attr_name.pp
        attr
  | Writer attr ->
      let param, on = List.hd (Signature.params s) in
      Fmt.pf ppf "writer %s(%s : %a) -> %a;" tag param Type_name.pp on Attr_name.pp
        attr
  | General body ->
      let pp_param ppf (x, t) = Fmt.pf ppf "%s : %a" x Type_name.pp t in
      Fmt.pf ppf "@[<v 2>method %s(%a)%a {@ %a@]@ }" tag
        Fmt.(list ~sep:comma pp_param)
        (Signature.params s)
        (fun ppf -> function
          | None -> ()
          | Some r -> Fmt.pf ppf " : %a" Value_type.pp r)
        (Signature.result s) pp_stmts body

let rec pp_pred ppf (p : Pred.t) =
  match p with
  | Cmp { attr; op; value } ->
      Fmt.pf ppf "%a %s %a" Attr_name.pp attr (Pred.op_to_string op) pp_literal
        value
  | And (a, b) -> Fmt.pf ppf "(%a and %a)" pp_pred a pp_pred b
  | Or (a, b) -> Fmt.pf ppf "(%a or %a)" pp_pred a pp_pred b
  | Not a -> Fmt.pf ppf "(not %a)" pp_pred a
  | True -> Fmt.string ppf "0 == 0"

let rec pp_view_expr ppf (v : View.expr) =
  match v with
  | Base n -> Type_name.pp ppf n
  | Project (e, attrs) ->
      Fmt.pf ppf "project %a on [%a]" pp_view_expr e
        Fmt.(list ~sep:comma Attr_name.pp)
        attrs
  | Select (e, p) -> Fmt.pf ppf "select %a where %a" pp_view_expr e pp_pred p
  | Generalize (a, b) ->
      Fmt.pf ppf "generalize %a with %a" pp_view_expr a pp_view_expr b
  | Join (a, b) -> Fmt.pf ppf "join %a with %a" pp_view_expr a pp_view_expr b

let pp_view ppf (name, expr) = Fmt.pf ppf "view %s = %a;" name pp_view_expr expr

(* Types are emitted in dependency (topological) order for
   readability; the elaborator does not require it. *)
let print ?(views = []) schema =
  let h = Schema.hierarchy schema in
  let emitted = ref Type_name.Set.empty in
  let out = Buffer.create 1024 in
  let rec emit_type n =
    if not (Type_name.Set.mem n !emitted) then begin
      emitted := Type_name.Set.add n !emitted;
      List.iter emit_type (Hierarchy.direct_super_names h n);
      Buffer.add_string out (Fmt.str "%a@." pp_type (Hierarchy.find h n))
    end
  in
  List.iter emit_type (Hierarchy.type_names h);
  List.iter
    (fun m -> Buffer.add_string out (Fmt.str "%a@." pp_method m))
    (Schema.all_methods schema);
  List.iter (fun v -> Buffer.add_string out (Fmt.str "%a@." pp_view v)) views;
  Buffer.contents out
