(** Statements of the interactive data language.

    One statement is one unit of repl input: a schema declaration, a
    binding ([let] / [define view] / [drop view]), a data operation
    ([new] / [set] / [del] / [call … on]), a bare view expression
    (shorthand for [:extent]), or a [:]-command.  The grammar is a
    strict superset of the schema-file grammar — see docs/language.md.

    This module is the surface layer: parsing and printing.  Evaluation
    lives in {!Session}. *)

type t = Ast.stmt

(** @raise Tdp_core.Error.E [Parse_error] with position information. *)
val parse_string : string -> t list

val parse : string -> (t list, Tdp_core.Error.t) result

val parse_partial :
  string -> [ `Stmts of t list | `Incomplete | `Fail of Tdp_core.Error.t ]
(** Like {!parse}, but a parse error positioned at end-of-input reports
    [`Incomplete]: more input may complete the statement.  Drives the
    repl's multi-line continuation. *)

(** Structural equality, ignoring source positions. *)
val equal : t -> t -> bool

(** Print back to the surface syntax: [parse_string (to_string s)]
    reproduces [s] up to positions (a tested round-trip property). *)
val pp : t Fmt.t

val to_string : t -> string

(** The surface view-expression printer, shared with {!pp}. *)
val pp_view : Ast.sview Fmt.t
