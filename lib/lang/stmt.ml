open Ast

type t = Ast.stmt

let parse_string = Parser.parse_stmts_string
let parse = Parser.parse_stmts
let parse_partial = Parser.parse_stmts_partial

(* Positions do not participate in equality: the print∘parse round
   trip reparses printed statements at fresh positions. *)
let equal (a : t) (b : t) = a.sdesc = b.sdesc

(* ------------------------------------------------------------------ *)
(* Surface printer.  [parse_string (to_string s)] reproduces [s] up to
   positions (tested as a QCheck property); the declaration cases
   mirror {!Printer}, which prints the {e elaborated} forms.           *)
(* ------------------------------------------------------------------ *)

let pp_float ppf f =
  let s = Fmt.str "%.12g" f in
  if String.contains s '.' || String.contains s 'e' then Fmt.string ppf s
  else Fmt.pf ppf "%s.0" s

let pp_slit ppf = function
  | LInt i -> Fmt.int ppf i
  | LFloat f -> pp_float ppf f
  | LString s -> Fmt.pf ppf "%S" s
  | LBool b -> Fmt.bool ppf b

let rec pp_spred ppf = function
  | PCmp (attr, op, lit) -> Fmt.pf ppf "%s %s %a" attr op pp_slit lit
  | PAnd (a, b) -> Fmt.pf ppf "(%a and %a)" pp_spred a pp_spred b
  | POr (a, b) -> Fmt.pf ppf "(%a or %a)" pp_spred a pp_spred b
  | PNot a -> Fmt.pf ppf "(not %a)" pp_spred a

let rec pp_view ppf = function
  | VBase n -> Fmt.string ppf n
  | VProject (e, attrs) ->
      Fmt.pf ppf "project %a on [%a]" pp_view e
        Fmt.(list ~sep:comma string)
        attrs
  | VSelect (e, p) -> Fmt.pf ppf "select %a where %a" pp_view e pp_spred p
  | VGeneralize (a, b) -> Fmt.pf ppf "generalize %a with %a" pp_view a pp_view b
  | VJoin (a, b) -> Fmt.pf ppf "join %a with %a" pp_view a pp_view b

let pp_svalue ppf = function
  | SVLit l -> pp_slit ppf l
  | SVNull -> Fmt.string ppf "null"
  | SVRef n -> Fmt.pf ppf "#%d" n
  | SVDate y -> Fmt.pf ppf "year(%d)" y

let surface_op = function "=" -> "==" | op -> op

let rec pp_sexpr ppf = function
  | EInt i -> Fmt.int ppf i
  | EFloat f -> pp_float ppf f
  | EString s -> Fmt.pf ppf "%S" s
  | EBool b -> Fmt.bool ppf b
  | ENull -> Fmt.string ppf "null"
  | EVar x -> Fmt.string ppf x
  | EApp (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_sexpr) args
  | EBin (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_sexpr a (surface_op op) pp_sexpr b
  | ENot a -> Fmt.pf ppf "(not %a)" pp_sexpr a

let rec pp_sstmt ppf = function
  | SLocal { var; ty; init = None } -> Fmt.pf ppf "var %s : %s;" var ty
  | SLocal { var; ty; init = Some e } ->
      Fmt.pf ppf "var %s : %s := %a;" var ty pp_sexpr e
  | SAssign (x, e) -> Fmt.pf ppf "%s := %a;" x pp_sexpr e
  | SExpr e -> Fmt.pf ppf "%a;" pp_sexpr e
  | SReturn None -> Fmt.string ppf "return;"
  | SReturn (Some e) -> Fmt.pf ppf "return %a;" pp_sexpr e
  | SIf (c, t, []) -> Fmt.pf ppf "@[<v 2>if %a {@ %a@]@ }" pp_sexpr c pp_body t
  | SIf (c, t, e) ->
      Fmt.pf ppf "@[<v 2>if %a {@ %a@]@ @[<v 2>} else {@ %a@]@ }" pp_sexpr c
        pp_body t pp_body e
  | SWhile (c, b) -> Fmt.pf ppf "@[<v 2>while %a {@ %a@]@ }" pp_sexpr c pp_body b

and pp_body ppf stmts = Fmt.(list ~sep:(any "@ ") pp_sstmt) ppf stmts

let pp_item ppf = function
  | IType { name; supers; attrs } -> (
      let pp_super ppf (s, p) = Fmt.pf ppf "%s(%d)" s p in
      let pp_attr ppf (a, ty) = Fmt.pf ppf "%s : %s;" a ty in
      match (supers, attrs) with
      | [], [] -> Fmt.pf ppf "type %s {}" name
      | supers, attrs ->
          Fmt.pf ppf "@[<v 2>type %s%a {@ %a@]@ }" name
            (fun ppf -> function
              | [] -> ()
              | ss -> Fmt.pf ppf " : %a" Fmt.(list ~sep:comma pp_super) ss)
            supers
            Fmt.(list ~sep:(any "@ ") pp_attr)
            attrs)
  | IAccessor { kind; gf; id; param; on; attr } ->
      let tag = if String.equal gf id then gf else Fmt.str "%s#%s" gf id in
      Fmt.pf ppf "%s %s(%s : %s) -> %s;"
        (match kind with `Reader -> "reader" | `Writer -> "writer")
        tag param on attr
  | IMethod { gf; id; params; result; body } ->
      let tag = if String.equal gf id then gf else Fmt.str "%s#%s" gf id in
      let pp_param ppf (x, ty) = Fmt.pf ppf "%s : %s" x ty in
      Fmt.pf ppf "@[<v 2>method %s(%a)%a {@ %a@]@ }" tag
        Fmt.(list ~sep:comma pp_param)
        params
        (fun ppf -> function None -> () | Some r -> Fmt.pf ppf " : %s" r)
        result pp_body body
  | IView { name; expr } -> Fmt.pf ppf "view %s = %a;" name pp_view expr

let pp_fields ppf fields =
  List.iter (fun (a, v) -> Fmt.pf ppf " %s = %a;" a pp_svalue v) fields

let pp_desc ppf = function
  | SDecl d -> pp_item ppf d
  | SLet { var; expr } -> Fmt.pf ppf "let %s = %a;" var pp_view expr
  | SDefine { name; expr } -> Fmt.pf ppf "define view %s = %a;" name pp_view expr
  | SDrop name -> Fmt.pf ppf "drop view %s;" name
  | SCallOn { gf; expr } -> Fmt.pf ppf "call %s on %a;" gf pp_view expr
  | SNew { ty; inits } -> Fmt.pf ppf "new %s {%a }" ty pp_fields inits
  | SSet { oid; updates } -> Fmt.pf ppf "set #%d {%a }" oid pp_fields updates
  | SDelete { oid; policy = `Restrict } -> Fmt.pf ppf "del #%d;" oid
  | SDelete { oid; policy = `Nullify } -> Fmt.pf ppf "del #%d nullify;" oid
  | SShow v -> Fmt.pf ppf ":show %a" pp_view v
  | SType v -> Fmt.pf ppf ":type %a" pp_view v
  | SExtent v -> Fmt.pf ppf ":extent %a" pp_view v
  | SViews -> Fmt.string ppf ":views"
  | SSchema -> Fmt.string ppf ":schema"
  | SQuit -> Fmt.string ppf ":quit"

let pp ppf (s : t) = pp_desc ppf s.sdesc
let to_string s = Fmt.str "%a" pp s
