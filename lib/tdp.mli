(** The unified facade of the TDP libraries.

    Application code should depend on the [tdp] library and reach
    everything through this module:

    {[
      match Tdp.load_schema source with
      | Error e -> prerr_endline (Tdp.Error.to_string e)
      | Ok schema ->
          let d = Tdp.Dispatch.create schema in
          ...
    ]}

    Each submodule below is a re-export of the underlying library
    module; the facade adds no behavior of its own beyond the
    {!load_schema} conveniences.  The layering underneath (and the
    reason the facade can exist without cycles):

    - {!Obs} — metrics and tracing; depends on nothing else;
    - {!Error}, {!Hierarchy}, {!Schema}, {!Schema_index},
      {!Applicability}, {!Projection} — the core calculus;
    - {!Dispatch} — CLOS-style multi-method dispatch over a schema;
    - {!Database}, {!Wal}, {!Dump}, {!Interp} — the object store;
    - {!Txn_log}, {!Mvcc}, {!Server} — MVCC transactions and the
      multi-client server;
    - {!Replica}, {!Router} — log-shipping read replicas and the
      OID-range shard router;
    - {!Catalog}, {!Evolution} — the view algebra;
    - {!Infer}, {!Pipeline} — principal-type inference for pipelines;
    - {!Lint} — static analysis of schema sources;
    - {!Stmt}, {!Session}, {!Repl} — the interactive data language
      ([odb repl], the server's [eval] verb). *)

(** Structured errors shared by every [( _, Error.t) result] below. *)
module Error = Tdp_core.Error

module Type_name = Tdp_core.Type_name
module Attr_name = Tdp_core.Attr_name

(** Type hierarchies: the paper's Section 2 data model. *)
module Hierarchy = Tdp_core.Hierarchy

(** A hierarchy plus its methods; the unit every operation consumes. *)
module Schema = Tdp_core.Schema

(** Compiled subtype closure with O(1) [a ⪯ b] bit tests. *)
module Schema_index = Tdp_core.Schema_index

(** The projection operation itself (paper Sections 4–6). *)
module Projection = Tdp_core.Projection

(** The IsApplicable analysis (paper Section 4). *)
module Applicability = Tdp_core.Applicability

(** Multi-method dispatch with memoized resolution tables. *)
module Dispatch = Tdp_dispatch.Dispatch

(** The in-memory object store. *)
module Database = Tdp_store.Database

(** Write-ahead log: durable journaling and crash recovery. *)
module Wal = Tdp_store.Wal

(** Snapshot save/load in the line-oriented dump format. *)
module Dump = Tdp_store.Dump

(** Method-body interpreter over a database. *)
module Interp = Tdp_store.Interp

(** The transaction log: begin/commit/abort brackets over the WAL
    framing. *)
module Txn_log = Tdp_txn.Txn_log

(** Snapshot-isolation MVCC transactions over immutable versions. *)
module Mvcc = Tdp_txn.Mvcc

(** The multi-client line-protocol server ([odb serve]). *)
module Server = Tdp_txn.Server

(** Log-shipping read replicas and failover ([odb replicate],
    [odb promote]). *)
module Replica = Tdp_replica.Replica

(** OID-range fan-out over shard backends ([odb route]). *)
module Router = Tdp_replica.Router

(** Named views over a base schema. *)
module Catalog = Tdp_algebra.Catalog

(** Schema evolution with per-view impact reports. *)
module Evolution = Tdp_algebra.Evolution

(** Statements of the interactive data language: parsing and
    printing. *)
module Stmt = Tdp_lang.Stmt

(** Stateful statement evaluation over a store, with structured
    outcomes and one canonical rendering. *)
module Session = Tdp_lang.Session

(** The read-eval-print loop over a {!Session} ([odb repl]). *)
module Repl = Tdp_lang.Repl

(** Schema and method-body linting with structured diagnostics. *)
module Lint = Tdp_analysis.Lint

(** Principal-type inference for algebra pipelines. *)
module Infer = Tdp_infer.Infer

(** The typed IR {!Infer} solves over. *)
module Pipeline = Tdp_infer.Pipeline

(** Metrics registry and structured tracing ([Tdp_obs]). *)
module Obs = Tdp_obs

(** [load_schema source] parses and elaborates a schema-language
    [source] string into a validated, type-checked {!Schema.t}.  View
    declarations in the source are elaborated but {b not} applied; use
    {!Tdp_lang.Elaborate} directly for the full result. *)
val load_schema : string -> (Schema.t, Error.t) result

(** {!load_schema} over the contents of [path].  An unreadable file is
    reported as an [Error] (never an exception). *)
val load_schema_file : string -> (Schema.t, Error.t) result
