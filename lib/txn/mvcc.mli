(** Snapshot-isolation MVCC over immutable database versions.

    A {!snapshot} is a persistent value — an immutable object map plus
    the schema and its compiled index.  Committing never mutates a
    snapshot: it builds a successor sharing almost all structure with
    its parent and publishes it as the branch head under the store
    lock.  Readers holding a snapshot therefore need no locks at all
    and see exactly the version they started from — snapshot isolation
    by construction.

    Writes go through transactions ({!begin_} … {!commit}).  A
    transaction pins its branch head as base, stages validated ops
    against a private overlay, and at commit runs first-writer-wins
    conflict detection: if any version committed to the branch since
    the base wrote an object this transaction also wrote (or either
    side swapped the schema), the transaction aborts with
    [Conflict].  Surviving transactions are logged as a
    [begin]..[commit] bracket in the {!Txn_log} {e before} the head
    moves, so a crash mid-commit leaves a dangling bracket that replay
    discards — recovery always yields the last fully committed
    version, never torn state.

    Domain-safety: reader domains may call every snapshot accessor
    below concurrently and lock-free; store operations ({!head},
    {!begin_}, {!commit}, {!fork}, {!checkpoint}, …) serialize on the
    internal store lock (the one-writer discipline). *)

open Tdp_core
module Oid = Tdp_store.Oid
module Value = Tdp_store.Value
module Database = Tdp_store.Database
module Wal = Tdp_store.Wal

(** The default branch, ["main"]. *)
val main_branch : string

(** {1 Snapshots} *)

type snapshot

(** The commit version this snapshot was published as (0 = base). *)
val version : snapshot -> int

val schema : snapshot -> Schema.t
val hierarchy : snapshot -> Hierarchy.t

(** The next OID {!new_object} would allocate over this snapshot. *)
val next_oid : snapshot -> int

val count : snapshot -> int
val mem : snapshot -> Oid.t -> bool

(** @raise Database.Store_error on an unknown OID / attribute. *)
val type_of : snapshot -> Oid.t -> Type_name.t

val slots : snapshot -> Oid.t -> Value.t Attr_name.Map.t
val get_attr : snapshot -> Oid.t -> Attr_name.t -> Value.t

(** Deep extent (all objects of the type or a subtype), in OID order. *)
val extent : snapshot -> Type_name.t -> Oid.t list

val objects : snapshot -> (Oid.t * Type_name.t * Value.t Attr_name.Map.t) list

(** Materialize as a mutable {!Database} (the bridge to {!Dump}). *)
val to_database : snapshot -> Database.t

(** The snapshot in {!Tdp_store.Dump} format. *)
val dump : snapshot -> string

(** {1 Stores} *)

type t

(** An in-memory store (no log, no durability) whose [main] branch
    starts empty over [schema].  [load_schema] elaborates the surface
    source of schema-swap ops; without it such ops fail. *)
val create : ?load_schema:(string -> Schema.t) -> Schema.t -> t

(** An in-memory store whose [main] branch starts at the contents of
    [db] (version 0) — how a replica bootstraps from the primary's
    recovered snapshot. *)
val of_database : ?load_schema:(string -> Schema.t) -> Database.t -> t

(** Head snapshot of [branch].
    @raise Database.Store_error on an unknown branch. *)
val head : t -> branch:string -> snapshot

(** All branches with their head versions, sorted by name. *)
val branches : t -> (string * int) list

(** The last committed version across all branches. *)
val current_version : t -> int

(** Create branch [branch] from the head of [from_]; returns the
    forked version.  Durable stores log a [fork] record first. *)
val fork : t -> from_:string -> branch:string -> int

(** {1 Transactions} *)

type txn
type txn_state = Open | Committed of int | Aborted of string
type commit_error = Conflict of string | Invalid of string

val commit_error_message : commit_error -> string

(** Open a transaction against the current head of [branch]
    (default {!main_branch}). *)
val begin_ : ?branch:string -> t -> txn

val txid : txn -> int
val txn_branch : txn -> string
val state : txn -> txn_state

(** The transaction's private view: its base snapshot plus every op it
    has staged so far.  Safe to read at any time. *)
val view : txn -> snapshot

(** Stage ops.  Each validates against the overlay first; a failing op
    raises [Database.Store_error] and leaves the transaction open and
    unchanged.  @raise Database.Store_error also once the transaction
    is no longer [Open]. *)
val new_object : txn -> Type_name.t -> init:(Attr_name.t * Value.t) list -> Oid.t

val set_attr : txn -> Oid.t -> Attr_name.t -> Value.t -> unit
val delete : txn -> ?policy:Database.delete_policy -> Oid.t -> unit
val set_schema : txn -> source:string -> unit

(** First-writer-wins commit.  [Ok v] published version [v];
    [Error (Conflict _)] aborted on a write-set or revalidation
    conflict (a conflict {e is} an abort: the transaction is dead and
    the conflict was recorded in the log); [Error (Invalid _)] the
    transaction was not open.  Read-only transactions commit without
    logging or publishing.  Raises only if the transaction-log append
    itself fails (the transaction aborts first). *)
val commit : txn -> (int, commit_error) result

(** Abort an open transaction (idempotent on aborted ones).
    @raise Database.Store_error if already committed. *)
val abort : ?reason:string -> txn -> unit

(** {1 Replication support}

    The hooks a log-shipping replica ({!Tdp_replica}) applies records
    through, outside any transaction.  They maintain the same
    per-branch version and write-set history commits do. *)

(** Validate and apply one op against a snapshot, returning the
    successor (version unchanged until {!publish}).
    @raise Database.Store_error when the op does not validate. *)
val apply_op : t -> snapshot -> Database.op -> snapshot

(** Install [snap] as the head of [branch] under the store lock and
    stamp it with the next version, recording [ops]' write set for
    first-writer-wins history; returns the published version. *)
val publish : t -> branch:string -> ops:Database.op list -> snapshot -> int

(** Advance the transaction-id allocator past a replayed [txid]. *)
val note_txid : t -> int -> unit

(** The last durable (wal seq, txn seq) this store has absorbed: the
    wal.log record folded into the base plus the transaction-log
    writer position (0 without a writer).  What the [seq] protocol
    verb reports on a primary. *)
val log_seqs : t -> int * int

(** {1 Durability and recovery} *)

type opened = {
  store : t;
  wal_replayed : int;  (** plain WAL records applied under the base *)
  wal_corruption : Wal.corruption option;
  txn_applied : int;  (** committed transactions replayed *)
  txn_discarded : int;  (** dangling begin..op brackets dropped *)
  txn_corruption : Wal.corruption option;
  txn_valid_bytes : int;
  txn_next_seq : int;
  tmp_removed : bool;  (** an orphaned snapshot [.tmp] was cleaned up *)
}

(** Recover a store from snapshot / WAL / transaction-log {e contents}:
    base state via {!Wal.recover_text}, then replay of every committed
    bracket above the snapshot's [txn-seq] header.  Total on arbitrary
    [txn] bytes — corruption and structurally invalid records end the
    replayable prefix; dangling brackets are discarded. *)
val recover_text :
  ?load_schema:(string -> Schema.t) ->
  ?sync:bool ->
  schema:Schema.t ->
  ?snapshot:string ->
  ?wal:string ->
  ?txn:string ->
  unit ->
  opened

(** Open a durable store directory ([snapshot.dump], [wal.log],
    [txn.log]; any may be absent): removes an orphaned snapshot
    [.tmp], recovers, repairs a torn transaction-log tail, and attaches
    a transaction-log writer ([sync] defaults to fsync-per-record).
    Subsequent commits are write-ahead logged into [DIR/txn.log]. *)
val open_dir :
  ?load_schema:(string -> Schema.t) ->
  ?sync:bool ->
  schema:Schema.t ->
  string ->
  opened

(** Fold the current [main] head into a fresh atomic snapshot (with
    [wal-seq]/[txn-seq] cursor headers) and truncate both logs.  Crash
    safe at every point: replay skips records the snapshot already
    absorbed.  @raise Database.Store_error on a memory-only store or
    when more than one branch exists. *)
val checkpoint : t -> unit

(** Close the log writer; later store operations fail. *)
val close : t -> unit
