open Tdp_core
module Oid = Tdp_store.Oid
module Value = Tdp_store.Value
module Database = Tdp_store.Database
module Dump = Tdp_store.Dump
module Obs = Tdp_obs

(* The multi-client server: a line protocol over a Unix-domain or TCP
   socket, multiplexing concurrent sessions onto an {!Mvcc} store.

   Concurrency model (OCaml 5): [domains] accept domains all block in
   [accept] on the shared listening socket; each accepted connection is
   served by a fresh systhread attached to the accepting domain, so
   sessions on different domains read snapshots in parallel while
   sessions on one domain interleave at blocking points.  All writes
   funnel through [Mvcc.commit], which serializes on the store lock —
   parallel readers, one writer.

   One request line in, one response line out:

     ok …            the command succeeded; payload is command-specific
     conflict "why"  commit lost first-writer-wins (the txn is aborted)
     err "why"       anything else (the session survives)

   Sessions are stateful: a current branch (default main) and at most
   one open transaction.  Reads inside a transaction see its private
   overlay — the begin-time snapshot plus the session's own staged
   writes; reads outside see the branch head at the moment of the read.
   Either way a read never observes a partial commit: heads only ever
   advance to fully published versions. *)

let proto_version = 1

(* Obs.Metrics is not thread-safe; every increment below happens under
   [reg_lock] (the session registry lock). *)
let m_sessions = Obs.Metrics.counter "server.sessions"
let m_requests = Obs.Metrics.counter "server.requests"
let m_errors = Obs.Metrics.counter "server.errors"
let m_active = Obs.Metrics.gauge "server.active_sessions"

(* ---- requests ------------------------------------------------------ *)

type request =
  | Hello
  | Ping
  | Begin of string option
  | Commit
  | Abort of string option
  | New of Type_name.t * (Attr_name.t * Value.t) list
  | Set of Oid.t * Attr_name.t * Value.t
  | Del of Oid.t * Database.delete_policy
  | Schema of string
  | Get of Oid.t * Attr_name.t
  | Typeof of Oid.t
  | Extent of Type_name.t
  | Count
  | Version
  | Branches
  | Branch of string
  | Fork of string * string option
  | Seq
  | Lag
  | Eval of string
  | Quit

let parse_fail fmt =
  Fmt.kstr (fun message -> raise (Dump.Parse_error { line = 0; message })) fmt

let oid_of_token tok =
  if String.length tok > 1 && tok.[0] = '#' then
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some i when i >= 1 -> Oid.of_int i
    | _ -> parse_fail "bad oid %s" tok
  else parse_fail "expected #<oid>, got %s" tok

let slot_of_token tok =
  match String.index_opt tok '=' with
  | Some i ->
      ( Attr_name.of_string (String.sub tok 0 i),
        Dump.value_of_string 0 (String.sub tok (i + 1) (String.length tok - i - 1)) )
  | None -> parse_fail "expected attr=value, got %s" tok

let branch_of_token tok =
  if Txn_log.valid_branch_name tok then tok
  else parse_fail "bad branch name %s" tok

(* @raise Dump.Parse_error on anything that is not a request. *)
let parse_request line : request =
  match Dump.tokens 0 line with
  | [ "hello" ] -> Hello
  | [ "ping" ] -> Ping
  | [ "begin" ] -> Begin None
  | [ "begin"; br ] -> Begin (Some (branch_of_token br))
  | [ "commit" ] -> Commit
  | [ "abort" ] -> Abort None
  | [ "abort"; quoted ] -> (
      match Dump.value_of_string 0 quoted with
      | String reason -> Abort (Some reason)
      | _ -> parse_fail "abort takes a quoted reason")
  | "new" :: ty :: slots ->
      New (Type_name.of_string ty, List.map slot_of_token slots)
  | [ "set"; oid; slot ] ->
      let attr, value = slot_of_token slot in
      Set (oid_of_token oid, attr, value)
  | [ "del"; oid ] -> Del (oid_of_token oid, Database.Restrict)
  | [ "del"; oid; "restrict" ] -> Del (oid_of_token oid, Database.Restrict)
  | [ "del"; oid; "nullify" ] -> Del (oid_of_token oid, Database.Nullify)
  | [ "schema"; quoted ] -> (
      match Dump.value_of_string 0 quoted with
      | String source -> Schema source
      | _ -> parse_fail "schema takes a quoted source")
  | [ "get"; oid; attr ] -> Get (oid_of_token oid, Attr_name.of_string attr)
  | [ "typeof"; oid ] -> Typeof (oid_of_token oid)
  | [ "extent"; ty ] -> Extent (Type_name.of_string ty)
  | [ "count" ] -> Count
  | [ "version" ] -> Version
  | [ "branches" ] -> Branches
  | [ "branch"; br ] -> Branch (branch_of_token br)
  | [ "fork"; br ] -> Fork (branch_of_token br, None)
  | [ "fork"; br; from_ ] -> Fork (branch_of_token br, Some (branch_of_token from_))
  | [ "seq" ] -> Seq
  | [ "lag" ] -> Lag
  | [ "eval"; quoted ] -> (
      match Dump.value_of_string 0 quoted with
      | String source -> Eval source
      | _ -> parse_fail "eval takes a quoted statement source")
  | [ "quit" ] | [ "bye" ] -> Quit
  | verb :: _ -> parse_fail "unknown command %s" verb
  | [] -> parse_fail "empty command"

(* ---- sessions ------------------------------------------------------ *)

(* A read-only server (a replica) answers [seq]/[lag] from these
   callbacks and refuses every mutating verb with a structured [err] —
   the session survives, so probing clients cost nothing. *)
type replica_info = {
  ri_seqs : unit -> int * int;  (** applied (wal seq, txn seq) *)
  ri_lag : unit -> int * int;  (** bytes behind the primary, (wal, txn) *)
}

type mode = Read_write | Read_only of replica_info

type session = {
  store : Mvcc.t;
  smode : mode;
  mutable sbranch : string;
  mutable txn : Mvcc.txn option;
  mutable lang : Tdp_lang.Session.t option;
      (* the statement-language session behind the [eval] verb, built
         lazily on first use and kept for the connection's lifetime
         (its catalog and [let] bindings are session state) *)
}

let session ?(mode = Read_write) ~store () =
  { store; smode = mode; sbranch = Mvcc.main_branch; txn = None; lang = None }

(* The overlay inside a transaction, the branch head outside. *)
let read_snapshot s =
  match s.txn with
  | Some t when Mvcc.state t = Mvcc.Open -> Mvcc.view t
  | _ -> Mvcc.head s.store ~branch:s.sbranch

let open_txn s =
  match s.txn with
  | Some t when Mvcc.state t = Mvcc.Open -> t
  | _ -> raise (Database.Store_error "no open transaction (begin first)")

let abort_open s reason =
  match s.txn with
  | Some t when Mvcc.state t = Mvcc.Open -> Mvcc.abort ~reason t
  | _ -> ()

(* ---- the eval verb ------------------------------------------------- *)

(* [eval] runs statements of the interactive data language
   (Tdp_lang.Stmt) against this session's view of the store: reads see
   the transaction overlay when one is open and the branch head
   otherwise (exactly like [get]/[extent]); writes stage through the
   open transaction and fail with a structured TDP055 diagnostic when
   none is open.  Method calls run on a scratch materialization of the
   read snapshot with a journal attached; any ops the method performs
   are replayed into the open transaction, so a mutating method outside
   a transaction changes nothing and reports the failure. *)

let replay_op t (op : Database.op) =
  match op with
  | Database.Op_new { oid; ty; init } ->
      let oid' = Mvcc.new_object t ty ~init in
      if not (Oid.equal oid oid') then
        raise
          (Database.Store_error
             (Fmt.str "method replay allocated #%d where the call saw #%d"
                (Oid.to_int oid') (Oid.to_int oid)))
  | Database.Op_set { oid; attr; value } -> Mvcc.set_attr t oid attr value
  | Database.Op_delete { oid; policy } -> Mvcc.delete t ~policy oid
  | Database.Op_set_schema { source } -> Mvcc.set_schema t ~source

let eval_call s gf args =
  let db = Mvcc.to_database (read_snapshot s) in
  let ops = ref [] in
  Database.set_journal db (Some (fun op -> ops := op :: !ops));
  let result = Tdp_store.Interp.call (Tdp_store.Interp.create db) gf args in
  Database.set_journal db None;
  (match List.rev !ops with
  | [] -> ()
  | ops ->
      (* mutating method: persist its effects or fail having changed
         nothing (the scratch database is discarded either way) *)
      let t = open_txn s in
      List.iter (replay_op t) ops);
  result

let lang_ops s : Tdp_lang.Session.store_ops =
  { s_schema = (fun () -> Mvcc.schema (read_snapshot s));
    s_extent = (fun ty -> Mvcc.extent (read_snapshot s) ty);
    s_type_of = (fun oid -> Mvcc.type_of (read_snapshot s) oid);
    s_get = (fun oid attr -> Mvcc.get_attr (read_snapshot s) oid attr);
    s_count = (fun () -> Mvcc.count (read_snapshot s));
    s_new = (fun ty init -> Mvcc.new_object (open_txn s) ty ~init);
    s_set = (fun oid attr v -> Mvcc.set_attr (open_txn s) oid attr v);
    s_del = (fun oid policy -> Mvcc.delete (open_txn s) ~policy oid);
    s_call = (fun gf args -> eval_call s gf args);
    s_instances = None
  }

let lang_session s =
  match s.lang with
  | Some l -> l
  | None ->
      let l = Tdp_lang.Session.create (lang_ops s) in
      s.lang <- Some l;
      l

let refuse_verb (req : request) =
  match req with
  | Begin _ -> Some "begin"
  | Commit -> Some "commit"
  | Abort _ -> Some "abort"
  | New _ -> Some "new"
  | Set _ -> Some "set"
  | Del _ -> Some "del"
  | Schema _ -> Some "schema"
  | Fork _ -> Some "fork"
  (* [eval] is read-only-safe on a replica: its mutating statements all
     need an open transaction, and [begin] is refused above *)
  | Hello | Ping | Get _ | Typeof _ | Extent _ | Count | Version | Branches
  | Branch _ | Seq | Lag | Eval _ | Quit ->
      None

(* One request -> one response line (no trailing newline).  [Quit] is
   handled by the caller; every path here keeps the session alive. *)
let respond s (req : request) =
  (match (s.smode, refuse_verb req) with
  | Read_only _, Some verb ->
      raise
        (Database.Store_error
           (Fmt.str "read-only replica: %s refused (connect to the primary to write)"
              verb))
  | _ -> ());
  match req with
  | Hello -> Fmt.str "ok odb %d branch %s" proto_version s.sbranch
  | Ping -> "ok pong"
  | Quit -> "ok bye"
  | Begin branch -> (
      match s.txn with
      | Some t when Mvcc.state t = Mvcc.Open ->
          Fmt.str "err %S" (Fmt.str "transaction %d already open" (Mvcc.txid t))
      | _ ->
          (match branch with Some b -> s.sbranch <- b | None -> ());
          let t = Mvcc.begin_ ~branch:s.sbranch s.store in
          s.txn <- Some t;
          Fmt.str "ok txn %d base %d" (Mvcc.txid t) (Mvcc.version (Mvcc.view t)))
  | Commit -> (
      let t = open_txn s in
      s.txn <- None;
      match Mvcc.commit t with
      | Ok v -> Fmt.str "ok committed %d" v
      | Error (Mvcc.Conflict reason) -> Fmt.str "conflict %S" reason
      | Error (Mvcc.Invalid reason) -> Fmt.str "err %S" reason)
  | Abort reason ->
      let t = open_txn s in
      s.txn <- None;
      Mvcc.abort ?reason t;
      "ok aborted"
  | New (ty, init) ->
      let t = open_txn s in
      let oid = Mvcc.new_object t ty ~init in
      Fmt.str "ok #%d" (Oid.to_int oid)
  | Set (oid, attr, value) ->
      Mvcc.set_attr (open_txn s) oid attr value;
      "ok"
  | Del (oid, policy) ->
      Mvcc.delete (open_txn s) ~policy oid;
      "ok"
  | Schema source ->
      Mvcc.set_schema (open_txn s) ~source;
      "ok"
  | Get (oid, attr) ->
      Fmt.str "ok %s" (Dump.value_to_string (Mvcc.get_attr (read_snapshot s) oid attr))
  | Typeof oid ->
      Fmt.str "ok %s" (Type_name.to_string (Mvcc.type_of (read_snapshot s) oid))
  | Extent ty ->
      let oids = Mvcc.extent (read_snapshot s) ty in
      Fmt.str "ok %d%s" (List.length oids)
        (String.concat ""
           (List.map (fun o -> Fmt.str " #%d" (Oid.to_int o)) oids))
  | Count -> Fmt.str "ok %d" (Mvcc.count (read_snapshot s))
  | Version -> Fmt.str "ok %d" (Mvcc.version (read_snapshot s))
  | Branches ->
      Fmt.str "ok%s"
        (String.concat ""
           (List.map
              (fun (name, v) -> Fmt.str " %s:%d" name v)
              (Mvcc.branches s.store)))
  | Branch br ->
      (match s.txn with
      | Some t when Mvcc.state t = Mvcc.Open ->
          raise (Database.Store_error "cannot switch branch inside a transaction")
      | _ -> ());
      ignore (Mvcc.head s.store ~branch:br);
      s.sbranch <- br;
      Fmt.str "ok branch %s" br
  | Fork (branch, from_) ->
      let from_ = Option.value ~default:s.sbranch from_ in
      let v = Mvcc.fork s.store ~from_ ~branch in
      Fmt.str "ok forked %s at %d" branch v
  | Seq ->
      let wal, txn =
        match s.smode with
        | Read_only ri -> ri.ri_seqs ()
        | Read_write -> Mvcc.log_seqs s.store
      in
      Fmt.str "ok wal %d txn %d" wal txn
  | Lag ->
      let wal, txn =
        match s.smode with Read_only ri -> ri.ri_lag () | Read_write -> (0, 0)
      in
      Fmt.str "ok wal %d txn %d" wal txn
  | Eval source ->
      (* same outcomes and rendering as [odb repl]; statement-level
         failures are part of the payload (the session survives), and
         the whole response is [err] iff any statement failed *)
      let outcomes = Tdp_lang.Session.eval_string (lang_session s) source in
      let text =
        String.concat "\n" (List.map Tdp_lang.Session.render outcomes)
      in
      if List.exists Tdp_lang.Session.failed outcomes then Fmt.str "err %S" text
      else Fmt.str "ok %S" text

(* Total: every failure of a single request becomes an [err] line. *)
let handle_line s line =
  match respond s (parse_request line) with
  | resp -> resp
  | exception Database.Store_error m -> Fmt.str "err %S" m
  | exception Dump.Parse_error { message; _ } -> Fmt.str "err %S" message
  | exception Error.E e -> Fmt.str "err %S" (Error.message e)

(* ---- the listener -------------------------------------------------- *)

type t = {
  listen_fd : Unix.file_descr;
  sockaddr : Unix.sockaddr;
  stopping : bool Atomic.t;
  reg_lock : Mutex.t;
  mutable active : (Thread.t * Unix.file_descr) list;
  mutable accepters : unit Domain.t list;
}

let locked srv f = Mutex.protect srv.reg_lock f

let register srv th fd =
  locked srv (fun () ->
      srv.active <- (th, fd) :: srv.active;
      Obs.Metrics.incr m_sessions;
      Obs.Metrics.set_gauge m_active (float_of_int (List.length srv.active)))

let unregister srv fd =
  locked srv (fun () ->
      srv.active <- List.filter (fun (_, fd') -> fd' != fd) srv.active;
      Obs.Metrics.set_gauge m_active (float_of_int (List.length srv.active)))

let count_request srv ~error =
  locked srv (fun () ->
      Obs.Metrics.incr m_requests;
      if error then Obs.Metrics.incr m_errors)

let is_err resp =
  String.length resp >= 3 && String.sub resp 0 3 = "err"

(* A pluggable per-connection protocol: how the listener below is
   shared between store sessions and the {!Tdp_replica} OID-range
   router (any line protocol with one response line per request). *)
type handler = {
  h_line : string -> string;  (* one request -> one response, total *)
  h_quit : string -> bool;  (* did this request end the session? *)
  h_close : unit -> unit;  (* teardown, run exactly once per session *)
}

(* One connection, line by line, until quit / EOF / a dead socket.
   [h_close] runs on every exit path — for store sessions it aborts an
   open transaction left behind, so write intents never linger.

   Write-side failures get their own handler: a client that
   disconnects between request and response makes the response write
   raise [EPIPE]/[ECONNRESET] (as [Sys_error] through the channel) —
   that ends this session only, with the transaction aborted and the
   registry decremented on the way out.  [start] ignores [SIGPIPE]
   process-wide; without that a TCP client vanishing mid-response
   would kill the whole server, not just raise here. *)
let serve_session srv (h : handler) fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line -> (
        let line = String.trim line in
        if line = "" then loop ()
        else
          let resp = h.h_line line in
          count_request srv ~error:(is_err resp);
          match
            output_string oc resp;
            output_char oc '\n';
            flush oc
          with
          | exception (Sys_error _ | Unix.Unix_error _) ->
              count_request srv ~error:true
          | () -> if not (h.h_quit line) then loop ())
  in
  Fun.protect
    ~finally:(fun () ->
      h.h_close ();
      unregister srv fd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try loop ()
      with
      | Sys_error _ | Unix.Unix_error _ -> ()
      | _ ->
          (* nothing below is expected to raise anything else; if it
             does, record it and end the session instead of killing
             the thread with an unhandled exception *)
          count_request srv ~error:true)

let store_handler ?mode ~store () =
  let s = session ?mode ~store () in
  { h_line = (fun line -> handle_line s line);
    h_quit =
      (fun line ->
        match parse_request line with
        | Quit -> true
        | _ | (exception _) -> false);
    h_close = (fun () -> abort_open s "session closed")
  }

(* Accept loop: every accepter domain blocks in [accept] on the shared
   listening socket; the kernel hands each connection to one of them.
   Stopping is a dummy connection per accepter (the portable way to
   wake a blocked accept) with [stopping] already set. *)
let accept_loop srv make_handler =
  let rec loop () =
    match Unix.accept ~cloexec:true srv.listen_fd with
    | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED | EINTR), _, _)
      ->
        if Atomic.get srv.stopping then () else loop ()
    | fd, _ ->
        if Atomic.get srv.stopping then (
          (try Unix.close fd with Unix.Unix_error _ -> ());
          ())
        else begin
          let th =
            Thread.create
              (fun () -> serve_session srv (make_handler ()) fd)
              ()
          in
          register srv th fd;
          loop ()
        end
  in
  loop ()

let default_domains () = max 2 (min 4 (Domain.recommended_domain_count () - 1))

let start_handler ?(domains = default_domains ()) make_handler sockaddr =
  (* a client closing its socket mid-response must raise in that
     session's write, not deliver a process-killing SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let domain_kind =
    match sockaddr with
    | Unix.ADDR_UNIX path ->
        if Sys.file_exists path then Unix.unlink path;
        Unix.PF_UNIX
    | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let listen_fd = Unix.socket ~cloexec:true domain_kind Unix.SOCK_STREAM 0 in
  (match sockaddr with
  | Unix.ADDR_INET _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
  | Unix.ADDR_UNIX _ -> ());
  (try Unix.bind listen_fd sockaddr
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listen_fd 64;
  (* a TCP listener bound to port 0: recover the actual port *)
  let sockaddr = Unix.getsockname listen_fd in
  let srv =
    { listen_fd;
      sockaddr;
      stopping = Atomic.make false;
      reg_lock = Mutex.create ();
      active = [];
      accepters = []
    }
  in
  let domains = max 1 domains in
  srv.accepters <-
    List.init domains (fun _ ->
        Domain.spawn (fun () -> accept_loop srv make_handler));
  srv

let start ?domains ?mode ~store sockaddr =
  start_handler ?domains (fun () -> store_handler ?mode ~store ()) sockaddr

let sockaddr srv = srv.sockaddr

let stop srv =
  if not (Atomic.exchange srv.stopping true) then begin
    (* one wake-up connection per accepter, then close the listener *)
    List.iter
      (fun _ ->
        match
          let fd =
            Unix.socket ~cloexec:true
              (match srv.sockaddr with
              | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
              | Unix.ADDR_INET _ -> Unix.PF_INET)
              Unix.SOCK_STREAM 0
          in
          (try Unix.connect fd srv.sockaddr
           with e ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             raise e);
          Unix.close fd
        with
        | () -> ()
        | exception Unix.Unix_error _ -> ())
      srv.accepters;
    List.iter Domain.join srv.accepters;
    srv.accepters <- [];
    (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
    (* sessions: shut the sockets down, then wait the threads out *)
    let active = locked srv (fun () -> srv.active) in
    List.iter
      (fun (_, fd) ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      active;
    List.iter (fun (th, _) -> Thread.join th) active;
    match srv.sockaddr with
    | Unix.ADDR_UNIX path ->
        if Sys.file_exists path then (
          try Unix.unlink path with Unix.Unix_error _ -> ())
    | Unix.ADDR_INET _ -> ()
  end

(* ---- client -------------------------------------------------------- *)

type client = { cfd : Unix.file_descr; cic : in_channel; coc : out_channel }

let connect sockaddr =
  let fd =
    Unix.socket ~cloexec:true
      (match sockaddr with
      | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
      | Unix.ADDR_INET _ -> Unix.PF_INET)
      Unix.SOCK_STREAM 0
  in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { cfd = fd; cic = Unix.in_channel_of_descr fd; coc = Unix.out_channel_of_descr fd }

let request c line =
  output_string c.coc line;
  output_char c.coc '\n';
  flush c.coc;
  input_line c.cic

let close_client c = try Unix.close c.cfd with Unix.Unix_error _ -> ()
