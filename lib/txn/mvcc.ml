open Tdp_core
module Oid = Tdp_store.Oid
module Value = Tdp_store.Value
module Database = Tdp_store.Database
module Dump = Tdp_store.Dump
module Wal = Tdp_store.Wal
module Obs = Tdp_obs

(* Snapshot-isolation MVCC over immutable database versions.

   A [snapshot] is a persistent value: an [Oid.Map] of immutable
   object records plus the schema and its compiled index.  Committing
   never mutates a snapshot — it builds a new one sharing almost all
   structure with its parent (O(ops · log n)), then publishes it as the
   branch head under the store lock.  Readers therefore need no locks
   at all once they hold a snapshot: they see exactly the version they
   started from, which is the whole of snapshot isolation.

   Writes go through transactions.  A transaction pins its branch head
   as [base], stages validated ops against a private overlay snapshot,
   and at commit — under the store lock — runs first-writer-wins
   conflict detection: if any version committed to the branch since
   [base] wrote an object this transaction also wrote (or either side
   swapped the schema), the transaction aborts.  Surviving transactions
   are re-applied to the *current* head (catching read-write races that
   write-set intersection cannot see, e.g. a new reference to an object
   a later commit deleted), logged as a begin..commit bracket in the
   transaction log, and only then published.  The log append precedes
   publication, so the log is always at least as new as memory; a crash
   mid-bracket leaves a begin without its commit and replay discards
   it — no torn state.

   Domain-safety inventory (OCaml 5: reader domains run lock-free over
   snapshots): [Oid.Map]/[Attr_name.Map] are immutable; the schema
   index is built with [Schema_index.compile] (no shared intern table)
   and reader paths use only [Schema_index.subtype] and the pure
   [Hierarchy] attribute walks — never the lazily-memoized
   [ancestor_set]/[cpl] entry points.  [Obs.Metrics] is not
   thread-safe, so every metric below is recorded while holding the
   store lock. *)

let fail fmt = Fmt.kstr (fun s -> raise (Database.Store_error s)) fmt
let main_branch = "main"

let m_begin = Obs.Metrics.counter "txn.begin"
let m_commit = Obs.Metrics.counter "txn.commit"
let m_abort = Obs.Metrics.counter "txn.abort"
let m_conflict = Obs.Metrics.counter "txn.conflict"
let m_commit_ns = Obs.Metrics.histogram "txn.commit_ns"

(* ---- snapshots ----------------------------------------------------- *)

type stored = { st_ty : Type_name.t; st_slots : Value.t Attr_name.Map.t }

type snapshot = {
  objs : stored Oid.Map.t;
  schema : Schema.t;
  index : Schema_index.t;
  next_oid : int;
  version : int;
}

let empty_snapshot schema =
  { objs = Oid.Map.empty;
    schema;
    index = Schema_index.compile (Schema.hierarchy schema);
    next_oid = 1;
    version = 0
  }

let version s = s.version
let schema s = s.schema
let next_oid s = s.next_oid
let count s = Oid.Map.cardinal s.objs
let mem s oid = Oid.Map.mem oid s.objs
let hierarchy s = Schema.hierarchy s.schema

let find s oid =
  match Oid.Map.find_opt oid s.objs with
  | Some st -> st
  | None -> fail "no object %a" Oid.pp oid

let type_of s oid = (find s oid).st_ty
let slots s oid = (find s oid).st_slots

let get_attr s oid attr =
  let st = find s oid in
  match Attr_name.Map.find_opt attr st.st_slots with
  | Some v -> v
  | None ->
      fail "object %a of type %s has no attribute %s" Oid.pp oid
        (Type_name.to_string st.st_ty)
        (Attr_name.to_string attr)

(* Deep extent in OID order ([Oid.Map.fold] visits keys in order). *)
let extent s ty =
  Oid.Map.fold
    (fun oid st acc -> if Schema_index.subtype s.index st.st_ty ty then oid :: acc else acc)
    s.objs []
  |> List.rev

let objects s =
  Oid.Map.fold (fun oid st acc -> (oid, st.st_ty, st.st_slots) :: acc) s.objs []
  |> List.rev

(* ---- validation and op application --------------------------------- *)

(* Mirrors {!Database}'s validation, phrased over a snapshot.  The
   rules must stay in lock-step: the transaction log replays through
   [apply], and an op [Database] accepted must replay here. *)

let check_value s attr_ty v =
  match (attr_ty, (v : Value.t)) with
  | _, Value.Null -> ()
  | Value_type.Prim p, v ->
      if not (Value.conforms_prim v p) then
        fail "value %a does not conform to %s" Value.pp v (Value_type.prim_to_string p)
  | Value_type.Named n, Value.Ref o -> (
      match Oid.Map.find_opt o s.objs with
      | None -> fail "dangling reference %a" Oid.pp o
      | Some target ->
          if not (Schema_index.subtype s.index target.st_ty n) then
            fail "object %a of type %s is not a %s" Oid.pp o
              (Type_name.to_string target.st_ty)
              (Type_name.to_string n))
  | Value_type.Named _, v -> fail "value %a is not an object reference" Value.pp v
  | Value_type.Unknown, _ -> ()

let attr_def s ty attr =
  match Hierarchy.find_attribute (hierarchy s) ty attr with
  | Some a -> a
  | None ->
      fail "type %s has no attribute %s" (Type_name.to_string ty)
        (Attr_name.to_string attr)

let build_slots s ty ~init =
  if not (Hierarchy.mem (hierarchy s) ty) then
    fail "unknown type %s" (Type_name.to_string ty);
  let attrs = Hierarchy.all_attributes (hierarchy s) ty in
  let slots =
    List.fold_left
      (fun slots a ->
        let name = Attribute.name a in
        let v =
          match List.find_opt (fun (n, _) -> Attr_name.equal n name) init with
          | Some (_, v) ->
              check_value s (Attribute.ty a) v;
              v
          | None -> Value.Null
        in
        Attr_name.Map.add name v slots)
      Attr_name.Map.empty attrs
  in
  List.iter
    (fun (n, _) ->
      if not (List.exists (fun a -> Attr_name.equal (Attribute.name a) n) attrs) then
        fail "type %s has no attribute %s" (Type_name.to_string ty)
          (Attr_name.to_string n))
    init;
  slots

let referrers s oid =
  Oid.Map.fold
    (fun other st acc ->
      if Oid.equal other oid then acc
      else
        Attr_name.Map.fold
          (fun attr v acc ->
            match v with
            | Value.Ref r when Oid.equal r oid -> (other, attr) :: acc
            | _ -> acc)
          st.st_slots acc)
    s.objs []
  |> List.sort (fun (a, x) (b, y) ->
         match Oid.compare a b with 0 -> Attr_name.compare x y | c -> c)

(* Apply one validated op, returning the successor snapshot (same
   [version]; commit stamps the new version on publication).
   @raise Database.Store_error when the op does not validate. *)
let apply ?load_schema s (op : Database.op) =
  match op with
  | Database.Op_new { oid; ty; init } ->
      if Oid.Map.mem oid s.objs then fail "oid %a already in use" Oid.pp oid;
      if Oid.to_int oid < 1 then fail "non-positive oid %a" Oid.pp oid;
      let st_slots = build_slots s ty ~init in
      { s with
        objs = Oid.Map.add oid { st_ty = ty; st_slots } s.objs;
        next_oid = max s.next_oid (Oid.to_int oid + 1)
      }
  | Database.Op_set { oid; attr; value } ->
      let st = find s oid in
      if not (Attr_name.Map.mem attr st.st_slots) then
        fail "object %a of type %s has no attribute %s" Oid.pp oid
          (Type_name.to_string st.st_ty)
          (Attr_name.to_string attr);
      let def = attr_def s st.st_ty attr in
      check_value s (Attribute.ty def) value;
      { s with
        objs =
          Oid.Map.add oid
            { st with st_slots = Attr_name.Map.add attr value st.st_slots }
            s.objs
      }
  | Database.Op_delete { oid; policy } ->
      let _ = find s oid in
      let refs = referrers s oid in
      (match (policy, refs) with
      | Database.Restrict, (other, attr) :: _ ->
          fail "cannot delete %a: referenced by %a.%s" Oid.pp oid Oid.pp other
            (Attr_name.to_string attr)
      | _ -> ());
      let objs =
        match policy with
        | Database.Restrict -> s.objs
        | Database.Nullify ->
            List.fold_left
              (fun objs (other, attr) ->
                let st = Oid.Map.find other objs in
                Oid.Map.add other
                  { st with st_slots = Attr_name.Map.add attr Value.Null st.st_slots }
                  objs)
              s.objs refs
      in
      { s with objs = Oid.Map.remove oid objs }
  | Database.Op_set_schema { source } -> (
      match load_schema with
      | None -> fail "schema op requires a schema loader"
      | Some load ->
          let schema = load source in
          { s with schema; index = Schema_index.compile (Schema.hierarchy schema) })

(* ---- write sets ---------------------------------------------------- *)

type writes = { w_oids : Oid.Set.t; w_schema : bool }

let no_writes = { w_oids = Oid.Set.empty; w_schema = false }

let writes_add w (op : Database.op) =
  match op with
  | Database.Op_new { oid; _ } | Database.Op_set { oid; _ } | Database.Op_delete { oid; _ }
    ->
      { w with w_oids = Oid.Set.add oid w.w_oids }
  | Database.Op_set_schema _ -> { w with w_schema = true }

(* A schema swap conflicts with every concurrent commit: it can change
   the meaning of any staged op. *)
let writes_conflict a b =
  a.w_schema || b.w_schema || not (Oid.Set.disjoint a.w_oids b.w_oids)

(* ---- the store ----------------------------------------------------- *)

(* How many committed write sets a branch retains for first-writer-wins
   checks.  A transaction whose base predates the retained window
   aborts conservatively. *)
let recent_limit = 1024

type branch = {
  mutable head : snapshot;
  mutable recent : (int * writes) list;  (* newest first *)
  mutable floor : int;  (* write sets of versions <= floor were discarded *)
}

type t = {
  lock : Mutex.t;
  mutable version : int;  (* last committed version, across all branches *)
  mutable next_txid : int;
  branches : (string, branch) Hashtbl.t;
  mutable writer : Wal.writer option;
  load_schema : (string -> Schema.t) option;
  mutable dir : string option;
  mutable wal_seq : int;  (* last wal.log record folded into the base state *)
  sync : bool;
  mutable closed : bool;
}

let locked t f = Mutex.protect t.lock f

let check_live t =
  if t.closed then fail "store is closed"

let find_branch t name =
  match Hashtbl.find_opt t.branches name with
  | Some br -> br
  | None -> fail "unknown branch %s" name

let make ?load_schema ?(sync = true) base =
  let branches = Hashtbl.create 8 in
  Hashtbl.replace branches main_branch { head = base; recent = []; floor = base.version };
  { lock = Mutex.create ();
    version = base.version;
    next_txid = 1;
    branches;
    writer = None;
    load_schema;
    dir = None;
    wal_seq = 0;
    sync;
    closed = false
  }

let create ?load_schema schema = make ?load_schema (empty_snapshot schema)

let snapshot_of_database db ~version =
  let objs =
    List.fold_left
      (fun objs (o : Database.obj) ->
        Oid.Map.add o.oid { st_ty = o.ty; st_slots = o.slots } objs)
      Oid.Map.empty (Database.objects db)
  in
  let sch = Database.schema db in
  { objs;
    schema = sch;
    index = Schema_index.compile (Schema.hierarchy sch);
    next_oid = Database.next_oid db;
    version
  }

(* A memory-only store seeded from a recovered database — how a
   replica bootstraps from the primary's snapshot. *)
let of_database ?load_schema db =
  make ?load_schema (snapshot_of_database db ~version:0)

(* Materialize a snapshot as a mutable {!Database} — the bridge to
   {!Dump} for checkpoints and textual dumps.  Two passes so forward
   references restore. *)
let to_database s =
  let db = Database.create s.schema in
  let refs = ref [] in
  Oid.Map.iter
    (fun oid st ->
      let init =
        Attr_name.Map.fold
          (fun a v acc ->
            match v with
            | Value.Ref _ ->
                refs := (oid, a, v) :: !refs;
                acc
            | v -> (a, v) :: acc)
          st.st_slots []
      in
      ignore (Database.restore_object db ~oid ~ty:st.st_ty ~init))
    s.objs;
  List.iter (fun (oid, a, v) -> Database.set_attr db oid a v) (List.rev !refs);
  db

let dump s = Dump.to_string (to_database s)

(* ---- store reads --------------------------------------------------- *)

let head t ~branch =
  locked t (fun () ->
      check_live t;
      (find_branch t branch).head)

let branches t =
  locked t (fun () ->
      Hashtbl.fold (fun name br acc -> (name, br.head.version) :: acc) t.branches []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let current_version t = locked t (fun () -> t.version)

(* ---- transactions -------------------------------------------------- *)

type txn_state = Open | Committed of int | Aborted of string

type txn = {
  store : t;
  txid : int;
  txn_branch : string;
  base : snapshot;
  mutable overlay : snapshot;
  mutable ops : Database.op list;  (* reversed *)
  mutable writes : writes;
  mutable state : txn_state;
}

type commit_error = Conflict of string | Invalid of string

let commit_error_message = function Conflict m -> m | Invalid m -> m

let begin_ ?(branch = main_branch) t =
  locked t (fun () ->
      check_live t;
      let br = find_branch t branch in
      let txid = t.next_txid in
      t.next_txid <- txid + 1;
      Obs.Metrics.incr m_begin;
      { store = t;
        txid;
        txn_branch = branch;
        base = br.head;
        overlay = br.head;
        ops = [];
        writes = no_writes;
        state = Open
      })

let txid txn = txn.txid
let txn_branch txn = txn.txn_branch
let view txn = txn.overlay
let state txn = txn.state

let check_open txn =
  match txn.state with
  | Open -> ()
  | Committed v -> fail "transaction %d already committed as version %d" txn.txid v
  | Aborted r -> fail "transaction %d is aborted: %s" txn.txid r

(* Validate against the overlay and stage.  A failing op raises and
   leaves the transaction untouched (still open, overlay unchanged). *)
let stage txn op =
  let overlay = apply ?load_schema:txn.store.load_schema txn.overlay op in
  txn.overlay <- overlay;
  txn.ops <- op :: txn.ops;
  txn.writes <- writes_add txn.writes op

let new_object txn ty ~init =
  check_open txn;
  let oid = Oid.of_int txn.overlay.next_oid in
  stage txn (Database.Op_new { oid; ty; init });
  oid

let set_attr txn oid attr value =
  check_open txn;
  stage txn (Database.Op_set { oid; attr; value })

let delete txn ?(policy = Database.Restrict) oid =
  check_open txn;
  stage txn (Database.Op_delete { oid; policy })

let set_schema txn ~source =
  check_open txn;
  stage txn (Database.Op_set_schema { source })

(* Abort records are audit trail, not correctness: losers never logged
   their ops (brackets are written only at commit), so replay needs no
   cancellation.  A failure to record one must not mask the abort. *)
let log_abort t txn reason =
  match t.writer with
  | Some w when txn.ops <> [] && not (Wal.writer_poisoned w) -> (
      try ignore (Txn_log.append w (Txn_log.Abort { txid = txn.txid; reason }))
      with Wal.Wal_error _ | Sys_error _ | Unix.Unix_error _ -> ())
  | _ -> ()

let abort ?(reason = "aborted by client") txn =
  match txn.state with
  | Aborted _ -> ()
  | Committed v -> fail "transaction %d already committed as version %d" txn.txid v
  | Open ->
      txn.state <- Aborted reason;
      locked txn.store (fun () ->
          Obs.Metrics.incr m_abort;
          log_abort txn.store txn reason)

let first_writer_wins br txn =
  if txn.base.version = br.head.version then None
  else if txn.base.version < br.floor then
    Some
      (Fmt.str "base version %d predates the retained write-set history (floor %d)"
         txn.base.version br.floor)
  else
    let clash =
      List.find_opt
        (fun (v, w) -> v > txn.base.version && writes_conflict w txn.writes)
        br.recent
    in
    Option.map
      (fun (v, _) ->
        Fmt.str "write set intersects version %d (committed after base %d)" v
          txn.base.version)
      clash

let trim_recent br =
  let rec take n = function
    | [] -> ([], [])
    | rest when n = 0 -> ([], rest)
    | x :: tl ->
        let kept, dropped = take (n - 1) tl in
        (x :: kept, dropped)
  in
  match take recent_limit br.recent with
  | _, [] -> ()
  | kept, (v, _) :: _ ->
      br.recent <- kept;
      br.floor <- v

let commit txn =
  match txn.state with
  | Committed v -> Error (Invalid (Fmt.str "transaction %d already committed as version %d" txn.txid v))
  | Aborted r -> Error (Invalid (Fmt.str "transaction %d is aborted: %s" txn.txid r))
  | Open when txn.ops = [] ->
      (* Read-only: nothing to publish, nothing to log. *)
      txn.state <- Committed txn.base.version;
      locked txn.store (fun () -> Obs.Metrics.incr m_commit);
      Ok txn.base.version
  | Open ->
      let t = txn.store in
      locked t (fun () ->
          Obs.Metrics.time m_commit_ns (fun () ->
              check_live t;
              let br = find_branch t txn.txn_branch in
              match first_writer_wins br txn with
              | Some reason ->
                  txn.state <- Aborted reason;
                  Obs.Metrics.incr m_conflict;
                  Obs.Metrics.incr m_abort;
                  log_abort t txn reason;
                  Error (Conflict reason)
              | None -> (
                  let ops = List.rev txn.ops in
                  (* Re-validate against the current head: write-set
                     intersection cannot see read-write races (e.g. a
                     staged reference to an object a later commit
                     deleted), re-application does. *)
                  match
                    List.fold_left
                      (fun snap op -> apply ?load_schema:t.load_schema snap op)
                      br.head ops
                  with
                  | exception Database.Store_error msg ->
                      let reason = "no longer applies to the branch head: " ^ msg in
                      txn.state <- Aborted reason;
                      Obs.Metrics.incr m_conflict;
                      Obs.Metrics.incr m_abort;
                      log_abort t txn reason;
                      Error (Conflict reason)
                  | snap -> (
                      (* Write-ahead: the whole bracket hits the log
                         before the head moves.  A crash (or append
                         failure) mid-bracket leaves a begin without a
                         commit record, which replay discards. *)
                      match
                        match t.writer with
                        | None -> ()
                        | Some w ->
                            ignore
                              (Txn_log.append w
                                 (Txn_log.Begin { txid = txn.txid; branch = txn.txn_branch }));
                            List.iter
                              (fun op ->
                                ignore (Txn_log.append w (Txn_log.Op { txid = txn.txid; op })))
                              ops;
                            ignore (Txn_log.append w (Txn_log.Commit { txid = txn.txid }))
                      with
                      | exception exn ->
                          txn.state <- Aborted "transaction log append failed";
                          Obs.Metrics.incr m_abort;
                          raise exn
                      | () ->
                          let v = t.version + 1 in
                          t.version <- v;
                          br.head <- { snap with version = v };
                          br.recent <- (v, txn.writes) :: br.recent;
                          trim_recent br;
                          txn.state <- Committed v;
                          Obs.Metrics.incr m_commit;
                          Ok v))))

(* ---- replication support ------------------------------------------- *)

(* A replica replays the primary's logs outside any transaction: it
   validates each op against its current head with [apply_op] and
   installs the successor with [publish].  Publication still maintains
   the per-branch write-set history, so local read-only transactions
   (and a post-promotion switch to writes) see a coherent store. *)

let apply_op t s op = apply ?load_schema:t.load_schema s op

let publish t ~branch ~ops snap =
  locked t (fun () ->
      check_live t;
      let br = find_branch t branch in
      let v = t.version + 1 in
      t.version <- v;
      br.head <- { snap with version = v };
      br.recent <- (v, List.fold_left writes_add no_writes ops) :: br.recent;
      trim_recent br;
      v)

let note_txid t txid =
  locked t (fun () -> if txid >= t.next_txid then t.next_txid <- txid + 1)

let log_seqs t =
  locked t (fun () ->
      ( t.wal_seq,
        match t.writer with Some w -> Wal.writer_seq w - 1 | None -> 0 ))

(* ---- branches ------------------------------------------------------ *)

let fork t ~from_ ~branch =
  locked t (fun () ->
      check_live t;
      if not (Txn_log.valid_branch_name branch) then fail "invalid branch name %S" branch;
      if Hashtbl.mem t.branches branch then fail "branch %s already exists" branch;
      let src = find_branch t from_ in
      (match t.writer with
      | None -> ()
      | Some w -> ignore (Txn_log.append w (Txn_log.Fork { branch; from_ })));
      Hashtbl.replace t.branches branch
        { head = src.head; recent = []; floor = src.head.version };
      src.head.version)

(* ---- recovery ------------------------------------------------------ *)

type opened = {
  store : t;
  wal_replayed : int;
  wal_corruption : Wal.corruption option;
  txn_applied : int;  (** committed transactions replayed *)
  txn_discarded : int;  (** dangling begin..op brackets dropped *)
  txn_corruption : Wal.corruption option;
  txn_valid_bytes : int;
  txn_next_seq : int;
  tmp_removed : bool;
}

(* Replay the transaction log on a freshly recovered store.  Runs
   before the store is shared, so no locking.  Structural damage (a
   commit without its begin, a fork of an existing branch, a bracket
   that no longer applies) ends the replayable prefix exactly like a
   checksum failure; dangling brackets — crash mid-commit — are
   discarded silently. *)
let replay_txn_log t ~base_seq src =
  let d = Txn_log.decode src in
  let pending = Hashtbl.create 8 in
  let applied = ref 0 in
  let corruption = ref d.Wal.fcorruption in
  let valid = ref d.Wal.fvalid_bytes in
  let next_seq = ref d.Wal.fnext_seq in
  let stop = ref false in
  let prev_end = ref 0 in
  let stop_at ~start ~seq reason =
    corruption := Some { Wal.at_seq = seq; offset = start; reason };
    valid := start;
    next_seq := seq;
    stop := true
  in
  List.iter
    (fun (e : Txn_log.record Wal.framed) ->
      let start = !prev_end in
      prev_end := e.Wal.fends_at;
      if (not !stop) && e.Wal.fseq > base_seq then begin
        (match e.Wal.fvalue with
        | Txn_log.Begin { txid; _ }
        | Txn_log.Op { txid; _ }
        | Txn_log.Commit { txid }
        | Txn_log.Abort { txid; _ } ->
            if txid >= t.next_txid then t.next_txid <- txid + 1
        | Txn_log.Fork _ -> ());
        match e.Wal.fvalue with
        | Txn_log.Begin { txid; branch } ->
            if Hashtbl.mem pending txid then
              stop_at ~start ~seq:e.Wal.fseq (Fmt.str "duplicate begin for txid %d" txid)
            else if not (Hashtbl.mem t.branches branch) then
              stop_at ~start ~seq:e.Wal.fseq
                (Fmt.str "begin on unknown branch %s" branch)
            else Hashtbl.replace pending txid (branch, ref [], start, e.Wal.fseq)
        | Txn_log.Op { txid; op } -> (
            match Hashtbl.find_opt pending txid with
            | Some (_, ops, _, _) -> ops := op :: !ops
            | None ->
                stop_at ~start ~seq:e.Wal.fseq
                  (Fmt.str "op outside any open transaction (txid %d)" txid))
        | Txn_log.Abort { txid; _ } -> Hashtbl.remove pending txid
        | Txn_log.Fork { branch; from_ } -> (
            match Hashtbl.find_opt t.branches from_ with
            | None ->
                stop_at ~start ~seq:e.Wal.fseq
                  (Fmt.str "fork from unknown branch %s" from_)
            | Some src_br ->
                if Hashtbl.mem t.branches branch then
                  stop_at ~start ~seq:e.Wal.fseq
                    (Fmt.str "fork of existing branch %s" branch)
                else
                  Hashtbl.replace t.branches branch
                    { head = src_br.head; recent = []; floor = src_br.head.version })
        | Txn_log.Commit { txid } -> (
            match Hashtbl.find_opt pending txid with
            | None ->
                stop_at ~start ~seq:e.Wal.fseq
                  (Fmt.str "commit without begin (txid %d)" txid)
            | Some (bname, ops, bstart, bseq) -> (
                Hashtbl.remove pending txid;
                let br = Hashtbl.find t.branches bname in
                match
                  List.fold_left
                    (fun (snap, w) op ->
                      (apply ?load_schema:t.load_schema snap op, writes_add w op))
                    (br.head, no_writes) (List.rev !ops)
                with
                | exception Database.Store_error msg ->
                    stop_at ~start:bstart ~seq:bseq
                      ("replayed transaction no longer applies: " ^ msg)
                | snap, w ->
                    let v = t.version + 1 in
                    t.version <- v;
                    br.head <- { snap with version = v };
                    br.recent <- (v, w) :: br.recent;
                    trim_recent br;
                    incr applied))
      end)
    d.Wal.fentries;
  ( !applied,
    Hashtbl.length pending,
    !corruption,
    !valid,
    !next_seq )

let recover_text ?load_schema ?(sync = true) ~schema ?snapshot ?wal ?txn () =
  let wal_rec = Wal.recover_text ?load_schema ~schema ?snapshot ?wal () in
  let base = snapshot_of_database wal_rec.Wal.db ~version:0 in
  let t = make ?load_schema ~sync base in
  t.wal_seq <- wal_rec.Wal.last_seq;
  let base_seq = match snapshot with Some s -> Dump.txn_seq s | None -> 0 in
  let applied, discarded, corruption, valid, next_seq =
    replay_txn_log t ~base_seq (Option.value ~default:"" txn)
  in
  (* A checkpoint truncates the log but bakes its last txn-seq into the
     snapshot header; new records must continue past it, or the next
     recovery would skip them as already-in-snapshot. *)
  let next_seq = max next_seq (base_seq + 1) in
  { store = t;
    wal_replayed = wal_rec.Wal.replayed;
    wal_corruption = wal_rec.Wal.corruption;
    txn_applied = applied;
    txn_discarded = discarded;
    txn_corruption = corruption;
    txn_valid_bytes = valid;
    txn_next_seq = next_seq;
    tmp_removed = false
  }

let snapshot_file = "snapshot.dump"
let wal_file = "wal.log"
let txn_file = "txn.log"

let read_file path =
  if Sys.file_exists path then
    Some (In_channel.with_open_bin path In_channel.input_all)
  else None

let open_dir ?load_schema ?(sync = true) ~schema dir =
  let snap_path = Filename.concat dir snapshot_file in
  let txn_path = Filename.concat dir txn_file in
  (* A crash between temp-write and rename leaves an orphaned .tmp
     sibling; it is never read as a snapshot, only removed. *)
  let tmp_removed = Dump.clean_tmp ~path:snap_path in
  let snapshot = read_file snap_path in
  let wal = read_file (Filename.concat dir wal_file) in
  let txn = read_file txn_path in
  let o = recover_text ?load_schema ~sync ~schema ?snapshot ?wal ?txn () in
  (* Repair a torn transaction-log tail before appending over it. *)
  (match o.txn_corruption with
  | Some _ when Sys.file_exists txn_path -> Wal.repair ~path:txn_path o.txn_valid_bytes
  | _ -> ());
  let writer =
    if Sys.file_exists txn_path then
      Txn_log.writer_open ~sync ~path:txn_path ~next_seq:o.txn_next_seq ()
    else Txn_log.writer_create ~sync ~path:txn_path ~next_seq:o.txn_next_seq ()
  in
  o.store.writer <- Some writer;
  o.store.dir <- Some dir;
  { o with tmp_removed }

(* ---- checkpoint and close ------------------------------------------ *)

let checkpoint t =
  locked t (fun () ->
      check_live t;
      match t.dir with
      | None -> fail "checkpoint requires a directory-backed store"
      | Some dir ->
          if Hashtbl.length t.branches > 1 then
            fail "checkpoint requires a single branch (%d exist)"
              (Hashtbl.length t.branches);
          let br = Hashtbl.find t.branches main_branch in
          let txn_seq =
            match t.writer with Some w -> Wal.writer_seq w - 1 | None -> 0
          in
          (* The snapshot lands atomically with cursor headers naming
             the log records it absorbs; replay skips those, so a crash
             anywhere between the rename and the truncations below
             recovers to exactly this state. *)
          Dump.save ~wal_seq:t.wal_seq ~txn_seq
            ~path:(Filename.concat dir snapshot_file)
            (to_database br.head);
          let wal_path = Filename.concat dir wal_file in
          if Sys.file_exists wal_path then
            Wal.close
              (Wal.writer_create ~sync:false ~path:wal_path ~next_seq:(t.wal_seq + 1) ());
          (match t.writer with
          | None -> ()
          | Some w ->
              Wal.close w;
              t.writer <-
                Some
                  (Txn_log.writer_create ~sync:t.sync
                     ~path:(Filename.concat dir txn_file)
                     ~next_seq:(txn_seq + 1) ())))

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        (match t.writer with None -> () | Some w -> Wal.close w);
        t.writer <- None
      end)
