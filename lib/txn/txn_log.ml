module Database = Tdp_store.Database
module Dump = Tdp_store.Dump
module Wal = Tdp_store.Wal

(* The transaction log is a second prefix-commit log next to wal.log,
   layered on the Wal framing (magic 't' instead of 'w', its own
   sequence space) with a payload grammar that wraps the Wal op grammar
   in transaction brackets:

     begin <txid> <branch>
     op <txid> <wal-op-payload>
     commit <txid>
     abort <txid> "<reason>"
     fork <branch> <from-branch>

   Only ops bracketed by a begin..commit of the same txid take effect
   on replay; a crash mid-commit leaves a begin (and some ops) without
   a commit record, and recovery discards them — the durable unit is
   the transaction, not the record. *)

type record =
  | Begin of { txid : int; branch : string }
  | Op of { txid : int; op : Database.op }
  | Commit of { txid : int }
  | Abort of { txid : int; reason : string }
  | Fork of { branch : string; from_ : string }

let magic = 't'

(* Branch names travel unquoted in the grammar, so keep them to one
   token: nonempty, no whitespace, no quotes. *)
let valid_branch_name s =
  String.length s > 0
  && String.for_all
       (fun c -> match c with ' ' | '\t' | '\n' | '\r' | '"' -> false | _ -> true)
       s

let payload_to_string = function
  | Begin { txid; branch } -> Fmt.str "begin %d %s" txid branch
  | Op { txid; op } -> Fmt.str "op %d %s" txid (Wal.payload_to_string op)
  | Commit { txid } -> Fmt.str "commit %d" txid
  | Abort { txid; reason } -> Fmt.str "abort %d %S" txid reason
  | Fork { branch; from_ } -> Fmt.str "fork %s %s" branch from_

let parse_fail line fmt =
  Fmt.kstr (fun message -> raise (Dump.Parse_error { line; message })) fmt

let txid_of_token line tok =
  match int_of_string_opt tok with
  | Some i when i >= 1 -> i
  | Some _ -> parse_fail line "non-positive txid %s" tok
  | None -> parse_fail line "bad txid %s" tok

let payload_of_string ~line s : record =
  match Dump.tokens line s with
  | [ "begin"; txid; branch ] ->
      if not (valid_branch_name branch) then parse_fail line "bad branch name %s" branch;
      Begin { txid = txid_of_token line txid; branch }
  | "op" :: txid :: rest ->
      let payload = String.concat " " rest in
      Op { txid = txid_of_token line txid; op = Wal.payload_of_string ~line payload }
  | [ "commit"; txid ] -> Commit { txid = txid_of_token line txid }
  | [ "abort"; txid; quoted ] -> (
      match Dump.value_of_string line quoted with
      | String reason -> Abort { txid = txid_of_token line txid; reason }
      | _ -> parse_fail line "abort record expects a quoted reason")
  | [ "fork"; branch; from_ ] ->
      if not (valid_branch_name branch) then parse_fail line "bad branch name %s" branch;
      if not (valid_branch_name from_) then parse_fail line "bad branch name %s" from_;
      Fork { branch; from_ }
  | verb :: _ -> parse_fail line "unknown txn record %s" verb
  | [] -> parse_fail line "empty txn record"

let encode ~seq r = Wal.encode_line ~magic ~seq (payload_to_string r)

let parse payload =
  match payload_of_string ~line:0 payload with
  | r -> Ok r
  | exception Dump.Parse_error { message; _ } -> Error message

let decode src = Wal.decode_framed ~magic ~parse src

let writer_create ?sync ~path ~next_seq () =
  Wal.writer_create ?sync ~magic ~path ~next_seq ()

let writer_open ?sync ~path ~next_seq () =
  Wal.writer_open ?sync ~magic ~path ~next_seq ()

let append w r = Wal.append_payload w (payload_to_string r)
