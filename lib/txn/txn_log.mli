(** The transaction log: a second prefix-commit log layered on the
    {!Tdp_store.Wal} framing (magic [t], its own sequence space), whose
    payload grammar wraps the WAL op grammar in transaction brackets:

    {v
    begin <txid> <branch>
    op <txid> <wal-op-payload>
    commit <txid>
    abort <txid> "<reason>"
    fork <branch> <from-branch>
    v}

    The durable unit is the {e transaction}: on replay ({!Mvcc}), only
    ops bracketed by a [begin]..[commit] of the same txid take effect.
    A crash mid-commit leaves a begin without its commit record and
    recovery discards the bracket — no torn state.  [abort] records
    conflicts durably (the loser of first-writer-wins); [fork] records
    branch creation. *)

module Database = Tdp_store.Database
module Wal = Tdp_store.Wal

type record =
  | Begin of { txid : int; branch : string }
  | Op of { txid : int; op : Database.op }
  | Commit of { txid : int }
  | Abort of { txid : int; reason : string }
  | Fork of { branch : string; from_ : string }

(** The record magic, ['t'] (plain WAL records use ['w']). *)
val magic : char

(** Branch names are single unquoted tokens: nonempty, no whitespace,
    no double quotes. *)
val valid_branch_name : string -> bool

val payload_to_string : record -> string

(** @raise Tdp_store.Dump.Parse_error on malformed payloads. *)
val payload_of_string : line:int -> string -> record

(** One full framed record line, trailing newline included. *)
val encode : seq:int -> record -> string

(** Decode a log image down to its valid prefix; total on arbitrary
    bytes (see {!Tdp_store.Wal.decode_framed}). *)
val decode : string -> record Wal.framed_decoded

val writer_create : ?sync:bool -> path:string -> next_seq:int -> unit -> Wal.writer
val writer_open : ?sync:bool -> path:string -> next_seq:int -> unit -> Wal.writer

(** Append one record; returns its sequence number.  Shares
    {!Tdp_store.Wal.append}'s failure atomicity (poisoning). *)
val append : Wal.writer -> record -> int
