(** The multi-client server: a line protocol over a Unix-domain or TCP
    socket, multiplexing concurrent sessions onto an {!Mvcc} store.

    {1 Concurrency model}

    [domains] accepter domains (OCaml 5) block in [accept] on one
    shared listening socket; each accepted connection is served by a
    fresh systhread attached to the accepting domain.  Sessions on
    different domains read their snapshots in parallel; all commits
    serialize on the {!Mvcc} store lock — parallel readers, one
    writer.

    {1 Protocol}

    One request line in, one response line out.  Responses are
    [ok …] (command-specific payload), [conflict "why"] (the commit
    lost first-writer-wins and the transaction is aborted), or
    [err "why"] (the session survives).  Requests, in the {!Dump}
    token grammar (quoted strings may contain spaces):

    {v
    hello | ping | quit
    begin [BRANCH]                 -> ok txn <id> base <version>
    commit                         -> ok committed <v> | conflict "…"
    abort ["reason"]               -> ok aborted
    new TYPE [attr=value …]        -> ok #<oid>
    set #OID attr=value            -> ok
    del #OID [restrict|nullify]    -> ok
    schema "<source>"              -> ok
    get #OID attr                  -> ok <value>
    typeof #OID                    -> ok <Type>
    extent TYPE                    -> ok <n> [#oid …]
    count | version                -> ok <n>
    branches                       -> ok [name:version …]
    branch BRANCH                  -> ok branch BRANCH
    fork BRANCH [FROM]             -> ok forked BRANCH at <v>
    seq                            -> ok wal <seq> txn <seq>
    lag                            -> ok wal <bytes> txn <bytes>
    eval "<statements>"            -> ok "<transcript>" | err "<transcript>"
    v}

    [eval] runs statements of the interactive data language
    ({!Tdp_lang.Stmt}) through a per-connection
    {!Tdp_lang.Session} — the same statements, outcomes and rendering
    as [odb repl].  The quoted response payload is the newline-joined
    {!Tdp_lang.Session.render} of each statement's outcome; it comes
    back as [err] iff any statement failed (the session, its views and
    its [let] bindings survive either way).  Reads see the open
    transaction's overlay (the branch head otherwise); mutating
    statements require an open transaction and otherwise fail with a
    TDP055 diagnostic.

    Sessions are stateful: a current branch (default [main]) and at
    most one open transaction.  Reads inside a transaction see its
    private overlay; reads outside see the branch head at the moment
    of the read.  Neither ever observes a partial commit.  A session
    that disconnects with a transaction still open aborts it — even
    when the disconnect lands between request and response (the write
    side raises [EPIPE]/[ECONNRESET] per session; [SIGPIPE] is ignored
    process-wide so a vanished TCP client can never kill the server).

    {1 Replica mode}

    A server started with [mode = Read_only _] (how [odb replicate]
    serves) refuses every mutating verb ([begin], [commit], [abort],
    [new], [set], [del], [schema], [fork]) with a structured [err] and
    answers [seq]/[lag] from the replica's shipping state.  On a
    read-write server, [seq] reports the store's own durable log
    positions and [lag] is always [0 0]. *)

type t

(** What a read-only server reports for the replica verbs. *)
type replica_info = {
  ri_seqs : unit -> int * int;  (** applied (wal seq, txn seq) *)
  ri_lag : unit -> int * int;  (** bytes behind the primary, (wal, txn) *)
}

type mode = Read_write | Read_only of replica_info

(** Bind, listen and start accepting on [sockaddr] ([ADDR_UNIX path]
    or [ADDR_INET]; a stale Unix-socket path is unlinked, and an INET
    port of 0 is resolved — see {!sockaddr}).  [domains] (default
    derived from [Domain.recommended_domain_count], at least 2) is the
    number of accepter domains.  [mode] (default [Read_write])
    selects replica mode — see above.
    @raise Unix.Unix_error when binding fails. *)
val start : ?domains:int -> ?mode:mode -> store:Mvcc.t -> Unix.sockaddr -> t

(** The bound address (with the real port for [ADDR_INET _ 0]). *)
val sockaddr : t -> Unix.sockaddr

(** Stop accepting, shut down every live session, join all domains and
    session threads, and remove a Unix socket path.  Idempotent.
    Open transactions of dropped sessions are aborted; the store
    itself stays usable (and is {e not} closed). *)
val stop : t -> unit

(** {1 Protocol internals}

    Exposed for [odb connect], the golden-transcript scripts and the
    test suite. *)

(** One request line against a session-free, store-free view of the
    grammar.  @raise Tdp_store.Dump.Parse_error on malformed input. *)
type request

val parse_request : string -> request

type session

(** A fresh session on [store]: branch [main], no open transaction.
    [mode] defaults to [Read_write]. *)
val session : ?mode:mode -> store:Mvcc.t -> unit -> session

(** Handle one request line, total: every failure becomes an
    [err "…"] response line. *)
val handle_line : session -> string -> string

(** {1 Generic listener}

    The accept/serve machinery above, decoupled from the store grammar
    so other line protocols (the {!Tdp_replica} OID-range router) can
    reuse it: one response line per request line, write-side
    disconnects contained per session. *)

type handler = {
  h_line : string -> string;  (** one request -> one response, total *)
  h_quit : string -> bool;  (** did this request end the session? *)
  h_close : unit -> unit;  (** teardown, runs exactly once per session *)
}

(** The handler {!start} serves: a fresh {!session} per connection,
    [quit] ends it, teardown aborts a still-open transaction. *)
val store_handler : ?mode:mode -> store:Mvcc.t -> unit -> handler

(** As {!start}, but serving [make_handler ()] (one call per accepted
    connection) instead of store sessions. *)
val start_handler :
  ?domains:int -> (unit -> handler) -> Unix.sockaddr -> t

(** {1 Client} *)

type client

(** @raise Unix.Unix_error when the connect fails. *)
val connect : Unix.sockaddr -> client

(** Send one request line, wait for the one response line.
    @raise End_of_file when the server hung up. *)
val request : client -> string -> string

val close_client : client -> unit
