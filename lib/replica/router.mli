(** OID-range router: fan scan-shaped reads across shard backends.

    A thin line-protocol front over N [odb serve]/[odb replicate]
    backends, each owning a disjoint, inclusive OID range.  Point
    reads ([get], [typeof]) are routed to the owning backend; the
    scan-shaped verbs fan out to every backend and combine:

    - [extent T] — each backend returns its extent as a sorted OID
      run; the router interleaves the runs with the store's own
      per-block merge idiom ([List.merge] over sorted runs) so the
      merged extent comes back in global OID order;
    - [count] — per-backend counts, summed.

    [hello], [ping], [quit] and the router-only [backends] verb are
    answered locally; everything else — every mutating verb included —
    is refused with a structured [err].  The router holds no store:
    it is read-only by construction. *)

module Server = Tdp_txn.Server

type backend = {
  b_name : string;  (** the spec it was parsed from; used in errors *)
  b_lo : int;
  b_hi : int;  (** inclusive; [max_int] for an open-ended range *)
  b_addr : Unix.sockaddr;
}

type t

(** Validate and order the backends: at least one, each range
    well-formed ([1 <= lo <= hi]), pairwise disjoint. *)
val make : backend list -> (t, string) result

(** Parse ["LO-HI=TARGET"] (or open-ended ["LO-=TARGET"]); a [TARGET]
    containing [:] is [HOST:PORT] (tcp), anything else a Unix-socket
    path.  The spec string becomes the backend's name. *)
val backend_of_spec : string -> (backend, string) result

val backends : t -> backend list

(** The backend whose range covers [oid], if any. *)
val owner : t -> int -> backend option

(** Merge sorted OID runs (one per backend) into one sorted run — the
    [Database.extent] per-block merge, lifted across processes.
    Exposed for the test suite. *)
val merge_runs : int list list -> int list

(** {1 Sessions}

    One router session per client connection: a persistent connection
    per backend, opened on first use, retried once when stale. *)

type session

val session : t -> session

(** One request line -> one response line, total: transport failures
    and backend errors come back as [err "backend NAME: …"]. *)
val handle_line : session -> string -> string

val close_session : session -> unit

(** {1 Serving} *)

(** A fresh {!session} per accepted connection, for
    {!Tdp_txn.Server.start_handler}. *)
val handler : t -> unit -> Server.handler

(** Serve the router on [sockaddr] via the shared listener
    ({!Tdp_txn.Server.start_handler}); stop with
    {!Tdp_txn.Server.stop}. *)
val start : ?domains:int -> t -> Unix.sockaddr -> Server.t
