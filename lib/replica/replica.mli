(** Log-shipping read replicas with failover.

    A primary's store directory ([snapshot.dump] + [wal.log] +
    [txn.log]) is already a replication feed: both logs are CRC'd,
    seq-numbered prefix-commit logs ({!Tdp_store.Wal}).  A replica
    bootstraps from the snapshot and then {e tails} the logs
    record-at-a-time — bounded memory, resumable offsets — applying:

    - [wal.log] records (plain ops, the [odb store] write path)
      directly to its [main] head, one published version per record;
    - [txn.log] records (server commits) as whole [begin..commit]
      brackets, mirroring {!Tdp_txn.Mvcc} replay: dangling brackets
      stay buffered and are never applied.

    Because a record applies only once its full line is present and
    checksummed, killing the feed at any byte offset leaves the
    replica at exactly the state [recover] would produce from the same
    prefix — the fault-injection suite checks every offset.

    {b Checkpoints.} A primary checkpoint truncates the logs in place.
    Three tells detect it: the file shrinking below the consumed
    offset, the snapshot's seq headers advancing past the applied
    position, and the log's first frame carrying a seq above the base
    the tails were opened against — the latter two catch in-place
    rewrites that leave the log at (or above) the old byte size, where
    the stale offset reads only silence or garbage.  All resolve by
    {e resync}: reload the base from the snapshot, re-open the tails
    from offset 0.

    {b Halts.} Corruption, unexplainable sequence gaps, structurally
    invalid brackets and unexpected replay exceptions all {e halt} the
    apply loop with a structured reason ({!status}).  A halted replica
    still serves reads at its last applied state; nothing in the apply
    loop raises a bare [Assert_failure].

    The one write path a replica assumes: the primary appends through
    {e either} [wal.log] (the CLI store) or [txn.log] (the server) at
    a time — the same assumption [recover] makes when it replays
    wal-then-txn. *)

open Tdp_core
module Database = Tdp_store.Database
module Wal = Tdp_store.Wal
module Mvcc = Tdp_txn.Mvcc

type t

type status = Running | Halted of string  (** structured, diagnosable *)

(** Open a replica over [primary_dir]: load the current snapshot and
    start tailing both logs.  [schema]/[load_schema] as in
    {!Tdp_store.Wal.recover}.
    @raise Database.Store_error when [primary_dir] is not a store
    directory, or on a damaged snapshot (snapshots are written
    atomically — a bad one is real damage, not a torn tail). *)
val open_ :
  ?load_schema:(string -> Schema.t) -> schema:Schema.t -> string -> t

(** Apply everything currently shippable (both logs, resyncing across
    checkpoints as needed); returns the number of records applied.
    Cheap when idle: an [fstat]-bounded read past each log's end plus
    bounded header probes (snapshot seq headers, first log frames) for
    the checkpoint tells — never O(database) bytes.  Never raises;
    failures halt ({!status}). *)
val poll : t -> int

val status : t -> status
val primary_dir : t -> string

(** The replica's {!Tdp_txn.Mvcc} store — hand it to
    {!Tdp_txn.Server.start} with [mode = Read_only] to serve. *)
val store : t -> Mvcc.t

(** Applied (wal seq, txn seq), snapshot-absorbed records included —
    what the [seq] protocol verb reports. *)
val applied_seqs : t -> int * int

(** Durable log bytes not yet consumed, (wal, txn) — what the [lag]
    protocol verb reports; (0, 0) when fully caught up. *)
val lag : t -> int * int

(** Times the replica reloaded its base from the primary snapshot. *)
val resyncs : t -> int

(** Close the tails and the store.  The replica is dead afterwards. *)
val close : t -> unit

(** {1 Persistence and failover} *)

(** Persist the applied state as a complete store directory (schema
    copy + atomic snapshot whose [wal-seq]/[txn-seq] headers are the
    replica's applied position) — what {!promote} judges, and what a
    promoted replica serves from.
    @raise Database.Store_error with more than one branch. *)
val save : t -> dir:string -> unit

type promotion = {
  replica_wal : int;
  replica_txn : int;
  primary_ckpt_wal : int;  (** wal-seq of the primary's last checkpoint *)
  primary_ckpt_txn : int;
  primary_last_wal : int;  (** last durable wal.log seq on the primary *)
  primary_last_txn : int;
}

type promote_error =
  | Diverged of string
      (** the replica's state is not a prefix of primary history:
          either it missed records a checkpoint folded away, or it
          claims records beyond the primary's durable tip *)
  | Lagging of string
      (** strictly behind the durable tip — promoting would discard
          committed records; force with [allow_lag] *)
  | Unpromotable of string  (** no saved replica state *)

val promote_error_message : promote_error -> string

(** Failover judgement: compare the saved replica state in
    [replica_dir] ({!save}) against [primary_dir]'s last checkpoint
    and durable log tips.  [Ok _] means [replica_dir] is exactly the
    primary's durable state (or a lag-forced prefix) and can be served
    as the new primary as-is — its snapshot headers make any fresh
    writers resume at the right sequence numbers.  Reads the primary's
    logs streamingly; never loads them whole. *)
val promote :
  ?allow_lag:bool ->
  replica_dir:string ->
  primary_dir:string ->
  unit ->
  (promotion, promote_error) result
