open Tdp_core
module Database = Tdp_store.Database
module Dump = Tdp_store.Dump
module Wal = Tdp_store.Wal
module Mvcc = Tdp_txn.Mvcc
module Txn_log = Tdp_txn.Txn_log
module Obs = Tdp_obs

(* A log-shipping read replica.

   The primary's store directory is already a replication feed: the
   snapshot is the base, and wal.log / txn.log are CRC'd, seq-numbered
   prefix-commit logs.  The replica bootstraps from the snapshot, then
   tails both logs record-at-a-time ({!Wal.tail_poll}) and applies:

   - wal.log records ([w], plain ops from the [odb store] write path)
     apply directly to the [main] head, one op per published version;
   - txn.log records ([t], server commits) apply as whole
     begin..commit brackets, exactly like {!Mvcc} replay — dangling
     brackets stay buffered until their commit arrives (or forever: a
     bracket the primary never committed is never applied).

   Shipping is torn-tail tolerant by construction: a record is applied
   only once its full line is present and checksummed, so killing the
   feed at any byte offset leaves the replica at the state [recover]
   would produce from the same prefix.

   Checkpoints on the primary truncate the logs in place; the tailer
   reports [Truncated] and the replica re-opens from offset 0.  If its
   applied position already covers the new snapshot it just keeps
   going (the fresh log resumes one seq past the checkpoint); if it
   fell behind — records it never shipped were folded into the
   snapshot — it reloads the whole base: a {e resync}.

   Everything that can go wrong — log corruption, sequence gaps that a
   resync cannot explain, a bracket that no longer applies, an
   unexpected exception — halts the apply loop with a structured,
   diagnosable reason.  A halted replica still serves reads at its
   last applied state; it never dies on a bare [Assert_failure]. *)

let fail fmt = Fmt.kstr (fun s -> raise (Database.Store_error s)) fmt

let m_applied = Obs.Metrics.counter "replica.applied"
let m_resyncs = Obs.Metrics.counter "replica.resyncs"
let m_apply_ns = Obs.Metrics.histogram "replica.apply_ns"

let snapshot_file = "snapshot.dump"
let wal_file = "wal.log"
let txn_file = "txn.log"
let schema_file = "schema.odb"

type status = Running | Halted of string

(* One buffered transaction bracket: branch, staged ops (reversed),
   and the seq of its begin record (the stable-state boundary). *)
type bracket = { br_branch : string; mutable br_ops : Database.op list; br_seq : int }

type t = {
  primary_dir : string;
  schema : Schema.t;
  load_schema : (string -> Schema.t) option;
  mutable store : Mvcc.t;
  mutable wal_tail : Database.op Wal.tail option;
  mutable txn_tail : Txn_log.record Wal.tail option;
  mutable applied_wal_seq : int;  (* includes records folded via snapshot *)
  mutable applied_txn_seq : int;  (* last txn record consumed, bracket or not *)
  (* seqs the snapshot had folded when the tails were (re)opened; the
     logs' first frames must carry base+1, so a higher first frame
     means the log was rewritten in place under us *)
  mutable base_wal_seq : int;
  mutable base_txn_seq : int;
  pending : (int, bracket) Hashtbl.t;
  mutable resyncs : int;
  mutable status : status;
  (* a gap right after (re)opening a tail usually means the primary
     checkpointed between our snapshot read and the tail open; one
     resync explains it, a second identical gap is real damage *)
  mutable gap_retry : bool;
}

let in_dir t f = Filename.concat t.primary_dir f

let read_file path =
  if Sys.file_exists path then
    Some (In_channel.with_open_bin path In_channel.input_all)
  else None

let halt t fmt =
  Fmt.kstr
    (fun reason -> if t.status = Running then t.status <- Halted reason)
    fmt

let halt_corruption t ~log (c : Wal.corruption) =
  halt t "%s corrupt at seq %d (offset %d): %s" log c.at_seq c.offset c.reason

(* ---- bootstrap and resync ------------------------------------------ *)

let close_tails t =
  (match t.wal_tail with Some tl -> Wal.tail_close tl | None -> ());
  (match t.txn_tail with Some tl -> Wal.tail_close tl | None -> ());
  t.wal_tail <- None;
  t.txn_tail <- None

let open_tails t =
  close_tails t;
  let open_one ~magic ~parse path =
    if Sys.file_exists path then Some (Wal.tail_open ~magic ~parse path) else None
  in
  t.wal_tail <-
    open_one ~magic:'w'
      ~parse:(fun payload ->
        match Wal.payload_of_string ~line:0 payload with
        | op -> Ok op
        | exception Dump.Parse_error { message; _ } -> Error message)
      (in_dir t wal_file);
  t.txn_tail <-
    open_one ~magic:Txn_log.magic
      ~parse:(fun payload ->
        match Txn_log.payload_of_string ~line:0 payload with
        | r -> Ok r
        | exception Dump.Parse_error { message; _ } -> Error message)
      (in_dir t txn_file)

(* (Re)load the base state from the primary's current snapshot.  The
   snapshot is written atomically ([Dump.save] renames), so we always
   read a complete one; its [wal-seq]/[txn-seq] headers tell us which
   log records it has already absorbed. *)
let load_base t =
  let snapshot = read_file (in_dir t snapshot_file) in
  let db = Database.create t.schema in
  let wal_seq, txn_seq =
    match snapshot with
    | None -> (0, 0)
    | Some text ->
        ignore (Dump.load_into db text);
        (Dump.wal_seq text, Dump.txn_seq text)
  in
  t.store <- Mvcc.of_database ?load_schema:t.load_schema db;
  t.applied_wal_seq <- wal_seq;
  t.applied_txn_seq <- txn_seq;
  t.base_wal_seq <- wal_seq;
  t.base_txn_seq <- txn_seq;
  Hashtbl.reset t.pending;
  open_tails t

(* Just the snapshot's cursor headers — they are the first lines of
   the dump, so a bounded read suffices; polls must never re-read
   O(database) bytes. *)
let snapshot_seqs t =
  match open_in_bin (in_dir t snapshot_file) with
  | exception Sys_error _ -> (0, 0)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let head = really_input_string ic (min 512 (in_channel_length ic)) in
          (Dump.wal_seq head, Dump.txn_seq head))

(* The seq of the frame at byte 0 of [path]: "MAGIC SEQ CRC PAYLOAD\n",
   so it sits between the first two spaces.  [None] when the file is
   missing, empty, or the header is still torn. *)
let first_frame_seq path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let chunk = really_input_string ic (min 64 (in_channel_length ic)) in
          match String.index_opt chunk ' ' with
          | None -> None
          | Some sp -> (
              let rest =
                String.sub chunk (sp + 1) (String.length chunk - sp - 1)
              in
              match String.index_opt rest ' ' with
              | None -> None
              | Some sp2 -> int_of_string_opt (String.sub rest 0 sp2)))

(* A truncating checkpoint rewrites each log in place, and the rewrite
   can leave the file at the very byte size the tail has consumed — no
   [Truncated], no new bytes, nothing for the tailer to see.  But the
   rewritten log's first frame carries (checkpointed seqs)+1, above the
   base+1 the tails were opened against: that jump is the tell. *)
let rewritten_under t =
  let jumped path base =
    match first_frame_seq (in_dir t path) with
    | Some seq -> seq > base + 1
    | None -> false
  in
  jumped wal_file t.base_wal_seq || jumped txn_file t.base_txn_seq

(* A resync regresses to the primary's durable snapshot, so it is only
   sound when that snapshot covers everything we have applied;
   otherwise the primary's history has a hole below our position and
   the halt is honest. *)
let resync t ~why =
  let snap_wal, snap_txn = snapshot_seqs t in
  if snap_wal < t.applied_wal_seq || snap_txn < t.applied_txn_seq then
    halt t
      "cannot resync (%s): primary snapshot covers wal %d txn %d but replica \
       already applied wal %d txn %d — primary history is gapped below the \
       replica's position"
      why snap_wal snap_txn t.applied_wal_seq t.applied_txn_seq
  else begin
    t.resyncs <- t.resyncs + 1;
    Obs.Metrics.incr m_resyncs;
    load_base t
  end

let open_ ?load_schema ~schema primary_dir =
  if not (Sys.file_exists primary_dir && Sys.is_directory primary_dir) then
    fail "no store directory %s" primary_dir;
  let t =
    { primary_dir;
      schema;
      load_schema;
      store = Mvcc.create ?load_schema schema;
      wal_tail = None;
      txn_tail = None;
      applied_wal_seq = 0;
      applied_txn_seq = 0;
      base_wal_seq = 0;
      base_txn_seq = 0;
      pending = Hashtbl.create 8;
      resyncs = 0;
      status = Running;
      gap_retry = false
    }
  in
  load_base t;
  t

(* ---- applying shipped records -------------------------------------- *)

let main = Mvcc.main_branch

(* Reasons mirror {!Wal}'s replay: expected failures carry their store
   message, anything else is reported, never re-raised. *)
let failure_reason = function
  | Database.Store_error m -> m
  | Dump.Parse_error { message; _ } -> message
  | Wal.Wal_error m -> m
  | Error.E err -> Error.message err
  | exn -> Fmt.str "unexpected exception during replay: %s" (Printexc.to_string exn)

let apply_wal_record t (e : Database.op Wal.framed) =
  match Mvcc.apply_op t.store (Mvcc.head t.store ~branch:main) e.fvalue with
  | snap ->
      ignore (Mvcc.publish t.store ~branch:main ~ops:[ e.fvalue ] snap);
      t.applied_wal_seq <- e.fseq;
      Obs.Metrics.incr m_applied;
      true
  | exception exn ->
      halt t "wal record %d does not apply: %s" e.fseq (failure_reason exn);
      false

(* Mirrors {!Mvcc}'s transaction-log replay, record by record:
   committed brackets publish, dangling ones wait, structural damage
   (commit without begin, fork of an existing branch, …) halts. *)
let apply_txn_record t (e : Txn_log.record Wal.framed) =
  let ok () =
    t.applied_txn_seq <- e.fseq;
    Obs.Metrics.incr m_applied;
    true
  in
  (match e.fvalue with
  | Txn_log.Begin { txid; _ }
  | Txn_log.Op { txid; _ }
  | Txn_log.Commit { txid }
  | Txn_log.Abort { txid; _ } ->
      Mvcc.note_txid t.store txid
  | Txn_log.Fork _ -> ());
  match e.fvalue with
  | Txn_log.Begin { txid; branch } ->
      if Hashtbl.mem t.pending txid then begin
        halt t "txn record %d: duplicate begin for txid %d" e.fseq txid;
        false
      end
      else if not (List.mem_assoc branch (Mvcc.branches t.store)) then begin
        halt t "txn record %d: begin on unknown branch %s" e.fseq branch;
        false
      end
      else begin
        Hashtbl.replace t.pending txid
          { br_branch = branch; br_ops = []; br_seq = e.fseq };
        ok ()
      end
  | Txn_log.Op { txid; op } -> (
      match Hashtbl.find_opt t.pending txid with
      | Some b ->
          b.br_ops <- op :: b.br_ops;
          ok ()
      | None ->
          halt t "txn record %d: op outside any open transaction (txid %d)"
            e.fseq txid;
          false)
  | Txn_log.Abort { txid; _ } ->
      Hashtbl.remove t.pending txid;
      ok ()
  | Txn_log.Fork { branch; from_ } -> (
      match Mvcc.fork t.store ~from_ ~branch with
      | _ -> ok ()
      | exception exn ->
          halt t "txn record %d: fork does not apply: %s" e.fseq
            (failure_reason exn);
          false)
  | Txn_log.Commit { txid } -> (
      match Hashtbl.find_opt t.pending txid with
      | None ->
          halt t "txn record %d: commit without begin (txid %d)" e.fseq txid;
          false
      | Some b -> (
          Hashtbl.remove t.pending txid;
          let ops = List.rev b.br_ops in
          match
            List.fold_left
              (fun snap op -> Mvcc.apply_op t.store snap op)
              (Mvcc.head t.store ~branch:b.br_branch)
              ops
          with
          | snap ->
              ignore (Mvcc.publish t.store ~branch:b.br_branch ~ops snap);
              ok ()
          | exception exn ->
              halt t "txn bracket at seq %d no longer applies: %s" b.br_seq
                (failure_reason exn);
              false))

(* ---- the shipping loop --------------------------------------------- *)

(* Drain one tail.  [`Drained n] caught up (n records applied);
   [`Truncated] the file shrank below our offset; [`Corrupt _] the
   bytes at our offset do not decode — both may mean the primary
   checkpointed under us, so the verdict is [poll]'s, not ours.  Gap
   handling: a record above the expected seq right after a (re)open is
   a checkpoint race, explained by one resync; the same gap twice is
   damage. *)
let drain t ~log ~applied_seq ~apply tail_of =
  let rec go n =
    match tail_of t with
    | None -> `Drained n
    | Some tl -> (
        if t.status <> Running then `Drained n
        else
          match Wal.tail_poll tl with
          | Wal.Wait -> `Drained n
          | Wal.Truncated -> `Truncated
          | Wal.Halted c -> `Corrupt (log, c)
          | Wal.Shipped e ->
              let expected = applied_seq t + 1 in
              if e.Wal.fseq <= applied_seq t then go n (* already absorbed *)
              else if e.Wal.fseq > expected then
                if t.gap_retry then begin
                  halt t
                    "%s sequence gap: replica applied to %d, log resumes at %d"
                    log (applied_seq t) e.Wal.fseq;
                  `Drained n
                end
                else `Gap
              else if apply t e then begin
                t.gap_retry <- false;
                go (n + 1)
              end
              else `Drained n)
  in
  go 0

let drain_wal t =
  drain t ~log:wal_file
    ~applied_seq:(fun t -> t.applied_wal_seq)
    ~apply:apply_wal_record
    (fun t -> t.wal_tail)

let drain_txn t =
  drain t ~log:txn_file
    ~applied_seq:(fun t -> t.applied_txn_seq)
    ~apply:apply_txn_record
    (fun t -> t.txn_tail)

let poll t =
  match t.status with
  | Halted _ -> 0
  | Running ->
      Obs.Metrics.time m_apply_ns (fun () ->
          (* The snapshot headers advancing past our position are the
             universal checkpoint tell.  The tailers alone cannot be:
             an in-place rewrite that leaves a log at (or above) the
             consumed byte size never reports [Truncated] — the stale
             offset just reads silence or garbage. *)
          let checkpointed () =
            let snap_wal, snap_txn = snapshot_seqs t in
            snap_wal > t.applied_wal_seq || snap_txn > t.applied_txn_seq
          in
          let rec round total budget =
            if budget = 0 || t.status <> Running then total
            else
              let resync_round applied ~why =
                t.gap_retry <- true;
                let before = (t.applied_wal_seq, t.applied_txn_seq) in
                resync t ~why;
                (* a resync that moved us forward has explained the
                   gap; one that did not gets no second chance *)
                if (t.applied_wal_seq, t.applied_txn_seq) > before then
                  t.gap_retry <- false;
                round (total + applied) (budget - 1)
              in
              match (drain_wal t, drain_txn t) with
              | `Drained a, `Drained b ->
                  if checkpointed () then
                    resync_round (a + b)
                      ~why:"snapshot advanced past the tailed logs"
                  else if rewritten_under t then
                    resync_round (a + b)
                      ~why:"log rewritten in place under the tail"
                  else
                    (* logs may have grown while we were applying, but
                       the next poll will pick that up *)
                    total + a + b
              | (`Truncated | `Gap), _ | _, (`Truncated | `Gap) ->
                  resync_round 0 ~why:"checkpoint detected while tailing"
              | `Corrupt (log, c), _ | _, `Corrupt (log, c) ->
                  (* garbage at a stale offset after an in-place log
                     rewrite is a checkpoint artifact, not damage *)
                  if checkpointed () || rewritten_under t then
                    resync_round 0 ~why:"checkpoint under a corrupt read"
                  else begin
                    halt_corruption t ~log c;
                    total
                  end
          in
          round 0 4)

let store t = t.store
let status t = t.status
let primary_dir t = t.primary_dir
let applied_seqs t = (t.applied_wal_seq, t.applied_txn_seq)
let resyncs t = t.resyncs

(* Bytes of durable log the replica has not yet consumed — what the
   [lag] protocol verb reports.  A partial trailing record and
   buffered open brackets have been read but not applied; they show up
   in {!applied_seqs}/{!status}, not here. *)
let lag t =
  let behind path tail =
    let size = try (Unix.stat path).st_size with Unix.Unix_error _ -> 0 in
    match tail with
    | None -> size
    | Some tl -> max 0 (size - Wal.tail_offset tl)
  in
  (behind (in_dir t wal_file) t.wal_tail, behind (in_dir t txn_file) t.txn_tail)

(* The txn seq the replica could restart from: everything up to it is
   applied and no open bracket spans it. *)
let stable_txn_seq t =
  Hashtbl.fold (fun _ b acc -> min acc (b.br_seq - 1)) t.pending t.applied_txn_seq

let close t =
  close_tails t;
  Mvcc.close t.store

(* ---- persistence and promotion ------------------------------------- *)

(* Persist the replica's applied state as a complete store directory:
   schema copy + atomic snapshot whose [wal-seq]/[txn-seq] headers are
   the replica's applied position.  That directory is what [promote]
   judges and what a promoted replica serves from. *)
let save t ~dir =
  (match Mvcc.branches t.store with
  | [ _ ] -> ()
  | bs -> fail "replica save requires a single branch (%d exist)" (List.length bs));
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  (match read_file (in_dir t schema_file) with
  | Some src ->
      let oc = open_out_bin (Filename.concat dir schema_file) in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc src)
  | None -> ());
  Dump.save ~wal_seq:t.applied_wal_seq ~txn_seq:(stable_txn_seq t)
    ~path:(Filename.concat dir snapshot_file)
    (Mvcc.to_database (Mvcc.head t.store ~branch:main))

type promotion = {
  replica_wal : int;
  replica_txn : int;
  primary_ckpt_wal : int;
  primary_ckpt_txn : int;
  primary_last_wal : int;
  primary_last_txn : int;
}

type promote_error =
  | Diverged of string  (** replica state is not a prefix of primary history *)
  | Lagging of string  (** behind the durable primary tip; force with allow_lag *)
  | Unpromotable of string  (** missing replica state / unreadable primary *)

let promote_error_message = function
  | Diverged m | Lagging m | Unpromotable m -> m

(* Last durable seq in a log, streamed (never O(file) memory): the
   checkpoint seq when the log is empty or wholly absorbed. *)
let last_seq_of_log ~magic ~parse ~ckpt path =
  if not (Sys.file_exists path) then ckpt
  else begin
    let tl = Wal.tail_open ~magic ~parse path in
    Fun.protect
      ~finally:(fun () -> Wal.tail_close tl)
      (fun () ->
        let rec go last =
          match Wal.tail_poll tl with
          | Wal.Shipped e -> go e.Wal.fseq
          | Wal.Wait | Wal.Truncated | Wal.Halted _ -> last
        in
        go ckpt)
  end

(* Failover judgement: compare the replica's applied position against
   the primary's last checkpoint and durable log tips.

   - applied < checkpoint: records the replica never shipped were
     folded into the primary's snapshot — the replica's state is not a
     prefix of primary history: {e diverged}, refused.
   - applied > durable tip: the replica claims records the primary
     does not have — phantom history: {e diverged}, refused.
   - applied < durable tip: an honest {e lag}; promoting would discard
     committed records, so it is refused unless [allow_lag].
   - otherwise the replica is exactly the primary's durable state and
     its saved directory can serve as the new primary as-is. *)
let promote ?(allow_lag = false) ~replica_dir ~primary_dir () =
  match read_file (Filename.concat replica_dir snapshot_file) with
  | None ->
      Error
        (Unpromotable
           (Fmt.str "no replica state at %s/%s (run replicate with --save, or save)"
              replica_dir snapshot_file))
  | Some replica_snap -> (
      let replica_wal = Dump.wal_seq replica_snap in
      let replica_txn = Dump.txn_seq replica_snap in
      match read_file (Filename.concat primary_dir snapshot_file) with
      | exception Sys_error m -> Error (Unpromotable m)
      | primary_snap ->
          let ckpt_wal, ckpt_txn =
            match primary_snap with
            | None -> (0, 0)
            | Some s -> (Dump.wal_seq s, Dump.txn_seq s)
          in
          let parse_wal payload =
            match Wal.payload_of_string ~line:0 payload with
            | op -> Ok op
            | exception Dump.Parse_error { message; _ } -> Error message
          in
          let parse_txn payload =
            match Txn_log.payload_of_string ~line:0 payload with
            | r -> Ok r
            | exception Dump.Parse_error { message; _ } -> Error message
          in
          let last_wal =
            last_seq_of_log ~magic:'w' ~parse:parse_wal ~ckpt:ckpt_wal
              (Filename.concat primary_dir wal_file)
          in
          let last_txn =
            last_seq_of_log ~magic:Txn_log.magic ~parse:parse_txn ~ckpt:ckpt_txn
              (Filename.concat primary_dir txn_file)
          in
          let p =
            { replica_wal;
              replica_txn;
              primary_ckpt_wal = ckpt_wal;
              primary_ckpt_txn = ckpt_txn;
              primary_last_wal = last_wal;
              primary_last_txn = last_txn
            }
          in
          if replica_wal < ckpt_wal || replica_txn < ckpt_txn then
            Error
              (Diverged
                 (Fmt.str
                    "replica applied wal %d txn %d but the primary's last \
                     checkpoint folded wal %d txn %d — records the replica \
                     never shipped are gone from the logs"
                    replica_wal replica_txn ckpt_wal ckpt_txn))
          else if replica_wal > last_wal || replica_txn > last_txn then
            Error
              (Diverged
                 (Fmt.str
                    "replica applied wal %d txn %d beyond the primary's \
                     durable wal %d txn %d — phantom records"
                    replica_wal replica_txn last_wal last_txn))
          else if
            (replica_wal < last_wal || replica_txn < last_txn) && not allow_lag
          then
            Error
              (Lagging
                 (Fmt.str
                    "replica applied wal %d txn %d lags the primary's durable \
                     wal %d txn %d — promoting now would discard committed \
                     records (use allow_lag to force)"
                    replica_wal replica_txn last_wal last_txn))
          else Ok p)
