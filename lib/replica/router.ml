module Server = Tdp_txn.Server
module Dump = Tdp_store.Dump
module Obs = Tdp_obs

(* OID-range router: a thin line-protocol front that fans the
   scan-shaped read verbs (extent, count) across N backends and routes
   the point reads (get, typeof) to the one backend whose OID range
   covers the argument.

   The fan-out merge is the store's own extent idiom: each backend
   returns its extent as a sorted OID run (Database.extent concatenates
   per-block live runs with [List.merge Oid.compare]), and the router
   folds the per-backend runs through the same merge.  Ranges are
   disjoint, so the merge is a pure interleave — no dedup pass.

   Sessions hold one persistent connection per backend, opened on
   first use.  A stale connection (backend restarted between requests)
   is retried once on a fresh socket before the error surfaces. *)

let c_fanout = Obs.Metrics.counter "router.fanouts"
let c_routed = Obs.Metrics.counter "router.routed"

type backend = {
  b_name : string;  (** the spec it was parsed from; used in errors *)
  b_lo : int;
  b_hi : int;  (** inclusive; [max_int] for an open-ended range *)
  b_addr : Unix.sockaddr;
}

type t = { backends : backend list (* sorted by [b_lo], disjoint *) }

let backends t = t.backends

let pp_range ppf b =
  if b.b_hi = max_int then Fmt.pf ppf "%d-" b.b_lo
  else Fmt.pf ppf "%d-%d" b.b_lo b.b_hi

let make backends =
  match backends with
  | [] -> Error "router: no backends"
  | _ -> (
      let sorted =
        List.sort (fun a b -> compare (a.b_lo, a.b_hi) (b.b_lo, b.b_hi)) backends
      in
      let rec check = function
        | [] -> Ok { backends = sorted }
        | b :: rest ->
            if b.b_lo < 1 || b.b_lo > b.b_hi then
              Error (Fmt.str "router: bad range %a for %s" pp_range b b.b_name)
            else
              match rest with
              | next :: _ when next.b_lo <= b.b_hi ->
                  Error
                    (Fmt.str "router: ranges %a (%s) and %a (%s) overlap"
                       pp_range b b.b_name pp_range next next.b_name)
              | _ -> check rest
      in
      check sorted)

(* "LO-HI=TARGET" | "LO-=TARGET"; TARGET is HOST:PORT (tcp) or a
   Unix-socket path.  The whole spec doubles as the backend's name. *)
let backend_of_spec spec =
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  match String.index_opt spec '=' with
  | None -> fail "backend spec %S: expected LO-HI=TARGET" spec
  | Some eq -> (
      let range = String.sub spec 0 eq in
      let target = String.sub spec (eq + 1) (String.length spec - eq - 1) in
      if target = "" then fail "backend spec %S: empty target" spec
      else
        match String.index_opt range '-' with
        | None -> fail "backend spec %S: range must be LO-HI or LO-" spec
        | Some dash -> (
            let lo = String.sub range 0 dash in
            let hi = String.sub range (dash + 1) (String.length range - dash - 1) in
            let addr =
              match String.rindex_opt target ':' with
              | None -> Some (Unix.ADDR_UNIX target)
              | Some colon -> (
                  let host = String.sub target 0 colon in
                  let port =
                    String.sub target (colon + 1)
                      (String.length target - colon - 1)
                  in
                  match int_of_string_opt port with
                  | None -> None
                  | Some port ->
                      let ip =
                        match Unix.inet_addr_of_string host with
                        | ip -> Some ip
                        | exception Failure _ -> (
                            match Unix.gethostbyname host with
                            | { Unix.h_addr_list = [||]; _ } -> None
                            | h -> Some h.Unix.h_addr_list.(0)
                            | exception Not_found -> None)
                      in
                      Option.map (fun ip -> Unix.ADDR_INET (ip, port)) ip)
            in
            match (int_of_string_opt lo, hi, addr) with
            | None, _, _ -> fail "backend spec %S: bad lower bound %S" spec lo
            | _, _, None -> fail "backend spec %S: bad target %S" spec target
            | Some lo, "", Some addr ->
                Ok { b_name = spec; b_lo = lo; b_hi = max_int; b_addr = addr }
            | Some lo, hi_s, Some addr -> (
                match int_of_string_opt hi_s with
                | None -> fail "backend spec %S: bad upper bound %S" spec hi_s
                | Some hi ->
                    Ok { b_name = spec; b_lo = lo; b_hi = hi; b_addr = addr })))

let owner t oid =
  List.find_opt (fun b -> b.b_lo <= oid && oid <= b.b_hi) t.backends

(* Merge sorted OID runs, one per backend — the extent idiom from
   Database.extent lifted across processes.  Runs come from disjoint
   ranges, so every element survives. *)
let merge_runs runs = List.fold_left (List.merge compare) [] runs

(* ---- sessions ------------------------------------------------------- *)

type session = {
  router : t;
  conns : (string, Server.client) Hashtbl.t;  (* by b_name, lazy *)
}

let session router = { router; conns = Hashtbl.create 8 }

let close_session s =
  Hashtbl.iter (fun _ c -> try Server.close_client c with _ -> ()) s.conns;
  Hashtbl.reset s.conns

let drop_conn s b =
  match Hashtbl.find_opt s.conns b.b_name with
  | None -> ()
  | Some c ->
      Hashtbl.remove s.conns b.b_name;
      (try Server.close_client c with _ -> ())

let conn s b =
  match Hashtbl.find_opt s.conns b.b_name with
  | Some c -> c
  | None ->
      let c = Server.connect b.b_addr in
      Hashtbl.replace s.conns b.b_name c;
      c

(* One request against one backend; a dead persistent connection is
   retried once on a fresh socket before the failure surfaces. *)
let request_backend s b line =
  let attempt () = Server.request (conn s b) line in
  let describe = function
    | End_of_file -> "connection closed"
    | Unix.Unix_error (e, _, _) -> Unix.error_message e
    | Sys_error m -> m
    | exn -> Printexc.to_string exn
  in
  match attempt () with
  | resp -> Ok resp
  | exception (End_of_file | Unix.Unix_error _ | Sys_error _) -> (
      drop_conn s b;
      match attempt () with
      | resp -> Ok resp
      | exception ((End_of_file | Unix.Unix_error _ | Sys_error _) as exn) ->
          drop_conn s b;
          Error (Fmt.str "backend %s unreachable: %s" b.b_name (describe exn)))

(* ---- the protocol --------------------------------------------------- *)

let err fmt = Fmt.kstr (fun m -> Fmt.str "err %S" m) fmt

let is_ok resp = String.length resp >= 2 && String.sub resp 0 2 = "ok"

(* "ok N #a #b ..." -> sorted oid run *)
let run_of_extent_response b resp =
  match String.split_on_char ' ' resp with
  | "ok" :: _count :: oids ->
      let parse tok =
        if String.length tok > 1 && tok.[0] = '#' then
          int_of_string_opt (String.sub tok 1 (String.length tok - 1))
        else None
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | tok :: rest -> (
            match parse tok with
            | Some oid -> go (oid :: acc) rest
            | None ->
                Error
                  (Fmt.str "backend %s: malformed extent response %S" b.b_name
                     resp))
      in
      go [] oids
  | _ -> Error (Fmt.str "backend %s: malformed extent response %S" b.b_name resp)

(* Fan [line] out to every backend; [fold] combines the ok-responses.
   The first failure — transport or a backend [err] — wins, with the
   backend named. *)
let fan_out s line fold init =
  Obs.Metrics.incr c_fanout;
  let rec go acc = function
    | [] -> Ok acc
    | b :: rest -> (
        match request_backend s b line with
        | Error m -> Error m
        | Ok resp when not (is_ok resp) ->
            Error (Fmt.str "backend %s: %s" b.b_name resp)
        | Ok resp -> (
            match fold acc b resp with
            | Ok acc -> go acc rest
            | Error _ as e -> e))
  in
  go init s.router.backends

let route s oid line =
  Obs.Metrics.incr c_routed;
  match owner s.router oid with
  | None -> err "no backend owns #%d" oid
  | Some b -> (
      match request_backend s b line with
      | Ok resp -> resp
      | Error m -> err "%s" m)

let oid_of_token tok =
  if String.length tok > 1 && tok.[0] = '#' then
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some i when i >= 1 -> Some i
    | _ -> None
  else None

let handle_line s line =
  match Dump.tokens 0 line with
  | exception Dump.Parse_error { message; _ } -> err "%s" message
  | [ "hello" ] ->
      Fmt.str "ok odb-router %d backends" (List.length s.router.backends)
  | [ "ping" ] -> "ok pong"
  | [ "quit" ] | [ "bye" ] -> "ok bye"
  | [ "backends" ] ->
      (* names are the LO-HI=TARGET specs, so each token is
         self-describing *)
      Fmt.str "ok %d%s"
        (List.length s.router.backends)
        (String.concat ""
           (List.map (fun b -> " " ^ b.b_name) s.router.backends))
  | [ "get"; oid; _ ] | [ "typeof"; oid ] -> (
      match oid_of_token oid with
      | None -> err "expected #<oid>, got %s" oid
      | Some oid -> route s oid line)
  | [ "extent"; _ ] -> (
      match
        fan_out s line
          (fun runs b resp ->
            Result.map (fun run -> run :: runs) (run_of_extent_response b resp))
          []
      with
      | Error m -> err "%s" m
      | Ok runs ->
          let merged = merge_runs (List.rev runs) in
          Fmt.str "ok %d%s" (List.length merged)
            (String.concat "" (List.map (Fmt.str " #%d") merged)))
  | [ "count" ] -> (
      match
        fan_out s line
          (fun total b resp ->
            match String.split_on_char ' ' resp with
            | [ "ok"; n ] -> (
                match int_of_string_opt n with
                | Some n -> Ok (total + n)
                | None ->
                    Error
                      (Fmt.str "backend %s: malformed count response %S"
                         b.b_name resp))
            | _ ->
                Error
                  (Fmt.str "backend %s: malformed count response %S" b.b_name
                     resp))
          0
      with
      | Error m -> err "%s" m
      | Ok total -> Fmt.str "ok %d" total)
  | verb :: _ ->
      err
        "router: %s not supported (read-only fan-out: hello ping quit backends \
         get typeof extent count)"
        verb
  | [] -> err "empty request"

let handler router () =
  let s = session router in
  { Server.h_line = (fun line -> handle_line s line);
    h_quit = (fun line -> line = "quit" || line = "bye");
    h_close = (fun () -> close_session s)
  }

let start ?domains router sockaddr =
  Server.start_handler ?domains (handler router) sockaddr
