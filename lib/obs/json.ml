(* Minimal JSON: just enough for the metrics envelope, the trace sink,
   and the odb CLI's --json output.  Not a general-purpose library —
   no streaming, no number-precision promises beyond OCaml floats —
   but total: [parse] never raises on arbitrary bytes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_nan f then "null" (* JSON has no NaN; observability data degrades to null *)
  else if f = Float.infinity || f = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"

let rec emit buf ~indent ~level v =
  let nl pad =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * pad) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          emit buf ~indent ~level:(level + 1) item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          emit buf ~indent ~level:(level + 1) item)
        fields;
      nl level;
      Buffer.add_char buf '}'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  emit buf ~indent:pretty ~level:0 v;
  Buffer.contents buf

(* ---- parsing ------------------------------------------------------- *)

exception Bad of string

let parse_exn src =
  let len = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < len then Some src.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let n = String.length word in
    if !pos + n <= len && String.sub src !pos n = word then begin
      pos := !pos + n;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* UTF-8 encode a code point parsed from \uXXXX; surrogate pairs are
     not recombined — observability payloads never emit them. *)
  let add_code_point buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        let c = src.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= len then fail "unterminated escape";
            let e = src.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char buf e;
                go ()
            | 'n' ->
                Buffer.add_char buf '\n';
                go ()
            | 'r' ->
                Buffer.add_char buf '\r';
                go ()
            | 't' ->
                Buffer.add_char buf '\t';
                go ()
            | 'b' ->
                Buffer.add_char buf '\b';
                go ()
            | 'f' ->
                Buffer.add_char buf '\012';
                go ()
            | 'u' ->
                if !pos + 4 > len then fail "truncated \\u escape";
                let hex = String.sub src !pos 4 in
                pos := !pos + 4;
                (match int_of_string_opt ("0x" ^ hex) with
                | Some cp -> add_code_point buf cp
                | None -> fail "bad \\u escape");
                go ()
            | _ -> fail "unknown escape")
        | c -> (
            Buffer.add_char buf c;
            go ())
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char src.[!pos] do
      advance ()
    done;
    let s = String.sub src start (!pos - start) in
    let is_float =
      String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    in
    if is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt s with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing bytes";
  v

let parse src =
  match parse_exn src with v -> Ok v | exception Bad msg -> Error msg

(* ---- accessors ----------------------------------------------------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
