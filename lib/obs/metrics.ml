(* A process-wide metrics registry: monotonic counters, gauges, and
   log-scale histogram timers.

   Design constraints (see metrics.mli):

   - zero-cost when disabled: every recording call is gated on one
     mutable bool, and [time] calls the thunk directly without taking a
     clock sample;
   - dependency-light: stdlib + Unix only (the clock);
   - instruments register themselves at module-initialization time
     ([counter]/[histogram] are find-or-create), so a snapshot always
     carries the full key set of the linked instrumentation even when
     nothing was recorded — consumers can rely on the keys existing. *)

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

(* Fixed log-scale buckets: bucket [i] covers [10^(i/8), 10^((i+1)/8))
   nanoseconds (a factor of ~1.33 per bucket), with bucket 0 absorbing
   everything below 1 ns.  160 buckets span 10^20 ns ≈ 3000 years,
   so no observable duration overflows the top bucket in practice. *)
let bucket_count = 160
let buckets_per_decade = 8.

type histogram = {
  h_name : string;
  buckets : int array;
  mutable h_count : int;
  mutable sum_ns : float;
  mutable max_ns : float;
}

type instrument = C of counter | G of gauge | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let on = ref false

let enable () = on := true
let disable () = on := false
let is_on () = !on

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name make select =
  match Hashtbl.find_opt registry name with
  | Some i -> (
      match select i with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Tdp_obs.Metrics: %s already registered as a %s"
               name (kind_name i)))
  | None ->
      let v, i = make () in
      Hashtbl.replace registry name i;
      v

let counter name =
  register name
    (fun () ->
      let c = { c_name = name; count = 0 } in
      (c, C c))
    (function C c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = { g_name = name; value = 0. } in
      (g, G g))
    (function G g -> Some g | _ -> None)

let histogram name =
  register name
    (fun () ->
      let h =
        { h_name = name;
          buckets = Array.make bucket_count 0;
          h_count = 0;
          sum_ns = 0.;
          max_ns = 0.
        }
      in
      (h, H h))
    (function H h -> Some h | _ -> None)

(* ---- recording ----------------------------------------------------- *)

let incr c = if !on then c.count <- c.count + 1

let add c n =
  if n < 0 then
    invalid_arg
      (Printf.sprintf "Tdp_obs.Metrics.add: counter %s is monotonic (add %d)"
         c.c_name n);
  if !on then c.count <- c.count + n

let counter_value c = c.count
let set_gauge g v = if !on then g.value <- v
let max_gauge g v = if !on && v > g.value then g.value <- v
let gauge_value g = g.value

let bucket_of_ns v =
  if not (v >= 1.) (* also catches NaN *) then 0
  else
    min (bucket_count - 1) (int_of_float (buckets_per_decade *. log10 v))

(* Representative value of a bucket: its geometric midpoint. *)
let bucket_mid i = Float.pow 10. ((float_of_int i +. 0.5) /. buckets_per_decade)

let observe h v =
  if !on then begin
    let v = if v < 0. then 0. else v in
    let i = bucket_of_ns v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.h_count <- h.h_count + 1;
    h.sum_ns <- h.sum_ns +. v;
    if v > h.max_ns then h.max_ns <- v
  end

let now_ns () = Unix.gettimeofday () *. 1e9

let time h f =
  if not !on then f ()
  else begin
    let t0 = now_ns () in
    match f () with
    | v ->
        observe h (now_ns () -. t0);
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        observe h (now_ns () -. t0);
        Printexc.raise_with_backtrace e bt
  end

(* ---- snapshots ----------------------------------------------------- *)

type hist_snapshot = {
  count : int;
  sum_ns : float;
  max_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

(* q-th percentile from the bucket counts: the geometric midpoint of
   the bucket holding the ceil(q*count)-th observation, clamped to the
   exact maximum seen (the top of the distribution is always exact). *)
let percentile h q =
  if h.h_count = 0 then 0.
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count)))
    in
    let rec walk i cum =
      if i >= bucket_count then h.max_ns
      else
        let cum = cum + h.buckets.(i) in
        if cum >= rank then Stdlib.min (bucket_mid i) h.max_ns
        else walk (i + 1) cum
    in
    walk 0 0
  end

let hist_snapshot h =
  { count = h.h_count;
    sum_ns = h.sum_ns;
    max_ns = h.max_ns;
    p50_ns = percentile h 0.50;
    p95_ns = percentile h 0.95;
    p99_ns = percentile h 0.99
  }

let snapshot () =
  let by_name f = List.sort (fun (a, _) (b, _) -> String.compare a b) f in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name i ->
      match i with
      | C c -> counters := (name, c.count) :: !counters
      | G g -> gauges := (name, g.value) :: !gauges
      | H h -> histograms := (name, hist_snapshot h) :: !histograms)
    registry;
  { counters = by_name !counters;
    gauges = by_name !gauges;
    histograms = by_name !histograms
  }

let reset () =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c -> c.count <- 0
      | G g -> g.value <- 0.
      | H h ->
          Array.fill h.buckets 0 bucket_count 0;
          h.h_count <- 0;
          h.sum_ns <- 0.;
          h.max_ns <- 0.)
    registry

(* ---- envelope ------------------------------------------------------ *)

let hist_to_json (s : hist_snapshot) =
  Json.Obj
    [ ("count", Json.Int s.count);
      ("sum_ns", Json.Float s.sum_ns);
      ("max_ns", Json.Float s.max_ns);
      ("p50_ns", Json.Float s.p50_ns);
      ("p95_ns", Json.Float s.p95_ns);
      ("p99_ns", Json.Float s.p99_ns)
    ]

let to_json (s : snapshot) =
  Json.Obj
    [ ("schema_version", Json.Int 1);
      ("suite", Json.String "tdp-metrics");
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) s.histograms) )
    ]

let of_json j =
  let fields k =
    match Json.member k j with Some (Json.Obj fs) -> fs | _ -> []
  in
  let num j = Option.value (Json.to_float j) ~default:0. in
  let counters =
    List.filter_map
      (fun (k, v) -> Option.map (fun i -> (k, i)) (Json.to_int v))
      (fields "counters")
  in
  let gauges = List.map (fun (k, v) -> (k, num v)) (fields "gauges") in
  let histograms =
    List.map
      (fun (k, v) ->
        let f field =
          match Json.member field v with Some x -> num x | None -> 0.
        in
        ( k,
          { count =
              (match Option.bind (Json.member "count" v) Json.to_int with
              | Some n -> n
              | None -> 0);
            sum_ns = f "sum_ns";
            max_ns = f "max_ns";
            p50_ns = f "p50_ns";
            p95_ns = f "p95_ns";
            p99_ns = f "p99_ns"
          } ))
      (fields "histograms")
  in
  let by_name f = List.sort (fun (a, _) (b, _) -> String.compare a b) f in
  { counters = by_name counters;
    gauges = by_name gauges;
    histograms = by_name histograms
  }

(* ---- pretty-printing ----------------------------------------------- *)

let pp_ns ppf v =
  if v < 1e3 then Format.fprintf ppf "%7.0fns" v
  else if v < 1e6 then Format.fprintf ppf "%7.1fus" (v /. 1e3)
  else if v < 1e9 then Format.fprintf ppf "%7.2fms" (v /. 1e6)
  else Format.fprintf ppf "%7.3fs " (v /. 1e9)

let pp ppf (s : snapshot) =
  let width =
    List.fold_left
      (fun w (k, _) -> Stdlib.max w (String.length k))
      24
      (s.counters
      @ List.map (fun (k, _) -> (k, 0)) s.gauges
      @ List.map (fun (k, _) -> (k, 0)) s.histograms)
  in
  if s.counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (k, v) -> Format.fprintf ppf "  %-*s %10d@." width k v)
      s.counters
  end;
  if s.gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (k, v) -> Format.fprintf ppf "  %-*s %10g@." width k v)
      s.gauges
  end;
  if s.histograms <> [] then begin
    Format.fprintf ppf "histograms:%s  %8s  %9s  %9s  %9s  %9s  %9s@."
      (String.make (Stdlib.max 0 (width - 9)) ' ')
      "count" "p50" "p95" "p99" "max" "total";
    List.iter
      (fun (k, h) ->
        Format.fprintf ppf "  %-*s %8d  %a  %a  %a  %a  %a@." width k h.count
          pp_ns h.p50_ns pp_ns h.p95_ns pp_ns h.p99_ns pp_ns h.max_ns pp_ns
          h.sum_ns)
      s.histograms
  end;
  if s.counters = [] && s.gauges = [] && s.histograms = [] then
    Format.fprintf ppf "no metrics recorded.@."
