(** Minimal JSON values — the wire format of the observability layer.

    Just enough for the metrics envelope, the JSON-lines trace sink and
    the [odb --json] envelopes: construction, compact or indented
    printing, and a total parser ([parse] returns [Error] instead of
    raising on arbitrary bytes).  Numbers are OCaml [int]/[float];
    non-finite floats print as [null] (JSON has no NaN). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact by default; [~pretty:true] indents with two spaces. *)
val to_string : ?pretty:bool -> t -> string

(** Total on arbitrary input. *)
val parse : string -> (t, string) result

(** Field of an object ([None] on missing field or non-object). *)
val member : string -> t -> t option

(** Numeric coercion: [Int] and [Float] both convert. *)
val to_float : t -> float option

val to_int : t -> int option
val to_str : t -> string option
