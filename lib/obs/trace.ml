(* Structured tracing.  One process-wide current-span stack (matching
   the single-threaded runtime; see the thread-safety note in
   metrics.mli) and one sink.  Disabled — the null sink — means
   [with_span] is one boolean test plus the call. *)

let sink = ref Sink.null
let on = ref false

let set_sink s =
  sink := s;
  on := s.Sink.kind <> "null"

let current_sink () = !sink
let enabled () = !on

let close () =
  !sink.Sink.close ();
  sink := Sink.null;
  on := false

(* Head = innermost open span. *)
let stack : (int * string) list ref = ref []
let next_id = ref 0

let current_id () = match !stack with [] -> None | (id, _) :: _ -> Some id
let current_name () = match !stack with [] -> None | (_, n) :: _ -> Some n

let with_span ?(attrs = []) name f =
  if not !on then f ()
  else begin
    incr next_id;
    let id = !next_id in
    let parent = current_id () in
    let saved = !stack in
    stack := (id, name) :: saved;
    let t0 = Metrics.now_ns () in
    (* Restore the saved stack rather than popping: if [f] leaked an
       unbalanced span (it cannot via this API, but defense is cheap),
       the parent context still comes back intact. *)
    let finish () =
      let d = Metrics.now_ns () -. t0 in
      stack := saved;
      !sink.Sink.emit
        { Sink.id; parent; name; attrs; start_ns = t0; duration_ns = d }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end
