(* Trace sinks: where finished spans go.  A sink is a record of
   functions so new backends (a ring buffer, a socket) need no change
   here; the null sink is the disabled state Trace tests against. *)

type span = {
  id : int;
  parent : int option;
  name : string;
  attrs : (string * string) list;
  start_ns : float;
  duration_ns : float;
}

type t = { kind : string; emit : span -> unit; close : unit -> unit }

let null = { kind = "null"; emit = (fun _ -> ()); close = (fun () -> ()) }

let span_to_json s =
  Json.Obj
    (("name", Json.String s.name)
     :: ("id", Json.Int s.id)
     :: (match s.parent with
        | Some p -> [ ("parent", Json.Int p) ]
        | None -> [])
    @ [ ("start_us", Json.Float (s.start_ns /. 1e3));
        ("dur_ns", Json.Float s.duration_ns)
      ]
    @
    match s.attrs with
    | [] -> []
    | attrs ->
        [ ( "attrs",
            Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) attrs) )
        ])

let pp_dur ppf ns =
  if ns < 1e3 then Format.fprintf ppf "%.0fns" ns
  else if ns < 1e6 then Format.fprintf ppf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf ppf "%.2fms" (ns /. 1e6)
  else Format.fprintf ppf "%.3fs" (ns /. 1e9)

let stderr_pretty =
  { kind = "stderr";
    emit =
      (fun s ->
        Format.eprintf "[trace] #%d%s %s (%a)%s@." s.id
          (match s.parent with
          | Some p -> Printf.sprintf " <#%d" p
          | None -> "")
          s.name pp_dur s.duration_ns
          (String.concat ""
             (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) s.attrs)));
    close = (fun () -> ())
  }

(* One compact JSON object per line.  Spans are flushed per emit so a
   crashed process still leaves every completed span on disk — the
   trace is an observability artifact, losing the tail to buffering
   would defeat it. *)
let jsonl oc =
  { kind = "jsonl";
    emit =
      (fun s ->
        output_string oc (Json.to_string (span_to_json s));
        output_char oc '\n';
        flush oc);
    close = (fun () -> close_out_noerr oc)
  }

let file path = jsonl (open_out_bin path)

let memory () =
  let spans = ref [] in
  ( { kind = "memory";
      emit = (fun s -> spans := s :: !spans);
      close = (fun () -> ())
    },
    fun () -> List.rev !spans )
