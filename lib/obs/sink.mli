(** Pluggable destinations for finished trace spans. *)

(** A completed span: emitted by {!Trace.with_span} when its thunk
    returns (or raises).  [parent] is the id of the enclosing span, if
    any; [start_ns] is wall-clock nanoseconds since the Unix epoch. *)
type span = {
  id : int;
  parent : int option;
  name : string;
  attrs : (string * string) list;
  start_ns : float;
  duration_ns : float;
}

type t = {
  kind : string;  (** ["null"], ["stderr"], ["jsonl"], ["memory"] *)
  emit : span -> unit;
  close : unit -> unit;
}

(** Drops everything — the disabled state. *)
val null : t

(** One human-readable line per span on stderr. *)
val stderr_pretty : t

(** One compact JSON object per line, flushed per span (a crash keeps
    every completed span).  [close] closes the channel. *)
val jsonl : out_channel -> t

(** [jsonl] over a freshly created file (truncates). *)
val file : string -> t

(** An in-memory sink plus an accessor returning the spans emitted so
    far, in emission order — for tests. *)
val memory : unit -> t * (unit -> span list)

(** The JSON-lines record shape: [{"name", "id", "parent"?, "start_us",
    "dur_ns", "attrs"?}]. *)
val span_to_json : span -> Json.t
