(** Process-wide metrics registry: counters, gauges, histogram timers.

    The registry is the seam every subsystem reports through — dispatch
    caches, applicability analyses, the schema-index intern, the WAL.
    It is {b disabled by default} and zero-cost while disabled: every
    recording operation is gated on a single mutable boolean, and
    {!time} invokes its thunk directly without touching the clock.
    Enable it with {!enable} (the [odb --metrics] flag and the bench
    harness do), read it with {!snapshot}.

    Instruments are find-or-create by name, so modules register theirs
    at initialization time and a snapshot always carries the full key
    set of the linked instrumentation, zero-valued when idle.

    Not yet thread-safe: recording is plain mutation.  The intended
    concurrency story is one registry per domain, aggregated at
    snapshot time — a later PR's problem; the API is shaped so only
    this module has to change. *)

(** {1 Switch} *)

val enable : unit -> unit
val disable : unit -> unit
val is_on : unit -> bool

(** {1 Counters — monotonic} *)

type counter

(** Find-or-create.  @raise Invalid_argument if [name] is already a
    gauge or histogram. *)
val counter : string -> counter

val incr : counter -> unit

(** @raise Invalid_argument on a negative increment — counters are
    monotonic. *)
val add : counter -> int -> unit

val counter_value : counter -> int

(** {1 Gauges — last-write-wins} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit

(** Records [v] only if it exceeds the current value — high-water-mark
    gauges (e.g. maximum MethodStack depth). *)
val max_gauge : gauge -> float -> unit

val gauge_value : gauge -> float

(** {1 Histograms — fixed log-scale buckets, nanosecond domain} *)

type histogram

val histogram : string -> histogram

(** Record one observation (nanoseconds; negative values clamp to 0). *)
val observe : histogram -> float -> unit

(** [time h f] runs [f ()], recording its wall-clock duration — also on
    exception.  When the registry is disabled this is exactly one
    boolean test plus the call. *)
val time : histogram -> (unit -> 'a) -> 'a

(** Wall-clock nanoseconds (Unix epoch); the clock [time] samples. *)
val now_ns : unit -> float

(** Bucket index of a nanosecond value — exposed for the bucket
    monotonicity property test.  Buckets are eighth-decades: factor
    [10^(1/8) ≈ 1.33] per bucket, [0 ≤ bucket_of_ns v < bucket_count]. *)
val bucket_of_ns : float -> int

val bucket_count : int

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum_ns : float;
  max_ns : float;  (** exact maximum observed *)
  p50_ns : float;  (** bucket-resolution estimates, clamped to [max_ns] *)
  p95_ns : float;
  p99_ns : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : unit -> snapshot

(** Zero every instrument (the instruments stay registered). *)
val reset : unit -> unit

(** The metrics envelope: [{"schema_version":1, "suite":"tdp-metrics",
    "counters":{..}, "gauges":{..}, "histograms":{..}}]. *)
val to_json : snapshot -> Json.t

(** Parse an envelope produced by {!to_json} (tolerant: missing or
    malformed sections decode as empty). *)
val of_json : Json.t -> snapshot

(** Aligned human-readable dump — the renderer behind [odb stats]. *)
val pp : Format.formatter -> snapshot -> unit
