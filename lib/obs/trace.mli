(** Structured tracing: nested spans over a pluggable {!Sink}.

    Tracing is {b off by default} ({!Sink.null}); while off,
    {!with_span} is one boolean test plus the call — hot paths may call
    it unconditionally, but should guard any attribute-list
    construction behind {!enabled} to avoid allocating for a dropped
    span. *)

(** Install a sink.  Any sink other than {!Sink.null} enables tracing.
    The previous sink is {b not} closed — callers own sink lifetimes. *)
val set_sink : Sink.t -> unit

val current_sink : unit -> Sink.t
val enabled : unit -> bool

(** Close the current sink and revert to {!Sink.null}. *)
val close : unit -> unit

(** [with_span ?attrs name f] runs [f ()] inside a span: the span
    becomes the parent of any span opened within [f], and is emitted to
    the sink when [f] returns {e or raises} — the previous parent is
    restored either way. *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Id / name of the innermost open span. *)
val current_id : unit -> int option

val current_name : unit -> string option
