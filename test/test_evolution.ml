open Tdp_core
module Catalog = Tdp_algebra.Catalog
module Evolution = Tdp_algebra.Evolution
module View = Tdp_algebra.View
open Helpers

let base_catalog () =
  let c = Catalog.create Tdp_paper.Fig1.schema in
  let c, _ =
    Catalog.define_exn c ~name:"EmpView"
      (View.Project
         (View.Base (ty "Employee"), List.map at [ "ssn"; "date_of_birth"; "pay_rate" ]))
  in
  c

let test_add_method_impact () =
  (* A new method reading only projected attributes becomes applicable
     to the view after re-derivation. *)
  let c = base_catalog () in
  let m =
    Method_def.make ~gf:"pay_band" ~id:"pay_band"
      ~signature:(Signature.make ~result:Value_type.int [ ("e", ty "Employee") ])
      (General
         [ Body.return_
             (Body.builtin "/" [ Body.call "get_pay_rate" [ Body.var "e" ]; Body.int 10 ])
         ])
  in
  let c', report = Evolution.evolve_exn c (Add_method m) in
  (match report.impacts with
  | [ { view = "EmpView"; status = `Ok; gained; lost } ] ->
      Alcotest.(check bool) "gained pay_band" true
        (Method_def.Key.Set.mem (key "pay_band" "pay_band") gained);
      Alcotest.(check int) "lost nothing" 0 (Method_def.Key.Set.cardinal lost)
  | _ -> Alcotest.fail "unexpected report shape");
  (* the re-derived view actually inherits the method *)
  let cache = Schema_index.of_hierarchy (Schema.hierarchy (Catalog.schema c')) in
  Alcotest.(check bool) "view answers pay_band" true
    (List.exists
       (fun m -> String.equal (Method_def.gf m) "pay_band")
       (Schema.methods_applicable_to_type (Catalog.schema c') cache (ty "EmpView")))

let test_remove_method_impact () =
  let c = base_catalog () in
  let c', report = Evolution.evolve_exn c (Remove_method (key "age" "age")) in
  (match report.impacts with
  | [ { status = `Ok; gained; lost; _ } ] ->
      Alcotest.(check bool) "lost age" true
        (Method_def.Key.Set.mem (key "age" "age") lost);
      Alcotest.(check int) "gained nothing" 0 (Method_def.Key.Set.cardinal gained)
  | _ -> Alcotest.fail "unexpected report shape");
  Alcotest.(check bool) "age gone from schema" true
    (Schema.find_method_opt (Catalog.schema c') (key "age" "age") = None)

let test_remove_attribute_breaks_view () =
  (* dropping a projected attribute breaks the view; it is reported and
     removed from the catalog. *)
  let c = base_catalog () in
  let c', report = Evolution.evolve_exn c (Remove_attribute (at "pay_rate")) in
  (match report.impacts with
  | [ { view = "EmpView"; status = `Broken _; _ } ] -> ()
  | _ -> Alcotest.fail "expected a broken view");
  Alcotest.(check int) "view dropped from catalog" 0
    (List.length (Catalog.entries c'));
  (* the accessors were cascaded away; the schema still type-checks *)
  Alcotest.(check bool) "get_pay_rate gone" true
    (Schema.find_method_opt (Catalog.schema c') (key "get_pay_rate" "get_pay_rate")
    = None);
  Typing.check_all_methods (Catalog.schema c')

let test_remove_unprojected_attribute_keeps_view () =
  (* dropping hrs_worked: the view survives; income loses its accessor
     and thus applicability everywhere. *)
  let c = base_catalog () in
  let c', report = Evolution.evolve_exn c (Remove_attribute (at "hrs_worked")) in
  (match report.impacts with
  | [ { view = "EmpView"; status = `Ok; _ } ] -> ()
  | _ -> Alcotest.fail "view should survive");
  Alcotest.(check int) "view still cataloged" 1 (List.length (Catalog.entries c'));
  Alcotest.(check bool) "get_hrs_worked cascaded" true
    (Schema.find_method_opt (Catalog.schema c')
       (key "get_hrs_worked" "get_hrs_worked")
    = None)

let test_add_attribute_and_type () =
  let c = base_catalog () in
  let c, report =
    Evolution.evolve_exn c
      (Add_attribute
         { ty = ty "Employee"; attr = Attribute.make (at "badge") Value_type.int })
  in
  (match report.impacts with
  | [ { status = `Ok; gained; lost; _ } ] ->
      Alcotest.(check int) "no method changes" 0
        (Method_def.Key.Set.cardinal gained + Method_def.Key.Set.cardinal lost)
  | _ -> Alcotest.fail "unexpected report");
  let c, _ =
    Evolution.evolve_exn c
      (Add_type (Type_def.make ~supers:[ (ty "Employee", 1) ] (ty "Manager")))
  in
  let h = Schema.hierarchy (Catalog.schema c) in
  Alcotest.(check bool) "badge present" true
    (Hierarchy.has_attribute h (ty "Employee") (at "badge"));
  (* the new subtype inherits through the re-derived view *)
  Alcotest.(check bool) "Manager ⪯ EmpView" true
    (Hierarchy.subtype h (ty "Manager") (ty "EmpView"))

let test_rename_attribute () =
  (* Renaming a projected attribute rewrites the owner, the accessors,
     and the stored view expression: the view survives unchanged. *)
  let c = base_catalog () in
  let c', report =
    Evolution.evolve_exn c
      (Rename_attribute { from_ = at "pay_rate"; to_ = at "hourly_rate" })
  in
  (match report.impacts with
  | [ { view = "EmpView"; status = `Ok; gained; lost } ] ->
      Alcotest.(check int) "no behavior change" 0
        (Method_def.Key.Set.cardinal gained + Method_def.Key.Set.cardinal lost)
  | _ -> Alcotest.fail "view should survive a rename");
  let h = Schema.hierarchy (Catalog.schema c') in
  Alcotest.(check bool) "view carries the new name" true
    (Hierarchy.has_attribute h (ty "EmpView") (at "hourly_rate"));
  Alcotest.(check bool) "old name gone" false
    (Hierarchy.has_attribute h (ty "EmpView") (at "pay_rate"));
  (* the accessor now reads the renamed attribute *)
  let m =
    Schema.find_method (Catalog.schema c') (key "get_pay_rate" "get_pay_rate")
  in
  Alcotest.(check (option string)) "accessor rewired" (Some "hourly_rate")
    (Option.map Attr_name.to_string (Method_def.accessed_attr m));
  Typing.check_all_methods (Catalog.schema c')

let test_rename_clash_rejected () =
  let c = base_catalog () in
  match
    Evolution.evolve c (Rename_attribute { from_ = at "pay_rate"; to_ = at "ssn" })
  with
  | Error (Duplicate_attribute _) -> ()
  | _ -> Alcotest.fail "expected Duplicate_attribute"

let test_invalid_change_rejected () =
  let c = base_catalog () in
  match Evolution.evolve c (Remove_attribute (at "nope")) with
  | Error (Unknown_attribute _) -> ()
  | _ -> Alcotest.fail "expected Unknown_attribute"

let suite =
  [ Alcotest.test_case "add method" `Quick test_add_method_impact;
    Alcotest.test_case "remove method" `Quick test_remove_method_impact;
    Alcotest.test_case "remove projected attribute" `Quick
      test_remove_attribute_breaks_view;
    Alcotest.test_case "remove unprojected attribute" `Quick
      test_remove_unprojected_attribute_keeps_view;
    Alcotest.test_case "add attribute and type" `Quick test_add_attribute_and_type;
    Alcotest.test_case "rename attribute" `Quick test_rename_attribute;
    Alcotest.test_case "rename clash rejected" `Quick test_rename_clash_rejected;
    Alcotest.test_case "invalid change rejected" `Quick test_invalid_change_rejected
  ]

let () = Alcotest.run "evolution" [ ("evolution", suite) ]
