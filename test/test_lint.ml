(* Linter tests: diagnostics that only programmatic schemas can trigger,
   the diagnostic table itself, JSON rendering, and a property test that
   the linter never raises on generated schemas. *)

open Tdp_core
open Helpers
module Lint = Tdp_analysis.Lint
module Diagnostic = Tdp_analysis.Diagnostic

let codes ds = List.map (fun (d : Diagnostic.t) -> d.code) ds

let has code ds = List.mem code (codes ds)

(* A minimal valid one-type schema to hang methods on. *)
let base_schema () =
  Schema.add_type Schema.empty
    (Type_def.make
       ~attrs:[ Attribute.make (at "x") Value_type.int ]
       ~supers:[] (ty "A"))

let method_calling gf =
  Method_def.make ~gf:"f" ~id:"f"
    ~signature:(Signature.make ~result:Value_type.int [ ("a", ty "A") ])
    (General [ Body.return_ (Body.call gf [ Body.var "a" ]) ])

let test_undeclared_gf () =
  (* The .odb surface can't produce this (unknown names elaborate to
     builtins), so exercise TDP008 through the API. *)
  let schema = Schema.add_method (base_schema ()) (method_calling "nosuch") in
  let ds = Lint.lint_schema schema in
  Alcotest.(check bool) "TDP008 fired" true (has "TDP008" ds)

let test_empty_gf () =
  let schema =
    Schema.declare_gf (base_schema ()) (Generic_function.declare ~arity:1 "g")
  in
  let ds = Lint.lint_schema schema in
  Alcotest.(check bool) "TDP026 fired" true (has "TDP026" ds)

let test_clean_schema_is_clean () =
  let schema =
    Schema.add_method (base_schema ())
      (Method_def.reader ~gf:"get_x" ~id:"get_x" ~param:"self" ~param_type:(ty "A")
         ~attr:(at "x") ~result:Value_type.int)
  in
  Alcotest.(check (list string)) "no diagnostics" [] (codes (Lint.lint_schema schema))

let test_code_table () =
  let names = List.map (fun (c, _, _) -> c) Lint.codes in
  Alcotest.(check int)
    "codes are unique"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " is well-formed") true
        (String.length c = 6 && String.sub c 0 3 = "TDP"))
    names

let test_json_escaping () =
  let d =
    Diagnostic.make ~file:"a\"b.odb" ~position:(3, 7) ~code:"TDP000"
      ~severity:Diagnostic.Error "quote \" backslash \\ newline \n tab \t"
  in
  let j = Diagnostic.to_json d in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "escaped quote" true (contains ~sub:{|a\"b.odb|} j);
  Alcotest.(check bool) "escaped newline" true (contains ~sub:{|newline \n tab|} j)

(* The inference pass (TDP040..TDP044): exercised through lint_views so
   the lowering, program solve, and instantiation check all run. *)
module View = Tdp_algebra.View
module Pred = Tdp_algebra.Pred

let two_type_schema () =
  Schema.add_type (base_schema ())
    (Type_def.make
       ~attrs:[ Attribute.make (at "y") Value_type.int ]
       ~supers:[] (ty "B"))

let test_inference_codes () =
  let schema = two_type_schema () in
  let fired views = codes (Lint.lint_views schema views) in
  Alcotest.(check (list string)) "TDP040: principal not instantiated"
    [ "TDP040" ]
    (fired [ ("G", View.Generalize (Base (ty "A"), Base (ty "B"))) ]);
  Alcotest.(check (list string)) "TDP041: attr absent from a closed row"
    [ "TDP041" ]
    (fired
       [ ("V", View.Project (Base (ty "A"), [ at "x" ]));
         ("W", View.Select (Base (ty "V"), Pred.cmp (at "ghost") Pred.Eq (Body.Int 1)))
       ]);
  Alcotest.(check (list string)) "TDP042: join of related operands"
    [ "TDP042" ]
    (fired
       [ ("P", View.Select (Base (ty "A"), Pred.True));
         ("J", View.Join (Base (ty "P"), Base (ty "A")))
       ]);
  Alcotest.(check (list string)) "TDP043: unsatisfiable comparisons"
    [ "TDP043" ]
    (fired
       [ ("C",
          View.Select
            (Base (ty "A"),
             Pred.And (Pred.cmp (at "x") Pred.Eq (Body.Int 1),
                       Pred.cmp (at "x") Pred.Eq (Body.String "one"))))
       ]);
  Alcotest.(check (list string)) "TDP044: incompatible cross-view reuse"
    [ "TDP044" ]
    (fired
       [ ("E", View.Select (Base (ty "A"), Pred.cmp (at "x") Pred.Eq (Body.Int 1)));
         ("S", View.Select (Base (ty "A"), Pred.cmp (at "x") Pred.Eq (Body.String "s")))
       ])

let test_inference_positions_and_json () =
  let schema = two_type_schema () in
  let views = [ ("G", View.Generalize (View.Base (ty "A"), View.Base (ty "B"))) ] in
  let ds =
    Lint.lint_views ~file:"f.odb" ~positions:[ ("G", (7, 3)) ] schema views
  in
  match List.find_opt (fun (d : Diagnostic.t) -> d.code = "TDP040") ds with
  | None -> Alcotest.fail "expected a TDP040 diagnostic"
  | Some d ->
      Alcotest.(check (option (pair int int))) "declaration position" (Some (7, 3))
        d.position;
      let j = Diagnostic.to_json d in
      let contains ~sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      List.iter
        (fun sub -> Alcotest.(check bool) (sub ^ " in json") true (contains ~sub j))
        [ {|"code":"TDP040"|}; {|"line":7|}; {|"col":3|}; {|"file":"f.odb"|} ]

(* Reuse the test_invariants_prop generator configuration: the linter
   must never raise, whatever schema it is handed. *)
let config_of_seed seed =
  let open Tdp_synth.Synth in
  { default with
    n_types = 4 + (seed mod 12);
    max_supers = 1 + (seed mod 3);
    attrs_per_type = 1 + (seed mod 3);
    n_gfs = 2 + (seed mod 4);
    methods_per_gf = 1 + (seed mod 3);
    max_params = 1 + (seed mod 2);
    calls_per_body = 1 + (seed mod 3);
    writer_fraction = (if seed mod 2 = 0 then 0.3 else 0.0);
    recursion = seed mod 3 <> 0;
    seed
  }

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10_000)

let prop_lint_total =
  QCheck.Test.make ~name:"linter never raises on generated schemas" ~count:150
    seed_arb (fun seed ->
      let schema = Tdp_synth.Synth.generate (config_of_seed seed) in
      let ds = Lint.lint_schema schema in
      (* generated schemas validate and type-check, so no error-severity
         body diagnostics can legitimately appear *)
      List.for_all
        (fun (d : Diagnostic.t) ->
          (not (Diagnostic.is_error d)) || d.code = "TDP020")
        ds)

let prop_lint_views_total =
  QCheck.Test.make ~name:"view linting never raises" ~count:75 seed_arb
    (fun seed ->
      let schema = Tdp_synth.Synth.generate (config_of_seed seed) in
      let source, projection = Tdp_synth.Synth.gen_projection ~seed schema in
      let views =
        [ ("v", Tdp_algebra.View.Project (Base source, projection));
          ("bad", Tdp_algebra.View.Base (ty "NoSuchType"))
        ]
      in
      ignore (Lint.lint_views schema views);
      true)

let () =
  let to_alco = QCheck_alcotest.to_alcotest in
  Alcotest.run "lint"
    [ ( "unit",
        [ Alcotest.test_case "TDP008 undeclared gf" `Quick test_undeclared_gf;
          Alcotest.test_case "TDP026 empty gf" `Quick test_empty_gf;
          Alcotest.test_case "clean schema" `Quick test_clean_schema_is_clean;
          Alcotest.test_case "code table" `Quick test_code_table;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
          Alcotest.test_case "inference codes" `Quick test_inference_codes;
          Alcotest.test_case "inference positions and json" `Quick
            test_inference_positions_and_json
        ] );
      ("properties", List.map to_alco [ prop_lint_total; prop_lint_views_total ])
    ]
