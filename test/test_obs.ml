(* Tests for Tdp_obs: the metrics registry, histogram buckets, the
   span stack, and the sinks.  The registry is process-global, so every
   test begins by resetting it and choosing its on/off state. *)

module Metrics = Tdp_obs.Metrics
module Trace = Tdp_obs.Trace
module Sink = Tdp_obs.Sink
module Json = Tdp_obs.Json

let fresh () =
  Metrics.reset ();
  Metrics.enable ()

(* ---- histogram buckets --------------------------------------------- *)

let test_bucket_bounds () =
  fresh ();
  List.iter
    (fun v ->
      let b = Metrics.bucket_of_ns v in
      Alcotest.(check bool)
        (Fmt.str "bucket of %g in range" v)
        true
        (b >= 0 && b < Metrics.bucket_count))
    [ -1.; 0.; 0.5; 1.; 10.; 1e9; 1e30; Float.nan ]

let prop_bucket_monotone =
  QCheck.Test.make ~count:500 ~name:"bucket_of_ns is monotone"
    QCheck.(pair pos_float pos_float)
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Metrics.bucket_of_ns lo <= Metrics.bucket_of_ns hi)

let test_percentile_sanity () =
  fresh ();
  let h = Metrics.histogram "test.percentiles_ns" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i *. 1000.)
  done;
  let snap = Metrics.snapshot () in
  let hs = List.assoc "test.percentiles_ns" snap.histograms in
  Alcotest.(check int) "count" 1000 hs.count;
  Alcotest.(check (float 0.0)) "max exact" 1_000_000. hs.max_ns;
  Alcotest.(check bool) "p50 <= p95 <= p99 <= max" true
    (hs.p50_ns <= hs.p95_ns && hs.p95_ns <= hs.p99_ns && hs.p99_ns <= hs.max_ns);
  (* bucket resolution is a factor of 10^(1/8) ≈ 1.33: the p50 estimate
     must land within a bucket of the true median 500_500ns *)
  Alcotest.(check bool) "p50 within bucket resolution" true
    (hs.p50_ns > 500_500. /. 1.4 && hs.p50_ns < 500_500. *. 1.4)

(* ---- counters ------------------------------------------------------ *)

let prop_counter_monotone =
  QCheck.Test.make ~count:200 ~name:"counter value never decreases"
    QCheck.(list (int_bound 1000))
    (fun increments ->
      Metrics.reset ();
      Metrics.enable ();
      let c = Metrics.counter "test.monotone" in
      List.for_all
        (fun inc ->
          let before = Metrics.counter_value c in
          Metrics.add c inc;
          Metrics.counter_value c >= before)
        increments)

let test_counter_negative_add_rejected () =
  fresh ();
  let c = Metrics.counter "test.neg" in
  match Metrics.add c (-1) with
  | () -> Alcotest.fail "negative add must raise"
  | exception Invalid_argument _ -> ()

let test_kind_clash_rejected () =
  fresh ();
  let (_ : Metrics.counter) = Metrics.counter "test.clash" in
  (match Metrics.gauge "test.clash" with
  | (_ : Metrics.gauge) -> Alcotest.fail "gauge over counter name must raise"
  | exception Invalid_argument _ -> ());
  match Metrics.histogram "test.clash" with
  | (_ : Metrics.histogram) -> Alcotest.fail "histogram over counter name must raise"
  | exception Invalid_argument _ -> ()

let test_disabled_records_nothing () =
  Metrics.reset ();
  Metrics.disable ();
  let c = Metrics.counter "test.off" in
  let h = Metrics.histogram "test.off_ns" in
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.observe h 42.;
  let ran = ref false in
  ignore (Metrics.time h (fun () -> ran := true; 7));
  Alcotest.(check bool) "thunk still runs" true !ran;
  Metrics.enable ();
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter untouched" 0 (List.assoc "test.off" snap.counters);
  Alcotest.(check int) "histogram untouched" 0
    (List.assoc "test.off_ns" snap.histograms).count

(* ---- snapshot round-trip ------------------------------------------- *)

let test_snapshot_json_roundtrip () =
  fresh ();
  let c = Metrics.counter "test.rt" in
  let g = Metrics.gauge "test.rt_gauge" in
  let h = Metrics.histogram "test.rt_ns" in
  Metrics.add c 5;
  Metrics.set_gauge g 2.5;
  Metrics.observe h 1234.;
  Metrics.observe h 99999.;
  let snap = Metrics.snapshot () in
  let json = Metrics.to_json snap in
  let reparsed =
    match Json.parse (Json.to_string json) with
    | Ok j -> Metrics.of_json j
    | Error m -> Alcotest.fail ("reparse: " ^ m)
  in
  Alcotest.(check bool) "counters survive" true (reparsed.counters = snap.counters);
  Alcotest.(check bool) "gauges survive" true (reparsed.gauges = snap.gauges);
  let hs = List.assoc "test.rt_ns" reparsed.histograms in
  let hs0 = List.assoc "test.rt_ns" snap.histograms in
  Alcotest.(check int) "hist count survives" hs0.count hs.count;
  Alcotest.(check (float 0.0)) "hist max survives" hs0.max_ns hs.max_ns

(* ---- tracing ------------------------------------------------------- *)

exception Boom

let test_with_span_restores_parent_on_exception () =
  let sink, spans = Sink.memory () in
  Trace.set_sink sink;
  Fun.protect ~finally:Trace.close (fun () ->
      Trace.with_span "outer" (fun () ->
          let outer_id = Trace.current_id () in
          (try Trace.with_span "inner" (fun () -> raise Boom)
           with Boom -> ());
          Alcotest.(check bool) "parent restored after raise" true
            (Trace.current_id () = outer_id);
          Alcotest.(check (option string)) "parent name restored" (Some "outer")
            (Trace.current_name ()));
      Alcotest.(check (option string)) "stack empty at top level" None
        (Trace.current_name ());
      let emitted = spans () in
      Alcotest.(check (list string)) "both spans emitted, inner first"
        [ "inner"; "outer" ]
        (List.map (fun (s : Sink.span) -> s.name) emitted);
      let inner = List.hd emitted and outer = List.nth emitted 1 in
      Alcotest.(check bool) "inner's parent is outer" true
        (inner.parent = Some outer.id))

let test_span_disabled_is_transparent () =
  Trace.close ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let v = Trace.with_span "ignored" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 v;
  Alcotest.(check (option string)) "no span opened" None (Trace.current_name ())

let test_jsonl_sink_valid_json_per_line () =
  let path = Filename.temp_file "tdp_obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.set_sink (Sink.file path);
      Trace.with_span "a" (fun () ->
          Trace.with_span ~attrs:[ ("k", "v\"quoted\"") ] "b" (fun () -> ()));
      Trace.close ();
      let ic = open_in path in
      let lines = In_channel.input_lines ic in
      close_in ic;
      Alcotest.(check int) "two spans" 2 (List.length lines);
      List.iter
        (fun line ->
          match Json.parse line with
          | Ok (Json.Obj fields) ->
              Alcotest.(check bool) "has name" true (List.mem_assoc "name" fields);
              Alcotest.(check bool) "has dur_ns" true (List.mem_assoc "dur_ns" fields)
          | Ok _ -> Alcotest.fail "line is not an object"
          | Error m -> Alcotest.fail ("invalid JSON line: " ^ m))
        lines)

(* ---- Json parser --------------------------------------------------- *)

let test_json_parse_escapes () =
  match Json.parse {|{"s":"a\nbé\"q\"","l":[1,2.5,true,null]}|} with
  | Error m -> Alcotest.fail m
  | Ok j ->
      (match Json.member "s" j with
      | Some (Json.String s) -> Alcotest.(check string) "escapes" "a\nb\xc3\xa9\"q\"" s
      | _ -> Alcotest.fail "missing s");
      (match Json.member "l" j with
      | Some (Json.List [ Json.Int 1; Json.Float f; Json.Bool true; Json.Null ]) ->
          Alcotest.(check (float 0.0)) "float elt" 2.5 f
      | _ -> Alcotest.fail "list shape")

let test_json_parse_total_on_garbage () =
  List.iter
    (fun src ->
      match Json.parse src with
      | Ok _ | Error _ -> ())
    [ ""; "{"; "}"; "\"unterminated"; "[1,"; "{\"a\":}"; "nul"; "1e999x"; "\xff\xfe" ]

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "bucket bounds" `Quick test_bucket_bounds;
          QCheck_alcotest.to_alcotest prop_bucket_monotone;
          Alcotest.test_case "percentile sanity" `Quick test_percentile_sanity;
          QCheck_alcotest.to_alcotest prop_counter_monotone;
          Alcotest.test_case "negative add rejected" `Quick
            test_counter_negative_add_rejected;
          Alcotest.test_case "kind clash rejected" `Quick test_kind_clash_rejected;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "snapshot JSON round-trip" `Quick
            test_snapshot_json_roundtrip
        ] );
      ( "tracing",
        [ Alcotest.test_case "parent restored on exception" `Quick
            test_with_span_restores_parent_on_exception;
          Alcotest.test_case "disabled span is transparent" `Quick
            test_span_disabled_is_transparent;
          Alcotest.test_case "jsonl sink: valid JSON per line" `Quick
            test_jsonl_sink_valid_json_per_line
        ] );
      ( "json",
        [ Alcotest.test_case "escape handling" `Quick test_json_parse_escapes;
          Alcotest.test_case "total on garbage" `Quick test_json_parse_total_on_garbage
        ] )
    ]
