open Tdp_core
module Dispatch = Tdp_dispatch.Dispatch
module Static_check = Tdp_dispatch.Static_check
open Helpers

let fig3 = Tdp_paper.Fig3.schema

let test_single_dispatch () =
  let d = Dispatch.create Tdp_paper.Fig1.schema in
  (match Dispatch.most_specific d ~gf:"age" ~arg_types:[ ty "Employee" ] with
  | Some m -> Alcotest.(check string) "age applies to Employee" "age" (Method_def.id m)
  | None -> Alcotest.fail "no method");
  match Dispatch.most_specific d ~gf:"income" ~arg_types:[ ty "Person" ] with
  | None -> ()
  | Some _ -> Alcotest.fail "income must not apply to Person"

let test_override_specificity () =
  (* Add an Employee-specific age: calls on Employee pick it, calls on
     Person still get the general one. *)
  let s =
    Schema.add_method Tdp_paper.Fig1.schema
      (Method_def.make ~gf:"age" ~id:"age_emp"
         ~signature:(Signature.make ~result:Value_type.int [ ("e", ty "Employee") ])
         (General [ Body.return_ (Body.int 0) ]))
  in
  let d = Dispatch.create s in
  (match Dispatch.most_specific d ~gf:"age" ~arg_types:[ ty "Employee" ] with
  | Some m -> Alcotest.(check string) "override wins" "age_emp" (Method_def.id m)
  | None -> Alcotest.fail "no method");
  match Dispatch.most_specific d ~gf:"age" ~arg_types:[ ty "Person" ] with
  | Some m -> Alcotest.(check string) "general for Person" "age" (Method_def.id m)
  | None -> Alcotest.fail "no method"

let test_multi_method_specificity () =
  (* v1(A,C) and v2(B,C) are both applicable to v(A,A); the first
     argument decides: A precedes B in A's CPL, so v1 wins. *)
  let d = Dispatch.create fig3 in
  match Dispatch.most_specific d ~gf:"v" ~arg_types:[ ty "A"; ty "A" ] with
  | Some m -> Alcotest.(check string) "v1 wins" "v1" (Method_def.id m)
  | None -> Alcotest.fail "no method"

let test_applicable_ordering () =
  let d = Dispatch.create fig3 in
  let ms = Dispatch.applicable d ~gf:"u" ~arg_types:[ ty "A" ] in
  (* u1(A) most specific (index 0), then u2(C) (C at index 1 of A's
     CPL), then u3(B) (B at index 3). *)
  Alcotest.(check (list string)) "most specific first" [ "u1"; "u2"; "u3" ]
    (List.map Method_def.id ms)

let test_next_method () =
  let d = Dispatch.create fig3 in
  match Dispatch.next_method d ~gf:"u" ~arg_types:[ ty "A" ] ~after:(key "u" "u1") with
  | Some m -> Alcotest.(check string) "call-next-method" "u2" (Method_def.id m)
  | None -> Alcotest.fail "expected a next method"

let test_ambiguity_detection () =
  let s = Tdp_paper.Fig1.schema in
  let dup id =
    Method_def.make ~gf:"amb" ~id
      ~signature:(Signature.make [ ("p", ty "Person") ])
      (General [ Body.return_unit ])
  in
  let s = Schema.add_method s (dup "amb1") in
  let s = Schema.add_method s (dup "amb2") in
  let d = Dispatch.create s in
  match Dispatch.most_specific d ~gf:"amb" ~arg_types:[ ty "Person" ] with
  | exception Dispatch.Ambiguous { gf; methods } ->
      Alcotest.(check string) "gf" "amb" gf;
      Alcotest.(check int) "two tied methods" 2 (List.length methods)
  | _ -> Alcotest.fail "expected Ambiguous"

let test_duplicate_signature_check () =
  let s = Tdp_paper.Fig1.schema in
  let dup id =
    Method_def.make ~gf:"amb" ~id
      ~signature:(Signature.make [ ("p", ty "Person") ])
      (General [ Body.return_unit ])
  in
  let s = Schema.add_method s (dup "amb1") in
  let s = Schema.add_method s (dup "amb2") in
  match Static_check.duplicate_signatures s with
  | [ Static_check.Duplicate_signature { gf = "amb"; _ } ] -> ()
  | issues -> Alcotest.failf "expected one duplicate, got %d" (List.length issues)

let test_call_space_coverage () =
  let d = Dispatch.create fig3 in
  (* u has a method for every type below A, C or B, but none for D. *)
  let issues =
    Static_check.call_space_issues d ~gf:"u" ~arg_space:[ ty "A"; ty "D" ]
  in
  let uncovered =
    List.filter_map
      (function
        | Static_check.Uncovered_call { arg_types; _ } ->
            Some (List.map Type_name.to_string arg_types)
        | _ -> None)
      issues
  in
  Alcotest.(check (list (list string))) "only u(D) uncovered" [ [ "D" ] ] uncovered

let test_dispatch_preserved_fig3 () =
  (* The refactoring must not change any dispatch outcome over the
     original eight types — the dynamic reading of the paper's
     behavior-preservation claim. *)
  let o = Tdp_paper.Fig3.project () in
  let originals = Hierarchy.type_names (Schema.hierarchy o.before) in
  Alcotest.(check int) "no outcome changed" 0
    (List.length
       (Static_check.dispatch_preserved ~before:o.before ~after:o.schema
          ~arg_space:originals ()))

let test_dispatch_on_derived () =
  (* After the projection, the derived type A_hat answers u via û3 —
     the method the analysis found applicable. *)
  let o = Tdp_paper.Fig3.project () in
  let d = Dispatch.create o.schema in
  match Dispatch.most_specific d ~gf:"u" ~arg_types:[ ty "A_hat" ] with
  | Some m -> Alcotest.(check string) "u3 serves the view" "u3" (Method_def.id m)
  | None -> Alcotest.fail "derived type cannot dispatch u"

(* Regression for a gap in the paper's §6 transparency argument,
   found by the property suite: two multi-methods that TIE on a
   factored argument position must still tie after one of them is
   relocated onto the surrogate — the surrogate shares its source's
   specificity rank — so the later positions keep deciding dispatch. *)
let test_surrogate_rank_transparency () =
  let attr n = Attribute.make (at n) Value_type.int in
  let h = Hierarchy.empty in
  let h = Hierarchy.add h (Type_def.make ~attrs:[ attr "x"; attr "y" ] (ty "A")) in
  let h = Hierarchy.add h (Type_def.make ~attrs:[ attr "d1" ] (ty "D")) in
  let h = Hierarchy.add h (Type_def.make ~attrs:[ attr "c1" ] ~supers:[ (ty "D", 1) ] (ty "C")) in
  let s = Schema.with_hierarchy Schema.empty h in
  let s =
    Schema.add_method s
      (Method_def.reader ~gf:"get_x" ~id:"get_x" ~param:"self" ~param_type:(ty "A")
         ~attr:(at "x") ~result:Value_type.int)
  in
  let s =
    Schema.add_method s
      (Method_def.reader ~gf:"get_y" ~id:"get_y" ~param:"self" ~param_type:(ty "A")
         ~attr:(at "y") ~result:Value_type.int)
  in
  (* m1 survives the projection (reads x); m2 does not (reads y);
     both tie on position 0 before the refactoring. *)
  let s =
    Schema.add_method s
      (Method_def.make ~gf:"m" ~id:"m1"
         ~signature:(Signature.make [ ("a", ty "A"); ("c", ty "C") ])
         (General [ Body.expr (Body.call "get_x" [ Body.var "a" ]) ]))
  in
  let s =
    Schema.add_method s
      (Method_def.make ~gf:"m" ~id:"m2"
         ~signature:(Signature.make [ ("a", ty "A"); ("d", ty "D") ])
         (General [ Body.expr (Body.call "get_y" [ Body.var "a" ]) ]))
  in
  let pick schema =
    match
      Dispatch.most_specific (Dispatch.create schema) ~gf:"m"
        ~arg_types:[ ty "A"; ty "C" ]
    with
    | Some m -> Method_def.id m
    | None -> "none"
  in
  Alcotest.(check string) "before: position 1 decides" "m1" (pick s);
  let o =
    Projection.project_exn s ~view:"v" ~source:(ty "A") ~projection:[ at "x" ] ()
  in
  (* m1 was relocated; m2 was not *)
  Alcotest.(check (list string)) "m1 relocated" [ "A_hat"; "C" ]
    (method_param_types o.schema "m" "m1");
  Alcotest.(check (list string)) "m2 kept" [ "A"; "D" ]
    (method_param_types o.schema "m" "m2");
  Alcotest.(check string) "after: dispatch unchanged for original objects" "m1"
    (pick o.schema)

let test_cpl_memoized () =
  let d = Dispatch.create fig3 in
  let l1 = Dispatch.cpl d (ty "A") in
  let l2 = Dispatch.cpl d (ty "A") in
  Alcotest.(check bool) "same list" true (l1 == l2)

let test_dispatch_table_cached () =
  let d = Dispatch.create fig3 in
  let calls =
    [ ("u", [ ty "A" ]); ("u", [ ty "B" ]); ("v", [ ty "A"; ty "C" ]);
      ("v", [ ty "A"; ty "A" ]); ("x", [ ty "A"; ty "B" ]); ("w", [ ty "C" ])
    ]
  in
  (* cached ranking ≡ uncached reference, cold and warm *)
  List.iter
    (fun (gf, arg_types) ->
      let reference = Dispatch.applicable_uncached d ~gf ~arg_types in
      let cold = Dispatch.applicable d ~gf ~arg_types in
      let warm = Dispatch.applicable d ~gf ~arg_types in
      Alcotest.(check (list string))
        (Fmt.str "%s cold" gf)
        (List.map Method_def.id reference)
        (List.map Method_def.id cold);
      Alcotest.(check bool) (Fmt.str "%s warm is the cached list" gf) true
        (cold == warm))
    calls;
  let s = Dispatch.stats d in
  Alcotest.(check bool) "table populated" true (s.entries >= List.length calls);
  Alcotest.(check bool) "warm calls hit" true (s.hits >= List.length calls);
  Alcotest.(check bool) "cold calls missed" true (s.misses >= List.length calls)

(* Regression: [stats] must be a pure read — calling it repeatedly
   returns equal values — and only the explicit [reset] zeroes the
   hit/miss counters (leaving the cached entries in place). *)
let test_stats_pure_reset_explicit () =
  let d = Dispatch.create fig3 in
  ignore (Dispatch.applicable d ~gf:"u" ~arg_types:[ ty "A" ]);
  ignore (Dispatch.applicable d ~gf:"u" ~arg_types:[ ty "A" ]);
  let s1 = Dispatch.stats d in
  let s2 = Dispatch.stats d in
  Alcotest.(check bool) "stats read is pure" true (s1 = s2);
  Alcotest.(check bool) "counters nonzero before reset" true
    (s1.hits > 0 && s1.misses > 0);
  Dispatch.reset d;
  let s3 = Dispatch.stats d in
  Alcotest.(check int) "hits zeroed" 0 s3.hits;
  Alcotest.(check int) "misses zeroed" 0 s3.misses;
  Alcotest.(check int) "table survives reset" s1.entries s3.entries;
  (* the cache itself was not cleared: the next call is a hit *)
  ignore (Dispatch.applicable d ~gf:"u" ~arg_types:[ ty "A" ]);
  let s4 = Dispatch.stats d in
  Alcotest.(check int) "warm call after reset hits" 1 s4.hits;
  Alcotest.(check int) "no new miss after reset" 0 s4.misses

let test_cached_ambiguity_persists () =
  let s = Tdp_paper.Fig1.schema in
  let dup id =
    Method_def.make ~gf:"amb" ~id
      ~signature:(Signature.make [ ("p", ty "Person") ])
      (General [ Body.return_unit ])
  in
  let s = Schema.add_method s (dup "amb1") in
  let s = Schema.add_method s (dup "amb2") in
  let d = Dispatch.create s in
  let attempt () =
    match Dispatch.most_specific d ~gf:"amb" ~arg_types:[ ty "Person" ] with
    | exception Dispatch.Ambiguous _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "first dispatch ambiguous" true (attempt ());
  (* the tie is cached as a tie, not silently resolved *)
  Alcotest.(check bool) "cached dispatch still ambiguous" true (attempt ())

let suite =
  [ Alcotest.test_case "single dispatch" `Quick test_single_dispatch;
    Alcotest.test_case "override specificity" `Quick test_override_specificity;
    Alcotest.test_case "multi-method specificity" `Quick test_multi_method_specificity;
    Alcotest.test_case "applicable ordering" `Quick test_applicable_ordering;
    Alcotest.test_case "next method" `Quick test_next_method;
    Alcotest.test_case "ambiguity detection" `Quick test_ambiguity_detection;
    Alcotest.test_case "duplicate signatures" `Quick test_duplicate_signature_check;
    Alcotest.test_case "call-space coverage" `Quick test_call_space_coverage;
    Alcotest.test_case "dispatch preserved (fig3)" `Quick test_dispatch_preserved_fig3;
    Alcotest.test_case "dispatch on derived type" `Quick test_dispatch_on_derived;
    Alcotest.test_case "surrogate rank transparency" `Quick
      test_surrogate_rank_transparency;
    Alcotest.test_case "CPL memoized" `Quick test_cpl_memoized;
    Alcotest.test_case "dispatch table cached" `Quick test_dispatch_table_cached;
    Alcotest.test_case "stats pure, reset explicit" `Quick
      test_stats_pure_reset_explicit;
    Alcotest.test_case "cached ambiguity persists" `Quick
      test_cached_ambiguity_persists
  ]

let () = Alcotest.run "dispatch" [ ("dispatch", suite) ]
