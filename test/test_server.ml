module Value = Tdp_store.Value
module Mvcc = Tdp_txn.Mvcc
module Server = Tdp_txn.Server
open Helpers

let schema = Tdp_paper.Fig1.schema
let load_schema src = (Tdp_lang.Elaborate.load_exn src).Tdp_lang.Elaborate.schema

let with_temp_dir f =
  let dir = Filename.temp_file "tdp_srv" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

(* An in-memory store pre-seeded with employee #1, served on a fresh
   Unix socket; [f] gets the running server's address. *)
let with_server ?(store = Mvcc.create ~load_schema schema) f =
  (match Mvcc.count (Mvcc.head store ~branch:Mvcc.main_branch) with
  | 0 ->
      let t = Mvcc.begin_ store in
      ignore
        (Mvcc.new_object t (ty "Employee")
           ~init:[ (at "ssn", Value.Int 1); (at "pay_rate", Value.Float 1.0) ]);
      ignore (Mvcc.commit t)
  | _ -> ());
  let path = Filename.temp_file "tdp_sock" ".sock" in
  Sys.remove path;
  let srv = Server.start ~domains:3 ~store (Unix.ADDR_UNIX path) in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f (Server.sockaddr srv))

let expect c req prefix =
  let resp = Server.request c req in
  if not (String.length resp >= String.length prefix
          && String.sub resp 0 (String.length prefix) = prefix) then
    Alcotest.failf "%s -> %s (wanted %s…)" req resp prefix;
  resp

(* ---- protocol unit (no sockets) ------------------------------------- *)

let test_protocol_unit () =
  let store = Mvcc.create ~load_schema schema in
  let s = Server.session ~store () in
  let run line = Server.handle_line s line in
  Alcotest.(check string) "hello" "ok odb 1 branch main" (run "hello");
  Alcotest.(check string) "ping" "ok pong" (run "ping");
  Alcotest.(check string) "no txn" "err \"no open transaction (begin first)\""
    (run "set #1 ssn=2");
  Alcotest.(check string) "begin" "ok txn 1 base 0" (run "begin");
  Alcotest.(check string) "begin twice"
    "err \"transaction 1 already open\"" (run "begin");
  Alcotest.(check string) "new" "ok #1" (run "new Employee ssn=1 name=\"a b\"");
  Alcotest.(check string) "staged read" "ok \"a b\"" (run "get #1 name");
  Alcotest.(check string) "bad attr survives the session"
    "err \"object #1 of type Employee has no attribute nope\"" (run "set #1 nope=1");
  Alcotest.(check string) "commit" "ok committed 1" (run "commit");
  Alcotest.(check string) "typeof" "ok Employee" (run "typeof #1");
  Alcotest.(check string) "extent is deep" "ok 1 #1" (run "extent Person");
  Alcotest.(check string) "count" "ok 1" (run "count");
  Alcotest.(check string) "version" "ok 1" (run "version");
  Alcotest.(check string) "branches" "ok main:1" (run "branches");
  Alcotest.(check string) "fork" "ok forked dev at 1" (run "fork dev");
  Alcotest.(check string) "switch" "ok branch dev" (run "branch dev");
  Alcotest.(check string) "unknown verb" "err \"unknown command nonsense\""
    (run "nonsense");
  Alcotest.(check string) "unknown branch"
    "err \"unknown branch nowhere\"" (run "branch nowhere");
  Alcotest.(check string) "quit" "ok bye" (run "quit")

(* ---- socket round-trip ---------------------------------------------- *)

let test_socket_roundtrip () =
  with_server (fun addr ->
      let c = Server.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.close_client c)
        (fun () ->
          ignore (expect c "hello" "ok odb 1");
          ignore (expect c "begin" "ok txn");
          ignore (expect c "set #1 ssn=42" "ok");
          ignore (expect c "get #1 ssn" "ok 42");
          ignore (expect c "commit" "ok committed 2");
          ignore (expect c "get #1 ssn" "ok 42");
          ignore (expect c "quit" "ok bye")))

(* ---- N concurrent writers on one key -------------------------------- *)

(* A countdown barrier: every writer begins its transaction before any
   of them commits, so all N race from the same base version. *)
let barrier n =
  let lock = Mutex.create () and cond = Condition.create () in
  let left = ref n in
  fun () ->
    Mutex.lock lock;
    decr left;
    if !left = 0 then Condition.broadcast cond
    else while !left > 0 do Condition.wait cond lock done;
    Mutex.unlock lock

let test_concurrent_writers_one_key () =
  with_server (fun addr ->
      let n = 12 in
      let ready = barrier n in
      let results = Array.make n "" in
      let writer i () =
        let c = Server.connect addr in
        Fun.protect
          ~finally:(fun () -> Server.close_client c)
          (fun () ->
            ignore (expect c "begin" "ok txn");
            ignore (expect c (Fmt.str "set #1 ssn=%d" (100 + i)) "ok");
            ready ();
            results.(i) <- Server.request c "commit")
      in
      let threads = List.init n (fun i -> Thread.create (writer i) ()) in
      List.iter Thread.join threads;
      let count prefix =
        Array.fold_left
          (fun acc r ->
            if String.length r >= String.length prefix
               && String.sub r 0 (String.length prefix) = prefix
            then acc + 1
            else acc)
          0 results
      in
      Alcotest.(check int) "exactly one commit" 1 (count "ok committed");
      Alcotest.(check int) "everyone else conflicts" (n - 1) (count "conflict");
      (* the surviving value is the winner's, at exactly version 2 *)
      let c = Server.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.close_client c)
        (fun () ->
          ignore (expect c "version" "ok 2");
          let v = Server.request c "get #1 ssn" in
          let winner =
            match int_of_string_opt (String.sub v 3 (String.length v - 3)) with
            | Some w -> w
            | None -> Alcotest.failf "unparsable winner %s" v
          in
          Alcotest.(check bool) "winner wrote one of the raced values" true
            (winner >= 100 && winner < 100 + n)))

(* ---- readers never observe partial commits -------------------------- *)

let test_readers_see_no_partial_commits () =
  with_server (fun addr ->
      (* the invariant every committed version maintains: pay_rate is
         exactly float(ssn).  A torn read would catch them mid-update. *)
      let rounds = 40 and nreaders = 6 in
      let stop = Atomic.make false in
      let failures = Atomic.make 0 in
      let writer () =
        let c = Server.connect addr in
        Fun.protect
          ~finally:(fun () -> Server.close_client c)
          (fun () ->
            for k = 2 to rounds do
              ignore (expect c "begin" "ok txn");
              ignore (expect c (Fmt.str "set #1 ssn=%d" k) "ok");
              ignore (expect c (Fmt.str "set #1 pay_rate=%d.0" k) "ok");
              ignore (expect c "commit" "ok committed")
            done;
            Atomic.set stop true)
      in
      let reader () =
        let c = Server.connect addr in
        Fun.protect
          ~finally:(fun () -> Server.close_client c)
          (fun () ->
            while not (Atomic.get stop) do
              (* inside a transaction both reads hit one snapshot *)
              ignore (expect c "begin" "ok txn");
              let ssn = Server.request c "get #1 ssn" in
              let rate = Server.request c "get #1 pay_rate" in
              ignore (expect c "abort" "ok aborted");
              let payload r = String.sub r 3 (String.length r - 3) in
              match
                (int_of_string_opt (payload ssn), float_of_string_opt (payload rate))
              with
              | Some s, Some r when float_of_int s = r -> ()
              | _ -> Atomic.incr failures
            done)
      in
      let readers = List.init nreaders (fun _ -> Thread.create reader ()) in
      let w = Thread.create writer () in
      Thread.join w;
      List.iter Thread.join readers;
      Alcotest.(check int) "no torn reads" 0 (Atomic.get failures))

(* ---- a served durable store survives restart ------------------------ *)

let test_served_store_durability () =
  with_temp_dir (fun dir ->
      let o = Mvcc.open_dir ~load_schema ~sync:false ~schema dir in
      with_server ~store:o.Mvcc.store (fun addr ->
          let c = Server.connect addr in
          Fun.protect
            ~finally:(fun () -> Server.close_client c)
            (fun () ->
              ignore (expect c "begin" "ok txn");
              ignore (expect c "set #1 ssn=77" "ok");
              ignore (expect c "commit" "ok committed")));
      Mvcc.close o.Mvcc.store;
      let o2 = Mvcc.open_dir ~load_schema ~sync:false ~schema dir in
      Alcotest.(check string) "committed state survives the restart" "77"
        (Tdp_store.Dump.value_to_string
           (Mvcc.get_attr
              (Mvcc.head o2.Mvcc.store ~branch:Mvcc.main_branch)
              (Tdp_store.Oid.of_int 1) (at "ssn")));
      Mvcc.close o2.Mvcc.store)

(* ---- sessions drop cleanly ------------------------------------------ *)

let test_session_disconnect_aborts () =
  with_server (fun addr ->
      let c = Server.connect addr in
      ignore (expect c "begin" "ok txn");
      ignore (expect c "set #1 ssn=500" "ok");
      (* vanish without committing *)
      Server.close_client c;
      let c2 = Server.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.close_client c2)
        (fun () ->
          (* the staged write never landed; a new txn commits freely *)
          ignore (expect c2 "get #1 ssn" "ok 1");
          ignore (expect c2 "begin" "ok txn");
          ignore (expect c2 "set #1 ssn=2" "ok");
          ignore (expect c2 "commit" "ok committed")))

(* ---- disconnect between request and response ------------------------ *)

(* A client that fires a request and hangs up without reading the
   response leaves the server writing into a dead socket (EPIPE).
   That must stay the dying session's private problem: its open txn
   aborts, the worker survives, and fresh sessions get full service. *)
let test_disconnect_mid_response () =
  with_server (fun addr ->
      for _ = 1 to 20 do
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd addr;
        let line = "begin\n" in
        ignore (Unix.write_substring fd line 0 (String.length line));
        (* gone before the "ok txn" response can land *)
        Unix.close fd
      done;
      let c = Server.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.close_client c)
        (fun () ->
          (* none of the 20 orphaned txns holds the store *)
          ignore (expect c "begin" "ok txn");
          ignore (expect c "set #1 ssn=9" "ok");
          ignore (expect c "commit" "ok committed");
          ignore (expect c "get #1 ssn" "ok 9")))

let suite =
  [ Alcotest.test_case "protocol unit" `Quick test_protocol_unit;
    Alcotest.test_case "socket roundtrip" `Quick test_socket_roundtrip;
    Alcotest.test_case "12 writers, one key: 1 commit, 11 conflicts" `Quick
      test_concurrent_writers_one_key;
    Alcotest.test_case "readers never observe partial commits" `Quick
      test_readers_see_no_partial_commits;
    Alcotest.test_case "served durable store survives restart" `Quick
      test_served_store_durability;
    Alcotest.test_case "disconnect aborts the open txn" `Quick
      test_session_disconnect_aborts;
    Alcotest.test_case "disconnect between request and response" `Quick
      test_disconnect_mid_response
  ]

let () = Alcotest.run "server" [ ("server", suite) ]
