(* Schema_index correctness: the compiled snapshot (interned ids,
   bitset transitive closure, memoized linearizations) must agree with
   the uncompiled reference implementations in Hierarchy and Linearize
   on arbitrary well-formed hierarchies, and the generation-stamp
   machinery must actually catch stale consumers. *)

open Tdp_core
open Helpers
module Dispatch = Tdp_dispatch.Dispatch
module Database = Tdp_store.Database
module Value = Tdp_store.Value
module Interp = Tdp_store.Interp

let config_of_seed seed =
  let open Tdp_synth.Synth in
  { default with
    n_types = 3 + (seed mod 20);
    max_supers = 1 + (seed mod 4);
    attrs_per_type = 1 + (seed mod 2);
    n_gfs = 1 + (seed mod 3);
    methods_per_gf = 1 + (seed mod 2);
    max_params = 1 + (seed mod 2);
    seed
  }

let hierarchy_of_seed seed =
  Schema.hierarchy (Tdp_synth.Synth.generate (config_of_seed seed))

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10_000)

(* Reference subtype: plain DAG reachability along supertype edges,
   computed fresh per query with no sets, closures, or memoization —
   deliberately independent from both Hierarchy.subtype's ancestor-set
   construction and the index's bitset. *)
let reachable h a b =
  let rec go visited n =
    Type_name.equal n b
    || (not (List.exists (Type_name.equal n) visited))
       && List.exists
            (go (n :: visited))
            (match Hierarchy.find_opt h n with
            | Some d -> Type_def.super_names d
            | None -> [])
  in
  go [] a

let prop_subtype_eq_reachability =
  QCheck.Test.make ~name:"subtype ≡ DAG reachability" ~count:200 seed_arb
    (fun seed ->
      let h = hierarchy_of_seed seed in
      let idx = Schema_index.of_hierarchy h in
      let names = Hierarchy.type_names h in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              Schema_index.subtype idx a b = reachable h a b
              && Schema_index.subtype idx a b = Hierarchy.subtype h a b)
            names)
        names)

let prop_ancestors_eq =
  QCheck.Test.make ~name:"ancestor set/list ≡ Hierarchy.ancestors_or_self"
    ~count:200 seed_arb (fun seed ->
      let h = hierarchy_of_seed seed in
      let idx = Schema_index.of_hierarchy h in
      List.for_all
        (fun n ->
          let ref_ = Hierarchy.ancestors_or_self h n in
          Type_name.Set.equal ref_ (Schema_index.ancestor_set idx n)
          && List.equal Type_name.equal
               (Type_name.Set.elements ref_)
               (Schema_index.ancestors_or_self idx n))
        (Hierarchy.type_names h))

let prop_descendants_eq =
  QCheck.Test.make ~name:"descendants ≡ Hierarchy.descendants" ~count:200
    seed_arb (fun seed ->
      let h = hierarchy_of_seed seed in
      let idx = Schema_index.of_hierarchy h in
      List.for_all
        (fun n ->
          List.equal Type_name.equal
            (Type_name.Set.elements (Hierarchy.descendants h n))
            (Schema_index.descendants idx n)
          && List.equal Type_name.equal
               (Type_name.Set.elements
                  (Type_name.Set.add n (Hierarchy.descendants h n)))
               (Schema_index.descendants_or_self idx n))
        (Hierarchy.type_names h))

let prop_direct_subs_eq =
  QCheck.Test.make ~name:"direct_subs ≡ Hierarchy.direct_subs" ~count:200
    seed_arb (fun seed ->
      let h = hierarchy_of_seed seed in
      let idx = Schema_index.of_hierarchy h in
      List.for_all
        (fun n ->
          List.equal Type_name.equal
            (Hierarchy.direct_subs h n)
            (Schema_index.direct_subs idx n))
        (Hierarchy.type_names h))

let prop_cpl_eq_fresh_linearize =
  QCheck.Test.make ~name:"memoized cpl ≡ fresh Linearize" ~count:200 seed_arb
    (fun seed ->
      let h = hierarchy_of_seed seed in
      let idx = Schema_index.of_hierarchy h in
      let agree n =
        (* query twice: the first call populates the memo slot, the
           second must serve from it — both equal a fresh Linearize *)
        let cold = Schema_index.cpl_result idx n in
        let warm = Schema_index.cpl_result idx n in
        let fresh = Linearize.cpl_result h n in
        let eq a b =
          match (a, b) with
          | Ok la, Ok lb -> List.equal Type_name.equal la lb
          | Error ea, Error eb -> Fmt.str "%a" Error.pp ea = Fmt.str "%a" Error.pp eb
          | _ -> false
        in
        eq cold fresh && eq warm fresh
      in
      List.for_all agree (Hierarchy.type_names h))

(* ---- unknown-type edge cases (mirror Hierarchy.subtype) ------------- *)

let diamond () =
  List.fold_left Hierarchy.add Hierarchy.empty
    [ Type_def.make (ty "A");
      Type_def.make ~supers:[ (ty "A", 1) ] (ty "B");
      Type_def.make ~supers:[ (ty "A", 1) ] (ty "C");
      Type_def.make ~supers:[ (ty "B", 1); (ty "C", 2) ] (ty "D")
    ]

let test_unknown_semantics () =
  let h = diamond () in
  let idx = Schema_index.of_hierarchy h in
  Alcotest.(check bool)
    "unknown ⪯ itself is reflexively true"
    (Hierarchy.subtype h (ty "Z") (ty "Z"))
    (Schema_index.subtype idx (ty "Z") (ty "Z"));
  Alcotest.(check bool)
    "known ⪯ unknown is false"
    (Hierarchy.subtype h (ty "D") (ty "Z"))
    (Schema_index.subtype idx (ty "D") (ty "Z"));
  Alcotest.check_raises "unknown lhs raises"
    (Error.E (Unknown_type (ty "Z")))
    (fun () -> ignore (Schema_index.subtype idx (ty "Z") (ty "A")))

let test_interning () =
  let h = diamond () in
  let idx = Schema_index.of_hierarchy h in
  Alcotest.(check int) "cardinal" 4 (Schema_index.cardinal idx);
  List.iteri
    (fun i n ->
      Alcotest.(check (option int))
        "ids are dense, in name order" (Some i)
        (Schema_index.id idx n);
      Alcotest.(check bool)
        "name inverts id" true
        (Type_name.equal n (Schema_index.name idx i)))
    (Hierarchy.type_names h);
  Alcotest.(check (option int)) "unknown has no id" None
    (Schema_index.id idx (ty "Z"))

(* ---- generation stamps ---------------------------------------------- *)

let test_generation_monotone () =
  let h0 = diamond () in
  let h1 = Hierarchy.add h0 (Type_def.make (ty "E")) in
  Alcotest.(check bool)
    "functional update strictly increases the stamp" true
    (Hierarchy.generation h1 > Hierarchy.generation h0);
  let s0 = Schema.with_hierarchy Schema.empty h0 in
  let s1 =
    Schema.add_method s0
      (Method_def.reader ~gf:"a" ~id:"a_A" ~param:"self" ~param_type:(ty "A")
         ~attr:(at "x") ~result:(Value_type.Prim Value_type.Int))
  in
  Alcotest.(check bool)
    "method update bumps the schema stamp" true
    (Schema.generation s1 > Schema.generation s0);
  Alcotest.(check int)
    "…but leaves the hierarchy stamp alone"
    (Hierarchy.generation (Schema.hierarchy s0))
    (Hierarchy.generation (Schema.hierarchy s1))

let test_of_hierarchy_interned () =
  let h = diamond () in
  Alcotest.(check bool)
    "same hierarchy value compiles once" true
    (Schema_index.of_hierarchy h == Schema_index.of_hierarchy h);
  let h' = Hierarchy.add h (Type_def.make (ty "E")) in
  Alcotest.(check bool)
    "updated hierarchy gets its own index" true
    (Schema_index.of_hierarchy h != Schema_index.of_hierarchy h');
  Alcotest.(check bool)
    "same_hierarchy discriminates by stamp" true
    (Schema_index.same_hierarchy (Schema_index.of_hierarchy h) h
    && not (Schema_index.same_hierarchy (Schema_index.of_hierarchy h) h'))

let diamond_with_extra () = Hierarchy.add (diamond ()) (Type_def.make (ty "X"))

let test_intern_table_bounded () =
  let h = diamond () in
  let idx = Schema_index.of_hierarchy h in
  (* churn through far more generations than the table holds, the way a
     long-running evolution loop does *)
  let rec churn h n =
    if n > 0 then begin
      let h' = Hierarchy.add h (Type_def.make (ty (Fmt.str "G%d" n))) in
      ignore (Schema_index.of_hierarchy h');
      churn h' (n - 1)
    end
  in
  churn h (3 * Schema_index.intern_capacity);
  Alcotest.(check bool)
    "occupancy stays within the capacity bound" true
    (Schema_index.intern_occupancy () <= Schema_index.intern_capacity);
  (* LRU, not FIFO: the churn evicted the old diamond index *)
  Alcotest.(check bool)
    "evicted hierarchy recompiles" true
    (Schema_index.of_hierarchy h != idx);
  let idx' = Schema_index.of_hierarchy h in
  ignore (Schema_index.of_hierarchy (diamond_with_extra ()));
  Alcotest.(check bool)
    "a hit refreshes recency and returns the same index" true
    (Schema_index.of_hierarchy h == idx')

let reader_schema () =
  let h = diamond () in
  Schema.add_method
    (Schema.with_hierarchy Schema.empty h)
    (Method_def.reader ~gf:"get_x" ~id:"get_x_A" ~param:"self" ~param_type:(ty "A")
         ~attr:(at "x") ~result:(Value_type.Prim Value_type.Int))

let test_dispatch_ensure_fresh () =
  let s0 = reader_schema () in
  let d = Dispatch.create s0 in
  Dispatch.ensure_fresh d s0;
  Alcotest.(check int)
    "dispatcher stamped with its schema's generation"
    (Schema.generation s0) (Dispatch.generation d);
  let s1 =
    Schema.add_method s0
      (Method_def.reader ~gf:"get_x" ~id:"get_x_B" ~param:"self" ~param_type:(ty "B")
         ~attr:(at "x") ~result:(Value_type.Prim Value_type.Int))
  in
  match Dispatch.ensure_fresh d s1 with
  | () -> Alcotest.fail "stale dispatcher not detected"
  | exception Error.E (Invariant_violation _) -> ()

(* The stale-cache hazard the stamps exist to close: a live interpreter
   whose database schema is swapped must not keep dispatching from the
   old schema's memo tables. *)
let test_interp_rebuilds_after_set_schema () =
  let h = diamond () in
  let h = Hierarchy.update h (ty "A") (fun d -> Type_def.add_attr d (Attribute.make (at "x") (Value_type.Prim Value_type.Int))) in
  let s0 =
    Schema.add_method
      (Schema.with_hierarchy Schema.empty h)
      (Method_def.reader ~gf:"get_x" ~id:"get_x_A" ~param:"self" ~param_type:(ty "A")
         ~attr:(at "x") ~result:(Value_type.Prim Value_type.Int))
  in
  let db = Database.create s0 in
  let oid = Database.new_object db (ty "D") ~init:[ (at "x", Value.Int 7) ] in
  let interp = Interp.create db in
  Alcotest.(check bool)
    "call dispatches before the swap" true
    (Value.equal (Interp.call_on interp "get_x" [ oid ]) (Value.Int 7));
  (* swap in a schema where get_x has no methods: a stale dispatcher
     would still find get_x_A in its resolution table *)
  let s1 = Schema.remove_method s0 (key "get_x" "get_x_A") in
  Database.set_schema db s1;
  match Interp.call_on interp "get_x" [ oid ] with
  | _ -> Alcotest.fail "interpreter answered from stale dispatch tables"
  | exception Interp.Runtime_error _ -> ()

let () =
  let to_alco = QCheck_alcotest.to_alcotest in
  Alcotest.run "schema-index"
    [ ( "properties",
        List.map to_alco
          [ prop_subtype_eq_reachability;
            prop_ancestors_eq;
            prop_descendants_eq;
            prop_direct_subs_eq;
            prop_cpl_eq_fresh_linearize
          ] );
      ( "unit",
        [ Alcotest.test_case "unknown-type semantics" `Quick test_unknown_semantics;
          Alcotest.test_case "interning" `Quick test_interning;
          Alcotest.test_case "generation monotone" `Quick test_generation_monotone;
          Alcotest.test_case "of_hierarchy interned" `Quick test_of_hierarchy_interned;
          Alcotest.test_case "intern table bounded (LRU)" `Quick
            test_intern_table_bounded;
          Alcotest.test_case "ensure_fresh detects staleness" `Quick
            test_dispatch_ensure_fresh;
          Alcotest.test_case "interp rebuilds after set_schema" `Quick
            test_interp_rebuilds_after_set_schema
        ] )
    ]
