(* Cache/uncached equivalence properties.

   The dispatch table (Tdp_dispatch.Dispatch) and the shared
   applicability batch (Applicability.analyze_all) are pure
   memoizations: on any schema they must return exactly what the
   uncached paths return.  Schemas are drawn from Tdp_synth; each
   QCheck case is a generator seed, so shrink results are
   reproducible. *)

open Tdp_core
module Dispatch = Tdp_dispatch.Dispatch

let config_of_seed seed =
  let open Tdp_synth.Synth in
  { default with
    n_types = 4 + (seed mod 12);
    max_supers = 1 + (seed mod 3);
    attrs_per_type = 1 + (seed mod 3);
    n_gfs = 2 + (seed mod 4);
    methods_per_gf = 1 + (seed mod 3);
    max_params = 1 + (seed mod 2);
    calls_per_body = 1 + (seed mod 3);
    recursion = seed mod 3 <> 0;
    seed
  }

let schema_of_seed seed = Tdp_synth.Synth.generate (config_of_seed seed)
let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10_000)

(* Every method's own signature, kept only when all its argument types
   linearize — random multiple inheritance can defeat the CPL, which
   both the cached and uncached paths reject identically but noisily. *)
let calls_of schema =
  let h = Schema.hierarchy schema in
  let linearizes t =
    match Linearize.cpl_result h t with Ok _ -> true | Error _ -> false
  in
  List.filter_map
    (fun m ->
      let tys = Signature.param_types (Method_def.signature m) in
      if List.for_all linearizes tys then Some (Method_def.gf m, tys) else None)
    (Schema.all_methods schema)

let keys ms = List.map Method_def.key ms

type outcome = Found of Method_def.Key.t | Nothing | Amb of string

let outcome d ~gf ~arg_types =
  match Dispatch.most_specific d ~gf ~arg_types with
  | Some m -> Found (Method_def.key m)
  | None -> Nothing
  | exception Dispatch.Ambiguous { gf; _ } -> Amb gf

let prop_applicable_cached_eq_uncached =
  QCheck.Test.make ~name:"cached applicable ≡ uncached" ~count:150 seed_arb
    (fun seed ->
      let schema = schema_of_seed seed in
      let calls = calls_of schema in
      QCheck.assume (calls <> []);
      let d = Dispatch.create schema in
      List.for_all
        (fun (gf, arg_types) ->
          let reference = keys (Dispatch.applicable_uncached d ~gf ~arg_types) in
          let cold = keys (Dispatch.applicable d ~gf ~arg_types) in
          let warm = keys (Dispatch.applicable d ~gf ~arg_types) in
          reference = cold && cold = warm)
        calls)

let prop_most_specific_stable =
  (* Resolution through the table agrees with a fresh dispatcher on the
     same schema, and with itself on a warm second dispatch — including
     the Ambiguous outcome, which must keep raising once cached. *)
  QCheck.Test.make ~name:"cached most_specific ≡ fresh dispatcher" ~count:150
    seed_arb (fun seed ->
      let schema = schema_of_seed seed in
      let calls = calls_of schema in
      QCheck.assume (calls <> []);
      let d1 = Dispatch.create schema and d2 = Dispatch.create schema in
      List.for_all
        (fun (gf, arg_types) ->
          let cold = outcome d1 ~gf ~arg_types in
          let warm = outcome d1 ~gf ~arg_types in
          let fresh = outcome d2 ~gf ~arg_types in
          cold = warm && cold = fresh)
        calls)

let result_eq (a : Applicability.result) (b : Applicability.result) =
  Method_def.Key.Set.equal a.applicable b.applicable
  && Method_def.Key.Set.equal a.not_applicable b.not_applicable
  && Method_def.Key.Set.equal a.candidates b.candidates
  && a.passes = b.passes

let views_of ~seed schema =
  List.init 5 (fun i ->
      Tdp_synth.Synth.gen_projection ~seed:(seed + (i * 131)) schema)

let prop_analyze_all_eq_per_view =
  QCheck.Test.make ~name:"analyze_all ≡ per-view analyze" ~count:120 seed_arb
    (fun seed ->
      let schema = schema_of_seed seed in
      let views = views_of ~seed schema in
      let batched = Applicability.analyze_all schema ~views in
      let single =
        List.map
          (fun (source, projection) ->
            Applicability.analyze schema ~source ~projection)
          views
      in
      List.for_all2
        (fun b s ->
          match (b, s) with
          | Ok rb, Ok rs -> result_eq rb rs
          | Error eb, Error es -> Fmt.str "%a" Error.pp eb = Fmt.str "%a" Error.pp es
          | _ -> false)
        batched single)

let prop_analyze_all_exn_eq =
  (* The raising variant over well-formed views only. *)
  QCheck.Test.make ~name:"analyze_all_exn ≡ per-view analyze_exn" ~count:120
    seed_arb (fun seed ->
      let schema = schema_of_seed seed in
      let views =
        List.filter
          (fun (source, projection) ->
            match Applicability.analyze schema ~source ~projection with
            | Ok _ -> true
            | Error _ -> false)
          (views_of ~seed schema)
      in
      QCheck.assume (views <> []);
      let batched = Applicability.analyze_all_exn schema ~views in
      let single =
        List.map
          (fun (source, projection) ->
            Applicability.analyze_exn schema ~source ~projection)
          views
      in
      List.for_all2 result_eq batched single)

let () =
  let to_alco = QCheck_alcotest.to_alcotest in
  Alcotest.run "cache-equiv"
    [ ( "properties",
        List.map to_alco
          [ prop_applicable_cached_eq_uncached;
            prop_most_specific_stable;
            prop_analyze_all_eq_per_view;
            prop_analyze_all_exn_eq
          ] )
    ]
