module Database = Tdp_store.Database
module Dump = Tdp_store.Dump
module Value = Tdp_store.Value
module Wal = Tdp_store.Wal
module Txn_log = Tdp_txn.Txn_log
module Mvcc = Tdp_txn.Mvcc
open Helpers

let schema = Tdp_paper.Fig1.schema
let oid = Tdp_store.Oid.of_int
let load_schema src = (Tdp_lang.Elaborate.load_exn src).Tdp_lang.Elaborate.schema

let with_temp_dir f =
  let dir = Filename.temp_file "tdp_txn" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let commit_exn txn =
  match Mvcc.commit txn with
  | Ok v -> v
  | Error e -> Alcotest.failf "commit failed: %s" (Mvcc.commit_error_message e)

let new_employee txn n =
  Mvcc.new_object txn (ty "Employee")
    ~init:[ (at "ssn", Value.Int n); (at "name", Value.String "e") ]

(* ---- transaction lifecycle and snapshot isolation ------------------- *)

let test_commit_publishes () =
  let s = Mvcc.create schema in
  let t1 = Mvcc.begin_ s in
  let o = new_employee t1 1 in
  Mvcc.set_attr t1 o (at "pay_rate") (Value.Float 60.0);
  (* staged but uncommitted: visible in the overlay, not at the head *)
  Alcotest.(check int) "overlay sees the write" 1 (Mvcc.count (Mvcc.view t1));
  Alcotest.(check int) "head does not" 0
    (Mvcc.count (Mvcc.head s ~branch:Mvcc.main_branch));
  let v = commit_exn t1 in
  Alcotest.(check int) "first version" 1 v;
  let head = Mvcc.head s ~branch:Mvcc.main_branch in
  Alcotest.(check int) "published" 1 (Mvcc.count head);
  Alcotest.(check string) "value" "60.0"
    (Dump.value_to_string (Mvcc.get_attr head o (at "pay_rate")))

let test_snapshot_isolation () =
  let s = Mvcc.create schema in
  let t1 = Mvcc.begin_ s in
  let o = new_employee t1 1 in
  ignore (commit_exn t1);
  (* a reader pins the version it started from *)
  let reader = Mvcc.head s ~branch:Mvcc.main_branch in
  let t2 = Mvcc.begin_ s in
  Mvcc.set_attr t2 o (at "ssn") (Value.Int 99);
  ignore (commit_exn t2);
  Alcotest.(check string) "reader still sees version 1" "1"
    (Dump.value_to_string (Mvcc.get_attr reader o (at "ssn")));
  Alcotest.(check string) "new head sees version 2" "99"
    (Dump.value_to_string
       (Mvcc.get_attr (Mvcc.head s ~branch:Mvcc.main_branch) o (at "ssn")))

let test_first_writer_wins () =
  let s = Mvcc.create schema in
  let t0 = Mvcc.begin_ s in
  let o = new_employee t0 1 in
  ignore (commit_exn t0);
  (* two open transactions race on the same object *)
  let ta = Mvcc.begin_ s and tb = Mvcc.begin_ s in
  Mvcc.set_attr ta o (at "ssn") (Value.Int 10);
  Mvcc.set_attr tb o (at "ssn") (Value.Int 20);
  ignore (commit_exn ta);
  (match Mvcc.commit tb with
  | Ok _ -> Alcotest.fail "second writer must conflict"
  | Error (Mvcc.Conflict _) -> ()
  | Error (Mvcc.Invalid m) -> Alcotest.failf "expected conflict, got invalid: %s" m);
  (match Mvcc.state tb with
  | Mvcc.Aborted _ -> ()
  | _ -> Alcotest.fail "loser must be aborted");
  Alcotest.(check string) "winner's write survives" "10"
    (Dump.value_to_string
       (Mvcc.get_attr (Mvcc.head s ~branch:Mvcc.main_branch) o (at "ssn")));
  (* disjoint write sets do not conflict *)
  let tc = Mvcc.begin_ s and td = Mvcc.begin_ s in
  ignore (new_employee tc 2);
  Mvcc.set_attr td o (at "ssn") (Value.Int 30);
  ignore (commit_exn tc);
  ignore (commit_exn td)

let test_revalidation_conflict () =
  (* write sets are disjoint, but the staged op no longer applies: a
     concurrent commit deleted the object the reference points at *)
  let s = Mvcc.create schema in
  let t0 = Mvcc.begin_ s in
  let o = new_employee t0 1 in
  ignore (commit_exn t0);
  let ta = Mvcc.begin_ s and tb = Mvcc.begin_ s in
  Mvcc.delete ta o;
  Mvcc.set_attr tb o (at "ssn") (Value.Int 9);
  ignore (commit_exn ta);
  match Mvcc.commit tb with
  | Ok _ -> Alcotest.fail "write to a deleted object must conflict"
  | Error (Mvcc.Conflict _) -> ()
  | Error (Mvcc.Invalid m) -> Alcotest.failf "expected conflict, got invalid: %s" m

let test_abort_and_read_only () =
  let s = Mvcc.create schema in
  let t1 = Mvcc.begin_ s in
  ignore (new_employee t1 1);
  Mvcc.abort t1;
  Alcotest.(check int) "abort publishes nothing" 0
    (Mvcc.count (Mvcc.head s ~branch:Mvcc.main_branch));
  (match Mvcc.commit t1 with
  | Error (Mvcc.Invalid _) -> ()
  | _ -> Alcotest.fail "committing an aborted txn must be invalid");
  (* read-only commits do not bump the version *)
  let t2 = Mvcc.begin_ s in
  Alcotest.(check int) "read-only commit" 0 (commit_exn t2);
  Alcotest.(check int) "version unchanged" 0 (Mvcc.current_version s)

let test_staging_failure_keeps_txn_open () =
  let s = Mvcc.create schema in
  let t1 = Mvcc.begin_ s in
  let o = new_employee t1 1 in
  (match Mvcc.set_attr t1 o (at "nonexistent") (Value.Int 1) with
  | () -> Alcotest.fail "bad attr must raise"
  | exception Database.Store_error _ -> ());
  (* the failed op left no trace; the transaction still commits *)
  Alcotest.(check int) "still one object staged" 1 (Mvcc.count (Mvcc.view t1));
  ignore (commit_exn t1)

let test_branches () =
  let s = Mvcc.create schema in
  let t0 = Mvcc.begin_ s in
  let o = new_employee t0 1 in
  ignore (commit_exn t0);
  ignore (Mvcc.fork s ~from_:Mvcc.main_branch ~branch:"dev");
  (* same-object writes on different branches are independent *)
  let tm = Mvcc.begin_ s and td = Mvcc.begin_ ~branch:"dev" s in
  Mvcc.set_attr tm o (at "ssn") (Value.Int 100);
  Mvcc.set_attr td o (at "ssn") (Value.Int 200);
  ignore (commit_exn tm);
  ignore (commit_exn td);
  Alcotest.(check string) "main head" "100"
    (Dump.value_to_string
       (Mvcc.get_attr (Mvcc.head s ~branch:Mvcc.main_branch) o (at "ssn")));
  Alcotest.(check string) "dev head" "200"
    (Dump.value_to_string (Mvcc.get_attr (Mvcc.head s ~branch:"dev") o (at "ssn")));
  Alcotest.(check (list (pair string int))) "branches listed"
    [ ("dev", 3); ("main", 2) ]
    (Mvcc.branches s)

(* ---- durability: log round-trip, dangling brackets, fault injection - *)

(* Run a canonical history against a directory-backed store: three
   committed transactions and one conflict-abort.  Returns the dump
   after each commit (the oracle states). *)
let canonical_history dir =
  let o = Mvcc.open_dir ~load_schema ~sync:false ~schema dir in
  let s = o.Mvcc.store in
  let dumps = ref [ Mvcc.dump (Mvcc.head s ~branch:Mvcc.main_branch) ] in
  let snap () =
    dumps := Mvcc.dump (Mvcc.head s ~branch:Mvcc.main_branch) :: !dumps
  in
  let t1 = Mvcc.begin_ s in
  let o1 = new_employee t1 1 in
  Mvcc.set_attr t1 o1 (at "pay_rate") (Value.Float (0.1 +. 0.2));
  ignore (commit_exn t1);
  snap ();
  let t2 = Mvcc.begin_ s in
  ignore (new_employee t2 2);
  Mvcc.set_attr t2 o1 (at "hrs_worked") (Value.Float 40.0);
  ignore (commit_exn t2);
  snap ();
  (* a conflict: its abort record lands in the log *)
  let ta = Mvcc.begin_ s and tb = Mvcc.begin_ s in
  Mvcc.set_attr ta o1 (at "ssn") (Value.Int 7);
  Mvcc.set_attr tb o1 (at "ssn") (Value.Int 8);
  ignore (commit_exn ta);
  snap ();
  (match Mvcc.commit tb with
  | Error (Mvcc.Conflict _) -> ()
  | _ -> Alcotest.fail "expected a conflict");
  Mvcc.close s;
  (o1, Array.of_list (List.rev !dumps))

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_reopen_replays_commits () =
  with_temp_dir (fun dir ->
      let _, dumps = canonical_history dir in
      let o = Mvcc.open_dir ~load_schema ~sync:false ~schema dir in
      Alcotest.(check int) "three commits replayed" 3 o.Mvcc.txn_applied;
      Alcotest.(check int) "none discarded" 0 o.Mvcc.txn_discarded;
      Alcotest.(check bool) "clean" true (o.Mvcc.txn_corruption = None);
      Alcotest.(check string) "state is the last commit" dumps.(3)
        (Mvcc.dump (Mvcc.head o.Mvcc.store ~branch:Mvcc.main_branch));
      Alcotest.(check int) "version restored" 3
        (Mvcc.current_version o.Mvcc.store);
      (* identities are never reused across recovery *)
      let t = Mvcc.begin_ o.Mvcc.store in
      let o3 = new_employee t 3 in
      Alcotest.(check bool) "fresh oid above every logged one" true
        (Tdp_store.Oid.to_int o3 >= 3);
      ignore (commit_exn t);
      Mvcc.close o.Mvcc.store)

let test_dangling_bracket_discarded () =
  with_temp_dir (fun dir ->
      let o1, dumps = canonical_history dir in
      (* crash mid-commit: a begin and its ops hit the log, the commit
         record did not *)
      let txid = 99 in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644
          (Filename.concat dir "txn.log") in
      let next =
        (Txn_log.decode (read_file (Filename.concat dir "txn.log"))).Wal.fnext_seq
      in
      output_string oc
        (Txn_log.encode ~seq:next
           (Txn_log.Begin { txid; branch = Mvcc.main_branch }));
      output_string oc
        (Txn_log.encode ~seq:(next + 1)
           (Txn_log.Op
              { txid;
                op = Database.Op_set { oid = o1; attr = at "ssn"; value = Value.Int 1234 }
              }));
      close_out oc;
      let o = Mvcc.open_dir ~load_schema ~sync:false ~schema dir in
      Alcotest.(check int) "commits replayed" 3 o.Mvcc.txn_applied;
      Alcotest.(check int) "dangling bracket discarded" 1 o.Mvcc.txn_discarded;
      Alcotest.(check string) "no torn state" dumps.(3)
        (Mvcc.dump (Mvcc.head o.Mvcc.store ~branch:Mvcc.main_branch));
      Mvcc.close o.Mvcc.store)

let test_txn_log_truncation_every_offset () =
  with_temp_dir (fun dir ->
      let _, dumps = canonical_history dir in
      let log = read_file (Filename.concat dir "txn.log") in
      let d = Txn_log.decode log in
      (* commits whose record ends at or before the cut are durable *)
      let commits_by t =
        List.length
          (List.filter
             (fun (e : Txn_log.record Wal.framed) ->
               e.Wal.fends_at <= t
               && match e.Wal.fvalue with Txn_log.Commit _ -> true | _ -> false)
             d.Wal.fentries)
      in
      for t = 0 to String.length log do
        let o =
          Mvcc.recover_text ~load_schema ~schema ~txn:(String.sub log 0 t) ()
        in
        let k = commits_by t in
        Alcotest.(check int) (Fmt.str "commits after cut at %d" t) k
          o.Mvcc.txn_applied;
        Alcotest.(check string)
          (Fmt.str "state after cut at %d" t)
          dumps.(k)
          (Mvcc.dump (Mvcc.head o.Mvcc.store ~branch:Mvcc.main_branch))
      done)

(* ---- checkpoint: crash at every step -------------------------------- *)

let test_checkpoint_roundtrip () =
  with_temp_dir (fun dir ->
      let _, dumps = canonical_history dir in
      let o = Mvcc.open_dir ~load_schema ~sync:false ~schema dir in
      Mvcc.checkpoint o.Mvcc.store;
      Mvcc.close o.Mvcc.store;
      (* the log was truncated; the snapshot carries the state *)
      Alcotest.(check string) "log empty after checkpoint" ""
        (read_file (Filename.concat dir "txn.log"));
      let snap = read_file (Filename.concat dir "snapshot.dump") in
      Alcotest.(check bool) "txn-seq header present" true (Dump.txn_seq snap > 0);
      let o2 = Mvcc.open_dir ~load_schema ~sync:false ~schema dir in
      Alcotest.(check int) "nothing to replay" 0 o2.Mvcc.txn_applied;
      Alcotest.(check string) "state preserved" dumps.(3)
        (Mvcc.dump (Mvcc.head o2.Mvcc.store ~branch:Mvcc.main_branch));
      (* and the store still accepts commits after the checkpoint *)
      let t = Mvcc.begin_ o2.Mvcc.store in
      ignore (new_employee t 50);
      ignore (commit_exn t);
      Mvcc.close o2.Mvcc.store;
      let o3 = Mvcc.open_dir ~load_schema ~sync:false ~schema dir in
      Alcotest.(check int) "post-checkpoint commit replays" 1 o3.Mvcc.txn_applied;
      Mvcc.close o3.Mvcc.store)

let test_checkpoint_crash_before_rename () =
  with_temp_dir (fun dir ->
      let _, dumps = canonical_history dir in
      (* crash between temp-write and rename: an orphaned .tmp sibling
         full of garbage must be removed, never read as a snapshot *)
      let tmp = Filename.concat dir "snapshot.dump.tmp" in
      Out_channel.with_open_bin tmp (fun oc ->
          Out_channel.output_string oc "obj #1 Garbage x=nonsense\n");
      let o = Mvcc.open_dir ~load_schema ~sync:false ~schema dir in
      Alcotest.(check bool) "orphan removed" true o.Mvcc.tmp_removed;
      Alcotest.(check bool) "gone from disk" false (Sys.file_exists tmp);
      Alcotest.(check string) "state from log, not orphan" dumps.(3)
        (Mvcc.dump (Mvcc.head o.Mvcc.store ~branch:Mvcc.main_branch));
      Mvcc.close o.Mvcc.store)

let test_checkpoint_crash_before_truncate () =
  with_temp_dir (fun dir ->
      let _, dumps = canonical_history dir in
      (* crash after the snapshot rename but before the log truncation:
         replay must skip the absorbed prefix, not double-apply it *)
      let o = Mvcc.open_dir ~load_schema ~sync:false ~schema dir in
      let log_before = read_file (Filename.concat dir "txn.log") in
      Mvcc.checkpoint o.Mvcc.store;
      Mvcc.close o.Mvcc.store;
      Out_channel.with_open_bin (Filename.concat dir "txn.log") (fun oc ->
          Out_channel.output_string oc log_before);
      let o2 = Mvcc.open_dir ~load_schema ~sync:false ~schema dir in
      Alcotest.(check int) "absorbed prefix skipped" 0 o2.Mvcc.txn_applied;
      Alcotest.(check string) "no double apply" dumps.(3)
        (Mvcc.dump (Mvcc.head o2.Mvcc.store ~branch:Mvcc.main_branch));
      Mvcc.close o2.Mvcc.store)

(* ---- writer failure atomicity (seq counter vs failed appends) ------- *)

let test_append_failure_poisons_writer () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.writer_create ~sync:true ~path ~next_seq:1 () in
      let op : Database.op =
        Op_new { oid = oid 1; ty = ty "Person"; init = [ (at "ssn", Value.Int 1) ] }
      in
      ignore (Wal.append w op);
      Alcotest.(check int) "seq advanced to 2" 2 (Wal.writer_seq w);
      let committed = read_file path in
      (* sabotage the writer: close its fd out from under it, so the
         flush/fsync of the next append fails mid-record *)
      Unix.close (Wal.writer_fd w);
      (match Wal.append w op with
      | _ -> Alcotest.fail "append on a dead fd must raise"
      | exception _ -> ());
      Alcotest.(check int) "seq NOT advanced by the failed append" 2
        (Wal.writer_seq w);
      Alcotest.(check bool) "writer poisoned" true (Wal.writer_poisoned w);
      (* every later append refuses rather than gapping the sequence *)
      (match Wal.append w op with
      | _ -> Alcotest.fail "poisoned writer must refuse"
      | exception Wal.Wal_error _ -> ());
      (* the durable prefix is exactly the committed records *)
      let d = Wal.decode (read_file path) in
      Alcotest.(check int) "one committed record" 1 (List.length d.Wal.entries);
      Alcotest.(check string) "file rolled back to the record boundary"
        committed (read_file path))

let suite =
  [ Alcotest.test_case "commit publishes a new version" `Quick test_commit_publishes;
    Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
    Alcotest.test_case "first writer wins" `Quick test_first_writer_wins;
    Alcotest.test_case "revalidation catches read-write races" `Quick
      test_revalidation_conflict;
    Alcotest.test_case "abort and read-only commits" `Quick test_abort_and_read_only;
    Alcotest.test_case "staging failure keeps the txn open" `Quick
      test_staging_failure_keeps_txn_open;
    Alcotest.test_case "branches are independent" `Quick test_branches;
    Alcotest.test_case "reopen replays committed brackets" `Quick
      test_reopen_replays_commits;
    Alcotest.test_case "dangling bracket discarded (crash mid-commit)" `Quick
      test_dangling_bracket_discarded;
    Alcotest.test_case "txn log truncation at every byte offset" `Quick
      test_txn_log_truncation_every_offset;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint crash before rename (orphaned tmp)" `Quick
      test_checkpoint_crash_before_rename;
    Alcotest.test_case "checkpoint crash before truncate (no double apply)"
      `Quick test_checkpoint_crash_before_truncate;
    Alcotest.test_case "failed append poisons the writer" `Quick
      test_append_failure_poisons_writer
  ]

let () = Alcotest.run "txn" [ ("txn", suite) ]
