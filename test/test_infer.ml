(* Inference tests: principal schemas of algebra pipelines, every
   solve-time error, the instantiation check, Catalog.typecheck, and a
   QCheck differential suite pinning the contract with View.derive:
   whenever derivation succeeds on a concrete schema, inference
   succeeds and that schema is admitted. *)

open Tdp_core
open Helpers
module Infer = Tdp_infer.Infer
module Pipeline = Tdp_infer.Pipeline
module Kind = Tdp_infer.Kind
module View = Tdp_algebra.View
module Pred = Tdp_algebra.Pred
module Catalog = Tdp_algebra.Catalog

let fig1 = Tdp_paper.Fig1.schema
let no_ref (_ : Type_name.t) = false
let lower ?(is_ref = no_ref) e = View.to_pipeline ~is_ref e
let infer_expr ?name e = Infer.infer ?name (lower e)

let principal = function
  | Ok (p : Infer.principal) -> p
  | Error e -> Alcotest.failf "unexpected inference error: %a" Infer.pp_error e

let error = function
  | Error (e : Infer.error) -> e
  | Ok (p : Infer.principal) ->
      Alcotest.failf "expected an error, got %a" Infer.pp_principal p

let attr_set l = Attr_name.Set.of_list (List.map at l)

let check_row msg expected (r : Infer.row) =
  let show = Fmt.str "%a" Infer.pp_row in
  Alcotest.(check string) msg (show expected) (show r)

let emp_view =
  View.Project
    (View.Base (ty "Employee"), List.map at [ "ssn"; "date_of_birth"; "pay_rate" ])

let seniors_view =
  View.Select (emp_view, Pred.cmp (at "date_of_birth") Pred.Le (Body.Int 1975))

(* A three-type diamond for generalize/join: S{x} with subtypes A{y}
   and B{z}, so A and B overlap on the inherited x. *)
let tri_schema () =
  let t ?(supers = []) name attr =
    Type_def.make ~attrs:[ Attribute.make (at attr) Value_type.int ] ~supers (ty name)
  in
  let s = Schema.add_type Schema.empty (t "S" "x") in
  let s = Schema.add_type s (t ~supers:[ (ty "S", 1) ] "A" "y") in
  Schema.add_type s (t ~supers:[ (ty "S", 1) ] "B" "z")

(* Two unrelated types, for joins and empty generalizations. *)
let disjoint_schema () =
  let t name attr =
    Type_def.make ~attrs:[ Attribute.make (at attr) Value_type.int ] ~supers:[] (ty name)
  in
  Schema.add_type (Schema.add_type Schema.empty (t "A" "x")) (t "B" "y")

(* --- principal schemas ---------------------------------------------- *)

let test_principal_of_seniors () =
  let p = principal (infer_expr ~name:"Seniors" seniors_view) in
  check_row "projection tops the row"
    (Infer.Exactly (attr_set [ "ssn"; "date_of_birth"; "pay_rate" ]))
    p.result;
  (match p.sources with
  | [ (src, req) ] ->
      Alcotest.(check string) "one source" "Employee" (Type_name.to_string src);
      Alcotest.(check bool) "source must carry the projected attrs" true
        (Attr_name.Set.equal req (attr_set [ "ssn"; "date_of_birth"; "pay_rate" ]))
  | _ -> Alcotest.fail "expected exactly one source");
  (match p.kinds with
  | [ (a, k) ] ->
      Alcotest.(check string) "constrained attr" "date_of_birth"
        (Attr_name.to_string a);
      Alcotest.(check string) "ordering against an int literal" "{int|float|date}"
        (Kind.to_string k)
  | _ -> Alcotest.fail "expected exactly one kind constraint");
  Alcotest.(check bool) "fig1 admits it" true
    (Infer.admits fig1 p = Ok ())

let test_select_row_stays_open () =
  let p =
    principal
      (infer_expr
         (View.Select
            (View.Base (ty "Employee"),
             Pred.cmp (at "date_of_birth") Pred.Le (Body.Int 1975))))
  in
  check_row "selection only bounds the row from below"
    (Infer.At_least (attr_set [ "date_of_birth" ]))
    p.result

let test_projected_cumulative_is_projection_list () =
  (* The solver's Closed rows assume a projection's derived type has
     exactly the projected attributes as cumulative state; pin that
     against the real derivation. *)
  let o = View.derive_exn fig1 ~view:"EmpView" emp_view in
  let cumulative =
    Hierarchy.all_attribute_names (Schema.hierarchy o.schema) o.name
    |> List.map Attr_name.to_string |> List.sort String.compare
  in
  Alcotest.(check (list string))
    "derived cumulative state = projection list"
    [ "date_of_birth"; "pay_rate"; "ssn" ] cumulative

(* --- solve-time errors ---------------------------------------------- *)

let test_empty_projection () =
  match error (infer_expr (View.Project (View.Base (ty "Employee"), []))) with
  | Infer.Ill_typed _ -> ()
  | e -> Alcotest.failf "expected Ill_typed, got %a" Infer.pp_error e

let test_unknown_reference () =
  let node = lower ~is_ref:(fun _ -> true) (View.Base (ty "Phantom")) in
  match error (Infer.infer node) with
  | Infer.Ill_typed _ -> ()
  | e -> Alcotest.failf "expected Ill_typed, got %a" Infer.pp_error e

let test_attr_absent () =
  let e =
    View.Project (View.Project (View.Base (ty "Employee"), [ at "ssn" ]), [ at "name" ])
  in
  match error (infer_expr e) with
  | Infer.Attr_absent { attr; row; _ } ->
      Alcotest.(check string) "missing attr" "name" (Attr_name.to_string attr);
      Alcotest.(check (list string)) "closed row" [ "ssn" ]
        (List.map Attr_name.to_string row)
  | e -> Alcotest.failf "expected Attr_absent, got %a" Infer.pp_error e

let test_join_related () =
  let cases =
    [ View.Join (View.Base (ty "A"), View.Base (ty "A"));
      (* selection derives a subtype of its operand *)
      View.Join (View.Select (View.Base (ty "A"), Pred.True), View.Base (ty "A"));
      (* and the source is a subtype of its projection *)
      View.Join (View.Project (View.Base (ty "A"), [ at "x" ]), View.Base (ty "A"))
    ]
  in
  List.iter
    (fun e ->
      match error (infer_expr e) with
      | Infer.Join_related _ -> ()
      | err -> Alcotest.failf "expected Join_related, got %a" Infer.pp_error err)
    cases

let test_join_unrelated_solves () =
  (* siblings are not provably related: the solver must accept, and a
     disjoint concrete schema must admit *)
  let e = View.Join (View.Base (ty "A"), View.Base (ty "B")) in
  let p = principal (infer_expr e) in
  Alcotest.(check bool) "disjoint schema admits" true
    (Infer.admits (disjoint_schema ()) p = Ok ())

let test_pred_conflict_same_view () =
  let e =
    View.Select
      (View.Base (ty "A"),
       Pred.And (Pred.cmp (at "x") Pred.Eq (Body.Int 1),
                 Pred.cmp (at "x") Pred.Eq (Body.String "one")))
  in
  (match error (infer_expr e) with
  | Infer.Pred_conflict { attr; _ } ->
      Alcotest.(check string) "conflicted attr" "x" (Attr_name.to_string attr)
  | err -> Alcotest.failf "expected Pred_conflict, got %a" Infer.pp_error err);
  (* ordering a string literal admits no attribute type at all *)
  let e = View.Select (View.Base (ty "A"), Pred.cmp (at "x") Pred.Lt (Body.String "z")) in
  match error (infer_expr e) with
  | Infer.Pred_conflict _ -> ()
  | err -> Alcotest.failf "expected Pred_conflict, got %a" Infer.pp_error err

let test_reuse_conflict_across_views () =
  let prog =
    [ ("ByName", lower (View.Select (View.Base (ty "A"),
                                     Pred.cmp (at "name") Pred.Eq (Body.String "ada"))));
      ("ByRank", lower (View.Select (View.Base (ty "A"),
                                     Pred.cmp (at "name") Pred.Lt (Body.Int 5))))
    ]
  in
  match Infer.infer_program prog with
  | [ ("ByName", Ok _); ("ByRank", Error (Infer.Reuse_conflict { view; prior; attr })) ] ->
      Alcotest.(check string) "blamed view" "ByRank" view;
      Alcotest.(check string) "prior view" "ByName" prior;
      Alcotest.(check string) "shared attr" "name" (Attr_name.to_string attr)
  | _ -> Alcotest.fail "expected ByName to solve and ByRank to conflict"

let test_failed_view_does_not_cascade () =
  (* a later view over an ill-typed one still reports its own story *)
  let prog =
    [ ("Bad", lower (View.Project (View.Base (ty "A"), [])));
      ("Over", lower ~is_ref:(fun n -> Type_name.to_string n = "Bad")
                 (View.Select (View.Base (ty "Bad"), Pred.True)))
    ]
  in
  match Infer.infer_program prog with
  | [ ("Bad", Error (Infer.Ill_typed _)); ("Over", Ok _) ] -> ()
  | _ -> Alcotest.fail "expected Bad to fail alone and Over to solve"

(* --- instantiation --------------------------------------------------- *)

let test_admits_generalize () =
  let e = View.Generalize (View.Base (ty "A"), View.Base (ty "B")) in
  let p = principal (infer_expr e) in
  Alcotest.(check bool) "overlapping siblings admit" true
    (Infer.admits (tri_schema ()) p = Ok ());
  match Infer.admits (disjoint_schema ()) p with
  | Error (Infer.Ill_typed _) -> ()
  | _ -> Alcotest.fail "disjoint types must not instantiate a generalization"

let test_join_residuals () =
  (* projecting over a join: the attribute must come from some operand,
     which only a concrete schema can decide *)
  let e = View.Project (View.Join (View.Base (ty "A"), View.Base (ty "B")), [ at "x" ]) in
  let p = principal (infer_expr e) in
  Alcotest.(check (list string)) "x is residual" [ "x" ]
    (List.map Attr_name.to_string p.residuals);
  Alcotest.(check bool) "A supplies x" true
    (Infer.admits (disjoint_schema ()) p = Ok ());
  let ghost =
    principal
      (infer_expr
         (View.Project (View.Join (View.Base (ty "A"), View.Base (ty "B")), [ at "g" ])))
  in
  match Infer.admits (disjoint_schema ()) ghost with
  | Error (Infer.Attr_absent _) -> ()
  | _ -> Alcotest.fail "no operand supplies g"

let test_admits_call () =
  let p = principal (Infer.infer (Pipeline.Call { gf = "age"; node = Source (ty "Person") })) in
  Alcotest.(check (list string)) "gf recorded" [ "age" ] p.gfs;
  Alcotest.(check bool) "fig1 declares age/1" true (Infer.admits fig1 p = Ok ());
  let q = principal (Infer.infer (Pipeline.Call { gf = "nosuch"; node = Source (ty "Person") })) in
  (match Infer.admits fig1 q with
  | Error (Infer.Ill_typed _) -> ()
  | _ -> Alcotest.fail "undeclared generic function must not instantiate");
  let binary = Schema.declare_gf fig1 (Generic_function.declare ~arity:2 "pair") in
  let r = principal (Infer.infer (Pipeline.Call { gf = "pair"; node = Source (ty "Person") })) in
  match Infer.admits binary r with
  | Error (Infer.Ill_typed _) -> ()
  | _ -> Alcotest.fail "a 2-ary generic function is not a pipeline method"

let test_kind_lattice () =
  let eq lit = Kind.of_comparison ~ordered:false lit in
  let ord lit = Kind.of_comparison ~ordered:true lit in
  Alcotest.(check string) "numeric equality" "{int|float|date}"
    (Kind.to_string (eq (Body.Int 1)));
  Alcotest.(check string) "string equality" "{string}"
    (Kind.to_string (eq (Body.String "s")));
  Alcotest.(check bool) "string ordering is empty" true
    (Kind.is_empty (ord (Body.String "s")));
  Alcotest.(check bool) "null equality is unconstrained" true
    (Kind.is_any (eq Body.Null));
  Alcotest.(check bool) "date admits numeric comparison" true
    (Kind.admits (ord (Body.Int 1980)) Value_type.date);
  Alcotest.(check bool) "string refuses numeric comparison" false
    (Kind.admits (ord (Body.Int 1980)) Value_type.string)

(* --- Catalog.typecheck ----------------------------------------------- *)

let test_catalog_typecheck () =
  let c = Catalog.create fig1 in
  (match Catalog.typecheck c ~name:"EmpView" emp_view with
  | Ok p -> check_row "principal row"
              (Infer.Exactly (attr_set [ "ssn"; "date_of_birth"; "pay_rate" ])) p.result
  | Error e -> Alcotest.failf "EmpView should typecheck: %a" Infer.pp_error e);
  (match Catalog.typecheck c ~name:"Ghostly"
           (View.Project (View.Base (ty "Employee"), [ at "ghost" ])) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "projecting a missing attribute must not typecheck");
  (* references to already-defined views resolve through the catalog *)
  let c, _ = Catalog.define_exn c ~name:"EmpView" emp_view in
  (match Catalog.typecheck c ~name:"Tiny"
           (View.Project (View.Base (ty "EmpView"), [ at "ssn" ])) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "Tiny should typecheck: %a" Infer.pp_error e);
  match Catalog.typecheck c ~name:"TooWide"
          (View.Project (View.Base (ty "EmpView"), [ at "hrs_worked" ])) with
  | Error (Infer.Attr_absent _) -> ()
  | _ -> Alcotest.fail "EmpView's row is closed; hrs_worked is gone"

(* --- differential properties ----------------------------------------- *)

let config_of_seed seed =
  let open Tdp_synth.Synth in
  { default with
    n_types = 4 + (seed mod 10);
    max_supers = 1 + (seed mod 3);
    attrs_per_type = 1 + (seed mod 3);
    n_gfs = 2;
    methods_per_gf = 1;
    max_params = 1;
    calls_per_body = 1;
    seed
  }

(* A random view expression over the schema's real types and attribute
   names, with an occasional bogus attribute so both accept and reject
   paths are exercised. *)
let rec gen_expr h types depth st =
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let base () = View.Base (pick types) in
  if depth = 0 then base ()
  else
    let sub () = gen_expr h types (depth - 1) st in
    let pool () =
      let attrs = Hierarchy.all_attribute_names h (pick types) in
      let attrs = if attrs = [] then [ at "zz_ghost" ] else attrs in
      if Random.State.int st 8 = 0 then at "zz_ghost" :: attrs else attrs
    in
    match Random.State.int st 6 with
    | 0 -> base ()
    | 1 ->
        let pool = pool () in
        let n = 1 + Random.State.int st (List.length pool) in
        View.Project (sub (), List.filteri (fun i _ -> i < n) pool)
    | 2 ->
        let attr = pick (pool ()) in
        let op = pick Pred.[ Eq; Ne; Lt; Le; Gt; Ge ] in
        let lit =
          pick Body.[ Int 1; Float 2.5; String "s"; Bool true; Null ]
        in
        View.Select (sub (), Pred.cmp attr op lit)
    | 3 -> View.Generalize (sub (), sub ())
    | _ -> View.Join (sub (), sub ())

let sub_exprs (e : View.expr) =
  match e with
  | View.Base _ -> []
  | View.Project (e1, attrs) ->
      e1
      :: (if List.length attrs > 1 then [ View.Project (e1, [ List.hd attrs ]) ] else [])
  | View.Select (e1, p) -> e1 :: (if p = Pred.True then [] else [ View.Select (e1, Pred.True) ])
  | View.Generalize (a, b) | View.Join (a, b) -> [ a; b ]

let diff_arb =
  let gen st =
    let seed = Random.State.int st 10_000 in
    let schema = Tdp_synth.Synth.generate (config_of_seed seed) in
    let h = Schema.hierarchy schema in
    (seed, gen_expr h (Hierarchy.type_names h) (1 + Random.State.int st 3) st)
  in
  let print (seed, e) = Fmt.str "seed %d: %a" seed View.pp_expr e in
  let shrink (seed, e) yield = List.iter (fun e' -> yield (seed, e')) (sub_exprs e) in
  QCheck.make ~print ~shrink gen

(* The inference contract: derivation success implies a principal type
   this schema admits; a solve-time error marks a pipeline no schema
   can derive.  (Instantiation may be more permissive than derivation —
   name clashes and method-preservation failures are derivation-only.) *)
let prop_differential =
  QCheck.Test.make ~name:"derive ok => infer ok and schema admitted" ~count:1000
    diff_arb (fun (seed, e) ->
      let schema = Tdp_synth.Synth.generate (config_of_seed seed) in
      match (View.derive schema ~view:"v" e, infer_expr ~name:"v" e) with
      | Ok _, Error _ -> false
      | Ok _, Ok p -> Infer.admits schema p = Ok ()
      | Error _, _ -> true)

(* Program-level agreement: a projection workload the catalog accepts
   is accepted by typecheck-before-define, across a view reference. *)
let prop_program_level =
  QCheck.Test.make ~name:"catalog define agrees with typecheck" ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10_000))
    (fun seed ->
      let schema = Tdp_synth.Synth.generate (config_of_seed seed) in
      let source, projection = Tdp_synth.Synth.gen_projection ~seed schema in
      let v1 = View.Project (View.Base source, projection) in
      let v2 = View.Project (View.Base (ty "v1"), [ List.hd projection ]) in
      let c = Catalog.create schema in
      let tc1 = Result.is_ok (Catalog.typecheck c ~name:"v1" v1) in
      match Catalog.define c ~name:"v1" v1 with
      | Error _ -> not tc1 || true  (* typecheck may be laxer, never stricter *)
      | Ok (c, _) ->
          tc1
          && Result.is_ok (Catalog.typecheck c ~name:"v2" v2)
          && Result.is_ok (Catalog.define c ~name:"v2" v2))

let () =
  let to_alco = QCheck_alcotest.to_alcotest in
  Alcotest.run "infer"
    [ ( "principal",
        [ Alcotest.test_case "seniors pipeline" `Quick test_principal_of_seniors;
          Alcotest.test_case "select keeps row open" `Quick test_select_row_stays_open;
          Alcotest.test_case "projection closes the row" `Quick
            test_projected_cumulative_is_projection_list
        ] );
      ( "errors",
        [ Alcotest.test_case "empty projection" `Quick test_empty_projection;
          Alcotest.test_case "unknown reference" `Quick test_unknown_reference;
          Alcotest.test_case "attr absent from closed row" `Quick test_attr_absent;
          Alcotest.test_case "join of related operands" `Quick test_join_related;
          Alcotest.test_case "join of siblings solves" `Quick test_join_unrelated_solves;
          Alcotest.test_case "predicate conflict" `Quick test_pred_conflict_same_view;
          Alcotest.test_case "cross-view reuse conflict" `Quick
            test_reuse_conflict_across_views;
          Alcotest.test_case "failures do not cascade" `Quick
            test_failed_view_does_not_cascade
        ] );
      ( "instantiation",
        [ Alcotest.test_case "generalize admits/rejects" `Quick test_admits_generalize;
          Alcotest.test_case "join residuals" `Quick test_join_residuals;
          Alcotest.test_case "method-call nodes" `Quick test_admits_call;
          Alcotest.test_case "kind lattice" `Quick test_kind_lattice;
          Alcotest.test_case "catalog typecheck" `Quick test_catalog_typecheck
        ] );
      ( "differential",
        List.map to_alco [ prop_differential; prop_program_level ] )
    ]
