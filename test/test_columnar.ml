(* Differential and unit tests for the columnar store.

   The columnar engine re-implements [Database] over struct-of-arrays
   blocks while promising "no observable behavior change".  The
   differential suite drives identical random op sequences
   (new/set/delete/set_schema) through the columnar store and a
   map-backed oracle that transcribes the pre-columnar implementation
   verbatim, then asserts identical extents, slots, referrers, error
   outcomes, and dump round-trips.  Unit tests pin the block mechanics
   the oracle cannot see: free-list reuse, null bitmaps, growth,
   layout routing across schema evolution, vectorized scans, and
   matview dirty-row skipping. *)

open Tdp_core
module Database = Tdp_store.Database
module Dump = Tdp_store.Dump
module Oid = Tdp_store.Oid
module Value = Tdp_store.Value
module Pred = Tdp_algebra.Pred
module View = Tdp_algebra.View
module Matview = Tdp_algebra.Matview
open Helpers

let team_def =
  Type_def.make
    ~attrs:
      [ Attribute.make (at "manager") (Value_type.named (ty "Employee"));
        Attribute.make (at "buddy") (Value_type.named (ty "Person"))
      ]
    (ty "Team")

let base_schema = Schema.add_type Tdp_paper.Fig1.schema team_def

let evolved_schema =
  let o = Tdp_paper.Fig1.project () in
  Schema.add_type o.schema team_def

(* ---- the map-backed oracle ------------------------------------------ *)

(* A verbatim transcription of the pre-columnar [Database] internals:
   per-object slot maps in a hashtable, extent/referrer scans over the
   whole table.  Only the error messages are dropped ([Err] everywhere)
   — the differential compares error occurrence, not text. *)
module Oracle = struct
  exception Err

  type obj = { o_ty : Type_name.t; mutable o_slots : Value.t Attr_name.Map.t }

  type t = {
    mutable schema : Schema.t;
    mutable index : Schema_index.t;
    mutable next : int;
    objs : (int, obj) Hashtbl.t;
  }

  let create schema =
    { schema;
      index = Schema_index.of_hierarchy (Schema.hierarchy schema);
      next = 1;
      objs = Hashtbl.create 16
    }

  let hierarchy t = Schema.hierarchy t.schema

  let set_schema t s =
    t.schema <- s;
    t.index <- Schema_index.of_hierarchy (Schema.hierarchy s)

  let check_value t attr_ty v =
    match (attr_ty, (v : Value.t)) with
    | _, Value.Null -> ()
    | Value_type.Prim p, v -> if not (Value.conforms_prim v p) then raise Err
    | Value_type.Named n, Value.Ref o -> (
        match Hashtbl.find_opt t.objs (Oid.to_int o) with
        | None -> raise Err
        | Some target ->
            if not (Schema_index.subtype t.index target.o_ty n) then raise Err)
    | Value_type.Named _, _ -> raise Err
    | Value_type.Unknown, _ -> ()

  let build_slots t ty_ ~init =
    if not (Hierarchy.mem (hierarchy t) ty_) then raise Err;
    let attrs = Hierarchy.all_attributes (hierarchy t) ty_ in
    let slots =
      List.fold_left
        (fun slots a ->
          let name = Attribute.name a in
          let v =
            match List.find_opt (fun (n, _) -> Attr_name.equal n name) init with
            | Some (_, v) ->
                check_value t (Attribute.ty a) v;
                v
            | None -> Value.Null
          in
          Attr_name.Map.add name v slots)
        Attr_name.Map.empty attrs
    in
    List.iter
      (fun (n, _) ->
        if
          not (List.exists (fun a -> Attr_name.equal (Attribute.name a) n) attrs)
        then raise Err)
      init;
    slots

  let new_object t ty_ ~init =
    let slots = build_slots t ty_ ~init in
    let oid = t.next in
    t.next <- t.next + 1;
    Hashtbl.replace t.objs oid { o_ty = ty_; o_slots = slots };
    oid

  let find t oid =
    match Hashtbl.find_opt t.objs oid with Some o -> o | None -> raise Err

  let get_attr t oid attr =
    let o = find t oid in
    match Attr_name.Map.find_opt attr o.o_slots with
    | Some v -> v
    | None -> raise Err

  let set_attr t oid attr v =
    let o = find t oid in
    if not (Attr_name.Map.mem attr o.o_slots) then raise Err;
    let def =
      match Hierarchy.find_attribute (hierarchy t) o.o_ty attr with
      | Some a -> a
      | None -> raise Err
    in
    check_value t (Attribute.ty def) v;
    o.o_slots <- Attr_name.Map.add attr v o.o_slots

  let extent t ty_ =
    Hashtbl.fold
      (fun oid o acc ->
        if Schema_index.subtype t.index o.o_ty ty_ then oid :: acc else acc)
      t.objs []
    |> List.sort compare

  let referrers t oid =
    Hashtbl.fold
      (fun other o acc ->
        if other = oid then acc
        else
          Attr_name.Map.fold
            (fun attr v acc ->
              match v with
              | Value.Ref r when Oid.to_int r = oid -> (other, attr) :: acc
              | _ -> acc)
            o.o_slots acc)
      t.objs []
    |> List.sort (fun (a, x) (b, y) ->
           match compare a b with 0 -> Attr_name.compare x y | c -> c)

  let delete t ~(policy : Database.delete_policy) oid =
    let _ = find t oid in
    let refs = referrers t oid in
    (match (policy, refs) with
    | Database.Restrict, _ :: _ -> raise Err
    | _ -> ());
    (match policy with
    | Database.Restrict -> ()
    | Database.Nullify ->
        List.iter
          (fun (other, attr) ->
            let o = find t other in
            o.o_slots <- Attr_name.Map.add attr Value.Null o.o_slots)
          refs);
    Hashtbl.remove t.objs oid
end

(* ---- random op sequences -------------------------------------------- *)

type gop =
  | GNew of string * (string * Value.t) list
  | GSet of int * string * Value.t
  | GDel of int * Database.delete_policy
  | GEvolve

let pp_value v = Fmt.str "%a" Value.pp v

let pp_gop = function
  | GNew (t, init) ->
      Fmt.str "new %s [%s]" t
        (String.concat "; "
           (List.map (fun (a, v) -> a ^ "=" ^ pp_value v) init))
  | GSet (o, a, v) -> Fmt.str "set #%d %s=%s" o a (pp_value v)
  | GDel (o, p) ->
      Fmt.str "del #%d %s" o
        (match p with Database.Restrict -> "restrict" | Nullify -> "nullify")
  | GEvolve -> "evolve"

let value_gen =
  QCheck.Gen.(
    frequency
      [ (3, map (fun i -> Value.Int i) (int_range (-5) 100));
        (2, map (fun f -> Value.Float f) (oneofl [ 0.0; 1.5; -2.25; 50.0; Float.nan ]));
        (3, map (fun s -> Value.String s) (oneofl [ "a"; "bob"; "x y"; "" ]));
        (1, map (fun b -> Value.Bool b) bool);
        (2, map (fun y -> Value.Date y) (int_range 1950 2030));
        (3, map (fun i -> Value.Ref (Oid.of_int i)) (int_range 1 25));
        (2, return Value.Null)
      ])

let attr_gen =
  QCheck.Gen.oneofl
    [ "ssn"; "name"; "date_of_birth"; "pay_rate"; "hrs_worked"; "manager";
      "buddy"; "bogus"
    ]

let type_gen =
  QCheck.Gen.(
    frequency
      [ (4, return "Employee"); (3, return "Person"); (3, return "Team");
        (2, return "Employee_hat"); (1, return "Nope")
      ])

let gop_gen =
  QCheck.Gen.(
    frequency
      [ ( 5,
          map2
            (fun t init -> GNew (t, init))
            type_gen
            (list_size (int_range 0 4) (pair attr_gen value_gen)) );
        ( 4,
          map3
            (fun o a v -> GSet (o, a, v))
            (int_range 1 25) attr_gen value_gen );
        ( 2,
          map2
            (fun o restrict ->
              GDel (o, if restrict then Database.Restrict else Database.Nullify))
            (int_range 1 25) bool );
        (1, return GEvolve)
      ])

let ops_gen = QCheck.Gen.(list_size (int_range 1 40) gop_gen)

let ops_arbitrary =
  QCheck.make ops_gen
    ~print:(fun ops -> String.concat "\n" (List.map pp_gop ops))
    ~shrink:QCheck.Shrink.(list ~shrink:nil)

(* Apply one op to both stores; a [Some _/None] outcome records
   success/failure and the two must agree. *)
let apply_pair db o op =
  let db_r f = try Some (f ()) with Database.Store_error _ -> None in
  let o_r f = try Some (f ()) with Oracle.Err -> None in
  let agree what a b =
    if (a = None) <> (b = None) then
      Alcotest.failf "%s: columnar %s, oracle %s" what
        (if a = None then "failed" else "succeeded")
        (if b = None then "failed" else "succeeded")
  in
  match op with
  | GNew (t, init) ->
      let init = List.map (fun (a, v) -> (at a, v)) init in
      let a = db_r (fun () -> Database.new_object db (ty t) ~init) in
      let b = o_r (fun () -> Oracle.new_object o (ty t) ~init) in
      agree (pp_gop op) (Option.map (fun _ -> ()) a) (Option.map (fun _ -> ()) b);
      (match (a, b) with
      | Some x, Some y ->
          Alcotest.(check int) "allocated oid" y (Oid.to_int x)
      | _ -> ())
  | GSet (oi, attr, v) ->
      let a = db_r (fun () -> Database.set_attr db (Oid.of_int oi) (at attr) v) in
      let b = o_r (fun () -> Oracle.set_attr o oi (at attr) v) in
      agree (pp_gop op) a b
  | GDel (oi, policy) ->
      let a = db_r (fun () -> Database.delete db ~policy (Oid.of_int oi)) in
      let b = o_r (fun () -> Oracle.delete o ~policy oi) in
      agree (pp_gop op) a b
  | GEvolve ->
      Database.set_schema db evolved_schema;
      Oracle.set_schema o evolved_schema

let check_agreement db o =
  (* object population and slots *)
  Alcotest.(check int) "count" (Hashtbl.length o.Oracle.objs) (Database.count db);
  for oi = 1 to 60 do
    match Hashtbl.find_opt o.Oracle.objs oi with
    | None -> (
        match Database.slots db (Oid.of_int oi) with
        | exception Database.Store_error _ -> ()
        | _ -> Alcotest.failf "columnar has spurious #%d" oi)
    | Some ob ->
        let slots = Database.slots db (Oid.of_int oi) in
        Alcotest.(check bool)
          (Fmt.str "slots of #%d" oi)
          true
          (Attr_name.Map.equal Value.equal ob.Oracle.o_slots slots);
        Alcotest.(check string)
          (Fmt.str "type of #%d" oi)
          (Type_name.to_string ob.Oracle.o_ty)
          (Type_name.to_string (Database.type_of db (Oid.of_int oi)));
        (* per-attribute get_attr, incl. attributes outside the layout *)
        List.iter
          (fun a ->
            let x =
              try Some (Database.get_attr db (Oid.of_int oi) (at a))
              with Database.Store_error _ -> None
            in
            let y =
              try Some (Oracle.get_attr o oi (at a)) with Oracle.Err -> None
            in
            match (x, y) with
            | None, None -> ()
            | Some xv, Some yv ->
                Alcotest.(check bool)
                  (Fmt.str "#%d.%s" oi a)
                  true (Value.equal xv yv)
            | _ -> Alcotest.failf "get_attr #%d.%s disagrees" oi a)
          [ "ssn"; "name"; "pay_rate"; "manager"; "bogus" ];
        (* referrers via the reverse index vs the oracle scan *)
        let rx =
          Database.referrers db (Oid.of_int oi)
          |> List.map (fun (r, a) -> (Oid.to_int r, Attr_name.to_string a))
        in
        let ry =
          Oracle.referrers o oi
          |> List.map (fun (r, a) -> (r, Attr_name.to_string a))
        in
        Alcotest.(check (list (pair int string)))
          (Fmt.str "referrers of #%d" oi)
          ry rx
  done;
  (* extents *)
  List.iter
    (fun t ->
      let x =
        Database.extent db (ty t) |> List.map Oid.to_int
      in
      Alcotest.(check (list int)) (Fmt.str "extent %s" t) (Oracle.extent o (ty t)) x)
    [ "Person"; "Employee"; "Team"; "Employee_hat"; "Nope" ];
  (* dump round-trip: the columnar store serializes and reloads to an
     identical population *)
  let dump = Dump.to_string db in
  let db2 = Database.create (Database.schema db) in
  let _ = Dump.load_into db2 dump in
  Alcotest.(check string) "dump round-trip" dump (Dump.to_string db2);
  Alcotest.(check int) "round-trip count" (Database.count db) (Database.count db2)

let prop_differential =
  QCheck.Test.make ~name:"columnar store ≡ map-backed oracle" ~count:500
    ops_arbitrary (fun ops ->
      let db = Database.create base_schema in
      let o = Oracle.create base_schema in
      List.iter (fun op -> apply_pair db o op) ops;
      check_agreement db o;
      true)

(* Pred.scan must agree with per-object eval on every generated store,
   across value kinds, nulls, deleted rows and free-list reuse. *)
let pred_gen =
  QCheck.Gen.(
    let atom =
      map3
        (fun a op v -> Pred.Cmp { attr = at a; op; value = v })
        (oneofl [ "ssn"; "name"; "pay_rate"; "date_of_birth"; "hrs_worked" ])
        (oneofl Pred.[ Eq; Ne; Lt; Le; Gt; Ge ])
        (frequency
           [ (3, map (fun i -> Body.Int i) (int_range (-5) 100));
             (2, map (fun f -> Body.Float f) (oneofl [ 0.0; 1.5; 50.0 ]));
             (2, map (fun s -> Body.String s) (oneofl [ "a"; "bob"; "zzz" ]));
             (1, map (fun b -> Body.Bool b) bool);
             (1, return Body.Null)
           ])
    in
    let rec node depth =
      if depth = 0 then atom
      else
        frequency
          [ (3, atom);
            (1, return Pred.True);
            (2, map2 (fun a b -> Pred.And (a, b)) (node (depth - 1)) (node (depth - 1)));
            (2, map2 (fun a b -> Pred.Or (a, b)) (node (depth - 1)) (node (depth - 1)));
            (1, map (fun a -> Pred.Not a) (node (depth - 1)))
          ]
    in
    node 2)

let prop_scan_equiv =
  QCheck.Test.make ~name:"Pred.scan ≡ filter eval over extent" ~count:300
    (QCheck.make
       QCheck.Gen.(pair ops_gen pred_gen)
       ~print:(fun (ops, p) ->
         String.concat "\n" (List.map pp_gop ops) ^ "\nWHERE " ^ Fmt.str "%a" Pred.pp p))
    (fun (ops, p) ->
      let db = Database.create base_schema in
      let o = Oracle.create base_schema in
      List.iter (fun op -> apply_pair db o op) ops;
      List.iter
        (fun t ->
          let scanned =
            try Ok (Pred.scan db (ty t) p |> List.map Oid.to_int)
            with Database.Store_error _ -> Error ()
          in
          let filtered =
            try
              Ok
                (Database.extent db (ty t)
                |> List.filter (fun oid -> Pred.eval db oid p)
                |> List.map Oid.to_int)
            with Database.Store_error _ -> Error ()
          in
          match (scanned, filtered) with
          | Ok a, Ok b ->
              Alcotest.(check (list int)) (Fmt.str "scan %s" t) b a
          | Error (), Error () -> ()
          | _ -> Alcotest.failf "scan/eval error disagreement on %s" t)
        [ "Person"; "Employee"; "Team" ];
      true)

(* ---- unit tests: block mechanics ------------------------------------ *)

let mk_person db i =
  Database.new_object db (ty "Person") ~init:[ (at "ssn", Value.Int i) ]

let block_of db tn =
  match
    List.filter
      (fun (s : Database.block_stat) -> Type_name.equal s.st_ty (ty tn))
      (Database.stats db)
  with
  | [ s ] -> s
  | l -> Alcotest.failf "expected 1 %s block, got %d" tn (List.length l)

let test_free_list_reuse () =
  let db = Database.create base_schema in
  let _o1 = mk_person db 1 in
  let o2 = mk_person db 2 in
  let _o3 = mk_person db 3 in
  let before = block_of db "Person" in
  Database.delete db o2;
  let after = block_of db "Person" in
  Alcotest.(check int) "free-listed" 1 after.st_free;
  Alcotest.(check int) "rows unchanged" before.st_rows after.st_rows;
  Alcotest.(check int) "capacity unchanged" before.st_capacity after.st_capacity;
  let o4 = mk_person db 4 in
  let reused = block_of db "Person" in
  Alcotest.(check int) "slot reused" 0 reused.st_free;
  Alcotest.(check int) "no new row" before.st_rows reused.st_rows;
  (* the reused row serves the new object, extents stay OID-sorted *)
  Alcotest.(check (list int)) "extent sorted"
    [ 1; 3; 4 ]
    (List.map Oid.to_int (Database.extent db (ty "Person")));
  Alcotest.(check bool) "new value visible" true
    (Value.equal (Database.get_attr db o4 (at "ssn")) (Value.Int 4))

let test_null_bitmap () =
  let db = Database.create base_schema in
  let p = mk_person db 7 in
  Alcotest.(check bool) "uninitialized is null" true
    (Value.equal (Database.get_attr db p (at "name")) Value.Null);
  Database.set_attr db p (at "name") (Value.String "x");
  Alcotest.(check bool) "set visible" true
    (Value.equal (Database.get_attr db p (at "name")) (Value.String "x"));
  Database.set_attr db p (at "name") Value.Null;
  Alcotest.(check bool) "null again" true
    (Value.equal (Database.get_attr db p (at "name")) Value.Null);
  (* scans see the bitmap, not the stale backing cell *)
  Alcotest.(check (list int)) "null scan"
    [ Oid.to_int p ]
    (Pred.scan db (ty "Person") (Pred.cmp (at "name") Pred.Eq Body.Null)
    |> List.map Oid.to_int)

let test_block_growth () =
  let db = Database.create base_schema in
  let n = 100 in
  for i = 1 to n do
    ignore (mk_person db i)
  done;
  let s = block_of db "Person" in
  Alcotest.(check int) "all live" n s.st_live;
  Alcotest.(check bool) "capacity grew to cover" true (s.st_capacity >= n);
  Alcotest.(check bool) "amortized doubling" true (s.st_capacity <= 2 * n);
  Alcotest.(check int) "extent complete" n
    (List.length (Database.extent db (ty "Person")))

let test_layout_routing_across_evolution () =
  let db = Database.create base_schema in
  let _e1 =
    Database.new_object db (ty "Employee") ~init:[ (at "ssn", Value.Int 1) ]
  in
  (* an additive schema change (new unrelated type) leaves Employee's
     layout untouched: new instances reuse the block even though the
     schema generation moved *)
  let extra =
    Schema.add_type base_schema
      (Type_def.make ~attrs:[ Attribute.make (at "label") Value_type.string ]
         (ty "Tag"))
  in
  Database.set_schema db extra;
  let _e2 =
    Database.new_object db (ty "Employee") ~init:[ (at "ssn", Value.Int 2) ]
  in
  let s = block_of db "Employee" in
  Alcotest.(check int) "block reused across additive evolution" 2 s.st_live;
  (* projection inserts Employee_hat into Employee's precedence chain,
     which reorders the cumulative layout: existing rows keep their
     creation-time block, new instances open a fresh one, and extents
     see both *)
  Database.set_schema db evolved_schema;
  let _e3 =
    Database.new_object db (ty "Employee") ~init:[ (at "ssn", Value.Int 3) ]
  in
  let emp_blocks =
    List.filter
      (fun (st : Database.block_stat) -> Type_name.equal st.st_ty (ty "Employee"))
      (Database.stats db)
  in
  Alcotest.(check int) "total live across Employee blocks" 3
    (List.fold_left (fun a (st : Database.block_stat) -> a + st.st_live) 0 emp_blocks);
  Alcotest.(check (list int)) "extent spans layouts" [ 1; 2; 3 ]
    (List.map Oid.to_int (Database.extent db (ty "Employee")));
  (* the view type gets its own block on demand, and its extent is deep *)
  let _h =
    Database.new_object db (ty "Employee_hat") ~init:[ (at "ssn", Value.Int 4) ]
  in
  let sh = block_of db "Employee_hat" in
  Alcotest.(check int) "view block live" 1 sh.st_live;
  Alcotest.(check int) "view extent is deep" 4
    (List.length (Database.extent db (ty "Employee_hat")))

let test_get_attrs_batch () =
  let db = Database.create base_schema in
  let e =
    Database.new_object db (ty "Employee")
      ~init:[ (at "ssn", Value.Int 9); (at "pay_rate", Value.Float 50.0) ]
  in
  let attrs = [ at "ssn"; at "pay_rate"; at "name" ] in
  let batch = Database.get_attrs db e attrs in
  let single = List.map (Database.get_attr db e) attrs in
  Alcotest.(check bool) "batch = singles" true (List.for_all2 Value.equal batch single);
  match Database.get_attrs db e [ at "bogus" ] with
  | exception Database.Store_error _ -> ()
  | _ -> Alcotest.fail "batch read of a missing attribute must fail"

let test_matview_dirty_skip () =
  let db = Database.create evolved_schema in
  let srcs =
    List.init 5 (fun i ->
        Database.new_object db (ty "Employee")
          ~init:[ (at "ssn", Value.Int i); (at "pay_rate", Value.Float 10.0) ])
  in
  let mv = Matview.create db ~view_type:(ty "Employee_hat") (View.Base (ty "Employee")) in
  (* steady state: nothing changed, nothing updated *)
  let s = Matview.refresh db mv in
  Alcotest.(check int) "steady adds" 0 s.Matview.added;
  Alcotest.(check int) "steady removes" 0 s.Matview.removed;
  Alcotest.(check int) "steady updates" 0 s.Matview.updated;
  (* one dirty source row -> exactly one update, skipped rows agree
     with a forced full diff *)
  Database.set_attr db (List.nth srcs 2) (at "pay_rate") (Value.Float 99.0);
  let s = Matview.refresh db mv in
  Alcotest.(check int) "one update" 1 s.Matview.updated;
  let s = Matview.refresh ~force:true db mv in
  Alcotest.(check int) "forced re-diff finds nothing" 0 s.Matview.updated;
  (* copies carry the view state *)
  let copy = Tdp_store.Oid.Map.find (List.nth srcs 2) (Matview.mapping mv) in
  Alcotest.(check bool) "copy updated" true
    (Value.equal (Database.get_attr db copy (at "pay_rate")) (Value.Float 99.0))

let test_build_row_reports_all_unknown_attrs () =
  let db = Database.create base_schema in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  (match
     Database.new_object db (ty "Person")
       ~init:[ (at "nope1", Value.Int 1); (at "nope2", Value.Int 2) ]
   with
  | exception Database.Store_error m ->
      Alcotest.(check bool) "mentions both unknowns" true
        (contains_sub m "nope1" && contains_sub m "nope2")
  | _ -> Alcotest.fail "unknown init attributes must fail");
  (* single unknown keeps the historical message shape *)
  match Database.new_object db (ty "Person") ~init:[ (at "nope1", Value.Int 1) ] with
  | exception Database.Store_error m ->
      Alcotest.(check string) "single-unknown message"
        "type Person has no attribute nope1" m
  | _ -> Alcotest.fail "unknown init attribute must fail"

let test_reserve () =
  let db = Database.create base_schema in
  Database.reserve db 10_000;
  for i = 1 to 50 do
    ignore (mk_person db i)
  done;
  Alcotest.(check int) "all present after reserve" 50 (Database.count db)

let () =
  Alcotest.run "columnar"
    [ ( "differential",
        [ QCheck_alcotest.to_alcotest prop_differential;
          QCheck_alcotest.to_alcotest prop_scan_equiv
        ] );
      ( "blocks",
        [ Alcotest.test_case "free-list reuse" `Quick test_free_list_reuse;
          Alcotest.test_case "null bitmap" `Quick test_null_bitmap;
          Alcotest.test_case "block growth" `Quick test_block_growth;
          Alcotest.test_case "layout routing across evolution" `Quick
            test_layout_routing_across_evolution;
          Alcotest.test_case "get_attrs batch" `Quick test_get_attrs_batch;
          Alcotest.test_case "matview dirty-row skip" `Quick test_matview_dirty_skip;
          Alcotest.test_case "all unknown init attrs reported" `Quick
            test_build_row_reports_all_unknown_attrs;
          Alcotest.test_case "reserve" `Quick test_reserve
        ] )
    ]
