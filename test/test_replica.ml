open Tdp_core
module Database = Tdp_store.Database
module Dump = Tdp_store.Dump
module Oid = Tdp_store.Oid
module Value = Tdp_store.Value
module Wal = Tdp_store.Wal
module Mvcc = Tdp_txn.Mvcc
module Server = Tdp_txn.Server
module Replica = Tdp_replica.Replica
module Router = Tdp_replica.Router
open Helpers

(* Fig. 1 plus a reference-typed attribute — the same scenario shape
   as test_wal, so the shipping suite exercises creations, slot
   writes, references and both delete policies. *)
let schema =
  let s = Tdp_paper.Fig1.schema in
  Schema.add_type s
    (Type_def.make
       ~attrs:[ Attribute.make (at "manager") (Value_type.named (ty "Employee")) ]
       (ty "Team"))

let oid = Oid.of_int
let load_schema src = (Tdp_lang.Elaborate.load_exn src).Tdp_lang.Elaborate.schema

let with_temp_dir f =
  let dir = Filename.temp_file "tdp_rep" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let main_dump r =
  Dump.to_string
    (Mvcc.to_database (Mvcc.head (Replica.store r) ~branch:Mvcc.main_branch))

(* Branch name -> head dump, version-independent: replicas publish one
   version per record while recovery publishes one per bracket, so
   only the visible state is comparable. *)
let branch_dumps store =
  Mvcc.branches store |> List.map fst |> List.sort compare
  |> List.map (fun b ->
         (b, Dump.to_string (Mvcc.to_database (Mvcc.head store ~branch:b))))

(* ---- the map-backed oracle ------------------------------------------ *)

(* An independent model of op application (in the spirit of
   test_columnar's): a hashtable of type + slot map per object.  Only
   ops that succeeded on the primary ever reach a replica, so the
   oracle implements the success semantics alone. *)
module Oracle = struct
  type obj = { o_ty : Type_name.t; mutable o_slots : Value.t Attr_name.Map.t }
  type t = { schema : Schema.t; objs : (int, obj) Hashtbl.t }

  let create schema = { schema; objs = Hashtbl.create 16 }

  let apply t (op : Database.op) =
    match op with
    | Op_new { oid; ty; init } ->
        let slots =
          List.fold_left
            (fun m a -> Attr_name.Map.add (Attribute.name a) Value.Null m)
            Attr_name.Map.empty
            (Hierarchy.all_attributes (Schema.hierarchy t.schema) ty)
        in
        let slots =
          List.fold_left (fun m (a, v) -> Attr_name.Map.add a v m) slots init
        in
        Hashtbl.replace t.objs (Oid.to_int oid) { o_ty = ty; o_slots = slots }
    | Op_set { oid; attr; value } ->
        let o = Hashtbl.find t.objs (Oid.to_int oid) in
        o.o_slots <- Attr_name.Map.add attr value o.o_slots
    | Op_delete { oid; policy } ->
        Hashtbl.remove t.objs (Oid.to_int oid);
        if policy = Database.Nullify then
          Hashtbl.iter
            (fun _ o ->
              o.o_slots <-
                Attr_name.Map.map
                  (function Value.Ref r when Oid.equal r oid -> Value.Null | v -> v)
                  o.o_slots)
            t.objs
    | Op_set_schema _ -> ()

  let check t what snap =
    Alcotest.(check int)
      (what ^ ": oracle count")
      (Hashtbl.length t.objs) (Mvcc.count snap);
    Hashtbl.iter
      (fun i o ->
        let id = oid i in
        if not (Type_name.equal o.o_ty (Mvcc.type_of snap id)) then
          Alcotest.failf "%s: oracle type mismatch for #%d" what i;
        Attr_name.Map.iter
          (fun a v ->
            let got = Mvcc.get_attr snap id a in
            if not (Value.equal v got) then
              Alcotest.failf "%s: oracle slot mismatch for #%d.%a: %a vs %a"
                what i Attr_name.pp a Value.pp v Value.pp got)
          o.o_slots)
      t.objs
end

(* ---- wal shipping: the fixture -------------------------------------- *)

let ops : Database.op list =
  [ Op_new
      { oid = oid 1;
        ty = ty "Employee";
        init =
          [ (at "ssn", Value.Int 1);
            (at "name", Value.String "al \"ice\" =#");
            (at "pay_rate", Value.Float (0.1 +. 0.2))
          ]
      };
    Op_set { oid = oid 1; attr = at "hrs_worked"; value = Value.Float 40.0 };
    Op_new { oid = oid 2; ty = ty "Team"; init = [ (at "manager", Value.Ref (oid 1)) ] };
    Op_new { oid = oid 3; ty = ty "Person"; init = [ (at "ssn", Value.Int 3) ] };
    Op_set { oid = oid 1; attr = at "pay_rate"; value = Value.Float nan };
    Op_delete { oid = oid 3; policy = Database.Restrict };
    Op_delete { oid = oid 1; policy = Database.Nullify };
    Op_new { oid = oid 4; ty = ty "Employee"; init = [ (at "ssn", Value.Int 4) ] }
  ]

(* The WAL image plus [dumps.(k)] = the dump after the first [k] ops. *)
let fixture () =
  let db = Database.create schema in
  let wal = Buffer.create 512 in
  let dumps = ref [ Dump.to_string db ] in
  List.iteri
    (fun i op ->
      Buffer.add_string wal (Wal.encode ~seq:(i + 1) op);
      Wal.apply db op;
      dumps := Dump.to_string db :: !dumps)
    ops;
  (Buffer.contents wal, Array.of_list (List.rev !dumps))

let entries_ending_by entries t =
  List.length (List.filter (fun (e : Wal.entry) -> e.ends_at <= t) entries)

(* ---- fault injection: kill the feed at every byte offset ------------ *)

(* Killing the primary (or the ship) at any byte offset must leave the
   replica at exactly the state [recover] would produce from the same
   prefix — and at the oracle's state after the decodable records. *)
let test_wal_ship_every_offset () =
  let wal, dumps = fixture () in
  let entries = (Wal.decode wal).entries in
  with_temp_dir (fun dir ->
      let wal_path = Filename.concat dir "wal.log" in
      for t = 0 to String.length wal do
        write_file wal_path (String.sub wal 0 t);
        let r = Replica.open_ ~schema dir in
        let shipped = Replica.poll r in
        let k = entries_ending_by entries t in
        Alcotest.(check int) (Fmt.str "shipped at cut %d" t) k shipped;
        Alcotest.(check string)
          (Fmt.str "state at cut %d" t)
          dumps.(k) (main_dump r);
        Alcotest.(check int)
          (Fmt.str "applied wal seq at cut %d" t)
          k
          (fst (Replica.applied_seqs r));
        (* a torn tail is an incomplete ship, not damage: the replica
           keeps waiting for the rest of the record *)
        Alcotest.(check bool)
          (Fmt.str "running at cut %d" t)
          true
          (Replica.status r = Replica.Running);
        let o = Oracle.create schema in
        List.iteri (fun i op -> if i < k then Oracle.apply o op) ops;
        Oracle.check o
          (Fmt.str "cut %d" t)
          (Mvcc.head (Replica.store r) ~branch:Mvcc.main_branch);
        Replica.close r
      done)

(* ---- incremental tailing: records arrive while the replica lives ---- *)

let test_live_tailing () =
  let wal, dumps = fixture () in
  let entries = (Wal.decode wal).entries in
  with_temp_dir (fun dir ->
      let wal_path = Filename.concat dir "wal.log" in
      write_file wal_path "";
      let r = Replica.open_ ~schema dir in
      Alcotest.(check int) "nothing to ship" 0 (Replica.poll r);
      let prev_end = ref 0 in
      List.iteri
        (fun i (e : Wal.entry) ->
          let mid = !prev_end + ((e.ends_at - !prev_end) / 2) in
          prev_end := e.ends_at;
          (* half a record: resumable, nothing applied *)
          write_file wal_path (String.sub wal 0 mid);
          Alcotest.(check int) (Fmt.str "torn ship %d waits" i) 0 (Replica.poll r);
          Alcotest.(check bool)
            (Fmt.str "torn ship %d is lag" i)
            true
            (fst (Replica.lag r) > 0);
          (* the rest of the record lands *)
          write_file wal_path (String.sub wal 0 e.ends_at);
          Alcotest.(check int) (Fmt.str "ship %d applies" i) 1 (Replica.poll r);
          Alcotest.(check string)
            (Fmt.str "state after ship %d" i)
            dumps.(i + 1) (main_dump r);
          Alcotest.(check (pair int int))
            (Fmt.str "caught up after ship %d" i)
            (0, 0) (Replica.lag r))
        entries;
      Replica.close r)

(* ---- property: random ops, random kill offset ----------------------- *)

let prop_ship_random =
  let value_gen =
    QCheck.Gen.(
      frequency
        [ (3, map (fun i -> Value.Int i) (int_range (-5) 100));
          (2, map (fun f -> Value.Float f) (oneofl [ 0.0; 1.5; -2.25; Float.nan ]));
          (3, map (fun s -> Value.String s) (oneofl [ "a"; "x y"; "q=\"#"; "" ]));
          (2, map (fun i -> Value.Ref (oid i)) (int_range 1 20));
          (1, return Value.Null)
        ])
  in
  let attr_gen =
    QCheck.Gen.oneofl [ "ssn"; "name"; "pay_rate"; "hrs_worked"; "manager" ]
  in
  let type_gen = QCheck.Gen.oneofl [ "Employee"; "Person"; "Team" ] in
  let gop_gen =
    QCheck.Gen.(
      frequency
        [ ( 5,
            map2
              (fun t init -> `New (t, init))
              type_gen
              (list_size (int_range 0 3)
                 (map2 (fun a v -> (at a, v)) attr_gen value_gen)) );
          ( 4,
            map3 (fun o a v -> `Set (o, at a, v)) (int_range 1 20) attr_gen
              value_gen );
          ( 2,
            map2
              (fun o restrict ->
                `Del (o, if restrict then Database.Restrict else Database.Nullify))
              (int_range 1 20) bool )
        ])
  in
  QCheck.Test.make ~name:"replica ≡ recover of the same prefix" ~count:60
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_range 1 30) gop_gen) (int_range 0 8192))
       ~shrink:QCheck.Shrink.(pair (list ~shrink:nil) nil))
    (fun (gops, cut_raw) ->
      (* trial-apply on a scratch db: only ops the primary accepted
         reach the wal, with consecutive seqs *)
      let db = Database.create schema in
      let buf = Buffer.create 256 in
      let seq = ref 0 in
      let next = ref 1 in
      List.iter
        (fun gop ->
          let op : Database.op =
            match gop with
            | `New (t, init) ->
                let o = oid !next in
                Op_new { oid = o; ty = ty t; init }
            | `Set (o, a, v) -> Op_set { oid = oid o; attr = a; value = v }
            | `Del (o, p) -> Op_delete { oid = oid o; policy = p }
          in
          match Wal.apply db op with
          | () ->
              (match op with Op_new _ -> incr next | _ -> ());
              incr seq;
              Buffer.add_string buf (Wal.encode ~seq:!seq op)
          | exception Database.Store_error _ -> ())
        gops;
      let wal = Buffer.contents buf in
      let cut =
        if String.length wal = 0 then 0 else cut_raw mod (String.length wal + 1)
      in
      let prefix = String.sub wal 0 cut in
      with_temp_dir (fun dir ->
          write_file (Filename.concat dir "wal.log") prefix;
          let r = Replica.open_ ~schema dir in
          ignore (Replica.poll r);
          let expected =
            Dump.to_string (Wal.recover_text ~schema ~wal:prefix ()).db
          in
          let got = main_dump r in
          let running = Replica.status r = Replica.Running in
          Replica.close r;
          if expected <> got then
            QCheck.Test.fail_reportf
              "replica diverged from recover at cut %d:@.%s@.vs@.%s" cut got
              expected;
          running))

(* ---- txn-log shipping: every byte offset ----------------------------- *)

(* A primary driven through real MVCC transactions: committed and
   aborted brackets, a fork, and two interleaved transactions whose
   commits arrive out of begin order. *)
let build_txn_primary dir =
  let o = Mvcc.open_dir ~sync:false ~load_schema ~schema dir in
  let s = o.Mvcc.store in
  let t1 = Mvcc.begin_ s in
  let e1 = Mvcc.new_object t1 (ty "Employee") ~init:[ (at "ssn", Value.Int 1) ] in
  ignore (Mvcc.new_object t1 (ty "Team") ~init:[ (at "manager", Value.Ref e1) ]);
  (match Mvcc.commit t1 with Ok _ -> () | Error _ -> Alcotest.fail "t1");
  ignore (Mvcc.fork s ~from_:Mvcc.main_branch ~branch:"dev");
  let t2 = Mvcc.begin_ ~branch:"dev" s in
  Mvcc.set_attr t2 e1 (at "pay_rate") (Value.Float 9.5);
  (match Mvcc.commit t2 with Ok _ -> () | Error _ -> Alcotest.fail "t2");
  let t3 = Mvcc.begin_ s in
  Mvcc.set_attr t3 e1 (at "hrs_worked") (Value.Float 1.0);
  Mvcc.abort ~reason:"changed my mind" t3;
  let t4 = Mvcc.begin_ s in
  let t5 = Mvcc.begin_ ~branch:"dev" s in
  Mvcc.set_attr t5 e1 (at "name") (Value.String "dev side");
  Mvcc.set_attr t4 e1 (at "name") (Value.String "main side");
  (match Mvcc.commit t4 with Ok _ -> () | Error _ -> Alcotest.fail "t4");
  (match Mvcc.commit t5 with Ok _ -> () | Error _ -> Alcotest.fail "t5");
  Mvcc.close s

let test_txn_ship_every_offset () =
  let log =
    with_temp_dir (fun dir ->
        build_txn_primary dir;
        In_channel.with_open_bin (Filename.concat dir "txn.log")
          In_channel.input_all)
  in
  Alcotest.(check bool) "fixture journaled" true (String.length log > 0);
  with_temp_dir (fun dir ->
      let txn_path = Filename.concat dir "txn.log" in
      for t = 0 to String.length log do
        write_file txn_path (String.sub log 0 t);
        let prefix = String.sub log 0 t in
        let r = Replica.open_ ~load_schema ~schema dir in
        ignore (Replica.poll r);
        Alcotest.(check bool)
          (Fmt.str "running at cut %d" t)
          true
          (Replica.status r = Replica.Running);
        let expected = Mvcc.recover_text ~load_schema ~schema ~txn:prefix () in
        let want = branch_dumps expected.Mvcc.store in
        let got = branch_dumps (Replica.store r) in
        Alcotest.(check (list (pair string string)))
          (Fmt.str "branch states at cut %d" t)
          want got;
        Mvcc.close expected.Mvcc.store;
        Replica.close r
      done)

(* ---- checkpoint while tailing --------------------------------------- *)

let test_checkpoint_while_tailing () =
  with_temp_dir (fun pdir ->
      let o = Mvcc.open_dir ~sync:false ~load_schema ~schema pdir in
      let s = o.Mvcc.store in
      let commit_new ssn =
        let t = Mvcc.begin_ s in
        let id =
          Mvcc.new_object t (ty "Employee") ~init:[ (at "ssn", Value.Int ssn) ]
        in
        (match Mvcc.commit t with Ok _ -> () | Error _ -> Alcotest.fail "commit");
        id
      in
      ignore (commit_new 1);
      let r = Replica.open_ ~load_schema ~schema pdir in
      ignore (Replica.poll r);
      Alcotest.(check (list (pair string string)))
        "caught up before the checkpoint" (branch_dumps s)
        (branch_dumps (Replica.store r));
      (* records the replica never ships get folded into the snapshot:
         it must resync, not halt and not invent state *)
      ignore (commit_new 2);
      Mvcc.checkpoint s;
      ignore (commit_new 3);
      ignore (Replica.poll r);
      Alcotest.(check bool)
        "running across the checkpoint" true
        (Replica.status r = Replica.Running);
      Alcotest.(check (list (pair string string)))
        "caught up across the checkpoint" (branch_dumps s)
        (branch_dumps (Replica.store r));
      Alcotest.(check bool) "the checkpoint forced a resync" true
        (Replica.resyncs r >= 1);
      (* a checkpoint the replica has fully shipped: still seamless *)
      Mvcc.checkpoint s;
      ignore (commit_new 4);
      ignore (Replica.poll r);
      Alcotest.(check (list (pair string string)))
        "caught up across the quiet checkpoint" (branch_dumps s)
        (branch_dumps (Replica.store r));
      Replica.close r;
      Mvcc.close s)

(* ---- promotion ------------------------------------------------------- *)

let test_promotion () =
  with_temp_dir (fun pdir ->
      with_temp_dir (fun rdir ->
          let rstate = Filename.concat rdir "state" in
          let o = Mvcc.open_dir ~sync:false ~load_schema ~schema pdir in
          let s = o.Mvcc.store in
          let commit_new ssn =
            let t = Mvcc.begin_ s in
            ignore
              (Mvcc.new_object t (ty "Employee")
                 ~init:[ (at "ssn", Value.Int ssn) ]);
            match Mvcc.commit t with
            | Ok _ -> ()
            | Error _ -> Alcotest.fail "commit"
          in
          commit_new 1;
          let r = Replica.open_ ~load_schema ~schema pdir in
          ignore (Replica.poll r);
          Replica.save r ~dir:rstate;
          (* caught up: promotable as-is *)
          (match Replica.promote ~replica_dir:rstate ~primary_dir:pdir () with
          | Ok p ->
              Alcotest.(check int)
                "promotion txn position" p.Replica.primary_last_txn
                p.Replica.replica_txn
          | Error e -> Alcotest.failf "refused: %s" (Replica.promote_error_message e));
          (* the primary commits past the saved state: honest lag *)
          commit_new 2;
          (match Replica.promote ~replica_dir:rstate ~primary_dir:pdir () with
          | Error (Replica.Lagging _) -> ()
          | Ok _ -> Alcotest.fail "lagging replica promoted"
          | Error e -> Alcotest.failf "wrong refusal: %s" (Replica.promote_error_message e));
          (match
             Replica.promote ~allow_lag:true ~replica_dir:rstate ~primary_dir:pdir ()
           with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "allow_lag refused: %s" (Replica.promote_error_message e));
          (* a checkpoint folds the unshipped record away: diverged,
             refused even with allow_lag *)
          Mvcc.checkpoint s;
          (match
             Replica.promote ~allow_lag:true ~replica_dir:rstate ~primary_dir:pdir ()
           with
          | Error (Replica.Diverged _) -> ()
          | Ok _ -> Alcotest.fail "diverged replica promoted"
          | Error e -> Alcotest.failf "wrong refusal: %s" (Replica.promote_error_message e));
          (* no saved state at all *)
          (match
             Replica.promote ~replica_dir:(Filename.concat rdir "nowhere")
               ~primary_dir:pdir ()
           with
          | Error (Replica.Unpromotable _) -> ()
          | _ -> Alcotest.fail "missing state accepted");
          (* phantom history: the replica claims records beyond the
             primary's durable logs *)
          with_temp_dir (fun empty_primary ->
              match
                Replica.promote ~allow_lag:true ~replica_dir:rstate
                  ~primary_dir:empty_primary ()
              with
              | Error (Replica.Diverged _) -> ()
              | Ok _ -> Alcotest.fail "phantom replica promoted"
              | Error e ->
                  Alcotest.failf "wrong refusal: %s"
                    (Replica.promote_error_message e));
          Replica.close r;
          Mvcc.close s;
          (* clean up the nested save dir so with_temp_dir can rmdir *)
          Array.iter
            (fun n -> Sys.remove (Filename.concat rstate n))
            (Sys.readdir rstate);
          Sys.rmdir rstate))

(* ---- the read-only protocol surface --------------------------------- *)

(* Golden transcript: every mutating verb refused with the same
   structured error, every read and the replica verbs served. *)
let test_read_only_golden () =
  let store = Mvcc.create ~load_schema schema in
  let rw = Server.session ~store () in
  ignore (Server.handle_line rw "begin");
  ignore (Server.handle_line rw "new Employee ssn=1");
  ignore (Server.handle_line rw "commit");
  let info =
    { Server.ri_seqs = (fun () -> (7, 3)); ri_lag = (fun () -> (42, 0)) }
  in
  let s = Server.session ~mode:(Server.Read_only info) ~store () in
  let refused verb =
    Fmt.str "err \"read-only replica: %s refused (connect to the primary to write)\""
      verb
  in
  List.iter
    (fun (req, want) ->
      Alcotest.(check string) req want (Server.handle_line s req))
    [ ("hello", "ok odb 1 branch main");
      ("ping", "ok pong");
      ("seq", "ok wal 7 txn 3");
      ("lag", "ok wal 42 txn 0");
      ("count", "ok 1");
      ("typeof #1", "ok Employee");
      ("get #1 ssn", "ok 1");
      ("extent Person", "ok 1 #1");
      ("branches", "ok main:1");
      ("version", "ok 1");
      ("begin", refused "begin");
      ("begin dev", refused "begin");
      ("commit", refused "commit");
      ("abort", refused "abort");
      ("new Employee ssn=2", refused "new");
      ("set #1 ssn=9", refused "set");
      ("del #1", refused "del");
      ("schema \"type X {}\"", refused "schema");
      ("fork dev", refused "fork");
      ("quit", "ok bye")
    ]

(* ---- the OID-range router ------------------------------------------- *)

let test_router_units () =
  Alcotest.(check (list int))
    "merge interleaves sorted runs"
    [ 1; 2; 3; 4; 9; 10; 11 ]
    (Router.merge_runs [ [ 1; 4; 9 ]; [ 2; 3; 10 ]; []; [ 11 ] ]);
  (match Router.backend_of_spec "1-9=/tmp/a.sock" with
  | Ok b ->
      Alcotest.(check (pair int int)) "closed range" (1, 9) (b.Router.b_lo, b.b_hi);
      Alcotest.(check bool) "unix addr" true (b.b_addr = Unix.ADDR_UNIX "/tmp/a.sock")
  | Error m -> Alcotest.fail m);
  (match Router.backend_of_spec "10-=127.0.0.1:7000" with
  | Ok b ->
      Alcotest.(check (pair int int)) "open range" (10, max_int)
        (b.Router.b_lo, b.b_hi);
      Alcotest.(check bool) "tcp addr" true
        (match b.b_addr with Unix.ADDR_INET (_, 7000) -> true | _ -> false)
  | Error m -> Alcotest.fail m);
  (match Router.backend_of_spec "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk spec accepted");
  (match Router.backend_of_spec "a-b=/x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric range accepted");
  (match Router.make [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty router accepted");
  let b spec = match Router.backend_of_spec spec with Ok b -> b | Error m -> Alcotest.fail m in
  (match Router.make [ b "1-10=/x"; b "5-20=/y" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overlapping ranges accepted");
  match Router.make [ b "10-=/y"; b "1-9=/x" ] with
  | Error m -> Alcotest.fail m
  | Ok router ->
      let owner_name o =
        Option.map (fun (b : Router.backend) -> b.b_name) (Router.owner router o)
      in
      Alcotest.(check (option string)) "low oid" (Some "1-9=/x") (owner_name 1);
      Alcotest.(check (option string)) "high oid" (Some "10-=/y") (owner_name 1000);
      Alcotest.(check (option string)) "no owner" None (owner_name 0)

(* Two real served shards behind a router: point reads routed by OID,
   extents merged in global OID order, counts summed, writes refused. *)
let test_router_end_to_end () =
  let shard oids =
    let db = Database.create schema in
    List.iter
      (fun i ->
        Wal.apply db
          (Op_new { oid = oid i; ty = ty "Employee"; init = [ (at "ssn", Value.Int i) ] }))
      oids;
    Mvcc.of_database ~load_schema db
  in
  let serve store =
    let path = Filename.temp_file "tdp_shard" ".sock" in
    Sys.remove path;
    Server.start ~domains:2 ~store (Unix.ADDR_UNIX path)
  in
  let s1 = serve (shard [ 1; 3; 7 ]) in
  let s2 = serve (shard [ 10; 11 ]) in
  let sock srv =
    match Server.sockaddr srv with Unix.ADDR_UNIX p -> p | _ -> assert false
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop s1;
      Server.stop s2)
    (fun () ->
      let b spec =
        match Router.backend_of_spec spec with
        | Ok b -> b
        | Error m -> Alcotest.fail m
      in
      let router =
        match
          Router.make [ b (Fmt.str "1-9=%s" (sock s1)); b (Fmt.str "10-=%s" (sock s2)) ]
        with
        | Ok r -> r
        | Error m -> Alcotest.fail m
      in
      let s = Router.session router in
      Fun.protect
        ~finally:(fun () -> Router.close_session s)
        (fun () ->
          let run line = Router.handle_line s line in
          Alcotest.(check string) "hello" "ok odb-router 2 backends" (run "hello");
          Alcotest.(check string)
            "merged extent in global oid order" "ok 5 #1 #3 #7 #10 #11"
            (run "extent Person");
          Alcotest.(check string) "summed count" "ok 5" (run "count");
          Alcotest.(check string) "routed get low" "ok 3" (run "get #3 ssn");
          Alcotest.(check string) "routed get high" "ok 11" (run "get #11 ssn");
          Alcotest.(check string) "routed typeof" "ok Employee" (run "typeof #10");
          Alcotest.(check string)
            "routed miss surfaces the backend error" "err \"no object #5\""
            (run "get #5 ssn");
          Alcotest.(check bool) "no owner" true
            (String.length (run "get #0 ssn") > 3
            && String.sub (run "get #0 ssn") 0 3 = "err");
          Alcotest.(check bool) "writes refused" true
            (String.sub (run "set #1 ssn=2") 0 3 = "err"));
      (* the full path: router served on its own socket *)
      let rpath = Filename.temp_file "tdp_route" ".sock" in
      Sys.remove rpath;
      let rsrv = Router.start ~domains:2 router (Unix.ADDR_UNIX rpath) in
      Fun.protect
        ~finally:(fun () -> Server.stop rsrv)
        (fun () ->
          let c = Server.connect (Server.sockaddr rsrv) in
          Fun.protect
            ~finally:(fun () -> Server.close_client c)
            (fun () ->
              Alcotest.(check string)
                "served merged extent" "ok 5 #1 #3 #7 #10 #11"
                (Server.request c "extent Person");
              Alcotest.(check string) "served quit" "ok bye" (Server.request c "quit"))))

let suite =
  [ Alcotest.test_case "wal shipping: kill at every byte offset" `Quick
      test_wal_ship_every_offset;
    Alcotest.test_case "live tailing: torn then completed records" `Quick
      test_live_tailing;
    QCheck_alcotest.to_alcotest prop_ship_random;
    Alcotest.test_case "txn shipping: kill at every byte offset" `Quick
      test_txn_ship_every_offset;
    Alcotest.test_case "checkpoint while tailing" `Quick
      test_checkpoint_while_tailing;
    Alcotest.test_case "promotion: ok / lagging / diverged / phantom" `Quick
      test_promotion;
    Alcotest.test_case "read-only session golden transcript" `Quick
      test_read_only_golden;
    Alcotest.test_case "router: specs, ranges, merge" `Quick test_router_units;
    Alcotest.test_case "router: end to end over two shards" `Quick
      test_router_end_to_end
  ]

let () = Alcotest.run "replica" [ ("replica", suite) ]
