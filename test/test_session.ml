(* The statement language: Session evaluation units, the print∘parse
   round-trip for Stmt.t, and the differential test proving the three
   frontends — Session directly, the repl, the server's [eval] verb —
   produce the same outcomes for the same statements. *)

module Ast = Tdp_lang.Ast
module Stmt = Tdp_lang.Stmt
module Session = Tdp_lang.Session
module Repl = Tdp_lang.Repl
module Elaborate = Tdp_lang.Elaborate
module Database = Tdp_store.Database
module Value = Tdp_store.Value
module Mvcc = Tdp_txn.Mvcc
module Server = Tdp_txn.Server
open Helpers

(* The paper's Figure 1 schema (examples/schemas/employee.odb). *)
let schema_src =
  {|
type Person {
  ssn : int;
  name : string;
  date_of_birth : date;
}

type Employee : Person(1) {
  pay_rate : float;
  hrs_worked : float;
}

reader get_ssn(self : Person) -> ssn;
reader get_name(self : Person) -> name;
reader get_date_of_birth(self : Person) -> date_of_birth;
reader get_pay_rate(self : Employee) -> pay_rate;
reader get_hrs_worked(self : Employee) -> hrs_worked;
writer set_pay_rate(self : Employee) -> pay_rate;

method age(p : Person) : int {
  return years_since(get_date_of_birth(p));
}

method income(e : Employee) : float {
  return get_pay_rate(e) * get_hrs_worked(e);
}

method promote(e : Employee) : bool {
  return years_since(get_date_of_birth(e)) >= 5 and get_pay_rate(e) < 100;
}

view EmpView = project Employee on [ssn, date_of_birth, pay_rate];
view Seniors = select EmpView where date_of_birth <= 1980;
|}

let elab = lazy (Elaborate.load_exn schema_src)

let fresh_session ?(views = true) () =
  let r = Lazy.force elab in
  let s = Session.of_database (Database.create r.Elaborate.schema) in
  if views then Session.install_views s r.Elaborate.views;
  s

let contains s sub =
  let n = String.length sub and len = String.length s in
  let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
  go 0

let unexpected what o =
  Alcotest.failf "expected %s, got: %s" what (Session.render o)

(* Evaluate [src] expecting exactly one outcome. *)
let one s src =
  match Session.eval_string s src with
  | [ o ] -> o
  | os ->
      Alcotest.failf "expected one outcome for %S, got %d" src (List.length os)

let check_diag s src code =
  match one s src with
  | Session.Diag _ as o when contains (Session.render o) code -> ()
  | o -> unexpected code o

(* ---- statement evaluation units ------------------------------------- *)

let test_bindings () =
  let s = fresh_session () in
  (match one s "let cheap = select Employee where pay_rate < 100.0;" with
  | Session.Bound { var = "cheap"; _ } -> ()
  | o -> unexpected "Bound cheap" o);
  (match one s "define view Pay = project Employee on [ssn, pay_rate];" with
  | Session.Defined { name = "Pay"; attrs; _ } ->
      Alcotest.check attr_names "Pay attrs" [ at "pay_rate"; at "ssn" ]
        (List.sort Tdp_core.Attr_name.compare attrs)
  | o -> unexpected "Defined Pay" o);
  (* lets resolve inside later expressions, catalog views likewise *)
  (match one s ":type select Pay where pay_rate < 50.0" with
  | Session.Typed _ -> ()
  | o -> unexpected "Typed" o);
  (match one s "drop view Pay;" with
  | Session.Dropped "Pay" -> ()
  | o -> unexpected "Dropped Pay" o);
  check_diag s ":extent Pay" "TDP051";
  (match one s ":views" with
  | Session.Views { defined; bound } ->
      (* EmpView and Seniors installed from the schema file; Pay dropped *)
      Alcotest.(check (list string)) "defined" [ "EmpView"; "Seniors" ]
        (List.sort compare (List.map fst defined));
      Alcotest.(check (list string)) "bound" [ "cheap" ] (List.map fst bound)
  | o -> unexpected "Views" o)

let test_diagnostics () =
  let s = fresh_session () in
  check_diag s "select where;" "TDP050";
  check_diag s ":extent Payroll" "TDP051";
  check_diag s "define view EmpView = project Employee on [ssn];" "TDP052";
  check_diag s ":extent project Employee on [salary]" "TDP053";
  check_diag s "type Extra { x : int; }" "TDP056";
  check_diag s "new Employee { ssn = \"not-an-int\" };" "TDP055";
  (* the session survives every failure above *)
  match one s ":schema" with
  | Session.Schema_info { types = 2; _ } -> ()
  | o -> unexpected "Schema_info with 2 types" o

let test_join_has_no_extent () =
  let s = fresh_session () in
  (match one s "let names = project Person on [ssn, name];" with
  | Session.Bound _ -> ()
  | o -> unexpected "Bound names" o);
  (match one s "define view Directory = join names with EmpView;" with
  | Session.Defined _ -> ()
  | o -> unexpected "Defined Directory" o);
  (* well-typed... *)
  (match one s ":type Directory" with
  | Session.Typed _ -> ()
  | o -> unexpected "Typed Directory" o);
  (* ...but not materializable: structured TDP054, not an exception *)
  check_diag s ":extent Directory" "TDP054"

let test_data_statements () =
  let s = fresh_session () in
  (match
     one s
       "new Employee { ssn = 1; name = \"amy\"; date_of_birth = year(1970); \
        pay_rate = 50.0; hrs_worked = 30.0 };"
   with
  | Session.Created { oid; ty = t } ->
      Alcotest.(check int) "oid" 1 (Tdp_store.Oid.to_int oid);
      Alcotest.(check string) "ty" "Employee" (Tdp_core.Type_name.to_string t)
  | o -> unexpected "Created" o);
  (match one s "call income on Employee;" with
  | Session.Called { gf = "income"; results = [ (_, Value.Float f) ] } ->
      Alcotest.(check (float 1e-9)) "income" 1500.0 f
  | o -> unexpected "Called income" o);
  (match one s "call age on Employee;" with
  | Session.Called { results = [ (_, Value.Int 56) ]; _ } -> ()
  | o -> unexpected "age 56 (now = 2026)" o);
  (match one s "set #1 { pay_rate = 60.0 };" with
  | Session.Updated { attrs = [ a ]; _ } ->
      Alcotest.(check string) "attr" "pay_rate" (Tdp_core.Attr_name.to_string a)
  | o -> unexpected "Updated" o);
  (match one s ":extent Seniors" with
  | Session.Extent { rows = [ (_, _) ]; attrs; _ } ->
      Alcotest.(check int) "Seniors width" 3 (List.length attrs)
  | o -> unexpected "Extent of Seniors" o);
  (match one s "del #1;" with
  | Session.Deleted _ -> ()
  | o -> unexpected "Deleted" o);
  check_diag s "del #1;" "TDP055";
  (* evaluation stops after :quit *)
  match Session.eval_string s ":quit\n:views" with
  | [ Session.Bye ] -> ()
  | os -> Alcotest.failf "expected [Bye], got %d outcomes" (List.length os)

let test_one_shot_helpers () =
  (match Session.check_source ~file:"employee.odb" schema_src with
  | Session.Checked { issues = []; views; _ } ->
      Alcotest.(check int) "declared views" 2 (List.length views)
  | o -> unexpected "clean Checked" o);
  (match Session.infer_source schema_src with
  | Session.Inferred { views; _ } ->
      List.iter
        (fun (name, vi) ->
          match vi with
          | Session.Admitted _ -> ()
          | _ -> Alcotest.failf "view %s not admitted" name)
        views
  | o -> unexpected "Inferred" o);
  let schema = (Lazy.force elab).Elaborate.schema in
  (match
     Session.resolve_call schema ~gf:"income" ~arg_types:[ ty "Employee" ]
       ~chain:false
   with
  | Session.Resolved { resolution = Session.Selected _; _ } as o ->
      Alcotest.(check bool) "selected is a success" false (Session.failed o)
  | o -> unexpected "Resolved/Selected" o);
  match
    Session.resolve_call schema ~gf:"income" ~arg_types:[ ty "Person" ]
      ~chain:false
  with
  | Session.Resolved { resolution = Session.No_method; _ } as o ->
      Alcotest.(check bool) "no-method is a failure" true (Session.failed o)
  | o -> unexpected "Resolved/No_method" o

(* ---- print∘parse round-trip (QCheck) -------------------------------- *)

module Gen_stmt = struct
  open Ast
  open QCheck.Gen

  (* Fixed pools keep identifiers clear of the keyword set. *)
  let attr = oneofl [ "ssn"; "name"; "pay_rate"; "dept"; "x1" ]
  let tyname = oneofl [ "Person"; "Employee"; "Dept"; "T9" ]
  let vname = oneofl [ "EmpPay"; "Cheap"; "V1" ]
  let var = oneofl [ "v"; "q"; "cheap1" ]
  let gfname = oneofl [ "income"; "age"; "promote" ]

  let lit =
    oneof
      [
        map (fun i -> LInt i) (int_range (-99) 999);
        (* quarters are exact in binary, and the lexer has no exponent
           form — %.12g of these always reparses *)
        map (fun k -> LFloat (float_of_int k /. 4.)) (int_range 0 399);
        map (fun s -> LString s) (oneofl [ "amy"; "acme corp"; "" ]);
        map (fun b -> LBool b) bool;
      ]

  let cmp = oneofl [ "=="; "!="; "<"; "<="; ">"; ">=" ]

  let rec pred n =
    if n <= 0 then map3 (fun a o l -> PCmp (a, o, l)) attr cmp lit
    else
      frequency
        [
          (3, pred 0);
          (1, map2 (fun a b -> PAnd (a, b)) (pred (n - 1)) (pred (n - 1)));
          (1, map2 (fun a b -> POr (a, b)) (pred (n - 1)) (pred (n - 1)));
          (1, map (fun a -> PNot a) (pred (n - 1)));
        ]

  let rec view n =
    if n <= 0 then map (fun t -> VBase t) tyname
    else
      frequency
        [
          (2, view 0);
          ( 2,
            map2
              (fun v attrs -> VProject (v, attrs))
              (view (n - 1))
              (list_size (int_range 1 3) attr) );
          (2, map2 (fun v p -> VSelect (v, p)) (view (n - 1)) (pred 1));
          (1, map2 (fun a b -> VGeneralize (a, b)) (view (n - 1)) (view (n - 1)));
          (1, map2 (fun a b -> VJoin (a, b)) (view (n - 1)) (view (n - 1)));
        ]

  let svalue =
    oneof
      [
        map (fun l -> SVLit l) lit;
        return SVNull;
        map (fun n -> SVRef n) (int_range 0 99);
        map (fun y -> SVDate y) (int_range 1900 2100);
      ]

  let fields = list_size (int_range 1 3) (pair attr svalue)

  let desc =
    let v = view 2 in
    frequency
      [
        (3, map2 (fun x e -> SLet { var = x; expr = e }) var v);
        (3, map2 (fun n e -> SDefine { name = n; expr = e }) vname v);
        (1, map (fun n -> SDrop n) vname);
        (2, map2 (fun g e -> SCallOn { gf = g; expr = e }) gfname v);
        (3, map2 (fun t fs -> SNew { ty = t; inits = fs }) tyname fields);
        ( 2,
          map2 (fun o fs -> SSet { oid = o; updates = fs }) (int_range 1 99)
            fields );
        ( 1,
          map2
            (fun o p -> SDelete { oid = o; policy = p })
            (int_range 1 99)
            (oneofl [ `Restrict; `Nullify ]) );
        (2, map (fun e -> SShow e) v);
        (2, map (fun e -> SType e) v);
        (2, map (fun e -> SExtent e) v);
        (1, oneofl [ SViews; SSchema; SQuit ]);
        (1, map2 (fun n e -> SDecl (IView { name = n; expr = e })) vname v);
      ]

  let stmt = map (fun d -> { spos = { line = 1; col = 1 }; sdesc = d }) desc
end

let stmt_arb = QCheck.make ~print:Stmt.to_string Gen_stmt.stmt

let prop_roundtrip =
  QCheck.Test.make ~name:"print∘parse round-trips statements" ~count:500
    stmt_arb (fun s ->
      match Stmt.parse (Stmt.to_string s) with
      | Ok [ s' ] -> Stmt.equal s s'
      | Ok l ->
          QCheck.Test.fail_reportf "%S parsed to %d statements"
            (Stmt.to_string s) (List.length l)
      | Error e ->
          QCheck.Test.fail_reportf "%S failed to parse: %s" (Stmt.to_string s)
            (Fmt.str "%a" Tdp_core.Error.pp e))

(* ---- three-frontend differential ------------------------------------ *)

(* One statement per line so every frontend sees identical parse units
   (the repl buffers per line; the server gets one [eval] per line). *)
let diff_stmts =
  [
    "define view EmpPay = project Employee on [ssn, date_of_birth, pay_rate];";
    "define view Cheap = select EmpPay where pay_rate < 100.0;";
    "new Employee { ssn = 1; name = \"amy\"; date_of_birth = year(1970); \
     pay_rate = 50.0; hrs_worked = 30.0 };";
    "new Employee { ssn = 2; name = \"bob\"; date_of_birth = year(1990); \
     pay_rate = 120.0; hrs_worked = 40.0 };";
    ":extent Cheap";
    "call income on Employee;";
    "call age on Cheap;";
    "set #1 { pay_rate = 75.5 };";
    ":extent Cheap";
    ":type Cheap";
    "let q = select Cheap where ssn == 1;";
    ":extent q";
    "del #2;";
    ":extent project Employee on [ssn, pay_rate]";
    ":views";
    ":extent Payroll" (* a failing statement renders identically too *);
  ]

let read_file f =
  let ic = open_in_bin f in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Frontend A: the Session API, statement by statement. *)
let direct_transcript () =
  let r = Lazy.force elab in
  let s = Session.of_database (Database.create r.Elaborate.schema) in
  String.concat "\n"
    (List.concat_map
       (fun line -> List.map Session.render (Session.eval_string s line))
       diff_stmts)

(* Frontend B: the repl over file channels (no echo, no prompts). *)
let repl_transcript () =
  let r = Lazy.force elab in
  let s = Session.of_database (Database.create r.Elaborate.schema) in
  let in_f = Filename.temp_file "tdp_diff" ".in"
  and out_f = Filename.temp_file "tdp_diff" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove in_f;
      Sys.remove out_f)
    (fun () ->
      let oc = open_out in_f in
      List.iter (fun l -> Printf.fprintf oc "%s\n" l) diff_stmts;
      close_out oc;
      let ic = open_in in_f and out = open_out out_f in
      Fun.protect
        ~finally:(fun () ->
          close_in_noerr ic;
          close_out_noerr out)
        (fun () -> Repl.run s ic out);
      read_file out_f)

(* Frontend C: a served eval session over an MVCC store. *)
let server_transcript () =
  let r = Lazy.force elab in
  let load_schema src = (Elaborate.load_exn src).Elaborate.schema in
  let store = Mvcc.create ~load_schema r.Elaborate.schema in
  let s = Server.session ~store () in
  let run line = Server.handle_line s line in
  (match run "begin" with
  | resp when String.length resp >= 2 && String.sub resp 0 2 = "ok" -> ()
  | resp -> Alcotest.failf "begin refused: %s" resp);
  let payload line =
    let resp = run (Fmt.str "eval %S" line) in
    try Scanf.sscanf resp "ok %S%!" Fun.id
    with _ -> (
      try Scanf.sscanf resp "err %S%!" Fun.id
      with _ -> Alcotest.failf "unparseable eval response: %s" resp)
  in
  let text = String.concat "\n" (List.map payload diff_stmts) in
  (match run "commit" with
  | resp when String.length resp >= 2 && String.sub resp 0 2 = "ok" -> ()
  | resp -> Alcotest.failf "commit refused: %s" resp);
  text

let test_differential () =
  let a = direct_transcript () in
  Alcotest.(check string) "repl = direct" (a ^ "\n") (repl_transcript ());
  Alcotest.(check string) "served eval = direct" a (server_transcript ())

(* A mutating statement outside a transaction is a TDP055 diagnostic,
   not a protocol error: the eval session survives. *)
let test_server_eval_needs_txn () =
  let r = Lazy.force elab in
  let load_schema src = (Elaborate.load_exn src).Elaborate.schema in
  let store = Mvcc.create ~load_schema r.Elaborate.schema in
  let s = Server.session ~store () in
  let resp = Server.handle_line s "eval \"new Employee { ssn = 1 };\"" in
  if not (contains resp "TDP055") then
    Alcotest.failf "wanted a TDP055 diagnostic, got: %s" resp;
  let resp = Server.handle_line s "eval \":schema\"" in
  if not (contains resp "ok ") then
    Alcotest.failf "session should survive: %s" resp

let () =
  Alcotest.run "session"
    [
      ( "eval",
        [
          Alcotest.test_case "bindings and catalog" `Quick test_bindings;
          Alcotest.test_case "diagnostics TDP050-TDP056" `Quick
            test_diagnostics;
          Alcotest.test_case "join views have no extent" `Quick
            test_join_has_no_extent;
          Alcotest.test_case "data statements and calls" `Quick
            test_data_statements;
          Alcotest.test_case "one-shot CLI helpers" `Quick
            test_one_shot_helpers;
        ] );
      ("roundtrip", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
      ( "frontends",
        [
          Alcotest.test_case "same statements, same outcomes" `Quick
            test_differential;
          Alcotest.test_case "eval without txn is TDP055" `Quick
            test_server_eval_needs_txn;
        ] );
    ]
